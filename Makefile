GO ?= go

.PHONY: build test check linkcheck trace-demo bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: formatting, static analysis, doc links,
# a quick race pass over the replica subsystem (the most concurrent
# code in the repo), then the full suite under the race detector.
check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(MAKE) linkcheck
	$(GO) test -race -run 'TestReplica' ./internal/replica ./internal/sim ./internal/store
	$(GO) test -race ./...

# linkcheck verifies every relative link in the repo's markdown files.
linkcheck:
	$(GO) run ./tools/checklinks

# trace-demo prints a hop-by-hop span tree for one query on a simulated
# 8-peer ring — the quickest way to see the observability layer.
trace-demo:
	$(GO) run ./cmd/rangeql -peers 8 -trace \
		-e "SELECT name FROM Patient WHERE 30 <= age AND age <= 50"

# bench runs the signature-pipeline benchmarks (the performance contract:
# BenchmarkMinWiseSign vs BenchmarkMinWiseNaive and friends) with
# allocation stats, recording machine-readable output for comparison
# across commits.
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem ./internal/minhash \
		> BENCH_minhash.json
	$(GO) test -json -run '^$$' -bench BenchmarkReplica -benchmem ./internal/replica \
		> BENCH_replica.json
	@$(GO) run ./cmd/rangebench -fig sig -quick
	@$(GO) run ./cmd/rangebench -fig load -quick

# bench-all runs every benchmark in the repo once, as a smoke test.
bench-all:
	$(GO) test -bench=. -benchtime=1x ./...
