GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: static analysis plus the full suite under
# the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...
