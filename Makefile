GO ?= go

.PHONY: build test check bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: formatting, static analysis, then the full
# suite under the race detector.
check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) test -race ./...

# bench runs the signature-pipeline benchmarks (the performance contract:
# BenchmarkMinWiseSign vs BenchmarkMinWiseNaive and friends) with
# allocation stats, recording machine-readable output for comparison
# across commits.
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem ./internal/minhash \
		> BENCH_minhash.json
	@$(GO) run ./cmd/rangebench -fig sig -quick

# bench-all runs every benchmark in the repo once, as a smoke test.
bench-all:
	$(GO) test -bench=. -benchtime=1x ./...
