GO ?= go

.PHONY: build test check linkcheck flagcheck benchguard trace-demo rangetop-demo bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-merge gate: formatting, static analysis, doc links,
# doc flag tables, the allocation guards, the wire-codec and WAL-record
# fuzz seed corpora, a quick race pass over the replica subsystem and
# the crash-recovery suite (the most concurrent code in the repo), then
# the full suite under the race detector.
check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(MAKE) linkcheck
	$(MAKE) flagcheck
	$(MAKE) benchguard
	$(GO) test -run 'Fuzz' ./internal/transport ./internal/peer ./internal/wal ./internal/ship ./internal/obs
	$(GO) test -race -run 'TestReplica|TestRecover' ./internal/replica ./internal/sim ./internal/store ./internal/wal
	$(GO) test -race -run 'TestShip|TestPusher' ./internal/ship
	$(GO) test -race ./...

# linkcheck verifies every relative link in the repo's markdown files.
linkcheck:
	$(GO) run ./tools/checklinks

# flagcheck verifies the docs' command flag tables against the flags
# cmd/* actually declare.
flagcheck:
	$(GO) run ./tools/checkflags

# benchguard pins the hot-path allocation contracts under -benchmem: a
# nil span threaded through a hot path, a probe-request binary
# encode+decode round trip, a segment point read (bloom check +
# sparse-index probe + record walk, hit and miss), and the log-shipping
# entry-apply path (CRC walk + decode + idempotent store re-apply) must
# all stay at 0 allocs/op.
benchguard:
	@out=$$($(GO) test -run '^$$' -bench BenchmarkDisabledSpan -benchmem ./internal/trace); \
	if ! echo "$$out" | grep -q '0 allocs/op'; then \
		echo "nil-span fast path allocates:"; echo "$$out"; exit 1; \
	fi; \
	echo "benchguard: disabled span holds 0 allocs/op"
	@out=$$($(GO) test -run '^$$' -bench BenchmarkCodecProbe -benchmem ./internal/peer); \
	if ! echo "$$out" | grep -q '0 allocs/op'; then \
		echo "probe codec round trip allocates:"; echo "$$out"; exit 1; \
	fi; \
	echo "benchguard: probe codec round trip holds 0 allocs/op"
	@out=$$($(GO) test -run '^$$' -bench 'BenchmarkSegmentProbe' -benchmem ./internal/wal); \
	if [ $$(echo "$$out" | grep -c '0 allocs/op') -lt 2 ]; then \
		echo "segment probe hot path allocates:"; echo "$$out"; exit 1; \
	fi; \
	echo "benchguard: segment probe (hit and miss) holds 0 allocs/op"
	@out=$$($(GO) test -run '^$$' -bench BenchmarkShipApply -benchmem ./internal/ship); \
	if ! echo "$$out" | grep -q '0 allocs/op'; then \
		echo "ship entry-apply hot path allocates:"; echo "$$out"; exit 1; \
	fi; \
	echo "benchguard: ship entry apply holds 0 allocs/op"
	@out=$$($(GO) test -run '^$$' -bench BenchmarkFlightOff -benchmem ./internal/flight); \
	if ! echo "$$out" | grep -q '0 allocs/op'; then \
		echo "disabled flight recorder allocates:"; echo "$$out"; exit 1; \
	fi; \
	echo "benchguard: disabled flight recorder holds 0 allocs/op"
	@out=$$($(GO) test -run '^$$' -bench BenchmarkFlightRecord -benchmem ./internal/flight); \
	allocs=$$(echo "$$out" | grep 'BenchmarkFlightRecord' | awk '{for (i=1;i<NF;i++) if ($$(i+1)=="allocs/op") print $$i}'); \
	if [ -z "$$allocs" ] || [ "$$allocs" -gt 16 ]; then \
		echo "flight recording exceeds the amortized allocation bound (16 allocs/op):"; echo "$$out"; exit 1; \
	fi; \
	echo "benchguard: flight recording amortized at $$allocs allocs/op (bound 16)"

# trace-demo prints a hop-by-hop span tree for one query on a simulated
# 8-peer ring — the quickest way to see the observability layer.
trace-demo:
	$(GO) run ./cmd/rangeql -peers 8 -trace \
		-e "SELECT name FROM Patient WHERE 30 <= age AND age <= 50"

# rangetop-demo boots a real 3-peer TCP ring with debug endpoints, runs
# one traced query through an ephemeral rangeql member (watch the serve
# spans arrive from remote peers), and prints the rangetop cluster view.
rangetop-demo:
	@sh ./tools/rangetop-demo.sh

# flight-demo boots a 3-peer TCP ring (one peer with injected RPC
# latency), drives a mixed lookup workload with NO tracing flags, and
# dumps /debug/slow — the flight recorder caught the slow queries after
# the fact, stitched trees included.
flight-demo:
	@sh ./tools/flight-demo.sh

# bench runs the signature-pipeline benchmarks (the performance contract:
# BenchmarkMinWiseSign vs BenchmarkMinWiseNaive and friends) with
# allocation stats, recording machine-readable output for comparison
# across commits.
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem ./internal/minhash \
		> BENCH_minhash.json
	$(GO) test -json -run '^$$' -bench BenchmarkReplica -benchmem ./internal/replica \
		> BENCH_replica.json
	@$(GO) run ./cmd/rangebench -fig sig -quick
	@$(GO) run ./cmd/rangebench -fig load -quick
	$(GO) test -run '^$$' -bench 'BenchmarkSegment' -benchmem ./internal/wal \
		| $(GO) run ./tools/benchmerge -key segment_reads \
		-note "disk read path: Get via sparse index vs full segment scan; Probe is the bloom+index point read"

# bench-all runs every benchmark in the repo once, as a smoke test.
bench-all:
	$(GO) test -bench=. -benchtime=1x ./...
