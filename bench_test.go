package p2prange

// One benchmark per paper table/figure: each wraps the corresponding
// experiment driver (internal/experiments) at reduced-but-representative
// scale so `go test -bench=.` regenerates every figure's pipeline. Full
// paper-scale numbers come from `go run ./cmd/rangebench -fig all`;
// EXPERIMENTS.md records the paper-vs-measured comparison. Micro and
// ablation benchmarks cover the design choices DESIGN.md calls out.

import (
	"fmt"
	"math/rand"
	"testing"

	"p2prange/internal/chord"
	"p2prange/internal/djoin"
	"p2prange/internal/experiments"
	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
	"p2prange/internal/sim"
	"p2prange/internal/store"
)

func benchFigure(b *testing.B, id string) {
	b.Helper()
	driver, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	params := experiments.QuickDefaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := driver(params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates Figure 5 (hash family execution times).
func BenchmarkFig5(b *testing.B) { benchFigure(b, "5") }

// BenchmarkFig6a regenerates Figure 6(a) (min-wise similarity histogram).
func BenchmarkFig6a(b *testing.B) { benchFigure(b, "6a") }

// BenchmarkFig6b regenerates Figure 6(b) (approx min-wise histogram).
func BenchmarkFig6b(b *testing.B) { benchFigure(b, "6b") }

// BenchmarkFig7 regenerates Figure 7 (linear permutation histogram).
func BenchmarkFig7(b *testing.B) { benchFigure(b, "7") }

// BenchmarkFig8 regenerates Figure 8 (recall per hash family).
func BenchmarkFig8(b *testing.B) { benchFigure(b, "8") }

// BenchmarkFig9 regenerates Figure 9 (containment vs Jaccard matching).
func BenchmarkFig9(b *testing.B) { benchFigure(b, "9") }

// BenchmarkFig10 regenerates Figure 10 (20% query padding).
func BenchmarkFig10(b *testing.B) { benchFigure(b, "10") }

// BenchmarkFig11a regenerates Figure 11(a) (load vs ring size).
func BenchmarkFig11a(b *testing.B) { benchFigure(b, "11a") }

// BenchmarkFig11b regenerates Figure 11(b) (load vs stored partitions).
func BenchmarkFig11b(b *testing.B) { benchFigure(b, "11b") }

// BenchmarkFig12a regenerates Figure 12(a) (path length vs ring size).
func BenchmarkFig12a(b *testing.B) { benchFigure(b, "12a") }

// BenchmarkFig12b regenerates Figure 12(b) (path length PDF).
func BenchmarkFig12b(b *testing.B) { benchFigure(b, "12b") }

// BenchmarkBaselineExact regenerates the Section 3.1 exact-key strawman
// comparison.
func BenchmarkBaselineExact(b *testing.B) { benchFigure(b, "exact") }

// BenchmarkBaselineFlood regenerates the unstructured-flooding
// comparison.
func BenchmarkBaselineFlood(b *testing.B) { benchFigure(b, "flood") }

// BenchmarkAblationKLSweep regenerates the (k,l) parameter sweep.
func BenchmarkAblationKLSweep(b *testing.B) { benchFigure(b, "kl") }

// BenchmarkAblationPadding regenerates the padding-policy sweep.
func BenchmarkAblationPadding(b *testing.B) { benchFigure(b, "padding") }

// BenchmarkAblationPeerIndex regenerates the Sec 5.3 peer-index sweep.
func BenchmarkAblationPeerIndex(b *testing.B) { benchFigure(b, "peeridx") }

// BenchmarkAblationWorkloads regenerates the workload-skew comparison.
func BenchmarkAblationWorkloads(b *testing.B) { benchFigure(b, "workloads") }

// BenchmarkCompareDHTs regenerates the Chord-vs-CAN substrate comparison.
func BenchmarkCompareDHTs(b *testing.B) { benchFigure(b, "dht") }

// BenchmarkDistributedJoinExperiment regenerates the DHT-join workload
// distribution comparison.
func BenchmarkDistributedJoinExperiment(b *testing.B) { benchFigure(b, "join") }

// BenchmarkAblationCapacity regenerates the cache-capacity ablation.
func BenchmarkAblationCapacity(b *testing.B) { benchFigure(b, "capacity") }

// BenchmarkAblationVirtualNodes regenerates the virtual-nodes ablation.
func BenchmarkAblationVirtualNodes(b *testing.B) { benchFigure(b, "vnodes") }

// --- Micro-benchmarks: the per-element costs behind Fig. 5 ---

func benchApply(b *testing.B, p minhash.Permutation) {
	b.Helper()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink ^= p.Apply(uint32(i))
	}
	_ = sink
}

// BenchmarkApplyMinWise measures one faithful (per-bit) full permutation.
func BenchmarkApplyMinWise(b *testing.B) {
	benchApply(b, minhash.NewFullPermutation(rand.New(rand.NewSource(1))))
}

// BenchmarkApplyApproxMinWise measures one faithful first-iteration
// permutation.
func BenchmarkApplyApproxMinWise(b *testing.B) {
	benchApply(b, minhash.NewApproxPermutation(rand.New(rand.NewSource(1))))
}

// BenchmarkApplyLinear measures one linear permutation.
func BenchmarkApplyLinear(b *testing.B) {
	benchApply(b, minhash.NewLinearPermutation(rand.New(rand.NewSource(1))))
}

// BenchmarkApplyMinWiseCompiled measures the byte-table compiled form
// quality experiments use.
func BenchmarkApplyMinWiseCompiled(b *testing.B) {
	benchApply(b, minhash.Compile(minhash.NewFullPermutation(rand.New(rand.NewSource(1)))))
}

// BenchmarkMinHashRange measures hashing a 1000-element range with one
// compiled permutation.
func BenchmarkMinHashRange(b *testing.B) {
	p := minhash.Compile(minhash.NewFullPermutation(rand.New(rand.NewSource(1))))
	q := rangeset.Range{Lo: 0, Hi: 999}
	for i := 0; i < b.N; i++ {
		minhash.MinHash(p, q)
	}
}

// BenchmarkSchemeIdentifiers measures the full k=20, l=5 identifier
// computation for an average workload range.
func BenchmarkSchemeIdentifiers(b *testing.B) {
	s, err := minhash.NewDefaultScheme(minhash.ApproxMinWise, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	cs := s.Compiled()
	q := rangeset.Range{Lo: 100, Hi: 433}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Identifiers(q)
	}
}

// --- Chord routing ---

// BenchmarkChordLookup measures one iterative lookup on a 1024-node ring.
func BenchmarkChordLookup(b *testing.B) {
	scheme, err := sim.Scheme(minhash.ApproxMinWise, 1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := sim.NewCluster(sim.ClusterConfig{N: 1024, Peer: peer.Config{Scheme: scheme}})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	origin := c.Peers[0].Node()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := origin.Lookup(rng.Uint32()); err != nil {
			b.Fatal(err)
		}
	}
	_ = chord.M
}

// --- Store matching ---

// BenchmarkStoreFindBest measures a bucket best-match scan with 100
// candidates.
func BenchmarkStoreFindBest(b *testing.B) {
	s := store.New()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		lo := rng.Int63n(1000)
		s.Put(7, store.Partition{
			Relation: "R", Attribute: "a",
			Range: rangeset.Range{Lo: lo, Hi: lo + rng.Int63n(200)}, Holder: "h",
		})
	}
	q := rangeset.Range{Lo: 400, Hi: 600}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FindBest(7, "R", "a", q, store.MatchContainment)
	}
}

// --- Relation selects: index vs scan ---

// BenchmarkSelectRange compares full-scan partition materialization with
// the sorted-index path on a 100k-tuple relation.
func BenchmarkSelectRange(b *testing.B) {
	rs := &relation.RelationSchema{Name: "T", Columns: []relation.Column{
		{Name: "k", Type: relation.TInt},
	}}
	r := relation.NewRelation(rs)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100000; i++ {
		if err := r.Insert(relation.Tuple{relation.IntVal(rng.Int63n(1000000))}); err != nil {
			b.Fatal(err)
		}
	}
	q := rangeset.Range{Lo: 500000, Hi: 510000}
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.SelectRange("k", q); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := r.BuildIndex("k"); err != nil {
		b.Fatal(err)
	}
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := r.SelectRange("k", q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: XOR group size (k) ---

// BenchmarkAblationGroupSize compares identifier computation at k=1
// (single hash) against the paper's k=20 XOR group.
func BenchmarkAblationGroupSize(b *testing.B) {
	for _, k := range []int{1, 5, 20} {
		k := k
		b.Run(map[int]string{1: "k=1", 5: "k=5", 20: "k=20"}[k], func(b *testing.B) {
			s, err := minhash.NewScheme(minhash.ApproxMinWise, k, 5, rand.New(rand.NewSource(1)))
			if err != nil {
				b.Fatal(err)
			}
			cs := s.Compiled()
			q := rangeset.Range{Lo: 100, Hi: 433}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs.Identifiers(q)
			}
		})
	}
}

// --- End-to-end protocol ---

// BenchmarkLookupProtocol measures one full Section 4 lookup (hash + 5
// routes + 5 bucket probes) on a warm 64-peer system.
func BenchmarkLookupProtocol(b *testing.B) {
	scheme, err := sim.Scheme(minhash.ApproxMinWise, 1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := sim.NewCluster(sim.ClusterConfig{N: 64, Peer: peer.Config{Scheme: scheme}})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	// Warm the caches with 500 ranges.
	for i := 0; i < 500; i++ {
		lo := rng.Int63n(1000)
		q := rangeset.Range{Lo: lo, Hi: min64(lo+rng.Int63n(300), 1000)}
		if _, err := c.Peers[i%64].Lookup("R", "a", q, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(1000)
		q := rangeset.Range{Lo: lo, Hi: min64(lo+rng.Int63n(300), 1000)}
		if _, err := c.Peers[i%64].Lookup("R", "a", q, false); err != nil {
			b.Fatal(err)
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// BenchmarkDistributedJoin measures the full DHT hash join of the
// medical Patient and Diagnosis relations on a 16-peer ring.
func BenchmarkDistributedJoin(b *testing.B) {
	scheme, err := sim.Scheme(minhash.ApproxMinWise, 1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := sim.NewCluster(sim.ClusterConfig{N: 16, Peer: peer.Config{Scheme: scheme}})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range c.Peers {
		djoin.NewService(p)
	}
	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 200, Physicians: 10, Diagnoses: 500, Seed: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := djoin.Run(c.Peers[0], fmt.Sprintf("b%d", i),
			djoin.Input{Holder: c.Peers[1], Rel: rels["Patient"], Key: "patient_id"},
			djoin.Input{Holder: c.Peers[2], Rel: rels["Diagnosis"], Key: "patient_id"})
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() == 0 {
			b.Fatal("empty join")
		}
	}
}
