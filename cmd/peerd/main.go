// Command peerd runs one live peer of the P2P range-selection system over
// TCP. Start a ring and join more peers:
//
//	peerd -listen 127.0.0.1:7001
//	peerd -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//	peerd -listen 127.0.0.1:7003 -join 127.0.0.1:7001
//
// Every peer of a ring must share -family/-k/-l/-scheme-seed (the LSH key
// material). The daemon prints its chord identity and periodic status
// lines, and exits cleanly on SIGINT/SIGTERM with a graceful leave.
//
// With -data-dir the partition store is durable: every mutation is
// journaled to a write-ahead log in that directory, fsynced before the
// write is acknowledged (-fsync always, the default), folded into
// immutable segment files as it grows (-compact-every), and replayed on
// the next start with the same directory — a killed peer rejoins with
// the descriptors it held instead of an empty store. See
// docs/DURABILITY.md for the on-disk format and operator runbook.
//
// A durable peer can also ship its log: -follow OWNER tails that peer's
// WAL (seeding from its sealed segment when too far behind) so this
// peer's store converges to a byte-identical image of the owner's;
// -ship-retain bounds the WAL bytes kept for follower cursors; and
// -backup-to mirrors every sealed segment into a directory that
// cmd/walctl can verify and restore offline.
//
// With -debug-addr the daemon also serves an HTTP debug endpoint:
// /debug/vars (expvar JSON including the full p2prange metrics snapshot —
// route.*, sig.*, chord.*, peer.*, transport.* families), /debug/pprof
// (the standard net/http/pprof profiles), /metrics (JSON snapshot),
// /metrics/prom (Prometheus text format with p50/p95/p99 histogram
// summaries), /status (the peer's NodeStatus for rangetop), and /healthz
// (readiness, 200 once ring stabilization settles). See
// docs/OBSERVABILITY.md for the metric catalogue and scraping examples.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"p2prange"
	"p2prange/internal/flight"
	"p2prange/internal/metrics"
	"p2prange/internal/obs"
	"p2prange/internal/relation"
	"p2prange/internal/transport"
)

// publishFlags collects repeatable -publish values of the form
// Relation=file.csv:attribute:lo-hi — load the CSV, materialize the
// [lo,hi] partition over the attribute, and publish its descriptor.
type publishFlags []string

func (p *publishFlags) String() string     { return strings.Join(*p, ",") }
func (p *publishFlags) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7001", "address to listen on")
		join       = flag.String("join", "", "bootstrap peer to join (empty: start a new ring)")
		family     = flag.String("family", "approx", "hash family: minwise | approx | linear")
		k          = flag.Int("k", 20, "hash functions per group")
		l          = flag.Int("l", 5, "number of groups")
		schemeSeed = flag.Int64("scheme-seed", 1, "shared LSH key-material seed (must match across the ring)")
		status     = flag.Duration("status", 10*time.Second, "status print interval (0 disables)")
		retries    = flag.Int("retries", 3, "RPC attempts per call (1 disables transport retries)")
		noReroute  = flag.Bool("no-reroute", false, "disable failure-aware chord routing (fault-model ablation)")
		drop       = flag.Float64("drop", 0, "inject per-RPC drop probability in [0,1] (resilience testing)")
		sigCache   = flag.Int("sigcache", 256, "signature-cache capacity (ranges); 0 disables")
		workers    = flag.Int("hashworkers", 0, "goroutines signing large ranges; <=1 is serial")
		debugAddr  = flag.String("debug-addr", "", "serve /debug/vars (expvar) and /debug/pprof on this address (empty disables)")
		codec      = flag.String("codec", transport.CodecBinary, "outgoing wire protocol: binary (negotiated, falls back per address) | gob")

		replicas     = flag.Int("replicas", 0, "successor copies per stored descriptor; 0 disables replication")
		loadAware    = flag.Bool("load-aware", false, "route probes to the least-loaded live replica (needs -replicas)")
		hotReplicas  = flag.Int("hot-replicas", 0, "replica-set size for hot buckets, owner included (0: 2*(replicas+1))")
		hotThreshold = flag.Uint64("hot-threshold", 0, "decayed probe count promoting a bucket to the hot set (0: default 64)")
		repairEvery  = flag.Duration("repair-every", 0, "anti-entropy repair interval (0: chord maintenance default)")

		dataDir      = flag.String("data-dir", "", "durable store directory: WAL + segments, replayed on restart (empty: memory-only)")
		fsync        = flag.String("fsync", "always", "durability barrier with -data-dir: always (fsync before ack) | off (page cache)")
		compactEvery = flag.Int("compact-every", 0, "fold WAL into a segment after this many records (0: default 4096; <0 disables)")
		memLimit     = flag.Int("mem-limit", 0, "max descriptors resident in memory; with -data-dir overflow is served from segments (read-through), without it overflow is dropped (LRU); 0 unbounded")

		follow     = flag.String("follow", "", "tail that peer's WAL (log shipping): seed from its segment, then apply its record stream")
		shipRetain = flag.Int64("ship-retain", 0, "WAL bytes kept past a fold for follower cursors (0: 64MiB default; <0 retains nothing)")
		backupTo   = flag.String("backup-to", "", "mirror every sealed segment into this directory (restore with walctl restore)")

		slowThreshold = flag.Duration("slow-threshold", 0, "flight recorder slow-query cutoff (0: 25ms default)")
		flightKeep    = flag.Int("flight-keep", 0, "entries pinned per flight-recorder ring: slow, top, errored, hop-heavy (0: 32 default)")
		flightOff     = flag.Bool("flight-off", false, "disable the always-on flight recorder (/debug/slow serves nothing)")
		eventsDir     = flag.String("events-dir", "", "directory for the durable cluster event journal events.log (empty: -data-dir; both empty: memory-only ring)")
		faultDelay    = flag.Duration("fault-delay", 0, "inject this latency into every outgoing RPC (fault testing; pairs with the flight recorder demo)")
	)
	var publishes publishFlags
	flag.Var(&publishes, "publish",
		"publish a partition: Relation=file.csv:attribute:lo-hi (repeatable; medical schema)")
	flag.Parse()

	fam, err := parseFamily(*family)
	if err != nil {
		log.Fatalf("peerd: %v", err)
	}
	if *codec != transport.CodecBinary && *codec != transport.CodecGob {
		log.Fatalf("peerd: unknown -codec %q (want binary or gob)", *codec)
	}
	cfg := p2prange.LiveConfig{
		Family:           fam,
		K:                *k,
		L:                *l,
		SchemeSeed:       *schemeSeed,
		Schema:           relation.MedicalSchema(),
		Retry:            transport.RetryConfig{Attempts: *retries},
		DisableRetry:     *retries <= 1,
		DisableRerouting: *noReroute,
		SigCache:         *sigCache,
		HashWorkers:      *workers,
		Codec:            *codec,
		Replicas:         *replicas,
		LoadAware:        *loadAware,
		HotReplicas:      *hotReplicas,
		HotThreshold:     *hotThreshold,
		DataDir:          *dataDir,
		Fsync:            *fsync,
		CompactEvery:     *compactEvery,
		MemLimit:         *memLimit,
		Follow:           *follow,
		ShipRetain:       *shipRetain,
		BackupTo:         *backupTo,
		SlowThreshold:    *slowThreshold,
		FlightKeep:       *flightKeep,
		FlightOff:        *flightOff,
		EventsDir:        *eventsDir,
	}
	cfg.Stabilize.RepairEvery = *repairEvery
	if *drop > 0 || *faultDelay > 0 {
		cfg.Fault = &transport.FaultConfig{Drop: *drop}
		if *faultDelay > 0 {
			cfg.Fault.Delay = *faultDelay
			cfg.Fault.DelayProb = 1
		}
	}
	lp, err := p2prange.StartPeer(*listen, *join, cfg)
	if err != nil {
		log.Fatalf("peerd: %v", err)
	}
	log.Printf("peerd: serving as %s", lp.Ref())
	if *dataDir != "" {
		rec := lp.Recovery()
		log.Printf("peerd: recovered %s: %d from segment %d, %d replayed from %d wal file(s) in %s (torn tail: %v)",
			*dataDir, rec.SegmentRecords, rec.SegmentSeq, rec.Replayed, rec.WALFiles,
			rec.Elapsed.Round(time.Microsecond), rec.TornTail)
		if rec.ReadThrough {
			log.Printf("peerd: read-through on: resident cap %d descriptors, %d on segment (index rebuilt: %v)",
				*memLimit, rec.SegmentRecords, rec.IndexRebuilt)
		}
	}
	if *follow != "" {
		log.Printf("peerd: following %s (log shipping)", *follow)
	}
	if *debugAddr != "" {
		startDebugServer(*debugAddr, lp)
	}
	if *join != "" {
		if lp.WaitStable(5 * time.Second) {
			log.Printf("peerd: joined ring via %s; successor %s", *join, lp.Successor())
			if err := lp.ReclaimArc(); err != nil {
				log.Printf("peerd: reclaim arc: %v", err)
			}
		} else {
			log.Printf("peerd: stabilization still in progress")
		}
	}
	for _, spec := range publishes {
		if err := publishSpec(lp, spec); err != nil {
			log.Fatalf("peerd: -publish %q: %v", spec, err)
		}
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	var tick <-chan time.Time
	if *status > 0 {
		t := time.NewTicker(*status)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tick:
			rs := lp.RouteStats()
			ss := lp.SigStats()
			log.Printf("peerd: successor=%s stored=%d lookups=%d success=%.1f%% retries=%d reroutes=%d sighits=%.0f%%",
				lp.Successor(), lp.StoredPartitions(),
				rs.Lookups, rs.SuccessRate(), rs.Retries, rs.Rerouted, ss.HitRate())
		case sig := <-sigc:
			log.Printf("peerd: %v: leaving ring", sig)
			if err := lp.Leave(); err != nil {
				log.Printf("peerd: leave: %v", err)
			}
			return
		}
	}
}

// startDebugServer exposes the observability endpoints on addr: expvar's
// /debug/vars carrying the full Default-registry snapshot under the
// "p2prange" key plus peer identity/state under "peerd", and pprof's
// /debug/pprof (registered by the net/http/pprof import).
func startDebugServer(addr string, lp *p2prange.LivePeer) {
	expvar.Publish("p2prange", expvar.Func(func() any {
		return metrics.Default.Snapshot()
	}))
	expvar.Publish("peerd", expvar.Func(func() any {
		rs := lp.RouteStats()
		return map[string]any{
			"ref":       lp.Ref().String(),
			"successor": lp.Successor().String(),
			"stored":    lp.StoredPartitions(),
			"lookups":   rs.Lookups,
			"retries":   rs.Retries,
			"rerouted":  rs.Rerouted,
		}
	}))
	// /metrics serves the bare registry snapshot for tools that do not
	// want to peel the expvar envelope.
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(metrics.Default.Snapshot())
	})
	// /metrics/prom serves the same registry in Prometheus text format,
	// each histogram with p50/p95/p99 summary gauges.
	http.HandleFunc("/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics.Default.Snapshot().WritePrometheus(w)
	})
	// /status serves the peer's self-description for rangetop.
	http.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(lp.Status())
	})
	// /healthz is the readiness probe: 200 once ring stabilization has
	// settled this peer's links, 503 before.
	http.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if lp.Stable() {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "stabilizing")
	})
	// /debug/slow dumps the flight recorder's slow ring, newest first,
	// each entry with its fully stitched span tree — the query that was
	// slow ten minutes ago, already captured, no flag needed.
	http.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		serveFlightRing(w, r, lp, flight.RingSlow)
	})
	// /debug/flight serves any retention ring (?ring=slow|top|errored|
	// hops|recent, default recent) plus the recorder's counters. Trees
	// are included unless ?tree=0.
	http.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		ring := r.URL.Query().Get("ring")
		if ring == "" {
			ring = flight.RingRecent
		}
		serveFlightRing(w, r, lp, ring)
	})
	// /debug/events serves the cluster event journal, newest first
	// (?n= bounds the count, default the whole ring).
	http.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			n, _ = strconv.Atoi(s)
		}
		total, warns, errs := obs.Events.Counts()
		durable, derr := lp.EventsDurable()
		out := struct {
			Total      uint64      `json:"total"`
			Warns      uint64      `json:"warns"`
			Errors     uint64      `json:"errors"`
			Durable    bool        `json:"durable"`
			DurableErr string      `json:"durable_err,omitempty"`
			Events     []obs.Event `json:"events"`
		}{Total: total, Warns: warns, Errors: errs, Durable: durable, Events: obs.Events.Recent(n)}
		if derr != nil {
			out.DurableErr = derr.Error()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	go func() {
		log.Printf("peerd: debug endpoint on http://%s/debug/vars (pprof at /debug/pprof; /metrics, /metrics/prom, /status, /healthz, /debug/slow, /debug/flight, /debug/events)", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("peerd: debug server: %v", err)
		}
	}()
}

// serveFlightRing writes one flight-recorder ring as JSON: the
// recorder's counters followed by the ring's entries (newest first;
// "top" slowest first), each with its rendered span tree unless the
// request says ?tree=0.
func serveFlightRing(w http.ResponseWriter, r *http.Request, lp *p2prange.LivePeer, ring string) {
	rec := lp.Flight()
	if !rec.On() {
		http.Error(w, "flight recorder disabled (-flight-off)", http.StatusNotFound)
		return
	}
	withTree := r.URL.Query().Get("tree") != "0"
	entries := rec.Entries(ring)
	views := make([]flight.View, 0, len(entries))
	for _, e := range entries {
		views = append(views, flight.RenderView(e, withTree))
	}
	out := struct {
		Ring    string        `json:"ring"`
		Stats   flight.Stats  `json:"stats"`
		Entries []flight.View `json:"entries"`
	}{Ring: ring, Stats: rec.Stats(), Entries: views}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// publishSpec parses "Relation=file.csv:attribute:lo-hi", loads the CSV,
// and publishes the materialized partition.
func publishSpec(lp *p2prange.LivePeer, spec string) error {
	eq := strings.SplitN(spec, "=", 2)
	if len(eq) != 2 {
		return fmt.Errorf("want Relation=file.csv:attribute:lo-hi")
	}
	relName := eq[0]
	parts := strings.Split(eq[1], ":")
	if len(parts) != 3 {
		return fmt.Errorf("want file.csv:attribute:lo-hi")
	}
	path, attr, rgSpec := parts[0], parts[1], parts[2]
	bounds := strings.SplitN(rgSpec, "-", 2)
	if len(bounds) != 2 {
		return fmt.Errorf("bad range %q (want lo-hi)", rgSpec)
	}
	lo, err1 := strconv.ParseInt(bounds[0], 10, 64)
	hi, err2 := strconv.ParseInt(bounds[1], 10, 64)
	if err1 != nil || err2 != nil {
		return fmt.Errorf("bad range %q", rgSpec)
	}
	rg, err := p2prange.NewRange(lo, hi)
	if err != nil {
		return err
	}
	rs, ok := relation.MedicalSchema().Relation(relName)
	if !ok {
		return fmt.Errorf("relation %q not in the medical schema", relName)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rel, err := relation.ReadCSV(rs, f)
	if err != nil {
		return err
	}
	if err := lp.AddPartition(rel, attr, rg); err != nil {
		return err
	}
	if err := lp.Publish(lp.Descriptor(relName, attr, rg)); err != nil {
		return err
	}
	log.Printf("peerd: published %s.%s%s from %s (%d tuples loaded)",
		relName, attr, rg, path, rel.Len())
	return nil
}

func parseFamily(s string) (p2prange.Family, error) {
	switch s {
	case "minwise":
		return p2prange.MinWise, nil
	case "approx":
		return p2prange.ApproxMinWise, nil
	case "linear":
		return p2prange.Linear, nil
	default:
		return 0, fmt.Errorf("unknown family %q (want minwise, approx, or linear)", s)
	}
}
