// Open-loop load harness: rangebench -load stands up a live TCP ring
// in-process, publishes a descriptor population, and drives lookups at a
// target arrival rate regardless of completions (open loop, so queueing
// delay shows up as latency instead of silently throttling the
// generator). The ramp runs each codec through rising qps stages and the
// report records sustained qps, latency percentiles, and the error
// budget per stage, plus the binary/gob ratio the wire-codec work is
// judged by.
package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p2prange"
	"p2prange/internal/chord"
	"p2prange/internal/rangeset"
	"p2prange/internal/transport"
)

// loadOptions carries the -load* flag values.
type loadOptions struct {
	qps      int
	duration time.Duration
	codec    string // both | binary | gob
	peers    int
	out      string
	seed     int64
	profile  string
	slo      time.Duration // p99 budget a stage must meet to count as sustained
	flight   bool          // run the flight-recorder overhead A/B instead of the codec ramp
}

// sloErrorBudget is the error-rate ceiling for a stage to pass the SLO.
const sloErrorBudget = 0.005

// loadStage is one measured ramp stage of one codec run.
type loadStage struct {
	TargetQPS    float64 `json:"target_qps"`
	Issued       int64   `json:"issued"`
	Completed    int64   `json:"completed"`
	Errors       int64   `json:"errors"`
	ErrorRate    float64 `json:"error_rate"`
	SustainedQPS float64 `json:"sustained_qps"`
	P50US        int64   `json:"p50_us"`
	P95US        int64   `json:"p95_us"`
	P99US        int64   `json:"p99_us"`
	PassedSLO    bool    `json:"passed_slo"`
}

// loadCodecReport is the full ramp of one codec. SustainedSLOQPS is the
// headline number: the highest completed rate among stages whose p99
// stayed within the SLO and whose error rate stayed within budget —
// i.e. the load the codec sustains while still healthy, not the rate it
// degrades to after collapse (at deep overload every transport converges
// to whatever the saturated CPU drains, so raw completion rate alone
// cannot distinguish them).
type loadCodecReport struct {
	Codec           string      `json:"codec"`
	Stages          []loadStage `json:"stages"`
	SustainedSLOQPS float64     `json:"sustained_slo_qps"`
}

// loadReport is the BENCH_load.json document.
type loadReport struct {
	Peers           int                        `json:"peers"`
	TargetQPS       int                        `json:"target_qps"`
	StageDuration   string                     `json:"stage_duration"`
	Partitions      int                        `json:"partitions"`
	SLOP99          string                     `json:"slo_p99"`
	SLOErrorBudget  float64                    `json:"slo_error_budget"`
	Codecs          map[string]loadCodecReport `json:"codecs"`
	SpeedupQPS      float64                    `json:"speedup_sustained_qps,omitempty"`
	SpeedupAtP99    string                     `json:"speedup_note,omitempty"`
	GeneratedBy     string                     `json:"generated_by"`
	DurationSeconds float64                    `json:"duration_seconds"`
}

// rampFractions are the arrival-rate ramp: each stage targets this
// fraction of -load-qps for -load-duration. The grid is fine enough to
// bracket each codec's SLO ceiling instead of stepping over it.
var rampFractions = []float64{0.0625, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0}

// warmupFraction and warmupDuration shape the discarded warm-up stage
// that absorbs one-time costs (dials, protocol negotiation, goroutine
// stack growth) before the first measured stage.
const (
	warmupFraction = 0.0625
	warmupDuration = time.Second
)

// loadPartitions is how many Patient.age partitions seed the ring.
const loadPartitions = 45

// runLoad executes the whole harness and writes the JSON report.
func runLoad(opt loadOptions) error {
	if opt.flight {
		return runLoadFlight(opt)
	}
	codecs := []string{transport.CodecBinary, transport.CodecGob}
	switch opt.codec {
	case "both":
	case transport.CodecBinary, transport.CodecGob:
		codecs = []string{opt.codec}
	default:
		return fmt.Errorf("unknown -load-codec %q (want both, binary, or gob)", opt.codec)
	}
	if opt.profile != "" {
		pf, err := os.Create(opt.profile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	start := time.Now()
	report := loadReport{
		Peers:          opt.peers,
		TargetQPS:      opt.qps,
		StageDuration:  opt.duration.String(),
		Partitions:     loadPartitions,
		SLOP99:         opt.slo.String(),
		SLOErrorBudget: sloErrorBudget,
		Codecs:         make(map[string]loadCodecReport, len(codecs)),
		GeneratedBy:    "rangebench -load",
	}
	for i, codec := range codecs {
		if i > 0 {
			// Let the previous ring's teardown finish and collect its
			// heap so the next codec starts from the same baseline.
			runtime.GC()
			time.Sleep(300 * time.Millisecond)
		}
		fmt.Printf("load: %s ring (%d peers) ...\n", codec, opt.peers)
		cr, err := runLoadCodec(codec, opt)
		if err != nil {
			return fmt.Errorf("%s ring: %w", codec, err)
		}
		report.Codecs[codec] = cr
		for _, st := range cr.Stages {
			verdict := "FAIL slo"
			if st.PassedSLO {
				verdict = "ok"
			}
			fmt.Printf("load: %-6s target %6.0f qps -> sustained %7.1f qps  p50=%s p95=%s p99=%s  errs=%d/%d  [%s]\n",
				codec, st.TargetQPS, st.SustainedQPS,
				time.Duration(st.P50US)*time.Microsecond,
				time.Duration(st.P95US)*time.Microsecond,
				time.Duration(st.P99US)*time.Microsecond,
				st.Errors, st.Issued, verdict)
		}
		fmt.Printf("load: %-6s sustains %.1f qps within p99<=%s\n", codec, cr.SustainedSLOQPS, opt.slo)
	}
	if b, okB := report.Codecs[transport.CodecBinary]; okB {
		if g, okG := report.Codecs[transport.CodecGob]; okG {
			if g.SustainedSLOQPS > 0 {
				report.SpeedupQPS = b.SustainedSLOQPS / g.SustainedSLOQPS
				report.SpeedupAtP99 = fmt.Sprintf(
					"binary sustains %.1f qps vs gob %.1f qps at equal p99 budget (<=%s, error rate <=%.1f%%)",
					b.SustainedSLOQPS, g.SustainedSLOQPS, opt.slo, 100*sloErrorBudget)
				fmt.Printf("load: binary/gob sustained-qps ratio %.2fx at p99<=%s\n", report.SpeedupQPS, opt.slo)
			}
		}
	}
	report.DurationSeconds = time.Since(start).Seconds()
	if err := mergeReport(opt.out, report); err != nil {
		return err
	}
	fmt.Printf("load: report written to %s\n", opt.out)
	return nil
}

// mergeReport folds doc's top-level keys into the JSON file at path,
// preserving keys written by other producers (tools/benchmerge's
// segment_reads, the flight_overhead block, or vice versa) — the same
// read-merge-write discipline benchmerge itself follows.
func mergeReport(path string, doc any) error {
	raw, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	add := make(map[string]json.RawMessage)
	if err := json.Unmarshal(raw, &add); err != nil {
		return err
	}
	merged := make(map[string]json.RawMessage)
	if prev, err := os.ReadFile(path); err == nil {
		// A corrupt or foreign file is not worth failing the run over;
		// it is simply replaced.
		_ = json.Unmarshal(prev, &merged)
	}
	for k, v := range add {
		merged[k] = v
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(merged); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runLoadCodec builds a fresh ring speaking one codec, seeds it, and
// runs the qps ramp against it. A warm-up burst is run and discarded
// first, and the heap is collected between stages so one stage's
// garbage (deep overload leaves a lot) is not billed to the next.
func runLoadCodec(codec string, opt loadOptions) (loadCodecReport, error) {
	cr := loadCodecReport{Codec: codec}
	// The codec ramp measures the shipped default, recorder included.
	peers, err := startLoadRing(codec, opt.peers, false)
	if err != nil {
		return cr, err
	}
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()
	if err := seedLoadRing(peers); err != nil {
		return cr, err
	}
	rng := rand.New(rand.NewSource(opt.seed))
	warm := warmupDuration
	if opt.duration < warm {
		warm = opt.duration
	}
	runLoadStage(peers, float64(opt.qps)*warmupFraction, warm, rng.Int63())
	failedInARow := 0
	for _, frac := range rampFractions {
		runtime.GC()
		qps := float64(opt.qps) * frac
		st := runLoadStage(peers, qps, opt.duration, rng.Int63())
		st.PassedSLO = st.ErrorRate <= sloErrorBudget &&
			time.Duration(st.P99US)*time.Microsecond <= opt.slo
		if st.PassedSLO && st.SustainedQPS > cr.SustainedSLOQPS {
			cr.SustainedSLOQPS = st.SustainedQPS
		}
		cr.Stages = append(cr.Stages, st)
		if st.PassedSLO {
			failedInARow = 0
		} else if failedInARow++; failedInARow >= 2 {
			// Two consecutive stages over budget: the ceiling is behind
			// us, and deeper overload only manufactures queueing garbage
			// that contaminates whatever runs next.
			break
		}
	}
	return cr, nil
}

// flightOverheadReport is the flight_overhead block of BENCH_load.json:
// the same workload driven through two identical rings, recorder off vs
// recorder on (the shipped default), and the sustained-qps cost of
// always-on recording.
type flightOverheadReport struct {
	FlightOverhead struct {
		TargetQPS    float64 `json:"target_qps"`
		Duration     string  `json:"stage_duration"`
		OffSustained float64 `json:"off_sustained_qps"`
		OnSustained  float64 `json:"on_sustained_qps"`
		OffP99US     int64   `json:"off_p99_us"`
		OnP99US      int64   `json:"on_p99_us"`
		OverheadPct  float64 `json:"overhead_pct"`
		// Finished and KeptSlow prove the recorder was actually live
		// during the "on" run — an overhead number for a recorder that
		// recorded nothing would be meaningless.
		Finished    uint64 `json:"finished"`
		KeptSlow    uint64 `json:"kept_slow"`
		GeneratedBy string `json:"generated_by"`
	} `json:"flight_overhead"`
}

// runLoadFlight measures the flight recorder's cost: two rings differing
// only in LiveConfig.FlightOff run the same open-loop stage, and the
// sustained-qps delta is the recorder's overhead. Recorded into the
// report file without disturbing the codec-ramp keys.
func runLoadFlight(opt loadOptions) error {
	qps := float64(opt.qps) * 0.5 // mid-ramp: loaded but not collapsing
	var sustained [2]float64
	var p99 [2]int64
	var finished, keptSlow uint64
	for variant, off := range []bool{true, false} {
		name := map[bool]string{true: "flight-off", false: "flight-on"}[off]
		fmt.Printf("load: %s ring (%d peers) ...\n", name, opt.peers)
		peers, err := startLoadRing(transport.CodecBinary, opt.peers, off)
		if err != nil {
			return fmt.Errorf("%s ring: %w", name, err)
		}
		if err := seedLoadRing(peers); err != nil {
			for _, p := range peers {
				p.Close()
			}
			return err
		}
		rng := rand.New(rand.NewSource(opt.seed))
		warm := warmupDuration
		if opt.duration < warm {
			warm = opt.duration
		}
		runLoadStage(peers, qps*warmupFraction*4, warm, rng.Int63())
		runtime.GC()
		st := runLoadStage(peers, qps, opt.duration, rng.Int63())
		sustained[variant] = st.SustainedQPS
		p99[variant] = st.P99US
		if !off {
			for _, p := range peers {
				fs := p.Flight().Stats()
				finished += fs.Finished
				keptSlow += fs.KeptSlow
			}
		}
		for _, p := range peers {
			p.Close()
		}
		fmt.Printf("load: %-10s sustained %7.1f qps  p99=%s  errs=%d/%d\n",
			name, st.SustainedQPS, time.Duration(st.P99US)*time.Microsecond, st.Errors, st.Issued)
		runtime.GC()
		time.Sleep(300 * time.Millisecond)
	}

	var doc flightOverheadReport
	fo := &doc.FlightOverhead
	fo.TargetQPS = qps
	fo.Duration = opt.duration.String()
	fo.OffSustained = sustained[0]
	fo.OnSustained = sustained[1]
	fo.OffP99US = p99[0]
	fo.OnP99US = p99[1]
	if sustained[0] > 0 {
		fo.OverheadPct = 100 * (sustained[0] - sustained[1]) / sustained[0]
	}
	fo.Finished = finished
	fo.KeptSlow = keptSlow
	fo.GeneratedBy = "rangebench -load -load-flight"
	if err := mergeReport(opt.out, doc); err != nil {
		return err
	}
	fmt.Printf("load: flight recorder overhead %.2f%% of sustained qps (%d queries recorded, %d kept slow); written to %s\n",
		fo.OverheadPct, finished, keptSlow, opt.out)
	return nil
}

// startLoadRing launches n live TCP peers on loopback and waits for the
// ring to stabilize.
func startLoadRing(codec string, n int, flightOff bool) ([]*p2prange.LivePeer, error) {
	cfg := p2prange.LiveConfig{
		K: 4, L: 3, SchemeSeed: 77,
		Measure:   p2prange.MatchContainment,
		Codec:     codec,
		FlightOff: flightOff,
		Stabilize: chord.MaintainerConfig{
			StabilizeEvery:        20 * time.Millisecond,
			FixFingersEvery:       5 * time.Millisecond,
			CheckPredecessorEvery: 50 * time.Millisecond,
		},
	}
	peers := make([]*p2prange.LivePeer, 0, n)
	fail := func(err error) ([]*p2prange.LivePeer, error) {
		for _, p := range peers {
			p.Close()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		bootstrap := ""
		if i > 0 {
			bootstrap = peers[0].Addr()
		}
		p, err := p2prange.StartPeer("127.0.0.1:0", bootstrap, cfg)
		if err != nil {
			return fail(err)
		}
		peers = append(peers, p)
	}
	deadline := time.Now().Add(15 * time.Second)
	for _, p := range peers {
		if !p.WaitStable(time.Until(deadline)) {
			return fail(fmt.Errorf("ring did not stabilize"))
		}
	}
	time.Sleep(300 * time.Millisecond) // let fingers settle
	return peers, nil
}

// seedLoadRing publishes the descriptor population every stage queries:
// overlapping Patient.age partitions spread across the peers.
func seedLoadRing(peers []*p2prange.LivePeer) error {
	for i := 0; i < loadPartitions; i++ {
		lo := int64(i * 2)
		desc := peers[i%len(peers)].Descriptor("Patient", "age", rangeset.Range{Lo: lo, Hi: lo + 9})
		if err := peers[i%len(peers)].Publish(desc); err != nil {
			return fmt.Errorf("publish partition %d: %w", i, err)
		}
	}
	return nil
}

// runLoadStage drives lookups at the target arrival rate for the stage
// duration and measures the outcome. Dispatch is open-loop: send times
// are scheduled arithmetically from the stage start, so a slow system
// accumulates in-flight requests (and latency) instead of slowing the
// generator down.
func runLoadStage(peers []*p2prange.LivePeer, qps float64, duration time.Duration, seed int64) loadStage {
	st := loadStage{TargetQPS: qps}
	interval := time.Duration(float64(time.Second) / qps)
	total := int(qps * duration.Seconds())
	rng := rand.New(rand.NewSource(seed))
	queries := make([]rangeset.Range, total)
	for i := range queries {
		lo := rng.Int63n(85)
		queries[i] = rangeset.Range{Lo: lo, Hi: lo + 5 + rng.Int63n(10)}
	}

	// Each request records its latency into its own slot, so the hot
	// path takes no lock; slots of failed requests stay zero and are
	// dropped before the percentile pass. Generator goroutines are
	// recycled via direct channel handoff — an idle worker takes the
	// next request, and a new goroutine is spawned only when all are
	// busy — so the generator pays goroutine startup (and its stack
	// growth) per concurrency high-water mark, not per request.
	var (
		latencies = make([]int64, total)
		errs      atomic.Int64
		wg        sync.WaitGroup
	)
	run := func(i int) {
		from := peers[i%len(peers)]
		t0 := time.Now()
		_, _, err := from.LookupOnce("Patient", "age", queries[i], false)
		us := time.Since(t0).Microseconds()
		if err != nil {
			errs.Add(1)
			return
		}
		if us <= 0 {
			us = 1
		}
		latencies[i] = us
	}
	tasks := make(chan int)
	start := time.Now()
	for i := 0; i < total; i++ {
		if wait := start.Add(time.Duration(i) * interval).Sub(time.Now()); wait > 0 {
			time.Sleep(wait)
		}
		st.Issued++
		select {
		case tasks <- i: // an idle worker takes it
		default:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
				for j := range tasks { // stick around as a pooled worker
					run(j)
				}
			}(i)
		}
	}
	close(tasks)
	wg.Wait()
	elapsed := time.Since(start)

	st.Errors = errs.Load()
	st.Completed = st.Issued - st.Errors
	if st.Issued > 0 {
		st.ErrorRate = float64(st.Errors) / float64(st.Issued)
	}
	if elapsed > 0 {
		st.SustainedQPS = float64(st.Completed) / elapsed.Seconds()
	}
	ok := latencies[:0]
	for _, us := range latencies {
		if us > 0 {
			ok = append(ok, us)
		}
	}
	sort.Slice(ok, func(a, b int) bool { return ok[a] < ok[b] })
	st.P50US = percentile(ok, 0.50)
	st.P95US = percentile(ok, 0.95)
	st.P99US = percentile(ok, 0.99)
	return st
}

// percentile reads the p-quantile from sorted microsecond latencies.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
