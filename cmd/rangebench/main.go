// Command rangebench regenerates the paper's evaluation: every figure
// (5-12) plus the ablations DESIGN.md lists. Each experiment prints the
// rows/series the paper plots.
//
// Usage:
//
//	rangebench -fig 6a          # one experiment
//	rangebench -fig all         # everything (paper-scale, takes minutes)
//	rangebench -fig all -quick  # reduced parameters, seconds
//	rangebench -list            # available experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"p2prange/internal/experiments"
)

func main() {
	var (
		fig    = flag.String("fig", "", "experiment id (e.g. 5, 6a, 11b, kl) or 'all'")
		quick  = flag.Bool("quick", false, "use reduced parameters (fast smoke run)")
		list   = flag.Bool("list", false, "list available experiment ids")
		seed   = flag.Int64("seed", 42, "random seed")
		format = flag.String("format", "table", "output format: table | csv")
		outDir = flag.String("o", "", "write each experiment to <dir>/<id>.<ext> instead of stdout")

		sigCache    = flag.Int("sigcache", 0, "per-peer signature-cache capacity (ranges); 0 disables caching")
		hashWorkers = flag.Int("hashworkers", 0, "goroutines signing the k*l hash functions of large ranges; <=1 is serial")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:", strings.Join(experiments.IDs(), " "))
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}

	params := experiments.FullDefaults()
	if *quick {
		params = experiments.QuickDefaults()
	}
	params.Seed = *seed
	params.SigCache = *sigCache
	params.HashWorkers = *hashWorkers

	ids := []string{*fig}
	if strings.EqualFold(*fig, "all") {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		driver, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "rangebench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table, err := driver(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rangebench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := emit(table, *format, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "rangebench: %v\n", err)
			os.Exit(1)
		}
		if *outDir == "" {
			fmt.Printf("   (%s in %s)\n\n", table.ID, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("%s done in %s\n", table.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}

// emit writes one table to stdout or to <outDir>/<id>.<ext>.
func emit(table *experiments.Table, format, outDir string) error {
	write := func(w *os.File) error {
		switch format {
		case "table":
			_, err := table.WriteTo(w)
			return err
		case "csv":
			return table.WriteCSV(w)
		default:
			return fmt.Errorf("unknown format %q (want table or csv)", format)
		}
	}
	if outDir == "" {
		return write(os.Stdout)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ext := map[string]string{"table": "txt", "csv": "csv"}[format]
	if ext == "" {
		return fmt.Errorf("unknown format %q (want table or csv)", format)
	}
	f, err := os.Create(fmt.Sprintf("%s/%s.%s", outDir, table.ID, ext))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Close()
}
