// Command rangebench regenerates the paper's evaluation: every figure
// (5-12) plus the ablations DESIGN.md lists. Each experiment prints the
// rows/series the paper plots.
//
// Usage:
//
//	rangebench -fig 6a          # one experiment
//	rangebench -fig all         # everything (paper-scale, takes minutes)
//	rangebench -fig all -quick  # reduced parameters, seconds
//	rangebench -list            # available experiment ids
//
// With -metrics-out FILE, a JSON dump of the unified metrics registry is
// written after the run: per-experiment counter deltas (what each figure
// cost in lookups, hops, cache hits, transport calls) plus the final
// cumulative snapshot. See docs/OBSERVABILITY.md and EXPERIMENTS.md for a
// worked example.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"p2prange/internal/experiments"
	"p2prange/internal/metrics"
)

func main() {
	var (
		fig    = flag.String("fig", "", "experiment id (e.g. 5, 6a, 11b, kl) or 'all'")
		quick  = flag.Bool("quick", false, "use reduced parameters (fast smoke run)")
		list   = flag.Bool("list", false, "list available experiment ids")
		seed   = flag.Int64("seed", 42, "random seed")
		format = flag.String("format", "table", "output format: table | csv")
		outDir = flag.String("o", "", "write each experiment to <dir>/<id>.<ext> instead of stdout")

		load         = flag.Bool("load", false, "run the open-loop TCP load harness instead of a figure experiment")
		loadQPS      = flag.Int("load-qps", 48000, "load harness: full-rate target arrival rate (approached through a fractional ramp)")
		loadDuration = flag.Duration("load-duration", 2*time.Second, "load harness: duration of each ramp stage")
		loadSLO      = flag.Duration("load-slo", 25*time.Millisecond, "load harness: p99 latency budget a stage must meet to count as sustained")
		loadCodec    = flag.String("load-codec", "both", "load harness: wire protocol(s) to measure: both | binary | gob")
		loadPeers    = flag.Int("load-peers", 3, "load harness: ring size (live TCP peers on loopback)")
		loadOut      = flag.String("load-out", "BENCH_load.json", "load harness: JSON report path")
		loadProfile  = flag.String("load-cpuprofile", "", "load harness: write a CPU profile of the run to this file")
		loadFlight   = flag.Bool("load-flight", false, "load harness: A/B the flight recorder (on vs off) and record its overhead under flight_overhead in the report")

		sigCache    = flag.Int("sigcache", 0, "per-peer signature-cache capacity (ranges); 0 disables caching")
		hashWorkers = flag.Int("hashworkers", 0, "goroutines signing the k*l hash functions of large ranges; <=1 is serial")
		workloadP   = flag.String("workload", "", "query-distribution preset for quality runs: uniform (default) | zipf | clustered")
		metricsOut  = flag.String("metrics-out", "", "write per-experiment metric deltas and the final snapshot to this JSON file")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:", strings.Join(experiments.IDs(), " "))
		return
	}
	if *load {
		err := runLoad(loadOptions{
			qps:      *loadQPS,
			duration: *loadDuration,
			codec:    *loadCodec,
			peers:    *loadPeers,
			out:      *loadOut,
			seed:     *seed,
			profile:  *loadProfile,
			slo:      *loadSLO,
			flight:   *loadFlight,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rangebench: -load: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "" {
		flag.Usage()
		os.Exit(2)
	}

	params := experiments.FullDefaults()
	if *quick {
		params = experiments.QuickDefaults()
	}
	params.Seed = *seed
	params.SigCache = *sigCache
	params.HashWorkers = *hashWorkers
	params.Workload = *workloadP

	ids := []string{*fig}
	if strings.EqualFold(*fig, "all") {
		ids = experiments.IDs()
	}
	dump := metricsDump{Experiments: make(map[string]metrics.Snapshot, len(ids))}
	for _, id := range ids {
		driver, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "rangebench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		before := metrics.Default.Snapshot()
		start := time.Now()
		table, err := driver(params)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rangebench: %s: %v\n", id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		dump.Experiments[table.ID] = metrics.Default.Snapshot().Sub(before)
		if err := emit(table, *format, *outDir); err != nil {
			fmt.Fprintf(os.Stderr, "rangebench: %v\n", err)
			os.Exit(1)
		}
		if *outDir == "" {
			fmt.Printf("   (%s in %s)\n\n", table.ID, elapsed.Round(time.Millisecond))
		} else {
			fmt.Printf("%s done in %s\n", table.ID, elapsed.Round(time.Millisecond))
		}
	}
	if *metricsOut != "" {
		dump.Total = metrics.Default.Snapshot()
		if err := writeMetrics(*metricsOut, dump); err != nil {
			fmt.Fprintf(os.Stderr, "rangebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
}

// metricsDump is the -metrics-out JSON document: what each experiment
// contributed to every counter family, plus the run's cumulative totals.
type metricsDump struct {
	Experiments map[string]metrics.Snapshot `json:"experiments"`
	Total       metrics.Snapshot            `json:"total"`
}

// writeMetrics writes the dump as indented JSON.
func writeMetrics(path string, dump metricsDump) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dump); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emit writes one table to stdout or to <outDir>/<id>.<ext>.
func emit(table *experiments.Table, format, outDir string) error {
	write := func(w *os.File) error {
		switch format {
		case "table":
			_, err := table.WriteTo(w)
			return err
		case "csv":
			return table.WriteCSV(w)
		default:
			return fmt.Errorf("unknown format %q (want table or csv)", format)
		}
	}
	if outDir == "" {
		return write(os.Stdout)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ext := map[string]string{"table": "txt", "csv": "csv"}[format]
	if ext == "" {
		return fmt.Errorf("unknown format %q (want table or csv)", format)
	}
	f, err := os.Create(fmt.Sprintf("%s/%s.%s", outDir, table.ID, ext))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	return f.Close()
}
