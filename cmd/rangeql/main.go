// Command rangeql is an interactive SQL shell over the P2P range-selection
// system — either a self-contained simulated cluster preloaded with the
// paper's medical schema and synthetic data, or (with -connect) a live TCP
// ring of peerd processes. Selection leaves are resolved through the DHT:
// the first execution of a range predicate goes to the data source and
// caches the partition; later similar predicates are answered from peer
// caches.
//
//	rangeql                              # interactive shell, simulated ring
//	rangeql -e "SELECT ... "             # one-shot
//	rangeql -trace -e "SELECT .."        # one-shot with a per-query hop tree
//	rangeql -connect 127.0.0.1:7001 \
//	        -trace -e "SELECT ..."       # against a live peerd ring
//
// With -connect the shell starts an ephemeral peer on a local port, joins
// the ring via the given bootstrap address, and leaves gracefully on exit.
// The ring must share the default LSH parameters (-family approx, -k 20,
// -l 5); -seed doubles as the ring's -scheme-seed. The generated medical
// relations are registered locally as source fallback only — nothing is
// published — so queries run even against an empty ring, while predicates
// the ring has published partitions for are answered from remote peers.
//
// Meta commands: \plan <sql> shows the physical plan, \loads shows the
// per-peer stored-descriptor counts, \trace toggles per-query tracing,
// \q quits. With tracing on, every query prints a span tree — one branch
// per scan leaf, one sub-branch per LSH probe with its chord hops,
// retries, and detours — plus, over a live ring, the serve spans executed
// on the remote peers, grafted back with per-peer attribution (see
// docs/OBSERVABILITY.md for how to read it).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"p2prange"
	"p2prange/internal/flight"
	"p2prange/internal/relation"
)

// engine is the query surface shared by the simulated System and a live
// LivePeer, so the shell runs identically over both.
type engine interface {
	Query(sql string) (*p2prange.QueryResult, error)
	QueryTraced(sql string) (*p2prange.QueryResult, *p2prange.Trace, error)
	AddBase(r *p2prange.Relation) error
}

func main() {
	var (
		peers    = flag.Int("peers", 32, "number of simulated peers (ignored with -connect)")
		connect  = flag.String("connect", "", "join the live ring via this bootstrap peer instead of simulating")
		exec     = flag.String("e", "", "execute one statement and exit")
		seed     = flag.Int64("seed", 1, "system seed; with -connect, the ring's -scheme-seed")
		pad      = flag.Float64("pad", 0, "query padding fraction (e.g. 0.2; simulated mode only)")
		sigCache = flag.Int("sigcache", 256, "per-peer signature-cache capacity (ranges); 0 disables")
		workers  = flag.Int("hashworkers", 0, "goroutines signing large ranges; <=1 is serial")
		traceOn  = flag.Bool("trace", false, "print a per-query span tree (hops, retries, cache outcomes)")
	)
	flag.Parse()

	var (
		eng    engine
		banner string
	)
	if *connect != "" {
		lp, err := connectLive(*connect, *seed, *sigCache, *workers)
		if err != nil {
			log.Fatalf("rangeql: %v", err)
		}
		// Leave hands stored buckets to the successor and unlinks the
		// ephemeral peer from the ring; without it the ring would carry a
		// dead member until stabilization notices.
		defer lp.Leave()
		eng = lp
		banner = fmt.Sprintf("rangeql: joined ring via %s as %s, medical schema loaded", *connect, lp.Ref())
	} else {
		sys, err := buildSystem(*peers, *seed, *pad, *sigCache, *workers)
		if err != nil {
			log.Fatalf("rangeql: %v", err)
		}
		eng = sys
		banner = fmt.Sprintf("rangeql: %d peers, medical schema loaded (Patient, Diagnosis, Physician, Prescription)", *peers)
	}

	if *exec != "" {
		if err := run(eng, *exec, *traceOn); err != nil {
			log.Fatalf("rangeql: %v", err)
		}
		return
	}

	fmt.Println(banner)
	fmt.Println(`type SQL, or \plan <sql>, \loads, \trace, \slow, \dump <rel> <file>, \load <rel> <file>, \q`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("rangeql> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case line == `\loads`:
			showLoads(eng)
		case line == `\trace`:
			*traceOn = !*traceOn
			fmt.Printf("tracing %v\n", map[bool]string{true: "on", false: "off"}[*traceOn])
		case line == `\slow`:
			showSlow(eng)
		case strings.HasPrefix(line, `\plan `):
			sys, ok := eng.(*p2prange.System)
			if !ok {
				fmt.Println(`error: \plan needs the simulated planner (run without -connect)`)
				continue
			}
			plan, err := sys.Plan(strings.TrimPrefix(line, `\plan `))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(plan)
		case strings.HasPrefix(line, `\dump `), strings.HasPrefix(line, `\load `):
			if err := dumpOrLoad(eng, line); err != nil {
				fmt.Println("error:", err)
			}
		default:
			if err := run(eng, line, *traceOn); err != nil {
				fmt.Println("error:", err)
			}
		}
	}
}

// connectLive joins the ring as an ephemeral peer and registers the
// generated medical relations as local source fallback (not published).
func connectLive(bootstrap string, seed int64, sigCache, workers int) (*p2prange.LivePeer, error) {
	lp, err := p2prange.Connect(bootstrap, p2prange.LiveConfig{
		Family:      p2prange.ApproxMinWise,
		SchemeSeed:  seed,
		Schema:      relation.MedicalSchema(),
		SigCache:    sigCache,
		HashWorkers: workers,
	})
	if err != nil {
		return nil, err
	}
	rels, err := relation.GenerateMedical(relation.DefaultMedicalConfig())
	if err != nil {
		lp.Leave()
		return nil, err
	}
	for _, r := range rels {
		if err := lp.AddBase(r); err != nil {
			lp.Leave()
			return nil, err
		}
	}
	return lp, nil
}

// showSlow dumps this peer's flight recorder: the slow ring when any
// query crossed the threshold, the since-boot top-K otherwise — each
// entry with its stitched span tree, exactly what \trace would have
// printed, captured after the fact with no flag set.
func showSlow(eng engine) {
	lp, ok := eng.(*p2prange.LivePeer)
	if !ok {
		fmt.Println(`error: \slow reads the live flight recorder (run with -connect)`)
		return
	}
	rec := lp.Flight()
	if !rec.On() {
		fmt.Println("flight recorder disabled")
		return
	}
	entries := rec.Entries(flight.RingSlow)
	if len(entries) == 0 {
		entries = rec.Entries(flight.RingTop)
		if len(entries) == 0 {
			fmt.Println("no queries recorded yet")
			return
		}
		fmt.Printf("no queries over the %s slow threshold yet; slowest since boot:\n", rec.SlowThreshold())
	}
	for _, e := range entries {
		fmt.Println(e.String())
		fmt.Print(e.Root.Tree(true))
	}
}

// showLoads prints per-peer descriptor counts (simulated) or this peer's
// own count (live — remote counts come from rangetop).
func showLoads(eng engine) {
	switch e := eng.(type) {
	case *p2prange.System:
		fmt.Println(e.Loads())
	case *p2prange.LivePeer:
		fmt.Printf("local stored descriptors: %d (cluster-wide view: rangetop)\n", e.StoredPartitions())
	}
}

// dumpOrLoad handles "\dump <rel> <file>" and "\load <rel> <file>".
func dumpOrLoad(eng engine, line string) error {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return fmt.Errorf("usage: %s <relation> <file>", fields[0])
	}
	cmd, rel, path := fields[0], fields[1], fields[2]
	switch cmd {
	case `\dump`:
		sys, ok := eng.(*p2prange.System)
		if !ok {
			return fmt.Errorf(`\dump needs the simulated system (run without -connect)`)
		}
		r, ok := sys.Base(rel)
		if !ok {
			return fmt.Errorf("no base relation %q", rel)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d tuples to %s\n", r.Len(), path)
		return f.Close()
	case `\load`:
		rs, ok := relation.MedicalSchema().Relation(rel)
		if !ok {
			return fmt.Errorf("relation %q not in the schema", rel)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := relation.ReadCSV(rs, f)
		if err != nil {
			return err
		}
		if err := eng.AddBase(r); err != nil {
			return err
		}
		fmt.Printf("loaded %d tuples into %s\n", r.Len(), rel)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func buildSystem(peers int, seed int64, pad float64, sigCache, workers int) (*p2prange.System, error) {
	sys, err := p2prange.New(p2prange.Config{
		Peers:       peers,
		Family:      p2prange.ApproxMinWise,
		Measure:     p2prange.MatchContainment,
		PadFrac:     pad,
		Seed:        seed,
		Schema:      relation.MedicalSchema(),
		SigCache:    sigCache,
		HashWorkers: workers,
	})
	if err != nil {
		return nil, err
	}
	rels, err := relation.GenerateMedical(relation.DefaultMedicalConfig())
	if err != nil {
		return nil, err
	}
	for _, r := range rels {
		if err := sys.AddBase(r); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

func run(eng engine, sql string, traceOn bool) error {
	var res *p2prange.QueryResult
	var err error
	if traceOn {
		var tr *p2prange.Trace
		res, tr, err = eng.QueryTraced(sql)
		if tr != nil {
			// The trace is printed even when execution failed partway: the
			// hops recorded up to the failure are the diagnostic.
			fmt.Print(tr.Tree(true))
		}
	} else {
		res, err = eng.Query(sql)
	}
	if err != nil {
		return err
	}
	headers := make([]string, len(res.Columns))
	for i, c := range res.Columns {
		headers[i] = c.String()
	}
	fmt.Println(strings.Join(headers, " | "))
	const maxRows = 25
	for i, row := range res.Rows {
		if i == maxRows {
			fmt.Printf("... (%d rows total)\n", len(res.Rows))
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("%d row(s)", len(res.Rows))
	for k, r := range res.ScanRecall {
		fmt.Printf("  [%s recall %.2f]", k, r)
	}
	if sc := res.SigCache; sc != nil && sc.Total() > 0 {
		fmt.Printf("  [sig hits %d extends %d misses %d]", sc.Hits, sc.Extends, sc.Misses)
	}
	fmt.Println()
	return nil
}
