// Command rangeql is an interactive SQL shell over a simulated P2P
// system preloaded with the paper's medical schema and synthetic data.
// Selection leaves are resolved through the DHT: the first execution of a
// range predicate goes to the data source and caches the partition; later
// similar predicates are answered from peer caches.
//
//	rangeql                        # interactive shell
//	rangeql -e "SELECT ... "       # one-shot
//	rangeql -trace -e "SELECT .."  # one-shot with a per-query hop tree
//
// Meta commands: \plan <sql> shows the physical plan, \loads shows the
// per-peer stored-descriptor counts, \trace toggles per-query tracing,
// \q quits. With tracing on, every query prints a span tree — one branch
// per scan leaf, one sub-branch per LSH probe with its chord hops,
// retries, and detours — plus the timing of each stage (see
// docs/OBSERVABILITY.md for how to read it).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"p2prange"
	"p2prange/internal/relation"
)

func main() {
	var (
		peers    = flag.Int("peers", 32, "number of simulated peers")
		exec     = flag.String("e", "", "execute one statement and exit")
		seed     = flag.Int64("seed", 1, "system seed")
		pad      = flag.Float64("pad", 0, "query padding fraction (e.g. 0.2)")
		sigCache = flag.Int("sigcache", 256, "per-peer signature-cache capacity (ranges); 0 disables")
		workers  = flag.Int("hashworkers", 0, "goroutines signing large ranges; <=1 is serial")
		traceOn  = flag.Bool("trace", false, "print a per-query span tree (hops, retries, cache outcomes)")
	)
	flag.Parse()

	sys, err := buildSystem(*peers, *seed, *pad, *sigCache, *workers)
	if err != nil {
		log.Fatalf("rangeql: %v", err)
	}

	if *exec != "" {
		if err := run(sys, *exec, *traceOn); err != nil {
			log.Fatalf("rangeql: %v", err)
		}
		return
	}

	fmt.Printf("rangeql: %d peers, medical schema loaded (Patient, Diagnosis, Physician, Prescription)\n", *peers)
	fmt.Println(`type SQL, or \plan <sql>, \loads, \trace, \dump <rel> <file>, \load <rel> <file>, \q`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("rangeql> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case line == `\loads`:
			fmt.Println(sys.Loads())
		case line == `\trace`:
			*traceOn = !*traceOn
			fmt.Printf("tracing %v\n", map[bool]string{true: "on", false: "off"}[*traceOn])
		case strings.HasPrefix(line, `\plan `):
			plan, err := sys.Plan(strings.TrimPrefix(line, `\plan `))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(plan)
		case strings.HasPrefix(line, `\dump `), strings.HasPrefix(line, `\load `):
			if err := dumpOrLoad(sys, line); err != nil {
				fmt.Println("error:", err)
			}
		default:
			if err := run(sys, line, *traceOn); err != nil {
				fmt.Println("error:", err)
			}
		}
	}
}

// dumpOrLoad handles "\dump <rel> <file>" and "\load <rel> <file>".
func dumpOrLoad(sys *p2prange.System, line string) error {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return fmt.Errorf("usage: %s <relation> <file>", fields[0])
	}
	cmd, rel, path := fields[0], fields[1], fields[2]
	switch cmd {
	case `\dump`:
		r, ok := sys.Base(rel)
		if !ok {
			return fmt.Errorf("no base relation %q", rel)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("wrote %d tuples to %s\n", r.Len(), path)
		return f.Close()
	case `\load`:
		rs, ok := relation.MedicalSchema().Relation(rel)
		if !ok {
			return fmt.Errorf("relation %q not in the schema", rel)
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := relation.ReadCSV(rs, f)
		if err != nil {
			return err
		}
		if err := sys.AddBase(r); err != nil {
			return err
		}
		fmt.Printf("loaded %d tuples into %s\n", r.Len(), rel)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func buildSystem(peers int, seed int64, pad float64, sigCache, workers int) (*p2prange.System, error) {
	sys, err := p2prange.New(p2prange.Config{
		Peers:       peers,
		Family:      p2prange.ApproxMinWise,
		Measure:     p2prange.MatchContainment,
		PadFrac:     pad,
		Seed:        seed,
		Schema:      relation.MedicalSchema(),
		SigCache:    sigCache,
		HashWorkers: workers,
	})
	if err != nil {
		return nil, err
	}
	rels, err := relation.GenerateMedical(relation.DefaultMedicalConfig())
	if err != nil {
		return nil, err
	}
	for _, r := range rels {
		if err := sys.AddBase(r); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

func run(sys *p2prange.System, sql string, traceOn bool) error {
	var res *p2prange.QueryResult
	var err error
	if traceOn {
		var tr *p2prange.Trace
		res, tr, err = sys.QueryTraced(sql)
		if tr != nil {
			// The trace is printed even when execution failed partway: the
			// hops recorded up to the failure are the diagnostic.
			fmt.Print(tr.Tree(true))
		}
	} else {
		res, err = sys.Query(sql)
	}
	if err != nil {
		return err
	}
	headers := make([]string, len(res.Columns))
	for i, c := range res.Columns {
		headers[i] = c.String()
	}
	fmt.Println(strings.Join(headers, " | "))
	const maxRows = 25
	for i, row := range res.Rows {
		if i == maxRows {
			fmt.Printf("... (%d rows total)\n", len(res.Rows))
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("%d row(s)", len(res.Rows))
	for k, r := range res.ScanRecall {
		fmt.Printf("  [%s recall %.2f]", k, r)
	}
	if sc := res.SigCache; sc != nil && sc.Total() > 0 {
		fmt.Printf("  [sig hits %d extends %d misses %d]", sc.Hits, sc.Extends, sc.Misses)
	}
	fmt.Println()
	return nil
}
