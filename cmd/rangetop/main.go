// Command rangetop is the cluster-wide observability aggregator: it polls
// every peer's /status endpoint (served by peerd -debug-addr), merges the
// per-process metric snapshots into one cluster view, and renders a
// refreshing ranked terminal display of per-peer load plus cluster
// rollups — ring-wide load imbalance, hop-count and lookup-latency
// percentiles, signature-cache hit rate, replica repair activity, and
// per-peer deltas since the previous refresh.
//
//	rangetop -peers 127.0.0.1:8001,127.0.0.1:8002,127.0.0.1:8003
//	rangetop -peers 127.0.0.1:8001,127.0.0.1:8002 -once -json
//
// -peers takes the peers' debug addresses (the -debug-addr values, not
// the ring listen addresses). With -once the display renders a single
// time and exits; adding -json emits the raw obs.ClusterView JSON
// instead, for scripts and the EXPERIMENTS.md walkthroughs. Peers that
// fail to answer are reported and skipped, so a crashed peer does not
// blind the aggregator. See docs/OBSERVABILITY.md for the column
// reference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"p2prange/internal/obs"
)

func main() {
	var (
		peers    = flag.String("peers", "", "comma-separated peer debug addresses (host:port of -debug-addr)")
		interval = flag.Duration("interval", 2*time.Second, "poll/refresh interval")
		once     = flag.Bool("once", false, "poll once, render, and exit")
		asJSON   = flag.Bool("json", false, "emit the cluster view as JSON (with -once: a single document)")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-peer HTTP timeout")
	)
	flag.Parse()
	addrs := splitAddrs(*peers)
	if len(addrs) == 0 {
		log.Fatal("rangetop: -peers is required (comma-separated debug addresses)")
	}
	client := &http.Client{Timeout: *timeout}

	var prev map[string]obs.NodeStatus
	for {
		nodes, errs := poll(client, addrs)
		view := obs.Compute(nodes, nil)
		if *asJSON {
			if !*once {
				for _, e := range errs {
					fmt.Fprintf(os.Stderr, "rangetop: unreachable: %s\n", e)
				}
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(view); err != nil {
				log.Fatalf("rangetop: %v", err)
			}
		} else {
			render(view, prev, errs, !*once)
		}
		if *once {
			// A single-shot poll is a health check as much as a snapshot:
			// any unreachable peer makes the exit status non-zero so
			// scripts and CI notice, with the unreachable set on stderr.
			if len(errs) > 0 {
				for _, e := range errs {
					fmt.Fprintf(os.Stderr, "rangetop: unreachable: %s\n", e)
				}
				os.Exit(1)
			}
			return
		}
		prev = byAddr(nodes)
		time.Sleep(*interval)
	}
}

// splitAddrs parses the -peers list, dropping empty entries.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// poll fetches every peer's status, returning the reachable ones and a
// per-address error list for the rest.
func poll(client *http.Client, addrs []string) ([]obs.NodeStatus, []string) {
	var nodes []obs.NodeStatus
	var errs []string
	for _, addr := range addrs {
		st, err := fetchStatus(client, addr)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", addr, err))
			continue
		}
		nodes = append(nodes, st)
	}
	return nodes, errs
}

// fetchStatus GETs one peer's /status document.
func fetchStatus(client *http.Client, addr string) (obs.NodeStatus, error) {
	var st obs.NodeStatus
	resp, err := client.Get("http://" + addr + "/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("decode: %w", err)
	}
	return st, nil
}

// byAddr indexes statuses for delta computation across refreshes.
func byAddr(nodes []obs.NodeStatus) map[string]obs.NodeStatus {
	m := make(map[string]obs.NodeStatus, len(nodes))
	for _, n := range nodes {
		m[n.Addr] = n
	}
	return m
}

// render paints one refresh: a rollup header, the ranked per-peer table
// (busiest first, with deltas since the previous refresh), and any
// unreachable peers. clear redraws from the top-left for live mode.
func render(v obs.ClusterView, prev map[string]obs.NodeStatus, errs []string, clear bool) {
	var b strings.Builder
	if clear {
		b.WriteString("\033[2J\033[H")
	}
	r := v.Rollup
	fmt.Fprintf(&b, "rangetop — %d/%d peers stable — %s\n\n",
		r.StablePeers, r.Peers, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "  stored   total=%-6d max=%-5d mean=%-8.1f imbalance=%.2f\n",
		r.TotalStored, r.MaxStored, r.MeanStored, r.StoredImbalance)
	fmt.Fprintf(&b, "  served   total=%-6d max=%-5d imbalance=%.2f\n",
		r.TotalServed, r.MaxServed, r.ServedImbalance)
	fmt.Fprintf(&b, "  hops     p50=%-5.1f p95=%-5.1f p99=%.1f\n", r.HopP50, r.HopP95, r.HopP99)
	fmt.Fprintf(&b, "  lookup   p50=%-5.0fus p95=%-5.0fus p99=%.0fus\n",
		r.LookupP50US, r.LookupP95US, r.LookupP99US)
	fmt.Fprintf(&b, "  sig-hit  %.1f%%   lookup-success %.1f%%   transport-errors %.2f%%\n",
		100*r.SigHitRate, 100*r.LookupSuccessRate, 100*r.TransportErrorRate)
	fmt.Fprintf(&b, "  replica  repaired=%d sync-rounds=%d promotions=%d\n",
		r.ReplicaRepaired, r.ReplicaSyncRounds, r.ReplicaPromotions)
	if r.FlightFinished > 0 || r.EventWarns+r.EventErrors > 0 {
		worst := "-"
		if r.WorstQueryUS > 0 {
			worst = fmt.Sprintf("%s @%s", fmtUS(r.WorstQueryUS), r.WorstQueryPeer)
		}
		fmt.Fprintf(&b, "  flight   finished=%d kept-slow=%d worst=%s   events warn=%d err=%d\n",
			r.FlightFinished, r.FlightKeptSlow, worst, r.EventWarns, r.EventErrors)
	}
	g := v.Global
	if g.Counters["ship.push_records"]+g.Counters["ship.applied_records"]+
		g.Counters["ship.snapshot_seeds"]+g.Counters["replica.ship_synced"] > 0 {
		fmt.Fprintf(&b, "  ship     pushed=%d applied=%d seeds=%d resets=%d digest-fallbacks=%d max-lag=%s\n",
			g.Counters["ship.push_records"], g.Counters["ship.applied_records"],
			g.Counters["ship.snapshot_seeds"], g.Counters["ship.cursor_resets"],
			g.Counters["replica.ship_fallbacks"], fmtBytes(g.Gauges["ship.max_lag_bytes"]))
	}
	b.WriteString("\n")

	nodes := append([]obs.NodeStatus(nil), v.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Served > nodes[j].Served })
	fmt.Fprintf(&b, "  %-22s %-10s %8s %8s %8s %8s %9s  %s\n",
		"ADDR", "ID", "STORED", "ΔSTORED", "SERVED", "ΔSERVED", "WORST", "STATE")
	for _, n := range nodes {
		dStored, dServed := "-", "-"
		if p, ok := prev[n.Addr]; ok {
			dStored = fmt.Sprintf("%+d", n.Stored-p.Stored)
			dServed = fmt.Sprintf("%+d", n.Served-p.Served)
		}
		state := "stable"
		if !n.Stable {
			state = "stabilizing"
		}
		if n.Ship != nil {
			// Follower peers show who they tail and where the state
			// machine sits (snapshot seed vs record tail).
			state += fmt.Sprintf("  %s←%s", n.Ship.State, n.Ship.Owner)
		}
		// Worst recent query from the peer's flight recorder — the cell
		// that answers "which peer is hurting" before anyone greps logs.
		worst := "-"
		if n.Flight != nil && n.Flight.WorstUS > 0 {
			worst = fmtUS(n.Flight.WorstUS)
		}
		id := n.Ref
		if i := strings.IndexByte(id, '@'); i > 0 {
			id = id[:i]
		}
		fmt.Fprintf(&b, "  %-22s %-10s %8d %8s %8d %8s %9s  %s\n",
			n.Addr, id, n.Stored, dStored, n.Served, dServed, worst, state)
		if d := n.Durable; d != nil && (len(d.Followers) > 0 || d.RetainedBytes > 0) {
			// Retention pressure and per-follower lag, indented under
			// the owning peer.
			fmt.Fprintf(&b, "  %24s wal=%s seg=%s retained=%s\n", "",
				fmtBytes(d.WALBytes), fmtBytes(d.SegmentBytes), fmtBytes(d.RetainedBytes))
			for _, f := range d.Followers {
				phase := "tail"
				if f.Snapshot {
					phase = "snapshot"
				}
				fmt.Fprintf(&b, "  %24s follower %s cursor=%d:%d lag=%s (%s)\n", "",
					f.Addr, f.Seq, f.Off, fmtBytes(f.LagBytes), phase)
			}
		}
	}
	renderEvents(&b, nodes)
	for _, e := range errs {
		fmt.Fprintf(&b, "  unreachable: %s\n", e)
	}
	os.Stdout.WriteString(b.String())
}

// renderEvents paints the cluster event pane: the newest journal lines
// across every polled peer, merged by timestamp. Peers sharing one
// process share one journal, so identical lines are deduplicated.
func renderEvents(b *strings.Builder, nodes []obs.NodeStatus) {
	type row struct {
		addr string
		e    obs.Event
	}
	var rows []row
	seen := make(map[string]bool)
	for _, n := range nodes {
		if n.Events == nil {
			continue
		}
		for _, e := range n.Events.Recent {
			key := e.Time.String() + "|" + e.Sub + "|" + e.Msg
			if seen[key] {
				continue
			}
			seen[key] = true
			rows = append(rows, row{addr: n.Addr, e: e})
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].e.Time.After(rows[j].e.Time) })
	if len(rows) > 10 {
		rows = rows[:10]
	}
	b.WriteString("\n  EVENTS (newest first)\n")
	for _, r := range rows {
		fmt.Fprintf(b, "  %s %-5s [%s] %s\n",
			r.e.Time.Format("15:04:05"), r.e.Sev, r.e.Sub, r.e.Msg)
	}
}

// fmtUS renders a microsecond duration compactly (e.g. 850µs, 12.5ms).
func fmtUS(us int64) string {
	if us <= 0 {
		return "-"
	}
	return time.Duration(us * int64(time.Microsecond)).Round(10 * time.Microsecond).String()
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
