// Command walctl inspects and repairs p2prange data directories offline.
//
//	walctl dump <dir>              print every valid record in replay order
//	walctl verify <dir>            CRC-walk every record and footer; exit 1 on damage
//	walctl restore -from <backup> -to <dir>   seed an empty data dir from a backup segment
//
// verify is the backup-integrity gate: run it against a peer's -backup-to
// directory (or a copy of a stopped peer's -data-dir) before trusting it.
// It walks every WAL record frame and every segment record, seal, and
// index footer with the same checks boot-time recovery applies, but
// treats anything recovery would merely tolerate — a torn WAL tail, a
// rebuilt-on-boot footer — as damage, because a backup should be the
// bytes compaction wrote, not the subset recovery can salvage.
//
// restore refuses a non-empty destination: it seeds new data directories
// only (the disaster-recovery path), never merges into live ones. After
// restore, start peerd with -data-dir pointing at the destination; boot
// recovers from the restored segment exactly as from its own fold.
package main

import (
	"flag"
	"fmt"
	"os"

	"p2prange/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "dump":
		os.Exit(runDump(os.Args[2:]))
	case "verify":
		os.Exit(runVerify(os.Args[2:]))
	case "restore":
		os.Exit(runRestore(os.Args[2:]))
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "walctl: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  walctl dump <dir>                        print every valid record in replay order
  walctl verify <dir>                      CRC-walk records and footers; exit 1 on damage
  walctl restore -from <backup> -to <dir>  seed an empty data dir from a backup segment
`)
}

func dirArg(fs *flag.FlagSet, args []string) (string, bool) {
	fs.Usage = usage
	if err := fs.Parse(args); err != nil {
		return "", false
	}
	if fs.NArg() != 1 {
		usage()
		return "", false
	}
	return fs.Arg(0), true
}

// runDump prints every valid record with its file of origin, then the
// per-file summary. Damage does not fail a dump — seeing how far a
// damaged file reads is the point — but it is reported.
func runDump(args []string) int {
	dir, ok := dirArg(flag.NewFlagSet("dump", flag.ContinueOnError), args)
	if !ok {
		return 2
	}
	rep, err := wal.InspectDir(dir, func(file string, r wal.Record) {
		fmt.Printf("%s\t%s\n", file, formatRecord(r))
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "walctl: %v\n", err)
		return 1
	}
	printReport(rep)
	return 0
}

// runVerify is dump without the record stream: every frame and footer
// is checked, nothing printed but the verdict. Exit 1 on any damage.
func runVerify(args []string) int {
	dir, ok := dirArg(flag.NewFlagSet("verify", flag.ContinueOnError), args)
	if !ok {
		return 2
	}
	rep, err := wal.InspectDir(dir, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "walctl: %v\n", err)
		return 1
	}
	printReport(rep)
	if !rep.Clean() {
		fmt.Printf("FAIL: %d damaged file(s)\n", rep.Damaged)
		return 1
	}
	fmt.Printf("ok: %d file(s), %d record(s)\n", len(rep.Files), rep.Records)
	return 0
}

func runRestore(args []string) int {
	fs := flag.NewFlagSet("restore", flag.ContinueOnError)
	from := fs.String("from", "", "backup segment file or directory (newest segment wins)")
	to := fs.String("to", "", "destination data directory (must be empty or absent)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *from == "" || *to == "" {
		fmt.Fprintln(os.Stderr, "walctl restore: -from and -to are required")
		return 2
	}
	seq, records, err := wal.RestoreSegment(*from, *to)
	if err != nil {
		fmt.Fprintf(os.Stderr, "walctl: restore: %v\n", err)
		return 1
	}
	fmt.Printf("restored segment %d (%d records) into %s\n", seq, records, *to)
	return 0
}

func printReport(rep wal.DirReport) {
	for _, f := range rep.Files {
		status := "ok"
		if f.Damage != "" {
			status = "DAMAGED: " + f.Damage
		} else if f.FooterDamage != "" {
			status = "FOOTER DAMAGED: " + f.FooterDamage
		}
		fmt.Printf("%-24s %-7s seq=%d %8d bytes %6d records  %s\n",
			f.Name, f.Kind, f.Seq, f.Bytes, f.Records, status)
	}
}

func formatRecord(r wal.Record) string {
	switch r.Op {
	case wal.OpPut:
		return fmt.Sprintf("put id=%d %s.%s[%d,%d] holder=%s v=%d origin=%s",
			r.ID, r.Part.Relation, r.Part.Attribute, r.Part.Range.Lo, r.Part.Range.Hi,
			r.Part.Holder, r.Part.Version, r.Part.Origin)
	case wal.OpEvict:
		return fmt.Sprintf("evict id=%d key=%s", r.ID, r.Key)
	case wal.OpDropArc:
		return fmt.Sprintf("drop-arc (%d,%d]", r.From, r.To)
	default:
		return fmt.Sprintf("op=%d", r.Op)
	}
}
