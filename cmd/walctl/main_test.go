package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p2prange/internal/store"
	"p2prange/internal/wal"
)

// writeDir builds a data directory with a sealed segment and a live WAL
// tail — the shape a stopped peer leaves behind.
func writeDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	st := store.New()
	lg, _, err := wal.Open(wal.Options{Dir: dir, CompactEvery: -1}, wal.StoreRestorer(st))
	if err != nil {
		t.Fatal(err)
	}
	st.SetJournal(lg)
	for i := 0; i < 20; i++ {
		p := store.Partition{Relation: "R", Attribute: "a", Holder: "h:1", Version: 1, Origin: "o:1"}
		p.Range.Lo, p.Range.Hi = int64(i), int64(i+10)
		st.Put(store.ID(i), p)
	}
	if err := lg.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := lg.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	lg.Evict(3, "R|a")
	if err := lg.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestWalctlVerifyAndDump(t *testing.T) {
	dir := writeDir(t)
	if code := runVerify([]string{dir}); code != 0 {
		t.Fatalf("verify of a clean dir exited %d", code)
	}
	if code := runDump([]string{dir}); code != 0 {
		t.Fatalf("dump exited %d", code)
	}

	// Flip one byte mid-file: verify must fail, dump must still run.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment written: %v", err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runVerify([]string{dir}); code != 1 {
		t.Fatalf("verify of a damaged dir exited %d, want 1", code)
	}
	if code := runDump([]string{dir}); code != 0 {
		t.Fatalf("dump of a damaged dir exited %d, want 0 (dump reports, never fails)", code)
	}
}

func TestWalctlRestore(t *testing.T) {
	src := writeDir(t)
	dst := filepath.Join(t.TempDir(), "restored")
	if code := runRestore([]string{"-from", src, "-to", dst}); code != 0 {
		t.Fatalf("restore exited %d", code)
	}
	if code := runVerify([]string{dst}); code != 0 {
		t.Fatalf("verify of restored dir exited %d", code)
	}
	// Restored dir must boot: recovery sees the segment as its own fold.
	st := store.New()
	lg, _, err := wal.Open(wal.Options{Dir: dst, CompactEvery: -1}, wal.StoreRestorer(st))
	if err != nil {
		t.Fatalf("restored dir failed recovery: %v", err)
	}
	defer lg.Close()
	if got := len(st.Digest(nil)); got == 0 {
		t.Fatal("restored store is empty")
	}
	// A second restore into the now non-empty dir must refuse.
	if code := runRestore([]string{"-from", src, "-to", dst}); code != 1 {
		t.Fatalf("restore into non-empty dir exited %d, want 1", code)
	}
}

func TestWalctlUsageErrors(t *testing.T) {
	if code := runVerify([]string{}); code != 2 {
		t.Fatalf("verify with no dir exited %d, want 2", code)
	}
	if code := runRestore([]string{"-from", "x"}); code != 2 {
		t.Fatalf("restore without -to exited %d, want 2", code)
	}
	if code := runVerify([]string{filepath.Join(t.TempDir(), "absent")}); code == 0 {
		t.Fatal("verify of a missing dir exited 0")
	}
}

func TestFormatRecordCoversOps(t *testing.T) {
	r := wal.Record{Op: wal.OpPut, ID: 7}
	r.Part = store.Partition{Relation: "R", Attribute: "a", Holder: "h", Version: 2, Origin: "o"}
	if s := formatRecord(r); !strings.Contains(s, "put id=7") {
		t.Fatalf("put formatting: %q", s)
	}
	if s := formatRecord(wal.Record{Op: wal.OpEvict, ID: 1, Key: "k"}); !strings.Contains(s, "evict") {
		t.Fatalf("evict formatting: %q", s)
	}
	if s := formatRecord(wal.Record{Op: wal.OpDropArc, From: 1, To: 2}); !strings.Contains(s, "drop-arc") {
		t.Fatalf("drop-arc formatting: %q", s)
	}
}
