package p2prange_test

import (
	"fmt"
	"log"

	"p2prange"
	"p2prange/internal/relation"
)

// The basic flow: cache a range partition, then find it with a similar —
// not identical — query.
func ExampleSystem_Lookup() {
	sys, err := p2prange.New(p2prange.Config{
		Peers:   16,
		Family:  p2prange.ApproxMinWise,
		Measure: p2prange.MatchContainment,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	cached, _ := p2prange.NewRange(30, 50)
	sys.Lookup("Patient", "age", cached, true) // miss: caches [30,50]

	query, _ := p2prange.NewRange(30, 49) // 0.95-similar
	m, found, err := sys.Lookup("Patient", "age", query, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found=%v match=%s score=%.2f\n", found, m.Partition.Range, m.Score)
	// Output: found=true match=[30,50] score=1.00
}

// SQL queries resolve their selection leaves through the DHT, falling
// back to the data source (and caching) on a miss.
func ExampleSystem_Query() {
	sys, err := p2prange.New(p2prange.Config{
		Peers:   16,
		Measure: p2prange.MatchContainment,
		Seed:    5,
		Schema:  relation.MedicalSchema(),
	})
	if err != nil {
		log.Fatal(err)
	}
	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 200, Physicians: 10, Diagnoses: 500, Seed: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rels {
		if err := sys.AddBase(r); err != nil {
			log.Fatal(err)
		}
	}

	res, err := sys.Query("SELECT COUNT(*) FROM Patient WHERE 30 <= age AND age <= 50")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s = %s (recall %.0f)\n",
		res.Columns[0].Column, res.Rows[0][0], res.ScanRecall["Patient.age"])
	// Output: COUNT(*) = 36 (recall 1)
}

// Multi-interval predicates look up each component range and report how
// much of the whole set the cache covered.
func ExampleSystem_LookupMulti() {
	sys, err := p2prange.New(p2prange.Config{
		Peers:   16,
		Measure: p2prange.MatchContainment,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	a, _ := p2prange.NewRange(30, 50)
	b, _ := p2prange.NewRange(100, 120)
	sys.Lookup("R", "x", a, true)
	sys.Lookup("R", "x", b, true)

	res, err := sys.LookupMulti("R", "x", false, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("components=%d recall=%.2f\n", len(res.Components), res.Recall)
	// Output: components=2 recall=1.00
}
