// Churn: the system keeps answering approximate range queries while
// peers join, leave gracefully, and crash. Graceful departures hand their
// cached partition descriptors to their ring successor, so the cache
// survives; crashes lose descriptors, which simply re-cache on the next
// miss.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"math/rand"

	"p2prange"
)

func main() {
	sys, err := p2prange.New(p2prange.Config{
		Peers:   24,
		Family:  p2prange.ApproxMinWise,
		Measure: p2prange.MatchContainment,
		Seed:    21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Warm the caches with 200 queries.
	rng := rand.New(rand.NewSource(1))
	nextRange := func() p2prange.Range {
		lo := rng.Int63n(900)
		r, _ := p2prange.NewRange(lo, lo+rng.Int63n(100)+1)
		return r
	}
	for i := 0; i < 200; i++ {
		if _, _, err := sys.Lookup("R", "a", nextRange(), true); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("warmed %d-peer system: %d descriptors cached\n", sys.Peers(), total(sys))

	events := []struct {
		name string
		do   func() (int, error)
	}{
		{"join", sys.Grow},
		{"join", sys.Grow},
		{"graceful leave", sys.Shrink},
		{"graceful leave", sys.Shrink},
		{"crash", sys.CrashOne},
		{"join", sys.Grow},
		{"graceful leave", sys.Shrink},
	}
	for _, ev := range events {
		before := total(sys)
		n, err := ev.do()
		if err != nil {
			log.Fatalf("%s: %v", ev.name, err)
		}
		// The workload keeps running across the event.
		ok, matched := 0, 0
		for i := 0; i < 50; i++ {
			_, found, err := sys.Lookup("R", "a", nextRange(), true)
			if err == nil {
				ok++
				if found {
					matched++
				}
			}
		}
		fmt.Printf("%-15s -> %2d peers; descriptors %4d -> %4d; next 50 queries: %d ok, %d matched\n",
			ev.name, n, before, total(sys), ok, matched)
	}

	fmt.Println("\nall queries kept succeeding through churn; graceful leaves preserved the cache")
}

func total(sys *p2prange.System) int {
	t := 0
	for _, l := range sys.Loads() {
		t += l
	}
	return t
}
