// Distjoin: the distributed hash join over the DHT (the Harren et al.
// operation this paper's architecture complements). Two peers hold the
// Patient and Diagnosis relations; every tuple re-hashes by join key to
// its owner peer on the ring; owners join locally and the coordinator —
// a third peer that never sees either full relation — collects only the
// matching pairs.
//
//	go run ./examples/distjoin
package main

import (
	"fmt"
	"log"
	"math/rand"

	"p2prange/internal/djoin"
	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/relation"
	"p2prange/internal/sim"
)

func main() {
	scheme, err := minhash.NewDefaultScheme(minhash.ApproxMinWise, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := sim.NewCluster(sim.ClusterConfig{
		N:    20,
		Peer: peer.Config{Scheme: scheme.Compiled()},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range cluster.Peers {
		djoin.NewService(p)
	}

	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 400, Physicians: 20, Diagnoses: 1000, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	patientHolder := cluster.Peers[2]
	diagnosisHolder := cluster.Peers[9]
	coordinator := cluster.Peers[15]
	fmt.Printf("Patient (%d tuples) at %s\n", rels["Patient"].Len(), patientHolder.Ref())
	fmt.Printf("Diagnosis (%d tuples) at %s\n", rels["Diagnosis"].Len(), diagnosisHolder.Ref())
	fmt.Printf("coordinator %s\n\n", coordinator.Ref())

	res, err := djoin.Run(coordinator, "demo",
		djoin.Input{Holder: patientHolder, Rel: rels["Patient"], Key: "patient_id"},
		djoin.Input{Holder: diagnosisHolder, Rel: rels["Diagnosis"], Key: "patient_id"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Patient ⋈ Diagnosis on patient_id: %d pairs in %d protocol messages\n",
		res.Len(), res.Messages)

	// Show a couple of joined rows: patient name + diagnosis.
	nameIdx, _ := res.LeftSchema.ColIndex("name")
	diagIdx, _ := res.RightSchema.ColIndex("diagnosis")
	for i := 0; i < 3 && i < res.Len(); i++ {
		fmt.Printf("  %s — %s\n", res.Left[i][nameIdx], res.Right[i][diagIdx])
	}
}
