// Livecluster: a real TCP deployment on localhost. Eight peers start,
// join a ring through one bootstrap node, stabilize, and then serve
// approximate range lookups over actual sockets — the same protocol the
// simulation runs in memory, including fetching matched partition tuples
// from the holder peer.
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"time"

	"p2prange"
	"p2prange/internal/relation"
)

func main() {
	cfg := p2prange.LiveConfig{
		Family:     p2prange.ApproxMinWise,
		Measure:    p2prange.MatchContainment,
		SchemeSeed: 99,
		Schema:     relation.MedicalSchema(),
	}

	// Bootstrap node starts a fresh ring.
	boot, err := p2prange.StartPeer("127.0.0.1:0", "", cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer boot.Close()
	fmt.Printf("bootstrap peer %s\n", boot.Ref())

	peers := []*p2prange.LivePeer{boot}
	for i := 1; i < 8; i++ {
		p, err := p2prange.StartPeer("127.0.0.1:0", boot.Addr(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer p.Close()
		peers = append(peers, p)
		fmt.Printf("joined    peer %s\n", p.Ref())
	}

	// Let the stabilization protocol converge the ring.
	deadline := time.Now().Add(10 * time.Second)
	for _, p := range peers {
		if !p.WaitStable(time.Until(deadline)) {
			log.Fatalf("peer %s did not stabilize", p.Ref())
		}
	}
	fmt.Println("ring stabilized")

	// One peer holds real patient data and publishes a partition for ages
	// 30-50.
	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 500, Physicians: 20, Diagnoses: 1000, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	holder := peers[3]
	ages, err := p2prange.NewRange(30, 50)
	if err != nil {
		log.Fatal(err)
	}
	if err := holder.AddPartition(rels["Patient"], "age", ages); err != nil {
		log.Fatal(err)
	}
	if err := holder.Publish(holder.Descriptor("Patient", "age", ages)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npeer %s published Patient.age%s\n", holder.Ref(), ages)

	// A different peer asks for a similar — not identical — range.
	querier := peers[6]
	q, err := p2prange.NewRange(30, 49)
	if err != nil {
		log.Fatal(err)
	}
	m, found, err := querier.Lookup("Patient", "age", q, false)
	if err != nil {
		log.Fatal(err)
	}
	if !found {
		log.Fatalf("no match found for %s", q)
	}
	fmt.Printf("peer %s looked up Patient.age%s over TCP\n", querier.Ref(), q)
	fmt.Printf("  matched %s at %s (containment %.2f)\n",
		m.Partition.Range, m.Partition.Holder, m.Score)

	// Fetch the actual tuples from the holder across the network.
	data, err := querier.Fetch(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fetched %d patient tuples from the holder\n", data.Len())

	// Graceful departure keeps the ring consistent.
	if err := peers[5].Leave(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npeer %s left gracefully; remaining peers keep serving\n", peers[5].Ref())
	if _, found, err = querier.Lookup("Patient", "age", q, false); err != nil {
		log.Fatal(err)
	} else if found {
		fmt.Println("lookup after departure still finds the partition")
	}

	// Abrupt crash: a peer vanishes with no handoff and no notification,
	// leaving stale fingers and successor pointers at every other peer.
	// Transport retries plus successor-list rerouting keep lookups
	// resolving before the stabilization protocol has repaired the ring.
	peers[2].Close()
	fmt.Printf("\npeer %s crashed abruptly\n", peers[2].Ref())
	if _, found, err = querier.Lookup("Patient", "age", q, false); err != nil {
		log.Fatal(err)
	} else if found {
		fmt.Println("lookup right after the crash still finds the partition")
	}
	rs := querier.RouteStats()
	fmt.Printf("  querier fault handling: %d lookups, %.1f%% success, %d retries, %d reroutes\n",
		rs.Lookups, rs.SuccessRate(), rs.Retries, rs.Rerouted)
}
