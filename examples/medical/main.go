// Medical: the paper's Section 2 walk-through. A P2P system shares the
// medical global schema; the example runs the paper's SQL query (find
// prescriptions for Glaucoma patients aged 30-50, dated 2000-2002),
// showing how selections push to the leaves, resolve through the DHT, and
// how similar follow-up queries are answered from peer caches with less
// than perfect — but quantified — recall.
//
//	go run ./examples/medical
package main

import (
	"fmt"
	"log"

	"p2prange"
	"p2prange/internal/relation"
)

const paperQuery = `
SELECT Prescription.prescription
FROM Patient, Diagnosis, Prescription
WHERE 30 <= age AND age <= 50
  AND diagnosis = 'Glaucoma'
  AND Patient.patient_id = Diagnosis.patient_id
  AND '2000-01-01' <= date AND date <= '2002-12-31'
  AND Diagnosis.prescription_id = Prescription.prescription_id`

// A nearby follow-up: slightly different age range and dates. With exact
// range matching this would miss every cached partition; with LSH it
// matches the partitions the first query materialized.
const similarQuery = `
SELECT Prescription.prescription
FROM Patient, Diagnosis, Prescription
WHERE 30 <= age AND age <= 49
  AND diagnosis = 'Glaucoma'
  AND Patient.patient_id = Diagnosis.patient_id
  AND '2000-01-01' <= date AND date <= '2002-11-30'
  AND Diagnosis.prescription_id = Prescription.prescription_id`

func main() {
	schema := relation.MedicalSchema()
	sys, err := p2prange.New(p2prange.Config{
		Peers:   40,
		Family:  p2prange.ApproxMinWise,
		Measure: p2prange.MatchContainment,
		Seed:    11,
		Schema:  schema,
	})
	if err != nil {
		log.Fatal(err)
	}

	rels, err := relation.GenerateMedical(relation.DefaultMedicalConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rels {
		if err := sys.AddBase(r); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("medical schema loaded:")
	for _, name := range schema.Relations() {
		fmt.Printf("  %-13s %d tuples\n", name, rels[name].Len())
	}

	plan, err := sys.Plan(paperQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphysical plan (selects pushed to the leaves, Fig. 1):\n  %s\n", plan)

	fmt.Println("\n-- first execution: cold caches, partitions fetched from the source and cached --")
	res, err := sys.Query(paperQuery)
	if err != nil {
		log.Fatal(err)
	}
	report(res)

	fmt.Println("\n-- similar query: age 30-49, dates through Nov 2002; answered from peer caches --")
	res, err = sys.Query(similarQuery)
	if err != nil {
		log.Fatal(err)
	}
	report(res)

	total := 0
	for _, l := range sys.Loads() {
		total += l
	}
	fmt.Printf("\npartition descriptors cached across the ring: %d\n", total)
}

func report(res *p2prange.QueryResult) {
	fmt.Printf("%d prescriptions", len(res.Rows))
	if len(res.Rows) > 0 {
		fmt.Printf(" (e.g. %s", res.Rows[0][0])
		if len(res.Rows) > 1 {
			fmt.Printf(", %s", res.Rows[1][0])
		}
		fmt.Print(")")
	}
	fmt.Println()
	for scan, recall := range res.ScanRecall {
		fmt.Printf("  scan %-20s recall %.2f\n", scan, recall)
	}
}
