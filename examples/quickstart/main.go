// Quickstart: build a simulated 50-peer system, cache range partitions,
// and watch approximate lookups find them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"p2prange"
)

func main() {
	sys, err := p2prange.New(p2prange.Config{
		Peers:   50,
		Family:  p2prange.ApproxMinWise,
		Measure: p2prange.MatchContainment,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system up: %d peers on the chord ring\n\n", sys.Peers())

	// A first query: the system is empty, so nothing matches, and the
	// protocol caches this range's descriptor at its l identifier owners.
	q1 := mustRange(30, 50)
	if _, found, err := sys.Lookup("Patient", "age", q1, true); err != nil {
		log.Fatal(err)
	} else if !found {
		fmt.Printf("lookup %s: no cached partition yet (range now cached)\n", q1)
	}

	// The paper's motivating example: [30,49] is not an exact repeat, but
	// it is 95% similar to the cached [30,50] — and fully contained in it.
	q2 := mustRange(30, 49)
	m, found, err := sys.Lookup("Patient", "age", q2, true)
	if err != nil {
		log.Fatal(err)
	}
	if found {
		fmt.Printf("lookup %s: matched cached partition %s\n", q2, m.Partition.Range)
		fmt.Printf("  containment score: %.2f (the whole answer is in the cache)\n", m.Score)
		fmt.Printf("  jaccard similarity: %.2f\n", q2.Jaccard(m.Partition.Range))
	}

	// A dissimilar range finds nothing useful.
	q3 := mustRange(700, 900)
	if _, found, err = sys.Lookup("Patient", "age", q3, false); err != nil {
		log.Fatal(err)
	} else if !found {
		fmt.Printf("lookup %s: correctly found no similar partition\n", q3)
	}

	// Load is spread across the ring: each cached range was stored under
	// l = 5 LSH identifiers.
	total := 0
	for _, l := range sys.Loads() {
		total += l
	}
	fmt.Printf("\nstored descriptors across the ring: %d\n", total)
}

func mustRange(lo, hi int64) p2prange.Range {
	r, err := p2prange.NewRange(lo, hi)
	if err != nil {
		panic(err)
	}
	return r
}
