module p2prange

go 1.22
