package can

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"p2prange/internal/metrics"
	"p2prange/internal/trace"
)

// The Default-registry can.* family, the CAN-side counterpart of
// chord.hops for the substrate-comparison experiment.
var (
	metCANLookups = metrics.Default.Counter("can.lookups")
	metCANHops    = metrics.Default.IntHistogram("can.hops")
)

// Zone is a half-open box [Lo[i], Hi[i]) per dimension of the unit torus.
type Zone struct {
	Lo, Hi []float64
}

// Contains reports whether point p lies in the zone.
func (z Zone) Contains(p []float64) bool {
	for i := range p {
		if p[i] < z.Lo[i] || p[i] >= z.Hi[i] {
			return false
		}
	}
	return true
}

// Volume returns the zone's volume; load balance follows volume since
// keys hash uniformly.
func (z Zone) Volume() float64 {
	v := 1.0
	for i := range z.Lo {
		v *= z.Hi[i] - z.Lo[i]
	}
	return v
}

// String formats the zone.
func (z Zone) String() string {
	s := ""
	for i := range z.Lo {
		if i > 0 {
			s += "×"
		}
		s += fmt.Sprintf("[%.3f,%.3f)", z.Lo[i], z.Hi[i])
	}
	return s
}

// Node is one CAN participant.
type Node struct {
	ID        int
	zone      Zone
	neighbors []*Node
	splits    int // how many times this zone has been split (round-robin axis)
}

// Zone returns the node's zone.
func (n *Node) Zone() Zone { return n.zone }

// Neighbors returns the node's neighbor list (shared; do not modify).
func (n *Node) Neighbors() []*Node { return n.neighbors }

// Network is a fully built CAN over n nodes.
type Network struct {
	d     int
	nodes []*Node
}

// New builds a CAN of n nodes in d dimensions by the standard join
// process: each joiner picks a random point, the owner's zone splits in
// half along the round-robin axis, and the joiner takes one half.
// Adjacency is computed once after construction (the simulation analogue
// of CAN's neighbor-update protocol).
func New(d, n int, seed int64) (*Network, error) {
	if d < 1 || d > 8 {
		return nil, fmt.Errorf("can: dimension %d out of range [1,8]", d)
	}
	if n < 1 {
		return nil, fmt.Errorf("can: need at least one node, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	first := &Node{ID: 0, zone: unitZone(d)}
	net := &Network{d: d, nodes: []*Node{first}}
	for i := 1; i < n; i++ {
		p := randPoint(rng, d)
		owner := net.bruteOwner(p)
		newNode := &Node{ID: i}
		splitZone(owner, newNode)
		net.nodes = append(net.nodes, newNode)
	}
	net.buildAdjacency()
	return net, nil
}

func unitZone(d int) Zone {
	z := Zone{Lo: make([]float64, d), Hi: make([]float64, d)}
	for i := range z.Hi {
		z.Hi[i] = 1
	}
	return z
}

func randPoint(rng *rand.Rand, d int) []float64 {
	p := make([]float64, d)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

// splitZone halves owner's zone along its round-robin axis; the new node
// takes the upper half.
func splitZone(owner, joiner *Node) {
	axis := owner.splits % len(owner.zone.Lo)
	mid := (owner.zone.Lo[axis] + owner.zone.Hi[axis]) / 2
	joiner.zone = Zone{
		Lo: append([]float64(nil), owner.zone.Lo...),
		Hi: append([]float64(nil), owner.zone.Hi...),
	}
	joiner.zone.Lo[axis] = mid
	owner.zone.Hi[axis] = mid
	owner.splits++
	joiner.splits = owner.splits
}

// bruteOwner locates the owner of p by scanning zones (used only during
// construction and as the test oracle).
func (net *Network) bruteOwner(p []float64) *Node {
	for _, n := range net.nodes {
		if n.zone.Contains(p) {
			return n
		}
	}
	// Zones tile the space, so this is unreachable for valid points.
	panic(fmt.Sprintf("can: point %v owned by nobody", p))
}

// buildAdjacency links every pair of zones that abut: overlapping extents
// in d-1 dimensions and touching (possibly across the torus wrap) in the
// remaining one.
func (net *Network) buildAdjacency() {
	for _, n := range net.nodes {
		n.neighbors = n.neighbors[:0]
	}
	for i, a := range net.nodes {
		for _, b := range net.nodes[i+1:] {
			if zonesAdjacent(a.zone, b.zone) {
				a.neighbors = append(a.neighbors, b)
				b.neighbors = append(b.neighbors, a)
			}
		}
	}
}

// zonesAdjacent reports whether two zones share a (d-1)-dimensional face,
// accounting for wraparound on the unit torus.
func zonesAdjacent(a, b Zone) bool {
	touchDims := 0
	for i := range a.Lo {
		overlap := a.Lo[i] < b.Hi[i] && b.Lo[i] < a.Hi[i]
		if overlap {
			continue
		}
		touch := a.Hi[i] == b.Lo[i] || b.Hi[i] == a.Lo[i] ||
			(a.Lo[i] == 0 && b.Hi[i] == 1) || (b.Lo[i] == 0 && a.Hi[i] == 1)
		if !touch {
			return false
		}
		touchDims++
		if touchDims > 1 {
			return false
		}
	}
	return touchDims == 1
}

// N returns the node count.
func (net *Network) N() int { return len(net.nodes) }

// D returns the dimensionality.
func (net *Network) D() int { return net.d }

// Nodes returns the nodes (shared; do not modify).
func (net *Network) Nodes() []*Node { return net.nodes }

// KeyToPoint hashes a 32-bit identifier to a point: each coordinate is a
// salted SHA-1 of the key, so the same identifier space used on the chord
// ring maps into the CAN torus.
func KeyToPoint(key uint32, d int) []float64 {
	p := make([]float64, d)
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[0:4], key)
	for i := 0; i < d; i++ {
		binary.BigEndian.PutUint32(buf[4:8], uint32(i))
		sum := sha1.Sum(buf[:])
		p[i] = float64(binary.BigEndian.Uint64(sum[:8])>>11) / (1 << 53)
	}
	return p
}

// torusDist1 is the wraparound distance between coordinates.
func torusDist1(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > 0.5 {
		d = 1 - d
	}
	return d
}

// distToZone returns the torus distance from point p to zone z (zero if
// inside).
func distToZone(p []float64, z Zone) float64 {
	var sum float64
	for i := range p {
		if p[i] >= z.Lo[i] && p[i] < z.Hi[i] {
			continue
		}
		d := math.Min(torusDist1(p[i], z.Lo[i]), torusDist1(p[i], z.Hi[i]))
		sum += d * d
	}
	return sum
}

// Route forwards greedily from the origin node toward the owner of point
// p, returning the owner and the hop count. Each step moves to the
// neighbor whose zone is closest to p; zones tile the torus, so progress
// is guaranteed and the hop count is bounded by the node count.
func (net *Network) Route(from *Node, p []float64) (*Node, int, error) {
	return net.RouteTraced(from, p, nil)
}

// RouteTraced is Route recording each greedy forwarding step on sp.
func (net *Network) RouteTraced(from *Node, p []float64, sp *trace.Span) (*Node, int, error) {
	metCANLookups.Inc()
	cur := from
	hops := 0
	for !cur.zone.Contains(p) {
		var best *Node
		bestDist := math.Inf(1)
		for _, nb := range cur.neighbors {
			if d := distToZone(p, nb.zone); d < bestDist {
				best, bestDist = nb, d
			}
		}
		if best == nil {
			return nil, hops, fmt.Errorf("can: node %d has no neighbors toward %v", cur.ID, p)
		}
		cur = best
		hops++
		if sp.On() {
			sp.Eventf("hop", "node %d zone %s", cur.ID, cur.zone)
		}
		if hops > len(net.nodes) {
			return nil, hops, fmt.Errorf("can: routing loop toward %v", p)
		}
	}
	metCANHops.Observe(uint64(hops))
	if sp.On() {
		sp.Eventf("owner", "node %d hops=%d", cur.ID, hops)
	}
	return cur, hops, nil
}

// Lookup routes from a node to the owner of a 32-bit identifier.
func (net *Network) Lookup(from *Node, key uint32) (*Node, int, error) {
	return net.Route(from, KeyToPoint(key, net.d))
}

// LookupTraced is Lookup recording the route on sp.
func (net *Network) LookupTraced(from *Node, key uint32, sp *trace.Span) (*Node, int, error) {
	return net.RouteTraced(from, KeyToPoint(key, net.d), sp)
}

// Volumes returns every node's zone volume (the load-balance metric).
func (net *Network) Volumes() []float64 {
	out := make([]float64, len(net.nodes))
	for i, n := range net.nodes {
		out[i] = n.zone.Volume()
	}
	return out
}
