package can

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10, 1); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := New(9, 10, 1); err == nil {
		t.Error("d=9 accepted")
	}
	if _, err := New(2, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestZonesTileTheTorus(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		net, err := New(d, 128, 2)
		if err != nil {
			t.Fatal(err)
		}
		var vol float64
		for _, n := range net.Nodes() {
			vol += n.Zone().Volume()
		}
		if math.Abs(vol-1) > 1e-9 {
			t.Errorf("d=%d: zone volumes sum to %g, want 1", d, vol)
		}
		// Every sampled point has exactly one owner.
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 2000; i++ {
			p := randPoint(rng, d)
			owners := 0
			for _, n := range net.Nodes() {
				if n.Zone().Contains(p) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("d=%d: point %v has %d owners", d, p, owners)
			}
		}
	}
}

func TestAdjacencySymmetricAndNonEmpty(t *testing.T) {
	net, err := New(2, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range net.Nodes() {
		if len(n.Neighbors()) == 0 {
			t.Fatalf("node %d has no neighbors", n.ID)
		}
		for _, nb := range n.Neighbors() {
			found := false
			for _, back := range nb.Neighbors() {
				if back == n {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric between %d and %d", n.ID, nb.ID)
			}
		}
	}
}

func TestRouteReachesOwner(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		net, err := New(d, 150, 5)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 500; i++ {
			p := randPoint(rng, d)
			origin := net.Nodes()[rng.Intn(net.N())]
			got, hops, err := net.Route(origin, p)
			if err != nil {
				t.Fatalf("d=%d route: %v", d, err)
			}
			if want := net.bruteOwner(p); got != want {
				t.Fatalf("d=%d: routed to node %d, owner is %d", d, got.ID, want.ID)
			}
			if hops > net.N() {
				t.Fatalf("d=%d: %d hops", d, hops)
			}
		}
	}
}

func TestRouteFromOwnerIsZeroHops(t *testing.T) {
	net, err := New(2, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	p := randPoint(rng, 2)
	owner := net.bruteOwner(p)
	got, hops, err := net.Route(owner, p)
	if err != nil || got != owner || hops != 0 {
		t.Errorf("route from owner = node %v in %d hops, err %v", got, hops, err)
	}
}

func TestPathLengthScalesAsRoot(t *testing.T) {
	// CAN path length grows ~ (d/4)·N^(1/d); check d=2 doubles roughly
	// with 4x nodes, staying well below chord-style log behavior bounds.
	mean := func(n int) float64 {
		net, err := New(2, n, 9)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(10))
		total := 0
		const trials = 800
		for i := 0; i < trials; i++ {
			origin := net.Nodes()[rng.Intn(net.N())]
			_, hops, err := net.Route(origin, randPoint(rng, 2))
			if err != nil {
				t.Fatal(err)
			}
			total += hops
		}
		return float64(total) / trials
	}
	m64, m1024 := mean(64), mean(1024)
	ratio := m1024 / m64
	// sqrt(1024/64) = 4; accept a broad band around it.
	if ratio < 2 || ratio > 7 {
		t.Errorf("path length ratio %g for 16x nodes, want ≈ 4 (sqrt scaling)", ratio)
	}
}

func TestKeyToPoint(t *testing.T) {
	p1 := KeyToPoint(12345, 3)
	p2 := KeyToPoint(12345, 3)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("KeyToPoint not deterministic")
		}
		if p1[i] < 0 || p1[i] >= 1 {
			t.Fatalf("coordinate %g outside [0,1)", p1[i])
		}
	}
	q := KeyToPoint(12346, 3)
	same := true
	for i := range p1 {
		if p1[i] != q[i] {
			same = false
		}
	}
	if same {
		t.Error("distinct keys map to the same point")
	}
}

func TestLookupConsistentAcrossOrigins(t *testing.T) {
	net, err := New(2, 100, 11)
	if err != nil {
		t.Fatal(err)
	}
	key := uint32(0xabcdef01)
	first, _, err := net.Lookup(net.Nodes()[0], key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 20; i++ {
		got, _, err := net.Lookup(net.Nodes()[i], key)
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("key owner differs by origin: %d vs %d", got.ID, first.ID)
		}
	}
}

func TestVolumesReflectSplits(t *testing.T) {
	net, err := New(2, 64, 12)
	if err != nil {
		t.Fatal(err)
	}
	vols := net.Volumes()
	if len(vols) != 64 {
		t.Fatalf("volumes = %d", len(vols))
	}
	var sum float64
	for _, v := range vols {
		if v <= 0 {
			t.Fatal("non-positive zone volume")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("volumes sum to %g", sum)
	}
}

func TestSingleNode(t *testing.T) {
	net, err := New(2, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	owner, hops, err := net.Lookup(net.Nodes()[0], 42)
	if err != nil || owner.ID != 0 || hops != 0 {
		t.Errorf("single-node lookup = %v, %d, %v", owner, hops, err)
	}
}
