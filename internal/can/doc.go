// Package can implements a Content-Addressable Network (Ratnasamy et
// al., SIGCOMM 2001) — the other DHT the paper cites as a possible
// substrate for its identifier space ("a structured peer-to-peer overlay
// such as CAN or Chord").
//
// # Geometry
//
// Nodes own hyper-rectangular zones of a d-dimensional unit torus; keys
// hash to points (KeyToPoint salts the same 32-bit identifiers the LSH
// scheme emits, so both substrates share one identifier space); routing
// forwards greedily through zone neighbors toward the target point in
// O(d·N^(1/d)) hops, versus chord's O(log N) — the trade the
// substrate-comparison experiment quantifies against Fig. 12.
//
// # Observability
//
// RouteTraced/LookupTraced record each greedy forwarding step (node and
// zone) on an internal/trace Span. The package feeds the can.* family of
// the internal/metrics Default registry (lookups, and the hops histogram
// that is the CAN counterpart of chord.hops); see docs/OBSERVABILITY.md.
package can
