package chord

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestBetween(t *testing.T) {
	cases := []struct {
		a, b, x ID
		want    bool
	}{
		{10, 20, 15, true},
		{10, 20, 10, false},
		{10, 20, 20, false},
		{10, 20, 25, false},
		// Wrapped arc.
		{4000000000, 5, 4100000000, true},
		{4000000000, 5, 3, true},
		{4000000000, 5, 5, false},
		{4000000000, 5, 100, false},
		// Degenerate a == b: whole circle except a.
		{7, 7, 8, true},
		{7, 7, 7, false},
	}
	for _, c := range cases {
		if got := Between(c.a, c.b, c.x); got != c.want {
			t.Errorf("Between(%d,%d,%d) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestBetweenRightIncl(t *testing.T) {
	if !BetweenRightIncl(10, 20, 20) {
		t.Error("right endpoint should be included")
	}
	if BetweenRightIncl(10, 20, 10) {
		t.Error("left endpoint should be excluded")
	}
	if !BetweenRightIncl(4000000000, 5, 5) {
		t.Error("wrapped right endpoint should be included")
	}
}

func TestAddWraps(t *testing.T) {
	if got := Add(0xffffffff, 0); got != 0 {
		t.Errorf("Add(max,0) = %d, want 0 (wrap)", got)
	}
	if got := Add(0, 31); got != 1<<31 {
		t.Errorf("Add(0,31) = %d", got)
	}
}

func TestHashAddrDeterministic(t *testing.T) {
	a, b := HashAddr("10.0.0.1:4000"), HashAddr("10.0.0.1:4000")
	if a != b {
		t.Error("HashAddr not deterministic")
	}
	if HashAddr("10.0.0.1:4000") == HashAddr("10.0.0.2:4000") {
		t.Error("distinct addresses should (almost surely) hash differently")
	}
}

// memClient is a trivial in-package client over a map of nodes, so chord
// tests do not depend on the transport package. It is mutex-guarded so
// Maintainer goroutines can race with test-side fault injection.
type memClient struct {
	mu    sync.Mutex
	nodes map[string]*Node
	down  map[string]bool
}

func newMemClient() *memClient {
	return &memClient{nodes: make(map[string]*Node), down: make(map[string]bool)}
}

func (m *memClient) get(addr string) (*Node, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down[addr] {
		return nil, ErrUnreachable
	}
	n, ok := m.nodes[addr]
	if !ok {
		return nil, ErrUnreachable
	}
	return n, nil
}

func (m *memClient) add(addr string, n *Node) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[addr] = n
}

func (m *memClient) setDown(addr string, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down[addr] = down
}

func (m *memClient) remove(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.nodes, addr)
}

func (m *memClient) Successor(addr string) (Ref, error) {
	n, err := m.get(addr)
	if err != nil {
		return Ref{}, err
	}
	return n.HandleSuccessor()
}

func (m *memClient) Predecessor(addr string) (Ref, error) {
	n, err := m.get(addr)
	if err != nil {
		return Ref{}, err
	}
	return n.HandlePredecessor()
}

func (m *memClient) ClosestPreceding(addr string, id ID) (Ref, error) {
	n, err := m.get(addr)
	if err != nil {
		return Ref{}, err
	}
	return n.HandleClosestPreceding(id)
}

func (m *memClient) FindSuccessor(addr string, id ID) (Ref, error) {
	n, err := m.get(addr)
	if err != nil {
		return Ref{}, err
	}
	return n.HandleFindSuccessor(id)
}

func (m *memClient) Notify(addr string, self Ref) error {
	n, err := m.get(addr)
	if err != nil {
		return err
	}
	return n.HandleNotify(self)
}

func (m *memClient) Ping(addr string) error {
	_, err := m.get(addr)
	return err
}

func (m *memClient) SuccessorList(addr string) ([]Ref, error) {
	n, err := m.get(addr)
	if err != nil {
		return nil, err
	}
	return n.HandleSuccessorList()
}

// buildRing creates n nodes on a shared memClient and installs converged
// state.
func buildRing(t *testing.T, n int) ([]*Node, *memClient) {
	t.Helper()
	client := newMemClient()
	nodes := make([]*Node, 0, n)
	seen := make(map[ID]bool)
	for i := 0; len(nodes) < n; i++ {
		addr := fmt.Sprintf("node-%d", i)
		nd := NewNode(addr, client, Config{})
		if seen[nd.ID()] {
			continue
		}
		seen[nd.ID()] = true
		client.add(addr, nd)
		nodes = append(nodes, nd)
	}
	if err := BuildStableRing(nodes); err != nil {
		t.Fatalf("BuildStableRing: %v", err)
	}
	return nodes, client
}

func TestBuildStableRingConverged(t *testing.T) {
	nodes, _ := buildRing(t, 50)
	info, err := VerifyRing(nodes)
	if err != nil {
		t.Fatalf("VerifyRing: %v", err)
	}
	if !info.Converged || info.N != 50 {
		t.Errorf("ring info = %+v", info)
	}
}

func TestSingleNodeRing(t *testing.T) {
	nodes, _ := buildRing(t, 1)
	n := nodes[0]
	if n.Successor().ID != n.ID() {
		t.Error("single node must be its own successor")
	}
	owner, hops, err := n.Lookup(12345)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if owner.ID != n.ID() || hops != 0 {
		t.Errorf("single-node lookup = %v, %d hops", owner, hops)
	}
}

// ownerOf computes the expected owner by brute force.
func ownerOf(nodes []*Node, id ID) Ref {
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	for _, n := range sorted {
		if n.ID() >= id {
			return n.Ref()
		}
	}
	return sorted[0].Ref()
}

func TestLookupCorrectness(t *testing.T) {
	nodes, _ := buildRing(t, 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		id := rng.Uint32()
		origin := nodes[rng.Intn(len(nodes))]
		got, hops, err := origin.Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%08x): %v", id, err)
		}
		want := ownerOf(nodes, id)
		if got.ID != want.ID {
			t.Fatalf("Lookup(%08x) = %s, want %s", id, got, want)
		}
		if hops < 0 || hops > M {
			t.Fatalf("Lookup(%08x) took %d hops", id, hops)
		}
	}
}

func TestLookupOwnID(t *testing.T) {
	nodes, _ := buildRing(t, 16)
	for _, n := range nodes {
		got, hops, err := n.Lookup(n.ID())
		if err != nil {
			t.Fatalf("Lookup(own id): %v", err)
		}
		if got.ID != n.ID() {
			t.Errorf("node %s does not own its own id (got %s)", n.Ref(), got)
		}
		if hops != 0 {
			t.Errorf("looking up own id took %d hops", hops)
		}
	}
}

func TestLookupPathLengthLogarithmic(t *testing.T) {
	nodes, _ := buildRing(t, 256)
	rng := rand.New(rand.NewSource(2))
	total := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		origin := nodes[rng.Intn(len(nodes))]
		_, hops, err := origin.Lookup(rng.Uint32())
		if err != nil {
			t.Fatal(err)
		}
		total += hops
	}
	mean := float64(total) / trials
	// ½·log2(256) = 4; allow generous slack but catch linear scans.
	if mean < 1 || mean > 8 {
		t.Errorf("mean path length %g for 256 nodes, want ≈ 4", mean)
	}
}

func TestJoinAndStabilize(t *testing.T) {
	client := newMemClient()
	var nodes []*Node
	for i := 0; i < 12; i++ {
		addr := fmt.Sprintf("live-%d", i)
		nd := NewNode(addr, client, Config{})
		client.add(addr, nd)
		if i > 0 {
			if err := nd.Join(nodes[0].Addr()); err != nil {
				t.Fatalf("join %s: %v", addr, err)
			}
		}
		nodes = append(nodes, nd)
		StabilizeAll(nodes, 4)
	}
	StabilizeAll(nodes, 4)
	if _, err := VerifyRing(nodes); err != nil {
		t.Fatalf("ring did not converge: %v", err)
	}
	// Lookups are correct after convergence.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		id := rng.Uint32()
		got, _, err := nodes[rng.Intn(len(nodes))].Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if want := ownerOf(nodes, id); got.ID != want.ID {
			t.Fatalf("post-join Lookup(%08x) = %s, want %s", id, got, want)
		}
	}
}

func TestNodeFailureRecovery(t *testing.T) {
	nodes, client := buildRing(t, 20)
	// Kill one node; its predecessor should fail over via successor list.
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	victim := sorted[5]
	pred := sorted[4]
	client.setDown(victim.Addr(), true)

	if err := pred.Stabilize(); err != nil {
		t.Fatalf("stabilize after failure: %v", err)
	}
	if got := pred.Successor(); got.ID == victim.ID() {
		t.Fatalf("predecessor still points at dead node")
	}
	if got, want := pred.Successor().ID, sorted[6].ID(); got != want {
		t.Errorf("failover successor = %s, want %s", FmtID(got), FmtID(want))
	}
	// Predecessor check clears dead predecessors.
	succ := sorted[6]
	succ.CheckPredecessor()
	if p, ok := succ.Predecessor(); ok && p.ID == victim.ID() {
		t.Error("dead predecessor not cleared")
	}
}

func TestGracefulLeave(t *testing.T) {
	nodes, client := buildRing(t, 10)
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	leaver := sorted[3]
	if err := leaver.Leave(); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	client.remove(leaver.Addr())
	remaining := append(append([]*Node{}, sorted[:3]...), sorted[4:]...)
	StabilizeAll(remaining, 4)
	if _, err := VerifyRing(remaining); err != nil {
		t.Fatalf("ring broken after leave: %v", err)
	}
}

func TestOwns(t *testing.T) {
	nodes, _ := buildRing(t, 8)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		id := rng.Uint32()
		want := ownerOf(nodes, id)
		count := 0
		for _, n := range nodes {
			if n.Owns(id) {
				count++
				if n.ID() != want.ID {
					t.Fatalf("node %s claims %08x, owner is %s", n.Ref(), id, want)
				}
			}
		}
		if count != 1 {
			t.Fatalf("%d nodes claim %08x", count, id)
		}
	}
}

func TestBuildStableRingRejectsDuplicates(t *testing.T) {
	client := newMemClient()
	a := NewNode("dup", client, Config{})
	b := NewNode("dup", client, Config{})
	if err := BuildStableRing([]*Node{a, b}); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestLookupUnreachableRing(t *testing.T) {
	// The ring must be larger than the successor list: arcs the list
	// covers resolve locally without touching the (dead) wire, so only
	// lookups routed through intermediaries can observe the outage.
	nodes, client := buildRing(t, 2*DefaultSuccessors)
	// Take down everything except one origin; lookups through dead nodes
	// must surface an error, not loop.
	origin := nodes[0]
	for _, n := range nodes[1:] {
		client.setDown(n.Addr(), true)
	}
	failed := 0
	for i := 0; i < 50; i++ {
		if _, _, err := origin.Lookup(rand.New(rand.NewSource(int64(i))).Uint32()); err != nil {
			failed++
			if !errors.Is(err, ErrUnreachable) && !errors.Is(err, ErrNotFound) {
				t.Fatalf("unexpected error type: %v", err)
			}
		}
	}
	if failed == 0 {
		t.Error("expected some lookups to fail with the ring down")
	}
}

// TestConcurrentLookups hammers a converged ring from many goroutines;
// run with -race to verify the Node locking discipline.
func TestConcurrentLookups(t *testing.T) {
	nodes, _ := buildRing(t, 32)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				id := rng.Uint32()
				origin := nodes[rng.Intn(len(nodes))]
				got, _, err := origin.Lookup(id)
				if err != nil {
					errs <- err
					return
				}
				if want := ownerOf(nodes, id); got.ID != want.ID {
					errs <- fmt.Errorf("Lookup(%08x) = %s, want %s", id, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentLookupsDuringStabilization interleaves lookups with
// maintenance on the same nodes.
func TestConcurrentLookupsDuringStabilization(t *testing.T) {
	nodes, _ := buildRing(t, 16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				StabilizeAll(nodes, 1)
			}
		}
	}()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		id := rng.Uint32()
		got, _, err := nodes[rng.Intn(len(nodes))].Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%08x) during stabilization: %v", id, err)
		}
		if want := ownerOf(nodes, id); got.ID != want.ID {
			t.Fatalf("Lookup(%08x) = %s, want %s", id, got, want)
		}
	}
	close(stop)
	wg.Wait()
}
