// Package chord implements the Chord distributed hash table (Stoica et
// al., SIGCOMM 2001), the lookup substrate the paper builds on (Sec. 3.2):
// every LSH identifier of a query range resolves to the peer that owns it
// on the ring.
//
// The identifier space is 32-bit (M=32) so ring positions coincide with
// the LSH identifier space of internal/minhash — a group identifier IS a
// ring position, no re-hashing. Peers hash to the ring by SHA-1 of their
// transport address; an identifier belongs to the first peer clockwise
// from it (its successor).
//
// Lookups route iteratively via finger tables in O(log N) hops — the path
// lengths Figs. 12(a)/12(b) measure (mean ~= 0.5*log2 N, with the full
// hop-count distribution collected through internal/metrics). The package
// provides the live protocol — join, stabilize, notify, fix-fingers over a
// pluggable transport — plus a fast static-ring constructor used by
// internal/sim for the large rings of Figs. 11-12.
//
// Nodes keep successor lists, and routing is failure-aware: when a finger
// is unreachable, lookup detours through the successor list instead of
// failing, and counts the reroute in metrics.RouteStats. Config
// (DisableRerouting) exposes the fault-model ablation; cmd/peerd's
// -no-reroute flag maps to it.
package chord
