package chord

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"p2prange/internal/metrics"
)

// buildRingCfg is buildRing with a per-node Config.
func buildRingCfg(t *testing.T, n int, cfg Config) ([]*Node, *memClient) {
	t.Helper()
	client := newMemClient()
	nodes := make([]*Node, 0, n)
	seen := make(map[ID]bool)
	for i := 0; len(nodes) < n; i++ {
		addr := "cfg-node-" + FmtID(ID(i))
		nd := NewNode(addr, client, cfg)
		if seen[nd.ID()] {
			continue
		}
		seen[nd.ID()] = true
		client.add(addr, nd)
		nodes = append(nodes, nd)
	}
	if err := BuildStableRing(nodes); err != nil {
		t.Fatalf("BuildStableRing: %v", err)
	}
	return nodes, client
}

// findRoutedLookup picks an origin and identifier whose first hop is a
// third node (neither the origin nor the owner), so killing that hop
// exercises mid-lookup rerouting.
func findRoutedLookup(t *testing.T, nodes []*Node) (origin *Node, id ID, firstHop, owner Ref) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		id = rng.Uint32()
		origin = nodes[rng.Intn(len(nodes))]
		owner = ownerOf(nodes, id)
		if origin.Owns(id) || owner.ID == origin.ID() {
			continue
		}
		fh, err := origin.HandleClosestPreceding(id)
		if err != nil {
			t.Fatal(err)
		}
		if fh.ID == origin.ID() || fh.ID == owner.ID {
			continue
		}
		return origin, id, fh, owner
	}
	t.Fatal("no suitable origin/id pair found")
	return nil, 0, Ref{}, Ref{}
}

// TestLookupReroutesAroundDeadNode is the acceptance scenario: kill a
// node on the lookup path; the lookup must still resolve the correct
// owner by detouring through successor lists, and report the extra hops.
func TestLookupReroutesAroundDeadNode(t *testing.T) {
	stats := &metrics.RouteStats{}
	nodes, client := buildRingCfg(t, 32, Config{Stats: stats})
	origin, id, firstHop, owner := findRoutedLookup(t, nodes)

	got, healthyHops, err := origin.Lookup(id)
	if err != nil {
		t.Fatalf("healthy lookup: %v", err)
	}
	if got.ID != owner.ID {
		t.Fatalf("healthy lookup = %s, want %s", got, owner)
	}

	client.setDown(firstHop.Addr, true)
	got, hops, err := origin.Lookup(id)
	if err != nil {
		t.Fatalf("lookup with dead hop %s: %v", firstHop, err)
	}
	if got.ID != owner.ID {
		t.Errorf("rerouted lookup = %s, want %s", got, owner)
	}
	if hops < healthyHops {
		t.Errorf("rerouted lookup reported %d hops, healthy path was %d", hops, healthyHops)
	}
	snap := stats.Snapshot()
	if snap.Rerouted == 0 {
		t.Error("no reroutes counted")
	}
	if snap.FailedLookups != 0 {
		t.Errorf("%d lookups failed", snap.FailedLookups)
	}
	if !origin.Suspect(firstHop.ID) {
		t.Error("dead hop not marked suspect")
	}
}

// TestLookupUnreachableWithoutRerouting pins the ablation: the same
// dead-hop scenario with fault tolerance disabled must surface
// ErrUnreachable instead of resolving.
func TestLookupUnreachableWithoutRerouting(t *testing.T) {
	stats := &metrics.RouteStats{}
	nodes, client := buildRingCfg(t, 32, Config{DisableRerouting: true, Stats: stats})
	origin, id, firstHop, _ := findRoutedLookup(t, nodes)
	client.setDown(firstHop.Addr, true)
	_, _, err := origin.Lookup(id)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("lookup with rerouting disabled = %v, want ErrUnreachable", err)
	}
	if origin.FaultTolerant() {
		t.Error("FaultTolerant() true with rerouting disabled")
	}
	if got := stats.Snapshot(); got.FailedLookups == 0 || got.Rerouted != 0 {
		t.Errorf("stats = %+v, want failures and no reroutes", got)
	}
}

// TestLookupDeadOwnerReroutes covers the owner itself crashing: once the
// origin suspects it (as the peer protocol does after a failed call),
// re-resolution must return the next live successor, which now owns the
// dead node's arc.
func TestLookupDeadOwnerReroutes(t *testing.T) {
	nodes, client := buildRingCfg(t, 24, Config{})
	rng := rand.New(rand.NewSource(13))
	var origin *Node
	var id ID
	var owner Ref
	for {
		id = rng.Uint32()
		origin = nodes[rng.Intn(len(nodes))]
		owner = ownerOf(nodes, id)
		if owner.ID != origin.ID() && !origin.Owns(id) {
			break
		}
	}
	client.setDown(owner.Addr, true)
	origin.MarkSuspect(owner.ID)

	survivors := make([]*Node, 0, len(nodes)-1)
	for _, n := range nodes {
		if n.ID() != owner.ID {
			survivors = append(survivors, n)
		}
	}
	want := ownerOf(survivors, id)
	got, hops, err := origin.Lookup(id)
	if err != nil {
		t.Fatalf("lookup with dead owner: %v", err)
	}
	if got.ID != want.ID {
		t.Errorf("lookup = %s, want the dead owner's successor %s", got, want)
	}
	if hops == 0 {
		t.Error("detoured lookup reported 0 hops")
	}
}

// scriptClient returns canned protocol answers, for driving Lookup into
// states only reachable through mid-lookup mutation on a live ring.
type scriptClient struct {
	succ map[string]Ref
	cp   map[string]Ref
	pred map[string]Ref
}

func (s *scriptClient) get(m map[string]Ref, addr string) (Ref, error) {
	if r, ok := m[addr]; ok {
		return r, nil
	}
	return Ref{}, ErrUnreachable
}
func (s *scriptClient) Successor(addr string) (Ref, error) { return s.get(s.succ, addr) }
func (s *scriptClient) Predecessor(addr string) (Ref, error) {
	if r, ok := s.pred[addr]; ok {
		return r, nil
	}
	return Ref{}, ErrNoPredecessor
}
func (s *scriptClient) ClosestPreceding(addr string, id ID) (Ref, error) {
	return s.get(s.cp, addr)
}
func (s *scriptClient) FindSuccessor(addr string, id ID) (Ref, error) {
	return Ref{}, ErrUnreachable
}
func (s *scriptClient) Notify(addr string, self Ref) error       { return nil }
func (s *scriptClient) Ping(addr string) error                   { return nil }
func (s *scriptClient) SuccessorList(addr string) ([]Ref, error) { return nil, ErrUnreachable }

// TestLookupStaleStateHopAccounting is the regression for the hop
// double-count on the stale-state fallthrough. A node whose tables are
// mid-update can answer ClosestPreceding with itself while its successor
// already covers the identifier; the lookup must confirm ownership with
// the successor and charge exactly one hop for that final edge, not
// wander the ring charging extra hops. Scripted because the state is
// only reachable through a mid-lookup race on a live ring.
func TestLookupStaleStateHopAccounting(t *testing.T) {
	tRef := Ref{ID: 150, Addr: "t"}
	sRef := Ref{ID: 240, Addr: "s"}
	client := &scriptClient{
		succ: map[string]Ref{"t": sRef},
		// Stale: t names itself closest preceding although s covers id.
		cp:   map[string]Ref{"t": tRef},
		pred: map[string]Ref{"s": {ID: 245, Addr: "q"}},
	}
	n := NewNode("origin", client, Config{})
	n.ref.ID = 100
	n.pred = Ref{ID: 50, Addr: "p"}
	for k := range n.fingers {
		n.fingers[k] = n.ref
	}
	n.setSuccessor(tRef)

	// id 250 sits in (245, 240] — the wrapped arc owned by s.
	owner, hops, err := n.Lookup(250)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if owner.ID != sRef.ID {
		t.Errorf("owner = %s, want %s", owner, sRef)
	}
	if hops != 2 {
		t.Errorf("hops = %d, want 2 (origin->t->s, final edge charged once)", hops)
	}
}

// TestLookupPinnedHopCounts pins the Fig.12-relevant base cases: a
// node's own arc costs 0 hops and its direct successor's arc exactly 1.
func TestLookupPinnedHopCounts(t *testing.T) {
	nodes, _ := buildRing(t, 16)
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	for i, n := range sorted {
		if _, hops, err := n.Lookup(n.ID()); err != nil || hops != 0 {
			t.Errorf("own-arc lookup = %d hops, %v; want 0, nil", hops, err)
		}
		succ := sorted[(i+1)%len(sorted)]
		got, hops, err := n.Lookup(succ.ID())
		if err != nil {
			t.Fatalf("successor lookup: %v", err)
		}
		if got.ID != succ.ID() || hops != 1 {
			t.Errorf("lookup(successor) = %s in %d hops, want %s in 1", got, hops, succ.Ref())
		}
	}
}

func TestSuspectTTL(t *testing.T) {
	client := newMemClient()
	n := NewNode("ttl-node", client, Config{SuspectTTL: 20 * time.Millisecond})
	n.MarkSuspect(42)
	if !n.Suspect(42) {
		t.Fatal("fresh suspect not reported")
	}
	time.Sleep(40 * time.Millisecond)
	if n.Suspect(42) {
		t.Error("suspect did not expire after TTL")
	}
	n.MarkSuspect(43)
	n.ForgetSuspects()
	if n.Suspect(43) {
		t.Error("ForgetSuspects left a suspect behind")
	}
	if n.Suspect(n.ID()) {
		t.Error("node suspects itself")
	}
}

func TestClosestPrecedingSkipsSuspects(t *testing.T) {
	nodes, _ := buildRing(t, 20)
	origin, id, firstHop, _ := findRoutedLookup(t, nodes)
	origin.MarkSuspect(firstHop.ID)
	next, err := origin.HandleClosestPreceding(id)
	if err != nil {
		t.Fatal(err)
	}
	if next.ID == firstHop.ID {
		t.Errorf("suspect %s still returned as closest preceding", firstHop)
	}
}

func TestMaintainerJitterBounds(t *testing.T) {
	m := &Maintainer{cfg: MaintainerConfig{Jitter: 0.2}}
	rng := rand.New(rand.NewSource(1))
	const every = time.Second
	varied := false
	for i := 0; i < 500; i++ {
		d := m.jittered(rng, every)
		if d < 800*time.Millisecond || d > 1200*time.Millisecond {
			t.Fatalf("jittered period %v outside [0.8s, 1.2s]", d)
		}
		if d != every {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter produced only the base period")
	}
	// Config defaulting: zero means DefaultJitter, negative disables.
	if got := (&MaintainerConfig{}).withDefaults().Jitter; got != DefaultJitter {
		t.Errorf("default jitter = %v, want %v", got, DefaultJitter)
	}
	off := &Maintainer{cfg: (&MaintainerConfig{Jitter: -1}).withDefaults()}
	for i := 0; i < 10; i++ {
		if d := off.jittered(rng, every); d != every {
			t.Fatalf("negative Jitter still jittered: %v", d)
		}
	}
}
