package chord

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// M is the number of bits in the identifier space. The paper uses 32-bit
// identifiers so they coincide with the LSH identifier space.
const M = 32

// ID is a point on the identifier circle [0, 2^M).
type ID = uint32

// HashAddr maps a peer's address (e.g. IP:port) to the ring via SHA-1,
// taking the first M bits of the digest, as the paper prescribes.
func HashAddr(addr string) ID {
	sum := sha1.Sum([]byte(addr))
	return binary.BigEndian.Uint32(sum[:4])
}

// HashBytes maps arbitrary bytes to the ring via SHA-1.
func HashBytes(b []byte) ID {
	sum := sha1.Sum(b)
	return binary.BigEndian.Uint32(sum[:4])
}

// Between reports whether x lies on the arc (a, b) exclusive, walking
// clockwise from a to b. When a == b the arc covers the whole circle
// except a itself.
func Between(a, b, x ID) bool {
	if a < b {
		return a < x && x < b
	}
	return x > a || x < b // wrapped arc, incl. the degenerate a == b case
}

// BetweenRightIncl reports whether x lies on (a, b], the successor
// ownership test: the node with ID b owns identifier x iff x ∈ (pred, b].
func BetweenRightIncl(a, b, x ID) bool {
	if x == b {
		return true
	}
	return Between(a, b, x)
}

// Add returns a + 2^k on the circle. It is the start of finger k.
func Add(a ID, k uint) ID { return a + 1<<k } // uint32 arithmetic wraps naturally

// Distance returns the clockwise distance from a to b.
func Distance(a, b ID) uint32 { return b - a } // wraps naturally

// FmtID formats an identifier as fixed-width hex for logs and tests.
func FmtID(id ID) string { return fmt.Sprintf("%08x", id) }
