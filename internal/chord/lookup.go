package chord

import "fmt"

// maxLookupSteps bounds iterative routing; with M=32 a correct ring never
// needs more than M forwarding steps, so anything beyond that is a routing
// loop caused by stale state.
const maxLookupSteps = 2 * M

// Lookup resolves the node owning identifier id, routing iteratively from
// this node via closest-preceding-finger queries (Stoica et al., Fig. 4).
// It returns the owner and the overlay path length in hops: the number of
// distinct nodes the query is forwarded through, including the final hop
// to the owner and excluding the originating node. This is the quantity
// the paper plots in Fig. 12.
func (n *Node) Lookup(id ID) (Ref, int, error) {
	if n.Owns(id) {
		return n.ref, 0, nil
	}
	cur := n.ref
	hops := 0
	for step := 0; step < maxLookupSteps; step++ {
		var succ Ref
		var err error
		if cur.ID == n.ref.ID {
			succ = n.successor()
		} else {
			succ, err = n.client.Successor(cur.Addr)
			if err != nil {
				return Ref{}, hops, fmt.Errorf("chord: lookup %s via %s: %w", FmtID(id), cur, err)
			}
		}
		if BetweenRightIncl(cur.ID, succ.ID, id) {
			if succ.ID == cur.ID {
				return succ, hops, nil // owner already reached
			}
			return succ, hops + 1, nil // final hop to the owner
		}
		var next Ref
		if cur.ID == n.ref.ID {
			next, err = n.HandleClosestPreceding(id)
		} else {
			next, err = n.client.ClosestPreceding(cur.Addr, id)
		}
		if err != nil {
			return Ref{}, hops, fmt.Errorf("chord: lookup %s via %s: %w", FmtID(id), cur, err)
		}
		if next.ID == cur.ID {
			// cur knows no closer node; its successor owns id (handled
			// above) unless state is stale. Fall through to the successor.
			if succ.ID == cur.ID {
				return Ref{}, hops, fmt.Errorf("%w: stuck at %s for %s", ErrNotFound, cur, FmtID(id))
			}
			cur = succ
			hops++
			continue
		}
		cur = next
		hops++
	}
	return Ref{}, hops, fmt.Errorf("%w: routing loop resolving %s", ErrNotFound, FmtID(id))
}
