package chord

import (
	"errors"
	"fmt"

	"p2prange/internal/metrics"
	"p2prange/internal/trace"
)

// maxLookupSteps bounds iterative routing; with M=32 a correct ring never
// needs more than M forwarding steps, so anything beyond that is a routing
// loop caused by stale state.
const maxLookupSteps = 2 * M

// The Default-registry chord.* family: the per-lookup hop-count
// distribution (the Fig. 12 quantity, live).
var metChordHops = metrics.Default.IntHistogram("chord.hops")

// Lookup resolves the node owning identifier id, routing iteratively from
// this node via closest-preceding-finger queries (Stoica et al., Fig. 4).
// It returns the owner and the overlay path length in hops: the number of
// distinct nodes the query is forwarded through, including the final hop
// to the owner and excluding the originating node. This is the quantity
// the paper plots in Fig. 12.
//
// When an RPC to the next hop fails at the transport level and rerouting
// is enabled (Config.DisableRerouting false), the hop is marked suspect
// and the query routes around it via the successor list of the node that
// supplied the pointer; the detour hops are included in the count. With
// rerouting disabled the lookup fails with ErrUnreachable.
func (n *Node) Lookup(id ID) (Ref, int, error) {
	return n.LookupTraced(id, nil)
}

// LookupTraced is Lookup recording each forwarding step, suspect marking,
// and detour on sp. A nil sp (tracing off) adds no work and no
// allocations beyond Lookup itself.
func (n *Node) LookupTraced(id ID, sp *trace.Span) (Ref, int, error) {
	n.stats.AddLookup()
	ref, hops, err := n.route(id, sp)
	if err != nil {
		n.stats.AddFailedLookup()
		if sp.On() {
			sp.Eventf("error", "%v", err)
		}
		return ref, hops, err
	}
	metChordHops.Observe(uint64(hops))
	if sp.On() {
		sp.Eventf("owner", "%s hops=%d", ref, hops)
	}
	return ref, hops, err
}

// route is the iterative resolution loop behind Lookup.
func (n *Node) route(id ID, sp *trace.Span) (Ref, int, error) {
	if n.Owns(id) {
		return n.ref, 0, nil
	}
	if owner, hops, ok := n.routeViaSuccessorList(id, sp); ok {
		return owner, hops, nil
	}
	// from is the node whose routing table pointed us at cur; when cur
	// turns out to be dead, from's successor list is the detour map.
	from := n.ref
	cur := n.ref
	hops := 0
	for step := 0; step < maxLookupSteps; step++ {
		var succ Ref
		var err error
		if cur.ID == n.ref.ID {
			succ = n.successor()
		} else {
			succ, err = n.client.Successor(cur.Addr)
			if err != nil {
				owner, next, rerr := n.handleDeadHop(from, cur, id, err, sp)
				if rerr != nil {
					return Ref{}, hops, fmt.Errorf("chord: lookup %s via %s: %w", FmtID(id), cur, rerr)
				}
				if !owner.IsZero() {
					return owner, hops + 1, nil
				}
				cur = next
				hops++
				continue
			}
		}
		if BetweenRightIncl(cur.ID, succ.ID, id) {
			if succ.ID == cur.ID {
				return succ, hops, nil // owner already reached
			}
			if n.reroute && succ.ID != n.ref.ID && n.Suspect(succ.ID) {
				// The owner itself is suspected dead (e.g. a call to it
				// just failed); its arc has passed to the next live
				// successor, so detour instead of handing back a corpse.
				owner, next, rerr := n.routeAround(cur, succ, id, sp)
				if rerr != nil {
					return Ref{}, hops, fmt.Errorf("chord: lookup %s past %s: %w", FmtID(id), succ, rerr)
				}
				if !owner.IsZero() {
					return owner, hops + 1, nil
				}
				cur = next
				hops++
				continue
			}
			return succ, hops + 1, nil // final hop to the owner
		}
		var next Ref
		if cur.ID == n.ref.ID {
			next, err = n.HandleClosestPreceding(id)
		} else {
			next, err = n.client.ClosestPreceding(cur.Addr, id)
		}
		if err != nil {
			owner, alt, rerr := n.handleDeadHop(from, cur, id, err, sp)
			if rerr != nil {
				return Ref{}, hops, fmt.Errorf("chord: lookup %s via %s: %w", FmtID(id), cur, rerr)
			}
			if !owner.IsZero() {
				return owner, hops + 1, nil
			}
			cur = alt
			hops++
			continue
		}
		if next.ID == cur.ID {
			// cur knows no closer node, so its successor should own id —
			// but the ownership check above failed, meaning cur's state is
			// stale. Ask succ directly whether it owns id instead of
			// wandering the ring successor-by-successor, which inflated
			// the hop count by revisiting the final edge.
			if succ.ID == cur.ID {
				return Ref{}, hops, fmt.Errorf("%w: stuck at %s for %s", ErrNotFound, cur, FmtID(id))
			}
			if n.ownsRemote(succ, id) {
				return succ, hops + 1, nil
			}
			from = cur
			cur = succ
			hops++
			if sp.On() {
				sp.Eventf("hop", "%s (successor walk)", cur)
			}
			continue
		}
		from = cur
		cur = next
		hops++
		if sp.On() {
			sp.Eventf("hop", "%s", cur)
		}
	}
	return Ref{}, hops, fmt.Errorf("%w: routing loop resolving %s", ErrNotFound, FmtID(id))
}

// routeViaSuccessorList resolves ids falling on the arc the successor
// list covers without any RPC: stabilization maintains our r nearest
// successors, whose consecutive pairs (succs[i-1], succs[i]] are known
// ownership segments (Stoica et al. §6.3 use the list the same way).
// A hit is one hop — the query forwards straight to the owner instead
// of walking the ring. The fast path declines — reporting ok=false so
// the caller runs the full iterative loop — as soon as it meets a
// suspect entry, because a dead successor's arc has already passed to
// the next live node and only routeAround can pick it.
func (n *Node) routeViaSuccessorList(id ID, sp *trace.Span) (Ref, int, bool) {
	prev := n.ref
	for _, s := range n.SuccessorList() {
		if s.IsZero() || (n.reroute && s.ID != n.ref.ID && n.Suspect(s.ID)) {
			return Ref{}, 0, false
		}
		if BetweenRightIncl(prev.ID, s.ID, id) {
			if sp.On() {
				sp.Eventf("shortcut", "%s via successor list", s)
			}
			return s, 1, true
		}
		prev = s
	}
	return Ref{}, 0, false
}

// handleDeadHop decides what to do after an RPC to cur failed. For
// transport-level failures with rerouting enabled it marks cur suspect
// and picks a detour from from's successor list; either the detour entry
// already owns id (owner is non-zero) or the lookup should continue from
// next. Handler-side errors and disabled rerouting surface as rerr.
func (n *Node) handleDeadHop(from, cur Ref, id ID, err error, sp *trace.Span) (owner, next Ref, rerr error) {
	if !errors.Is(err, ErrUnreachable) {
		return Ref{}, Ref{}, err
	}
	n.MarkSuspect(cur.ID)
	if sp.On() {
		sp.Eventf("suspect", "%s unreachable", cur)
	}
	if !n.reroute {
		return Ref{}, Ref{}, err
	}
	return n.routeAround(from, cur, id, sp)
}

// routeAround consults from's successor list for a live node to continue
// a lookup that hit the dead node. Dead successors transfer their arc to
// the next live entry, so if the first live entry s satisfies
// id ∈ (from, s] then s is the owner; otherwise the lookup resumes at s.
// Each candidate is pinged before the detour commits to it — a reroute
// must not hand back, or hop to, another corpse.
func (n *Node) routeAround(from, dead Ref, id ID, sp *trace.Span) (owner, next Ref, rerr error) {
	n.stats.AddReroute()
	var list []Ref
	if from.ID == n.ref.ID {
		list = n.SuccessorList()
	} else {
		var err error
		list, err = n.client.SuccessorList(from.Addr)
		if err != nil {
			if !errors.Is(err, ErrUnreachable) {
				return Ref{}, Ref{}, err
			}
			// The pointer's source died too: fall back to our own list.
			n.MarkSuspect(from.ID)
			if sp.On() {
				sp.Eventf("suspect", "%s unreachable", from)
			}
			from = n.ref
			list = n.SuccessorList()
		}
	}
	for _, s := range list {
		if s.IsZero() || s.ID == dead.ID || s.ID == from.ID || n.Suspect(s.ID) {
			continue
		}
		if s.ID != n.ref.ID && n.client.Ping(s.Addr) != nil {
			n.MarkSuspect(s.ID)
			if sp.On() {
				sp.Eventf("suspect", "%s unreachable", s)
			}
			continue
		}
		if BetweenRightIncl(from.ID, s.ID, id) {
			if sp.On() {
				sp.Eventf("detour", "%s past %s (owns id)", s, dead)
			}
			return s, Ref{}, nil
		}
		if sp.On() {
			sp.Eventf("detour", "%s past %s", s, dead)
		}
		return Ref{}, s, nil
	}
	return Ref{}, Ref{}, fmt.Errorf("%w: no live route past %s", ErrUnreachable, dead)
}

// ownsRemote asks succ whether it owns id by fetching its predecessor;
// a node with no predecessor owns everything (mirrors Node.Owns). Errors
// conservatively report false so the caller steps forward and lets the
// next iteration's RPC classify the failure.
func (n *Node) ownsRemote(succ Ref, id ID) bool {
	p, err := n.client.Predecessor(succ.Addr)
	if errors.Is(err, ErrNoPredecessor) {
		return true
	}
	if err != nil || p.IsZero() {
		return false
	}
	return BetweenRightIncl(p.ID, succ.ID, id)
}
