package chord

import (
	"context"
	"log"
	"math/rand"
	"sync"
	"time"
)

// DefaultJitter is the fractional period jitter applied to maintenance
// timers when MaintainerConfig.Jitter is zero. Without it, nodes started
// together stabilize in lockstep and hammer their successors in
// synchronized bursts.
const DefaultJitter = 0.2

// MaintainerConfig controls the background stabilization cadence for live
// (non-simulated) rings.
type MaintainerConfig struct {
	// StabilizeEvery is the period between stabilize rounds.
	StabilizeEvery time.Duration
	// FixFingersEvery is the period between single-finger refreshes; all M
	// fingers are cycled through round-robin.
	FixFingersEvery time.Duration
	// CheckPredecessorEvery is the period between predecessor liveness
	// checks.
	CheckPredecessorEvery time.Duration
	// Jitter spreads each timer period uniformly over
	// [period*(1-Jitter), period*(1+Jitter)] so co-started nodes desynchronize.
	// Zero means DefaultJitter; negative disables jitter.
	Jitter float64
	// Repair, when non-nil, runs periodically on the maintenance
	// schedule. The replica subsystem attaches its anti-entropy round
	// here so churn-lost copies are re-created in the background.
	Repair func()
	// RepairEvery is the period between Repair calls (default 2s; only
	// meaningful when Repair is set).
	RepairEvery time.Duration
	// Logger receives protocol errors; nil silences them.
	Logger *log.Logger
}

func (c *MaintainerConfig) withDefaults() MaintainerConfig {
	out := *c
	if out.StabilizeEvery <= 0 {
		out.StabilizeEvery = 200 * time.Millisecond
	}
	if out.FixFingersEvery <= 0 {
		out.FixFingersEvery = 50 * time.Millisecond
	}
	if out.CheckPredecessorEvery <= 0 {
		out.CheckPredecessorEvery = time.Second
	}
	if out.RepairEvery <= 0 {
		out.RepairEvery = 2 * time.Second
	}
	if out.Jitter == 0 {
		out.Jitter = DefaultJitter
	}
	if out.Jitter < 0 {
		out.Jitter = 0
	}
	return out
}

// Maintainer runs the chord stabilization protocol for one node in the
// background: periodic Stabilize, round-robin FixFinger, and
// CheckPredecessor, per the Chord paper. Create with StartMaintainer and
// stop with Stop.
type Maintainer struct {
	node   *Node
	cfg    MaintainerConfig
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// StartMaintainer launches the maintenance goroutines for node.
func StartMaintainer(node *Node, cfg MaintainerConfig) *Maintainer {
	ctx, cancel := context.WithCancel(context.Background())
	m := &Maintainer{node: node, cfg: cfg.withDefaults(), cancel: cancel}
	m.wg.Add(3)
	go m.loop(ctx, 0, m.cfg.StabilizeEvery, func() {
		if err := node.Stabilize(); err != nil {
			m.logf("stabilize: %v", err)
		}
	})
	var finger uint
	go m.loop(ctx, 1, m.cfg.FixFingersEvery, func() {
		if err := node.FixFinger(finger); err != nil {
			m.logf("fix finger %d: %v", finger, err)
		}
		finger = (finger + 1) % M
	})
	go m.loop(ctx, 2, m.cfg.CheckPredecessorEvery, func() {
		node.CheckPredecessor()
	})
	if m.cfg.Repair != nil {
		m.wg.Add(1)
		go m.loop(ctx, 3, m.cfg.RepairEvery, m.cfg.Repair)
	}
	return m
}

func (m *Maintainer) loop(ctx context.Context, salt int64, every time.Duration, fn func()) {
	defer m.wg.Done()
	// Per-node, per-loop seed: nodes sharing a config still tick apart.
	rng := rand.New(rand.NewSource(int64(m.node.ID())*3 + salt))
	t := time.NewTimer(m.jittered(rng, every))
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			fn()
			t.Reset(m.jittered(rng, every))
		}
	}
}

// jittered picks the next period in [every*(1-j), every*(1+j)].
func (m *Maintainer) jittered(rng *rand.Rand, every time.Duration) time.Duration {
	j := m.cfg.Jitter
	if j <= 0 {
		return every
	}
	f := 1 - j + 2*j*rng.Float64()
	return time.Duration(float64(every) * f)
}

func (m *Maintainer) logf(format string, args ...any) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.Printf("chord %s: "+format, append([]any{m.node.Ref()}, args...)...)
	}
}

// Stop halts the maintenance goroutines and waits for them to exit.
func (m *Maintainer) Stop() {
	m.cancel()
	m.wg.Wait()
}

// StabilizeAll drives every node's full maintenance cycle (stabilize, all
// fingers, predecessor check) for the given number of rounds,
// synchronously. Tests and small live clusters use it to converge a ring
// deterministically instead of waiting on timers.
func StabilizeAll(nodes []*Node, rounds int) {
	for r := 0; r < rounds; r++ {
		for _, n := range nodes {
			_ = n.Stabilize()
			n.CheckPredecessor()
		}
	}
	for _, n := range nodes {
		for k := uint(0); k < M; k++ {
			_ = n.FixFinger(k)
		}
	}
	// One more stabilize pass so successor lists settle post-fingers.
	for _, n := range nodes {
		_ = n.Stabilize()
	}
}
