package chord

import (
	"fmt"
	"log"
	"os"
	"testing"
	"time"
)

// TestMaintainerConvergesRing exercises the timer-driven maintenance
// goroutines: nodes join one by one and the background Maintainers alone
// (no synchronous StabilizeAll) must converge the ring.
func TestMaintainerConvergesRing(t *testing.T) {
	client := newMemClient()
	cfg := MaintainerConfig{
		StabilizeEvery:        2 * time.Millisecond,
		FixFingersEvery:       500 * time.Microsecond,
		CheckPredecessorEvery: 5 * time.Millisecond,
	}
	var nodes []*Node
	var maints []*Maintainer
	defer func() {
		for _, m := range maints {
			m.Stop()
		}
	}()
	for i := 0; i < 6; i++ {
		addr := fmt.Sprintf("bg-%d", i)
		nd := NewNode(addr, client, Config{})
		client.add(addr, nd)
		if i > 0 {
			if err := nd.Join(nodes[0].Addr()); err != nil {
				t.Fatalf("join %s: %v", addr, err)
			}
		}
		nodes = append(nodes, nd)
		maints = append(maints, StartMaintainer(nd, cfg))
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := VerifyRing(nodes); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("ring did not converge under background maintenance: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Lookups work purely off background-maintained state.
	for i := 0; i < 100; i++ {
		id := ID(i) * 40000000
		got, _, err := nodes[i%len(nodes)].Lookup(id)
		if err != nil {
			t.Fatalf("Lookup(%08x): %v", id, err)
		}
		if want := ownerOf(nodes, id); got.ID != want.ID {
			t.Fatalf("Lookup(%08x) = %s, want %s", id, got, want)
		}
	}
}

// TestMaintainerStopTerminates verifies Stop halts all three loops.
func TestMaintainerStopTerminates(t *testing.T) {
	client := newMemClient()
	nd := NewNode("solo", client, Config{})
	client.add("solo", nd)
	m := StartMaintainer(nd, MaintainerConfig{
		StabilizeEvery:        time.Millisecond,
		FixFingersEvery:       time.Millisecond,
		CheckPredecessorEvery: time.Millisecond,
		Logger:                log.New(os.Stderr, "", 0),
	})
	done := make(chan struct{})
	go func() {
		m.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Maintainer.Stop did not return")
	}
}

// TestMaintainerSurvivesDeadSuccessor verifies the background loops keep
// running (and log rather than crash) when a neighbor dies.
func TestMaintainerSurvivesDeadSuccessor(t *testing.T) {
	client := newMemClient()
	a := NewNode("ma", client, Config{})
	b := NewNode("mb", client, Config{})
	client.add("ma", a)
	client.add("mb", b)
	if err := b.Join("ma"); err != nil {
		t.Fatal(err)
	}
	StabilizeAll([]*Node{a, b}, 4)
	m := StartMaintainer(a, MaintainerConfig{
		StabilizeEvery:        time.Millisecond,
		FixFingersEvery:       time.Millisecond,
		CheckPredecessorEvery: time.Millisecond,
	})
	defer m.Stop()
	client.setDown("mb", true)
	time.Sleep(50 * time.Millisecond)
	// a must have fallen back to a one-node ring and still answer.
	if got := a.Successor(); got.ID != a.ID() {
		t.Errorf("successor after neighbor death = %s, want self", got)
	}
	owner, _, err := a.Lookup(12345)
	if err != nil || owner.ID != a.ID() {
		t.Errorf("lookup after collapse = %v, %v", owner, err)
	}
}
