package chord

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"p2prange/internal/metrics"
	"p2prange/internal/obs"
)

// Ref identifies a chord node: its ring position and its transport address.
// The zero Ref is "no node".
type Ref struct {
	ID   ID
	Addr string
}

// IsZero reports whether the Ref refers to no node.
func (r Ref) IsZero() bool { return r.Addr == "" }

// String formats the ref as id@addr.
func (r Ref) String() string { return FmtID(r.ID) + "@" + r.Addr }

// Errors returned by the protocol layer.
var (
	// ErrNoPredecessor indicates the queried node has no known predecessor
	// yet (a freshly joined node).
	ErrNoPredecessor = errors.New("chord: no predecessor")
	// ErrUnreachable indicates the transport could not reach the node.
	ErrUnreachable = errors.New("chord: node unreachable")
	// ErrNotFound indicates a lookup could not complete.
	ErrNotFound = errors.New("chord: lookup failed")
)

// Client is the RPC surface a node needs from its peers. Both the
// in-memory and TCP transports implement it; *Node itself implements the
// same operations locally (see Handler).
type Client interface {
	// Successor returns the target's current successor.
	Successor(addr string) (Ref, error)
	// Predecessor returns the target's predecessor, or ErrNoPredecessor.
	Predecessor(addr string) (Ref, error)
	// ClosestPreceding returns the finger of the target that most closely
	// precedes id (or the target itself if none does).
	ClosestPreceding(addr string, id ID) (Ref, error)
	// FindSuccessor resolves the node owning id, recursing as needed.
	FindSuccessor(addr string, id ID) (Ref, error)
	// Notify tells the target that self may be its predecessor.
	Notify(addr string, self Ref) error
	// Ping checks liveness.
	Ping(addr string) error
	// SuccessorList returns the target's successor list, used to route
	// around a failed next hop.
	SuccessorList(addr string) ([]Ref, error)
}

// Handler is the server-side surface of a chord node, mirroring Client
// without the addressing. Transports dispatch incoming requests to it.
type Handler interface {
	HandleSuccessor() (Ref, error)
	HandlePredecessor() (Ref, error)
	HandleClosestPreceding(id ID) (Ref, error)
	HandleFindSuccessor(id ID) (Ref, error)
	HandleNotify(candidate Ref) error
	HandlePing() error
	HandleSuccessorList() ([]Ref, error)
}

// DefaultSuccessors is the successor-list length used when Config leaves
// it zero; it tolerates that many simultaneous adjacent failures.
const DefaultSuccessors = 8

// DefaultSuspectTTL is how long an unreachable node stays excluded from
// routing before it gets another chance. Long enough that one lookup
// never revisits a dead hop; short enough that a transient partition
// heals without restarting the node.
const DefaultSuspectTTL = 10 * time.Second

// Config parameterizes a Node.
type Config struct {
	// Successors is the successor-list length (default DefaultSuccessors).
	Successors int
	// DisableRerouting turns off failure-aware routing: lookups fail on
	// the first unreachable hop instead of routing around it via the
	// successor list. Used to quantify what fault tolerance buys.
	DisableRerouting bool
	// SuspectTTL is how long an unreachable node is excluded from routing
	// (default DefaultSuspectTTL; negative disables expiry-based reuse).
	SuspectTTL time.Duration
	// Stats, when non-nil, receives lookup/reroute counters.
	Stats *metrics.RouteStats
}

// Node is one chord peer's routing state. All methods are safe for
// concurrent use. A Node does not own any background goroutines; the
// Maintainer (maintain.go) drives stabilization for live deployments, and
// BuildStableRing (static.go) installs converged state for simulations.
type Node struct {
	ref     Ref
	client  Client
	nsucc   int
	reroute bool
	susTTL  time.Duration
	stats   *metrics.RouteStats

	mu      sync.RWMutex
	pred    Ref
	fingers [M]Ref // fingers[k] = successor(ref.ID + 2^k)
	succs   []Ref  // successor list, succs[0] == fingers[0]

	// smu guards suspects separately from the routing state: marking a
	// node suspect happens on the lookup hot path and must not contend
	// with stabilization writes.
	smu      sync.Mutex
	suspects map[ID]time.Time // node ID -> expiry
}

// NewNode creates a node at addr (ring position HashAddr(addr)) that will
// reach other nodes through client. The node starts as a one-node ring:
// its own successor.
func NewNode(addr string, client Client, cfg Config) *Node {
	n := &Node{
		ref:      Ref{ID: HashAddr(addr), Addr: addr},
		client:   client,
		nsucc:    cfg.Successors,
		reroute:  !cfg.DisableRerouting,
		susTTL:   cfg.SuspectTTL,
		stats:    cfg.Stats,
		suspects: make(map[ID]time.Time),
	}
	if n.nsucc <= 0 {
		n.nsucc = DefaultSuccessors
	}
	if n.susTTL == 0 {
		n.susTTL = DefaultSuspectTTL
	}
	for k := range n.fingers {
		n.fingers[k] = n.ref
	}
	n.succs = []Ref{n.ref}
	return n
}

// Ref returns the node's identity.
func (n *Node) Ref() Ref { return n.ref }

// ID returns the node's ring position.
func (n *Node) ID() ID { return n.ref.ID }

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.ref.Addr }

// successor returns the current first successor.
func (n *Node) successor() Ref {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.fingers[0]
}

// Successor returns the node's current successor (itself in a one-node
// ring).
func (n *Node) Successor() Ref { return n.successor() }

// Predecessor returns the node's predecessor and whether one is known.
func (n *Node) Predecessor() (Ref, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.pred, !n.pred.IsZero()
}

// SuccessorList returns a copy of the successor list.
func (n *Node) SuccessorList() []Ref {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]Ref(nil), n.succs...)
}

// Successors returns up to k distinct successors, excluding this node
// itself and zero entries — the placement set replication writes to. On
// a ring smaller than k+1 nodes the result is shorter than k.
func (n *Node) Successors(k int) []Ref {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]Ref, 0, k)
	seen := make(map[ID]bool, k)
	for _, s := range n.succs {
		if len(out) >= k {
			break
		}
		if s.IsZero() || s.ID == n.ref.ID || seen[s.ID] {
			continue
		}
		seen[s.ID] = true
		out = append(out, s)
	}
	return out
}

// Fingers returns a copy of the finger table.
func (n *Node) Fingers() []Ref {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]Ref, M)
	copy(out, n.fingers[:])
	return out
}

// setSuccessor installs s as the first finger and head of the successor
// list.
func (n *Node) setSuccessor(s Ref) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fingers[0] = s
	if len(n.succs) == 0 {
		n.succs = []Ref{s}
	} else {
		n.succs[0] = s
	}
}

// Stats returns the node's failure counters (nil when not configured).
func (n *Node) Stats() *metrics.RouteStats { return n.stats }

// FaultTolerant reports whether failure-aware rerouting is enabled.
func (n *Node) FaultTolerant() bool { return n.reroute }

// metChordSuspects counts suspect markings process-wide (Default
// registry), the live signal of how much churn routing is seeing.
var metChordSuspects = metrics.Default.Counter("chord.suspects")

// MarkSuspect excludes a node from routing decisions until SuspectTTL
// elapses. Called when an RPC to the node fails at the transport level.
// A fresh suspicion (not a refresh of one still in effect) lands in the
// cluster event journal — the per-incident signal behind the
// chord.suspects counter.
func (n *Node) MarkSuspect(id ID) {
	if id == n.ref.ID {
		return
	}
	metChordSuspects.Inc()
	now := time.Now()
	n.smu.Lock()
	exp, known := n.suspects[id]
	fresh := !known || (n.susTTL >= 0 && now.After(exp))
	n.suspects[id] = now.Add(n.susTTL)
	n.smu.Unlock()
	if fresh {
		obs.Events.Emitf(obs.SevWarn, "chord", "%s suspects %08x: unreachable, excluded from routing", n.ref.Addr, id)
	}
}

// Suspect reports whether the node is currently excluded from routing.
func (n *Node) Suspect(id ID) bool {
	n.smu.Lock()
	defer n.smu.Unlock()
	exp, ok := n.suspects[id]
	if !ok {
		return false
	}
	if n.susTTL >= 0 && time.Now().After(exp) {
		delete(n.suspects, id)
		return false
	}
	return true
}

// ForgetSuspects clears the suspect set, e.g. after a partition heals.
func (n *Node) ForgetSuspects() {
	n.smu.Lock()
	n.suspects = make(map[ID]time.Time)
	n.smu.Unlock()
}

// Owns reports whether identifier id falls in this node's arc
// (predecessor, self]. With no known predecessor a one-node ring owns
// everything.
func (n *Node) Owns(id ID) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if n.pred.IsZero() {
		return true
	}
	return BetweenRightIncl(n.pred.ID, n.ref.ID, id)
}

// --- Handler implementation (server side of the protocol) ---

// HandleSuccessor implements Handler.
func (n *Node) HandleSuccessor() (Ref, error) { return n.successor(), nil }

// HandlePredecessor implements Handler.
func (n *Node) HandlePredecessor() (Ref, error) {
	if p, ok := n.Predecessor(); ok {
		return p, nil
	}
	return Ref{}, ErrNoPredecessor
}

// HandleClosestPreceding implements Handler: the highest finger (or
// successor-list entry) strictly between this node and id, skipping
// nodes currently suspected dead.
func (n *Node) HandleClosestPreceding(id ID) (Ref, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for k := M - 1; k >= 0; k-- {
		f := n.fingers[k]
		if !f.IsZero() && Between(n.ref.ID, id, f.ID) && !n.Suspect(f.ID) {
			return f, nil
		}
	}
	for i := len(n.succs) - 1; i >= 0; i-- {
		s := n.succs[i]
		if !s.IsZero() && Between(n.ref.ID, id, s.ID) && !n.Suspect(s.ID) {
			return s, nil
		}
	}
	return n.ref, nil
}

// HandleFindSuccessor implements Handler: resolve the owner of id,
// delegating recursively through the ring.
func (n *Node) HandleFindSuccessor(id ID) (Ref, error) {
	succ := n.successor()
	if BetweenRightIncl(n.ref.ID, succ.ID, id) {
		return succ, nil
	}
	next, err := n.HandleClosestPreceding(id)
	if err != nil {
		return Ref{}, err
	}
	if next.ID == n.ref.ID {
		return succ, nil // we are the closest known; our successor owns id
	}
	return n.client.FindSuccessor(next.Addr, id)
}

// HandleNotify implements Handler: candidate believes it may be our
// predecessor.
func (n *Node) HandleNotify(candidate Ref) error {
	if candidate.IsZero() || candidate.ID == n.ref.ID {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pred.IsZero() || Between(n.pred.ID, n.ref.ID, candidate.ID) {
		n.pred = candidate
	}
	return nil
}

// HandlePing implements Handler.
func (n *Node) HandlePing() error { return nil }

// HandleSuccessorList implements Handler.
func (n *Node) HandleSuccessorList() ([]Ref, error) {
	return n.SuccessorList(), nil
}

// Join makes the node join the ring that bootstrap belongs to. The node
// asks bootstrap to resolve the successor of its own ID and adopts it; the
// stabilization protocol then repairs predecessor links and fingers.
func (n *Node) Join(bootstrap string) error {
	succ, err := n.client.FindSuccessor(bootstrap, n.ref.ID)
	if err != nil {
		return fmt.Errorf("chord: join via %s: %w", bootstrap, err)
	}
	n.mu.Lock()
	n.pred = Ref{}
	n.mu.Unlock()
	n.setSuccessor(succ)
	return nil
}

// Stabilize runs one round of the stabilization protocol: verify the
// successor, adopt a closer one if its predecessor sits between us, and
// notify the successor of our existence. It also refreshes the successor
// list.
func (n *Node) Stabilize() error {
	succ := n.successor()
	if succ.ID == n.ref.ID {
		// Self-successor (bootstrap or collapsed ring): adopt our
		// predecessor, learned via Notify, as the successor.
		if p, ok := n.Predecessor(); ok && p.ID != n.ref.ID {
			n.setSuccessor(p)
			succ = p
		}
	}
	if succ.ID != n.ref.ID {
		x, err := n.client.Predecessor(succ.Addr)
		switch {
		case err == nil && !x.IsZero() && Between(n.ref.ID, succ.ID, x.ID):
			if n.client.Ping(x.Addr) == nil {
				succ = x
				n.setSuccessor(succ)
			}
		case err != nil && !errors.Is(err, ErrNoPredecessor):
			// Successor unreachable: fail over to the next live entry in
			// the successor list.
			if next, ok := n.failoverSuccessor(); ok {
				succ = next
			} else {
				return fmt.Errorf("chord: no live successor: %w", err)
			}
		}
	}
	if succ.ID != n.ref.ID {
		if err := n.client.Notify(succ.Addr, n.ref); err != nil {
			return err
		}
	}
	n.refreshSuccessorList(succ)
	return nil
}

// failoverSuccessor promotes the first live entry of the successor list.
func (n *Node) failoverSuccessor() (Ref, bool) {
	for _, s := range n.SuccessorList()[1:] {
		if s.IsZero() || s.ID == n.ref.ID {
			continue
		}
		if n.client.Ping(s.Addr) == nil {
			n.setSuccessor(s)
			return s, true
		}
	}
	// Last resort: become a one-node ring again.
	n.setSuccessor(n.ref)
	return n.ref, false
}

// refreshSuccessorList rebuilds the successor list by walking successors.
func (n *Node) refreshSuccessorList(head Ref) {
	list := make([]Ref, 0, n.nsucc)
	list = append(list, head)
	cur := head
	for len(list) < n.nsucc && cur.ID != n.ref.ID {
		next, err := n.client.Successor(cur.Addr)
		if err != nil || next.IsZero() {
			break
		}
		if next.ID == head.ID {
			break // wrapped around a small ring
		}
		list = append(list, next)
		cur = next
	}
	n.mu.Lock()
	n.succs = list
	n.mu.Unlock()
}

// FixFinger refreshes finger k by resolving successor(n + 2^k).
func (n *Node) FixFinger(k uint) error {
	target := Add(n.ref.ID, k)
	ref, err := n.HandleFindSuccessor(target)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.fingers[k] = ref
	n.mu.Unlock()
	return nil
}

// CheckPredecessor clears the predecessor if it stopped responding.
func (n *Node) CheckPredecessor() {
	p, ok := n.Predecessor()
	if !ok {
		return
	}
	if err := n.client.Ping(p.Addr); err != nil {
		n.mu.Lock()
		if n.pred.ID == p.ID {
			n.pred = Ref{}
		}
		n.mu.Unlock()
	}
}

// Leave hands the ring over gracefully: tells the successor to adopt our
// predecessor and the predecessor to adopt our successor. Data handoff is
// the storage layer's job.
func (n *Node) Leave() error {
	succ := n.successor()
	pred, hasPred := n.Predecessor()
	if succ.ID == n.ref.ID {
		return nil // one-node ring
	}
	if hasPred {
		if err := n.client.Notify(succ.Addr, pred); err != nil {
			return err
		}
	}
	return nil
}
