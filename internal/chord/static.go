package chord

import (
	"fmt"
	"sort"
)

// BuildStableRing constructs a fully converged ring over the given nodes:
// every node's predecessor, successor list, and all M fingers are set to
// their exact values. It is what a long-stabilized live ring converges to,
// and lets simulations with thousands of peers skip the stabilization
// transient (the paper's evaluation likewise measures converged rings).
// Node IDs must be distinct; duplicate ring positions are reported as an
// error so callers can re-hash (vanishingly rare with SHA-1, but 32-bit
// identifiers make collisions possible at large N).
func BuildStableRing(nodes []*Node) error {
	if len(nodes) == 0 {
		return nil
	}
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].ID() == sorted[i-1].ID() {
			return fmt.Errorf("chord: identifier collision %s between %s and %s",
				FmtID(sorted[i].ID()), sorted[i-1].Addr(), sorted[i].Addr())
		}
	}
	n := len(sorted)
	ids := make([]ID, n)
	for i, nd := range sorted {
		ids[i] = nd.ID()
	}
	// succIdx returns the index of the first node with ID >= id (mod ring).
	succIdx := func(id ID) int {
		i := sort.Search(n, func(i int) bool { return ids[i] >= id })
		if i == n {
			return 0
		}
		return i
	}
	for i, nd := range sorted {
		nd.mu.Lock()
		nd.pred = sorted[(i-1+n)%n].ref
		for k := uint(0); k < M; k++ {
			nd.fingers[k] = sorted[succIdx(Add(nd.ref.ID, k))].ref
		}
		nd.succs = nd.succs[:0]
		for j := 1; j <= nd.nsucc && j < n+1; j++ {
			nd.succs = append(nd.succs, sorted[(i+j)%n].ref)
		}
		if len(nd.succs) == 0 {
			nd.succs = append(nd.succs, nd.ref)
		}
		nd.mu.Unlock()
	}
	return nil
}

// RingInfo summarizes a converged ring for diagnostics and tests.
type RingInfo struct {
	N         int  // number of nodes
	Converged bool // every successor/predecessor link is mutual
}

// VerifyRing checks that the given nodes form one consistent ring: sorted
// by ID, each node's successor is the next node and its predecessor the
// previous one. Intended for tests and the live cluster's health check.
func VerifyRing(nodes []*Node) (RingInfo, error) {
	info := RingInfo{N: len(nodes)}
	if len(nodes) == 0 {
		info.Converged = true
		return info, nil
	}
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	n := len(sorted)
	for i, nd := range sorted {
		wantSucc := sorted[(i+1)%n].ref
		if got := nd.Successor(); got.ID != wantSucc.ID {
			return info, fmt.Errorf("chord: node %s successor is %s, want %s",
				nd.Ref(), got, wantSucc)
		}
		wantPred := sorted[(i-1+n)%n].ref
		if got, ok := nd.Predecessor(); n > 1 && (!ok || got.ID != wantPred.ID) {
			return info, fmt.Errorf("chord: node %s predecessor is %s, want %s",
				nd.Ref(), got, wantPred)
		}
	}
	info.Converged = true
	return info, nil
}
