package djoin

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"p2prange/internal/chord"
	"p2prange/internal/peer"
	"p2prange/internal/relation"
	"p2prange/internal/transport"
)

// Side distinguishes the two join inputs.
type Side uint8

// Join sides.
const (
	Left Side = iota
	Right
)

// Protocol messages.
type (
	// ScatterReq delivers one holder's tuples for the buckets a single
	// owner peer is responsible for.
	ScatterReq struct {
		Session  string
		Side     Side
		Relation string
		// Keys[i] is the exact join-key encoding of Tuples[i]; bucket
		// routing uses its hash, matching uses the key itself (so hash
		// collisions cannot produce false joins).
		Keys   []string
		Tuples []relation.Tuple
	}
	// CollectReq asks an owner for the joined pairs of a session.
	CollectReq struct{ Session string }
	// CollectResp returns the matched pairs.
	CollectResp struct {
		LeftRel, RightRel string
		Left              []relation.Tuple
		Right             []relation.Tuple
	}
	// CleanupReq discards a session's state at an owner.
	CleanupReq struct{ Session string }
)

func init() {
	transport.RegisterType(ScatterReq{})
	transport.RegisterType(CollectReq{})
	transport.RegisterType(CollectResp{})
	transport.RegisterType(CleanupReq{})
}

// Service holds the owner-side state of distributed joins at one peer.
// Attach exactly one per peer with NewService.
type Service struct {
	mu       sync.Mutex
	sessions map[string]*session
}

type session struct {
	leftRel, rightRel string
	left              map[string][]relation.Tuple // join key -> tuples
	right             map[string][]relation.Tuple
}

// NewService creates the join service and registers its protocol on p.
func NewService(p *peer.Peer) *Service {
	s := &Service{sessions: make(map[string]*session)}
	p.RegisterAux(s.handle)
	return s
}

func (s *Service) session(name string) *session {
	sess, ok := s.sessions[name]
	if !ok {
		sess = &session{
			left:  make(map[string][]relation.Tuple),
			right: make(map[string][]relation.Tuple),
		}
		s.sessions[name] = sess
	}
	return sess
}

func (s *Service) handle(req any) (any, bool, error) {
	switch r := req.(type) {
	case ScatterReq:
		s.mu.Lock()
		defer s.mu.Unlock()
		sess := s.session(r.Session)
		for i, key := range r.Keys {
			if r.Side == Left {
				sess.leftRel = r.Relation
				sess.left[key] = append(sess.left[key], r.Tuples[i])
			} else {
				sess.rightRel = r.Relation
				sess.right[key] = append(sess.right[key], r.Tuples[i])
			}
		}
		return transport.OKResp{}, true, nil
	case CollectReq:
		s.mu.Lock()
		defer s.mu.Unlock()
		sess, ok := s.sessions[r.Session]
		resp := CollectResp{}
		if ok {
			resp.LeftRel, resp.RightRel = sess.leftRel, sess.rightRel
			// Deterministic order: sorted keys.
			keys := make([]string, 0, len(sess.left))
			for k := range sess.left {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				for _, lt := range sess.left[k] {
					for _, rt := range sess.right[k] {
						resp.Left = append(resp.Left, lt)
						resp.Right = append(resp.Right, rt)
					}
				}
			}
		}
		return resp, true, nil
	case CleanupReq:
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.sessions, r.Session)
		return transport.OKResp{}, true, nil
	default:
		return nil, false, nil
	}
}

// Sessions reports how many sessions currently hold state (for tests).
func (s *Service) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// BufferedTuples reports how many scattered tuples this peer buffers for
// a session — the per-peer join workload metric.
func (s *Service) BufferedTuples(session string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[session]
	if !ok {
		return 0
	}
	n := 0
	for _, ts := range sess.left {
		n += len(ts)
	}
	for _, ts := range sess.right {
		n += len(ts)
	}
	return n
}

// KeyID places a join key on the identifier ring.
func KeyID(session, key string) uint32 {
	h := sha1.New()
	h.Write([]byte(session))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return binary.BigEndian.Uint32(h.Sum(nil)[:4])
}

// EncodeKey renders a join-key value exactly (kind-tagged), so distinct
// values never alias.
func EncodeKey(v relation.Value) string {
	return fmt.Sprintf("%d|%d|%s", v.Kind, v.Int, v.Str)
}

// Input is one side of the join: the tuples a holder peer contributes
// and the key column to join on.
type Input struct {
	Holder *peer.Peer
	Rel    *relation.Relation
	Key    string // column name
	Side   Side
}

// Scatter re-hashes every tuple of in to the owner of its join key,
// batching one message per owner. It returns the identifiers used (the
// coordinator collects from their owners) and the number of messages
// sent.
func Scatter(session string, in Input) (ids []uint32, messages int, err error) {
	ki, ok := in.Rel.Schema.ColIndex(in.Key)
	if !ok {
		return nil, 0, fmt.Errorf("djoin: no column %s.%s", in.Rel.Schema.Name, in.Key)
	}
	type batch struct {
		owner  chord.Ref
		keys   []string
		tuples []relation.Tuple
	}
	batches := make(map[uint32]*batch) // by owner id
	idSet := make(map[uint32]bool)
	for _, t := range in.Rel.Tuples {
		key := EncodeKey(t[ki])
		id := KeyID(session, key)
		idSet[id] = true
		owner, _, err := in.Holder.RouteOwner(id)
		if err != nil {
			return nil, 0, err
		}
		b, ok := batches[owner.ID]
		if !ok {
			b = &batch{owner: owner}
			batches[owner.ID] = b
		}
		b.keys = append(b.keys, key)
		b.tuples = append(b.tuples, t)
	}
	for _, b := range batches {
		req := ScatterReq{
			Session:  session,
			Side:     in.Side,
			Relation: in.Rel.Schema.Name,
			Keys:     b.keys,
			Tuples:   b.tuples,
		}
		if _, err := in.Holder.Call(b.owner, req); err != nil {
			return nil, messages, err
		}
		messages++
	}
	for id := range idSet {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, messages, nil
}

// Result is the joined output: pairs of (left, right) tuples plus the
// schemas they came from.
type Result struct {
	LeftSchema, RightSchema *relation.RelationSchema
	Left, Right             []relation.Tuple
	// Messages is the total protocol messages (scatter batches + collect
	// + cleanup), the distribution-cost metric.
	Messages int
}

// Len returns the number of joined pairs.
func (r *Result) Len() int { return len(r.Left) }

// Run executes the full distributed join: both inputs scatter from their
// holders, the coordinator collects from every bucket owner, and session
// state is cleaned up. The coordinator needs only routing state — tuples
// flow holder → owner → coordinator.
func Run(coordinator *peer.Peer, session string, left, right Input) (*Result, error) {
	left.Side, right.Side = Left, Right
	res := &Result{LeftSchema: left.Rel.Schema, RightSchema: right.Rel.Schema}

	idsL, msgsL, err := Scatter(session, left)
	if err != nil {
		return nil, fmt.Errorf("djoin: scatter left: %w", err)
	}
	idsR, msgsR, err := Scatter(session, right)
	if err != nil {
		return nil, fmt.Errorf("djoin: scatter right: %w", err)
	}
	res.Messages = msgsL + msgsR

	// Owners to visit: the distinct owners of both sides' identifiers
	// (matches can only exist where both sides landed, but cleanup must
	// reach every owner that holds any state).
	owners := make(map[uint32]chord.Ref)
	for _, id := range append(append([]uint32{}, idsL...), idsR...) {
		owner, _, err := coordinator.RouteOwner(id)
		if err != nil {
			return nil, err
		}
		owners[owner.ID] = owner
	}
	ordered := make([]chord.Ref, 0, len(owners))
	for _, ref := range owners {
		ordered = append(ordered, ref)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	for _, owner := range ordered {
		resp, err := coordinator.Call(owner, CollectReq{Session: session})
		if err != nil {
			return nil, fmt.Errorf("djoin: collect from %s: %w", owner, err)
		}
		res.Messages++
		cr, ok := resp.(CollectResp)
		if !ok {
			return nil, transport.BadRequest(resp)
		}
		res.Left = append(res.Left, cr.Left...)
		res.Right = append(res.Right, cr.Right...)
	}
	for _, owner := range ordered {
		if _, err := coordinator.Call(owner, CleanupReq{Session: session}); err != nil {
			return nil, fmt.Errorf("djoin: cleanup at %s: %w", owner, err)
		}
		res.Messages++
	}
	return res, nil
}
