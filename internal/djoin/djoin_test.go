package djoin

import (
	"testing"

	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/relation"
	"p2prange/internal/sim"
)

// joinCluster builds a cluster with the join service attached everywhere.
func joinCluster(t *testing.T, n int) (*sim.Cluster, []*Service) {
	t.Helper()
	scheme, err := sim.Scheme(minhash.ApproxMinWise, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sim.NewCluster(sim.ClusterConfig{N: n, Peer: peer.Config{Scheme: scheme}})
	if err != nil {
		t.Fatal(err)
	}
	services := make([]*Service, n)
	for i, p := range c.Peers {
		services[i] = NewService(p)
	}
	return c, services
}

func medical(t *testing.T) map[string]*relation.Relation {
	t.Helper()
	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 150, Physicians: 10, Diagnoses: 400, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rels
}

// nestedLoopJoin is the oracle.
func nestedLoopJoin(l, r *relation.Relation, lk, rk string) int {
	li, _ := l.Schema.ColIndex(lk)
	ri, _ := r.Schema.ColIndex(rk)
	count := 0
	for _, lt := range l.Tuples {
		for _, rt := range r.Tuples {
			if lt[li].Equal(rt[ri]) {
				count++
			}
		}
	}
	return count
}

func TestDistributedJoinMatchesNestedLoop(t *testing.T) {
	c, _ := joinCluster(t, 12)
	rels := medical(t)

	res, err := Run(c.Peers[0], "s1",
		Input{Holder: c.Peers[3], Rel: rels["Patient"], Key: "patient_id"},
		Input{Holder: c.Peers[7], Rel: rels["Diagnosis"], Key: "patient_id"})
	if err != nil {
		t.Fatal(err)
	}
	want := nestedLoopJoin(rels["Patient"], rels["Diagnosis"], "patient_id", "patient_id")
	if res.Len() != want {
		t.Fatalf("distributed join produced %d pairs, nested loop %d", res.Len(), want)
	}
	// Every pair actually matches on the key.
	li, _ := rels["Patient"].Schema.ColIndex("patient_id")
	ri, _ := rels["Diagnosis"].Schema.ColIndex("patient_id")
	for i := range res.Left {
		if !res.Left[i][li].Equal(res.Right[i][ri]) {
			t.Fatalf("pair %d keys differ: %v vs %v", i, res.Left[i][li], res.Right[i][ri])
		}
	}
	if res.Messages == 0 {
		t.Error("no message accounting")
	}
}

func TestDistributedJoinCleansUp(t *testing.T) {
	c, services := joinCluster(t, 8)
	rels := medical(t)
	_, err := Run(c.Peers[0], "s2",
		Input{Holder: c.Peers[1], Rel: rels["Physician"], Key: "physician_id"},
		Input{Holder: c.Peers[2], Rel: rels["Diagnosis"], Key: "physician_id"})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range services {
		if s.Sessions() != 0 {
			t.Errorf("peer %d still holds %d sessions after cleanup", i, s.Sessions())
		}
	}
}

func TestDistributedJoinSessionsIsolated(t *testing.T) {
	c, _ := joinCluster(t, 8)
	rels := medical(t)
	// Scatter one side under session A, then run a full join under
	// session B; A's tuples must not leak into B's result.
	if _, _, err := Scatter("A", Input{Holder: c.Peers[0], Rel: rels["Diagnosis"], Key: "patient_id", Side: Right}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(c.Peers[0], "B",
		Input{Holder: c.Peers[1], Rel: rels["Patient"], Key: "patient_id"},
		Input{Holder: c.Peers[2], Rel: rels["Diagnosis"], Key: "patient_id"})
	if err != nil {
		t.Fatal(err)
	}
	want := nestedLoopJoin(rels["Patient"], rels["Diagnosis"], "patient_id", "patient_id")
	if res.Len() != want {
		t.Errorf("session isolation broken: %d pairs, want %d", res.Len(), want)
	}
}

func TestDistributedJoinEmptySide(t *testing.T) {
	c, _ := joinCluster(t, 4)
	rels := medical(t)
	empty := relation.NewRelation(rels["Patient"].Schema)
	res, err := Run(c.Peers[0], "s3",
		Input{Holder: c.Peers[1], Rel: empty, Key: "patient_id"},
		Input{Holder: c.Peers[2], Rel: rels["Diagnosis"], Key: "patient_id"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("join with empty side produced %d pairs", res.Len())
	}
}

func TestDistributedJoinBadColumn(t *testing.T) {
	c, _ := joinCluster(t, 4)
	rels := medical(t)
	_, _, err := Scatter("s4", Input{Holder: c.Peers[0], Rel: rels["Patient"], Key: "nope"})
	if err == nil {
		t.Error("unknown join column accepted")
	}
}

func TestEncodeKeyDistinguishesKinds(t *testing.T) {
	a := EncodeKey(relation.IntVal(5))
	b := EncodeKey(relation.StrVal("5"))
	if a == b {
		t.Error("int 5 and string \"5\" alias")
	}
}

// TestDistributedJoinSpreadsWork verifies the rehash actually distributes
// buckets over many owners (the point of doing the join over the DHT).
func TestDistributedJoinSpreadsWork(t *testing.T) {
	c, services := joinCluster(t, 16)
	rels := medical(t)
	if _, _, err := Scatter("s5", Input{Holder: c.Peers[0], Rel: rels["Diagnosis"], Key: "patient_id", Side: Left}); err != nil {
		t.Fatal(err)
	}
	holders := 0
	for _, s := range services {
		if s.Sessions() > 0 {
			holders++
		}
	}
	if holders < 8 {
		t.Errorf("only %d/16 peers hold join state; rehash not spreading", holders)
	}
	// Cleanup for hygiene.
	for i := range c.Peers {
		_, _ = c.Peers[i].Handle(CleanupReq{Session: "s5"})
	}
}
