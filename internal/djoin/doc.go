// Package djoin implements the distributed hash join over the DHT that
// Harren et al. ("Complex Queries in DHT-based Peer-to-Peer Networks",
// IPTPS 2002) describe — the query-processing line of work the paper
// builds its range-selection contribution beside (it cites DHT query
// processing as complementary: selections through LSH identifiers, joins
// through key re-hashing).
//
// # Protocol
//
// To join R and S on a key, every peer holding tuples re-hashes them by
// join key into the same 32-bit identifier space the range protocol uses;
// the peer owning each key's identifier receives both sides (as an
// auxiliary message type registered through peer.RegisterAux), joins
// locally, and the coordinator collects the matches. The join never
// materializes either relation at a single peer — only matching pairs
// travel to the coordinator.
package djoin
