package experiments

import (
	"fmt"
	"math/rand"

	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/sim"
	"p2prange/internal/store"
	"p2prange/internal/workload"
)

func init() {
	Register("kl", AblationKL)
	Register("peeridx", AblationPeerIndex)
	Register("workloads", AblationWorkloads)
}

// AblationKL sweeps the (k, l) scheme parameters and reports the
// theoretical collision-probability step alongside the measured match
// rate and full-recall rate, showing why the paper picked k=20, l=5 (a
// step at similarity ≈ 0.9).
func AblationKL(p Params) (*Table, error) {
	t := &Table{
		ID:      "kl",
		Title:   "(k,l) parameter ablation, approximate min-wise hashing",
		Columns: []string{"k", "l", "P(col|s=.8)", "P(col|s=.9)", "P(col|s=.95)", "matched%", "full-recall%"},
		Notes:   qualityNote(p, "theoretical step 1-(1-s^k)^l vs measured behavior"),
	}
	configs := []struct{ k, l int }{
		{1, 1}, {5, 3}, {10, 5}, {20, 5}, {20, 10}, {40, 5},
	}
	for _, c := range configs {
		scheme, err := minhash.NewScheme(minhash.ApproxMinWise, c.k, c.l,
			rand.New(rand.NewSource(p.Seed)))
		if err != nil {
			return nil, err
		}
		cluster, err := sim.NewCluster(sim.ClusterConfig{
			N:    p.ClusterN,
			Peer: peer.Config{Scheme: scheme.Compiled()},
		})
		if err != nil {
			return nil, err
		}
		res, err := sim.RunQuality(cluster, sim.QualityConfig{Queries: p.Queries, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", c.k),
			fmt.Sprintf("%d", c.l),
			fmt.Sprintf("%.3f", minhash.CollideProbability(0.80, c.k, c.l)),
			fmt.Sprintf("%.3f", minhash.CollideProbability(0.90, c.k, c.l)),
			fmt.Sprintf("%.3f", minhash.CollideProbability(0.95, c.k, c.l)),
			fmt.Sprintf("%.1f", 100*float64(res.Matched)/float64(res.Measured)),
			fmt.Sprintf("%.1f", res.Recall.AtLeast(0.9999)),
		)
	}
	return t, nil
}

// AblationPeerIndex exercises the Section 5.3 extension: searching all
// buckets a peer owns instead of only the requested bucket. The paper
// predicts recall is best with one peer (all partitions in one index) and
// degrades toward bucket-only recall as the ring grows. The benefit is
// saturated while cached descriptors greatly outnumber peers (a query
// with one containing cached range typically has many, so probing even a
// few peers finds one); the sweep therefore extends into the sparse
// regime where peers outnumber cached buckets.
func AblationPeerIndex(p Params) (*Table, error) {
	t := &Table{
		ID:      "peeridx",
		Title:   "Per-peer index extension (Sec 5.3): recall vs ring size",
		Columns: []string{"peers", "indexed full-recall%", "bucket-only full-recall%"},
		Notes:   qualityNote(p, "containment matching, approx min-wise"),
	}
	sizes := []int{1, 16, 256, 4096}
	for _, n := range sizes {
		var full [2]float64
		for mode, useIdx := range []bool{true, false} {
			scheme, err := sim.Scheme(minhash.ApproxMinWise, p.Seed)
			if err != nil {
				return nil, err
			}
			cluster, err := sim.NewCluster(sim.ClusterConfig{
				N: n,
				Peer: peer.Config{
					Scheme:       scheme,
					Measure:      store.MatchContainment,
					UsePeerIndex: useIdx,
				},
			})
			if err != nil {
				return nil, err
			}
			res, err := sim.RunQuality(cluster, sim.QualityConfig{Queries: p.Queries, Seed: p.Seed})
			if err != nil {
				return nil, err
			}
			full[mode] = res.Recall.AtLeast(0.9999)
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f", full[0]), fmt.Sprintf("%.1f", full[1]))
	}
	return t, nil
}

// AblationWorkloads compares the paper's uniform workload with skewed
// (Zipf) and clustered workloads: repeated hot ranges should raise match
// quality, since similar ranges accumulate in the cache.
func AblationWorkloads(p Params) (*Table, error) {
	t := &Table{
		ID:      "workloads",
		Title:   "Workload ablation: match rate and recall per query distribution",
		Columns: []string{"workload", "matched%", "full-recall%", ">=0.5-recall%"},
		Notes:   qualityNote(p, "containment matching, approx min-wise"),
	}
	gens := []sim.QualityConfig{
		{Queries: p.Queries, Seed: p.Seed},
		{Queries: p.Queries, Seed: p.Seed, Workload: newZipf(p.Seed)},
		{Queries: p.Queries, Seed: p.Seed, Workload: newClustered(p.Seed)},
	}
	labels := []string{"uniform", "zipf", "clustered"}
	for i, cfg := range gens {
		scheme, err := sim.Scheme(minhash.ApproxMinWise, p.Seed)
		if err != nil {
			return nil, err
		}
		cluster, err := sim.NewCluster(sim.ClusterConfig{
			N:    p.ClusterN,
			Peer: peer.Config{Scheme: scheme, Measure: store.MatchContainment},
		})
		if err != nil {
			return nil, err
		}
		res, err := sim.RunQuality(cluster, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			labels[i],
			fmt.Sprintf("%.1f", 100*float64(res.Matched)/float64(res.Measured)),
			fmt.Sprintf("%.1f", res.Recall.AtLeast(0.9999)),
			fmt.Sprintf("%.1f", res.Recall.AtLeast(0.5)),
		)
	}
	return t, nil
}

func newZipf(seed int64) workload.Generator {
	return workload.NewZipf(workload.DefaultDomainLo, workload.DefaultDomainHi, 300, 1.2, seed)
}

func newClustered(seed int64) workload.Generator {
	return workload.NewClustered(workload.DefaultDomainLo, workload.DefaultDomainHi, 5, 30, 300, seed)
}
