package experiments

import (
	"fmt"

	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/sim"
	"p2prange/internal/store"
)

func init() {
	Register("exact", BaselineExact)
	Register("padding", AblationPadding)
}

// BaselineExact reproduces the paper's Section 3.1 motivation as a
// measurement: caching under exact range keys (SHA-1 of [lo,hi]) only
// helps on identical repeats (~0.2% of the uniform workload), while LSH
// answers a large fraction of queries from similar cached partitions.
func BaselineExact(p Params) (*Table, error) {
	t := &Table{
		ID:      "exact",
		Title:   "Exact range keys (Sec 3.1 strawman) vs LSH",
		Columns: []string{"scheme", "matched%", "exact-repeats", "full-recall%", ">=0.5-recall%"},
		Notes:   qualityNote(p, "containment matching"),
	}
	type cfg struct {
		name   string
		hasher minhash.Hasher
	}
	lsh, err := sim.Scheme(minhash.ApproxMinWise, p.Seed)
	if err != nil {
		return nil, err
	}
	for _, c := range []cfg{
		{"exact-match", minhash.NewExactScheme()},
		{"LSH k=20 l=5", lsh},
	} {
		cluster, err := sim.NewCluster(sim.ClusterConfig{
			N:    p.ClusterN,
			Peer: peer.Config{Scheme: c.hasher, Measure: store.MatchContainment},
		})
		if err != nil {
			return nil, err
		}
		res, err := sim.RunQuality(cluster, sim.QualityConfig{Queries: p.Queries, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			c.name,
			fmt.Sprintf("%.1f", 100*float64(res.Matched)/float64(res.Measured)),
			fmt.Sprintf("%d", res.Exact),
			fmt.Sprintf("%.1f", res.Recall.AtLeast(0.9999)),
			fmt.Sprintf("%.1f", res.Recall.AtLeast(0.5)),
		)
	}
	return t, nil
}

// AblationPadding sweeps fixed padding fractions and the adaptive padder
// (the paper's "dynamically adjusting padding" future work), reporting
// the Fig. 10 trade-off: more padding answers more queries completely but
// costs recall on the queries it misleads.
func AblationPadding(p Params) (*Table, error) {
	t := &Table{
		ID:      "padding",
		Title:   "Query padding policies (fixed sweep + adaptive)",
		Columns: []string{"policy", "full-recall%", ">=0.8-recall%", "mean-recall"},
		Notes:   qualityNote(p, "containment matching, approx min-wise"),
	}
	run := func(pad float64, adaptive bool) (*sim.QualityResult, error) {
		scheme, err := sim.Scheme(minhash.ApproxMinWise, p.Seed)
		if err != nil {
			return nil, err
		}
		cluster, err := sim.NewCluster(sim.ClusterConfig{
			N:    p.ClusterN,
			Peer: peer.Config{Scheme: scheme, Measure: store.MatchContainment},
		})
		if err != nil {
			return nil, err
		}
		cfg := sim.QualityConfig{Queries: p.Queries, Seed: p.Seed, PadFrac: pad}
		if adaptive {
			cfg.AdaptivePadding = sim.NewAdaptivePadder(0.30)
		}
		return sim.RunQuality(cluster, cfg)
	}
	for _, pad := range []float64{0, 0.10, 0.20, 0.30} {
		res, err := run(pad, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("fixed %.0f%%", pad*100),
			fmt.Sprintf("%.1f", res.Recall.AtLeast(0.9999)),
			fmt.Sprintf("%.1f", res.Recall.AtLeast(0.8)),
			fmt.Sprintf("%.3f", res.Recall.Mean()),
		)
	}
	res, err := run(0, true)
	if err != nil {
		return nil, err
	}
	t.AddRow(
		"adaptive",
		fmt.Sprintf("%.1f", res.Recall.AtLeast(0.9999)),
		fmt.Sprintf("%.1f", res.Recall.AtLeast(0.8)),
		fmt.Sprintf("%.3f", res.Recall.Mean()),
	)
	return t, nil
}
