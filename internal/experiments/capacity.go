package experiments

import (
	"fmt"

	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/sim"
	"p2prange/internal/store"
)

func init() {
	Register("capacity", AblationCapacity)
}

// AblationCapacity bounds the per-peer descriptor cache (the paper
// assumes unbounded caches) and measures the recall cost of LRU eviction
// at decreasing capacities. The cache is useful well below the unbounded
// footprint because recently matched partitions — the ones similar
// queries keep hitting — stay resident.
func AblationCapacity(p Params) (*Table, error) {
	t := &Table{
		ID:      "capacity",
		Title:   "Per-peer cache capacity ablation (LRU eviction)",
		Columns: []string{"capacity/peer", "stored-total", "matched%", "full-recall%"},
		Notes:   qualityNote(p, "containment matching, approx min-wise; 0 = unbounded"),
	}
	// Unbounded footprint ≈ queries · l / peers; sweep fractions of it.
	unboundedPerPeer := p.Queries * minhash.DefaultL / p.ClusterN
	caps := []int{0, unboundedPerPeer / 2, unboundedPerPeer / 4, unboundedPerPeer / 16}
	for _, c := range caps {
		scheme, err := sim.Scheme(minhash.ApproxMinWise, p.Seed)
		if err != nil {
			return nil, err
		}
		cluster, err := sim.NewCluster(sim.ClusterConfig{
			N: p.ClusterN,
			Peer: peer.Config{
				Scheme:        scheme,
				Measure:       store.MatchContainment,
				CacheCapacity: c,
			},
		})
		if err != nil {
			return nil, err
		}
		res, err := sim.RunQuality(cluster, sim.QualityConfig{Queries: p.Queries, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		label := "unbounded"
		if c > 0 {
			label = fmt.Sprintf("%d", c)
		}
		t.AddRow(
			label,
			fmt.Sprintf("%d", cluster.TotalStored()),
			fmt.Sprintf("%.1f", 100*float64(res.Matched)/float64(res.Measured)),
			fmt.Sprintf("%.1f", res.Recall.AtLeast(0.9999)),
		)
	}
	return t, nil
}
