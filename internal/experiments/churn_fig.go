package experiments

import (
	"fmt"
	"os"
	"time"

	"p2prange/internal/sim"
)

func init() {
	Register("churn", ChurnResilience)
}

// ChurnResilience measures lookup availability under abrupt peer crashes
// and a lossy network, with the failure handling this codebase adds —
// transport retries, suspect tracking, and successor-list rerouting —
// switched on and off. The paper evaluates static rings only; this
// ablation quantifies what fault tolerance buys once the churn its
// deployment setting implies (Section 6) is simulated.
//
// The restart rows extend the ablation with durability: one peer is
// crashed and restarted with the same identity, either cold (its store
// gone, the pre-durability behavior) or with a write-ahead log replayed
// from disk. Recovered counts descriptors back before rejoining the
// ring; backfilled ones had to be resupplied by arc reclaim and
// anti-entropy; lost ones are gone. The recovery column is WAL replay
// latency.
//
// The resident rows cap the restarted peer's in-memory store at a
// fraction of its working set and serve the rest from the sealed segment
// (read-through). recall% compares every answer byte-for-byte against an
// unbounded reboot of the same data — by construction it must stay at
// 100 while disk/q (segment reads per lookup) rises as the cap shrinks.
func ChurnResilience(p Params) (*Table, error) {
	t := &Table{
		ID:    "churn",
		Title: "Lookup availability under churn: fault tolerance on vs off",
		Columns: []string{"peers", "crashes", "drop%", "mode", "success%", "retries", "reroutes", "injected",
			"held", "recovered", "backfilled", "lost", "recovery", "recall%", "p99", "disk/q",
			"sync-recs", "sync-rows", "sync-KB", "ident"},
	}
	n := p.ClusterN
	if n < 16 {
		n = 16
	}
	lookups := p.Queries
	if lookups <= 0 {
		lookups = 500
	}
	shipMissed := lookups / 10
	if shipMissed < 10 {
		shipMissed = 10
	}
	cfg := sim.ChurnConfig{
		N:       n,
		Lookups: lookups,
		Drop:    0.02,
		Seed:    p.Seed,
	}
	t.Notes = fmt.Sprintf("%d lookups, %d-peer ring, crashes spread across the run, identical seeds per mode; "+
		"restart rows: %d descriptors published, 1 peer crashed and restarted (cold vs WAL replay); "+
		"resident rows: 1 durable peer rebooted with its memory capped at the named fraction of the working set, "+
		"overflow served from the sealed segment — recall%% is byte-identity against the unbounded reboot; "+
		"ship rows: a follower missing %d of %d writes converges by digest exchange vs WAL tail vs snapshot+tail — "+
		"ident is byte-identity against local recovery of the owner's directory",
		lookups, n, lookups, shipMissed, lookups+shipMissed)
	for _, ft := range []bool{true, false} {
		cfg.FaultTolerance = ft
		res, err := sim.RunChurn(cfg)
		if err != nil {
			return nil, err
		}
		mode := "off"
		if ft {
			mode = "retry+reroute"
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", n/8),
			fmt.Sprintf("%.0f", cfg.Drop*100),
			mode,
			fmt.Sprintf("%.1f", res.SuccessRate()),
			fmt.Sprintf("%d", res.Stats.Retries),
			fmt.Sprintf("%d", res.Stats.Rerouted),
			fmt.Sprintf("%d", res.Injected),
			"-", "-", "-", "-", "-", "-", "-", "-",
			"-", "-", "-", "-",
		)
	}
	for _, durable := range []bool{false, true} {
		rcfg := sim.RestartConfig{
			N:          n,
			Partitions: lookups,
			Durable:    durable,
			Seed:       p.Seed,
		}
		mode := "restart-cold"
		if durable {
			mode = "restart+wal"
			dir, err := os.MkdirTemp("", "p2prange-restart-")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			rcfg.Dir = dir
		}
		res, err := sim.RunRestart(rcfg)
		if err != nil {
			return nil, err
		}
		recovery := "-"
		if durable {
			recovery = res.Recovery.Elapsed.Round(10 * time.Microsecond).String()
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			"1",
			"0",
			mode,
			"-", "-", "-", "-",
			fmt.Sprintf("%d", res.Held),
			fmt.Sprintf("%d", res.Recovered),
			fmt.Sprintf("%d", res.Backfilled),
			fmt.Sprintf("%d", res.Lost),
			recovery,
			"-", "-", "-",
			"-", "-", "-", "-",
		)
	}

	// Resident-set ablation: reboot one durable peer with its in-memory
	// store capped at 100/50/10% of the working set; the segment serves
	// the overflow. The 0% row is the unbounded baseline all answers are
	// compared against.
	var baseline *sim.ResidentResult
	for _, pct := range []int{0, 100, 50, 10} {
		dir, err := os.MkdirTemp("", "p2prange-resident-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		res, err := sim.RunResident(sim.ResidentConfig{
			Partitions: lookups / 2,
			Queries:    lookups,
			CapPct:     pct,
			Dir:        dir,
			Seed:       p.Seed,
		})
		if err != nil {
			return nil, err
		}
		mode, recall := "resident-all", "100.0"
		if pct == 0 {
			baseline = res
		} else {
			mode = fmt.Sprintf("resident-%d%%", pct)
			recall = fmt.Sprintf("%.1f", 100*res.Recall(baseline))
		}
		t.AddRow(
			"1", "1", "0", mode,
			"-", "-", "-", "-",
			fmt.Sprintf("%d", res.Held),
			"-", "-", "-",
			res.Recovery.Elapsed.Round(10*time.Microsecond).String(),
			recall,
			res.P99.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2f", res.DiskPerQuery()),
			"-", "-", "-", "-",
		)
	}

	// Ship ablation: a follower that synced once, missed a small batch
	// of writes, and converges again three ways. sync-recs is what moved
	// (records or pushed descriptors), sync-rows the digest's version-
	// vector rows (the O(store) term the log-shipping path eliminates),
	// ident the byte-identity shadow check against local recovery.
	for _, mode := range []string{sim.ShipModeDigest, sim.ShipModeTail, sim.ShipModeSnapshot} {
		odir, err := os.MkdirTemp("", "p2prange-ship-o-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(odir)
		fdir, err := os.MkdirTemp("", "p2prange-ship-f-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(fdir)
		res, err := sim.RunShip(sim.ShipConfig{
			Base: lookups, Missed: shipMissed, Mode: mode,
			OwnerDir: odir, FollowerDir: fdir, Seed: p.Seed,
		})
		if err != nil {
			return nil, err
		}
		ident := "no"
		if res.Identical {
			ident = "yes"
		}
		rows := "-"
		if mode == sim.ShipModeDigest {
			rows = fmt.Sprintf("%d", res.DigestRows)
		}
		t.AddRow(
			"2", "0", "0", "ship-"+mode,
			"-", "-", "-", "-",
			fmt.Sprintf("%d", res.Held),
			"-", "-", "-",
			res.Elapsed.Round(10*time.Microsecond).String(),
			"-", "-", "-",
			fmt.Sprintf("%d", res.SyncRecords),
			rows,
			fmt.Sprintf("%.1f", float64(res.SyncBytes)/1024),
			ident,
		)
	}
	return t, nil
}
