package experiments

import (
	"fmt"

	"p2prange/internal/sim"
)

func init() {
	Register("churn", ChurnResilience)
}

// ChurnResilience measures lookup availability under abrupt peer crashes
// and a lossy network, with the failure handling this codebase adds —
// transport retries, suspect tracking, and successor-list rerouting —
// switched on and off. The paper evaluates static rings only; this
// ablation quantifies what fault tolerance buys once the churn its
// deployment setting implies (Section 6) is simulated.
func ChurnResilience(p Params) (*Table, error) {
	t := &Table{
		ID:      "churn",
		Title:   "Lookup availability under churn: fault tolerance on vs off",
		Columns: []string{"peers", "crashes", "drop%", "mode", "success%", "retries", "reroutes", "injected"},
	}
	n := p.ClusterN
	if n < 16 {
		n = 16
	}
	lookups := p.Queries
	if lookups <= 0 {
		lookups = 500
	}
	cfg := sim.ChurnConfig{
		N:       n,
		Lookups: lookups,
		Drop:    0.02,
		Seed:    p.Seed,
	}
	t.Notes = fmt.Sprintf("%d lookups, %d-peer ring, crashes spread across the run, identical seeds per mode", lookups, n)
	for _, ft := range []bool{true, false} {
		cfg.FaultTolerance = ft
		res, err := sim.RunChurn(cfg)
		if err != nil {
			return nil, err
		}
		mode := "off"
		if ft {
			mode = "retry+reroute"
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", n/8),
			fmt.Sprintf("%.0f", cfg.Drop*100),
			mode,
			fmt.Sprintf("%.1f", res.SuccessRate()),
			fmt.Sprintf("%d", res.Stats.Retries),
			fmt.Sprintf("%d", res.Stats.Rerouted),
			fmt.Sprintf("%d", res.Injected),
		)
	}
	return t, nil
}
