package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"p2prange/internal/can"
	"p2prange/internal/peer"
	"p2prange/internal/sim"
)

func init() {
	Register("dht", CompareDHTs)
}

// CompareDHTs routes the same LSH identifiers over the two DHTs the paper
// cites — Chord (its choice) and CAN — and compares mean lookup path
// lengths against their theoretical scaling (½·log2 N for Chord,
// (d/4)·N^(1/d) for CAN). The experiment justifies the paper's substrate
// choice quantitatively: for the ring sizes evaluated, Chord's
// logarithmic routing beats low-dimensional CAN.
func CompareDHTs(p Params) (*Table, error) {
	t := &Table{
		ID:      "dht",
		Title:   "Routing substrate comparison: Chord vs CAN on the same identifiers",
		Columns: []string{"peers", "chord", "0.5*log2(N)", "can d=2", "0.5*N^1/2", "can d=3", "0.75*N^1/3"},
		Notes:   fmt.Sprintf("%d identifier lookups per configuration, approx min-wise identifiers", p.Unique),
	}
	scheme, err := scaleScheme(p)
	if err != nil {
		return nil, err
	}
	w := sim.NewScaleWorkload(scheme, p.Unique, p.Seed)
	keys := make([]uint32, 0, len(w.IDs)*len(w.IDs[0]))
	for _, ids := range w.IDs {
		keys = append(keys, ids...)
	}

	for _, n := range p.Ns {
		row := []string{fmt.Sprintf("%d", n)}

		// Chord: route every key from random origins.
		cluster, err := sim.NewCluster(sim.ClusterConfig{
			N:    n,
			Peer: peer.Config{Scheme: scheme},
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(p.Seed + int64(n)))
		total := 0
		for _, key := range keys {
			hops, err := cluster.RouteOnly(cluster.RandomPeer(rng), key)
			if err != nil {
				return nil, err
			}
			total += hops
		}
		row = append(row,
			fmt.Sprintf("%.2f", float64(total)/float64(len(keys))),
			fmt.Sprintf("%.2f", 0.5*math.Log2(float64(n))))

		// CAN at d=2 and d=3 on the same keys.
		for _, d := range []int{2, 3} {
			net, err := can.New(d, n, p.Seed+int64(d))
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(p.Seed + int64(n*d)))
			total := 0
			for _, key := range keys {
				origin := net.Nodes()[rng.Intn(net.N())]
				_, hops, err := net.Lookup(origin, key)
				if err != nil {
					return nil, err
				}
				total += hops
			}
			theory := float64(d) / 4 * math.Pow(float64(n), 1/float64(d))
			row = append(row,
				fmt.Sprintf("%.2f", float64(total)/float64(len(keys))),
				fmt.Sprintf("%.2f", theory))
		}
		t.AddRow(row...)
	}
	return t, nil
}
