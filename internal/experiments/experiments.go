// Package experiments regenerates every table and figure of the paper's
// evaluation (Figs. 5-12) plus the ablations DESIGN.md calls out. Each
// driver returns a Table whose rows mirror the series the paper plots;
// cmd/rangebench prints them and bench_test.go wraps them in testing.B
// benchmarks.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Params scales an experiment run. The zero value plus FullDefaults()
// reproduces the paper's parameters; QuickDefaults() is a fast smoke
// configuration for tests.
type Params struct {
	// Seed drives all randomness (workloads, key material, peer choice).
	Seed int64
	// Queries is the quality-run workload size (paper: 10000).
	Queries int
	// ClusterN is the quality-run cluster size.
	ClusterN int
	// Unique is the number of unique partitions in scalability runs
	// (paper: 10000, stored under 5 identifiers each).
	Unique int
	// Ns is the ring-size sweep for Figs. 11(a)/12(a)
	// (paper: 100..5000).
	Ns []int
	// ScaleN is the fixed ring size of Figs. 11(b)/12(b) (paper: 1000).
	ScaleN int
	// StoredSweep is the Fig. 11(b) sweep of unique-partition counts.
	StoredSweep []int
	// TimingSizes is the Fig. 5 range-size sweep.
	TimingSizes []int
	// TimingReps is how many ranges are timed per size.
	TimingReps int
	// SigCache bounds each peer's signature cache in quality runs
	// (rangebench -sigcache); 0 disables caching, leaving only the
	// batched compiled evaluation.
	SigCache int
	// HashWorkers parallelizes signing across the k*l hash functions for
	// large ranges (rangebench -hashworkers); 0 or 1 keeps signing
	// serial, the deterministic-timing default for simulations.
	HashWorkers int
	// Workload names the query-distribution preset for quality runs
	// (rangebench -workload): "uniform" (default), "zipf", "clustered".
	Workload string
}

// FullDefaults returns the paper's parameters.
func FullDefaults() Params {
	return Params{
		Seed:        42,
		Queries:     10000,
		ClusterN:    64,
		Unique:      10000,
		Ns:          []int{100, 250, 500, 1000, 2000, 5000},
		ScaleN:      1000,
		StoredSweep: []int{7000, 14000, 21000, 28000, 36000},
		TimingSizes: []int{10, 50, 100, 200, 400, 600, 800, 1000, 1200, 1500},
		TimingReps:  5,
	}
}

// QuickDefaults returns a configuration small enough for unit tests while
// exercising every code path.
func QuickDefaults() Params {
	return Params{
		Seed:        42,
		Queries:     600,
		ClusterN:    16,
		Unique:      400,
		Ns:          []int{25, 50},
		ScaleN:      50,
		StoredSweep: []int{200, 400},
		TimingSizes: []int{10, 100},
		TimingReps:  2,
	}
}

// Table is one reproduced figure or table: a title, column headers, and
// formatted rows, with notes recording workload parameters.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Notes != "" {
		fmt.Fprintf(&b, "   %s\n", t.Notes)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteCSV renders the table as CSV (RFC 4180 via encoding/csv), with the
// id and title as a comment-style first record for traceability.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"# " + t.ID}, t.Title)); err != nil {
		return err
	}
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Driver runs one experiment.
type Driver func(Params) (*Table, error)

// registry maps experiment ids to drivers; Register is called from each
// figure file's init.
var registry = map[string]Driver{}

// Register installs a driver under id (e.g. "6a").
func Register(id string, d Driver) { registry[id] = d }

// Lookup returns the driver for id.
func Lookup(id string) (Driver, bool) {
	d, ok := registry[strings.TrimPrefix(strings.ToLower(id), "fig")]
	return d, ok
}

// IDs returns all registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
