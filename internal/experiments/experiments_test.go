package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// runQuick executes a registered experiment at quick scale.
func runQuick(t *testing.T, id string) *Table {
	t.Helper()
	d, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	table, err := d(QuickDefaults())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if table.ID == "" || table.Title == "" || len(table.Columns) == 0 || len(table.Rows) == 0 {
		t.Fatalf("%s: incomplete table %+v", id, table)
	}
	for _, row := range table.Rows {
		if len(row) != len(table.Columns) {
			t.Fatalf("%s: ragged row %v vs columns %v", id, row, table.Columns)
		}
	}
	return table
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"5", "6a", "6b", "7", "8", "9", "10", "11a", "11b", "12a", "12b",
		"kl", "peeridx", "workloads", "exact", "padding", "flood", "dht", "join", "capacity", "vnodes", "churn",
		"sig", "load",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
	// Lookup accepts the figN prefix form.
	if _, ok := Lookup("fig6a"); !ok {
		t.Error("fig-prefixed lookup failed")
	}
}

func cell(t *testing.T, table *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(table.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s row %d col %d: %v", table.ID, row, col, err)
	}
	return v
}

func TestFig5Shape(t *testing.T) {
	table := runQuick(t, "5")
	// Columns: size, linear, linear-batch, approx, approx-batch, min-wise,
	// min-wise-batch, speedup. Naive hash time must grow with range size,
	// the family ordering must hold at the largest size, and the batched
	// pipeline must beat the naive path for the expensive families.
	last := len(table.Rows) - 1
	linear, approx, minwise := cell(t, table, last, 1), cell(t, table, last, 3), cell(t, table, last, 5)
	if !(linear < approx && approx < minwise) {
		t.Errorf("family ordering violated: linear=%g approx=%g minwise=%g", linear, approx, minwise)
	}
	if first := cell(t, table, 0, 5); first >= minwise {
		t.Errorf("min-wise time did not grow with range size: %g -> %g", first, minwise)
	}
	if batch := cell(t, table, last, 6); batch >= minwise {
		t.Errorf("batched min-wise (%g) not faster than naive (%g)", batch, minwise)
	}
}

func TestSigPipelineShape(t *testing.T) {
	table := runQuick(t, "sig")
	// Rows: naive, batched, batched+cache. The pipeline must beat the
	// naive path, and the cached run must record cache activity (on the
	// padded workload, mostly extends) while never exceeding the batched
	// cold-path time by much.
	naive, batched, cached := cell(t, table, 0, 1), cell(t, table, 1, 1), cell(t, table, 2, 1)
	if batched >= naive {
		t.Errorf("batched total %gms >= naive %gms", batched, naive)
	}
	if cached >= naive {
		t.Errorf("cached total %gms >= naive %gms", cached, naive)
	}
	hits, extends := cell(t, table, 2, 3), cell(t, table, 2, 4)
	if hits+extends == 0 {
		t.Error("cached run recorded no hits or extends")
	}
	// Naive and batched rows never touch a cache.
	if c := cell(t, table, 1, 3) + cell(t, table, 1, 4) + cell(t, table, 1, 5); c != 0 {
		t.Errorf("cacheless batched row shows cache counters: %g", c)
	}
}

func TestFig6and7Histograms(t *testing.T) {
	for _, id := range []string{"6a", "6b", "7"} {
		table := runQuick(t, id)
		if len(table.Rows) != 10 {
			t.Errorf("%s: %d bins, want 10", id, len(table.Rows))
		}
		var sum float64
		for i := range table.Rows {
			sum += cell(t, table, i, 1)
		}
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("%s: histogram sums to %g%%", id, sum)
		}
	}
}

func TestFig7LinearIsExactOrNothing(t *testing.T) {
	table := runQuick(t, "7")
	// Linear permutations: mass concentrates in the bottom and top bins
	// (paper Fig. 7); mid bins are (near) empty.
	var mid float64
	for i := 2; i <= 7; i++ {
		mid += cell(t, table, i, 1)
	}
	if mid > 10 {
		t.Errorf("linear mid-bin mass = %g%%, want near 0", mid)
	}
}

func TestFig8SurvivalShape(t *testing.T) {
	table := runQuick(t, "8")
	// Each family column is non-decreasing as the threshold drops and
	// ends at 100%.
	for col := 1; col <= 3; col++ {
		prev := -1.0
		for rowIdx := range table.Rows {
			v := cell(t, table, rowIdx, col)
			if v < prev-1e-9 {
				t.Fatalf("col %d not monotone at row %d", col, rowIdx)
			}
			prev = v
		}
		if last := cell(t, table, len(table.Rows)-1, col); last != 100 {
			t.Errorf("col %d survival ends at %g", col, last)
		}
	}
}

func TestFig9ContainmentDominates(t *testing.T) {
	table := runQuick(t, "9")
	// At the fully-answered threshold, containment matching beats
	// Jaccard matching (the paper: ~35% -> ~60%).
	con, jac := cell(t, table, 0, 1), cell(t, table, 0, 2)
	if con <= jac {
		t.Errorf("containment %.1f%% <= jaccard %.1f%% at full recall", con, jac)
	}
}

func TestFig10PaddingRaisesFullRecall(t *testing.T) {
	table := runQuick(t, "10")
	padded, plain := cell(t, table, 0, 1), cell(t, table, 0, 2)
	if padded <= plain {
		t.Errorf("padding %.1f%% <= no padding %.1f%% at full recall", padded, plain)
	}
}

func TestFig11LoadShapes(t *testing.T) {
	a := runQuick(t, "11a")
	// Mean load decreases as peers increase.
	if m0, m1 := cell(t, a, 0, 1), cell(t, a, len(a.Rows)-1, 1); m1 >= m0 {
		t.Errorf("mean load did not fall with more peers: %g -> %g", m0, m1)
	}
	b := runQuick(t, "11b")
	// Mean load grows with stored partitions at fixed N.
	if m0, m1 := cell(t, b, 0, 1), cell(t, b, len(b.Rows)-1, 1); m1 <= m0 {
		t.Errorf("mean load did not grow with stored partitions: %g -> %g", m0, m1)
	}
	for _, table := range []*Table{a, b} {
		for i := range table.Rows {
			mean, p99 := cell(t, table, i, 1), cell(t, table, i, 3)
			if p99 < mean {
				t.Errorf("%s row %d: p99 %g < mean %g", table.ID, i, p99, mean)
			}
		}
	}
}

func TestFig12PathLengths(t *testing.T) {
	a := runQuick(t, "12a")
	// Mean grows with N and stays within [1, log2 N].
	prev := 0.0
	for i := range a.Rows {
		mean := cell(t, a, i, 1)
		if mean < prev {
			t.Errorf("mean path length fell as N grew")
		}
		prev = mean
	}
	b := runQuick(t, "12b")
	var sum float64
	for i := range b.Rows {
		sum += cell(t, b, i, 1)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("path PDF sums to %g", sum)
	}
}

func TestAblations(t *testing.T) {
	runQuick(t, "kl")
	runQuick(t, "peeridx")
	runQuick(t, "workloads")
	runQuick(t, "padding")
}

func TestBaselineExactShape(t *testing.T) {
	table := runQuick(t, "exact")
	// Exact-key caching matches (nearly) nothing on a ~0.2%-repetition
	// workload; LSH matches most queries.
	exact, lsh := cell(t, table, 0, 1), cell(t, table, 1, 1)
	if exact > 5 {
		t.Errorf("exact-key matched %.1f%%, want ≈ 0", exact)
	}
	if lsh < 30 {
		t.Errorf("LSH matched %.1f%%, want well above exact", lsh)
	}
}

func TestBaselineFloodShape(t *testing.T) {
	table := runQuick(t, "flood")
	// Rows: flood TTL=2, TTL=4, TTL=8, LSH+Chord. Flood messages grow
	// with TTL; full-network flooding costs far more than the DHT.
	m2 := cell(t, table, 0, 3)
	m8 := cell(t, table, 2, 3)
	dht := cell(t, table, 3, 3)
	if m8 < m2 {
		t.Errorf("flood messages fell with TTL: %g -> %g", m2, m8)
	}
	if dht >= m8 {
		t.Errorf("DHT messages (%g) should undercut whole-network flooding (%g)", dht, m8)
	}
}

func TestCompareDHTsShape(t *testing.T) {
	table := runQuick(t, "dht")
	for i := range table.Rows {
		chord := cell(t, table, i, 1)
		can2 := cell(t, table, i, 3)
		can3 := cell(t, table, i, 5)
		for _, v := range []float64{chord, can2, can3} {
			if v <= 0 || v > 50 {
				t.Fatalf("row %d: implausible mean path length %g", i, v)
			}
		}
	}
	// Both substrates' means grow with N.
	if len(table.Rows) >= 2 {
		if cell(t, table, 1, 1) < cell(t, table, 0, 1)-0.5 {
			t.Error("chord mean fell sharply as N grew")
		}
	}
}

func TestDistributedJoinShape(t *testing.T) {
	table := runQuick(t, "join")
	for i := range table.Rows {
		maxPeer := cell(t, table, i, 4)
		central := cell(t, table, i, 5)
		if maxPeer >= central {
			t.Errorf("row %d: distributed max-peer load %g >= centralized %g", i, maxPeer, central)
		}
		if pairs := cell(t, table, i, 1); pairs <= 0 {
			t.Errorf("row %d: no joined pairs", i)
		}
	}
}

func TestCapacityShape(t *testing.T) {
	table := runQuick(t, "capacity")
	// Stored totals fall as capacity shrinks; recall degrades gracefully.
	unbounded := cell(t, table, 0, 1)
	tightest := cell(t, table, len(table.Rows)-1, 1)
	if tightest >= unbounded {
		t.Errorf("bounded caches stored %g, unbounded %g", tightest, unbounded)
	}
	ubRecall := cell(t, table, 0, 3)
	tightRecall := cell(t, table, len(table.Rows)-1, 3)
	if tightRecall > ubRecall+1e-9 {
		t.Errorf("tighter cache beat unbounded recall: %g > %g", tightRecall, ubRecall)
	}
}

func TestVirtualNodesShape(t *testing.T) {
	table := runQuick(t, "vnodes")
	// The 1st percentile (emptiest physical peer) rises with more virtual
	// nodes — the tail-taming effect.
	first := cell(t, table, 0, 2)
	last := cell(t, table, len(table.Rows)-1, 2)
	if last < first {
		t.Errorf("p1 fell with more virtual nodes: %g -> %g", first, last)
	}
	// Mean is invariant (same descriptors, same physical peers).
	if m0, m3 := cell(t, table, 0, 1), cell(t, table, len(table.Rows)-1, 1); m0 != m3 {
		t.Errorf("mean changed with virtual nodes: %g vs %g", m0, m3)
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{
		ID: "x", Title: "T", Columns: []string{"a", "bb"},
		Notes: "note",
	}
	table.AddRow("1", "2")
	var sb strings.Builder
	if _, err := table.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{"== x: T ==", "note", "a", "bb"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendering missing %q:\n%s", frag, out)
		}
	}
}

func TestLoadFigShape(t *testing.T) {
	table := runQuick(t, "load")
	if len(table.Rows) != 3 {
		t.Fatalf("load has %d rows, want 3", len(table.Rows))
	}
	// Load-aware replication must cut the imbalance (max/mean, col 3)
	// versus the single-copy baseline and keep success (col 4) high.
	base, balanced := cell(t, table, 0, 3), cell(t, table, 2, 3)
	if balanced >= base {
		t.Errorf("load-aware imbalance %g not below baseline %g", balanced, base)
	}
	if s := cell(t, table, 2, 4); s < 99 {
		t.Errorf("load-aware success %g%%, want >= 99%%", s)
	}
}
