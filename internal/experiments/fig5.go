package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"p2prange/internal/minhash"
	"p2prange/internal/rangeset"
)

func init() {
	Register("5", Fig5)
}

// Fig5 reproduces Figure 5: average wall-clock time to hash a query range
// with all l x k = 100 hash functions, as a function of the range size,
// for the three families. The faithful per-bit permutations are timed (not
// the compiled byte-table form), since the figure measures exactly that
// per-element permutation cost. Absolute times are host-dependent; the
// reproduced shape is linear growth in range size and the family ordering
// linear << approximate min-wise < min-wise independent.
//
// Alongside each naive column the table reports the batched signature
// pipeline (minhash.Signer: compiled tables, single tiled pass over the
// range, optionally -hashworkers goroutines) on the same ranges — the
// production path every peer uses, byte-identical identifiers, so the
// pair quantifies exactly what the pipeline buys per family.
func Fig5(p Params) (*Table, error) {
	note := fmt.Sprintf("sizes %v, %d reps each; naive = uncompiled per-bit permutations, batch = signature pipeline",
		p.TimingSizes, p.TimingReps)
	if p.HashWorkers > 1 {
		note += fmt.Sprintf(", %d hash workers", p.HashWorkers)
	}
	t := &Table{
		ID:      "fig5",
		Title:   "Execution times for the hash function families (ms per range, 100 hash functions)",
		Columns: []string{"size", "linear", "linear-batch", "approx-min-wise", "approx-batch", "min-wise", "min-wise-batch", "min-wise-speedup"},
		Notes:   note,
	}
	rng := rand.New(rand.NewSource(p.Seed))
	schemes := make(map[minhash.Family]*minhash.Scheme)
	signers := make(map[minhash.Family]*minhash.Signer)
	for _, f := range minhash.Families() {
		s, err := minhash.NewDefaultScheme(f, rng)
		if err != nil {
			return nil, err
		}
		schemes[f] = s
		// No signature cache here: the figure times the cold hashing path,
		// and a cache would answer every rep after the first for free.
		signers[f] = minhash.NewSigner(s, minhash.WithWorkers(p.HashWorkers))
	}
	for _, size := range p.TimingSizes {
		row := []string{fmt.Sprintf("%d", size)}
		var naiveMinWise, batchMinWise float64
		for _, f := range []minhash.Family{minhash.Linear, minhash.ApproxMinWise, minhash.MinWise} {
			naive := timeHasher(schemes[f], int64(size), p.TimingReps, p.Seed)
			batch := timeHasher(signers[f], int64(size), p.TimingReps, p.Seed)
			row = append(row, fmt.Sprintf("%.4f", naive), fmt.Sprintf("%.4f", batch))
			if f == minhash.MinWise {
				naiveMinWise, batchMinWise = naive, batch
			}
		}
		speedup := "-"
		if batchMinWise > 0 {
			speedup = fmt.Sprintf("%.1fx", naiveMinWise/batchMinWise)
		}
		row = append(row, speedup)
		t.AddRow(row...)
	}
	return t, nil
}

// timeHasher measures the mean milliseconds to compute all identifiers of
// a range of the given size through h.
func timeHasher(h minhash.Hasher, size int64, reps int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed + size))
	var total time.Duration
	for i := 0; i < reps; i++ {
		lo := rng.Int63n(100000)
		q := rangeset.Range{Lo: lo, Hi: lo + size - 1}
		start := time.Now()
		_ = h.Identifiers(q)
		total += time.Since(start)
	}
	return float64(total.Microseconds()) / float64(reps) / 1000
}
