package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"p2prange/internal/minhash"
	"p2prange/internal/rangeset"
)

func init() {
	Register("5", Fig5)
}

// Fig5 reproduces Figure 5: average wall-clock time to hash a query range
// with all l x k = 100 hash functions, as a function of the range size,
// for the three families. The faithful per-bit permutations are timed (not
// the compiled byte-table form), since the figure measures exactly that
// per-element permutation cost. Absolute times are host-dependent; the
// reproduced shape is linear growth in range size and the family ordering
// linear << approximate min-wise < min-wise independent.
func Fig5(p Params) (*Table, error) {
	t := &Table{
		ID:      "fig5",
		Title:   "Execution times for the hash function families (ms per range, 100 hash functions)",
		Columns: []string{"size", "linear", "approx-min-wise", "min-wise"},
		Notes: fmt.Sprintf("sizes %v, %d reps each; naive (uncompiled) permutations",
			p.TimingSizes, p.TimingReps),
	}
	rng := rand.New(rand.NewSource(p.Seed))
	schemes := make(map[minhash.Family]*minhash.Scheme)
	for _, f := range minhash.Families() {
		s, err := minhash.NewDefaultScheme(f, rng)
		if err != nil {
			return nil, err
		}
		schemes[f] = s
	}
	for _, size := range p.TimingSizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, f := range []minhash.Family{minhash.Linear, minhash.ApproxMinWise, minhash.MinWise} {
			ms := timeScheme(schemes[f], int64(size), p.TimingReps, p.Seed)
			row = append(row, fmt.Sprintf("%.4f", ms))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// timeScheme measures the mean milliseconds to compute all identifiers of
// a range of the given size.
func timeScheme(s *minhash.Scheme, size int64, reps int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed + size))
	var total time.Duration
	for i := 0; i < reps; i++ {
		lo := rng.Int63n(100000)
		q := rangeset.Range{Lo: lo, Hi: lo + size - 1}
		start := time.Now()
		_ = s.Identifiers(q)
		total += time.Since(start)
	}
	return float64(total.Microseconds()) / float64(reps) / 1000
}
