package experiments

import (
	"fmt"
	"math/rand"

	"p2prange/internal/flood"
	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/sim"
	"p2prange/internal/store"
	"p2prange/internal/workload"
)

func init() {
	Register("flood", BaselineFlood)
}

// BaselineFlood compares the unstructured baseline (Gnutella-style
// flooding over a random overlay, caches local to their creator) against
// the paper's structured approach (LSH + Chord) on the same workload:
// match quality versus messages per query. Flooding with a large TTL sees
// everything but pays for it in messages; the DHT resolves l identifiers
// in l·O(log N) messages with comparable quality.
func BaselineFlood(p Params) (*Table, error) {
	t := &Table{
		ID:      "flood",
		Title:   "Unstructured flooding baseline vs LSH+Chord",
		Columns: []string{"system", "matched%", "full-recall%", "msgs/query"},
		Notes:   qualityNote(p, fmt.Sprintf("overlay degree 4, %d peers; containment matching", p.ClusterN*4)),
	}
	n := p.ClusterN * 4
	queries := p.Queries
	warmup := int(float64(queries) * workload.DefaultWarmupFrac)

	// Flooding runs at several TTLs.
	for _, ttl := range []int{2, 4, 8} {
		net, err := flood.New(flood.Config{N: n, Degree: 4, Seed: p.Seed})
		if err != nil {
			return nil, err
		}
		gen := workload.NewUniform(workload.DefaultDomainLo, workload.DefaultDomainHi, p.Seed)
		rng := rand.New(rand.NewSource(p.Seed + 1))
		measured, matched, full := 0, 0, 0
		totalMsgs := 0
		for i := 0; i < queries; i++ {
			q := gen.Next()
			origin := rng.Intn(n)
			res := net.Query(origin, "R", "a", q, store.MatchContainment, ttl)
			exact := res.Found && res.Match.Partition.Range == q
			if !exact {
				net.Cache(origin, store.Partition{Relation: "R", Attribute: "a", Range: q})
			}
			if i < warmup {
				continue
			}
			measured++
			totalMsgs += res.Messages
			if res.Found {
				matched++
				if q.Recall(res.Match.Partition.Range) >= 1 {
					full++
				}
			}
		}
		t.AddRow(
			fmt.Sprintf("flood TTL=%d", ttl),
			fmt.Sprintf("%.1f", 100*float64(matched)/float64(measured)),
			fmt.Sprintf("%.1f", 100*float64(full)/float64(measured)),
			fmt.Sprintf("%.0f", float64(totalMsgs)/float64(measured)),
		)
	}

	// The structured system on the same workload and peer count; message
	// cost is the chord hop count across the l probes (store traffic on a
	// miss adds l more messages, counted too).
	scheme, err := sim.Scheme(minhash.ApproxMinWise, p.Seed)
	if err != nil {
		return nil, err
	}
	cluster, err := sim.NewCluster(sim.ClusterConfig{
		N:    n,
		Peer: peer.Config{Scheme: scheme, Measure: store.MatchContainment},
	})
	if err != nil {
		return nil, err
	}
	gen := workload.NewUniform(workload.DefaultDomainLo, workload.DefaultDomainHi, p.Seed)
	rng := rand.New(rand.NewSource(p.Seed + 1))
	measured, matched, full := 0, 0, 0
	totalMsgs := 0
	for i := 0; i < queries; i++ {
		q := gen.Next()
		origin := cluster.RandomPeer(rng)
		lr, err := origin.Lookup("R", "a", q, true)
		if err != nil {
			return nil, err
		}
		if i < warmup {
			continue
		}
		measured++
		msgs := 0
		for _, h := range lr.Hops {
			msgs += h + 1 // routing hops plus the bucket probe
		}
		if lr.Stored {
			msgs += len(lr.Hops) // one store message per identifier owner
		}
		totalMsgs += msgs
		if lr.Found {
			matched++
			if q.Recall(lr.Match.Partition.Range) >= 1 {
				full++
			}
		}
	}
	t.AddRow(
		"LSH+Chord l=5",
		fmt.Sprintf("%.1f", 100*float64(matched)/float64(measured)),
		fmt.Sprintf("%.1f", 100*float64(full)/float64(measured)),
		fmt.Sprintf("%.0f", float64(totalMsgs)/float64(measured)),
	)
	return t, nil
}
