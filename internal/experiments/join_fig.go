package experiments

import (
	"fmt"

	"p2prange/internal/djoin"
	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/relation"
	"p2prange/internal/sim"
)

func init() {
	Register("join", DistributedJoin)
}

// DistributedJoin measures the Harren-et-al.-style DHT hash join against
// the centralized alternative (ship both relations to the coordinator):
// the distributed form spreads the join work over the ring — the metric
// is the maximum tuples any single peer must buffer — at the cost of
// protocol messages. As the ring grows, per-peer work shrinks while the
// centralized coordinator's stays constant.
func DistributedJoin(p Params) (*Table, error) {
	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients:   p.Queries / 10,
		Physicians: 20,
		Diagnoses:  p.Queries / 4,
		Seed:       p.Seed,
	})
	if err != nil {
		return nil, err
	}
	left, right := rels["Patient"], rels["Diagnosis"]
	total := left.Len() + right.Len()
	t := &Table{
		ID:      "join",
		Title:   "Distributed DHT hash join vs centralized join",
		Columns: []string{"peers", "pairs", "msgs", "owners-used", "max-peer-tuples", "centralized-peer-tuples"},
		Notes: fmt.Sprintf("Patient(%d) ⋈ Diagnosis(%d) on patient_id; centralized = both relations at one peer (%d tuples)",
			left.Len(), right.Len(), total),
	}
	scheme, err := sim.Scheme(minhash.ApproxMinWise, p.Seed)
	if err != nil {
		return nil, err
	}
	for _, n := range p.Ns {
		cluster, err := sim.NewCluster(sim.ClusterConfig{N: n, Peer: peer.Config{Scheme: scheme}})
		if err != nil {
			return nil, err
		}
		services := make([]*djoin.Service, n)
		for i, pr := range cluster.Peers {
			services[i] = djoin.NewService(pr)
		}
		// Count per-owner tuples by intercepting sessions after scatter.
		_, _, err = djoin.Scatter("x", djoin.Input{
			Holder: cluster.Peers[0], Rel: left, Key: "patient_id", Side: djoin.Left,
		})
		if err != nil {
			return nil, err
		}
		if _, _, err := djoin.Scatter("x", djoin.Input{
			Holder: cluster.Peers[1%n], Rel: right, Key: "patient_id", Side: djoin.Right,
		}); err != nil {
			return nil, err
		}
		owners, maxTuples := 0, 0
		for _, s := range services {
			if c := s.BufferedTuples("x"); c > 0 {
				owners++
				if c > maxTuples {
					maxTuples = c
				}
			}
		}
		for _, pr := range cluster.Peers {
			_, _ = pr.Handle(djoin.CleanupReq{Session: "x"})
		}
		// A fresh full run for the pair and message counts.
		res, err := djoin.Run(cluster.Peers[0], "y",
			djoin.Input{Holder: cluster.Peers[0], Rel: left, Key: "patient_id"},
			djoin.Input{Holder: cluster.Peers[1%n], Rel: right, Key: "patient_id"})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", res.Len()),
			fmt.Sprintf("%d", res.Messages),
			fmt.Sprintf("%d", owners),
			fmt.Sprintf("%d", maxTuples),
			fmt.Sprintf("%d", total),
		)
	}
	return t, nil
}
