package experiments

import (
	"fmt"

	"p2prange/internal/sim"
)

func init() {
	Register("load", LoadFig)
}

// LoadFig compares per-peer query load and availability under a
// Zipf-skewed workload with churn, across the replication ablation: the
// paper's single-copy placement, plain R=3 replication, and R=3 with
// load-aware replica selection plus hot-bucket promotion. The imbalance
// column (max/mean served probes) is the hot-partition pathology the
// replica subsystem exists to fix; Sec. 5 of the paper leaves balancing
// this load as future work.
func LoadFig(p Params) (*Table, error) {
	cfg := sim.LoadConfig{
		N:          p.ClusterN,
		Partitions: p.Queries / 10,
		Queries:    p.Queries,
		Crashes:    p.ClusterN / 8,
		Seed:       p.Seed,
	}
	rows := []struct {
		label     string
		replicas  int
		loadAware bool
	}{
		{"R=1 (paper)", 0, false},
		{"R=3", 2, false},
		{"R=3 load-aware", 2, true},
	}
	t := &Table{
		ID:      "load",
		Title:   "Peer load and availability under a Zipf workload with churn",
		Columns: []string{"placement", "max-load", "mean-load", "max/mean", "success%", "repaired"},
		Notes: fmt.Sprintf(
			"%d Zipf(s=1.2) queries over %d published ranges, %d peers, %d crashes; exact (l=1) scheme; load = bucket probes served",
			cfg.Queries, cfg.Partitions, cfg.N, cfg.Crashes),
	}
	for _, row := range rows {
		c := cfg
		c.Replicas = row.replicas
		c.LoadAware = row.loadAware
		res, err := sim.RunLoad(c)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", row.label, err)
		}
		t.AddRow(
			row.label,
			fmt.Sprintf("%d", res.Max),
			fmt.Sprintf("%.1f", res.Mean),
			fmt.Sprintf("%.2f", res.Imbalance()),
			fmt.Sprintf("%.2f", res.SuccessRate()),
			fmt.Sprintf("%d", res.Repaired),
		)
		// Surface the cluster rollup per ablation — the same aggregate
		// `rangetop -once -json` reports against a live cluster.
		t.Notes += fmt.Sprintf(
			"\n%s rollup: served-imbalance=%.2f hop-p95=%.1f sig-hit=%.0f%% repairs=%d sync-rounds=%d",
			row.label, res.Rollup.ServedImbalance, res.Rollup.HopP95,
			100*res.Rollup.SigHitRate, res.Rollup.ReplicaRepaired, res.Rollup.ReplicaSyncRounds)
	}
	return t, nil
}
