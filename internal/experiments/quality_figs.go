package experiments

import (
	"fmt"

	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/sim"
	"p2prange/internal/store"
	"p2prange/internal/workload"
)

func init() {
	Register("6a", Fig6a)
	Register("6b", Fig6b)
	Register("7", Fig7)
	Register("8", Fig8)
	Register("9", Fig9)
	Register("10", Fig10)
}

// runQuality builds a fresh cluster for family f and drives the standard
// quality workload through it.
func runQuality(p Params, f minhash.Family, measure store.Measure, padFrac float64) (*sim.QualityResult, error) {
	scheme, err := sim.Scheme(f, p.Seed)
	if err != nil {
		return nil, err
	}
	c, err := sim.NewCluster(sim.ClusterConfig{
		N: p.ClusterN,
		Peer: peer.Config{
			Scheme:      scheme,
			Measure:     measure,
			SigCache:    p.SigCache,
			HashWorkers: p.HashWorkers,
		},
	})
	if err != nil {
		return nil, err
	}
	gen, err := workload.Preset(p.Workload, p.Seed)
	if err != nil {
		return nil, err
	}
	return sim.RunQuality(c, sim.QualityConfig{
		Queries:  p.Queries,
		Seed:     p.Seed,
		PadFrac:  padFrac,
		Workload: gen,
	})
}

func qualityNote(p Params, extra string) string {
	w := p.Workload
	if w == "" {
		w = "uniform"
	}
	s := fmt.Sprintf("%d %s queries over [0,1000], k=%d l=%d, %d peers, first 20%% warm-up excluded",
		p.Queries, w, minhash.DefaultK, minhash.DefaultL, p.ClusterN)
	if extra != "" {
		s += "; " + extra
	}
	return s
}

// similarityTable renders a Figs. 6-7 style histogram.
func similarityTable(id, title string, p Params, f minhash.Family) (*Table, error) {
	res, err := runQuality(p, f, store.MatchJaccard, 0)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"similarity-bin", "% of queries"},
		Notes:   qualityNote(p, fmt.Sprintf("matched=%d/%d", res.Matched, res.Measured)),
	}
	for i := 0; i < res.Similarity.Bins(); i++ {
		t.AddRow(
			fmt.Sprintf("[%.1f,%.1f)", res.Similarity.BinStart(i), res.Similarity.BinStart(i)+0.1),
			fmt.Sprintf("%.2f", res.Similarity.Percent(i)),
		)
	}
	return t, nil
}

// Fig6a reproduces Figure 6(a): the similarity histogram of matched
// partitions under min-wise independent permutations.
func Fig6a(p Params) (*Table, error) {
	return similarityTable("fig6a", "Match similarity, min-wise independent permutations", p, minhash.MinWise)
}

// Fig6b reproduces Figure 6(b): the similarity histogram under the
// approximate (first-iteration) min-wise permutations.
func Fig6b(p Params) (*Table, error) {
	return similarityTable("fig6b", "Match similarity, approximate min-wise permutations", p, minhash.ApproxMinWise)
}

// Fig7 reproduces Figure 7: the similarity histogram under linear
// permutations.
func Fig7(p Params) (*Table, error) {
	return similarityTable("fig7", "Match similarity, linear permutations", p, minhash.Linear)
}

// recallColumns renders survival series ("part of query answered" from
// 1.0 down to 0.0) side by side.
func recallColumns(id, title, notes string, labels []string, results []*sim.QualityResult) *Table {
	t := &Table{ID: id, Title: title, Notes: notes}
	t.Columns = append([]string{"answered>="}, labels...)
	for x := 20; x >= 0; x-- {
		thr := float64(x) / 20
		row := []string{fmt.Sprintf("%.2f", thr)}
		for _, r := range results {
			row = append(row, fmt.Sprintf("%.2f", r.Recall.AtLeast(thr)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig8 reproduces Figure 8: recall (part of query answered) for the three
// hash families with Jaccard bucket matching.
func Fig8(p Params) (*Table, error) {
	var results []*sim.QualityResult
	labels := []string{"min-wise", "approx-min-wise", "linear"}
	for _, f := range []minhash.Family{minhash.MinWise, minhash.ApproxMinWise, minhash.Linear} {
		r, err := runQuality(p, f, store.MatchJaccard, 0)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return recallColumns("fig8", "Recall for the hash function families (% of queries answered >= x)",
		qualityNote(p, ""), labels, results), nil
}

// Fig9 reproduces Figure 9: recall under approximate min-wise hashing when
// the bucket match uses containment similarity versus Jaccard similarity.
func Fig9(p Params) (*Table, error) {
	jac, err := runQuality(p, minhash.ApproxMinWise, store.MatchJaccard, 0)
	if err != nil {
		return nil, err
	}
	con, err := runQuality(p, minhash.ApproxMinWise, store.MatchContainment, 0)
	if err != nil {
		return nil, err
	}
	return recallColumns("fig9", "Recall with containment vs Jaccard bucket matching (approx min-wise hashing)",
		qualityNote(p, ""), []string{"containment", "jaccard"},
		[]*sim.QualityResult{con, jac}), nil
}

// Fig10 reproduces Figure 10: recall with 20% query padding versus no
// padding, both with containment matching over approximate min-wise
// hashing; recall is always measured against the unpadded query.
func Fig10(p Params) (*Table, error) {
	padded, err := runQuality(p, minhash.ApproxMinWise, store.MatchContainment, 0.20)
	if err != nil {
		return nil, err
	}
	plain, err := runQuality(p, minhash.ApproxMinWise, store.MatchContainment, 0)
	if err != nil {
		return nil, err
	}
	return recallColumns("fig10", "Recall with 20% query padding (containment matching)",
		qualityNote(p, "padding expands each edge by 20% of range size, clamped to the domain"),
		[]string{"20%-padding", "no-padding"},
		[]*sim.QualityResult{padded, plain}), nil
}
