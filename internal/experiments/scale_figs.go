package experiments

import (
	"fmt"
	"math"

	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/sim"
)

func init() {
	Register("11a", Fig11a)
	Register("11b", Fig11b)
	Register("12a", Fig12a)
	Register("12b", Fig12b)
}

// scaleScheme builds the scalability-run scheme: the paper's modified
// Chord simulator hashes range sets to 5 identifiers with approximate
// min-wise permutations.
func scaleScheme(p Params) (*minhash.Scheme, error) {
	return sim.Scheme(minhash.ApproxMinWise, p.Seed)
}

func runScaleAt(p Params, n int, w *sim.ScaleWorkload, scheme *minhash.Scheme) (*sim.ScaleResult, error) {
	return sim.RunScale(sim.ClusterConfig{
		N:    n,
		Peer: peer.Config{Scheme: scheme},
	}, w, p.Seed+int64(n))
}

// Fig11a reproduces Figure 11(a): mean and 1st/99th percentile of stored
// partitions per node while the ring grows, with the stored-descriptor
// count fixed (10,000 unique partitions x 5 identifiers = 50,000).
func Fig11a(p Params) (*Table, error) {
	scheme, err := scaleScheme(p)
	if err != nil {
		return nil, err
	}
	w := sim.NewScaleWorkload(scheme, p.Unique, p.Seed)
	t := &Table{
		ID:      "fig11a",
		Title:   "Load distribution vs number of peers",
		Columns: []string{"peers", "mean", "p1", "p99", "max"},
		Notes: fmt.Sprintf("%d unique partitions x %d identifiers = %d stored descriptors",
			p.Unique, minhash.DefaultL, w.Stored()),
	}
	for _, n := range p.Ns {
		res, err := runScaleAt(p, n, w, scheme)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", res.Load.Mean),
			fmt.Sprintf("%.0f", res.Load.P1),
			fmt.Sprintf("%.0f", res.Load.P99),
			fmt.Sprintf("%d", res.Load.Max),
		)
	}
	return t, nil
}

// Fig11b reproduces Figure 11(b): load distribution in a fixed-size ring
// while the number of stored partitions grows (paper: 1000 nodes,
// 35,000-180,000 stored).
func Fig11b(p Params) (*Table, error) {
	scheme, err := scaleScheme(p)
	if err != nil {
		return nil, err
	}
	maxUnique := 0
	for _, u := range p.StoredSweep {
		if u > maxUnique {
			maxUnique = u
		}
	}
	w := sim.NewScaleWorkload(scheme, maxUnique, p.Seed)
	t := &Table{
		ID:      "fig11b",
		Title:   fmt.Sprintf("Load distribution in a %d-node system vs stored partitions", p.ScaleN),
		Columns: []string{"stored", "mean", "p1", "p99", "max"},
		Notes:   fmt.Sprintf("unique-partition sweep %v, x%d identifiers each", p.StoredSweep, minhash.DefaultL),
	}
	for _, u := range p.StoredSweep {
		res, err := runScaleAt(p, p.ScaleN, w.Truncate(u), scheme)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", res.Stored),
			fmt.Sprintf("%.1f", res.Load.Mean),
			fmt.Sprintf("%.0f", res.Load.P1),
			fmt.Sprintf("%.0f", res.Load.P99),
			fmt.Sprintf("%d", res.Load.Max),
		)
	}
	return t, nil
}

// Fig12a reproduces Figure 12(a): mean and 1st/99th percentile lookup
// path length as the ring grows, with ½·log2(N) for reference.
func Fig12a(p Params) (*Table, error) {
	scheme, err := scaleScheme(p)
	if err != nil {
		return nil, err
	}
	w := sim.NewScaleWorkload(scheme, p.Unique, p.Seed)
	t := &Table{
		ID:      "fig12a",
		Title:   "Lookup path length vs number of peers",
		Columns: []string{"peers", "mean", "p1", "p99", "0.5*log2(N)"},
		Notes:   fmt.Sprintf("path lengths over %d find operations x %d identifiers", p.Unique, minhash.DefaultL),
	}
	for _, n := range p.Ns {
		res, err := runScaleAt(p, n, w, scheme)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", res.PathLength.Mean()),
			fmt.Sprintf("%d", res.PathLength.Percentile(1)),
			fmt.Sprintf("%d", res.PathLength.Percentile(99)),
			fmt.Sprintf("%.2f", 0.5*math.Log2(float64(n))),
		)
	}
	return t, nil
}

// Fig12b reproduces Figure 12(b): the probability distribution of lookup
// path lengths in a fixed-size ring (paper: 1000 nodes).
func Fig12b(p Params) (*Table, error) {
	scheme, err := scaleScheme(p)
	if err != nil {
		return nil, err
	}
	w := sim.NewScaleWorkload(scheme, p.Unique, p.Seed)
	res, err := runScaleAt(p, p.ScaleN, w, scheme)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig12b",
		Title:   fmt.Sprintf("PDF of lookup path length in a %d-node network", p.ScaleN),
		Columns: []string{"path-length", "probability"},
		Notes:   fmt.Sprintf("%d find operations; mean %.2f", res.PathLength.N(), res.PathLength.Mean()),
	}
	for v := 0; v <= res.PathLength.Max(); v++ {
		t.AddRow(fmt.Sprintf("%d", v), fmt.Sprintf("%.4f", res.PathLength.P(v)))
	}
	return t, nil
}
