package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"p2prange/internal/metrics"
	"p2prange/internal/minhash"
	"p2prange/internal/rangeset"
	"p2prange/internal/workload"
)

func init() {
	Register("sig", SigPipeline)
}

// SigPipeline measures what the signature pipeline buys on the paper's
// own query workload (Sec. 5.1 uniform ranges, hashed unpadded and with
// the Fig. 10 20% pad — the padded probe contains the query range, which
// is exactly the shape incremental extension exploits). Three
// configurations hash the identical stream: the naive per-permutation
// path, the batched pipeline, and the batched pipeline with a signature
// cache (rangebench -sigcache, default 256 here when unset). Identifiers
// are byte-identical across all three; only the time changes.
func SigPipeline(p Params) (*Table, error) {
	queries := p.Queries
	if queries > 2000 {
		queries = 2000 // hashing-only: enough for stable means
	}
	capacity := p.SigCache
	if capacity <= 0 {
		capacity = 256
	}
	// The naive row times the uncompiled per-permutation path; both
	// pipeline rows derive from the same key material, so identifiers
	// agree byte for byte.
	naive, err := minhash.NewDefaultScheme(minhash.ApproxMinWise, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, err
	}
	// One deterministic stream of (query, padded-probe) pairs, replayed
	// identically for every configuration.
	gen := workload.NewUniform(workload.DefaultDomainLo, workload.DefaultDomainHi, p.Seed)
	type probe struct{ q, padded rangeset.Range }
	probes := make([]probe, queries)
	for i := range probes {
		q := gen.Next()
		probes[i] = probe{q: q, padded: q.Pad(0.20, workload.DefaultDomainLo, workload.DefaultDomainHi)}
	}

	run := func(h minhash.Hasher) float64 {
		start := time.Now()
		for _, pr := range probes {
			_ = h.Identifiers(pr.q)
			_ = h.Identifiers(pr.padded)
		}
		return float64(time.Since(start).Microseconds()) / 1000
	}

	stats := &metrics.SigStats{}
	configs := []struct {
		name string
		h    minhash.Hasher
	}{
		{"naive", naive},
		{"batched", minhash.NewSigner(naive, minhash.WithWorkers(p.HashWorkers))},
		{fmt.Sprintf("batched+cache(%d)", capacity), minhash.NewSigner(naive,
			minhash.WithWorkers(p.HashWorkers),
			minhash.WithSigCache(capacity),
			minhash.WithSigStats(stats))},
	}

	t := &Table{
		ID:      "sig",
		Title:   "Signature pipeline on the padded query workload (approx min-wise, k=20 l=5)",
		Columns: []string{"path", "total-ms", "ms-per-probe", "hits", "extends", "misses", "hit-rate"},
		Notes: fmt.Sprintf("%d queries x (unpadded + 20%% padded probe), uniform over [%d,%d]; identifiers identical on every path",
			queries, workload.DefaultDomainLo, workload.DefaultDomainHi),
	}
	for _, c := range configs {
		ms := run(c.h)
		snap := metrics.SigSnapshot{}
		if sg, ok := c.h.(*minhash.Signer); ok {
			snap = sg.SigStats()
		}
		t.AddRow(c.name,
			fmt.Sprintf("%.2f", ms),
			fmt.Sprintf("%.4f", ms/float64(2*queries)),
			fmt.Sprintf("%d", snap.Hits),
			fmt.Sprintf("%d", snap.Extends),
			fmt.Sprintf("%d", snap.Misses),
			fmt.Sprintf("%.1f%%", snap.HitRate()))
	}
	return t, nil
}
