package experiments

import (
	"fmt"

	"p2prange/internal/metrics"
	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/sim"
)

func init() {
	Register("vnodes", AblationVirtualNodes)
}

// AblationVirtualNodes measures the Chord paper's remedy for the heavy
// load tail Fig. 11 shows: each physical peer hosts v virtual ring
// positions, so its total arc length concentrates toward the mean. The
// simulation places N·v ring nodes and aggregates stored descriptors per
// physical peer; p99/mean shrinking toward 1 as v grows is the expected
// shape.
func AblationVirtualNodes(p Params) (*Table, error) {
	t := &Table{
		ID:      "vnodes",
		Title:   "Virtual nodes vs load-distribution tail",
		Columns: []string{"vnodes/peer", "mean", "p1", "p99", "p99/mean"},
		Notes: fmt.Sprintf("%d physical peers, %d unique partitions x %d identifiers",
			p.ClusterN*4, p.Unique, minhash.DefaultL),
	}
	physical := p.ClusterN * 4
	scheme, err := scaleScheme(p)
	if err != nil {
		return nil, err
	}
	w := sim.NewScaleWorkload(scheme, p.Unique, p.Seed)
	for _, v := range []int{1, 2, 4, 8} {
		cluster, err := sim.NewCluster(sim.ClusterConfig{
			N:    physical * v,
			Peer: peer.Config{Scheme: scheme},
		})
		if err != nil {
			return nil, err
		}
		if err := cluster.StoreWorkload(w, p.Seed+int64(v)); err != nil {
			return nil, err
		}
		loads := cluster.Loads()
		agg := make([]int, physical)
		for i, l := range loads {
			agg[i%physical] += l
		}
		s := metrics.SummarizeLoad(agg)
		ratio := 0.0
		if s.Mean > 0 {
			ratio = s.P99 / s.Mean
		}
		t.AddRow(
			fmt.Sprintf("%d", v),
			fmt.Sprintf("%.1f", s.Mean),
			fmt.Sprintf("%.0f", s.P1),
			fmt.Sprintf("%.0f", s.P99),
			fmt.Sprintf("%.2f", ratio),
		)
	}
	return t, nil
}
