// Package flight is the always-on flight recorder: every query run by a
// live peer gets a real root span (the same trace.Span tree `-trace`
// builds, including serve spans grafted back from remote peers), and
// when the query finishes, a tail-based keep policy decides whether the
// tree is interesting enough to pin. "Interesting" is decided *after*
// the fact — slow (over a configurable threshold, or among the top-K by
// duration), errored, or hop-heavy — which is the property head-based
// sampling cannot have: the recorder never throws away the one query the
// operator will ask about, because it decides with the outcome in hand.
//
// Costs are bounded by construction. A disabled recorder is a nil
// *Recorder: every method no-ops, callers guard name formatting behind
// On(), and the per-query cost is exactly the nil-span fast path the
// trace layer already pins at 0 allocs/op (BenchmarkFlightOff). An
// enabled recorder allocates the span tree the query builds anyway plus
// one Entry, and retention is pointer-moves into fixed-size rings — no
// tree is ever copied, kept or not (BenchmarkFlightRecord pins the
// amortized bound). Memory is ring sizes × tree size, with tree size
// itself capped by trace.MaxSpanItems/MaxTraceSpans.
package flight

import (
	"strconv"
	"sync"
	"time"

	"p2prange/internal/trace"
)

// Defaults for Config's zero values.
const (
	// DefaultSlowThreshold promotes a finished query into the slow ring.
	// 25ms is in "a human notices" territory for an interactive lookup
	// while being far above a healthy loopback protocol run, so an
	// unconfigured peerd keeps genuinely bad queries, not noise.
	DefaultSlowThreshold = 25 * time.Millisecond
	// DefaultHopThreshold promotes hop-heavy queries: the paper's l
	// probes each route in O(log N) hops, so a total this high means
	// routing detoured hard (churn, suspects) or the ring degenerated.
	DefaultHopThreshold = 16
	// DefaultKeep is the pinned capacity of each retention ring.
	DefaultKeep = 32
	// DefaultRecent is the capacity of the everything ring.
	DefaultRecent = 128
)

// Entry kinds: what the recorded root span was doing.
const (
	KindLookup  = "lookup"
	KindQuery   = "query"
	KindPublish = "publish"
	KindServe   = "serve"
)

// Config parameterizes a Recorder. Zero values take the defaults above.
type Config struct {
	// SlowThreshold is the duration at which a finished query is kept in
	// the slow ring.
	SlowThreshold time.Duration
	// HopThreshold is the total chord hop count at which a query is kept
	// in the hop-heavy ring.
	HopThreshold int
	// Keep is the capacity of each pinned retention ring (slow, top,
	// errored, hop-heavy).
	Keep int
	// Recent is the capacity of the most-recent ring.
	Recent int
	// Exemplar, when set, is called once per finished query with its
	// kind, duration in microseconds, and trace ID — the hook the metrics
	// layer uses to attach trace-ID exemplars to latency histogram
	// buckets (kind lets it route lookups and serves to different
	// histograms).
	Exemplar func(kind string, durUS, traceID uint64)
}

// Entry is one finished, recorded query.
type Entry struct {
	// Seq orders entries by finish time (1 = first finished).
	Seq uint64
	// Kind classifies the root: "lookup", "query" (SQL), "publish", or
	// "serve" (a request this peer answered for another peer).
	Kind string
	// Name is the root span's name.
	Name string
	// TraceID correlates the entry with exemplars and remote fragments.
	TraceID uint64
	// Start and Dur frame the query in time.
	Start time.Time
	Dur   time.Duration
	// Hops is the total chord hop count (-1 when not applicable).
	Hops int
	// Err is the failure, "" on success.
	Err string
	// Kept lists the retention reasons ("slow", "top", "error", "hops");
	// empty for entries only in the recent ring.
	Kept []string
	// Root is the retained span tree — shared with the rings, never
	// copied. Render with Root.Tree.
	Root *trace.Span
}

// ring is a fixed-capacity overwrite buffer of entries.
type ring struct {
	buf  []*Entry
	next int
	n    uint64 // total pushes
}

func (r *ring) push(e *Entry) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	r.n++
}

// entries returns the ring's contents, newest first.
func (r *ring) entries() []*Entry {
	out := make([]*Entry, 0, len(r.buf))
	for i := 1; i <= len(r.buf); i++ {
		e := r.buf[(r.next-i+len(r.buf))%len(r.buf)]
		if e == nil {
			break
		}
		out = append(out, e)
	}
	return out
}

// Recorder retains finished query traces. A nil *Recorder is the
// disabled recorder: every method no-ops.
type Recorder struct {
	cfg Config

	mu       sync.Mutex
	seq      uint64
	recent   ring
	slow     ring
	errored  ring
	hopheavy ring
	top      []*Entry // the Keep slowest since boot, unordered
}

// New builds a Recorder, applying defaults for zero Config fields.
func New(cfg Config) *Recorder {
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.HopThreshold <= 0 {
		cfg.HopThreshold = DefaultHopThreshold
	}
	if cfg.Keep <= 0 {
		cfg.Keep = DefaultKeep
	}
	if cfg.Recent <= 0 {
		cfg.Recent = DefaultRecent
	}
	return &Recorder{
		cfg:      cfg,
		recent:   ring{buf: make([]*Entry, cfg.Recent)},
		slow:     ring{buf: make([]*Entry, cfg.Keep)},
		errored:  ring{buf: make([]*Entry, cfg.Keep)},
		hopheavy: ring{buf: make([]*Entry, cfg.Keep)},
		top:      make([]*Entry, 0, cfg.Keep),
	}
}

// On reports whether recording is enabled. Guard root-span name
// formatting behind it, exactly like trace.Span.On.
func (r *Recorder) On() bool { return r != nil }

// SlowThreshold returns the configured slow cutoff (0 when disabled).
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.cfg.SlowThreshold
}

// Start opens an always-sampled root span for a query. It returns nil
// when recording is off, so the query runs on the nil-span fast path.
// The caller must format name only after checking On().
func (r *Recorder) Start(name string) *trace.Span {
	if r == nil {
		return nil
	}
	return trace.New(name)
}

// Finish records a completed query: ends sp if the caller has not,
// classifies the outcome, and applies the keep policy. hops is the
// total chord hop count (pass -1 when the query has no hop notion,
// e.g. SQL or serve-side work). Nil recorder or nil span no-op.
func (r *Recorder) Finish(kind string, sp *trace.Span, hops int, err error) {
	if r == nil || sp == nil {
		return
	}
	sp.End()
	r.record(kind, sp, sp.Duration(), hops, err)
}

// record applies the keep policy under the lock. Split from Finish so
// tests can drive it with synthetic durations: the policy itself must be
// deterministic — given a set of finished queries, the kept *set* is a
// pure function of their durations/errors/hops, regardless of the
// interleaving of concurrent finishers.
func (r *Recorder) record(kind string, sp *trace.Span, dur time.Duration, hops int, err error) {
	e := &Entry{
		Kind:    kind,
		Name:    sp.Name(),
		TraceID: sp.TraceID(),
		Dur:     dur,
		Hops:    hops,
	}
	e.Start = time.Now().Add(-dur)
	e.Root = sp
	if err != nil {
		e.Err = err.Error()
	}

	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	r.recent.push(e)
	if e.Err != "" {
		e.Kept = append(e.Kept, "error")
		r.errored.push(e)
	}
	if dur >= r.cfg.SlowThreshold {
		e.Kept = append(e.Kept, "slow")
		r.slow.push(e)
	}
	if hops >= r.cfg.HopThreshold {
		e.Kept = append(e.Kept, "hops")
		r.hopheavy.push(e)
	}
	// Top-K by duration since boot: replace the current minimum when the
	// new entry beats it. Ties keep the incumbent, so with distinct
	// durations the surviving set is exactly the K largest no matter how
	// concurrent finishers interleave.
	if len(r.top) < cap(r.top) {
		e.Kept = append(e.Kept, "top")
		r.top = append(r.top, e)
	} else if len(r.top) > 0 {
		min := 0
		for i, t := range r.top {
			if t.Dur < r.top[min].Dur {
				min = i
			}
		}
		if r.top[min].Dur < dur {
			e.Kept = append(e.Kept, "top")
			r.top[min] = e
		}
	}
	r.mu.Unlock()

	if r.cfg.Exemplar != nil {
		us := dur.Microseconds()
		if us < 0 {
			us = 0
		}
		r.cfg.Exemplar(kind, uint64(us), e.TraceID)
	}
}

// Ring names accepted by Entries and the /debug/flight surface.
const (
	RingRecent   = "recent"
	RingSlow     = "slow"
	RingErrored  = "errored"
	RingHopHeavy = "hops"
	RingTop      = "top"
)

// Rings lists every ring name, in display order.
func Rings() []string {
	return []string{RingSlow, RingTop, RingErrored, RingHopHeavy, RingRecent}
}

// Entries snapshots one ring, newest first ("top" is ordered slowest
// first instead — it has no recency notion). Unknown names and a nil
// recorder return nil. The returned entries share the retained trees;
// treat them as read-only.
func (r *Recorder) Entries(ring string) []*Entry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch ring {
	case RingRecent:
		return r.recent.entries()
	case RingSlow:
		return r.slow.entries()
	case RingErrored:
		return r.errored.entries()
	case RingHopHeavy:
		return r.hopheavy.entries()
	case RingTop:
		out := append([]*Entry(nil), r.top...)
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j].Dur > out[j-1].Dur; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out
	}
	return nil
}

// Stats is the recorder's rollup for /status.
type Stats struct {
	Finished     uint64 `json:"finished"`
	KeptSlow     uint64 `json:"kept_slow"`
	KeptErrored  uint64 `json:"kept_errored"`
	KeptHopHeavy uint64 `json:"kept_hop_heavy"`

	SlowThresholdUS int64 `json:"slow_threshold_us"`
	HopThreshold    int   `json:"hop_threshold"`

	// Worst* describe the slowest entry still in the recent ring — the
	// "worst recent query" rangetop shows per peer.
	WorstUS      int64  `json:"worst_us,omitempty"`
	WorstName    string `json:"worst_name,omitempty"`
	WorstTraceID string `json:"worst_trace_id,omitempty"`
}

// Stats snapshots the recorder's counters.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Finished:        r.seq,
		KeptSlow:        r.slow.n,
		KeptErrored:     r.errored.n,
		KeptHopHeavy:    r.hopheavy.n,
		SlowThresholdUS: r.cfg.SlowThreshold.Microseconds(),
		HopThreshold:    r.cfg.HopThreshold,
	}
	for _, e := range r.recent.buf {
		if e != nil && e.Dur.Microseconds() > s.WorstUS {
			s.WorstUS = e.Dur.Microseconds()
			s.WorstName = e.Name
			s.WorstTraceID = TraceIDString(e.TraceID)
		}
	}
	return s
}

// TraceIDString formats a trace ID the way exemplars and the /debug
// surfaces print it.
func TraceIDString(id uint64) string {
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// View is an Entry in JSON-renderable form, tree included.
type View struct {
	Seq     uint64    `json:"seq"`
	Kind    string    `json:"kind"`
	Name    string    `json:"name"`
	TraceID string    `json:"trace_id"`
	Start   time.Time `json:"start"`
	DurUS   int64     `json:"dur_us"`
	Dur     string    `json:"dur"`
	Hops    int       `json:"hops,omitempty"`
	Err     string    `json:"err,omitempty"`
	Kept    []string  `json:"kept,omitempty"`
	Tree    string    `json:"tree,omitempty"`
}

// RenderView converts an entry for the JSON surfaces, rendering the
// span tree (with timings) when withTree is set.
func RenderView(e *Entry, withTree bool) View {
	v := View{
		Seq:     e.Seq,
		Kind:    e.Kind,
		Name:    e.Name,
		TraceID: TraceIDString(e.TraceID),
		Start:   e.Start,
		DurUS:   e.Dur.Microseconds(),
		Dur:     e.Dur.Round(time.Microsecond).String(),
		Hops:    e.Hops,
		Err:     e.Err,
		Kept:    e.Kept,
	}
	if withTree {
		v.Tree = e.Root.Tree(true)
	}
	return v
}

// String summarizes an entry in one line (rangeql \slow, log dumps).
func (e *Entry) String() string {
	s := "#" + strconv.FormatUint(e.Seq, 10) + " " + e.Dur.Round(time.Microsecond).String() + " " + e.Name
	if e.Err != "" {
		s += " err=" + e.Err
	}
	return s
}
