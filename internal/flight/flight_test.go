package flight

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"p2prange/internal/trace"
)

// finish drives the keep policy with a synthetic duration.
func finish(r *Recorder, name string, dur time.Duration, hops int, err error) {
	sp := trace.New(name)
	sp.End()
	r.record("lookup", sp, dur, hops, err)
}

func names(entries []*Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

func TestKeepPolicy(t *testing.T) {
	r := New(Config{SlowThreshold: 10 * time.Millisecond, HopThreshold: 8, Keep: 2, Recent: 4})
	finish(r, "fast", 1*time.Millisecond, 2, nil)
	finish(r, "slow-a", 15*time.Millisecond, 2, nil)
	finish(r, "erroring", 2*time.Millisecond, 2, errors.New("boom"))
	finish(r, "hoppy", 3*time.Millisecond, 12, nil)
	finish(r, "slow-b", 40*time.Millisecond, 2, nil)
	finish(r, "slow-c", 20*time.Millisecond, 2, nil)

	if got := names(r.Entries(RingSlow)); len(got) != 2 || got[0] != "slow-c" || got[1] != "slow-b" {
		t.Errorf("slow ring = %v, want [slow-c slow-b]", got)
	}
	if got := names(r.Entries(RingErrored)); len(got) != 1 || got[0] != "erroring" {
		t.Errorf("errored ring = %v, want [erroring]", got)
	}
	if got := names(r.Entries(RingHopHeavy)); len(got) != 1 || got[0] != "hoppy" {
		t.Errorf("hop-heavy ring = %v, want [hoppy]", got)
	}
	// Top-2 by duration across everything: slow-b (40ms), slow-c (20ms).
	if got := names(r.Entries(RingTop)); len(got) != 2 || got[0] != "slow-b" || got[1] != "slow-c" {
		t.Errorf("top ring = %v, want [slow-b slow-c]", got)
	}
	// Recent holds the last 4, newest first.
	if got := names(r.Entries(RingRecent)); len(got) != 4 || got[0] != "slow-c" || got[3] != "erroring" {
		t.Errorf("recent ring = %v", got)
	}

	st := r.Stats()
	if st.Finished != 6 || st.KeptSlow != 3 || st.KeptErrored != 1 || st.KeptHopHeavy != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.WorstName != "slow-b" || st.WorstUS != 40_000 {
		t.Errorf("worst = %s (%dus), want slow-b 40000us", st.WorstName, st.WorstUS)
	}
}

func TestKeepReasons(t *testing.T) {
	r := New(Config{SlowThreshold: 10 * time.Millisecond, HopThreshold: 8, Keep: 4, Recent: 4})
	finish(r, "everything", 20*time.Millisecond, 9, errors.New("boom"))
	e := r.Entries(RingSlow)[0]
	want := map[string]bool{"error": true, "slow": true, "hops": true, "top": true}
	if len(e.Kept) != len(want) {
		t.Fatalf("kept reasons = %v, want %v", e.Kept, want)
	}
	for _, k := range e.Kept {
		if !want[k] {
			t.Errorf("unexpected keep reason %q", k)
		}
	}
}

// TestKeepPolicyDeterministicConcurrent pins the tail-sampling
// determinism contract under -race: with distinct durations, the top-K
// set is exactly the K slowest no matter how concurrent finishers
// interleave, and every over-threshold query is retained.
func TestKeepPolicyDeterministicConcurrent(t *testing.T) {
	const n, keep = 64, 8
	r := New(Config{SlowThreshold: time.Duration(n-keep+1) * time.Millisecond, Keep: keep, Recent: n})
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			finish(r, fmt.Sprintf("q%03d", i), time.Duration(i)*time.Millisecond, 1, nil)
		}(i)
	}
	wg.Wait()

	top := r.Entries(RingTop)
	if len(top) != keep {
		t.Fatalf("top ring has %d entries, want %d", len(top), keep)
	}
	seen := map[string]bool{}
	for _, e := range top {
		seen[e.Name] = true
	}
	for i := n - keep + 1; i <= n; i++ {
		if name := fmt.Sprintf("q%03d", i); !seen[name] {
			t.Errorf("top ring lost %s (kept %v)", name, names(top))
		}
	}
	// The slow ring saw exactly the same K queries (threshold = n-keep+1 ms).
	if got := r.Stats().KeptSlow; got != keep {
		t.Errorf("kept %d slow queries, want %d", got, keep)
	}
}

func TestExemplarHook(t *testing.T) {
	var gotKind string
	var gotUS, gotID uint64
	r := New(Config{Exemplar: func(kind string, us, id uint64) { gotKind, gotUS, gotID = kind, us, id }})
	sp := trace.New("q")
	sp.End()
	r.record("lookup", sp, 5*time.Millisecond, 1, nil)
	if gotUS != 5000 {
		t.Errorf("exemplar us = %d, want 5000", gotUS)
	}
	if gotID != sp.TraceID() {
		t.Errorf("exemplar trace id = %d, want %d", gotID, sp.TraceID())
	}
	if gotKind != KindLookup {
		t.Errorf("exemplar kind = %q, want %q", gotKind, KindLookup)
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if r.On() {
		t.Fatal("nil recorder reports On")
	}
	if sp := r.Start("x"); sp != nil {
		t.Fatal("nil recorder started a span")
	}
	r.Finish("lookup", nil, 0, nil) // must not panic
	if r.Entries(RingSlow) != nil || r.Stats().Finished != 0 {
		t.Fatal("nil recorder retained something")
	}
}

func TestTraceIDString(t *testing.T) {
	if got := TraceIDString(0xab); got != "00000000000000ab" {
		t.Errorf("TraceIDString(0xab) = %q", got)
	}
}

// BenchmarkFlightOff pins the disabled recorder's contract: the
// per-query cost with recording off is the nil guard alone — no name
// formatting, no allocation. make benchguard asserts 0 allocs/op.
func BenchmarkFlightOff(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sp *trace.Span
		if r.On() {
			sp = r.Start(fmt.Sprintf("lookup %d", i))
		}
		r.Finish("lookup", sp, 1, nil)
	}
}

// BenchmarkFlightRecord is the recorder-on cost per query: one root
// span with a child and an event (a miniature protocol run), finished
// into the rings. Retention is pointer moves into preallocated rings,
// so allocs/op stays a small constant (the span tree plus one Entry) —
// make benchguard asserts the bound.
func BenchmarkFlightRecord(b *testing.B) {
	r := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Start("lookup Patient.age [30,50]")
		ps := sp.Child("probe 1/1")
		ps.Event("owner", "deadbeef hops=1")
		ps.End()
		r.Finish("lookup", sp, 1, nil)
	}
}
