// Package flood implements the unstructured peer-to-peer baseline the
// paper's introduction contrasts with (Gnutella-style): peers form a
// random overlay graph, cached partitions stay at the peer that created
// them, and queries flood the overlay with a TTL.
//
// # Why it exists
//
// The package quantifies the trade-off the paper argues from: flooding
// finds whatever exists within its horizon but costs O(degree^TTL)
// messages per query, while the DHT approach resolves l identifiers in
// l·O(log N) messages. The flooding-baseline experiment runs the same
// workload through both and compares recall per message.
//
// # Observability
//
// QueryTraced records each flood ring (depth, frontier size, best score
// so far) on an internal/trace Span. The package feeds the flood.* family
// of the internal/metrics Default registry (queries, messages, visited);
// see docs/OBSERVABILITY.md.
package flood
