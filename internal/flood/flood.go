package flood

import (
	"fmt"
	"math/rand"

	"p2prange/internal/metrics"
	"p2prange/internal/rangeset"
	"p2prange/internal/store"
	"p2prange/internal/trace"
)

// The Default-registry flood.* family: queries issued, overlay messages
// sent, and peers reached — the O(degree^TTL) cost the paper's
// introduction argues against.
var (
	metFloodQueries  = metrics.Default.Counter("flood.queries")
	metFloodMessages = metrics.Default.Counter("flood.messages")
	metFloodVisited  = metrics.Default.Counter("flood.visited")
)

// Config parameterizes an overlay.
type Config struct {
	// N is the number of peers.
	N int
	// Degree is the target number of neighbors per peer (>= 2 for a
	// connected-ish overlay).
	Degree int
	// Seed drives overlay wiring.
	Seed int64
}

// Network is a random overlay of peers with local (unindexed) caches.
type Network struct {
	neighbors [][]int
	caches    []map[string][]store.Partition // per peer: "rel.attr" -> partitions
}

// New builds a connected random overlay: each peer links to one random
// earlier peer (spanning tree, guaranteeing connectivity) plus random
// extra edges until the average degree target is met.
func New(cfg Config) (*Network, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("flood: N must be positive, got %d", cfg.N)
	}
	if cfg.Degree < 2 {
		cfg.Degree = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{
		neighbors: make([][]int, cfg.N),
		caches:    make([]map[string][]store.Partition, cfg.N),
	}
	for i := range n.caches {
		n.caches[i] = make(map[string][]store.Partition)
	}
	addEdge := func(a, b int) {
		n.neighbors[a] = append(n.neighbors[a], b)
		n.neighbors[b] = append(n.neighbors[b], a)
	}
	for i := 1; i < cfg.N; i++ {
		addEdge(i, rng.Intn(i))
	}
	extra := cfg.N * (cfg.Degree - 2) / 2
	for e := 0; e < extra; e++ {
		a, b := rng.Intn(cfg.N), rng.Intn(cfg.N)
		if a != b {
			addEdge(a, b)
		}
	}
	return n, nil
}

// N returns the overlay size.
func (n *Network) N() int { return len(n.neighbors) }

// Neighbors returns peer p's adjacency list (shared slice; do not modify).
func (n *Network) Neighbors(p int) []int { return n.neighbors[p] }

// Cache stores a partition descriptor at the given peer's local cache —
// unstructured systems keep data wherever it materialized.
func (n *Network) Cache(peerID int, part store.Partition) {
	key := part.Relation + "." + part.Attribute
	for _, existing := range n.caches[peerID][key] {
		if existing.Range == part.Range {
			return
		}
	}
	n.caches[peerID][key] = append(n.caches[peerID][key], part)
}

// CacheLen returns the number of descriptors cached at a peer.
func (n *Network) CacheLen(peerID int) int {
	total := 0
	for _, ps := range n.caches[peerID] {
		total += len(ps)
	}
	return total
}

// Result is the outcome of one flooded query.
type Result struct {
	Match store.Match
	Found bool
	// Messages is the number of overlay messages sent (one per edge
	// traversal, the standard flooding cost metric).
	Messages int
	// Visited is the number of distinct peers reached (the flood
	// horizon).
	Visited int
}

// Query floods from origin with the given TTL, scanning every reached
// peer's local cache for the best match under measure. TTL 0 searches
// only the origin.
func (n *Network) Query(origin int, rel, attribute string, q rangeset.Range, measure store.Measure, ttl int) Result {
	return n.QueryTraced(origin, rel, attribute, q, measure, ttl, nil)
}

// QueryTraced is Query recording each flood ring (depth, frontier size,
// best score so far) on sp.
func (n *Network) QueryTraced(origin int, rel, attribute string, q rangeset.Range, measure store.Measure, ttl int, sp *trace.Span) Result {
	if origin < 0 || origin >= len(n.neighbors) {
		return Result{}
	}
	metFloodQueries.Inc()
	key := rel + "." + attribute
	var res Result
	visited := make(map[int]bool, 64)
	frontier := []int{origin}
	visited[origin] = true
	for depth := 0; depth <= ttl && len(frontier) > 0; depth++ {
		for _, p := range frontier {
			res.Visited++
			for _, cand := range n.caches[p][key] {
				score := measure.Score(q, cand.Range)
				if score > 0 && (!res.Found || score > res.Match.Score) {
					res.Match = store.Match{Partition: cand, Score: score}
					res.Found = true
				}
			}
		}
		var next []int
		if depth < ttl {
			for _, p := range frontier {
				for _, nb := range n.neighbors[p] {
					res.Messages++ // every forwarded copy costs a message
					if !visited[nb] {
						visited[nb] = true
						next = append(next, nb)
					}
				}
			}
		}
		if sp.On() {
			sp.Eventf("ring", "depth=%d peers=%d best=%.3f", depth, len(frontier), res.Match.Score)
		}
		frontier = next
	}
	metFloodMessages.Add(uint64(res.Messages))
	metFloodVisited.Add(uint64(res.Visited))
	return res
}
