package flood

import (
	"math/rand"
	"testing"

	"p2prange/internal/rangeset"
	"p2prange/internal/store"
)

func part(lo, hi int64) store.Partition {
	return store.Partition{Relation: "R", Attribute: "a", Range: rangeset.Range{Lo: lo, Hi: hi}}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestOverlayConnected(t *testing.T) {
	n, err := New(Config{N: 200, Degree: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// BFS from 0 reaches everyone (the spanning-tree edges guarantee it).
	seen := make([]bool, n.N())
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, nb := range n.Neighbors(p) {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	if count != n.N() {
		t.Errorf("overlay disconnected: reached %d of %d", count, n.N())
	}
}

func TestOverlayDegree(t *testing.T) {
	n, err := New(Config{N: 500, Degree: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < n.N(); i++ {
		total += len(n.Neighbors(i))
	}
	mean := float64(total) / float64(n.N())
	if mean < 4 || mean > 8 {
		t.Errorf("mean degree %g, want ≈ 6", mean)
	}
}

func TestCacheDeduplicates(t *testing.T) {
	n, _ := New(Config{N: 3, Degree: 2, Seed: 3})
	n.Cache(0, part(0, 10))
	n.Cache(0, part(0, 10))
	if n.CacheLen(0) != 1 {
		t.Errorf("CacheLen = %d, want 1", n.CacheLen(0))
	}
}

func TestQueryTTLZeroOnlyOrigin(t *testing.T) {
	n, _ := New(Config{N: 10, Degree: 3, Seed: 4})
	n.Cache(0, part(0, 10))
	n.Cache(1, part(20, 30))
	res := n.Query(0, "R", "a", rangeset.Range{Lo: 0, Hi: 10}, store.MatchJaccard, 0)
	if !res.Found || res.Match.Score != 1 {
		t.Errorf("origin cache not searched: %+v", res)
	}
	if res.Messages != 0 || res.Visited != 1 {
		t.Errorf("TTL 0 sent %d messages, visited %d", res.Messages, res.Visited)
	}
}

func TestQueryFindsRemoteWithSufficientTTL(t *testing.T) {
	n, _ := New(Config{N: 50, Degree: 4, Seed: 5})
	target := part(100, 200)
	n.Cache(37, target)
	q := rangeset.Range{Lo: 100, Hi: 200}
	// A large TTL floods the whole (connected) overlay.
	res := n.Query(0, "R", "a", q, store.MatchJaccard, 50)
	if !res.Found || res.Match.Partition.Range != target.Range {
		t.Fatalf("whole-network flood missed the partition: %+v", res)
	}
	if res.Visited != 50 {
		t.Errorf("visited %d of 50", res.Visited)
	}
	if res.Messages == 0 {
		t.Error("no message accounting")
	}
}

func TestQueryHorizonLimits(t *testing.T) {
	// A line topology: 0-1-2-...-k; TTL < distance cannot reach the cache.
	n := &Network{
		neighbors: make([][]int, 6),
		caches:    make([]map[string][]store.Partition, 6),
	}
	for i := range n.caches {
		n.caches[i] = make(map[string][]store.Partition)
	}
	for i := 0; i < 5; i++ {
		n.neighbors[i] = append(n.neighbors[i], i+1)
		n.neighbors[i+1] = append(n.neighbors[i+1], i)
	}
	n.Cache(5, part(0, 10))
	q := rangeset.Range{Lo: 0, Hi: 10}
	if res := n.Query(0, "R", "a", q, store.MatchJaccard, 4); res.Found {
		t.Error("TTL 4 reached a peer 5 hops away")
	}
	if res := n.Query(0, "R", "a", q, store.MatchJaccard, 5); !res.Found {
		t.Error("TTL 5 missed a peer 5 hops away")
	}
}

func TestQueryMessagesGrowWithTTL(t *testing.T) {
	n, _ := New(Config{N: 300, Degree: 4, Seed: 6})
	q := rangeset.Range{Lo: 0, Hi: 10}
	prev := -1
	for ttl := 0; ttl <= 6; ttl++ {
		res := n.Query(0, "R", "a", q, store.MatchJaccard, ttl)
		if res.Messages < prev {
			t.Fatalf("messages fell as TTL grew: ttl=%d", ttl)
		}
		prev = res.Messages
	}
	if prev == 0 {
		t.Error("flooding sent no messages at TTL 6")
	}
}

func TestQueryIsolatesRelations(t *testing.T) {
	n, _ := New(Config{N: 5, Degree: 2, Seed: 7})
	n.Cache(0, part(0, 10))
	if res := n.Query(0, "S", "a", rangeset.Range{Lo: 0, Hi: 10}, store.MatchJaccard, 2); res.Found {
		t.Error("match leaked across relations")
	}
}

func TestQueryBestAcrossPeers(t *testing.T) {
	n, _ := New(Config{N: 30, Degree: 4, Seed: 8})
	rng := rand.New(rand.NewSource(9))
	q := rangeset.Range{Lo: 400, Hi: 500}
	best := 0.0
	for i := 0; i < 30; i++ {
		lo := rng.Int63n(900)
		p := part(lo, lo+rng.Int63n(100))
		n.Cache(i, p)
		if sc := store.MatchJaccard.Score(q, p.Range); sc > best {
			best = sc
		}
	}
	res := n.Query(0, "R", "a", q, store.MatchJaccard, 30)
	if res.Found != (best > 0) {
		t.Fatalf("found=%v, brute best=%g", res.Found, best)
	}
	if res.Found && res.Match.Score != best {
		t.Errorf("flood best %g, brute force %g", res.Match.Score, best)
	}
}
