// Package metrics is the measurement layer of the reproduction: the
// summary statistics the paper's evaluation plots, the live counters the
// running system maintains, and the unified registry that surfaces both.
//
// # Evaluation statistics (paper Sec. 5)
//
// Histogram bins [0,1] similarity scores (the y-axes of Figs. 6-7), CDF
// accumulates recall samples and reports the "percentage of queries
// answered up to at least x" survival curves of Figs. 8-10, IntDist is
// the discrete path-length PDF of Fig. 12(b), and LoadSummary reports the
// per-node load percentiles of Fig. 11. These are offline aggregates:
// experiments fill them and print them once.
//
// # Live counters
//
// RouteStats counts the failure-handling events of the query path
// (lookups, failed lookups, reroutes around suspect nodes, transport
// retries — the availability story behind the Fig. 12 hop counts under
// churn), and SigStats counts signature-pipeline events (cache hits,
// incremental extensions, full signing passes, evictions — the Fig. 5
// hashing cost avoided). Both are nil-safe atomic structs: call sites
// never guard against metrics being disabled.
//
// # The registry
//
// Registry unifies everything behind named counters, gauges, and
// power-of-two integer histograms with concurrent get-or-create access,
// point-in-time Snapshot (JSON-marshalable), delta computation
// (Snapshot.Sub), and Reset. The process-wide Default registry is fed by
// every instrumented package — route.* and sig.* arrive automatically
// because every RouteStats/SigStats method mirrors into it, and the
// chord, peer, query, transport, can, and flood packages register their
// own families. peerd serves the Default snapshot as expvar JSON
// (-debug-addr), rangebench dumps per-experiment deltas (-metrics-out),
// and docs/OBSERVABILITY.md catalogues every family.
package metrics
