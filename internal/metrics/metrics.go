package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts float64 samples in equal-width bins over [lo, hi].
// Samples outside the domain clamp to the edge bins. The zero value is
// unusable; construct with NewHistogram.
type Histogram struct {
	lo, hi float64
	counts []int
	n      int
}

// NewHistogram builds a histogram of bins equal-width bins over [lo, hi].
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("metrics: bad histogram domain [%g,%g] x %d", lo, hi, bins))
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	i := int(float64(len(h.counts)) * (v - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.n++
}

// N returns the number of recorded samples.
func (h *Histogram) N() int { return h.n }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// Count returns the raw count of bin i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// BinStart returns the lower edge of bin i.
func (h *Histogram) BinStart(i int) float64 {
	return h.lo + (h.hi-h.lo)*float64(i)/float64(len(h.counts))
}

// Percent returns bin i's share of all samples, in percent (the y-axis of
// Figs. 6-7).
func (h *Histogram) Percent(i int) float64 {
	if h.n == 0 {
		return 0
	}
	return 100 * float64(h.counts[i]) / float64(h.n)
}

// Percents returns all bins' shares in percent.
func (h *Histogram) Percents() []float64 {
	out := make([]float64, len(h.counts))
	for i := range h.counts {
		out[i] = h.Percent(i)
	}
	return out
}

// String renders an aligned two-column table (bin start, percent).
func (h *Histogram) String() string {
	var b strings.Builder
	for i := range h.counts {
		fmt.Fprintf(&b, "%6.2f %7.2f%%\n", h.BinStart(i), h.Percent(i))
	}
	return b.String()
}

// CDF accumulates samples and reports cumulative fractions. The paper's
// recall figures (8-10) plot "percentage of queries answered up to at
// least x" as x decreases from 1 to 0, i.e. a survival curve; AtLeast
// provides it directly.
type CDF struct {
	sorted bool
	vs     []float64
}

// Add records a sample.
func (c *CDF) Add(v float64) {
	c.vs = append(c.vs, v)
	c.sorted = false
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.vs) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.vs)
		c.sorted = true
	}
}

// AtLeast returns the percentage of samples >= x.
func (c *CDF) AtLeast(x float64) float64 {
	if len(c.vs) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.vs, x)
	return 100 * float64(len(c.vs)-i) / float64(len(c.vs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by
// nearest-rank on the sorted samples.
func (c *CDF) Percentile(p float64) float64 {
	if len(c.vs) == 0 {
		return math.NaN()
	}
	c.sort()
	if p <= 0 {
		return c.vs[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(c.vs))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(c.vs) {
		rank = len(c.vs)
	}
	return c.vs[rank-1]
}

// Mean returns the arithmetic mean of the samples.
func (c *CDF) Mean() float64 {
	if len(c.vs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range c.vs {
		s += v
	}
	return s / float64(len(c.vs))
}

// Survival renders the Figs. 8-10 style series: for thresholds 1.0 down to
// 0.0 in the given step, the percentage of samples >= threshold.
func (c *CDF) Survival(step float64) []Point {
	var pts []Point
	for x := 1.0; x > -step/2; x -= step {
		if x < 0 {
			x = 0
		}
		pts = append(pts, Point{X: x, Y: c.AtLeast(x)})
	}
	return pts
}

// Point is one (x, y) sample of a reported series.
type Point struct {
	X, Y float64
}

// IntDist is a discrete distribution over small non-negative integers,
// used for path-length PDFs (Fig. 12(b)).
type IntDist struct {
	counts []int
	n      int
}

// Add records one observation.
func (d *IntDist) Add(v int) {
	if v < 0 {
		v = 0
	}
	for len(d.counts) <= v {
		d.counts = append(d.counts, 0)
	}
	d.counts[v]++
	d.n++
}

// N returns the number of observations.
func (d *IntDist) N() int { return d.n }

// Max returns the largest observed value.
func (d *IntDist) Max() int { return len(d.counts) - 1 }

// P returns the probability mass at v.
func (d *IntDist) P(v int) float64 {
	if d.n == 0 || v < 0 || v >= len(d.counts) {
		return 0
	}
	return float64(d.counts[v]) / float64(d.n)
}

// Mean returns the expectation.
func (d *IntDist) Mean() float64 {
	if d.n == 0 {
		return math.NaN()
	}
	var s float64
	for v, c := range d.counts {
		s += float64(v) * float64(c)
	}
	return s / float64(d.n)
}

// Percentile returns the p-th percentile by nearest rank.
func (d *IntDist) Percentile(p float64) int {
	if d.n == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(d.n)))
	if rank < 1 {
		rank = 1
	}
	cum := 0
	for v, c := range d.counts {
		cum += c
		if cum >= rank {
			return v
		}
	}
	return len(d.counts) - 1
}

// LoadSummary reports the per-node load statistics of Fig. 11: the mean
// and the 1st and 99th percentiles of stored partitions per node.
type LoadSummary struct {
	Mean     float64
	P1, P99  float64
	Min, Max int
}

// SummarizeLoad computes a LoadSummary over per-node counts.
func SummarizeLoad(perNode []int) LoadSummary {
	if len(perNode) == 0 {
		return LoadSummary{}
	}
	var c CDF
	minv, maxv := perNode[0], perNode[0]
	for _, v := range perNode {
		c.Add(float64(v))
		if v < minv {
			minv = v
		}
		if v > maxv {
			maxv = v
		}
	}
	return LoadSummary{
		Mean: c.Mean(),
		P1:   c.Percentile(1),
		P99:  c.Percentile(99),
		Min:  minv,
		Max:  maxv,
	}
}
