package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, v := range []float64{0, 0.05, 0.95, 1.0, -0.3, 1.7} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Errorf("N = %d", h.N())
	}
	if h.Count(0) != 3 { // 0, 0.05, clamped -0.3
		t.Errorf("bin 0 count = %d, want 3", h.Count(0))
	}
	if h.Count(9) != 3 { // 0.95, clamped 1.0 and 1.7
		t.Errorf("bin 9 count = %d, want 3", h.Count(9))
	}
	if got := h.Percent(0); got != 50 {
		t.Errorf("Percent(0) = %g", got)
	}
	if got := h.BinStart(5); got != 0.5 {
		t.Errorf("BinStart(5) = %g", got)
	}
	if sum := sumFloats(h.Percents()); math.Abs(sum-100) > 1e-9 {
		t.Errorf("percents sum to %g", sum)
	}
	if !strings.Contains(h.String(), "%") {
		t.Error("String() lacks rendering")
	}
}

func TestHistogramPanicsOnBadDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for bad domain")
		}
	}()
	NewHistogram(1, 0, 10)
}

func TestCDFAtLeast(t *testing.T) {
	var c CDF
	for _, v := range []float64{0, 0.25, 0.5, 0.75, 1} {
		c.Add(v)
	}
	cases := []struct {
		x, want float64
	}{
		{0, 100},
		{0.5, 60},
		{1, 20},
		{1.1, 0},
	}
	for _, cse := range cases {
		if got := c.AtLeast(cse.x); got != cse.want {
			t.Errorf("AtLeast(%g) = %g, want %g", cse.x, got, cse.want)
		}
	}
}

func TestCDFPercentile(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.Percentile(1); got != 1 {
		t.Errorf("p1 = %g", got)
	}
	if got := c.Percentile(50); got != 50 {
		t.Errorf("p50 = %g", got)
	}
	if got := c.Percentile(99); got != 99 {
		t.Errorf("p99 = %g", got)
	}
	if got := c.Percentile(100); got != 100 {
		t.Errorf("p100 = %g", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Errorf("p0 = %g", got)
	}
}

func TestCDFMeanAndEmpty(t *testing.T) {
	var c CDF
	if !math.IsNaN(c.Mean()) || !math.IsNaN(c.Percentile(50)) {
		t.Error("empty CDF should report NaN")
	}
	if c.AtLeast(0.5) != 0 {
		t.Error("empty CDF AtLeast should be 0")
	}
	c.Add(2)
	c.Add(4)
	if c.Mean() != 3 {
		t.Errorf("mean = %g", c.Mean())
	}
}

func TestCDFSurvivalMonotone(t *testing.T) {
	var c CDF
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		c.Add(rng.Float64())
	}
	pts := c.Survival(0.05)
	if pts[0].X != 1 {
		t.Errorf("survival starts at %g", pts[0].X)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatalf("survival not monotone at %v", pts[i])
		}
	}
	if last := pts[len(pts)-1]; last.X != 0 || last.Y != 100 {
		t.Errorf("survival ends at %+v, want (0, 100)", last)
	}
}

func TestIntDist(t *testing.T) {
	var d IntDist
	for _, v := range []int{2, 2, 3, 5, -1} {
		d.Add(v)
	}
	if d.N() != 5 {
		t.Errorf("N = %d", d.N())
	}
	if d.P(2) != 0.4 {
		t.Errorf("P(2) = %g", d.P(2))
	}
	if d.P(0) != 0.2 { // the clamped -1
		t.Errorf("P(0) = %g", d.P(0))
	}
	if d.P(99) != 0 {
		t.Errorf("P(99) = %g", d.P(99))
	}
	if d.Max() != 5 {
		t.Errorf("Max = %d", d.Max())
	}
	if got := d.Mean(); math.Abs(got-(0+2+2+3+5)/5.0) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
	if got := d.Percentile(50); got != 2 {
		t.Errorf("p50 = %d", got)
	}
	if got := d.Percentile(99); got != 5 {
		t.Errorf("p99 = %d", got)
	}
	var sum float64
	for v := 0; v <= d.Max(); v++ {
		sum += d.P(v)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("PDF sums to %g", sum)
	}
}

func TestSummarizeLoad(t *testing.T) {
	loads := make([]int, 100)
	for i := range loads {
		loads[i] = i + 1
	}
	s := SummarizeLoad(loads)
	if s.Mean != 50.5 {
		t.Errorf("mean = %g", s.Mean)
	}
	if s.P1 != 1 || s.P99 != 99 {
		t.Errorf("percentiles = %g, %g", s.P1, s.P99)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Errorf("min/max = %d/%d", s.Min, s.Max)
	}
	if got := SummarizeLoad(nil); got != (LoadSummary{}) {
		t.Errorf("empty summary = %+v", got)
	}
}

func sumFloats(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}
