package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a registry Snapshot in the Prometheus text exposition
// format (version 0.0.4), served by peerd at /metrics/prom. Dotted metric
// names become underscore-separated ("peer.lookup_us" →
// "p2prange_peer_lookup_us"); each IntHistogram is emitted as a native
// Prometheus histogram (cumulative le buckets, _sum, _count) plus p50/
// p95/p99 summary gauges estimated from the power-of-two buckets, so
// dashboards get percentiles without PromQL histogram_quantile over
// unusual bucket bounds. The output is deterministic (sorted names) and
// pinned by a golden test.

// promNamespace prefixes every exposed metric name.
const promNamespace = "p2prange"

// promName converts a dotted registry name to a Prometheus metric name.
func promName(name string) string {
	return promNamespace + "_" + strings.NewReplacer(".", "_", "-", "_").Replace(name)
}

// WritePrometheus renders the snapshot to w in Prometheus text format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name])
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writePromHistogram(&b, promName(name), s.Histograms[name])
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram emits one histogram: cumulative le buckets at the
// power-of-two upper bounds, +Inf, _sum and _count, then the quantile
// summary gauges. A bucket with a pinned exemplar gains the OpenMetrics
// exemplar suffix (` # {trace_id="..."} value`) so a scrape that shows a
// latency outlier also names a trace the flight recorder can resolve;
// buckets without exemplars render exactly as before.
func writePromHistogram(b *strings.Builder, pn string, h HistSnapshot) {
	fmt.Fprintf(b, "# TYPE %s histogram\n", pn)
	cum := uint64(0)
	for _, bk := range h.Buckets {
		cum += bk.Count
		fmt.Fprintf(b, "%s_bucket{le=\"%d\"} %d", pn, bk.Hi, cum)
		if bk.Exemplar != nil {
			fmt.Fprintf(b, " # {trace_id=\"%s\"} %d", bk.Exemplar.TraceID, bk.Exemplar.Value)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
	fmt.Fprintf(b, "%s_sum %d\n", pn, h.Sum)
	fmt.Fprintf(b, "%s_count %d\n", pn, h.Count)
	for _, q := range []struct {
		suffix string
		q      float64
	}{{"p50", 0.5}, {"p95", 0.95}, {"p99", 0.99}} {
		fmt.Fprintf(b, "# TYPE %s_%s gauge\n", pn, q.suffix)
		fmt.Fprintf(b, "%s_%s %.6g\n", pn, q.suffix, h.Quantile(q.q))
	}
}
