package metrics

import (
	"strings"
	"testing"
)

// TestQuantile checks the power-of-two interpolation on known shapes.
func TestQuantile(t *testing.T) {
	var h IntHistogram
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %g, want 1 (lower bound of the first non-empty bucket)", got)
	}
	// The median of 1..100 is ~50; the containing bucket is [32,63], so
	// the estimate must land inside it.
	if got := s.Quantile(0.5); got < 32 || got > 63 {
		t.Errorf("q50 = %g, want within [32,63]", got)
	}
	if got := s.Quantile(0.99); got < 64 || got > 127 {
		t.Errorf("q99 = %g, want within [64,127]", got)
	}
	if got := s.Quantile(1); got < 64 || got > 127 {
		t.Errorf("q100 = %g, want within the last bucket [64,127]", got)
	}

	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}

	// All observations equal: every quantile is that value's bucket.
	var one IntHistogram
	for i := 0; i < 10; i++ {
		one.Observe(0)
	}
	if got := one.Snapshot().Quantile(0.95); got != 0 {
		t.Errorf("all-zero q95 = %g, want 0", got)
	}
}

// TestWritePrometheusGolden pins the exposition format byte for byte:
// metric naming, type lines, cumulative le buckets, +Inf, _sum/_count,
// and the quantile summary gauges. A metric rename or format drift shows
// up as a diff here before it breaks someone's dashboard.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("peer.lookups").Add(42)
	r.Counter("transport.calls").Add(7)
	r.Gauge("peer.partitions").Set(3)
	h := r.IntHistogram("chord.hops")
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(2)
	h.Observe(5)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE p2prange_peer_lookups_total counter
p2prange_peer_lookups_total 42
# TYPE p2prange_transport_calls_total counter
p2prange_transport_calls_total 7
# TYPE p2prange_peer_partitions gauge
p2prange_peer_partitions 3
# TYPE p2prange_chord_hops histogram
p2prange_chord_hops_bucket{le="0"} 1
p2prange_chord_hops_bucket{le="1"} 2
p2prange_chord_hops_bucket{le="3"} 4
p2prange_chord_hops_bucket{le="7"} 5
p2prange_chord_hops_bucket{le="+Inf"} 5
p2prange_chord_hops_sum 10
p2prange_chord_hops_count 5
# TYPE p2prange_chord_hops_p50 gauge
p2prange_chord_hops_p50 2.25
# TYPE p2prange_chord_hops_p95 gauge
p2prange_chord_hops_p95 6.25
# TYPE p2prange_chord_hops_p99 gauge
p2prange_chord_hops_p99 6.85
`
	if got := b.String(); got != want {
		t.Errorf("prometheus exposition changed:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHistogramExemplar pins the exemplar contract: SetExemplar
// annotates without counting, the snapshot carries it on the matching
// bucket, and the exposition renders the OpenMetrics suffix on that
// bucket line only.
func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.IntHistogram("peer.lookup_us")
	h.Observe(3)     // bucket [2,3]
	h.Observe(40000) // bucket [32768,65535]
	h.SetExemplar(40000, "000000000000002a")

	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2 (SetExemplar must not count)", s.Count)
	}
	var found *Exemplar
	for _, b := range s.Buckets {
		if b.Lo == 32768 {
			found = b.Exemplar
		} else if b.Exemplar != nil {
			t.Errorf("bucket [%d,%d] has an unexpected exemplar", b.Lo, b.Hi)
		}
	}
	if found == nil || found.Value != 40000 || found.TraceID != "000000000000002a" {
		t.Fatalf("exemplar on [32768,65535] = %+v", found)
	}

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `p2prange_peer_lookup_us_bucket{le="65535"} 2 # {trace_id="000000000000002a"} 40000`
	if !strings.Contains(b.String(), want+"\n") {
		t.Errorf("exposition missing exemplar line %q:\n%s", want, b.String())
	}
	if strings.Contains(b.String(), `le="3"} 1 #`) {
		t.Errorf("exemplar leaked onto the wrong bucket:\n%s", b.String())
	}

	// Reset clears exemplars with the data.
	r.Reset()
	for _, bk := range h.Snapshot().Buckets {
		if bk.Exemplar != nil {
			t.Error("exemplar survived Reset")
		}
	}
}

// TestMergeQuantileAcrossSnapshots checks that quantiles over a merged
// histogram see all processes' observations (exercised by obs, pinned
// here where the bucket math lives).
func TestPrometheusValidFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Inc()
	r.IntHistogram("c.d").Observe(9)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("bad comment line %q", line)
			}
			continue
		}
		if !strings.HasPrefix(line, "p2prange_") {
			t.Errorf("metric line %q lacks namespace", line)
		}
		if strings.Count(line, " ") != 1 {
			t.Errorf("metric line %q is not 'name value'", line)
		}
	}
}
