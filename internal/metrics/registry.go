package metrics

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file is the unified metrics registry: named counters, gauges, and
// integer histograms behind one concurrency-safe surface with snapshot
// and reset. Every instrumented package feeds the process-wide Default
// registry (route.* and sig.* arrive automatically through the RouteStats
// and SigStats mirrors in route.go/sig.go), so one Snapshot describes a
// whole run — peerd serves it as expvar JSON, rangebench dumps it per
// experiment, and tests diff it around operations.

// Counter is a monotonically increasing event count. All methods are safe
// for concurrent use and tolerate a nil receiver, so call sites never
// guard against metrics being disabled. Obtain one with Registry.Counter;
// cache the handle in a package variable so the hot path is a single
// atomic add.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level (stored partitions, open connections).
// Safe for concurrent use; nil receivers no-op.
type Gauge struct{ v atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// IntHistogram counts non-negative integer observations (hop counts,
// microsecond durations) in power-of-two buckets: bucket 0 holds the
// value 0 and bucket i>0 holds [2^(i-1), 2^i). Observing is one atomic
// add with no allocation, so it is safe on hot paths. Nil receivers
// no-op.
type IntHistogram struct {
	buckets   [65]atomic.Uint64 // indexed by bits.Len64(value)
	sum       atomic.Uint64
	exemplars [65]atomic.Pointer[Exemplar]
}

// Observe records one value.
func (h *IntHistogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
}

// Exemplar is one concrete observation pinned to a histogram bucket with
// the trace identity that produced it — the OpenMetrics exemplar the
// Prometheus exposition attaches to bucket lines, so a latency outlier on
// a dashboard resolves to a trace the flight recorder may have retained.
type Exemplar struct {
	Value   uint64 `json:"value"`
	TraceID string `json:"trace_id"`
}

// SetExemplar pins (v, traceID) as the exemplar of v's bucket, replacing
// any previous one. It does not count an observation — the caller already
// Observed v (or chose not to); exemplars are annotation, not data.
func (h *IntHistogram) SetExemplar(v uint64, traceID string) {
	if h == nil || traceID == "" {
		return
	}
	h.exemplars[bits.Len64(v)].Store(&Exemplar{Value: v, TraceID: traceID})
}

// HistBucket is one non-empty power-of-two bucket of a histogram
// snapshot: Count observations fell in [Lo, Hi]. Exemplar, when present,
// is one concrete observation from the bucket with its trace ID.
type HistBucket struct {
	Lo       uint64    `json:"lo"`
	Hi       uint64    `json:"hi"`
	Count    uint64    `json:"count"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// HistSnapshot is a point-in-time copy of an IntHistogram.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Mean    float64      `json:"mean"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. A nil histogram yields a
// zero snapshot.
func (h *IntHistogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		b := HistBucket{Count: c, Exemplar: h.exemplars[i].Load()}
		if i > 0 {
			b.Lo = 1 << (i - 1)
			b.Hi = 1<<i - 1
		}
		s.Buckets = append(s.Buckets, b)
		s.Count += c
	}
	s.Sum = h.sum.Load()
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed values
// by linear interpolation inside the power-of-two bucket where the
// cumulative count crosses q. The coarse buckets bound the error to the
// bucket width — adequate for the p50/p95/p99 summaries exposition and
// rollups report, where order of magnitude and trend matter, not exact
// microseconds. An empty snapshot returns 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if next >= rank {
			if b.Hi == b.Lo {
				return float64(b.Lo)
			}
			frac := 0.0
			if b.Count > 0 {
				frac = (rank - cum) / float64(b.Count)
			}
			return float64(b.Lo) + frac*float64(b.Hi-b.Lo)
		}
		cum = next
	}
	last := s.Buckets[len(s.Buckets)-1]
	return float64(last.Hi)
}

// Sub returns the observation deltas since prev (bucket-wise), for
// per-operation accounting over a cumulative histogram.
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	prevAt := make(map[uint64]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevAt[b.Lo] = b.Count
	}
	out := HistSnapshot{Sum: s.Sum - prev.Sum}
	for _, b := range s.Buckets {
		b.Count -= prevAt[b.Lo]
		if b.Count == 0 {
			continue
		}
		out.Buckets = append(out.Buckets, b)
		out.Count += b.Count
	}
	if out.Count > 0 {
		out.Mean = float64(out.Sum) / float64(out.Count)
	}
	return out
}

// Registry is a named family of counters, gauges, and histograms. Names
// are dotted "family.metric" strings ("route.lookups", "sig.hits");
// get-or-create accessors make registration implicit and idempotent, so
// independent packages can share one registry without coordination. All
// methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*IntHistogram
	funcs    map[string]func() map[string]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*IntHistogram),
		funcs:    make(map[string]func() map[string]uint64),
	}
}

// Default is the process-wide registry every instrumented package feeds:
// chord routing (route.*), the signature pipeline (sig.*), the peer
// protocol (peer.*), the SQL executor (query.*), the transports
// (transport.*), and the alternative substrates (can.*, flood.*).
// Totals aggregate across all instances in the process — every simulated
// peer of a cluster, or the single peer of a live daemon.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// IntHistogram returns the named histogram, creating it on first use.
func (r *Registry) IntHistogram(name string) *IntHistogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &IntHistogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc installs an external counter family: fn is called at
// snapshot time and its entries appear as "family.key" counters. Use it
// for state owned elsewhere (a peer's stored-descriptor count) that is
// cheaper to read on demand than to mirror on every change. Registering
// the same family again replaces the previous fn.
func (r *Registry) RegisterFunc(family string, fn func() map[string]uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[family] = fn
}

// Snapshot is a point-in-time copy of a registry: counter and gauge
// values plus histogram summaries, keyed by metric name. It marshals
// directly to the JSON peerd serves and rangebench dumps.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric's current value (each read atomically; the
// set is not a transaction). Func families are evaluated and merged into
// Counters under "family.key".
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)+len(r.funcs)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	funcs := make(map[string]func() map[string]uint64, len(r.funcs))
	for fam, fn := range r.funcs {
		funcs[fam] = fn
	}
	r.mu.RUnlock()
	// Evaluate func families outside the lock: they may call back into
	// code that touches this registry.
	for fam, fn := range funcs {
		for key, v := range fn() {
			s.Counters[fam+"."+key] = v
		}
	}
	return s
}

// Sub returns the counter and histogram deltas since prev, for
// per-operation accounting over the cumulative registry. Gauges are
// levels, not accumulations, so the current values pass through
// unchanged. Zero-delta counters are dropped, keeping experiment dumps
// small.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     s.Gauges,
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		if d := v - prev.Counters[name]; d != 0 {
			out.Counters[name] = d
		}
	}
	for name, h := range s.Histograms {
		if d := h.Sub(prev.Histograms[name]); d.Count != 0 {
			out.Histograms[name] = d
		}
	}
	return out
}

// Reset zeroes every counter, gauge, and histogram the registry owns.
// Func families read external state and are not resettable here; reset
// their owners (RouteStats.Reset, SigStats.Reset) if needed. Handles
// remain valid across a reset.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.buckets {
			h.buckets[i].Store(0)
			h.exemplars[i].Store(nil)
		}
		h.sum.Store(0)
	}
}
