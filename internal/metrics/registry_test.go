package metrics

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers get-or-create, increments, func-family
// registration, and snapshots from many goroutines at once; run under
// -race (make check) this pins the registry's concurrency safety.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared.counter").Inc()
				r.Counter(fmt.Sprintf("own.counter%d", w)).Inc()
				r.Gauge("shared.gauge").Add(1)
				r.IntHistogram("shared.hist").Observe(uint64(i))
				if i%100 == 0 {
					r.RegisterFunc("fam", func() map[string]uint64 {
						return map[string]uint64{"x": 1}
					})
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	s := r.Snapshot()
	if got := s.Counters["shared.counter"]; got != workers*perWorker {
		t.Errorf("shared.counter = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := s.Counters[fmt.Sprintf("own.counter%d", w)]; got != perWorker {
			t.Errorf("own.counter%d = %d, want %d", w, got, perWorker)
		}
	}
	if got := s.Gauges["shared.gauge"]; got != workers*perWorker {
		t.Errorf("shared.gauge = %d, want %d", got, workers*perWorker)
	}
	if got := s.Histograms["shared.hist"].Count; got != workers*perWorker {
		t.Errorf("shared.hist count = %d, want %d", got, workers*perWorker)
	}
	if got := s.Counters["fam.x"]; got != 1 {
		t.Errorf("fam.x = %d, want 1", got)
	}
}

func TestRegistrySnapshotSubAndReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.events")
	h := r.IntHistogram("a.hist")
	g := r.Gauge("a.level")

	c.Add(3)
	h.Observe(4)
	g.Set(7)
	before := r.Snapshot()

	c.Add(2)
	h.Observe(4)
	h.Observe(100)
	g.Set(9)
	delta := r.Snapshot().Sub(before)

	if got := delta.Counters["a.events"]; got != 2 {
		t.Errorf("counter delta = %d, want 2", got)
	}
	if got := delta.Histograms["a.hist"].Count; got != 2 {
		t.Errorf("hist delta count = %d, want 2", got)
	}
	if got := delta.Histograms["a.hist"].Sum; got != 104 {
		t.Errorf("hist delta sum = %d, want 104", got)
	}
	// Gauges are levels: the current value passes through.
	if got := delta.Gauges["a.level"]; got != 9 {
		t.Errorf("gauge in delta = %d, want 9", got)
	}
	// Untouched counters drop out of the delta entirely.
	r.Counter("b.idle")
	if _, ok := r.Snapshot().Sub(before).Counters["b.idle"]; ok {
		t.Error("zero-delta counter should be omitted from Sub")
	}

	r.Reset()
	s := r.Snapshot()
	if s.Counters["a.events"] != 0 || s.Gauges["a.level"] != 0 || s.Histograms["a.hist"].Count != 0 {
		t.Errorf("Reset left non-zero state: %+v", s)
	}
	// Handles stay valid across Reset.
	c.Inc()
	if got := r.Snapshot().Counters["a.events"]; got != 1 {
		t.Errorf("counter after reset = %d, want 1", got)
	}
}

func TestIntHistogramBuckets(t *testing.T) {
	var h IntHistogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	want := map[uint64]uint64{0: 1, 1: 1, 2: 2, 4: 2, 8: 1, 512: 1}
	for _, b := range s.Buckets {
		if want[b.Lo] != b.Count {
			t.Errorf("bucket lo=%d count=%d, want %d", b.Lo, b.Count, want[b.Lo])
		}
		delete(want, b.Lo)
	}
	if len(want) != 0 {
		t.Errorf("missing buckets: %v", want)
	}
}

// TestSnapshotJSON pins that snapshots marshal cleanly — the contract
// peerd's expvar page and rangebench -metrics-out rely on.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("route.lookups").Add(5)
	r.Gauge("peer.partitions").Set(2)
	r.IntHistogram("chord.hops").Observe(3)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counters["route.lookups"] != 5 {
		t.Errorf("round trip lost counter: %s", b)
	}
}

// TestStatsMirrorIntoDefault pins the fold-in: RouteStats and SigStats
// updates (including through nil receivers) surface as route.* and sig.*
// counters of the Default registry.
func TestStatsMirrorIntoDefault(t *testing.T) {
	before := Default.Snapshot()

	var rs RouteStats
	rs.AddLookup()
	rs.AddRetry()
	var nilRS *RouteStats
	nilRS.AddReroute()

	var ss SigStats
	ss.AddHit()
	var nilSS *SigStats
	nilSS.AddMiss()

	d := Default.Snapshot().Sub(before)
	for name, want := range map[string]uint64{
		"route.lookups":  1,
		"route.retries":  1,
		"route.rerouted": 1,
		"sig.hits":       1,
		"sig.misses":     1,
	} {
		if got := d.Counters[name]; got < want {
			t.Errorf("%s delta = %d, want >= %d", name, got, want)
		}
	}
	rs.Reset()
	if rs.Snapshot() != (RouteSnapshot{}) {
		t.Error("RouteStats.Reset left non-zero counters")
	}
	ss.Reset()
	if ss.Snapshot() != (SigSnapshot{}) {
		t.Error("SigStats.Reset left non-zero counters")
	}
}

// TestHotPathAllocs pins the zero-allocation contract of the metric
// handles themselves (counter add, gauge set, histogram observe).
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.c")
	g := r.Gauge("x.g")
	h := r.IntHistogram("x.h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(4)
		h.Observe(9)
	})
	if allocs != 0 {
		t.Errorf("hot path allocates %v allocs/op, want 0", allocs)
	}
}
