package metrics

import "sync/atomic"

// RouteStats counts failure-handling events on the query path: lookups
// issued, lookups that could not complete, hops rerouted around suspect
// nodes, and transport-level retries. One RouteStats is typically shared
// by a peer's chord node and its retrying transport so a single snapshot
// describes the whole path. All methods are safe for concurrent use and
// tolerate a nil receiver, so call sites never need to guard against
// metrics being disabled.
//
// Every Add method — including calls on a nil receiver — also feeds the
// process-wide route.* counter family of the Default registry, so the
// registered totals aggregate across all instances (every peer of a
// simulated cluster, or one live daemon) with no wiring.
type RouteStats struct {
	lookups       atomic.Uint64
	failedLookups atomic.Uint64
	rerouted      atomic.Uint64
	retries       atomic.Uint64
}

// The Default-registry mirror of the route.* family.
var (
	defRouteLookups  = Default.Counter("route.lookups")
	defRouteFailed   = Default.Counter("route.failed_lookups")
	defRouteRerouted = Default.Counter("route.rerouted")
	defRouteRetries  = Default.Counter("route.retries")
)

// AddLookup records one lookup issued.
func (s *RouteStats) AddLookup() {
	defRouteLookups.Inc()
	if s != nil {
		s.lookups.Add(1)
	}
}

// AddFailedLookup records a lookup that returned an error.
func (s *RouteStats) AddFailedLookup() {
	defRouteFailed.Inc()
	if s != nil {
		s.failedLookups.Add(1)
	}
}

// AddReroute records one hop routed around an unreachable node.
func (s *RouteStats) AddReroute() {
	defRouteRerouted.Inc()
	if s != nil {
		s.rerouted.Add(1)
	}
}

// AddRetry records one transport-level retry.
func (s *RouteStats) AddRetry() {
	defRouteRetries.Inc()
	if s != nil {
		s.retries.Add(1)
	}
}

// Reset zeroes this instance's counters (the Default-registry mirrors are
// reset through Registry.Reset). Nil receivers no-op.
func (s *RouteStats) Reset() {
	if s == nil {
		return
	}
	s.lookups.Store(0)
	s.failedLookups.Store(0)
	s.rerouted.Store(0)
	s.retries.Store(0)
}

// RouteSnapshot is a consistent-enough point-in-time copy of RouteStats
// (each counter is read atomically; the set is not a transaction).
type RouteSnapshot struct {
	Lookups       uint64
	FailedLookups uint64
	Rerouted      uint64
	Retries       uint64
}

// Snapshot returns the current counter values. A nil RouteStats yields a
// zero snapshot.
func (s *RouteStats) Snapshot() RouteSnapshot {
	if s == nil {
		return RouteSnapshot{}
	}
	return RouteSnapshot{
		Lookups:       s.lookups.Load(),
		FailedLookups: s.failedLookups.Load(),
		Rerouted:      s.rerouted.Load(),
		Retries:       s.retries.Load(),
	}
}

// SuccessRate returns the percentage of lookups that completed, or 100
// when none were issued.
func (s RouteSnapshot) SuccessRate() float64 {
	if s.Lookups == 0 {
		return 100
	}
	return 100 * float64(s.Lookups-s.FailedLookups) / float64(s.Lookups)
}
