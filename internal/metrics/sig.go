package metrics

import "sync/atomic"

// SigStats counts signature-pipeline events on the hashing path: cache
// hits (a range's signature was reused verbatim), extensions (a cached
// subrange's signature was grown by folding only the delta values),
// misses (a full signing pass ran), and cache evictions. One SigStats is
// typically shared by every signer whose totals should aggregate — all
// peers of a simulated cluster, or a single live peer. All methods are
// safe for concurrent use and tolerate a nil receiver, so call sites
// never need to guard against metrics being disabled.
//
// Every Add method — including calls on a nil receiver — also feeds the
// process-wide sig.* counter family of the Default registry, so the
// registered totals aggregate across all signers in the process with no
// wiring.
type SigStats struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	extends   atomic.Uint64
	evictions atomic.Uint64
}

// The Default-registry mirror of the sig.* family.
var (
	defSigHits      = Default.Counter("sig.hits")
	defSigMisses    = Default.Counter("sig.misses")
	defSigExtends   = Default.Counter("sig.extends")
	defSigEvictions = Default.Counter("sig.evictions")
)

// AddHit records one exact signature-cache hit.
func (s *SigStats) AddHit() {
	defSigHits.Inc()
	if s != nil {
		s.hits.Add(1)
	}
}

// AddMiss records one full signing pass (no reusable cached signature).
func (s *SigStats) AddMiss() {
	defSigMisses.Inc()
	if s != nil {
		s.misses.Add(1)
	}
}

// AddExtend records one incremental extension of a cached signature.
func (s *SigStats) AddExtend() {
	defSigExtends.Inc()
	if s != nil {
		s.extends.Add(1)
	}
}

// AddEviction records one signature evicted from a bounded cache.
func (s *SigStats) AddEviction() {
	defSigEvictions.Inc()
	if s != nil {
		s.evictions.Add(1)
	}
}

// Reset zeroes this instance's counters (the Default-registry mirrors are
// reset through Registry.Reset). Nil receivers no-op.
func (s *SigStats) Reset() {
	if s == nil {
		return
	}
	s.hits.Store(0)
	s.misses.Store(0)
	s.extends.Store(0)
	s.evictions.Store(0)
}

// SigSnapshot is a point-in-time copy of SigStats (each counter is read
// atomically; the set is not a transaction).
type SigSnapshot struct {
	Hits      uint64
	Misses    uint64
	Extends   uint64
	Evictions uint64
}

// Snapshot returns the current counter values. A nil SigStats yields a
// zero snapshot.
func (s *SigStats) Snapshot() SigSnapshot {
	if s == nil {
		return SigSnapshot{}
	}
	return SigSnapshot{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Extends:   s.extends.Load(),
		Evictions: s.evictions.Load(),
	}
}

// Total returns the number of signing requests the snapshot covers.
func (s SigSnapshot) Total() uint64 { return s.Hits + s.Misses + s.Extends }

// HitRate returns the percentage of signing requests that avoided a full
// rehash (exact hits plus extensions), or 0 when none were issued.
func (s SigSnapshot) HitRate() float64 {
	if t := s.Total(); t > 0 {
		return 100 * float64(s.Hits+s.Extends) / float64(t)
	}
	return 0
}

// Sub returns the counter deltas since prev, for per-operation accounting
// over a cumulative stats object.
func (s SigSnapshot) Sub(prev SigSnapshot) SigSnapshot {
	return SigSnapshot{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Extends:   s.Extends - prev.Extends,
		Evictions: s.Evictions - prev.Evictions,
	}
}
