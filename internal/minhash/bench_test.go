package minhash

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"p2prange/internal/rangeset"
)

// benchScheme builds the paper's default k=20, l=5 scheme.
func benchScheme(b testing.TB, f Family) *Scheme {
	s, err := NewDefaultScheme(f, rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

var benchSizes = []int64{100, 400, 1500}

// benchIDs sinks identifiers so the compiler cannot elide the work.
var benchIDs []ID

// BenchmarkMinWiseSign measures the batched pipeline on the paper's
// min-wise row of Fig. 5 — the hottest hashing path in the system. The
// acceptance target for this PR is >= 5x over BenchmarkMinWiseNaive at
// size=1500 (see TestMinWiseBatchedSpeedup, which pins it).
func BenchmarkMinWiseSign(b *testing.B) {
	benchmarkSign(b, MinWise)
}

// BenchmarkMinWiseNaive is the pre-pipeline baseline: the per-bit
// permutations applied once per hash function per range value, exactly
// what Fig. 5 times.
func BenchmarkMinWiseNaive(b *testing.B) {
	benchmarkNaive(b, MinWise)
}

func BenchmarkApproxSign(b *testing.B)  { benchmarkSign(b, ApproxMinWise) }
func BenchmarkApproxNaive(b *testing.B) { benchmarkNaive(b, ApproxMinWise) }
func BenchmarkLinearSign(b *testing.B)  { benchmarkSign(b, Linear) }
func BenchmarkLinearNaive(b *testing.B) { benchmarkNaive(b, Linear) }

func benchmarkSign(b *testing.B, f Family) {
	signer := NewSigner(benchScheme(b, f))
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			q := rangeset.Range{Lo: 1000, Hi: 1000 + size - 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchIDs = signer.Identifiers(q)
			}
		})
	}
}

func benchmarkNaive(b *testing.B, f Family) {
	scheme := benchScheme(b, f)
	for _, size := range benchSizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			q := rangeset.Range{Lo: 1000, Hi: 1000 + size - 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchIDs = scheme.Identifiers(q)
			}
		})
	}
}

// BenchmarkSignExtend measures the incremental path: extending a cached
// signature by a 20% pad versus rehashing the padded range from scratch.
func BenchmarkSignExtend(b *testing.B) {
	signer := NewSigner(benchScheme(b, MinWise))
	base := rangeset.Range{Lo: 1000, Hi: 2499} // size 1500
	padded := rangeset.Range{Lo: 850, Hi: 2649}
	sig := signer.Sign(base)
	b.Run("extend-20pct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := signer.Extend(sig, padded)
			if err != nil {
				b.Fatal(err)
			}
			benchIDs = out.Identifiers()
		}
	})
	b.Run("rehash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchIDs = signer.Sign(padded).Identifiers()
		}
	})
}

// BenchmarkSignCached measures a warm signature cache (exact repeat).
func BenchmarkSignCached(b *testing.B) {
	signer := NewSigner(benchScheme(b, MinWise), WithSigCache(64))
	q := rangeset.Range{Lo: 1000, Hi: 2499}
	signer.Sign(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchIDs = signer.Identifiers(q)
	}
}

// TestMinWiseBatchedSpeedup pins the PR's acceptance criterion directly:
// on the Fig. 5 min-wise row at size 1500, the batched pipeline is at
// least 5x faster than the naive per-permutation path while producing
// identical identifiers. The measured ratio is far higher (the compiled
// tables alone are ~20x); 5x leaves ample headroom for noisy CI hosts.
func TestMinWiseBatchedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	scheme := benchScheme(t, MinWise)
	signer := NewSigner(scheme)
	q := rangeset.Range{Lo: 1000, Hi: 2499} // size 1500

	want := scheme.Identifiers(q)
	if got := signer.Identifiers(q); !reflect.DeepEqual(got, want) {
		t.Fatalf("batched identifiers %08x differ from naive %08x", got, want)
	}

	// Best-of-three for each path to shrug off scheduler noise.
	timeIt := func(fn func()) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			fn()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	naive := timeIt(func() { benchIDs = scheme.Identifiers(q) })
	batched := timeIt(func() { benchIDs = signer.Identifiers(q) })
	if batched <= 0 {
		batched = time.Nanosecond
	}
	ratio := float64(naive) / float64(batched)
	t.Logf("min-wise size=1500: naive %v, batched %v (%.1fx)", naive, batched, ratio)
	if ratio < 5 {
		t.Errorf("batched pipeline only %.1fx faster than naive (want >= 5x)", ratio)
	}
}
