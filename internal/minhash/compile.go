package minhash

// The full and approximate min-wise permutations are bit permutations:
// every output bit is one input bit. That makes Apply linear over
// bitwise-OR of disjoint inputs, so the whole permutation collapses into
// four 256-entry byte tables. Compile produces that form. The naive
// per-bit Apply is kept as the faithful implementation whose cost Fig. 5
// measures; quality and topology experiments (Figs. 6-12) use the
// compiled form since they measure match quality, not hashing time.

// compiledPerm is a byte-table accelerated bit permutation.
type compiledPerm struct {
	family Family
	tab    [4][256]uint32
}

// Apply implements Permutation.
func (c *compiledPerm) Apply(x uint32) uint32 {
	return c.tab[0][byte(x)] |
		c.tab[1][byte(x>>8)] |
		c.tab[2][byte(x>>16)] |
		c.tab[3][byte(x>>24)]
}

// Family implements Permutation.
func (c *compiledPerm) Family() Family { return c.family }

// Compile returns a semantically identical but faster permutation.
// Bit permutations compile to byte tables; linear permutations are
// already a multiply and return unchanged.
//
// Compile is idempotent: an already-compiled permutation (or one with no
// compiled form) is returned as-is, never re-tabulated, so callers may
// compile defensively without allocating.
func Compile(p Permutation) Permutation {
	switch p.(type) {
	case *FullPermutation, *ApproxPermutation:
		c := &compiledPerm{family: p.Family()}
		for bi := 0; bi < 4; bi++ {
			for v := 0; v < 256; v++ {
				c.tab[bi][v] = p.Apply(uint32(v) << (8 * bi))
			}
		}
		return c
	default:
		return p
	}
}

// Compiled returns a scheme whose permutations are all compiled; the
// group structure and key material are unchanged, so identifiers are
// bit-for-bit identical to the uncompiled scheme's.
//
// Compilation happens at most once per scheme: the compiled form is
// cached on first use and every later call returns the same *Scheme, and
// calling Compiled on an already-compiled scheme returns the receiver.
// Sharing one scheme (and therefore one set of byte tables) across many
// peers and signers is the intended use.
func (s *Scheme) Compiled() *Scheme {
	s.compileOnce.Do(func() {
		if s.isCompiled() {
			s.compiled = s
			return
		}
		out := &Scheme{family: s.family, groups: make([]*Group, len(s.groups))}
		for i, g := range s.groups {
			ng := &Group{perms: make([]Permutation, len(g.perms))}
			for j, p := range g.perms {
				ng.perms[j] = Compile(p)
			}
			out.groups[i] = ng
		}
		s.compiled = out
	})
	return s.compiled
}

// isCompiled reports whether every permutation is already in its fastest
// form (compiled tables, or a family Compile passes through unchanged).
func (s *Scheme) isCompiled() bool {
	for _, g := range s.groups {
		for _, p := range g.perms {
			switch p.(type) {
			case *FullPermutation, *ApproxPermutation:
				return false
			}
		}
	}
	return true
}
