package minhash

// The full and approximate min-wise permutations are bit permutations:
// every output bit is one input bit. That makes Apply linear over
// bitwise-OR of disjoint inputs, so the whole permutation collapses into
// four 256-entry byte tables. Compile produces that form. The naive
// per-bit Apply is kept as the faithful implementation whose cost Fig. 5
// measures; quality and topology experiments (Figs. 6-12) use the
// compiled form since they measure match quality, not hashing time.

// compiledPerm is a byte-table accelerated bit permutation.
type compiledPerm struct {
	family Family
	tab    [4][256]uint32
}

// Apply implements Permutation.
func (c *compiledPerm) Apply(x uint32) uint32 {
	return c.tab[0][byte(x)] |
		c.tab[1][byte(x>>8)] |
		c.tab[2][byte(x>>16)] |
		c.tab[3][byte(x>>24)]
}

// Family implements Permutation.
func (c *compiledPerm) Family() Family { return c.family }

// Compile returns a semantically identical but faster permutation.
// Bit permutations compile to byte tables; linear permutations are
// already a multiply and return unchanged.
func Compile(p Permutation) Permutation {
	switch p.(type) {
	case *FullPermutation, *ApproxPermutation:
		c := &compiledPerm{family: p.Family()}
		for bi := 0; bi < 4; bi++ {
			for v := 0; v < 256; v++ {
				c.tab[bi][v] = p.Apply(uint32(v) << (8 * bi))
			}
		}
		return c
	default:
		return p
	}
}

// Compiled returns a scheme whose permutations are all compiled; the
// group structure and key material are unchanged, so identifiers are
// bit-for-bit identical to the uncompiled scheme's.
func (s *Scheme) Compiled() *Scheme {
	out := &Scheme{family: s.family, groups: make([]*Group, len(s.groups))}
	for i, g := range s.groups {
		ng := &Group{perms: make([]Permutation, len(g.perms))}
		for j, p := range g.perms {
			ng.perms[j] = Compile(p)
		}
		out.groups[i] = ng
	}
	return out
}
