// Package minhash implements the locality sensitive hashing machinery of
// the paper "Approximate Range Selection Queries in Peer-to-Peer Systems"
// (Gupta, Agrawal, El Abbadi, CIDR 2003): hash a query range — viewed as
// the set of integers it contains — so that similar ranges collide.
//
// # Permutation families (paper Sec. 3.3, Fig. 3)
//
// A Permutation is a keyed bijection on 32-bit integers; the min-hash of a
// range Q under permutation pi is min{pi(x) : x in Q}. Three families are
// provided, matching the paper's Fig. 5 comparison:
//
//   - MinWise: min-wise independent bit permutations realized as the
//     paper's Fig. 3 keyed bit shuffle (several XOR/rotate rounds). Most
//     accurate, most expensive.
//   - ApproxMinWise: the cheap "approximate" variant that runs only the
//     first iteration of the shuffle.
//   - Linear: pi(x) = a*x + b mod p for a prime p > 2^32. Cheapest, but
//     only approximately min-wise; Fig. 7 shows its failure mode.
//
// # The (k, l) group scheme (Sec. 4)
//
// Scheme draws l groups of k permutations. A range's k min-hashes within a
// group XOR together (per the paper's pseudocode) into one 32-bit group
// identifier, giving l identifiers per range. Similar ranges agree on at
// least one identifier with high probability; the identifiers double as
// Chord positions (see internal/chord). DefaultK=20 and DefaultL=5 are the
// paper's evaluation parameters. ExactScheme is the Sec. 3.1 exact-match
// baseline (hash the range endpoints, no similarity).
//
// # The signature pipeline (Fig. 5 performance)
//
// Naively each of the k*l permutations walks the range independently.
// Signer is the batched production path: permutations are compiled to
// byte-table form (Compile/Scheme.Compiled, four 256-entry lookups per
// Apply), and one tiled pass over the range folds the running minima of
// all k*l permutations simultaneously into a Signature. Identifiers
// computed through the pipeline are bit-identical to the naive path.
//
// A Signature stores per-permutation minima rather than the XOR-folded
// identifiers, and minima are monotone under range growth — so a
// signature for [a,b] extends to [a',b'] ⊇ [a,b] by hashing only the
// delta (Signer.Extend). Signer exploits that with an optional LRU cache
// of signatures keyed by range: repeated ranges hit exactly, and padded
// probes (Fig. 10 pads each query by 20%, so query and probe overlap
// heavily) pay only for the padding. WithWorkers splits the k*l
// permutations across goroutines for large ranges; results are identical
// because each worker owns a disjoint slice of minima. Cache and worker
// counters surface through internal/metrics.SigStats.
package minhash
