package minhash

import (
	"crypto/sha1"
	"encoding/binary"

	"p2prange/internal/rangeset"
)

// Hasher maps a selection range to the DHT identifiers it is stored under
// and probed at. Scheme (LSH) is the paper's contribution; ExactScheme is
// the strawman of Section 3.1 it improves upon.
type Hasher interface {
	// Identifiers returns the identifiers for q, one per probe.
	Identifiers(q rangeset.Range) []ID
	// L returns the number of identifiers per range.
	L() int
}

var _ Hasher = (*Scheme)(nil)

// ExactScheme is the paper's Section 3.1 baseline: "use the specific
// range [30-50] as a key" — the range descriptor is hashed with SHA-1 to
// a single identifier. Identical ranges always collide; everything else
// never does, so a query for [30,49] cannot benefit from a cached
// [30,50] even though the cached partition contains its entire answer.
type ExactScheme struct{}

// NewExactScheme returns the exact-match baseline hasher.
func NewExactScheme() *ExactScheme { return &ExactScheme{} }

var _ Hasher = (*ExactScheme)(nil)

// Identifiers hashes the range endpoints to one identifier.
func (*ExactScheme) Identifiers(q rangeset.Range) []ID {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(q.Lo))
	binary.BigEndian.PutUint64(buf[8:16], uint64(q.Hi))
	sum := sha1.Sum(buf[:])
	return []ID{binary.BigEndian.Uint32(sum[:4])}
}

// L returns 1: exact matching stores each range under a single key.
func (*ExactScheme) L() int { return 1 }

// String identifies the baseline in reports.
func (*ExactScheme) String() string { return "exact-match (SHA-1 of range)" }
