package minhash_test

import (
	"fmt"
	"log"
	"math/rand"

	"p2prange/internal/minhash"
	"p2prange/internal/rangeset"
)

// The paper's motivating pair: a query for ages [30,49] against a cached
// partition [30,50]. They are 95% similar, so with the paper's (k=20,
// l=5) scheme they agree on at least one of the five identifiers with
// high probability — which is how the cached partition is found.
func ExampleScheme_Identifiers() {
	scheme, err := minhash.NewDefaultScheme(minhash.ApproxMinWise,
		rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	cached := rangeset.Range{Lo: 30, Hi: 50}
	query := rangeset.Range{Lo: 30, Hi: 49}

	a := scheme.Identifiers(cached)
	b := scheme.Identifiers(query)
	collisions := 0
	for i := range a {
		if a[i] == b[i] {
			collisions++
		}
	}
	fmt.Printf("jaccard %.2f, %d of %d identifiers collide\n",
		query.Jaccard(cached), collisions, scheme.L())

	// A dissimilar range shares nothing.
	far := rangeset.Range{Lo: 700, Hi: 900}
	c := scheme.Identifiers(far)
	collisions = 0
	for i := range a {
		if a[i] == c[i] {
			collisions++
		}
	}
	fmt.Printf("dissimilar range: %d collisions\n", collisions)
	// Output:
	// jaccard 0.95, 5 of 5 identifiers collide
	// dissimilar range: 0 collisions
}

// CollideProbability shows why the paper chose k=20, l=5: the collision
// probability approximates a step function with its step at 0.9.
func ExampleCollideProbability() {
	for _, sim := range []float64{0.5, 0.8, 0.9, 0.95, 1.0} {
		fmt.Printf("sim %.2f -> P %.3f\n", sim, minhash.CollideProbability(sim, 20, 5))
	}
	// Output:
	// sim 0.50 -> P 0.000
	// sim 0.80 -> P 0.056
	// sim 0.90 -> P 0.477
	// sim 0.95 -> P 0.891
	// sim 1.00 -> P 1.000
}
