package minhash

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
)

// Word is the identifier width in bits. The paper uses a 32-bit identifier
// space throughout.
const Word = 32

// A Permutation is a bijection on 32-bit integers. The min-hash of a set Q
// under permutation pi is min{pi(x) : x in Q}; two sets collide on that
// hash with probability equal to their Jaccard similarity when pi is drawn
// from a min-wise independent family.
type Permutation interface {
	// Apply maps x through the permutation.
	Apply(x uint32) uint32
	// Family names the permutation family for reporting.
	Family() Family
}

// Family identifies one of the paper's three hash function families.
type Family int

const (
	// MinWise is the full min-wise independent permutation: log2(32) = 5
	// iterations of the keyed bit shuffle of Fig. 3.
	MinWise Family = iota
	// ApproxMinWise performs only the first iteration of the shuffle; it is
	// representable by a single 32-bit key and roughly an order of
	// magnitude cheaper (paper Sec. 5.1).
	ApproxMinWise
	// Linear is pi(x) = a*x + b mod p with a != 0 and p prime > 2^32
	// (Broder et al.); cheap and exactly representable by (a, b).
	Linear
)

// String returns the family name as used in the paper's figures.
func (f Family) String() string {
	switch f {
	case MinWise:
		return "min-wise independent"
	case ApproxMinWise:
		return "approx. min-wise independent"
	case Linear:
		return "linear"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Families lists all three families in the paper's presentation order.
func Families() []Family { return []Family{MinWise, ApproxMinWise, Linear} }

// ErrBadKey reports an invalid permutation key.
var ErrBadKey = errors.New("minhash: invalid permutation key")

// shuffleRound performs one iteration of the Fig. 3 operation on the
// width-bit value x within each block of size block bits. The key selects,
// within every block, which bit positions move to the upper half of the
// block (in order); the remaining positions move to the lower half (in
// order). The key must have exactly block/2 bits set within each block.
func shuffleRound(x uint32, key uint32, block uint) uint32 {
	var out uint32
	for base := uint(0); base < Word; base += block {
		half := block / 2
		hi := base + half // upper half starts here (bit positions grow upward)
		lo := base
		hiN, loN := uint(0), uint(0)
		for i := uint(0); i < block; i++ {
			bit := (x >> (base + i)) & 1
			if (key>>(base+i))&1 == 1 {
				out |= bit << (hi + hiN)
				hiN++
			} else {
				out |= bit << (lo + loN)
				loN++
			}
		}
	}
	return out
}

// roundKeyValid reports whether key has exactly block/2 bits set in every
// block-aligned window of block bits.
func roundKeyValid(key uint32, block uint) bool {
	half := int(block / 2)
	for base := uint(0); base < Word; base += block {
		mask := uint32((uint64(1)<<block)-1) << base
		if bits.OnesCount32(key&mask) != half {
			return false
		}
	}
	return true
}

// randRoundKey draws a uniformly random valid round key for block size
// block: in every block-aligned window exactly half the bits are set.
func randRoundKey(rng *rand.Rand, block uint) uint32 {
	var key uint32
	half := int(block / 2)
	for base := uint(0); base < Word; base += block {
		// Choose half positions out of block via partial Fisher-Yates.
		pos := make([]uint, block)
		for i := range pos {
			pos[i] = uint(i)
		}
		for i := 0; i < half; i++ {
			j := i + rng.Intn(len(pos)-i)
			pos[i], pos[j] = pos[j], pos[i]
			key |= 1 << (base + pos[i])
		}
	}
	return key
}

// rounds is the number of shuffle iterations for a full permutation on
// Word-bit integers: block sizes 32, 16, 8, 4, 2.
const rounds = 5

// FullPermutation is the paper's min-wise independent permutation: rounds
// of keyed bit shuffles at halving block sizes (Fig. 3). The complete key
// material is five round keys; as in the paper these pack into two 32-bit
// integers (32 + 16+8+4+2 = 62 bits of positions), but we keep them
// unpacked for clarity and validate them instead.
type FullPermutation struct {
	keys [rounds]uint32
}

// NewFullPermutation draws a random full permutation from rng.
func NewFullPermutation(rng *rand.Rand) *FullPermutation {
	var p FullPermutation
	block := uint(Word)
	for r := 0; r < rounds; r++ {
		p.keys[r] = randRoundKey(rng, block)
		block /= 2
	}
	return &p
}

// NewFullPermutationKeys builds a full permutation from explicit round
// keys, validating the per-block popcount invariant.
func NewFullPermutationKeys(keys [rounds]uint32) (*FullPermutation, error) {
	block := uint(Word)
	for r := 0; r < rounds; r++ {
		if !roundKeyValid(keys[r], block) {
			return nil, fmt.Errorf("%w: round %d key %#x lacks %d set bits per %d-bit block",
				ErrBadKey, r, keys[r], block/2, block)
		}
		block /= 2
	}
	return &FullPermutation{keys: keys}, nil
}

// Keys returns the five round keys.
func (p *FullPermutation) Keys() [rounds]uint32 { return p.keys }

// Apply runs all shuffle iterations.
func (p *FullPermutation) Apply(x uint32) uint32 {
	block := uint(Word)
	for r := 0; r < rounds; r++ {
		x = shuffleRound(x, p.keys[r], block)
		block /= 2
	}
	return x
}

// Family reports MinWise.
func (p *FullPermutation) Family() Family { return MinWise }

// ApproxPermutation is the first iteration of the full permutation only: a
// single keyed shuffle with a 32-bit key having 16 set bits.
type ApproxPermutation struct {
	key uint32
}

// NewApproxPermutation draws a random approximate permutation from rng.
func NewApproxPermutation(rng *rand.Rand) *ApproxPermutation {
	return &ApproxPermutation{key: randRoundKey(rng, Word)}
}

// NewApproxPermutationKey builds an approximate permutation from key,
// which must have exactly 16 set bits.
func NewApproxPermutationKey(key uint32) (*ApproxPermutation, error) {
	if !roundKeyValid(key, Word) {
		return nil, fmt.Errorf("%w: key %#x must have exactly %d set bits", ErrBadKey, key, Word/2)
	}
	return &ApproxPermutation{key: key}, nil
}

// Key returns the 32-bit shuffle key.
func (p *ApproxPermutation) Key() uint32 { return p.key }

// Apply performs the single shuffle iteration.
func (p *ApproxPermutation) Apply(x uint32) uint32 {
	return shuffleRound(x, p.key, Word)
}

// Family reports ApproxMinWise.
func (p *ApproxPermutation) Family() Family { return ApproxMinWise }

// linearPrime is the smallest prime larger than 2^32, so every residue of
// a 32-bit input is reachable and a*x+b mod p is injective on [0, 2^32).
const linearPrime uint64 = 4294967311

// LinearPermutation is pi(x) = a*x + b mod p truncated to 32 bits. With
// p > 2^32 the map is injective on 32-bit inputs; the truncation to the
// identifier space follows the paper's use of 32-bit identifiers.
type LinearPermutation struct {
	a, b uint64
}

// NewLinearPermutation draws a random linear permutation (a != 0) from rng.
func NewLinearPermutation(rng *rand.Rand) *LinearPermutation {
	a := uint64(rng.Int63n(int64(linearPrime-1))) + 1 // 1..p-1
	b := uint64(rng.Int63n(int64(linearPrime)))       // 0..p-1
	return &LinearPermutation{a: a, b: b}
}

// NewLinearPermutationCoeffs builds a linear permutation from explicit
// coefficients; a must be nonzero mod p.
func NewLinearPermutationCoeffs(a, b uint64) (*LinearPermutation, error) {
	if a%linearPrime == 0 {
		return nil, fmt.Errorf("%w: linear coefficient a must be nonzero mod %d", ErrBadKey, linearPrime)
	}
	return &LinearPermutation{a: a % linearPrime, b: b % linearPrime}, nil
}

// Coeffs returns (a, b).
func (p *LinearPermutation) Coeffs() (a, b uint64) { return p.a, p.b }

// Apply computes a*x + b mod p in 128-bit arithmetic (a*x can exceed 64
// bits since a < 2^33 and x < 2^32).
func (p *LinearPermutation) Apply(x uint32) uint32 {
	hi, lo := bits.Mul64(p.a, uint64(x))
	_, rem := bits.Div64(hi, lo, linearPrime)
	return uint32((rem + p.b) % linearPrime)
}

// Family reports Linear.
func (p *LinearPermutation) Family() Family { return Linear }

// NewPermutation draws a random permutation of the given family from rng.
func NewPermutation(f Family, rng *rand.Rand) (Permutation, error) {
	switch f {
	case MinWise:
		return NewFullPermutation(rng), nil
	case ApproxMinWise:
		return NewApproxPermutation(rng), nil
	case Linear:
		return NewLinearPermutation(rng), nil
	default:
		return nil, fmt.Errorf("minhash: unknown family %d", int(f))
	}
}
