package minhash

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"p2prange/internal/rangeset"
)

func allPerms(t *testing.T, seed int64) []Permutation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var ps []Permutation
	for _, f := range Families() {
		p, err := NewPermutation(f, rng)
		if err != nil {
			t.Fatalf("NewPermutation(%v): %v", f, err)
		}
		ps = append(ps, p)
	}
	return ps
}

// Every family must be injective on 32-bit inputs (it is a permutation of
// the domain); we verify on a large random sample.
func TestPermutationsInjective(t *testing.T) {
	for _, p := range allPerms(t, 1) {
		seen := make(map[uint32]uint32, 1<<16)
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 1<<16; i++ {
			x := rng.Uint32()
			y := p.Apply(x)
			if prev, ok := seen[y]; ok && prev != x {
				t.Fatalf("%v: collision %08x: Apply(%08x) == Apply(%08x)", p.Family(), y, x, prev)
			}
			seen[y] = x
		}
	}
}

// Bit permutations preserve popcount; linear permutations do not, but must
// stay within the domain.
func TestShufflePreservesPopcount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	full := NewFullPermutation(rng)
	approx := NewApproxPermutation(rng)
	for i := 0; i < 100000; i++ {
		x := rng.Uint32()
		if got, want := bits.OnesCount32(full.Apply(x)), bits.OnesCount32(x); got != want {
			t.Fatalf("full permutation changed popcount of %08x: %d -> %d", x, want, got)
		}
		if got, want := bits.OnesCount32(approx.Apply(x)), bits.OnesCount32(x); got != want {
			t.Fatalf("approx permutation changed popcount of %08x: %d -> %d", x, want, got)
		}
	}
}

// The paper's Fig. 3 example: 8-bit value, key with 4 set bits. We verify
// the same semantics at 32 bits by checking that bits selected by the key
// land in the upper half, in order.
func TestShuffleRoundSemantics(t *testing.T) {
	// key selects bits 0 and 1 plus 14 others; craft a simple case:
	// key = low 16 bits set → identity on a value with only low bits?
	key := uint32(0x0000ffff) // lower 16 positions move to the upper half
	x := uint32(0x00000001)   // bit 0 set
	got := shuffleRound(x, key, 32)
	// bit 0 is the first key-selected bit → goes to position 16.
	if got != 1<<16 {
		t.Fatalf("shuffleRound moved bit 0 to %08x, want %08x", got, uint32(1<<16))
	}
	// A non-selected bit: bit 16 is the first non-selected → position 0.
	got = shuffleRound(1<<16, key, 32)
	if got != 1 {
		t.Fatalf("shuffleRound moved bit 16 to %08x, want 1", got)
	}
}

func TestRoundKeyValidation(t *testing.T) {
	if _, err := NewApproxPermutationKey(0x0000ffff); err != nil {
		t.Errorf("balanced key rejected: %v", err)
	}
	if _, err := NewApproxPermutationKey(0x000000ff); err == nil {
		t.Error("unbalanced key accepted")
	}
	var keys [rounds]uint32
	keys[0] = 0x0000ffff
	keys[1] = 0x00ff00ff // 8 of 16 per 16-bit block
	keys[2] = 0x0f0f0f0f // 4 of 8 per 8-bit block
	keys[3] = 0x33333333 // 2 of 4 per 4-bit block
	keys[4] = 0x55555555 // 1 of 2 per 2-bit block
	if _, err := NewFullPermutationKeys(keys); err != nil {
		t.Errorf("valid round keys rejected: %v", err)
	}
	keys[2] = 0x0f0f0f0e // block 0 has 3 bits
	if _, err := NewFullPermutationKeys(keys); err == nil {
		t.Error("invalid round-2 key accepted")
	}
}

func TestRandRoundKeyBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, block := range []uint{32, 16, 8, 4, 2} {
		for i := 0; i < 200; i++ {
			key := randRoundKey(rng, block)
			if !roundKeyValid(key, block) {
				t.Fatalf("randRoundKey(%d) produced unbalanced key %08x", block, key)
			}
		}
	}
}

func TestLinearPermutationCoeffs(t *testing.T) {
	if _, err := NewLinearPermutationCoeffs(0, 5); err == nil {
		t.Error("a=0 accepted")
	}
	if _, err := NewLinearPermutationCoeffs(linearPrime, 5); err == nil {
		t.Error("a=p accepted (zero mod p)")
	}
	p, err := NewLinearPermutationCoeffs(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Apply(10); got != 37 {
		t.Errorf("3*10+7 = %d, want 37", got)
	}
	a, b := p.Coeffs()
	if a != 3 || b != 7 {
		t.Errorf("Coeffs() = %d, %d", a, b)
	}
}

// Compile must be a semantics-preserving transformation.
func TestCompileEquivalence(t *testing.T) {
	for _, p := range allPerms(t, 5) {
		c := Compile(p)
		if c.Family() != p.Family() {
			t.Errorf("Compile changed family %v -> %v", p.Family(), c.Family())
		}
		err := quick.Check(func(x uint32) bool { return p.Apply(x) == c.Apply(x) }, &quick.Config{MaxCount: 5000})
		if err != nil {
			t.Errorf("%v: compiled mismatch: %v", p.Family(), err)
		}
	}
}

func TestCompiledSchemeIdentifiersMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s, err := NewScheme(ApproxMinWise, 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	cs := s.Compiled()
	wl := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		lo := wl.Int63n(1000)
		q := rangeset.Range{Lo: lo, Hi: lo + wl.Int63n(100)}
		a, b := s.Identifiers(q), cs.Identifiers(q)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("identifier mismatch for %v group %d: %08x != %08x", q, j, a[j], b[j])
			}
		}
	}
}

// The defining property of min-wise hashing: Pr[h(Q) == h(R)] ≈
// Jaccard(Q, R). Linear permutations are (approximately) min-wise
// independent, so the property holds across the similarity scale.
func TestLinearMinHashCollisionProbability(t *testing.T) {
	cases := []struct {
		q, r rangeset.Range
	}{
		{rangeset.Range{Lo: 30, Hi: 50}, rangeset.Range{Lo: 30, Hi: 49}}, // sim ≈ 0.95
		{rangeset.Range{Lo: 0, Hi: 99}, rangeset.Range{Lo: 50, Hi: 149}}, // sim = 1/3
		{rangeset.Range{Lo: 0, Hi: 9}, rangeset.Range{Lo: 100, Hi: 109}}, // sim = 0
		{rangeset.Range{Lo: 10, Hi: 20}, rangeset.Range{Lo: 10, Hi: 20}}, // sim = 1
	}
	const trials = 3000
	rng := rand.New(rand.NewSource(8))
	for _, c := range cases {
		coll := 0
		for i := 0; i < trials; i++ {
			p := NewLinearPermutation(rng)
			if MinHash(p, c.q) == MinHash(p, c.r) {
				coll++
			}
		}
		got := float64(coll) / trials
		want := c.q.Jaccard(c.r)
		// 4-sigma tolerance for a binomial estimate.
		tol := 4*0.5/67 + 0.02 // ~0.05
		if got < want-tol || got > want+tol {
			t.Errorf("Pr[h(%v)=h(%v)] = %.3f, want ≈ %.3f", c.q, c.r, got, want)
		}
	}
}

// The bit-shuffle families are only approximately min-wise: the shuffle
// preserves popcount (and fixes 0), biasing the argmin toward low-popcount
// elements. The locality property the system needs still holds: identical
// sets always collide, disjoint sets never do (injectivity), and
// high-similarity sets collide with high probability.
func TestBitShuffleMinHashQualitative(t *testing.T) {
	const trials = 2000
	for _, f := range []Family{MinWise, ApproxMinWise} {
		rng := rand.New(rand.NewSource(9))
		same := rangeset.Range{Lo: 10, Hi: 20}
		disjA := rangeset.Range{Lo: 0, Hi: 9}
		disjB := rangeset.Range{Lo: 100, Hi: 109}
		simQ := rangeset.Range{Lo: 30, Hi: 50}
		simR := rangeset.Range{Lo: 30, Hi: 49} // Jaccard ≈ 0.95
		var collSame, collDisj, collSim int
		for i := 0; i < trials; i++ {
			p, err := NewPermutation(f, rng)
			if err != nil {
				t.Fatal(err)
			}
			cp := Compile(p)
			if MinHash(cp, same) == MinHash(cp, same) {
				collSame++
			}
			if MinHash(cp, disjA) == MinHash(cp, disjB) {
				collDisj++
			}
			if MinHash(cp, simQ) == MinHash(cp, simR) {
				collSim++
			}
		}
		if collSame != trials {
			t.Errorf("%v: identical sets collided %d/%d times, want always", f, collSame, trials)
		}
		if collDisj != 0 {
			t.Errorf("%v: disjoint sets collided %d times, want never (injectivity)", f, collDisj)
		}
		if frac := float64(collSim) / trials; frac < 0.60 {
			t.Errorf("%v: 0.95-similar sets collided only %.2f of the time", f, frac)
		}
	}
}

// The approximate family is a weaker hash; its collision probability
// should still be monotone in similarity and exact at the endpoints.
func TestApproxMinHashEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	same := rangeset.Range{Lo: 5, Hi: 25}
	for i := 0; i < 500; i++ {
		p := NewApproxPermutation(rng)
		if MinHash(p, same) != MinHash(p, same) {
			t.Fatal("identical ranges must always collide")
		}
	}
}

func TestMinHashSetMatchesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, p := range allPerms(t, 11) {
		cp := Compile(p)
		for i := 0; i < 100; i++ {
			lo := rng.Int63n(500)
			q := rangeset.Range{Lo: lo, Hi: lo + rng.Int63n(50)}
			if got, want := MinHashSet(cp, rangeset.NewSet(q)), MinHash(cp, q); got != want {
				t.Fatalf("%v: MinHashSet = %08x, MinHash = %08x for %v", p.Family(), got, want, q)
			}
		}
	}
}

func TestNewGroupValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	if _, err := NewGroup(MinWise, 0, rng); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewScheme(MinWise, 2, 0, rng); err == nil {
		t.Error("l=0 accepted")
	}
}

func TestSchemeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s, err := NewDefaultScheme(Linear, rng)
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != DefaultK || s.L() != DefaultL {
		t.Errorf("default scheme is (%d,%d), want (%d,%d)", s.K(), s.L(), DefaultK, DefaultL)
	}
	ids := s.Identifiers(rangeset.Range{Lo: 0, Hi: 10})
	if len(ids) != DefaultL {
		t.Errorf("Identifiers returned %d ids, want %d", len(ids), DefaultL)
	}
	// Deterministic: same scheme, same input, same ids.
	ids2 := s.Identifiers(rangeset.Range{Lo: 0, Hi: 10})
	for i := range ids {
		if ids[i] != ids2[i] {
			t.Error("identifiers are not deterministic")
		}
	}
}

// Identical ranges always agree on every group; that is what makes exact
// repeats always findable.
func TestSchemeExactAlwaysCollides(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, f := range Families() {
		s, err := NewScheme(f, 5, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		q := rangeset.Range{Lo: 42, Hi: 77}
		a, b := s.Identifiers(q), s.Identifiers(q)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: identical range produced different identifiers", f)
			}
		}
	}
}

func TestCollideProbability(t *testing.T) {
	// Step shape at k=20, l=5: near 0 at sim 0.5, near 1 at sim 0.99.
	if p := CollideProbability(0.5, 20, 5); p > 0.01 {
		t.Errorf("P(collide | sim=0.5) = %g, want ~0", p)
	}
	if p := CollideProbability(0.99, 20, 5); p < 0.90 {
		t.Errorf("P(collide | sim=0.99) = %g, want near 1", p)
	}
	// Monotone in similarity.
	prev := 0.0
	for s := 0.0; s <= 1.0; s += 0.01 {
		p := CollideProbability(s, 20, 5)
		if p < prev-1e-12 {
			t.Fatalf("collision probability not monotone at sim=%.2f", s)
		}
		prev = p
	}
}

// The group identifier is the XOR of member min-hashes; verify against a
// manual computation.
func TestGroupIdentifierIsXOROfMinHashes(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g, err := NewGroup(Linear, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	q := rangeset.Range{Lo: 10, Hi: 30}
	var want ID
	for _, p := range g.perms {
		want ^= MinHash(p, q)
	}
	if got := g.Identifier(q); got != mix32(want) {
		t.Errorf("Identifier = %08x, want mix32(%08x)", got, want)
	}
}

// TestIdentifierSpread verifies the Fig. 11 prerequisite: group
// identifiers must spread across the whole 32-bit ring, not concentrate
// in the low region where raw min-hash XORs land. We check that the
// identifiers of a realistic workload occupy all 16 top-nibble buckets
// roughly uniformly.
func TestIdentifierSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	s, err := NewDefaultScheme(ApproxMinWise, rng)
	if err != nil {
		t.Fatal(err)
	}
	cs := s.Compiled()
	wl := rand.New(rand.NewSource(21))
	counts := make([]int, 16)
	total := 0
	for i := 0; i < 400; i++ {
		a, b := wl.Int63n(1001), wl.Int63n(1001)
		if a > b {
			a, b = b, a
		}
		for _, id := range cs.Identifiers(rangeset.Range{Lo: a, Hi: b}) {
			counts[id>>28]++
			total++
		}
	}
	for nib, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.01 || frac > 0.20 {
			t.Errorf("top nibble %x holds %.1f%% of identifiers (want ≈ 6.25%%)", nib, 100*frac)
		}
	}
}

// TestMix32Bijective samples the avalanche mix for collisions; as a
// bijection it must never map two inputs to one output.
func TestMix32Bijective(t *testing.T) {
	seen := make(map[uint32]uint32, 1<<16)
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 1<<16; i++ {
		x := rng.Uint32()
		y := mix32(x)
		if prev, ok := seen[y]; ok && prev != x {
			t.Fatalf("mix32 collision: %08x and %08x -> %08x", x, prev, y)
		}
		seen[y] = x
	}
}
