package minhash

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"p2prange/internal/rangeset"
)

// ID is a 32-bit identifier in the DHT's identifier space.
type ID = uint32

// MinHash returns min{pi(v) : v in q}, iterating the value set of the
// range. The work is linear in the range size, which is exactly the cost
// the paper measures in Fig. 5.
func MinHash(p Permutation, q rangeset.Range) ID {
	minv := uint32(math.MaxUint32)
	for v := q.Lo; v <= q.Hi; v++ {
		if h := p.Apply(uint32(uint64(v))); h < minv {
			minv = h
		}
	}
	return minv
}

// MinHashSet is MinHash over a multi-interval set.
func MinHashSet(p Permutation, s rangeset.Set) ID {
	minv := uint32(math.MaxUint32)
	s.Iterate(func(v int64) bool {
		if h := p.Apply(uint32(uint64(v))); h < minv {
			minv = h
		}
		return true
	})
	return minv
}

// Group is one group g = {h1, ..., hk} of k permutations. Its identifier
// for a range is the XOR of the k min-hashes, following the pseudocode in
// Section 4 of the paper (identifier[l] ^= h[i](Q)), passed through a
// bijective avalanche mix. Two ranges with Jaccard similarity p agree on
// a group with probability p^k.
//
// The mix step is the consistent-hashing detail the paper leaves
// implicit: min-hashes are minima, so they concentrate near the bottom of
// the 32-bit space (E[min of n uniform draws] ≈ 2^32/n), and the XOR of k
// of them inherits that bias — without mixing, every bucket lands on a
// tiny arc of the ring and a handful of peers absorb the entire load,
// destroying the Fig. 11 balance the paper reports. Because the mix is a
// bijection, bucket contents (and therefore all match-quality behavior)
// are unchanged; only ring placement spreads out.
type Group struct {
	perms []Permutation
}

// mix32 is the 32-bit murmur3 finalizer: a bijective avalanche function.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// NewGroup draws k permutations of family f from rng.
func NewGroup(f Family, k int, rng *rand.Rand) (*Group, error) {
	if k <= 0 {
		return nil, fmt.Errorf("minhash: group size k must be positive, got %d", k)
	}
	perms := make([]Permutation, k)
	for i := range perms {
		p, err := NewPermutation(f, rng)
		if err != nil {
			return nil, err
		}
		perms[i] = p
	}
	return &Group{perms: perms}, nil
}

// K returns the number of permutations in the group.
func (g *Group) K() int { return len(g.perms) }

// Identifier computes the group's 32-bit identifier for q.
func (g *Group) Identifier(q rangeset.Range) ID {
	var id ID
	for _, p := range g.perms {
		id ^= MinHash(p, q)
	}
	return mix32(id)
}

// IdentifierSet computes the group's identifier for a multi-interval set.
func (g *Group) IdentifierSet(s rangeset.Set) ID {
	var id ID
	for _, p := range g.perms {
		id ^= MinHashSet(p, s)
	}
	return mix32(id)
}

// Scheme is the paper's full hashing scheme: l groups of k permutations.
// A range is stored under (up to) l identifiers; a lookup probes the same
// l identifiers. With pairwise Jaccard similarity p, at least one group
// collides with probability 1 - (1 - p^k)^l. The paper uses k=20, l=5,
// which approximates a step function with its step at similarity 0.9.
type Scheme struct {
	family Family
	groups []*Group

	// compileOnce/compiled cache the byte-table form so Compiled() is
	// idempotent and allocation-free after the first call (see compile.go).
	compileOnce sync.Once
	compiled    *Scheme
}

// Default scheme parameters from the paper (Sec. 5.1).
const (
	DefaultK = 20
	DefaultL = 5
)

// NewScheme builds a scheme of l groups of k permutations of family f,
// drawing all key material from rng (deterministic for a seeded rng).
func NewScheme(f Family, k, l int, rng *rand.Rand) (*Scheme, error) {
	if l <= 0 {
		return nil, fmt.Errorf("minhash: group count l must be positive, got %d", l)
	}
	groups := make([]*Group, l)
	for i := range groups {
		g, err := NewGroup(f, k, rng)
		if err != nil {
			return nil, err
		}
		groups[i] = g
	}
	return &Scheme{family: f, groups: groups}, nil
}

// NewDefaultScheme builds the paper's k=20, l=5 scheme.
func NewDefaultScheme(f Family, rng *rand.Rand) (*Scheme, error) {
	return NewScheme(f, DefaultK, DefaultL, rng)
}

// Family returns the permutation family the scheme draws from.
func (s *Scheme) Family() Family { return s.family }

// K returns the group size.
func (s *Scheme) K() int { return s.groups[0].K() }

// L returns the number of groups.
func (s *Scheme) L() int { return len(s.groups) }

// Identifiers computes the l identifiers of q, one per group.
func (s *Scheme) Identifiers(q rangeset.Range) []ID {
	ids := make([]ID, len(s.groups))
	for i, g := range s.groups {
		ids[i] = g.Identifier(q)
	}
	return ids
}

// IdentifiersSet computes the l identifiers of a multi-interval set.
func (s *Scheme) IdentifiersSet(q rangeset.Set) []ID {
	ids := make([]ID, len(s.groups))
	for i, g := range s.groups {
		ids[i] = g.IdentifierSet(q)
	}
	return ids
}

// CollideProbability returns the theoretical probability 1 - (1 - p^k)^l
// that two ranges with Jaccard similarity p agree on at least one group.
func CollideProbability(p float64, k, l int) float64 {
	return 1 - math.Pow(1-math.Pow(p, float64(k)), float64(l))
}
