package minhash

import (
	"container/list"

	"p2prange/internal/rangeset"
)

// sigLRU is a bounded least-recently-used cache of signatures keyed by
// their exact range (rangeset.Range is comparable, so it keys the map
// directly). Besides exact lookups it answers containment queries — the
// largest cached range lying inside a requested range — which is how the
// signer finds extension bases for padded and overlapping queries. The
// containment scan is linear in the cache size, which the capacity bound
// keeps small and predictable.
//
// sigLRU is not synchronized; the Signer serializes access.
type sigLRU struct {
	cap   int
	items map[rangeset.Range]*list.Element
	order *list.List // front = most recently used; values are *Signature
}

func newSigLRU(capacity int) *sigLRU {
	return &sigLRU{
		cap:   capacity,
		items: make(map[rangeset.Range]*list.Element, capacity),
		order: list.New(),
	}
}

// get returns the signature cached for exactly q, refreshing its
// recency, or nil.
func (c *sigLRU) get(q rangeset.Range) *Signature {
	el, ok := c.items[q]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*Signature)
}

// bestContained returns the cached signature whose range lies inside q
// and covers the most values (ties keep the first found), refreshing its
// recency, or nil. A range equal to q also qualifies, but callers resolve
// that cheaper case through get first.
func (c *sigLRU) bestContained(q rangeset.Range) *Signature {
	var best *list.Element
	var bestSize int64
	for el := c.order.Front(); el != nil; el = el.Next() {
		r := el.Value.(*Signature).rng
		if q.ContainsRange(r) && r.Size() > bestSize {
			best, bestSize = el, r.Size()
		}
	}
	if best == nil {
		return nil
	}
	c.order.MoveToFront(best)
	return best.Value.(*Signature)
}

// put inserts (or refreshes) sig under its range and returns how many
// entries were evicted to respect the capacity bound.
func (c *sigLRU) put(sig *Signature) int {
	if el, ok := c.items[sig.rng]; ok {
		el.Value = sig
		c.order.MoveToFront(el)
		return 0
	}
	c.items[sig.rng] = c.order.PushFront(sig)
	evicted := 0
	for c.order.Len() > c.cap {
		el := c.order.Back()
		delete(c.items, el.Value.(*Signature).rng)
		c.order.Remove(el)
		evicted++
	}
	return evicted
}

// len returns the number of cached signatures.
func (c *sigLRU) len() int { return c.order.Len() }
