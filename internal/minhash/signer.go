package minhash

import (
	"fmt"
	"math"
	"sync"

	"p2prange/internal/metrics"
	"p2prange/internal/rangeset"
)

// Signature is the reusable product of signing a range: the running
// minimum of every one of a scheme's k*l permutations over the range's
// value set, in group-major order. The l identifiers derive from it by
// XOR-folding each group of k minima and mixing (exactly as
// Scheme.Identifiers does). Keeping the per-permutation minima rather
// than the folded identifiers is what makes incremental extension
// possible: minima are monotone under range growth, XOR is not.
type Signature struct {
	rng  rangeset.Range
	k    int
	mins []uint32
}

// Range returns the range the signature covers.
func (sig *Signature) Range() rangeset.Range { return sig.rng }

// Identifiers folds the signature into its l bucket identifiers,
// bit-identical to Scheme.Identifiers over the same range.
func (sig *Signature) Identifiers() []ID {
	l := len(sig.mins) / sig.k
	ids := make([]ID, l)
	for g := 0; g < l; g++ {
		var id ID
		for _, m := range sig.mins[g*sig.k : (g+1)*sig.k] {
			id ^= m
		}
		ids[g] = mix32(id)
	}
	return ids
}

// clone returns an independent copy (cached signatures are shared; every
// escape to a caller or mutation goes through a copy).
func (sig *Signature) clone() *Signature {
	out := &Signature{rng: sig.rng, k: sig.k, mins: make([]uint32, len(sig.mins))}
	copy(out.mins, sig.mins)
	return out
}

// Signer is the batched signature pipeline over one Scheme. It computes
// range signatures with the compiled byte-table permutations evaluated
// tile-by-tile (all k*l hash functions fold their minima during a single
// pass over the range, instead of rescanning the range once per hash
// function), extends cached signatures incrementally when a new range
// contains an already-signed one, and optionally memoizes signatures in a
// bounded LRU keyed by range.
//
// Identifiers are bit-identical to the naive Scheme path for every hash
// family — the pipeline changes evaluation order and reuse, never key
// material or semantics — so Signer satisfies Hasher and is a drop-in
// replacement anywhere a Scheme is used.
//
// A Signer is safe for concurrent use.
type Signer struct {
	scheme *Scheme
	perms  []Permutation // flattened k*l compiled permutations, group-major
	tabs   []*compiledPerm
	k, l   int

	workers int
	stats   *metrics.SigStats

	mu    sync.Mutex
	cache *sigLRU
}

// SignerOption configures a Signer.
type SignerOption func(*Signer)

// WithSigCache bounds the signature cache to capacity entries (LRU,
// keyed by exact range); capacity <= 0 disables caching. The cache also
// serves as the pool of extension bases: a miss whose range contains a
// cached range pays only for the delta values.
func WithSigCache(capacity int) SignerOption {
	return func(s *Signer) {
		if capacity > 0 {
			s.cache = newSigLRU(capacity)
		} else {
			s.cache = nil
		}
	}
}

// WithWorkers signs large ranges with n goroutines, each folding a
// disjoint slice of the permutations. n <= 1 keeps signing serial — the
// default, and the right choice for simulations where single-threaded
// timing determinism matters. Identifiers are identical either way.
func WithWorkers(n int) SignerOption {
	return func(s *Signer) { s.workers = n }
}

// WithSigStats directs pipeline counters (hits, misses, extensions,
// evictions) to st; st may be shared across signers to aggregate totals.
func WithSigStats(st *metrics.SigStats) SignerOption {
	return func(s *Signer) { s.stats = st }
}

// NewSigner builds the pipeline over scheme. The scheme is compiled at
// most once (Compiled is cached and idempotent), so many signers over the
// same scheme share one set of byte tables.
func NewSigner(scheme *Scheme, opts ...SignerOption) *Signer {
	cs := scheme.Compiled()
	s := &Signer{scheme: cs, k: cs.K(), l: cs.L()}
	s.perms = make([]Permutation, 0, s.k*s.l)
	for _, g := range cs.groups {
		s.perms = append(s.perms, g.perms...)
	}
	// When every permutation is a byte-table form (the two bit-shuffle
	// families) the fold loop can use direct table indexing with no
	// interface calls; linear permutations fall back to Apply.
	tabs := make([]*compiledPerm, len(s.perms))
	allTables := true
	for i, p := range s.perms {
		cp, ok := p.(*compiledPerm)
		if !ok {
			allTables = false
			break
		}
		tabs[i] = cp
	}
	if allTables {
		s.tabs = tabs
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Scheme returns the (compiled) scheme the signer evaluates.
func (s *Signer) Scheme() *Scheme { return s.scheme }

// L implements Hasher.
func (s *Signer) L() int { return s.l }

// Identifiers implements Hasher: the l bucket identifiers of q, through
// the cached/batched pipeline.
func (s *Signer) Identifiers(q rangeset.Range) []ID {
	return s.Sign(q).Identifiers()
}

// Sign returns the signature of q, reusing the cache when enabled: an
// exact hit returns the memoized signature, a cached subrange of q is
// extended by folding only the values of q it lacks, and otherwise a full
// batched pass runs. The returned signature is the caller's to keep.
func (s *Signer) Sign(q rangeset.Range) *Signature {
	if s.cache == nil || !q.Valid() {
		sig := s.signFull(q)
		s.stats.AddMiss()
		return sig
	}
	s.mu.Lock()
	if sig := s.cache.get(q); sig != nil {
		s.mu.Unlock()
		s.stats.AddHit()
		return sig.clone()
	}
	base := s.cache.bestContained(q)
	s.mu.Unlock()

	var sig *Signature
	if base != nil {
		// Extend counts the event and clones; base stays cached untouched.
		ext, err := s.Extend(base, q)
		if err == nil {
			sig = ext
		}
	}
	if sig == nil {
		sig = s.signFull(q)
		s.stats.AddMiss()
	}
	s.mu.Lock()
	evicted := s.cache.put(sig.clone())
	s.mu.Unlock()
	for ; evicted > 0; evicted-- {
		s.stats.AddEviction()
	}
	return sig
}

// Extend returns the signature of to, which must contain sig's range,
// folding only the values of to outside sig's range — the incremental
// path that lets overlapping and padded query ranges (query [lo,hi]
// followed by probe [lo-d, hi+d]) pay for their delta instead of a full
// rehash. sig is not modified. Extending to the identical range returns a
// copy.
func (s *Signer) Extend(sig *Signature, to rangeset.Range) (*Signature, error) {
	if !to.Valid() || !to.ContainsRange(sig.rng) {
		return nil, fmt.Errorf("minhash: cannot extend signature of %s to non-superset %s", sig.rng, to)
	}
	if sig.k != s.k || len(sig.mins) != s.k*s.l {
		return nil, fmt.Errorf("minhash: signature shape (k=%d, %d minima) does not match signer (k=%d, l=%d)",
			sig.k, len(sig.mins), s.k, s.l)
	}
	out := sig.clone()
	out.rng = to
	if to.Lo < sig.rng.Lo {
		s.fold(out.mins, to.Lo, sig.rng.Lo-1)
	}
	if to.Hi > sig.rng.Hi {
		s.fold(out.mins, sig.rng.Hi+1, to.Hi)
	}
	s.stats.AddExtend()
	return out, nil
}

// signFull computes a signature from scratch with the batched kernel.
func (s *Signer) signFull(q rangeset.Range) *Signature {
	sig := &Signature{rng: q, k: s.k, mins: make([]uint32, s.k*s.l)}
	for i := range sig.mins {
		sig.mins[i] = math.MaxUint32
	}
	if q.Valid() {
		s.fold(sig.mins, q.Lo, q.Hi)
	}
	return sig
}

// sigTile is the batch width of the fold kernel: values are walked in
// tiles this long, and within a tile every permutation folds its minimum
// before the next tile starts. The tile is small enough to stay in L1
// while each permutation's 4 KiB of byte tables stays hot for the whole
// tile, so the full range is effectively traversed once instead of once
// per hash function (the per-hash-function rescan is what Fig. 5's naive
// path pays).
const sigTile = 256

// parallelMin is the minimum range size worth fanning out to workers.
const parallelMin = 512

// fold lowers mins with the hashes of every value in [lo, hi] under every
// permutation. mins is group-major, like Signer.perms.
func (s *Signer) fold(mins []uint32, lo, hi int64) {
	if hi < lo {
		return
	}
	if s.workers > 1 && hi-lo+1 >= parallelMin {
		s.foldParallel(mins, lo, hi)
		return
	}
	s.foldSlice(mins, 0, len(mins), lo, hi)
}

// foldParallel splits the permutations (not the range) across workers:
// each goroutine owns a disjoint slice of mins, so there is no sharing to
// synchronize and the result is deterministic regardless of schedule.
func (s *Signer) foldParallel(mins []uint32, lo, hi int64) {
	w := s.workers
	if w > len(mins) {
		w = len(mins)
	}
	chunk := (len(mins) + w - 1) / w
	var wg sync.WaitGroup
	for p0 := 0; p0 < len(mins); p0 += chunk {
		p1 := p0 + chunk
		if p1 > len(mins) {
			p1 = len(mins)
		}
		wg.Add(1)
		go func(p0, p1 int) {
			defer wg.Done()
			s.foldSlice(mins, p0, p1, lo, hi)
		}(p0, p1)
	}
	wg.Wait()
}

// foldSlice folds permutations [p0, p1) over [lo, hi], tile by tile. The
// tile loop is structured to be overflow-safe for ranges ending near the
// int64 maximum.
func (s *Signer) foldSlice(mins []uint32, p0, p1 int, lo, hi int64) {
	for tileLo := lo; ; {
		tileHi := hi
		if hi-tileLo >= sigTile {
			tileHi = tileLo + sigTile - 1
		}
		if s.tabs != nil {
			for pi := p0; pi < p1; pi++ {
				t := &s.tabs[pi].tab
				m := mins[pi]
				for v := tileLo; ; v++ {
					x := uint32(uint64(v))
					h := t[0][byte(x)] | t[1][byte(x>>8)] | t[2][byte(x>>16)] | t[3][byte(x>>24)]
					if h < m {
						m = h
					}
					if v == tileHi {
						break
					}
				}
				mins[pi] = m
			}
		} else {
			for pi := p0; pi < p1; pi++ {
				p := s.perms[pi]
				m := mins[pi]
				for v := tileLo; ; v++ {
					if h := p.Apply(uint32(uint64(v))); h < m {
						m = h
					}
					if v == tileHi {
						break
					}
				}
				mins[pi] = m
			}
		}
		if tileHi == hi {
			return
		}
		tileLo = tileHi + 1
	}
}

// SigStats returns a snapshot of the signer's pipeline counters (zero
// when no stats sink is configured).
func (s *Signer) SigStats() metrics.SigSnapshot { return s.stats.Snapshot() }
