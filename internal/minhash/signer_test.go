package minhash

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"p2prange/internal/metrics"
	"p2prange/internal/rangeset"
)

// randRange draws a range of size in [1, maxSize] starting in [0, 100000).
func randRange(rng *rand.Rand, maxSize int64) rangeset.Range {
	lo := rng.Int63n(100000)
	return rangeset.Range{Lo: lo, Hi: lo + rng.Int63n(maxSize)}
}

// TestSignerGoldenEquivalence pins the pipeline's core contract: for every
// hash family, the batched signer — plain, cached, and parallel — produces
// identifiers bit-identical to the naive per-permutation Scheme path.
func TestSignerGoldenEquivalence(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			scheme, err := NewScheme(f, 4, 3, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			signers := map[string]*Signer{
				"plain":    NewSigner(scheme),
				"cached":   NewSigner(scheme, WithSigCache(16)),
				"parallel": NewSigner(scheme, WithWorkers(4)),
			}
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 40; i++ {
				q := randRange(rng, 700)
				want := scheme.Identifiers(q)
				for name, s := range signers {
					if got := s.Identifiers(q); !reflect.DeepEqual(got, want) {
						t.Fatalf("%s signer: identifiers of %s = %08x, naive scheme = %08x", name, q, got, want)
					}
				}
			}
		})
	}
}

// TestExtendEqualsFromScratch is the property test for incremental
// signing: for random ranges split at random points, signing the prefix
// and extending to the whole equals signing the whole from scratch.
func TestExtendEqualsFromScratch(t *testing.T) {
	scheme, err := NewScheme(ApproxMinWise, 5, 4, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSigner(scheme)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		full := randRange(rng, 1000)
		// Random subrange [subLo, subHi] of full.
		subLo := full.Lo + rng.Int63n(full.Size())
		subHi := subLo + rng.Int63n(full.Hi-subLo+1)
		sub := rangeset.Range{Lo: subLo, Hi: subHi}

		base := s.Sign(sub)
		got, err := s.Extend(base, full)
		if err != nil {
			t.Fatalf("Extend(%s, %s): %v", sub, full, err)
		}
		want := s.Sign(full)
		if got.Range() != full {
			t.Fatalf("extended signature covers %s, want %s", got.Range(), full)
		}
		if !reflect.DeepEqual(got.mins, want.mins) {
			t.Fatalf("extend %s -> %s: minima differ from scratch signing", sub, full)
		}
		if !reflect.DeepEqual(got.Identifiers(), want.Identifiers()) {
			t.Fatalf("extend %s -> %s: identifiers differ from scratch signing", sub, full)
		}
		// The base signature must be untouched by the extension.
		if base.Range() != sub {
			t.Fatalf("Extend mutated its input's range to %s", base.Range())
		}
	}
}

func TestExtendRejectsNonSuperset(t *testing.T) {
	scheme, err := NewScheme(Linear, 2, 2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSigner(scheme)
	sig := s.Sign(rangeset.Range{Lo: 10, Hi: 20})
	for _, to := range []rangeset.Range{
		{Lo: 11, Hi: 30}, // cuts the low end
		{Lo: 0, Hi: 19},  // cuts the high end
		{Lo: 21, Hi: 30}, // disjoint
		{Lo: 30, Hi: 20}, // invalid
	} {
		if _, err := s.Extend(sig, to); err == nil {
			t.Errorf("Extend to %s: want error, got nil", to)
		}
	}
	// A same-range extension is a no-op copy.
	same, err := s.Extend(sig, sig.Range())
	if err != nil {
		t.Fatalf("Extend to same range: %v", err)
	}
	if !reflect.DeepEqual(same.mins, sig.mins) {
		t.Error("same-range extension changed minima")
	}
}

// TestSignerCachePinned is the regression test for cache behavior: the
// exact sequence of hits, misses, extensions, and evictions is pinned.
func TestSignerCachePinned(t *testing.T) {
	scheme, err := NewScheme(ApproxMinWise, 3, 2, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	st := &metrics.SigStats{}
	s := NewSigner(scheme, WithSigCache(2), WithSigStats(st))

	q1 := rangeset.Range{Lo: 100, Hi: 200}
	q1pad := rangeset.Range{Lo: 90, Hi: 210} // padded probe containing q1
	q2 := rangeset.Range{Lo: 5000, Hi: 5100}
	q3 := rangeset.Range{Lo: 9000, Hi: 9050}

	naive := scheme.Identifiers
	steps := []struct {
		q    rangeset.Range
		want metrics.SigSnapshot
	}{
		{q1, metrics.SigSnapshot{Misses: 1}},                                       // cold
		{q1, metrics.SigSnapshot{Misses: 1, Hits: 1}},                              // exact hit
		{q1pad, metrics.SigSnapshot{Misses: 1, Hits: 1, Extends: 1}},               // delta only
		{q2, metrics.SigSnapshot{Misses: 2, Hits: 1, Extends: 1, Evictions: 1}},    // q1 evicted (LRU)
		{q1pad, metrics.SigSnapshot{Misses: 2, Hits: 2, Extends: 1, Evictions: 1}}, // still cached
		{q3, metrics.SigSnapshot{Misses: 3, Hits: 2, Extends: 1, Evictions: 2}},    // q2 evicted
		{q1pad, metrics.SigSnapshot{Misses: 3, Hits: 3, Extends: 1, Evictions: 2}}, // survived again
		{q1, metrics.SigSnapshot{Misses: 4, Hits: 3, Extends: 1, Evictions: 3}},    // shrink = miss
	}
	for i, step := range steps {
		if got, want := s.Identifiers(step.q), naive(step.q); !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: identifiers of %s = %08x, naive = %08x", i, step.q, got, want)
		}
		if got := st.Snapshot(); got != step.want {
			t.Fatalf("step %d (%s): stats = %+v, want %+v", i, step.q, got, step.want)
		}
	}
}

// TestSignerCacheConcurrent hammers one cached signer from many
// goroutines (exercised under -race by `make check`): results must stay
// bit-identical to the naive path and every request must be accounted as
// exactly one hit, miss, or extension.
func TestSignerCacheConcurrent(t *testing.T) {
	scheme, err := NewScheme(MinWise, 3, 2, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	st := &metrics.SigStats{}
	s := NewSigner(scheme, WithSigCache(32), WithSigStats(st))

	// A small pool of overlapping ranges so goroutines collide on cache
	// entries, plus per-goroutine unique ranges so eviction churns.
	shared := []rangeset.Range{
		{Lo: 0, Hi: 150}, {Lo: 0, Hi: 200}, {Lo: 50, Hi: 180}, {Lo: 10, Hi: 120},
	}
	want := make([][]ID, len(shared))
	for i, q := range shared {
		want[i] = scheme.Identifiers(q)
	}

	const goroutines = 8
	const iters = 60
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < iters; i++ {
				si := rng.Intn(len(shared))
				if got := s.Identifiers(shared[si]); !reflect.DeepEqual(got, want[si]) {
					errc <- errMismatch(shared[si])
					return
				}
				lo := int64(g*10000 + i)
				s.Sign(rangeset.Range{Lo: lo, Hi: lo + 40})
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if got, wantN := snap.Total(), uint64(goroutines*iters*2); got != wantN {
		t.Fatalf("accounted %d signing requests (%+v), want %d", got, snap, wantN)
	}
	if snap.Hits == 0 {
		t.Error("expected cache hits on the shared ranges, got none")
	}
}

type errMismatch rangeset.Range

func (e errMismatch) Error() string {
	return "cached identifiers diverged from naive path for " + rangeset.Range(e).String()
}

// TestCompileIdempotent pins the compilation contract: Compile returns
// already-compiled (and uncompilable) permutations unchanged, and
// Scheme.Compiled caches its result and is a fixpoint.
func TestCompileIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	full := NewFullPermutation(rng)
	once := Compile(full)
	if Compile(once) != once {
		t.Error("Compile(Compile(p)) allocated a new permutation")
	}
	lin := NewLinearPermutation(rng)
	if Compile(lin) != Permutation(lin) {
		t.Error("Compile changed a linear permutation")
	}

	scheme, err := NewScheme(MinWise, 2, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	c1 := scheme.Compiled()
	if c2 := scheme.Compiled(); c2 != c1 {
		t.Error("Scheme.Compiled allocated a second compiled scheme")
	}
	if c1.Compiled() != c1 {
		t.Error("Compiled() of a compiled scheme is not itself")
	}
	// An all-linear scheme needs no compilation at all.
	linScheme, err := NewScheme(Linear, 2, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if linScheme.Compiled() != linScheme {
		t.Error("Compiled() of an uncompilable scheme is not the receiver")
	}
}

// TestSignerHasher pins that Signer satisfies Hasher and reports the
// scheme's shape.
func TestSignerHasher(t *testing.T) {
	scheme, err := NewDefaultScheme(Linear, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	var h Hasher = NewSigner(scheme)
	if h.L() != DefaultL {
		t.Fatalf("L() = %d, want %d", h.L(), DefaultL)
	}
	if got := len(h.Identifiers(rangeset.Range{Lo: 1, Hi: 10})); got != DefaultL {
		t.Fatalf("len(Identifiers) = %d, want %d", got, DefaultL)
	}
}
