package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// The durable half of the event journal: events.log is an append-only
// file of framed, checksummed event records under the peer's data
// directory. The framing discipline is the WAL's (docs/DURABILITY.md):
//
//	record := uvarint(len(body)+4) || crc32c(body) little-endian || body
//	body   := sev(1) || uvarint(unix-nanos) || uvarint(len(sub)) || sub
//	          || uvarint(len(msg)) || msg
//
// so the same recovery contract holds — a reboot walks the file, keeps
// the longest valid prefix, truncates the torn tail in place, and never
// refuses to start over a damaged log. Appends are a single write(2)
// with no fsync: events are advisory, a kill -9 loses nothing already
// written and a power cut loses at most the page cache — the crash
// suite in events_test.go pins the torn-tail behavior byte by byte.

// MaxEventRecord bounds one framed event record; larger length prefixes
// are treated as corruption, so a flipped length byte cannot make
// recovery skip megabytes of valid history.
const MaxEventRecord = 1 << 16

// ErrEventCorrupt reports a record that failed structural or checksum
// validation.
var ErrEventCorrupt = errors.New("obs: corrupt event record")

// eventCRC is the WAL's checksum polynomial (Castagnoli).
var eventCRC = crc32.MakeTable(crc32.Castagnoli)

// AppendEventRecord appends e to dst in the framed on-disk form.
func AppendEventRecord(dst []byte, e Event) []byte {
	body := make([]byte, 0, 16+len(e.Sub)+len(e.Msg))
	body = append(body, byte(e.Sev))
	body = binary.AppendUvarint(body, uint64(e.Time.UnixNano()))
	body = binary.AppendUvarint(body, uint64(len(e.Sub)))
	body = append(body, e.Sub...)
	body = binary.AppendUvarint(body, uint64(len(e.Msg)))
	body = append(body, e.Msg...)

	dst = binary.AppendUvarint(dst, uint64(len(body)+4))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, eventCRC))
	return append(dst, body...)
}

// ParseEventRecord decodes one framed record from the front of data,
// returning the event and how many bytes it consumed. Truncated,
// oversized, checksum-failing, or structurally invalid records return
// ErrEventCorrupt (wrapped with the reason); the caller treats the
// position as the torn tail.
func ParseEventRecord(data []byte) (Event, int, error) {
	var e Event
	length, n := binary.Uvarint(data)
	if n <= 0 {
		return e, 0, fmt.Errorf("%w: bad length prefix", ErrEventCorrupt)
	}
	if length < 4 || length > MaxEventRecord {
		return e, 0, fmt.Errorf("%w: implausible record length %d", ErrEventCorrupt, length)
	}
	if uint64(len(data)-n) < length {
		return e, 0, fmt.Errorf("%w: truncated record", ErrEventCorrupt)
	}
	frame := data[n : n+int(length)]
	body := frame[4:]
	if crc32.Checksum(body, eventCRC) != binary.LittleEndian.Uint32(frame[:4]) {
		return e, 0, fmt.Errorf("%w: checksum mismatch", ErrEventCorrupt)
	}
	if len(body) < 1 {
		return e, 0, fmt.Errorf("%w: empty body", ErrEventCorrupt)
	}
	if body[0] > byte(SevError) {
		return e, 0, fmt.Errorf("%w: unknown severity %d", ErrEventCorrupt, body[0])
	}
	e.Sev = Severity(body[0])
	body = body[1:]
	nanos, c := binary.Uvarint(body)
	if c <= 0 || nanos > uint64(1)<<62 {
		return e, 0, fmt.Errorf("%w: bad timestamp", ErrEventCorrupt)
	}
	e.Time = time.Unix(0, int64(nanos)).UTC()
	body = body[c:]
	var err error
	if e.Sub, body, err = parseEventString(body); err != nil {
		return e, 0, err
	}
	if e.Msg, body, err = parseEventString(body); err != nil {
		return e, 0, err
	}
	if len(body) != 0 {
		return e, 0, fmt.Errorf("%w: %d trailing byte(s)", ErrEventCorrupt, len(body))
	}
	return e, n + int(length), nil
}

// parseEventString decodes one length-prefixed string from the body.
func parseEventString(body []byte) (string, []byte, error) {
	l, c := binary.Uvarint(body)
	if c <= 0 || uint64(len(body)-c) < l {
		return "", nil, fmt.Errorf("%w: bad string", ErrEventCorrupt)
	}
	return string(body[c : c+int(l)]), body[c+int(l):], nil
}

// EventLog is the durable appender. Open it with OpenEventLog, attach
// its Append as a journal sink, Close on shutdown.
type EventLog struct {
	mu   sync.Mutex
	f    *os.File
	path string
	buf  []byte
	err  error // latched first write failure
}

// OpenEventLog opens (or creates) the event log at path, recovers every
// valid record from its prefix, and truncates any torn tail in place so
// the next append starts at a clean boundary. Corruption never fails
// the open — the returned events are simply the longest valid prefix.
func OpenEventLog(path string) (*EventLog, []Event, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	var events []Event
	off := 0
	for off < len(data) {
		e, n, err := ParseEventRecord(data[off:])
		if err != nil {
			break
		}
		events = append(events, e)
		off += n
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(int64(off)); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(int64(off), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &EventLog{f: f, path: path}, events, nil
}

// Append writes one framed record. No fsync: see the package comment
// for the durability contract. A write failure latches (Err) and turns
// further appends into no-ops rather than stalling emitters.
func (l *EventLog) Append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	l.buf = AppendEventRecord(l.buf[:0], e)
	if _, err := l.f.Write(l.buf); err != nil {
		l.err = fmt.Errorf("obs: append %s: %w", l.path, err)
	}
}

// Err returns the latched write failure, nil while healthy.
func (l *EventLog) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close closes the file.
func (l *EventLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
