package obs

import (
	"fmt"
	"sync"
	"time"
)

// The cluster event journal: a severity-tagged, bounded ring of the
// *rare* things a cluster does — suspect markings, replica promotions,
// WAL seals and retention drops, snapshot seeds, recovery summaries —
// that metrics only count and logs scroll away. Instrumented packages
// emit into the process-wide Events journal (mirroring metrics.Default),
// live peers surface it at /debug/events and in /status, and a durable
// sink (EventLog) can append every event to events.log under the data
// directory so postmortems survive the process.

// Severity classifies an event.
type Severity uint8

const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

// String renders the severity the way the JSON encoding and the
// /debug/events surface print it.
func (s Severity) String() string {
	switch s {
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	}
	return "info"
}

// MarshalJSON encodes the severity as its string form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the string form (rangetop decodes /status).
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"info"`:
		*s = SevInfo
	case `"warn"`:
		*s = SevWarn
	case `"error"`:
		*s = SevError
	default:
		return fmt.Errorf("obs: unknown severity %s", b)
	}
	return nil
}

// Event is one journal entry.
type Event struct {
	// Seq orders events within this process's journal (1 = oldest known,
	// including events recovered from a durable log at boot).
	Seq uint64 `json:"seq"`
	// Time is when the event was emitted.
	Time time.Time `json:"time"`
	// Sev is the severity.
	Sev Severity `json:"sev"`
	// Sub names the emitting subsystem ("chord", "replica", "wal",
	// "ship", "peer").
	Sub string `json:"sub"`
	// Msg is the human-readable description.
	Msg string `json:"msg"`
}

// String renders one event line for text surfaces.
func (e Event) String() string {
	return fmt.Sprintf("%s %-5s [%s] %s", e.Time.Format("15:04:05.000"), e.Sev, e.Sub, e.Msg)
}

// DefaultJournalCap is the ring capacity of the process-wide journal.
const DefaultJournalCap = 256

// Journal is a bounded ring of events with optional sinks. All methods
// are safe for concurrent use; emission is a mutex and a slot write, so
// call sites don't need to be rare — just honest about severity.
type Journal struct {
	mu     sync.Mutex
	ring   []Event
	next   int
	filled bool
	seq    uint64
	warns  uint64
	errs   uint64
	sinks  map[int]func(Event)
	sinkID int
}

// Events is the process-wide journal every instrumented package emits
// into, the event-plane analogue of metrics.Default.
var Events = NewJournal(DefaultJournalCap)

// NewJournal builds a journal with the given ring capacity.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{ring: make([]Event, capacity)}
}

// Emitf records one event and forwards it to every sink.
func (j *Journal) Emitf(sev Severity, sub, format string, args ...any) {
	e := Event{Time: time.Now(), Sev: sev, Sub: sub, Msg: fmt.Sprintf(format, args...)}
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	switch sev {
	case SevWarn:
		j.warns++
	case SevError:
		j.errs++
	}
	j.push(e)
	sinks := make([]func(Event), 0, len(j.sinks))
	for _, fn := range j.sinks {
		sinks = append(sinks, fn)
	}
	j.mu.Unlock()
	for _, fn := range sinks {
		fn(e)
	}
}

// push stores e in the ring; callers hold the lock.
func (j *Journal) push(e Event) {
	j.ring[j.next] = e
	j.next++
	if j.next == len(j.ring) {
		j.next = 0
		j.filled = true
	}
}

// Preload seeds the journal with events recovered from a durable log at
// boot, assigning them fresh sequence numbers. Sinks are not invoked —
// a durable sink attached afterwards must not re-journal history.
func (j *Journal) Preload(events []Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range events {
		j.seq++
		e.Seq = j.seq
		switch e.Sev {
		case SevWarn:
			j.warns++
		case SevError:
			j.errs++
		}
		j.push(e)
	}
}

// AddSink registers fn to receive every subsequent event (called
// outside the journal lock, in emission order per emitter). The
// returned function detaches it.
func (j *Journal) AddSink(fn func(Event)) (detach func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.sinks == nil {
		j.sinks = make(map[int]func(Event))
	}
	id := j.sinkID
	j.sinkID++
	j.sinks[id] = fn
	return func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		delete(j.sinks, id)
	}
}

// Recent returns up to n events, newest first (all of them for n <= 0).
func (j *Journal) Recent(n int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	size := j.next
	if j.filled {
		size = len(j.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, j.ring[(j.next-i+len(j.ring))%len(j.ring)])
	}
	return out
}

// Counts returns the journal's lifetime totals: events emitted (or
// preloaded), and how many were warnings and errors.
func (j *Journal) Counts() (total, warns, errs uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq, j.warns, j.errs
}
