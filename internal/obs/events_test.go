package obs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestJournalRingAndCounts(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 6; i++ {
		sev := SevInfo
		if i == 2 {
			sev = SevWarn
		}
		if i == 5 {
			sev = SevError
		}
		j.Emitf(sev, "test", "event %d", i)
	}
	recent := j.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring retained %d events, want 4", len(recent))
	}
	if recent[0].Msg != "event 5" || recent[3].Msg != "event 2" {
		t.Errorf("recent order wrong: %q .. %q", recent[0].Msg, recent[3].Msg)
	}
	if recent[0].Seq != 6 {
		t.Errorf("newest seq = %d, want 6", recent[0].Seq)
	}
	total, warns, errs := j.Counts()
	if total != 6 || warns != 1 || errs != 1 {
		t.Errorf("counts = %d/%d/%d, want 6/1/1", total, warns, errs)
	}
	if got := j.Recent(2); len(got) != 2 || got[0].Msg != "event 5" {
		t.Errorf("Recent(2) = %v", got)
	}
}

func TestJournalSinks(t *testing.T) {
	j := NewJournal(8)
	var got []Event
	detach := j.AddSink(func(e Event) { got = append(got, e) })
	j.Emitf(SevInfo, "a", "one")
	detach()
	j.Emitf(SevInfo, "a", "two")
	if len(got) != 1 || got[0].Msg != "one" {
		t.Fatalf("sink saw %v, want just \"one\"", got)
	}
}

func TestJournalPreloadSkipsSinks(t *testing.T) {
	j := NewJournal(8)
	sunk := 0
	j.AddSink(func(Event) { sunk++ })
	j.Preload([]Event{
		{Sev: SevWarn, Sub: "wal", Msg: "recovered"},
		{Sev: SevInfo, Sub: "peer", Msg: "boot"},
	})
	if sunk != 0 {
		t.Fatalf("preload invoked sinks %d time(s); durable history would be re-journaled", sunk)
	}
	if total, warns, _ := j.Counts(); total != 2 || warns != 1 {
		t.Errorf("counts after preload = %d/%d, want 2/1", total, warns)
	}
	j.Emitf(SevInfo, "peer", "live")
	if got := j.Recent(1)[0].Seq; got != 3 {
		t.Errorf("live event seq = %d, want 3 (after 2 preloaded)", got)
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []Severity{SevInfo, SevWarn, SevError} {
		b, err := sev.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := back.UnmarshalJSON(b); err != nil || back != sev {
			t.Errorf("severity %v round-tripped to %v (%v)", sev, back, err)
		}
	}
	var s Severity
	if err := s.UnmarshalJSON([]byte(`"fatal"`)); err == nil {
		t.Error("unknown severity decoded without error")
	}
}

// seedEvents is the corpus the crash tests write and recover.
func seedEvents() []Event {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return []Event{
		{Time: base, Sev: SevInfo, Sub: "peer", Msg: "boot: recovered 12 partitions"},
		{Time: base.Add(time.Second), Sev: SevWarn, Sub: "chord", Msg: "suspect 7f3a"},
		{Time: base.Add(2 * time.Second), Sev: SevError, Sub: "ship", Msg: "cursor reset: follower behind retention"},
		{Time: base.Add(3 * time.Second), Sev: SevInfo, Sub: "wal", Msg: "compacted segment 00000004"},
	}
}

func TestEventRecordRoundTrip(t *testing.T) {
	for _, e := range seedEvents() {
		buf := AppendEventRecord(nil, e)
		got, n, err := ParseEventRecord(buf)
		if err != nil {
			t.Fatalf("parse %v: %v", e, err)
		}
		if n != len(buf) {
			t.Errorf("consumed %d of %d bytes", n, len(buf))
		}
		if got.Sev != e.Sev || got.Sub != e.Sub || got.Msg != e.Msg || !got.Time.Equal(e.Time) {
			t.Errorf("round trip = %+v, want %+v", got, e)
		}
	}
}

// writeEventFile frames events into path and returns the per-record
// boundary offsets (0, end-of-record-1, ...), the crash suite's cut map.
func writeEventFile(t *testing.T, path string, events []Event) []int {
	t.Helper()
	var buf []byte
	offsets := []int{0}
	for _, e := range events {
		buf = AppendEventRecord(buf, e)
		offsets = append(offsets, len(buf))
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return offsets
}

// TestEventLogTruncationAtEveryOffset is the torn-tail contract: cut
// the file at every byte offset, reboot, and recovery must yield
// exactly the records wholly before the cut — no refusal to start, no
// phantom events, and the file truncated back to the last boundary so
// a post-recovery append lands cleanly.
func TestEventLogTruncationAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	events := seedEvents()
	full := AppendEventRecord(nil, events[0])
	for _, e := range events[1:] {
		full = AppendEventRecord(full, e)
	}
	boundaries := []int{0}
	{
		var buf []byte
		for _, e := range events {
			buf = AppendEventRecord(buf, e)
			boundaries = append(boundaries, len(buf))
		}
	}
	wholeBefore := func(cut int) int {
		n := 0
		for _, b := range boundaries[1:] {
			if b <= cut {
				n++
			}
		}
		return n
	}
	for cut := 0; cut <= len(full); cut++ {
		path := filepath.Join(dir, "events.log")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, recovered, err := OpenEventLog(path)
		if err != nil {
			t.Fatalf("cut %d: open refused: %v", cut, err)
		}
		want := wholeBefore(cut)
		if len(recovered) != want {
			t.Fatalf("cut %d: recovered %d events, want %d", cut, len(recovered), want)
		}
		for i, e := range recovered {
			if e.Msg != events[i].Msg || e.Sev != events[i].Sev {
				t.Fatalf("cut %d: event %d = %+v, want %+v", cut, i, e, events[i])
			}
		}
		// Appending after recovery must produce a log that reboots to
		// prefix + the new record.
		l.Append(Event{Time: time.Unix(0, 1).UTC(), Sev: SevInfo, Sub: "test", Msg: "post-crash"})
		if err := l.Err(); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		l.Close()
		_, again, err := OpenEventLog(path)
		if err != nil {
			t.Fatalf("cut %d: second open: %v", cut, err)
		}
		if len(again) != want+1 || again[len(again)-1].Msg != "post-crash" {
			t.Fatalf("cut %d: after append recovered %d events (last %q), want %d ending post-crash",
				cut, len(again), again[len(again)-1].Msg, want+1)
		}
		os.Remove(path)
	}
}

// TestEventLogBitFlips flips every bit of the on-disk log one at a
// time. Recovery must never refuse to start and must never invent an
// event that was not written: every recovered record is byte-equal to
// one of the originals, in prefix order.
func TestEventLogBitFlips(t *testing.T) {
	dir := t.TempDir()
	events := seedEvents()
	var full []byte
	for _, e := range events {
		full = AppendEventRecord(full, e)
	}
	isOriginal := func(e Event, i int) bool {
		return i < len(events) && e.Sev == events[i].Sev && e.Sub == events[i].Sub &&
			e.Msg == events[i].Msg && e.Time.Equal(events[i].Time)
	}
	for pos := 0; pos < len(full); pos++ {
		for bit := 0; bit < 8; bit++ {
			corrupt := append([]byte(nil), full...)
			corrupt[pos] ^= 1 << bit
			path := filepath.Join(dir, "events.log")
			if err := os.WriteFile(path, corrupt, 0o644); err != nil {
				t.Fatal(err)
			}
			l, recovered, err := OpenEventLog(path)
			if err != nil {
				t.Fatalf("flip %d.%d: open refused: %v", pos, bit, err)
			}
			l.Close()
			for i, e := range recovered {
				if !isOriginal(e, i) {
					t.Fatalf("flip %d.%d: phantom event %d: %+v", pos, bit, i, e)
				}
			}
			os.Remove(path)
		}
	}
}

func TestEventLogAppendReadBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, recovered, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh log recovered %d events", len(recovered))
	}
	for _, e := range seedEvents() {
		l.Append(e)
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, back, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(seedEvents()) {
		t.Fatalf("read back %d events, want %d", len(back), len(seedEvents()))
	}
	for i, e := range back {
		if e.Msg != seedEvents()[i].Msg {
			t.Errorf("event %d = %q, want %q", i, e.Msg, seedEvents()[i].Msg)
		}
	}
}

func TestParseEventRecordRejects(t *testing.T) {
	good := AppendEventRecord(nil, seedEvents()[0])
	cases := map[string][]byte{
		"empty":            nil,
		"huge length":      append([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, good...),
		"zero length":      {0x00},
		"truncated":        good[:len(good)-1],
		"checksum garbage": func() []byte { b := append([]byte(nil), good...); b[1] ^= 0xff; return b }(),
	}
	for name, data := range cases {
		if _, _, err := ParseEventRecord(data); !errors.Is(err, ErrEventCorrupt) {
			t.Errorf("%s: err = %v, want ErrEventCorrupt", name, err)
		}
	}
}

// FuzzEventRecordParse hammers the record parser with mutated bytes: a
// corrupt or truncated record must produce a clean error, and any
// record the parser accepts must re-encode to an identical re-parse —
// the property boot recovery relies on when it walks an events.log of
// unknown integrity. Same invariant FuzzWALRecordParse pins for the WAL.
func FuzzEventRecordParse(f *testing.F) {
	for _, e := range seedEvents() {
		rec := AppendEventRecord(nil, e)
		f.Add(rec)
		for cut := 0; cut < len(rec); cut++ {
			f.Add(rec[:cut])
		}
	}
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<17 {
			return
		}
		e, n, err := ParseEventRecord(data)
		if err != nil {
			if !errors.Is(err, ErrEventCorrupt) {
				t.Fatalf("rejection is not ErrEventCorrupt: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("accepted record consumed %d of %d bytes", n, len(data))
		}
		again := AppendEventRecord(nil, e)
		e2, n2, err := ParseEventRecord(again)
		if err != nil {
			t.Fatalf("re-encoded record failed to parse: %v", err)
		}
		if n2 != len(again) {
			t.Fatalf("re-parse consumed %d of %d bytes", n2, len(again))
		}
		if e2.Sev != e.Sev || e2.Sub != e.Sub || e2.Msg != e.Msg || !e2.Time.Equal(e.Time) {
			t.Errorf("event changed across a round trip:\nfirst:  %+v\nsecond: %+v", e, e2)
		}
	})
}
