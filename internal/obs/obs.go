// Package obs is the cluster-wide observability plane: one peer's
// self-reported status (NodeStatus, served by peerd at /status), the
// merge of many peers' metric snapshots into a cluster view, and the
// rollup statistics — load imbalance, hop and latency percentiles,
// signature-cache hit rate, replica repair counts — that rangetop renders
// live and rangebench emits per experiment.
//
// The same types serve both deployment shapes. Over TCP every peer is
// its own process with its own metrics.Default registry, so rangetop
// polls N /status endpoints and merges the snapshots; in a simulation
// every peer shares one registry, so the cluster view is one snapshot
// plus per-peer stored/served counts read from the peers directly. The
// rollup math is identical either way.
package obs

import (
	"sort"

	"p2prange/internal/metrics"
)

// NodeStatus is one peer's self-description: identity, ring position,
// readiness, its share of the cluster's data and query load, and (for
// live peers) the process-local metrics snapshot.
type NodeStatus struct {
	Addr      string `json:"addr"`
	Ref       string `json:"ref"`
	Successor string `json:"successor"`
	// Stable reports ring-stabilization readiness: the peer knows its
	// predecessor and successor. peerd's /healthz gates on it.
	Stable bool `json:"stable"`
	// Stored is the number of partition descriptors the peer's buckets
	// hold — the per-node load of the paper's Fig. 11.
	Stored int `json:"stored"`
	// Served is how many bucket probes the peer has answered — the
	// query-load measure the load-aware replication balances.
	Served int64 `json:"served"`
	// Metrics is the peer's process-local registry snapshot. Empty for
	// simulated peers, which share one process-wide registry.
	Metrics metrics.Snapshot `json:"metrics,omitempty"`
	// Durable describes the peer's write-ahead log, when one is attached
	// (peerd -data-dir). Nil for memory-only peers.
	Durable *DurableStatus `json:"durable,omitempty"`
	// Ship describes this peer's log-shipping follower, when it tails
	// another peer's WAL (peerd -follow). Nil otherwise.
	Ship *ShipStatus `json:"ship,omitempty"`
	// Flight summarizes the peer's always-on flight recorder. Nil only
	// when recording is disabled (peerd -flight-off).
	Flight *FlightStatus `json:"flight,omitempty"`
	// Events summarizes the peer's cluster event journal.
	Events *EventsStatus `json:"events,omitempty"`
}

// FlightStatus mirrors the flight recorder's rollup (flight.Stats) on
// /status: how many queries finished, how many the tail-based keep
// policy pinned, and the slowest query still in the recent ring — the
// "worst recent query" rangetop shows per peer.
type FlightStatus struct {
	Finished        uint64 `json:"finished"`
	KeptSlow        uint64 `json:"kept_slow"`
	KeptErrored     uint64 `json:"kept_errored"`
	KeptHopHeavy    uint64 `json:"kept_hop_heavy"`
	SlowThresholdUS int64  `json:"slow_threshold_us"`
	WorstUS         int64  `json:"worst_us,omitempty"`
	WorstName       string `json:"worst_name,omitempty"`
	WorstTraceID    string `json:"worst_trace_id,omitempty"`
}

// EventsStatus summarizes the peer's event journal on /status: lifetime
// counts by severity, whether events also land in a durable events.log,
// and the newest few lines for rangetop's events pane.
type EventsStatus struct {
	Total   uint64  `json:"total"`
	Warns   uint64  `json:"warns"`
	Errors  uint64  `json:"errors"`
	Durable bool    `json:"durable,omitempty"`
	Recent  []Event `json:"recent,omitempty"`
}

// DurableStatus mirrors the peer's WAL state (wal.Stats) on /status:
// where the data lives, how far the log has advanced, and whether the
// disk is healthy. Field meanings match docs/DURABILITY.md.
type DurableStatus struct {
	// Dir is the peer's data directory.
	Dir string `json:"dir"`
	// Fsync is the commit barrier mode ("always" or "off").
	Fsync string `json:"fsync"`
	// ActiveSeq is the sequence number of the WAL file being appended.
	ActiveSeq uint64 `json:"active_seq"`
	// SegmentSeq is the newest sealed segment (0 = none yet).
	SegmentSeq uint64 `json:"segment_seq"`
	// Appended and Durable count journaled records and how many of them
	// have reached disk; equal whenever the peer is idle.
	Appended uint64 `json:"appended"`
	Durable  uint64 `json:"durable"`
	// SinceFold counts WAL records not yet folded into a segment — the
	// replay debt a restart right now would pay.
	SinceFold int `json:"since_fold"`
	// Err carries a latched IO or compaction failure; empty is healthy.
	Err string `json:"err,omitempty"`
	// ReadThrough reports segment read-through mode (peerd -mem-limit
	// with -data-dir): the in-memory store is a bounded cache over the
	// sealed segment.
	ReadThrough bool `json:"read_through,omitempty"`
	// Resident is the number of descriptors currently held in memory;
	// at most the configured memory limit, while Stored counts the full
	// working set (memory + segment). Only set in read-through mode.
	Resident int `json:"resident,omitempty"`
	// IndexRebuilt reports that boot found the newest segment's index
	// footer damaged and rebuilt the index with a full-segment scan.
	// Answers are unaffected; the next compaction writes a fresh footer.
	IndexRebuilt bool `json:"index_rebuilt,omitempty"`
	// WALBytes and SegmentBytes are the directory's on-disk footprint:
	// live WAL files (retained ones included) and the sealed segment.
	// Their sum is what the data directory costs right now.
	WALBytes     int64 `json:"wal_bytes"`
	SegmentBytes int64 `json:"segment_bytes"`
	// RetainedBytes is the part of WALBytes kept past a fold only for
	// follower cursors (log shipping) — retention pressure. Bounded by
	// peerd -ship-retain.
	RetainedBytes int64 `json:"retained_bytes,omitempty"`
	// OldestWALSeq is the oldest WAL file still on disk; a follower
	// cursor before it must reseed from the segment.
	OldestWALSeq uint64 `json:"oldest_wal_seq,omitempty"`
	// Followers lists the log-shipping subscribers this peer serves,
	// with their replication lag.
	Followers []FollowerStatus `json:"followers,omitempty"`
}

// FollowerStatus is one log-shipping subscriber as seen by the owner:
// where its cursor points and how far behind the durable tail it is.
type FollowerStatus struct {
	Addr     string `json:"addr"`
	Seq      uint64 `json:"seq"`
	Off      int64  `json:"off"`
	LagBytes int64  `json:"lag_bytes"`
	// Snapshot marks a follower still streaming the seed segment.
	Snapshot bool `json:"snapshot,omitempty"`
}

// ShipStatus is the follower-side view when this peer tails another
// peer's WAL (peerd -follow): the subscription state machine position
// and its lifetime apply counters.
type ShipStatus struct {
	Owner     string `json:"owner"`
	State     string `json:"state"` // idle | snapshot | tail
	Seq       uint64 `json:"seq"`
	Off       int64  `json:"off"`
	Applied   uint64 `json:"applied_records"`
	Snapshots uint64 `json:"snapshots"`
	Resets    uint64 `json:"resets"`
	LastError string `json:"last_error,omitempty"`
}

// ClusterView is the aggregated state of a whole cluster at one instant.
type ClusterView struct {
	Nodes []NodeStatus `json:"nodes"`
	// Global is the cluster-wide metrics snapshot: the merge of every
	// node's registry (live), or the single shared registry (simulation).
	Global metrics.Snapshot `json:"global"`
	Rollup Rollup           `json:"rollup"`
}

// Rollup is the cluster-level summary computed from a view — the numbers
// an operator watches: skew, tail latencies, cache effectiveness, repair
// activity, and delivery health.
type Rollup struct {
	Peers       int `json:"peers"`
	StablePeers int `json:"stable_peers"`

	// Descriptor-placement skew (max/mean stored descriptors per peer;
	// 1.0 is perfectly even, 0 when nothing is stored).
	TotalStored     int     `json:"total_stored"`
	MaxStored       int     `json:"max_stored"`
	MeanStored      float64 `json:"mean_stored"`
	StoredImbalance float64 `json:"stored_imbalance"`

	// Query-load skew (max/mean probes served per peer).
	TotalServed     int64   `json:"total_served"`
	MaxServed       int64   `json:"max_served"`
	ServedImbalance float64 `json:"served_imbalance"`

	// Chord path-length percentiles (chord.hops).
	HopP50 float64 `json:"hop_p50"`
	HopP95 float64 `json:"hop_p95"`
	HopP99 float64 `json:"hop_p99"`

	// End-to-end lookup latency percentiles in microseconds
	// (peer.lookup_us).
	LookupP50US float64 `json:"lookup_p50_us"`
	LookupP95US float64 `json:"lookup_p95_us"`
	LookupP99US float64 `json:"lookup_p99_us"`

	// Signature-cache effectiveness: (hits+extends)/(hits+extends+misses).
	SigHitRate float64 `json:"sig_hit_rate"`

	// Routing health: successful lookups / attempted (route.*).
	LookupSuccessRate float64 `json:"lookup_success_rate"`

	// Replica subsystem activity.
	ReplicaRepaired   uint64 `json:"replica_repaired"`
	ReplicaSyncRounds uint64 `json:"replica_sync_rounds"`
	ReplicaPromotions uint64 `json:"replica_promotions"`

	// Transport delivery health: errors/calls.
	TransportCalls     uint64  `json:"transport_calls"`
	TransportErrors    uint64  `json:"transport_errors"`
	TransportErrorRate float64 `json:"transport_error_rate"`

	// Flight-recorder rollup: queries finished and kept across every
	// peer, plus the single worst recent query anywhere in the cluster.
	FlightFinished uint64 `json:"flight_finished,omitempty"`
	FlightKeptSlow uint64 `json:"flight_kept_slow,omitempty"`
	WorstQueryUS   int64  `json:"worst_query_us,omitempty"`
	WorstQueryName string `json:"worst_query_name,omitempty"`
	WorstQueryPeer string `json:"worst_query_peer,omitempty"`

	// Event-journal rollup: warnings and errors across every peer.
	EventWarns  uint64 `json:"event_warns,omitempty"`
	EventErrors uint64 `json:"event_errors,omitempty"`
}

// MergeSnapshots folds per-process snapshots into one cluster snapshot:
// counters and gauges sum, histograms merge bucket-wise. Quantiles over
// the merged histogram are cluster-wide quantiles, since the power-of-two
// bucket bounds are identical in every process.
func MergeSnapshots(snaps ...metrics.Snapshot) metrics.Snapshot {
	out := metrics.Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]metrics.HistSnapshot),
	}
	for _, s := range snaps {
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			out.Gauges[name] += v
		}
		for name, h := range s.Histograms {
			out.Histograms[name] = mergeHist(out.Histograms[name], h)
		}
	}
	return out
}

// mergeHist merges two histogram snapshots bucket-wise (keyed by Lo).
func mergeHist(a, b metrics.HistSnapshot) metrics.HistSnapshot {
	at := make(map[uint64]metrics.HistBucket, len(a.Buckets)+len(b.Buckets))
	for _, bk := range a.Buckets {
		at[bk.Lo] = bk
	}
	for _, bk := range b.Buckets {
		if prev, ok := at[bk.Lo]; ok {
			bk.Count += prev.Count
		}
		at[bk.Lo] = bk
	}
	out := metrics.HistSnapshot{Sum: a.Sum + b.Sum}
	for _, bk := range at {
		out.Buckets = append(out.Buckets, bk)
		out.Count += bk.Count
	}
	sort.Slice(out.Buckets, func(i, j int) bool { return out.Buckets[i].Lo < out.Buckets[j].Lo })
	if out.Count > 0 {
		out.Mean = float64(out.Sum) / float64(out.Count)
	}
	return out
}

// Compute builds the cluster view for a set of node statuses: merges the
// nodes' snapshots into the global one (unless a pre-merged global is
// supplied for the shared-registry case) and derives the rollup.
func Compute(nodes []NodeStatus, global *metrics.Snapshot) ClusterView {
	var g metrics.Snapshot
	if global != nil {
		g = *global
	} else {
		snaps := make([]metrics.Snapshot, len(nodes))
		for i, n := range nodes {
			snaps[i] = n.Metrics
		}
		g = MergeSnapshots(snaps...)
	}
	return ClusterView{Nodes: nodes, Global: g, Rollup: rollup(nodes, g)}
}

// rollup derives the cluster summary from per-node state and the global
// snapshot.
func rollup(nodes []NodeStatus, g metrics.Snapshot) Rollup {
	r := Rollup{Peers: len(nodes)}
	for _, n := range nodes {
		if n.Stable {
			r.StablePeers++
		}
		r.TotalStored += n.Stored
		if n.Stored > r.MaxStored {
			r.MaxStored = n.Stored
		}
		r.TotalServed += n.Served
		if n.Served > r.MaxServed {
			r.MaxServed = n.Served
		}
		if f := n.Flight; f != nil {
			r.FlightFinished += f.Finished
			r.FlightKeptSlow += f.KeptSlow
			if f.WorstUS > r.WorstQueryUS {
				r.WorstQueryUS = f.WorstUS
				r.WorstQueryName = f.WorstName
				r.WorstQueryPeer = n.Addr
			}
		}
		if e := n.Events; e != nil {
			r.EventWarns += e.Warns
			r.EventErrors += e.Errors
		}
	}
	if len(nodes) > 0 {
		r.MeanStored = float64(r.TotalStored) / float64(len(nodes))
	}
	if r.MeanStored > 0 {
		r.StoredImbalance = float64(r.MaxStored) / r.MeanStored
	}
	if meanServed := float64(r.TotalServed) / float64(max(len(nodes), 1)); meanServed > 0 {
		r.ServedImbalance = float64(r.MaxServed) / meanServed
	}

	hops := g.Histograms["chord.hops"]
	r.HopP50, r.HopP95, r.HopP99 = hops.Quantile(0.5), hops.Quantile(0.95), hops.Quantile(0.99)
	lat := g.Histograms["peer.lookup_us"]
	r.LookupP50US, r.LookupP95US, r.LookupP99US = lat.Quantile(0.5), lat.Quantile(0.95), lat.Quantile(0.99)

	hits := g.Counters["sig.hits"] + g.Counters["sig.extends"]
	if total := hits + g.Counters["sig.misses"]; total > 0 {
		r.SigHitRate = float64(hits) / float64(total)
	}
	if lookups := g.Counters["route.lookups"]; lookups > 0 {
		r.LookupSuccessRate = float64(lookups-g.Counters["route.failed_lookups"]) / float64(lookups)
	}
	r.ReplicaRepaired = g.Counters["replica.repaired"]
	r.ReplicaSyncRounds = g.Counters["replica.sync_rounds"]
	r.ReplicaPromotions = g.Counters["replica.promotions"]
	r.TransportCalls = g.Counters["transport.calls"]
	r.TransportErrors = g.Counters["transport.errors"]
	if r.TransportCalls > 0 {
		r.TransportErrorRate = float64(r.TransportErrors) / float64(r.TransportCalls)
	}
	return r
}
