package obs

import (
	"testing"

	"p2prange/internal/metrics"
)

// snap builds a process snapshot with one counter and chord.hops
// observations, the way a live peer's registry would look.
func snap(calls uint64, hops ...uint64) metrics.Snapshot {
	r := metrics.NewRegistry()
	r.Counter("transport.calls").Add(calls)
	h := r.IntHistogram("chord.hops")
	for _, v := range hops {
		h.Observe(v)
	}
	return r.Snapshot()
}

func TestMergeSnapshots(t *testing.T) {
	m := MergeSnapshots(snap(10, 1, 2), snap(5, 2, 8))
	if got := m.Counters["transport.calls"]; got != 15 {
		t.Errorf("merged counter = %d, want 15", got)
	}
	h := m.Histograms["chord.hops"]
	if h.Count != 4 || h.Sum != 13 {
		t.Errorf("merged hist count=%d sum=%d, want 4/13", h.Count, h.Sum)
	}
	// Bucket [2,3] got one observation from each process.
	for _, b := range h.Buckets {
		if b.Lo == 2 && b.Count != 2 {
			t.Errorf("bucket [2,3] count = %d, want 2", b.Count)
		}
	}
	// Cluster-wide quantiles see both processes' tails.
	if q := h.Quantile(0.99); q < 4 || q > 15 {
		t.Errorf("merged q99 = %g, want within the [8,15] tail's bucket walk", q)
	}
}

func TestComputeRollup(t *testing.T) {
	nodes := []NodeStatus{
		{Addr: "a:1", Stable: true, Stored: 6, Served: 30, Metrics: snap(100, 1, 1, 2)},
		{Addr: "b:1", Stable: true, Stored: 2, Served: 10, Metrics: snap(50, 3)},
		{Addr: "c:1", Stable: false, Stored: 1, Served: 5, Metrics: snap(10)},
	}
	v := Compute(nodes, nil)
	r := v.Rollup
	if r.Peers != 3 || r.StablePeers != 2 {
		t.Errorf("peers = %d/%d stable, want 3/2", r.Peers, r.StablePeers)
	}
	if r.TotalStored != 9 || r.MaxStored != 6 {
		t.Errorf("stored total/max = %d/%d, want 9/6", r.TotalStored, r.MaxStored)
	}
	if r.StoredImbalance != 2 { // 6 / (9/3)
		t.Errorf("stored imbalance = %g, want 2", r.StoredImbalance)
	}
	if r.TotalServed != 45 || r.MaxServed != 30 || r.ServedImbalance != 2 {
		t.Errorf("served total/max/imb = %d/%d/%g, want 45/30/2", r.TotalServed, r.MaxServed, r.ServedImbalance)
	}
	if r.TransportCalls != 160 {
		t.Errorf("transport calls = %d, want 160", r.TransportCalls)
	}
	if r.HopP50 <= 0 {
		t.Error("hop p50 not derived from the merged histogram")
	}

	// A pre-merged global snapshot takes precedence over node merging.
	g := snap(7)
	v2 := Compute(nodes, &g)
	if v2.Rollup.TransportCalls != 7 {
		t.Errorf("global override ignored: calls = %d, want 7", v2.Rollup.TransportCalls)
	}
}

func TestComputeEmpty(t *testing.T) {
	v := Compute(nil, nil)
	r := v.Rollup
	if r.Peers != 0 || r.StoredImbalance != 0 || r.ServedImbalance != 0 {
		t.Errorf("empty rollup = %+v, want zeros", r)
	}
}
