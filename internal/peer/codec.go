package peer

import (
	"fmt"

	"p2prange/internal/rangeset"
	"p2prange/internal/store"
	"p2prange/internal/transport"
)

// Binary codecs for the partition protocol's hot messages. Encoders and
// decoders come in unboxed form (concrete types in and out, zero
// allocations steady-state — benchmarked by BenchmarkCodecProbe and
// enforced by `make benchguard`) plus thin boxed wrappers registered
// with the transport's tag registry. FetchDataResp intentionally stays
// on the gob fallback: it carries whole tuple sets, where encoding cost
// is dominated by data volume, not framing.
const (
	tagFindBestReq       = transport.TagPeerBase + 0
	tagFindBestResp      = transport.TagPeerBase + 1
	tagStoreReq          = transport.TagPeerBase + 2
	tagStoreResp         = transport.TagPeerBase + 3
	tagFindBestBatchReq  = transport.TagPeerBase + 4
	tagFindBestBatchResp = transport.TagPeerBase + 5
	tagFetchDataReq      = transport.TagPeerBase + 6
)

// FindBestBatchReq probes several buckets owned by one peer in a single
// round trip: all identifier probes of one lookup that resolve to the
// same owner coalesce into one of these. Results align with IDs.
type FindBestBatchReq struct {
	Relation  string
	Attribute string
	Range     rangeset.Range
	Measure   store.Measure
	IDs       []uint32
}

// FindBestBatchResp carries one FindBestResp per requested bucket, in
// request order.
type FindBestBatchResp struct {
	Results []FindBestResp
}

func appendRange(b []byte, r rangeset.Range) []byte {
	b = transport.AppendVarint(b, r.Lo)
	return transport.AppendVarint(b, r.Hi)
}

func parseRange(c *transport.Cursor) rangeset.Range {
	return rangeset.Range{Lo: c.Varint(), Hi: c.Varint()}
}

func appendPartition(b []byte, p *store.Partition) []byte {
	b = transport.AppendString(b, p.Relation)
	b = transport.AppendString(b, p.Attribute)
	b = appendRange(b, p.Range)
	b = transport.AppendString(b, p.Holder)
	b = transport.AppendUvarint(b, p.Version)
	return transport.AppendString(b, p.Origin)
}

func parsePartition(c *transport.Cursor) store.Partition {
	return store.Partition{
		Relation:  c.String(),
		Attribute: c.String(),
		Range:     parseRange(c),
		Holder:    c.String(),
		Version:   c.Uvarint(),
		Origin:    c.String(),
	}
}

func appendFindBestReq(b []byte, r *FindBestReq) []byte {
	b = transport.AppendUvarint(b, uint64(r.ID))
	b = transport.AppendString(b, r.Relation)
	b = transport.AppendString(b, r.Attribute)
	b = appendRange(b, r.Range)
	return transport.AppendUvarint(b, uint64(r.Measure))
}

func parseFindBestReq(c *transport.Cursor) FindBestReq {
	return FindBestReq{
		ID:        uint32(c.Uvarint()),
		Relation:  c.String(),
		Attribute: c.String(),
		Range:     parseRange(c),
		Measure:   store.Measure(c.Uvarint()),
	}
}

// A FindBestResp with Found false encodes as the single flag byte: the
// zero Match is implied, so empty-bucket responses stay tiny.
func appendFindBestResp(b []byte, r *FindBestResp) []byte {
	b = transport.AppendBool(b, r.Found)
	if !r.Found {
		return b
	}
	b = appendPartition(b, &r.Match.Partition)
	return transport.AppendFloat64(b, r.Match.Score)
}

func parseFindBestResp(c *transport.Cursor) FindBestResp {
	var r FindBestResp
	r.Found = c.Bool()
	if r.Found {
		r.Match.Partition = parsePartition(c)
		r.Match.Score = c.Float64()
	}
	return r
}

func appendStoreReq(b []byte, r *StoreReq) []byte {
	b = transport.AppendUvarint(b, uint64(r.ID))
	b = appendPartition(b, &r.Partition)
	return transport.AppendBool(b, r.Replica)
}

func parseStoreReq(c *transport.Cursor) StoreReq {
	return StoreReq{
		ID:        uint32(c.Uvarint()),
		Partition: parsePartition(c),
		Replica:   c.Bool(),
	}
}

func appendFetchDataReq(b []byte, r *FetchDataReq) []byte {
	b = transport.AppendString(b, r.Relation)
	b = transport.AppendString(b, r.Attribute)
	return appendRange(b, r.Range)
}

func parseFetchDataReq(c *transport.Cursor) FetchDataReq {
	return FetchDataReq{
		Relation:  c.String(),
		Attribute: c.String(),
		Range:     parseRange(c),
	}
}

func appendBatchReq(b []byte, r *FindBestBatchReq) []byte {
	b = transport.AppendString(b, r.Relation)
	b = transport.AppendString(b, r.Attribute)
	b = appendRange(b, r.Range)
	b = transport.AppendUvarint(b, uint64(r.Measure))
	b = transport.AppendUvarint(b, uint64(len(r.IDs)))
	for _, id := range r.IDs {
		b = transport.AppendUvarint(b, uint64(id))
	}
	return b
}

func parseBatchReq(c *transport.Cursor) (FindBestBatchReq, error) {
	r := FindBestBatchReq{
		Relation:  c.String(),
		Attribute: c.String(),
		Range:     parseRange(c),
		Measure:   store.Measure(c.Uvarint()),
	}
	n := c.Uvarint()
	if c.Err != nil {
		return r, c.Err
	}
	if n > uint64(c.Len()) { // each id needs ≥1 byte
		return r, fmt.Errorf("%w: batch id count %d", transport.ErrBadFrame, n)
	}
	if n > 0 {
		r.IDs = make([]uint32, 0, transport.PreallocHint(n))
	}
	for i := uint64(0); i < n && c.Err == nil; i++ {
		r.IDs = append(r.IDs, uint32(c.Uvarint()))
	}
	return r, c.Err
}

func appendBatchResp(b []byte, r *FindBestBatchResp) []byte {
	b = transport.AppendUvarint(b, uint64(len(r.Results)))
	for i := range r.Results {
		b = appendFindBestResp(b, &r.Results[i])
	}
	return b
}

func parseBatchResp(c *transport.Cursor) (FindBestBatchResp, error) {
	var r FindBestBatchResp
	n := c.Uvarint()
	if c.Err != nil {
		return r, c.Err
	}
	if n > uint64(c.Len()) { // each result needs ≥1 byte
		return r, fmt.Errorf("%w: batch result count %d", transport.ErrBadFrame, n)
	}
	if n > 0 {
		r.Results = make([]FindBestResp, 0, transport.PreallocHint(n))
	}
	for i := uint64(0); i < n && c.Err == nil; i++ {
		r.Results = append(r.Results, parseFindBestResp(c))
	}
	return r, c.Err
}

func init() {
	transport.RegisterCodec(tagFindBestReq, FindBestReq{}, transport.DirRequest,
		func(b []byte, v any) []byte { r := v.(FindBestReq); return appendFindBestReq(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseFindBestReq(c), c.Err })
	transport.RegisterCodec(tagFindBestResp, FindBestResp{}, transport.DirResponse,
		func(b []byte, v any) []byte { r := v.(FindBestResp); return appendFindBestResp(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseFindBestResp(c), c.Err })
	transport.RegisterCodec(tagStoreReq, StoreReq{}, transport.DirRequest,
		func(b []byte, v any) []byte { r := v.(StoreReq); return appendStoreReq(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseStoreReq(c), c.Err })
	transport.RegisterCodec(tagStoreResp, StoreResp{}, transport.DirResponse,
		func(b []byte, v any) []byte { return transport.AppendBool(b, v.(StoreResp).Stored) },
		func(c *transport.Cursor) (any, error) { return StoreResp{Stored: c.Bool()}, c.Err })
	transport.RegisterCodec(tagFetchDataReq, FetchDataReq{}, transport.DirRequest,
		func(b []byte, v any) []byte { r := v.(FetchDataReq); return appendFetchDataReq(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseFetchDataReq(c), c.Err })
	transport.RegisterCodec(tagFindBestBatchReq, FindBestBatchReq{}, transport.DirRequest,
		func(b []byte, v any) []byte { r := v.(FindBestBatchReq); return appendBatchReq(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseBatchReq(c) })
	transport.RegisterCodec(tagFindBestBatchResp, FindBestBatchResp{}, transport.DirResponse,
		func(b []byte, v any) []byte { r := v.(FindBestBatchResp); return appendBatchResp(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseBatchResp(c) })
}
