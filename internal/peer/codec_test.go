package peer

import (
	"reflect"
	"testing"

	"p2prange/internal/rangeset"
	"p2prange/internal/store"
	"p2prange/internal/transport"
)

var codecPartition = store.Partition{
	Relation:  "Patient",
	Attribute: "age",
	Range:     rangeset.Range{Lo: -12, Hi: 88},
	Holder:    "10.1.2.3:4000",
	Version:   9,
	Origin:    "10.9.9.9:4000",
}

// TestUnboxedCodecRoundTrips drives every unboxed append/parse pair
// through encode → decode → DeepEqual, including the compact encodings
// (Found=false responses are a single byte; empty batches carry no ids).
func TestUnboxedCodecRoundTrips(t *testing.T) {
	t.Run("FindBestReq", func(t *testing.T) {
		in := FindBestReq{ID: 12345, Relation: "Patient", Attribute: "age",
			Range: rangeset.Range{Lo: 10, Hi: 19}, Measure: store.MatchContainment}
		c := transport.NewCursor(appendFindBestReq(nil, &in))
		out := parseFindBestReq(c)
		if c.Err != nil || !reflect.DeepEqual(in, out) {
			t.Errorf("round trip: got %+v err %v, want %+v", out, c.Err, in)
		}
	})
	t.Run("FindBestRespFound", func(t *testing.T) {
		in := FindBestResp{Found: true, Match: store.Match{Partition: codecPartition, Score: 0.625}}
		c := transport.NewCursor(appendFindBestResp(nil, &in))
		out := parseFindBestResp(c)
		if c.Err != nil || !reflect.DeepEqual(in, out) {
			t.Errorf("round trip: got %+v err %v, want %+v", out, c.Err, in)
		}
	})
	t.Run("FindBestRespNotFound", func(t *testing.T) {
		in := FindBestResp{Found: false}
		b := appendFindBestResp(nil, &in)
		if len(b) != 1 {
			t.Errorf("empty-bucket response encoded as %d bytes, want 1", len(b))
		}
		c := transport.NewCursor(b)
		out := parseFindBestResp(c)
		if c.Err != nil || !reflect.DeepEqual(in, out) {
			t.Errorf("round trip: got %+v err %v, want %+v", out, c.Err, in)
		}
	})
	t.Run("StoreReq", func(t *testing.T) {
		in := StoreReq{ID: 7, Partition: codecPartition, Replica: true}
		c := transport.NewCursor(appendStoreReq(nil, &in))
		out := parseStoreReq(c)
		if c.Err != nil || !reflect.DeepEqual(in, out) {
			t.Errorf("round trip: got %+v err %v, want %+v", out, c.Err, in)
		}
	})
	t.Run("FetchDataReq", func(t *testing.T) {
		in := FetchDataReq{Relation: "Patient", Attribute: "age", Range: rangeset.Range{Lo: 0, Hi: 99}}
		c := transport.NewCursor(appendFetchDataReq(nil, &in))
		out := parseFetchDataReq(c)
		if c.Err != nil || !reflect.DeepEqual(in, out) {
			t.Errorf("round trip: got %+v err %v, want %+v", out, c.Err, in)
		}
	})
	t.Run("BatchReq", func(t *testing.T) {
		in := FindBestBatchReq{Relation: "Patient", Attribute: "age",
			Range: rangeset.Range{Lo: 4, Hi: 13}, Measure: store.MatchJaccard,
			IDs: []uint32{0, 1, 1 << 31, 4294967295}}
		out, err := parseBatchReq(transport.NewCursor(appendBatchReq(nil, &in)))
		if err != nil || !reflect.DeepEqual(in, out) {
			t.Errorf("round trip: got %+v err %v, want %+v", out, err, in)
		}
	})
	t.Run("BatchReqEmpty", func(t *testing.T) {
		in := FindBestBatchReq{Relation: "r", Attribute: "a"}
		out, err := parseBatchReq(transport.NewCursor(appendBatchReq(nil, &in)))
		if err != nil || !reflect.DeepEqual(in, out) {
			t.Errorf("round trip: got %+v err %v, want %+v", out, err, in)
		}
	})
	t.Run("BatchResp", func(t *testing.T) {
		in := FindBestBatchResp{Results: []FindBestResp{
			{Found: true, Match: store.Match{Partition: codecPartition, Score: 1}},
			{Found: false},
			{Found: true, Match: store.Match{Partition: codecPartition, Score: 0.25}},
		}}
		out, err := parseBatchResp(transport.NewCursor(appendBatchResp(nil, &in)))
		if err != nil || !reflect.DeepEqual(in, out) {
			t.Errorf("round trip: got %+v err %v, want %+v", out, err, in)
		}
	})
}

// TestBatchParseGuards pins the denial-of-service defenses in the batch
// decoders: a declared element count larger than the remaining payload
// must fail before allocating, not after.
func TestBatchParseGuards(t *testing.T) {
	req := appendBatchReq(nil, &FindBestBatchReq{Relation: "r", Attribute: "a"})
	req[len(req)-1] = 0xff // rewrite id count to an overlong varint prefix
	req = append(req, 0xff, 0xff, 0xff, 0xff, 0x0f)
	if _, err := parseBatchReq(transport.NewCursor(req)); err == nil {
		t.Error("batch req with absurd id count parsed")
	}

	resp := transport.AppendUvarint(nil, 1<<40) // count with no payload behind it
	if _, err := parseBatchResp(transport.NewCursor(resp)); err == nil {
		t.Error("batch resp with absurd result count parsed")
	}
}

// FuzzFindBestReqParse throws arbitrary bytes at the probe-request
// parser: anything that decodes cleanly must re-encode to an equivalent
// request; anything else must latch an error without panicking.
func FuzzFindBestReqParse(f *testing.F) {
	seed := FindBestReq{ID: 99, Relation: "Patient", Attribute: "age",
		Range: rangeset.Range{Lo: 2, Hi: 11}, Measure: store.MatchContainment}
	payload := appendFindBestReq(nil, &seed)
	f.Add(payload)
	for cut := 0; cut < len(payload); cut++ {
		f.Add(payload[:cut])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return
		}
		c := transport.NewCursor(data)
		req := parseFindBestReq(c)
		if c.Err != nil {
			return
		}
		again := appendFindBestReq(nil, &req)
		c2 := transport.NewCursor(again)
		req2 := parseFindBestReq(c2)
		if c2.Err != nil {
			t.Fatalf("re-encoded request failed to parse: %v", c2.Err)
		}
		if !reflect.DeepEqual(req, req2) {
			t.Errorf("request changed across a round trip:\nfirst:  %+v\nsecond: %+v", req, req2)
		}
	})
}

// BenchmarkCodecProbe measures the steady-state encode+decode cost of
// one probe request — the innermost per-probe operation on the query
// path. `make benchguard` asserts this stays at 0 allocs/op: the buffer
// and cursor are reused, and the interner absorbs the string fields.
func BenchmarkCodecProbe(b *testing.B) {
	req := FindBestReq{ID: 77, Relation: "Patient", Attribute: "age",
		Range: rangeset.Range{Lo: 40, Hi: 49}, Measure: store.MatchContainment}
	buf := appendFindBestReq(nil, &req)
	cur := transport.NewCursor(buf)
	if got := parseFindBestReq(cur); cur.Err != nil || !reflect.DeepEqual(req, got) {
		b.Fatalf("round trip broken before measuring: %+v err %v", got, cur.Err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendFindBestReq(buf[:0], &req)
		cur.Reset(buf)
		out := parseFindBestReq(cur)
		if cur.Err != nil || out.ID != req.ID {
			b.Fatal("round trip broken")
		}
	}
}
