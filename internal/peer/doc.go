// Package peer implements the paper's peer node: a chord participant
// that owns identifier buckets of partition descriptors, hashes query
// ranges with the shared LSH scheme, and runs the Section 4 protocol.
//
// # The query-side protocol (Sec. 4)
//
// Peer.Lookup computes the l identifiers of a range (through the
// internal/minhash signature pipeline), routes to the chord owner of
// each, asks every owner for its bucket's best match under the configured
// measure (Sec. 5.2: Jaccard or containment), and returns the overall
// best. "If none of the match is exact, also store the computed partition
// at the peers holding the computed identifiers" — the cache=true path.
// Publish is the data-side half: a peer holding a materialized partition
// registers its descriptor under the same l identifiers.
//
// # Data serving and the query executor
//
// DataSource adapts a Peer to internal/query's Source interface for the
// end-to-end SQL flow: locate the best cached partition, fetch its tuples
// from the holder (FetchData), and — when coverage falls below MinRecall
// and a base source exists — fall back to the source relation ("the user
// ... has a choice to go to the source"), materialize the partition here,
// and publish it. PadFrac reproduces Fig. 10's query padding.
//
// # Fault tolerance
//
// Lookups tolerate churn at two levels: the chord layer routes around
// dead hops (internal/chord), and callOwner re-resolves a bucket once
// when its owner died between resolution and the call — with
// Config.Replicas > 0 the succeeding successor already holds a replica of
// the bucket's descriptors. Handoff and arc-transfer messages support
// graceful leaves and joins.
//
// # Observability
//
// Every Lookup/Publish/Fetch has a *Traced variant threading an
// internal/trace Span: the signature-cache outcome, one child span per
// probe with its chord hops and detours, and store/fallback decisions. A
// nil span costs nothing. The package feeds the peer.* family of the
// internal/metrics Default registry (lookups, probes, stores, publishes,
// fetches, fallbacks, the partitions gauge, and the lookup_us latency
// histogram); see docs/OBSERVABILITY.md.
package peer
