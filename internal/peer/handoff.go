package peer

import (
	"fmt"

	"p2prange/internal/chord"
	"p2prange/internal/store"
	"p2prange/internal/transport"
)

// Bucket handoff protocol: when ring ownership changes, descriptor buckets
// move to their new owner. A departing peer pushes everything to its
// successor (HandoffReq); a freshly joined peer pulls the arc it now owns
// from its successor (TransferArcReq).
type (
	// HandoffReq delivers buckets to their new owner.
	HandoffReq struct {
		Buckets map[uint32][]store.Partition
	}
	// TransferArcReq asks a peer to relinquish the buckets on (From, To].
	TransferArcReq struct {
		From, To uint32
	}
	// TransferArcResp carries the relinquished buckets.
	TransferArcResp struct {
		Buckets map[uint32][]store.Partition
	}
)

func init() {
	transport.RegisterType(HandoffReq{})
	transport.RegisterType(TransferArcReq{})
	transport.RegisterType(TransferArcResp{})
}

// handleHandoff absorbs pushed buckets. The OK ack tells the departing
// peer it may forget the data, so the absorbed copies must be durable
// first.
func (p *Peer) handleHandoff(r HandoffReq) (any, error) {
	p.store.Absorb(r.Buckets)
	if err := p.commitDurable(); err != nil {
		return nil, fmt.Errorf("peer: handoff not durable: %w", err)
	}
	return transport.OKResp{}, nil
}

// handleTransferArc extracts and returns the requested arc. The arc
// drop is committed before the buckets leave: once the response is out,
// the requester owns the data, and a crash here must not resurrect it.
// If the commit fails the arc is put back and the transfer refused.
func (p *Peer) handleTransferArc(r TransferArcReq) (any, error) {
	buckets := p.store.ExtractArc(r.From, r.To)
	if err := p.commitDurable(); err != nil {
		p.store.Absorb(buckets)
		return nil, fmt.Errorf("peer: arc transfer not durable: %w", err)
	}
	return TransferArcResp{Buckets: buckets}, nil
}

// HandoffTo pushes every bucket this peer holds to the given peer;
// called on graceful departure.
func (p *Peer) HandoffTo(to chord.Ref) error {
	all := p.store.ExtractArc(p.node.ID(), p.node.ID()) // whole circle: everything
	if len(all) == 0 {
		return nil
	}
	if _, err := p.call(to, HandoffReq{Buckets: all}); err != nil {
		// Put the buckets back so data is not lost on a failed handoff.
		p.store.Absorb(all)
		p.commitDurable()
		return fmt.Errorf("peer: handoff to %s: %w", to, err)
	}
	// Persist the local drop so a post-handoff crash does not resurrect
	// buckets the successor now owns (harmless duplicates, but noisy).
	p.commitDurable()
	return nil
}

// ReclaimArc pulls from the successor the buckets this peer now owns:
// identifiers in (predecessor, self]. Call it after joining once the ring
// has stabilized.
func (p *Peer) ReclaimArc() error {
	succ := p.node.Successor()
	if succ.ID == p.node.ID() {
		return nil
	}
	pred, ok := p.node.Predecessor()
	if !ok {
		return fmt.Errorf("peer: reclaim before stabilization (no predecessor)")
	}
	resp, err := p.call(succ, TransferArcReq{From: pred.ID, To: p.node.ID()})
	if err != nil {
		return fmt.Errorf("peer: reclaim from %s: %w", succ, err)
	}
	ta, okResp := resp.(TransferArcResp)
	if !okResp {
		return transport.BadRequest(resp)
	}
	p.store.Absorb(ta.Buckets)
	// The successor already dropped its copy when it answered, so this
	// peer is now the only holder: commit before treating them as owned.
	if err := p.commitDurable(); err != nil {
		return fmt.Errorf("peer: reclaim not durable: %w", err)
	}
	return nil
}
