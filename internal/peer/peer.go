package peer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"p2prange/internal/chord"
	"p2prange/internal/flight"
	"p2prange/internal/metrics"
	"p2prange/internal/minhash"
	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
	"p2prange/internal/replica"
	"p2prange/internal/store"
	"p2prange/internal/trace"
	"p2prange/internal/transport"
)

// The Default-registry peer.* family: protocol-level counters aggregated
// across every peer in the process (one live peer, or a whole simulated
// cluster).
var (
	metLookups    = metrics.Default.Counter("peer.lookups")
	metProbes     = metrics.Default.Counter("peer.probes")
	metBatches    = metrics.Default.Counter("peer.batches")
	metStores     = metrics.Default.Counter("peer.stores")
	metPublishes  = metrics.Default.Counter("peer.publishes")
	metFetches    = metrics.Default.Counter("peer.fetches")
	metPartitions = metrics.Default.Gauge("peer.partitions")
	metLookupUS   = metrics.Default.IntHistogram("peer.lookup_us")
)

// Partition protocol messages.
type (
	// FindBestReq asks the peer owning bucket ID for its best match.
	FindBestReq struct {
		ID        uint32
		Relation  string
		Attribute string
		Range     rangeset.Range
		Measure   store.Measure
	}
	// FindBestResp returns the bucket's best candidate, if any.
	FindBestResp struct {
		Match store.Match
		Found bool
	}
	// StoreReq asks the peer owning bucket ID to record a descriptor.
	// Replica marks copies an owner pushes to its successors; replicas
	// are stored but not re-replicated.
	StoreReq struct {
		ID        uint32
		Partition store.Partition
		Replica   bool
	}
	// StoreResp acknowledges and reports whether it was new.
	StoreResp struct{ Stored bool }
	// FetchDataReq asks a holder peer for a partition's tuples.
	FetchDataReq struct {
		Relation  string
		Attribute string
		Range     rangeset.Range
	}
	// FetchDataResp carries the materialized tuples.
	FetchDataResp struct {
		Found bool
		Data  wireRelation
	}
)

// wireRelation is the gob-friendly form of relation.Relation (schemas
// travel by name; every peer knows the global schema).
type wireRelation struct {
	Relation string
	Tuples   []relation.Tuple
}

func init() {
	for _, v := range []any{
		FindBestReq{}, FindBestResp{}, StoreReq{}, StoreResp{},
		FetchDataReq{}, FetchDataResp{},
	} {
		transport.RegisterType(v)
	}
}

// Config parameterizes a peer.
type Config struct {
	// Scheme maps ranges to DHT identifiers: the shared LSH scheme
	// (*minhash.Scheme — all peers must use identical key material or
	// identifiers will not line up), or minhash.ExactScheme for the
	// Section 3.1 exact-match baseline.
	Scheme minhash.Hasher
	// Measure is the bucket-level match measure (default Jaccard).
	Measure store.Measure
	// Chord configures the DHT node.
	Chord chord.Config
	// Schema is the global relational schema; may be nil for range-only
	// deployments (no data serving).
	Schema *relation.Schema
	// UsePeerIndex enables the Section 5.3 extension: bucket searches at a
	// peer consult all buckets the peer owns, not just the requested one.
	UsePeerIndex bool
	// Replicas pushes each stored descriptor to that many ring successors
	// so an owner crash does not lose it: after the ring repairs, the
	// bucket's new owner (the first successor) already holds the copy.
	// Setting it enables the replica subsystem: version+origin stamping,
	// anti-entropy repair (see RepairReplicas), and hot-bucket promotion.
	Replicas int
	// LoadAware routes each bucket probe to the least-loaded live member
	// of the bucket's replica set instead of always its owner. Effective
	// only with Replicas > 0.
	LoadAware bool
	// HotReplicas is the replica-set size for hot buckets (owner
	// included; default 2*(Replicas+1)).
	HotReplicas int
	// HotThreshold is the decayed per-bucket probe count that promotes a
	// bucket to HotReplicas copies (default replica.DefaultHotThreshold).
	HotThreshold uint64
	// CacheCapacity bounds the peer's descriptor store; on overflow the
	// least-recently-matched descriptor evicts. 0 means unbounded (the
	// paper's model).
	CacheCapacity int
	// SigCache bounds the peer's signature cache: an LRU of per-range
	// LSH signatures reused across lookups, so repeated and padded
	// ranges skip rehashing (or pay only for the padding delta). 0
	// disables it. Effective only when Scheme is a *minhash.Scheme.
	SigCache int
	// HashWorkers signs large ranges with that many goroutines (split
	// across the k*l hash functions). 0 or 1 keeps signing serial — the
	// default, so simulated timing stays single-threaded-deterministic.
	// Identifiers are identical either way.
	HashWorkers int
	// SigStats, when set, receives signature-pipeline counters; share one
	// instance across peers to aggregate cluster-wide totals.
	SigStats *metrics.SigStats
}

// AuxHandler extends a peer's protocol with additional message types
// (e.g. the distributed-join service). It reports whether it recognized
// the request.
type AuxHandler func(req any) (resp any, handled bool, err error)

// Durability is the commit barrier of a write-ahead log attached to the
// peer's store (internal/wal implements it with group-committed fsync).
// The peer calls Commit on every path that acknowledges a mutation to
// another peer — store, handoff, arc transfer — so an acknowledgment
// never outruns the disk; read paths never touch it.
type Durability interface {
	// Commit blocks until every store mutation so far is durable. A
	// non-nil error means durability failed and the triggering request
	// must fail rather than acknowledge.
	Commit() error
}

// Peer is one node of the system.
type Peer struct {
	cfg     Config
	node    *chord.Node
	store   *store.Store
	caller  transport.Caller
	signer  *minhash.Signer  // non-nil when Scheme went through the pipeline
	replica *replica.Manager // non-nil when Config.Replicas > 0
	served  atomic.Int64     // bucket probes answered by this peer
	flight  atomic.Pointer[flight.Recorder]

	mu      sync.RWMutex
	data    map[string]*relation.Partition // materialized partitions by Key()
	aux     []AuxHandler
	durable Durability // nil when the store is memory-only
}

// New creates a peer at addr using caller to reach others. Register its
// Handle with the transport before use.
func New(addr string, caller transport.Caller, cfg Config) (*Peer, error) {
	if cfg.Scheme == nil {
		return nil, errors.New("peer: Config.Scheme is required")
	}
	st := store.New()
	if cfg.CacheCapacity > 0 {
		st = store.NewBounded(cfg.CacheCapacity)
	}
	p := &Peer{
		cfg:    cfg,
		store:  st,
		caller: caller,
		data:   make(map[string]*relation.Partition),
	}
	// Route LSH hashing through the signature pipeline: batched compiled
	// evaluation always (identifiers are bit-identical to the naive
	// path), plus the signature cache and worker pool when configured.
	if sch, ok := cfg.Scheme.(*minhash.Scheme); ok {
		stats := cfg.SigStats
		if stats == nil {
			stats = &metrics.SigStats{} // per-peer counters by default
		}
		p.signer = minhash.NewSigner(sch,
			minhash.WithSigCache(cfg.SigCache),
			minhash.WithWorkers(cfg.HashWorkers),
			minhash.WithSigStats(stats))
		p.cfg.Scheme = p.signer
	} else if sg, ok := cfg.Scheme.(*minhash.Signer); ok {
		p.signer = sg
	}
	p.node = chord.NewNode(addr, transport.ChordClient{Caller: caller}, cfg.Chord)
	if cfg.Replicas > 0 {
		// Config.Replicas counts successor copies; replica.Config.R counts
		// total copies including the owner.
		p.replica = replica.NewManager(p.node.Ref(), p.store, replica.Config{
			R:            cfg.Replicas + 1,
			RHot:         cfg.HotReplicas,
			HotThreshold: cfg.HotThreshold,
		}, replica.Deps{
			Successors:   p.node.Successors,
			SuccessorsOf: p.successorsOf,
			Owns:         p.node.Owns,
			Suspect:      p.node.MarkSuspect,
			Push: func(to chord.Ref, id uint32, part store.Partition) error {
				_, err := p.call(to, StoreReq{ID: id, Partition: part, Replica: true})
				return err
			},
			Call: p.call,
		})
	}
	return p, nil
}

// successorsOf fetches owner's successor list — the owner's replica set —
// short-circuiting to local state when owner is this peer.
func (p *Peer) successorsOf(owner chord.Ref) ([]chord.Ref, error) {
	if owner.ID == p.node.ID() {
		return p.node.SuccessorList(), nil
	}
	return transport.ChordClient{Caller: p.caller}.SuccessorList(owner.Addr)
}

// AttachDurability installs the store's commit barrier. Call it after
// the store has been restored (and its journal attached) but before the
// peer starts serving, alongside store.SetJournal.
func (p *Peer) AttachDurability(d Durability) {
	p.mu.Lock()
	p.durable = d
	p.mu.Unlock()
}

// commitDurable runs the durability barrier, a no-op without one.
func (p *Peer) commitDurable() error {
	p.mu.RLock()
	d := p.durable
	p.mu.RUnlock()
	if d == nil {
		return nil
	}
	return d.Commit()
}

// SetFlight installs the flight recorder the serving side finishes into:
// every traced protocol request this peer answers is recorded — under the
// caller's sampled trace when one arrives, or under a locally opened root
// span when none does — so a peer that only ever *serves* still retains
// its slow and errored requests. A nil recorder (the default) disables
// serve-side recording entirely.
func (p *Peer) SetFlight(rec *flight.Recorder) { p.flight.Store(rec) }

// Flight returns the installed recorder (nil when none).
func (p *Peer) Flight() *flight.Recorder { return p.flight.Load() }

// Node exposes the chord node (for ring construction and diagnostics).
func (p *Peer) Node() *chord.Node { return p.node }

// Store exposes the partition store (for load accounting).
func (p *Peer) Store() *store.Store { return p.store }

// Addr returns the peer's transport address.
func (p *Peer) Addr() string { return p.node.Addr() }

// Ref returns the peer's chord reference.
func (p *Peer) Ref() chord.Ref { return p.node.Ref() }

// Handle dispatches an incoming request (chord or partition protocol).
func (p *Peer) Handle(req any) (any, error) {
	resp, _, err := p.HandleTraced(trace.Context{}, req)
	return resp, err
}

// HandleTraced is the transport.TracedHandler face of the peer: when the
// caller's context is sampled and the request is part of the traced
// protocol, the work runs under a serving-side span named for this peer
// ("serve FindBest @addr" with a "from" event naming the caller), and the
// finished subtree is returned as a fragment for the transport to
// piggyback home. Chord routing RPCs stay untraced — routing is
// iterative, so every hop is already visible on the querying side.
func (p *Peer) HandleTraced(tc trace.Context, req any) (any, []trace.Wire, error) {
	if resp, handled, err := transport.DispatchChord(p.node, req); handled {
		return resp, nil, err
	}
	var sp *trace.Span
	var local bool // span opened by the flight recorder, not the caller
	rec := p.flight.Load()
	if kind := serveKind(req); kind != "" {
		switch {
		case tc.Sampled:
			sp = trace.Remote(tc, fmt.Sprintf("serve %s @%s", kind, p.Addr()))
			sp.Event("from", tc.Caller)
		case rec.On():
			// No sampled context arrived, but the flight recorder is on:
			// open a local root so this serve is retained if it turns out
			// slow or errored. The span stays off the wire — the caller
			// did not ask for a fragment.
			local = true
			sp = rec.Start(fmt.Sprintf("serve %s @%s", kind, p.Addr()))
			if tc.Caller != "" {
				sp.Event("from", tc.Caller)
			}
		}
	}
	resp, err := p.handle(req, sp)
	if sp.On() {
		sp.End()
		rec.Finish(flight.KindServe, sp, 0, err)
		if local {
			return resp, nil, err
		}
		return resp, []trace.Wire{sp.Export()}, err
	}
	return resp, nil, err
}

// serveKind names the traced protocol messages; other requests (handoff,
// arc transfer, aux protocols) serve without a span.
func serveKind(req any) string {
	switch req.(type) {
	case FindBestReq:
		return "FindBest"
	case FindBestBatchReq:
		return "FindBestBatch"
	case StoreReq:
		return "Store"
	case replica.SyncReq:
		return "Sync"
	case replica.LoadReq:
		return "Load"
	case FetchDataReq:
		return "FetchData"
	}
	return ""
}

// handle serves one non-chord request, annotating sp (which may be nil)
// with the outcome.
func (p *Peer) handle(req any, sp *trace.Span) (any, error) {
	switch r := req.(type) {
	case FindBestReq:
		fb := p.findBest(r.ID, r.Relation, r.Attribute, r.Range, r.Measure, sp)
		if sp.On() {
			if fb.Found {
				sp.Eventf("best", "%s score=%.3f", fb.Match.Partition.Range, fb.Match.Score)
			} else {
				sp.Event("best", "none")
			}
		}
		return fb, nil
	case FindBestBatchReq:
		if sp.On() {
			sp.Eventf("batch", "%d probe(s)", len(r.IDs))
		}
		resp := FindBestBatchResp{Results: make([]FindBestResp, len(r.IDs))}
		for i, id := range r.IDs {
			fb := p.findBest(id, r.Relation, r.Attribute, r.Range, r.Measure, sp)
			resp.Results[i] = fb
			if sp.On() {
				if fb.Found {
					sp.Eventf("best", "id=%08x %s score=%.3f", id, fb.Match.Partition.Range, fb.Match.Score)
				} else {
					sp.Eventf("best", "id=%08x none", id)
				}
			}
		}
		return resp, nil
	case StoreReq:
		if p.replica != nil && !r.Replica && !p.store.Has(r.ID, r.Partition) {
			// Stamp only descriptors this owner is about to admit:
			// re-stamping a duplicate would make every re-publish look
			// newer than the stored copy and defeat first-holder-wins.
			p.replica.Stamp(&r.Partition)
		}
		stored := p.store.Put(r.ID, r.Partition)
		if stored && !r.Replica && p.replica != nil {
			p.replica.Replicate(r.ID, r.Partition)
		}
		// Durability barrier before the ack: a StoreResp promises the
		// descriptor survives this peer's crash.
		if err := p.commitDurable(); err != nil {
			return nil, fmt.Errorf("peer: store not durable: %w", err)
		}
		if sp.On() {
			sp.Eventf("stored", "%v replica=%v", stored, r.Replica)
		}
		return StoreResp{Stored: stored}, nil
	case replica.SyncReq:
		// Answerable from the store alone, so a peer with replication
		// disabled still reports honestly what it lacks.
		missing := p.store.MissingFrom(r.Digest)
		if sp.On() {
			sp.Eventf("missing", "%d descriptor(s)", len(missing))
		}
		return replica.SyncResp{Missing: missing}, nil
	case replica.LoadReq:
		resp := replica.LoadResp{Load: p.served.Load(), Fanout: 1}
		if p.replica != nil {
			resp = p.replica.HandleLoad(r)
		}
		if sp.On() {
			sp.Eventf("load", "%d", resp.Load)
		}
		return resp, nil
	case HandoffReq:
		return p.handleHandoff(r)
	case TransferArcReq:
		return p.handleTransferArc(r)
	case FetchDataReq:
		part, ok := p.localPartition(r.Relation, r.Attribute, r.Range)
		if !ok {
			sp.Event("data", "not held")
			return FetchDataResp{Found: false}, nil
		}
		if sp.On() {
			sp.Eventf("data", "%d tuple(s)", len(part.Data.Tuples))
		}
		return FetchDataResp{
			Found: true,
			Data:  wireRelation{Relation: part.Relation, Tuples: part.Data.Tuples},
		}, nil
	default:
		p.mu.RLock()
		aux := p.aux
		p.mu.RUnlock()
		for _, h := range aux {
			if resp, handled, err := h(req); handled {
				return resp, err
			}
		}
		return nil, transport.BadRequest(req)
	}
}

// findBest serves one bucket probe: load accounting, hot-bucket hit
// tracking, and the store search. Shared by the single-probe and batch
// handlers so both paths count load identically. sp (may be nil) gains a
// seg.read child span when the probe falls through to the segment tier.
func (p *Peer) findBest(id uint32, rel, attribute string, q rangeset.Range, measure store.Measure, sp *trace.Span) FindBestResp {
	p.served.Add(1)
	if p.replica != nil {
		p.replica.Hit(id)
	}
	var m store.Match
	var ok bool
	if p.cfg.UsePeerIndex {
		m, ok = p.store.FindBestAnywhereTraced(rel, attribute, q, measure, sp)
	} else {
		m, ok = p.store.FindBestTraced(id, rel, attribute, q, measure, sp)
	}
	return FindBestResp{Match: m, Found: ok}
}

// Replica exposes the replication manager (nil when Replicas is 0).
func (p *Peer) Replica() *replica.Manager { return p.replica }

// ServedProbes returns how many bucket probes this peer has answered —
// the per-peer load the load experiment compares across the cluster.
func (p *Peer) ServedProbes() int64 { return p.served.Load() }

// RepairReplicas runs one anti-entropy round against the successor list
// (a no-op without replication). The chord Maintainer drives it in live
// deployments; simulations call it between query batches.
func (p *Peer) RepairReplicas() replica.SyncStats {
	if p.replica == nil {
		return replica.SyncStats{}
	}
	return p.replica.Sync()
}

// SetShipSync installs the log-shipping fast path for replica
// anti-entropy (see replica.ShipFunc): full-replica successors receive
// the WAL delta instead of a digest walk. No-op without replication.
func (p *Peer) SetShipSync(f replica.ShipFunc) {
	if p.replica != nil {
		p.replica.SetShip(f)
	}
}

// RegisterAux installs an auxiliary protocol handler, consulted for
// request types the core protocol does not recognize.
func (p *Peer) RegisterAux(h AuxHandler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aux = append(p.aux, h)
}

// RouteOwner resolves the peer owning a raw identifier (for services,
// like the distributed join, that place their own keys on the ring).
func (p *Peer) RouteOwner(id uint32) (chord.Ref, int, error) {
	return p.node.Lookup(id)
}

// Call sends a request to a ref, short-circuiting locally; exposed for
// auxiliary services built on the peer's transport.
func (p *Peer) Call(to chord.Ref, req any) (any, error) {
	return p.call(to, req)
}

// Identifiers returns the l LSH identifiers of q.
func (p *Peer) Identifiers(q rangeset.Range) []uint32 {
	return p.cfg.Scheme.Identifiers(q)
}

// SigStats returns a snapshot of the peer's signature-pipeline counters
// (zero when the peer hashes outside the pipeline, e.g. the exact-match
// baseline, or when no stats sink is configured).
func (p *Peer) SigStats() metrics.SigSnapshot {
	if p.signer == nil {
		return metrics.SigSnapshot{}
	}
	return p.signer.SigStats()
}

// LookupResult is the outcome of a Section 4 range lookup.
type LookupResult struct {
	// Match is the best partition found across all l probes.
	Match store.Match
	// Found reports whether any probe returned a candidate.
	Found bool
	// Hops holds the chord path length of each of the l probes; its mean
	// and distribution are the Fig. 12 metrics.
	Hops []int
	// Stored reports whether the query's own partition descriptor was
	// cached (it is, at all l owners, whenever the best match is not
	// exact).
	Stored bool
}

// MaxRangeSize bounds the value-set size a range may have to be hashed:
// min-wise hashing is linear in the range size (that is Fig. 5's cost),
// so an unclamped half-open range (e.g. 2^63 values) must be rejected
// rather than iterated.
const MaxRangeSize = 1 << 22

// checkRange validates a range for the hashing protocol.
func checkRange(q rangeset.Range) error {
	if !q.Valid() {
		return fmt.Errorf("peer: invalid range %s", q)
	}
	// A valid range has at least one value, so a non-positive Size means
	// Hi-Lo+1 overflowed int64 — e.g. [MinInt64, MaxInt64] wraps to 0.
	if size := q.Size(); size <= 0 || size > MaxRangeSize {
		return fmt.Errorf("peer: range %s too large to hash (max %d values)", q, MaxRangeSize)
	}
	return nil
}

// Lookup runs the paper's query-side protocol for a range selection on
// relation.attribute: hash to l identifiers, route to each owner, collect
// best matches, and return the overall best. When store is true and no
// exact match (score 1) exists, the query range is also recorded at the l
// owners — "If none of the match is exact, also store the computed
// partition at the peers holding the computed identifiers."
func (p *Peer) Lookup(rel, attribute string, q rangeset.Range, cache bool) (LookupResult, error) {
	return p.LookupTraced(rel, attribute, q, cache, nil)
}

// LookupTraced is Lookup recording the signature-cache outcome, one child
// span per probe (with its chord hops and detours), and store decisions
// on sp. A nil sp traces nothing and allocates nothing extra.
func (p *Peer) LookupTraced(rel, attribute string, q rangeset.Range, cache bool, sp *trace.Span) (LookupResult, error) {
	metLookups.Inc()
	start := time.Now()
	var res LookupResult
	if err := checkRange(q); err != nil {
		return res, err
	}
	var sigBefore metrics.SigSnapshot
	if sp.On() && p.signer != nil {
		sigBefore = p.signer.SigStats()
	}
	ids := p.cfg.Scheme.Identifiers(q)
	if sp.On() {
		if p.signer != nil {
			d := p.signer.SigStats().Sub(sigBefore)
			sp.Eventf("sig", "hits=%d extends=%d misses=%d", d.Hits, d.Extends, d.Misses)
		} else {
			sp.Event("sig", "no signature pipeline")
		}
	}
	// Lookups without load-aware routing coalesce the probes bound for
	// each owner into one batch round trip — traced or not, so the flight
	// recorder's always-sampled root costs no extra RPCs and an explicit
	// -trace shows the batch protocol actually on the wire (the TCP≡memory
	// golden test pins the traced batch tree). Load-aware routing probes
	// replica-set members individually by design.
	if !(p.replica != nil && p.cfg.LoadAware) && len(ids) > 1 {
		return p.lookupBatched(rel, attribute, q, cache, ids, start, sp)
	}
	owners := make([]chord.Ref, len(ids))
	for i, id := range ids {
		metProbes.Inc()
		var ps *trace.Span
		if sp.On() {
			ps = sp.Child(fmt.Sprintf("probe %d/%d id=%08x", i+1, len(ids), id))
		}
		owner, hops, err := p.node.LookupTraced(id, ps)
		if err != nil {
			ps.End()
			return res, fmt.Errorf("peer: route to bucket %08x: %w", id, err)
		}
		res.Hops = append(res.Hops, hops)

		req := FindBestReq{
			ID: id, Relation: rel, Attribute: attribute, Range: q, Measure: p.cfg.Measure,
		}
		var resp any
		if p.replica != nil && p.cfg.LoadAware {
			// Load-aware selection: probe the least-loaded live member of
			// the bucket's replica set. owners[i] stays the resolved owner
			// — a later StoreReq must land there, not at a replica.
			_, resp, _ = p.replica.ProbeBest(id, owner, func(to chord.Ref) (any, error) {
				return p.callCtx(to, req, ps)
			}, ps)
		}
		if resp == nil {
			var err error
			owner, resp, err = p.callOwner(id, owner, req, ps)
			if err != nil {
				ps.End()
				return res, err
			}
		}
		owners[i] = owner
		fb, ok := resp.(FindBestResp)
		if !ok {
			ps.End()
			return res, transport.BadRequest(resp)
		}
		if fb.Found && (!res.Found || fb.Match.Score > res.Match.Score) {
			res.Match = fb.Match
			res.Found = true
		}
		if ps.On() {
			if fb.Found {
				ps.Eventf("match", "%s score=%.3f", fb.Match.Partition.Range, fb.Match.Score)
			} else {
				ps.Event("match", "none")
			}
			ps.End()
		}
	}
	exact := res.Found && res.Match.Partition.Range == q
	if cache && !exact {
		for i, id := range ids {
			metStores.Inc()
			_, _, err := p.callOwner(id, owners[i], StoreReq{
				ID: id,
				Partition: store.Partition{
					Relation: rel, Attribute: attribute, Range: q, Holder: p.Addr(),
				},
			}, sp)
			if err != nil {
				return res, err
			}
		}
		res.Stored = true
		if sp.On() {
			sp.Eventf("store", "descriptor cached at %d owner(s)", len(ids))
		}
	} else if sp.On() && cache {
		sp.Event("store", "skipped (exact match)")
	}
	metLookupUS.Observe(uint64(time.Since(start).Microseconds()))
	return res, nil
}

// lookupBatched is the coalescing fast path of LookupTraced: it resolves
// every identifier's owner first, then issues one FindBestBatchReq per
// distinct owner instead of one FindBestReq per identifier — probes that
// hash into the same successor arc share a round trip. Any batch failure
// (an unreachable owner, or a remote that predates the batch protocol)
// degrades to the per-probe path with its usual owner failover, so the
// result is identical to the unbatched protocol. With sp on, each probe's
// routing lands on its own child span and each batch round trip gets a
// child carrying the remote serve span and the per-probe outcomes — so a
// traced lookup shows the wire protocol as it actually ran, and the
// flight recorder's always-sampled root changes no RPC count.
func (p *Peer) lookupBatched(rel, attribute string, q rangeset.Range, cache bool, ids []uint32, start time.Time, sp *trace.Span) (LookupResult, error) {
	var res LookupResult
	owners := make([]chord.Ref, len(ids))
	groups := make(map[uint32][]int, len(ids)) // owner ID -> probe indices
	order := make([]chord.Ref, 0, len(ids))    // distinct owners, first-seen order
	for i, id := range ids {
		metProbes.Inc()
		var ps *trace.Span
		if sp.On() {
			ps = sp.Child(fmt.Sprintf("probe %d/%d id=%08x", i+1, len(ids), id))
		}
		owner, hops, err := p.node.LookupTraced(id, ps)
		if err != nil {
			ps.End()
			return res, fmt.Errorf("peer: route to bucket %08x: %w", id, err)
		}
		if ps.On() {
			ps.End()
		}
		res.Hops = append(res.Hops, hops)
		owners[i] = owner
		if _, seen := groups[owner.ID]; !seen {
			order = append(order, owner)
		}
		groups[owner.ID] = append(groups[owner.ID], i)
	}
	merge := func(fb FindBestResp) {
		if fb.Found && (!res.Found || fb.Match.Score > res.Match.Score) {
			res.Match = fb.Match
			res.Found = true
		}
	}
	for _, owner := range order {
		idxs := groups[owner.ID]
		batch := FindBestBatchReq{
			Relation: rel, Attribute: attribute, Range: q, Measure: p.cfg.Measure,
			IDs: make([]uint32, len(idxs)),
		}
		for j, i := range idxs {
			batch.IDs[j] = ids[i]
		}
		metBatches.Inc()
		var bs *trace.Span
		if sp.On() {
			bs = sp.Child(fmt.Sprintf("batch @%s: %d probe(s)", owner.Addr, len(idxs)))
		}
		resp, err := p.callCtx(owner, batch, bs)
		br, ok := resp.(FindBestBatchResp)
		if err == nil && ok && len(br.Results) == len(idxs) {
			for j, i := range idxs {
				merge(br.Results[j])
				if bs.On() {
					if fb := br.Results[j]; fb.Found {
						bs.Eventf("match", "probe %d: %s score=%.3f", i+1, fb.Match.Partition.Range, fb.Match.Score)
					} else {
						bs.Eventf("match", "probe %d: none", i+1)
					}
				}
			}
			bs.End()
			continue
		}
		// Fall back probe by probe; callOwner re-resolves a dead owner.
		if bs.On() {
			if err != nil {
				bs.Eventf("fallback", "batch failed (%v), probing individually", err)
			} else {
				bs.Event("fallback", "unexpected batch response, probing individually")
			}
		}
		for _, i := range idxs {
			req := FindBestReq{
				ID: ids[i], Relation: rel, Attribute: attribute, Range: q, Measure: p.cfg.Measure,
			}
			newOwner, r2, err2 := p.callOwner(ids[i], owners[i], req, bs)
			if err2 != nil {
				bs.End()
				return res, err2
			}
			owners[i] = newOwner
			fb, ok := r2.(FindBestResp)
			if !ok {
				bs.End()
				return res, transport.BadRequest(r2)
			}
			merge(fb)
			if bs.On() {
				if fb.Found {
					bs.Eventf("match", "probe %d: %s score=%.3f", i+1, fb.Match.Partition.Range, fb.Match.Score)
				} else {
					bs.Eventf("match", "probe %d: none", i+1)
				}
			}
		}
		bs.End()
	}
	exact := res.Found && res.Match.Partition.Range == q
	if cache && !exact {
		for i, id := range ids {
			metStores.Inc()
			_, _, err := p.callOwner(id, owners[i], StoreReq{
				ID: id,
				Partition: store.Partition{
					Relation: rel, Attribute: attribute, Range: q, Holder: p.Addr(),
				},
			}, sp)
			if err != nil {
				return res, err
			}
		}
		res.Stored = true
		if sp.On() {
			sp.Eventf("store", "descriptor cached at %d owner(s)", len(ids))
		}
	} else if sp.On() && cache {
		sp.Event("store", "skipped (exact match)")
	}
	metLookupUS.Observe(uint64(time.Since(start).Microseconds()))
	return res, nil
}

// Publish stores a partition descriptor (held by this peer) under its l
// identifiers, routing to each owner. It returns the chord hop counts.
func (p *Peer) Publish(part store.Partition) ([]int, error) {
	return p.PublishTraced(part, nil)
}

// PublishTraced is Publish recording each bucket resolution on sp.
func (p *Peer) PublishTraced(part store.Partition, sp *trace.Span) ([]int, error) {
	metPublishes.Inc()
	if part.Holder == "" {
		part.Holder = p.Addr()
	}
	if err := checkRange(part.Range); err != nil {
		return nil, err
	}
	ids := p.cfg.Scheme.Identifiers(part.Range)
	hops := make([]int, 0, len(ids))
	for i, id := range ids {
		var ps *trace.Span
		if sp.On() {
			ps = sp.Child(fmt.Sprintf("publish %d/%d id=%08x", i+1, len(ids), id))
		}
		owner, h, err := p.node.LookupTraced(id, ps)
		if err != nil {
			ps.End()
			return hops, fmt.Errorf("peer: route to bucket %08x: %w", id, err)
		}
		hops = append(hops, h)
		metStores.Inc()
		_, _, err = p.callOwner(id, owner, StoreReq{ID: id, Partition: part}, ps)
		ps.End()
		if err != nil {
			return hops, err
		}
	}
	return hops, nil
}

// call routes a request to a ref, short-circuiting to the local handler.
func (p *Peer) call(to chord.Ref, req any) (any, error) {
	if to.ID == p.node.ID() {
		return p.Handle(req)
	}
	return p.caller.Call(to.Addr, req)
}

// callCtx is call with trace propagation: the request carries sp's
// context and any remote serve spans returned with the response are
// grafted under sp. The local short-circuit runs HandleTraced directly,
// so a peer probing itself produces the same serve span a remote peer
// would — tree shapes match across transports. With tracing off it is
// exactly call.
func (p *Peer) callCtx(to chord.Ref, req any, sp *trace.Span) (any, error) {
	if !sp.On() {
		return p.call(to, req)
	}
	tc := sp.Context(p.Addr())
	if to.ID == p.node.ID() {
		resp, spans, err := p.HandleTraced(tc, req)
		sp.GraftAll(spans)
		return resp, err
	}
	resp, spans, err := transport.CallCtx(p.caller, to.Addr, tc, req)
	sp.GraftAll(spans)
	return resp, err
}

// callOwner sends req to the resolved owner of bucket id. When the owner
// became unreachable between resolution and the call (it crashed, or the
// lookup raced a churn event) and the node is fault tolerant, the owner
// is marked suspect and the bucket re-resolved once: responsibility for
// its arc has passed to the next live successor, which — with replication
// enabled — already holds a copy of its descriptors. Returns the ref that
// actually answered; the re-resolution is recorded on sp.
func (p *Peer) callOwner(id uint32, owner chord.Ref, req any, sp *trace.Span) (chord.Ref, any, error) {
	resp, err := p.callCtx(owner, req, sp)
	if err == nil || !p.node.FaultTolerant() || !transport.Retryable(err) {
		return owner, resp, err
	}
	p.node.MarkSuspect(owner.ID)
	if sp.On() {
		sp.Eventf("owner-dead", "%s unreachable, re-resolving %08x", owner, id)
	}
	next, _, lerr := p.node.LookupTraced(id, sp)
	if lerr != nil || next.ID == owner.ID {
		return owner, nil, err
	}
	resp, err = p.callCtx(next, req, sp)
	return next, resp, err
}

// --- Local partition data (the holder side of data fetches) ---

// AddPartition materializes partition data at this peer so it can serve
// FetchData requests for it.
func (p *Peer) AddPartition(part *relation.Partition) {
	key := store.Partition{
		Relation: part.Relation, Attribute: part.Attribute, Range: part.Range,
	}.Key()
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, exists := p.data[key]; !exists {
		metPartitions.Add(1)
	}
	p.data[key] = part
}

// localPartition returns the materialized partition, if held.
func (p *Peer) localPartition(rel, attribute string, rg rangeset.Range) (*relation.Partition, bool) {
	key := store.Partition{Relation: rel, Attribute: attribute, Range: rg}.Key()
	p.mu.RLock()
	defer p.mu.RUnlock()
	part, ok := p.data[key]
	return part, ok
}

// PartitionCount returns how many materialized partitions the peer holds.
func (p *Peer) PartitionCount() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.data)
}

// FetchData retrieves the tuples of a matched partition from its holder.
func (p *Peer) FetchData(m store.Match) (*relation.Relation, error) {
	return p.FetchDataTraced(m, nil)
}

// FetchDataTraced is FetchData with the holder's serve span grafted
// under sp, attributing the data transfer to the peer that performed it.
func (p *Peer) FetchDataTraced(m store.Match, sp *trace.Span) (*relation.Relation, error) {
	metFetches.Inc()
	if p.cfg.Schema == nil {
		return nil, errors.New("peer: no schema configured")
	}
	req := FetchDataReq{
		Relation:  m.Partition.Relation,
		Attribute: m.Partition.Attribute,
		Range:     m.Partition.Range,
	}
	var resp any
	var err error
	switch {
	case !sp.On() && m.Partition.Holder == p.Addr():
		resp, err = p.Handle(req)
	case !sp.On():
		resp, err = p.caller.Call(m.Partition.Holder, req)
	default:
		tc := sp.Context(p.Addr())
		var spans []trace.Wire
		if m.Partition.Holder == p.Addr() {
			resp, spans, err = p.HandleTraced(tc, req)
		} else {
			resp, spans, err = transport.CallCtx(p.caller, m.Partition.Holder, tc, req)
		}
		sp.GraftAll(spans)
	}
	if err != nil {
		return nil, err
	}
	fd, ok := resp.(FetchDataResp)
	if !ok {
		return nil, transport.BadRequest(resp)
	}
	if !fd.Found {
		return nil, fmt.Errorf("peer: holder %s no longer has %s", m.Partition.Holder, m.Partition)
	}
	rs, ok := p.cfg.Schema.Relation(fd.Data.Relation)
	if !ok {
		return nil, fmt.Errorf("peer: unknown relation %q in fetched data", fd.Data.Relation)
	}
	return &relation.Relation{Schema: rs, Tuples: fd.Data.Tuples}, nil
}
