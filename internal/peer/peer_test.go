package peer

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"p2prange/internal/chord"
	"p2prange/internal/minhash"
	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
	"p2prange/internal/store"
	"p2prange/internal/transport"
)

// testCluster builds n peers on a converged ring over an in-memory net.
func testCluster(t testing.TB, n int, cfg Config) ([]*Peer, *transport.Memory) {
	t.Helper()
	if cfg.Scheme == nil {
		s, err := minhash.NewScheme(minhash.ApproxMinWise, 4, 3, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scheme = s.Compiled()
	}
	net := transport.NewMemory()
	var peers []*Peer
	seen := map[chord.ID]bool{}
	for i := 0; len(peers) < n; i++ {
		addr := fmt.Sprintf("p%d", i)
		p, err := New(addr, net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p.Node().ID()] {
			continue
		}
		seen[p.Node().ID()] = true
		net.Register(addr, p.Handle)
		peers = append(peers, p)
	}
	nodes := make([]*chord.Node, n)
	for i, p := range peers {
		nodes[i] = p.Node()
	}
	if err := chord.BuildStableRing(nodes); err != nil {
		t.Fatal(err)
	}
	return peers, net
}

func TestLookupEmptySystem(t *testing.T) {
	peers, _ := testCluster(t, 8, Config{})
	q := rangeset.Range{Lo: 30, Hi: 50}
	lr, err := peers[0].Lookup("R", "a", q, true)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Found {
		t.Error("empty system found a match")
	}
	if !lr.Stored {
		t.Error("query range should be cached on miss")
	}
	if len(lr.Hops) == 0 {
		t.Error("no hop accounting")
	}
	// The descriptor is now stored at its identifier owners; an exact
	// repeat finds it from any origin peer.
	lr2, err := peers[5].Lookup("R", "a", q, true)
	if err != nil {
		t.Fatal(err)
	}
	if !lr2.Found || lr2.Match.Partition.Range != q {
		t.Fatalf("exact repeat not found: %+v", lr2)
	}
	if lr2.Match.Score != 1 {
		t.Errorf("exact match score = %g", lr2.Match.Score)
	}
	if lr2.Stored {
		t.Error("exact match must not re-store")
	}
}

func TestLookupNoCache(t *testing.T) {
	peers, _ := testCluster(t, 4, Config{})
	q := rangeset.Range{Lo: 5, Hi: 9}
	if _, err := peers[0].Lookup("R", "a", q, false); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range peers {
		total += p.Store().Len()
	}
	if total != 0 {
		t.Errorf("cache=false stored %d descriptors", total)
	}
}

func TestSimilarRangeMatches(t *testing.T) {
	peers, _ := testCluster(t, 8, Config{Measure: store.MatchContainment})
	if _, err := peers[0].Lookup("R", "a", rangeset.Range{Lo: 30, Hi: 50}, true); err != nil {
		t.Fatal(err)
	}
	lr, err := peers[3].Lookup("R", "a", rangeset.Range{Lo: 30, Hi: 49}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Found {
		t.Fatal("0.95-similar range found no match (k=4, l=3 should collide)")
	}
	if lr.Match.Score != 1 {
		t.Errorf("containment score = %g, want 1 (query inside cached range)", lr.Match.Score)
	}
}

func TestLookupIsolatesRelations(t *testing.T) {
	peers, _ := testCluster(t, 4, Config{})
	q := rangeset.Range{Lo: 0, Hi: 10}
	if _, err := peers[0].Lookup("R", "a", q, true); err != nil {
		t.Fatal(err)
	}
	lr, err := peers[0].Lookup("S", "a", q, false)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Found {
		t.Error("match leaked across relations")
	}
	lr, err = peers[0].Lookup("R", "b", q, false)
	if err != nil {
		t.Fatal(err)
	}
	if lr.Found {
		t.Error("match leaked across attributes")
	}
}

func TestPublishAndFetchData(t *testing.T) {
	schema := relation.MedicalSchema()
	peers, _ := testCluster(t, 6, Config{Schema: schema})
	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 100, Physicians: 5, Diagnoses: 100, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	holder := peers[2]
	rg := rangeset.Range{Lo: 30, Hi: 50}
	part, err := rels["Patient"].Partition("age", rg)
	if err != nil {
		t.Fatal(err)
	}
	holder.AddPartition(part)
	if holder.PartitionCount() != 1 {
		t.Errorf("PartitionCount = %d", holder.PartitionCount())
	}
	if _, err := holder.Publish(store.Partition{Relation: "Patient", Attribute: "age", Range: rg}); err != nil {
		t.Fatal(err)
	}
	// Another peer finds and fetches it.
	querier := peers[5]
	lr, err := querier.Lookup("Patient", "age", rg, false)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Found || lr.Match.Partition.Holder != holder.Addr() {
		t.Fatalf("lookup = %+v", lr)
	}
	data, err := querier.FetchData(lr.Match)
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != part.Data.Len() {
		t.Errorf("fetched %d tuples, holder has %d", data.Len(), part.Data.Len())
	}
	// Fetch of a vanished partition errors cleanly.
	ghost := lr.Match
	ghost.Partition.Range = rangeset.Range{Lo: 1, Hi: 2}
	if _, err := querier.FetchData(ghost); err == nil {
		t.Error("fetch of unheld partition succeeded")
	}
}

func TestPeerIndexFindsOtherBuckets(t *testing.T) {
	// With one peer, the peer-wide index sees every bucket; a query that
	// shares no LSH bucket with the stored range still finds it.
	peers, _ := testCluster(t, 1, Config{UsePeerIndex: true, Measure: store.MatchContainment})
	if _, err := peers[0].Lookup("R", "a", rangeset.Range{Lo: 0, Hi: 400}, true); err != nil {
		t.Fatal(err)
	}
	lr, err := peers[0].Lookup("R", "a", rangeset.Range{Lo: 100, Hi: 120}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Found || lr.Match.Score != 1 {
		t.Fatalf("peer index missed containing range: %+v", lr)
	}
}

func TestHandleBadRequest(t *testing.T) {
	peers, _ := testCluster(t, 1, Config{})
	if _, err := peers[0].Handle("nonsense"); err == nil {
		t.Error("bad request accepted")
	}
}

func TestNewRequiresScheme(t *testing.T) {
	if _, err := New("x", transport.NewMemory(), Config{}); err == nil {
		t.Error("peer without scheme accepted")
	}
}

func TestHandoffAndReclaim(t *testing.T) {
	peers, _ := testCluster(t, 6, Config{})
	q := rangeset.Range{Lo: 10, Hi: 90}
	if _, err := peers[0].Lookup("R", "a", q, true); err != nil {
		t.Fatal(err)
	}
	// Find a peer that holds descriptors and hand everything to another.
	var donor *Peer
	for _, p := range peers {
		if p.Store().Len() > 0 {
			donor = p
			break
		}
	}
	if donor == nil {
		t.Fatal("nothing stored anywhere")
	}
	recipient := peers[0]
	if recipient == donor {
		recipient = peers[1]
	}
	moved := donor.Store().Len()
	before := recipient.Store().Len()
	if err := donor.HandoffTo(recipient.Ref()); err != nil {
		t.Fatal(err)
	}
	if donor.Store().Len() != 0 {
		t.Errorf("donor still holds %d", donor.Store().Len())
	}
	if got := recipient.Store().Len(); got != before+moved {
		t.Errorf("recipient holds %d, want %d", got, before+moved)
	}
}

func TestHandoffFailureRestoresBuckets(t *testing.T) {
	peers, net := testCluster(t, 4, Config{})
	if _, err := peers[0].Lookup("R", "a", rangeset.Range{Lo: 0, Hi: 50}, true); err != nil {
		t.Fatal(err)
	}
	var donor *Peer
	for _, p := range peers {
		if p.Store().Len() > 0 {
			donor = p
			break
		}
	}
	if donor == nil {
		t.Skip("no donor")
	}
	had := donor.Store().Len()
	var target *Peer
	for _, p := range peers {
		if p != donor {
			target = p
			break
		}
	}
	net.SetDown(target.Addr(), true)
	if err := donor.HandoffTo(target.Ref()); err == nil {
		t.Error("handoff to dead peer succeeded")
	}
	if donor.Store().Len() != had {
		t.Errorf("failed handoff lost data: %d -> %d", had, donor.Store().Len())
	}
}

func TestIdentifiersDeterministic(t *testing.T) {
	peers, _ := testCluster(t, 2, Config{})
	q := rangeset.Range{Lo: 1, Hi: 5}
	a := peers[0].Identifiers(q)
	b := peers[1].Identifiers(q)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("peers disagree on identifiers (shared scheme broken)")
		}
	}
}

func TestLookupSet(t *testing.T) {
	peers, _ := testCluster(t, 8, Config{Measure: store.MatchContainment})
	// Cache partitions covering the two components.
	for _, rg := range []rangeset.Range{{Lo: 30, Hi: 50}, {Lo: 100, Hi: 130}} {
		if _, err := peers[0].Lookup("R", "a", rg, true); err != nil {
			t.Fatal(err)
		}
	}
	// Component 0 is 0.95-similar to its cached partition; component 1 is
	// an exact repeat (always findable regardless of key material).
	qs := rangeset.NewSet(rangeset.Range{Lo: 30, Hi: 49}, rangeset.Range{Lo: 100, Hi: 130})
	res, err := peers[3].LookupSet("R", "a", qs, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != 2 {
		t.Fatalf("components = %d", len(res.Components))
	}
	for i, c := range res.Components {
		if !c.Found {
			t.Fatalf("component %d found no match", i)
		}
	}
	if res.Recall != 1 {
		t.Errorf("set recall = %g, want 1 (both components contained)", res.Recall)
	}
	if got := res.Covered.Size(); got != qs.Size() {
		t.Errorf("covered %d of %d values", got, qs.Size())
	}
}

func TestLookupSetPartialCoverage(t *testing.T) {
	peers, _ := testCluster(t, 4, Config{Measure: store.MatchContainment})
	// Only the first component has a cached superset.
	if _, err := peers[0].Lookup("R", "a", rangeset.Range{Lo: 0, Hi: 20}, true); err != nil {
		t.Fatal(err)
	}
	qs := rangeset.NewSet(rangeset.Range{Lo: 0, Hi: 19}, rangeset.Range{Lo: 800, Hi: 819})
	res, err := peers[1].LookupSet("R", "a", qs, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recall <= 0 || res.Recall >= 1 {
		t.Errorf("expected partial recall, got %g", res.Recall)
	}
}

func TestLookupSetEmpty(t *testing.T) {
	peers, _ := testCluster(t, 2, Config{})
	res, err := peers[0].LookupSet("R", "a", rangeset.Set{}, false)
	if err != nil || res.Recall != 1 || len(res.Components) != 0 {
		t.Errorf("empty set lookup = %+v, %v", res, err)
	}
}

// TestConcurrentLookups hammers the Section 4 protocol from many
// goroutines with caching enabled; run under -race to validate the peer
// and store locking discipline end to end.
func TestConcurrentLookups(t *testing.T) {
	peers, _ := testCluster(t, 12, Config{Measure: store.MatchContainment})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				lo := rng.Int63n(900)
				q := rangeset.Range{Lo: lo, Hi: lo + rng.Int63n(100) + 1}
				if _, err := peers[rng.Intn(len(peers))].Lookup("R", "a", q, true); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	total := 0
	for _, p := range peers {
		total += p.Store().Len()
	}
	if total == 0 {
		t.Error("nothing cached after concurrent workload")
	}
}

func TestLookupRejectsUnhashableRanges(t *testing.T) {
	peers, _ := testCluster(t, 2, Config{})
	huge := rangeset.Range{Lo: -(1 << 62), Hi: 1 << 62}
	if _, err := peers[0].Lookup("R", "a", huge, false); err == nil {
		t.Error("huge range accepted (would iterate ~2^63 values)")
	}
	overflow := rangeset.Range{Lo: math.MinInt64, Hi: math.MaxInt64}
	if _, err := peers[0].Lookup("R", "a", overflow, false); err == nil {
		t.Error("overflowing range accepted")
	}
	if _, err := peers[0].Publish(store.Partition{Relation: "R", Attribute: "a", Range: huge}); err == nil {
		t.Error("Publish accepted an unhashable range")
	}
	// A maximal-but-legal range still works.
	legal := rangeset.Range{Lo: 0, Hi: MaxRangeSize - 1}
	if _, err := peers[0].Lookup("R", "a", legal, false); err != nil {
		t.Errorf("legal maximal range rejected: %v", err)
	}
}

// TestLookupSurvivesOwnerCrash covers the query-side failure path: an
// identifier's owner crashes after descriptors were cached there; the
// querying peer must mark it suspect, re-resolve the bucket to the
// successor that inherited the arc, and complete the lookup — matching
// via the surviving owners rather than erroring out.
func TestLookupSurvivesOwnerCrash(t *testing.T) {
	peers, net := testCluster(t, 12, Config{})
	q := rangeset.Range{Lo: 30, Hi: 50}
	if _, err := peers[0].Lookup("R", "a", q, true); err != nil {
		t.Fatal(err)
	}
	querier := peers[5]
	var victim chord.Ref
	for _, id := range querier.Identifiers(q) {
		owner, _, err := querier.Node().Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if owner.ID != querier.Node().ID() && owner.ID != peers[0].Node().ID() {
			victim = owner
			break
		}
	}
	if victim.IsZero() {
		t.Skip("no crashable owner distinct from querier and publisher")
	}
	net.SetDown(victim.Addr, true)

	lr, err := querier.Lookup("R", "a", q, false)
	if err != nil {
		t.Fatalf("lookup with crashed owner %s: %v", victim, err)
	}
	if !lr.Found {
		t.Error("surviving owners had the descriptor but lookup found nothing")
	}
	if !querier.Node().Suspect(victim.ID) {
		t.Error("crashed owner not marked suspect")
	}
}
