package peer

import (
	"p2prange/internal/rangeset"
)

// SetLookupResult is the outcome of a multi-interval lookup: one ordinary
// lookup per component range plus set-level recall accounting.
type SetLookupResult struct {
	// Components holds the per-component results, in the canonical order
	// of the set's disjoint ranges.
	Components []LookupResult
	// Covered is the part of the query set covered by the union of all
	// matched partitions.
	Covered rangeset.Set
	// Recall is |Covered| / |query set|.
	Recall float64
}

// LookupSet answers a multi-interval range predicate (e.g. the union of
// two disjoint ranges from an IN/OR condition) by running the Section 4
// protocol once per component range and composing the answers. This is
// the practical form of the paper's multi-interval future work: cached
// partitions are single ranges, so each component probes and caches
// under its own identifiers, and the caller learns how much of the whole
// set the cache covered.
func (p *Peer) LookupSet(rel, attribute string, qs rangeset.Set, cache bool) (SetLookupResult, error) {
	var res SetLookupResult
	if qs.Empty() {
		res.Recall = 1 // nothing requested, everything answered
		return res, nil
	}
	var covered []rangeset.Range
	for _, q := range qs.Ranges() {
		lr, err := p.Lookup(rel, attribute, q, cache)
		if err != nil {
			return res, err
		}
		res.Components = append(res.Components, lr)
		if lr.Found {
			if inter, ok := q.Intersect(lr.Match.Partition.Range); ok {
				covered = append(covered, inter)
			}
		}
	}
	res.Covered = rangeset.NewSet(covered...)
	res.Recall = qs.Containment(res.Covered)
	return res, nil
}
