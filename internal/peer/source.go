package peer

import (
	"fmt"
	"math"

	"p2prange/internal/metrics"
	"p2prange/internal/query"
	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
	"p2prange/internal/store"
	"p2prange/internal/trace"
)

// metFallbacks counts leaf fetches that went to the base source because
// the DHT answer was absent or below MinRecall (Default registry).
var metFallbacks = metrics.Default.Counter("peer.fallbacks")

// DataSource adapts a Peer to the query executor's Source interface,
// implementing the paper's end-to-end flow for a selection leaf:
//
//  1. hash the (optionally padded) range and locate the best cached
//     partition through the DHT,
//  2. fetch its tuples from the holder peer,
//  3. if the match covers the query only partially (or not at all) and a
//     base source is configured, fall back to the source relation — "if
//     the user is not satisfied with the answer, they have a choice to go
//     to the source" — and cache the freshly computed partition: the data
//     materializes at this peer and the descriptor is published under its
//     l identifiers.
type DataSource struct {
	// Peer performs lookups and holds newly cached partitions.
	Peer *Peer
	// Base is the fallback source (typically query.RelationSource at the
	// data-source peer); nil means approximate answers only.
	Base query.Source
	// PadFrac expands query ranges before hashing (Fig. 10's padding);
	// zero disables padding.
	PadFrac float64
	// MinRecall is the coverage threshold below which the base fallback
	// triggers (default 1: any partial answer goes to the source when a
	// base is available).
	MinRecall float64
	// Domains clamps half-open ranges per "Relation.attribute"; entries
	// are optional when Base can supply the domain.
	Domains map[string]rangeset.Range
}

var _ query.Source = (*DataSource)(nil)
var _ query.SigStatsProvider = (*DataSource)(nil)
var _ query.TracedSource = (*DataSource)(nil)

// SigStats implements query.SigStatsProvider by exposing the querying
// peer's signature-pipeline counters, so SQL executions can report how
// much of their leaf hashing the signature cache absorbed.
func (s *DataSource) SigStats() metrics.SigSnapshot { return s.Peer.SigStats() }

// Fetch implements query.Source.
func (s *DataSource) Fetch(rel, attribute string, rg rangeset.Range) (*relation.Relation, rangeset.Range, error) {
	return s.FetchTraced(rel, attribute, rg, nil)
}

// FetchTraced implements query.TracedSource: Fetch recording the probe
// range, the DHT lookup (as a child span), the data fetch from the
// holder, and any base-source fallback on sp.
func (s *DataSource) FetchTraced(rel, attribute string, rg rangeset.Range, sp *trace.Span) (*relation.Relation, rangeset.Range, error) {
	rg = s.clamp(rel, attribute, rg)
	probe := rg
	if s.PadFrac > 0 {
		dom := s.domain(rel, attribute, rg)
		probe = rg.Pad(s.PadFrac, dom.Lo, dom.Hi)
		if sp.On() && probe != rg {
			sp.Eventf("pad", "%s -> %s", rg, probe)
		}
	}
	var ls *trace.Span
	if sp.On() {
		ls = sp.Child(fmt.Sprintf("lookup %s.%s %s", rel, attribute, probe))
	}
	lr, err := s.Peer.LookupTraced(rel, attribute, probe, true, ls)
	ls.End()
	if err != nil {
		return nil, rangeset.Range{}, err
	}
	minRecall := s.MinRecall
	if minRecall <= 0 {
		minRecall = 1
	}
	var data *relation.Relation
	covered := rangeset.Range{Lo: 0, Hi: -1} // empty
	if lr.Found {
		if inter, ok := rg.Intersect(lr.Match.Partition.Range); ok {
			d, err := s.Peer.FetchDataTraced(lr.Match, sp)
			if err == nil {
				data, covered = d, inter
				if sp.On() {
					sp.Eventf("fetch", "%d tuple(s) from %s", len(d.Tuples), lr.Match.Partition.Holder)
				}
			} else if s.Base == nil {
				return nil, rangeset.Range{}, err
			}
		}
	}
	recall := 0.0
	if covered.Valid() {
		recall = rg.Recall(covered)
	}
	if recall >= minRecall || s.Base == nil {
		if sp.On() {
			sp.Eventf("answer", "recall=%.3f from cache", recall)
		}
		if data == nil {
			// No match at all and no fallback: an empty, zero-coverage
			// answer (the schema may be unknown without a base; synthesize
			// from the peer's schema).
			rs, ok := s.schemaFor(rel)
			if !ok {
				return nil, rangeset.Range{}, fmt.Errorf("peer: no match and no base source for %s", rel)
			}
			return relation.NewRelation(rs), covered, nil
		}
		return data, covered, nil
	}
	// Fall back to the source relation, then cache the computed partition
	// so the system benefits next time: materialize here, publish the
	// descriptor under the probe range actually evaluated.
	metFallbacks.Inc()
	if sp.On() {
		sp.Eventf("fallback", "recall=%.3f < %.3f, going to source", recall, minRecall)
	}
	full, fullCovered, err := s.Base.Fetch(rel, attribute, probe)
	if err != nil {
		return nil, rangeset.Range{}, err
	}
	part := &relation.Partition{Relation: rel, Attribute: attribute, Range: fullCovered, Data: full}
	s.Peer.AddPartition(part)
	if _, err := s.Peer.PublishTraced(storeDescriptor(part, s.Peer.Addr()), sp); err != nil {
		return nil, rangeset.Range{}, err
	}
	return full, rg, nil
}

// FetchAll implements query.Source; full scans always go to the base.
func (s *DataSource) FetchAll(rel string) (*relation.Relation, error) {
	if s.Base == nil {
		return nil, fmt.Errorf("peer: full scan of %s requires a base source", rel)
	}
	return s.Base.FetchAll(rel)
}

func (s *DataSource) clamp(rel, attribute string, rg rangeset.Range) rangeset.Range {
	if rg.Lo != math.MinInt64 && rg.Hi != math.MaxInt64 {
		return rg
	}
	dom := s.domain(rel, attribute, rg)
	if rg.Lo == math.MinInt64 {
		rg.Lo = dom.Lo
	}
	if rg.Hi == math.MaxInt64 {
		rg.Hi = dom.Hi
	}
	if rg.Hi < rg.Lo {
		rg.Hi = rg.Lo
	}
	return rg
}

// domain returns the attribute domain used for clamping and padding.
func (s *DataSource) domain(rel, attribute string, fallback rangeset.Range) rangeset.Range {
	if d, ok := s.Domains[rel+"."+attribute]; ok {
		return d
	}
	if s.Base != nil {
		if full, err := s.Base.FetchAll(rel); err == nil {
			if d, err := full.AttributeRange(attribute); err == nil {
				return d
			}
		}
	}
	return fallback
}

func (s *DataSource) schemaFor(rel string) (*relation.RelationSchema, bool) {
	if s.Peer.cfg.Schema == nil {
		return nil, false
	}
	return s.Peer.cfg.Schema.Relation(rel)
}

// storeDescriptor converts a materialized partition to its DHT descriptor.
func storeDescriptor(p *relation.Partition, holder string) store.Partition {
	return store.Partition{
		Relation:  p.Relation,
		Attribute: p.Attribute,
		Range:     p.Range,
		Holder:    holder,
	}
}
