package query

import (
	"fmt"
	"sort"

	"p2prange/internal/relation"
)

// aggregate computes the plan's aggregate outputs over the joined rows,
// optionally grouped. Output columns are the GROUP BY column (if any)
// followed by one synthesized column per aggregate. AVG over integer
// ordinals truncates toward zero (the type system has no float column).
func aggregate(plan *Plan, schema *relation.Schema, rows []row, res *Result) error {
	type colIdx struct {
		rel string
		col int
	}
	locate := func(c ColRef) (colIdx, error) {
		rs, ok := schema.Relation(c.Relation)
		if !ok {
			return colIdx{}, fmt.Errorf("%w: %s", ErrUnknownColumn, c)
		}
		j, ok := rs.ColIndex(c.Column)
		if !ok {
			return colIdx{}, fmt.Errorf("%w: %s", ErrUnknownColumn, c)
		}
		return colIdx{c.Relation, j}, nil
	}

	var groupAt colIdx
	if plan.GroupBy != nil {
		var err error
		groupAt, err = locate(*plan.GroupBy)
		if err != nil {
			return err
		}
	}
	inputs := make([]colIdx, len(plan.Aggregates))
	for i, spec := range plan.Aggregates {
		if spec.Star {
			continue
		}
		var err error
		inputs[i], err = locate(spec.Col)
		if err != nil {
			return err
		}
	}

	// Accumulators per group (single group "" without GROUP BY).
	type acc struct {
		groupVal relation.Value
		count    []int64
		sum      []int64
		min, max []relation.Value
		seen     []bool
	}
	newAcc := func(gv relation.Value) *acc {
		n := len(plan.Aggregates)
		return &acc{
			groupVal: gv,
			count:    make([]int64, n),
			sum:      make([]int64, n),
			min:      make([]relation.Value, n),
			max:      make([]relation.Value, n),
			seen:     make([]bool, n),
		}
	}
	groups := make(map[string]*acc)
	var order []string
	for _, r := range rows {
		key := ""
		var gv relation.Value
		if plan.GroupBy != nil {
			gv = r[groupAt.rel][groupAt.col]
			key = valueKey(gv)
		}
		a, ok := groups[key]
		if !ok {
			a = newAcc(gv)
			groups[key] = a
			order = append(order, key)
		}
		for i, spec := range plan.Aggregates {
			if spec.Star {
				a.count[i]++
				continue
			}
			v := r[inputs[i].rel][inputs[i].col]
			a.count[i]++
			a.sum[i] += v.Ordinal()
			if !a.seen[i] || valueLess(v, a.min[i]) {
				a.min[i] = v
			}
			if !a.seen[i] || valueLess(a.max[i], v) {
				a.max[i] = v
			}
			a.seen[i] = true
		}
	}
	// A global aggregate over zero rows still yields one row of zeros.
	if plan.GroupBy == nil && len(groups) == 0 {
		groups[""] = newAcc(relation.Value{})
		order = append(order, "")
	}

	// Output schema: group column first (if grouped), then aggregates.
	res.Columns = res.Columns[:0]
	if plan.GroupBy != nil {
		res.Columns = append(res.Columns, *plan.GroupBy)
	}
	for _, spec := range plan.Aggregates {
		name := spec.Kind.String() + "(*)"
		if !spec.Star {
			name = fmt.Sprintf("%s(%s)", spec.Kind, spec.Col)
		}
		res.Columns = append(res.Columns, ColRef{Column: name})
	}

	// Deterministic output: sort groups by key value.
	if plan.GroupBy != nil {
		sort.SliceStable(order, func(i, j int) bool {
			return valueLess(groups[order[i]].groupVal, groups[order[j]].groupVal)
		})
	}
	res.Rows = res.Rows[:0]
	for _, key := range order {
		a := groups[key]
		var out relation.Tuple
		if plan.GroupBy != nil {
			out = append(out, a.groupVal)
		}
		for i, spec := range plan.Aggregates {
			out = append(out, aggValue(spec, a.count[i], a.sum[i], a.min[i], a.max[i], a.seen[i]))
		}
		res.Rows = append(res.Rows, out)
	}
	return nil
}

// aggValue materializes one aggregate cell.
func aggValue(spec AggSpec, count, sum int64, minV, maxV relation.Value, seen bool) relation.Value {
	switch spec.Kind {
	case AggCount:
		return relation.IntVal(count)
	case AggSum:
		return relation.IntVal(sum)
	case AggAvg:
		if count == 0 {
			return relation.IntVal(0)
		}
		return relation.IntVal(sum / count)
	case AggMin:
		if !seen {
			return relation.Value{}
		}
		return minV
	case AggMax:
		if !seen {
			return relation.Value{}
		}
		return maxV
	default:
		return relation.Value{}
	}
}
