package query

import (
	"fmt"
	"strings"

	"p2prange/internal/relation"
)

// ColRef names a column, optionally qualified by relation.
type ColRef struct {
	Relation string // empty until resolved
	Column   string
}

// String formats the reference.
func (c ColRef) String() string {
	if c.Relation == "" {
		return c.Column
	}
	return c.Relation + "." + c.Column
}

// Operand is one side of a comparison: a column reference, a literal, or
// a literal list (the right side of IN).
type Operand struct {
	Col  ColRef
	Lit  *relation.Value  // single literal
	List []relation.Value // IN list
}

// IsCol reports whether the operand is a column reference.
func (o Operand) IsCol() bool { return o.Lit == nil && o.List == nil }

// String formats the operand as re-parseable SQL.
func (o Operand) String() string {
	if len(o.List) > 0 {
		parts := make([]string, len(o.List))
		for i, v := range o.List {
			parts[i] = sqlLiteral(v)
		}
		return "(" + strings.Join(parts, ", ") + ")"
	}
	if o.Lit != nil {
		return sqlLiteral(*o.Lit)
	}
	return o.Col.String()
}

// sqlLiteral renders a literal in the dialect's own syntax: strings in
// single quotes with doubled-quote escaping, dates as quoted YYYY-MM-DD,
// integers bare.
func sqlLiteral(v relation.Value) string {
	switch v.Kind {
	case relation.TString:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	case relation.TDate:
		return "'" + v.String() + "'"
	default:
		return v.String()
	}
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	OpLT CmpOp = iota
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	// OpIn tests membership in a literal list; the DHT resolves the list's
	// covering range [min, max] and the exact membership re-checks locally.
	OpIn
)

// String formats the operator.
func (op CmpOp) String() string {
	switch op {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpIn:
		return "IN"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// flip mirrors the operator so "lit op col" normalizes to "col flip lit".
func (op CmpOp) flip() CmpOp {
	switch op {
	case OpLT:
		return OpGT
	case OpLE:
		return OpGE
	case OpGT:
		return OpLT
	case OpGE:
		return OpLE
	default:
		return op
	}
}

// Predicate is one conjunct of the WHERE clause.
type Predicate struct {
	Left  Operand
	Op    CmpOp
	Right Operand
}

// String formats the predicate.
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// AggKind identifies an aggregate function in the select list.
type AggKind int

// Aggregate functions.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String names the aggregate as written in SQL.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return ""
	}
}

// SelectItem is one entry of the projection list: a plain column, or an
// aggregate over a column (Star marks COUNT(*)).
type SelectItem struct {
	Agg  AggKind
	Col  ColRef
	Star bool // COUNT(*)
}

// String renders the item as SQL.
func (s SelectItem) String() string {
	if s.Agg == AggNone {
		return s.Col.String()
	}
	if s.Star {
		return s.Agg.String() + "(*)"
	}
	return s.Agg.String() + "(" + s.Col.String() + ")"
}

// OrderSpec is an ORDER BY clause: one column, ascending by default.
type OrderSpec struct {
	Col  ColRef
	Desc bool
}

// Query is the parsed SELECT statement: a projection list (empty means *),
// FROM relations, a conjunction of predicates, and optional GROUP BY /
// ORDER BY / LIMIT clauses.
type Query struct {
	Distinct bool
	Select   []SelectItem
	From     []string
	Where    []Predicate
	GroupBy  *ColRef
	OrderBy  *OrderSpec
	// Limit caps the result rows; negative means no limit (Parse
	// initializes it to -1; programmatic builders must set it, since the
	// zero value is the legal LIMIT 0).
	Limit int
}

// String re-renders the query approximately.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(q.Select) == 0 {
		b.WriteString("*")
	} else {
		for i, c := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(q.From, ", "))
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if q.GroupBy != nil {
		b.WriteString(" GROUP BY ")
		b.WriteString(q.GroupBy.String())
	}
	if q.OrderBy != nil {
		b.WriteString(" ORDER BY ")
		b.WriteString(q.OrderBy.Col.String())
		if q.OrderBy.Desc {
			b.WriteString(" DESC")
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}
