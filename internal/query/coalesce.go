package query

import (
	"sync"

	"p2prange/internal/metrics"
	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
)

// metCoalesced counts fetches answered by joining another in-flight
// fetch for the same leaf instead of issuing their own lookup.
var metCoalesced = metrics.Default.Counter("query.coalesced")

// Coalescer deduplicates identical concurrent range fetches
// (singleflight): when several executions ask for the same
// relation.attribute range at the same moment, one of them performs the
// DHT lookup and data fetch while the rest wait for its result. Under a
// hot-key load this collapses l identifier probes per duplicate query
// into zero. Share one Coalescer per querying peer; Bind attaches it to
// the Source of one execution.
//
// Followers receive the leader's result values, so the underlying
// relation must be treated as read-only — which the executor already
// guarantees (operators build new relations rather than mutating
// inputs).
type Coalescer struct {
	mu       sync.Mutex
	inflight map[string]*flight
}

// flight is one in-progress fetch; done closes when results are set.
type flight struct {
	done    chan struct{}
	data    *relation.Relation
	covered rangeset.Range
	err     error
}

// NewCoalescer returns an empty Coalescer.
func NewCoalescer() *Coalescer {
	return &Coalescer{inflight: make(map[string]*flight)}
}

// Bind returns a Source view that routes Fetch through the coalescer
// and everything else straight to inner.
func (c *Coalescer) Bind(inner Source) Source {
	return &coalescedSource{c: c, inner: inner}
}

// fetch runs one coalesced fetch: the first caller for a key becomes the
// leader and executes src.Fetch; concurrent callers with the same key
// wait and share the leader's result.
func (c *Coalescer) fetch(src Source, rel, attribute string, rg rangeset.Range) (*relation.Relation, rangeset.Range, error) {
	key := rel + "\x00" + attribute + "\x00" + rg.String()
	c.mu.Lock()
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		metCoalesced.Inc()
		<-f.done
		return f.data, f.covered, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.data, f.covered, f.err = src.Fetch(rel, attribute, rg)

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return f.data, f.covered, f.err
}

// coalescedSource is the per-execution binding of a shared Coalescer to
// that execution's Source.
type coalescedSource struct {
	c     *Coalescer
	inner Source
}

func (s *coalescedSource) Fetch(rel, attribute string, rg rangeset.Range) (*relation.Relation, rangeset.Range, error) {
	return s.c.fetch(s.inner, rel, attribute, rg)
}

func (s *coalescedSource) FetchAll(rel string) (*relation.Relation, error) {
	return s.inner.FetchAll(rel)
}

// SigStats forwards to the inner source when it reports signature stats.
func (s *coalescedSource) SigStats() metrics.SigSnapshot {
	if sp, ok := s.inner.(SigStatsProvider); ok {
		return sp.SigStats()
	}
	return metrics.SigSnapshot{}
}
