package query

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
)

// gateSource counts Fetch calls and blocks each one until released, so
// tests can force overlap between concurrent fetches.
type gateSource struct {
	calls   atomic.Int64
	release chan struct{}
	err     error
}

func (g *gateSource) Fetch(rel, attribute string, rg rangeset.Range) (*relation.Relation, rangeset.Range, error) {
	g.calls.Add(1)
	<-g.release
	if g.err != nil {
		return nil, rangeset.Range{}, g.err
	}
	return &relation.Relation{}, rg, nil
}

func (g *gateSource) FetchAll(rel string) (*relation.Relation, error) {
	return &relation.Relation{}, nil
}

func TestCoalescerSharesOneFlight(t *testing.T) {
	g := &gateSource{release: make(chan struct{})}
	c := NewCoalescer()
	src := c.Bind(g)
	rg := rangeset.Range{Lo: 10, Hi: 20}

	const n = 16
	coalescedBefore := metCoalesced.Value()
	var wg sync.WaitGroup
	results := make([]*relation.Relation, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, covered, err := src.Fetch("R", "a", rg)
			if err != nil || covered != rg {
				t.Errorf("fetch %d: covered=%v err=%v", i, covered, err)
			}
			results[i] = data
		}(i)
	}
	// Followers bump query.coalesced before waiting on the flight; hold
	// the leader inside Fetch until all n-1 followers have joined it.
	for metCoalesced.Value()-coalescedBefore < n-1 {
	}
	close(g.release)
	wg.Wait()

	if got := g.calls.Load(); got != 1 {
		t.Errorf("inner Fetch called %d times, want 1 (coalesced)", got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Errorf("fetch %d got a different relation than the leader", i)
		}
	}
}

func TestCoalescerDistinctKeysRunIndependently(t *testing.T) {
	g := &gateSource{release: make(chan struct{})}
	close(g.release) // no blocking needed
	c := NewCoalescer()
	src := c.Bind(g)
	src.Fetch("R", "a", rangeset.Range{Lo: 0, Hi: 5})
	src.Fetch("R", "a", rangeset.Range{Lo: 0, Hi: 6})
	src.Fetch("R", "b", rangeset.Range{Lo: 0, Hi: 5})
	src.Fetch("S", "a", rangeset.Range{Lo: 0, Hi: 5})
	if got := g.calls.Load(); got != 4 {
		t.Errorf("inner Fetch called %d times, want 4 distinct flights", got)
	}
	// Sequential repeats are not coalesced either: the flight is gone.
	src.Fetch("R", "a", rangeset.Range{Lo: 0, Hi: 5})
	if got := g.calls.Load(); got != 5 {
		t.Errorf("inner Fetch called %d times, want 5", got)
	}
}

func TestCoalescerPropagatesErrors(t *testing.T) {
	wantErr := errors.New("source down")
	g := &gateSource{release: make(chan struct{}), err: wantErr}
	c := NewCoalescer()
	src := c.Bind(g)
	rg := rangeset.Range{Lo: 1, Hi: 2}

	coalescedBefore := metCoalesced.Value()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = src.Fetch("R", "a", rg)
		}(i)
	}
	for metCoalesced.Value()-coalescedBefore < uint64(len(errs)-1) {
	}
	close(g.release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, wantErr) {
			t.Errorf("fetch %d: err = %v, want %v", i, err, wantErr)
		}
	}
}
