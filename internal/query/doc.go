// Package query implements the restricted SQL front end of the paper's
// architecture (Sec. 2, Fig. 1): SELECT queries with conjunctive WHERE
// clauses of single-attribute range predicates and equijoins.
//
// # Pipeline
//
// Parse lexes and parses the SQL subset into a Query; BuildPlan (and
// BuildPlanWith, which adds the multi-attribute and statistics-based
// join-ordering extensions from the paper's future-work list) pushes
// selects to the leaves and emits, per relation, the one range selection
// the P2P layer resolves through the DHT — the Fig. 1 plan shape, where
// "select operations are pushed onto the DHT" and the rest evaluates at
// the querying peer. Execute fetches each leaf through a Source (the DHT
// in P2P deployments, via peer.DataSource), applies residual filters,
// evaluates equijoins with hash joins, and projects; Result carries
// per-scan recall so callers can report how approximate the answer is
// (the Figs. 8-10 metric per query), plus the signature-cache outcome
// when the source implements SigStatsProvider.
//
// # Observability
//
// ExecuteTraced records one child span per scan leaf on an internal/trace
// Span — with the whole DHT lookup inside when the source implements
// TracedSource — plus the join/projection stage. The package feeds the
// query.* family of the internal/metrics Default registry (executions,
// scans, fullscans); see docs/OBSERVABILITY.md.
package query
