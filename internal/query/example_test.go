package query_test

import (
	"fmt"
	"log"

	"p2prange/internal/query"
	"p2prange/internal/relation"
)

// Parsing and planning the paper's example query (Sec. 2, Fig. 1): the
// planner pushes each relation's selection to its leaf, where the P2P
// layer resolves it through the DHT.
func ExampleBuildPlan() {
	q, err := query.Parse(`
		SELECT Prescription.prescription
		FROM Patient, Diagnosis, Prescription
		WHERE 30 <= age AND age <= 50
		  AND diagnosis = 'Glaucoma'
		  AND Patient.patient_id = Diagnosis.patient_id
		  AND '2000-01-01' <= date AND date <= '2002-12-31'
		  AND Diagnosis.prescription_id = Prescription.prescription_id`)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := query.BuildPlan(q, relation.MedicalSchema())
	if err != nil {
		log.Fatal(err)
	}
	for _, scan := range plan.Scans {
		if scan.Relation == "Patient" {
			fmt.Printf("%s pushes %s in %s\n", scan.Relation, scan.Attribute, scan.Range)
		}
	}
	fmt.Printf("%d joins\n", len(plan.Joins))
	// Output:
	// Patient pushes age in [30,50]
	// 2 joins
}

// Executing against base relations (the data-source path); a P2P system
// substitutes its own Source to resolve leaves through the DHT.
func ExampleExecute() {
	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 100, Physicians: 5, Diagnoses: 200, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	q, err := query.Parse("SELECT COUNT(*) FROM Patient WHERE age IN (30, 40, 50)")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := query.BuildPlan(q, relation.MedicalSchema())
	if err != nil {
		log.Fatal(err)
	}
	res, err := query.Execute(plan, relation.MedicalSchema(), query.NewRelationSource(rels))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s = %s\n", res.Columns[0].Column, res.Rows[0][0])
	// Output: COUNT(*) = 1
}
