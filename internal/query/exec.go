package query

import (
	"errors"
	"fmt"
	"sort"

	"p2prange/internal/metrics"
	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
	"p2prange/internal/trace"
)

// The Default-registry query.* family: executions counts Execute calls,
// scans counts selective (range-pushed) leaves, fullscans counts leaves
// that fetched a whole relation.
var (
	metExecutions = metrics.Default.Counter("query.executions")
	metScans      = metrics.Default.Counter("query.scans")
	metFullScans  = metrics.Default.Counter("query.fullscans")
)

// Source supplies the tuples for a plan leaf. The P2P system implements it
// by locating a cached partition through the DHT; a base-table source
// reads the relation at its origin peer. Implementations may return tuples
// covering only part of rg (an approximate match); covered reports the
// range actually covered so the executor can compute recall. Half-open
// plan ranges (math.MinInt64 / math.MaxInt64 endpoints) must be clamped by
// the implementation to the attribute's domain.
type Source interface {
	Fetch(rel, attribute string, rg rangeset.Range) (data *relation.Relation, covered rangeset.Range, err error)
	// FetchAll returns the whole relation (no pushed-down select).
	FetchAll(rel string) (*relation.Relation, error)
}

// ErrNoSource reports a scan whose relation the source cannot supply.
var ErrNoSource = errors.New("query: relation unavailable from source")

// SigStatsProvider is implemented by sources whose range hashing runs
// through the signature pipeline (peer.DataSource). Execute uses it to
// attribute signature-cache activity to the query being executed.
type SigStatsProvider interface {
	// SigStats returns the source's cumulative signature-pipeline
	// counters.
	SigStats() metrics.SigSnapshot
}

// TracedSource is implemented by sources that can record a leaf fetch on
// a trace span (peer.DataSource). ExecuteTraced uses it when available;
// sources without it are fetched untraced.
type TracedSource interface {
	FetchTraced(rel, attribute string, rg rangeset.Range, sp *trace.Span) (data *relation.Relation, covered rangeset.Range, err error)
}

// Result is the output of executing a plan: a header of qualified columns
// and the projected rows, plus per-scan recall accounting so callers can
// report how approximate the answer is.
type Result struct {
	Columns []ColRef
	Rows    []relation.Tuple
	// ScanRecall maps "Relation.attribute" to the fraction of the
	// requested range the fetched partition covered (1 for exact/full).
	ScanRecall map[string]float64
	// SigCache, when the source hashes through the signature pipeline,
	// holds the pipeline counters attributable to this execution: how
	// often the leaves' range hashing hit the signature cache, extended
	// a cached signature, or paid a full rehash.
	SigCache *metrics.SigSnapshot
}

// Execute runs the plan against src: fetch each leaf (through the DHT in
// P2P deployments), apply residual filters, evaluate all equijoins with
// hash joins, and project.
func Execute(plan *Plan, schema *relation.Schema, src Source) (*Result, error) {
	return ExecuteTraced(plan, schema, src, nil)
}

// ExecuteTraced is Execute recording one child span per scan leaf (with
// the DHT lookup inside, when src implements TracedSource) plus the join
// and projection stage on sp. A nil sp traces nothing.
func ExecuteTraced(plan *Plan, schema *relation.Schema, src Source, sp *trace.Span) (*Result, error) {
	metExecutions.Inc()
	res := &Result{ScanRecall: make(map[string]float64)}
	tracedSrc, _ := src.(TracedSource)

	// Signature-pipeline accounting: snapshot before the leaves fetch,
	// diff after, so the result reports this query's own hashing reuse.
	sigSrc, _ := src.(SigStatsProvider)
	var sigBefore metrics.SigSnapshot
	if sigSrc != nil {
		sigBefore = sigSrc.SigStats()
	}
	defer func() {
		if sigSrc != nil {
			delta := sigSrc.SigStats().Sub(sigBefore)
			res.SigCache = &delta
		}
	}()

	// Leaves: fetch and filter.
	tables := make(map[string]*relation.Relation, len(plan.Scans))
	for _, scan := range plan.Scans {
		var data *relation.Relation
		var err error
		if scan.Selective() {
			metScans.Inc()
			var ss *trace.Span
			if sp.On() {
				ss = sp.Child(fmt.Sprintf("scan %s.%s %s", scan.Relation, scan.Attribute, scan.Range))
			}
			var covered rangeset.Range
			if tracedSrc != nil {
				data, covered, err = tracedSrc.FetchTraced(scan.Relation, scan.Attribute, scan.Range, ss)
			} else {
				data, covered, err = src.Fetch(scan.Relation, scan.Attribute, scan.Range)
			}
			ss.End()
			if err != nil {
				return nil, fmt.Errorf("query: fetch %s.%s %s: %w", scan.Relation, scan.Attribute, scan.Range, err)
			}
			key := scan.Relation + "." + scan.Attribute
			if covered.Valid() {
				res.ScanRecall[key] = scan.Range.Recall(covered)
			} else {
				res.ScanRecall[key] = 0
			}
			// The fetched partition may be broader than requested; keep
			// only tuples inside the requested range.
			data, err = data.SelectRange(scan.Attribute, scan.Range)
			if err != nil {
				return nil, err
			}
		} else {
			metFullScans.Inc()
			data, err = src.FetchAll(scan.Relation)
			if err != nil {
				return nil, fmt.Errorf("query: fetch %s: %w", scan.Relation, err)
			}
			if sp.On() {
				sp.Eventf("fullscan", "%s (%d tuple(s))", scan.Relation, len(data.Tuples))
			}
		}
		if len(scan.Residual) > 0 {
			data, err = applyResidual(data, scan.Residual)
			if err != nil {
				return nil, err
			}
		}
		tables[scan.Relation] = data
	}

	// The join/projection stage runs at the querying peer; one child span
	// covers it all.
	js := sp.Child("join+project")
	defer js.End()

	// Joins: left-deep over the FROM order, binding rows per relation.
	var rows []row
	first := plan.Scans[0].Relation
	for _, t := range tables[first].Tuples {
		rows = append(rows, row{first: t})
	}
	joined := map[string]bool{first: true}

	remaining := append([]Join(nil), plan.Joins...)
	for i := 1; i < len(plan.Scans); i++ {
		rel := plan.Scans[i].Relation
		// Collect join predicates connecting rel to the joined set.
		var preds []Join
		var rest []Join
		for _, j := range remaining {
			l, r := j.Left, j.Right
			if r.Relation == rel && joined[l.Relation] {
				preds = append(preds, j)
			} else if l.Relation == rel && joined[r.Relation] {
				preds = append(preds, Join{Left: r, Right: l}) // normalize: Left joined, Right new
			} else {
				rest = append(rest, j)
			}
		}
		remaining = rest
		rows = hashJoin(rows, tables[rel], rel, preds, schema)
		joined[rel] = true
	}
	if len(remaining) > 0 {
		// Predicates between relations joined earlier (cycles): filter.
		rows = filterJoins(rows, remaining, schema)
	}

	// Aggregation replaces projection when requested.
	if len(plan.Aggregates) > 0 {
		if err := aggregate(plan, schema, rows, res); err != nil {
			return nil, err
		}
		if plan.OrderBy != nil {
			if plan.GroupBy == nil || plan.OrderBy.Col != *plan.GroupBy {
				return nil, fmt.Errorf("%w: ORDER BY with aggregates is only supported on the GROUP BY column", ErrUnsupported)
			}
			if plan.OrderBy.Desc { // groups are emitted ascending
				for i, j := 0, len(res.Rows)-1; i < j; i, j = i+1, j-1 {
					res.Rows[i], res.Rows[j] = res.Rows[j], res.Rows[i]
				}
			}
		}
		if plan.Limit >= 0 && len(res.Rows) > plan.Limit {
			res.Rows = res.Rows[:plan.Limit]
		}
		return res, nil
	}

	// Projection.
	cols := plan.Project
	if len(cols) == 0 {
		for _, scan := range plan.Scans {
			rs, _ := schema.Relation(scan.Relation)
			for _, c := range rs.Columns {
				cols = append(cols, ColRef{Relation: scan.Relation, Column: c.Name})
			}
		}
	}
	res.Columns = cols
	idx := make([]int, len(cols))
	for i, c := range cols {
		rs, _ := schema.Relation(c.Relation)
		j, ok := rs.ColIndex(c.Column)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownColumn, c)
		}
		idx[i] = j
	}
	for _, r := range rows {
		out := make(relation.Tuple, len(cols))
		for i, c := range cols {
			out[i] = r[c.Relation][idx[i]]
		}
		res.Rows = append(res.Rows, out)
	}

	if plan.Distinct {
		seen := make(map[string]bool, len(res.Rows))
		outRows := res.Rows[:0]
		outBindings := rows[:0]
		for i, r := range res.Rows {
			key := joinKeyOf(r, allIdx(len(cols)))
			if seen[key] {
				continue
			}
			seen[key] = true
			outRows = append(outRows, r)
			outBindings = append(outBindings, rows[i])
		}
		res.Rows = outRows
		rows = outBindings
	}

	if plan.OrderBy != nil {
		if err := sortRows(res, plan.OrderBy, rows, schema); err != nil {
			return nil, err
		}
	}
	if plan.Limit >= 0 && len(res.Rows) > plan.Limit {
		res.Rows = res.Rows[:plan.Limit]
	}
	return res, nil
}

// sortRows orders the projected rows by the ORDER BY column. When the
// column is part of the projection the projected cells sort directly;
// otherwise the pre-projection bindings supply the key.
func sortRows(res *Result, spec *OrderSpec, bindings []row, schema *relation.Schema) error {
	keyAt := -1
	for i, c := range res.Columns {
		if c == spec.Col {
			keyAt = i
			break
		}
	}
	keys := make([]relation.Value, len(res.Rows))
	if keyAt >= 0 {
		for i, r := range res.Rows {
			keys[i] = r[keyAt]
		}
	} else {
		rs, ok := schema.Relation(spec.Col.Relation)
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownColumn, spec.Col)
		}
		j, ok := rs.ColIndex(spec.Col.Column)
		if !ok {
			return fmt.Errorf("%w: %s", ErrUnknownColumn, spec.Col)
		}
		for i, b := range bindings {
			keys[i] = b[spec.Col.Relation][j]
		}
	}
	order := make([]int, len(res.Rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		less := valueLess(keys[order[a]], keys[order[b]])
		if spec.Desc {
			return valueLess(keys[order[b]], keys[order[a]])
		}
		return less
	})
	sorted := make([]relation.Tuple, len(res.Rows))
	for i, o := range order {
		sorted[i] = res.Rows[o]
	}
	res.Rows = sorted
	return nil
}

// valueLess orders values: strings lexically, everything else by ordinal.
func valueLess(a, b relation.Value) bool {
	if a.Kind == relation.TString && b.Kind == relation.TString {
		return a.Str < b.Str
	}
	return a.Ordinal() < b.Ordinal()
}

// row binds each joined relation name to one of its tuples.
type row = map[string]relation.Tuple

// hashJoin joins the bound rows with table rel on preds (all of the form
// joinedCol = rel.col). With no predicates it degrades to a cross product.
func hashJoin(rows []row, table *relation.Relation, rel string, preds []Join, schema *relation.Schema) []row {
	if table == nil {
		return nil
	}
	if len(preds) == 0 {
		var out []row
		for _, r := range rows {
			for _, t := range table.Tuples {
				nr := cloneRow(r)
				nr[rel] = t
				out = append(out, nr)
			}
		}
		return out
	}
	// Build side: hash the new table on the joined key columns.
	rs := table.Schema
	keyIdx := make([]int, len(preds))
	for i, p := range preds {
		j, _ := rs.ColIndex(p.Right.Column)
		keyIdx[i] = j
	}
	build := make(map[string][]relation.Tuple)
	for _, t := range table.Tuples {
		build[joinKeyOf(t, keyIdx)] = append(build[joinKeyOf(t, keyIdx)], t)
	}
	// Probe side: key from the already-joined rows.
	probeIdx := make([]struct {
		rel string
		col int
	}, len(preds))
	for i, p := range preds {
		lrs, _ := schema.Relation(p.Left.Relation)
		j, _ := lrs.ColIndex(p.Left.Column)
		probeIdx[i] = struct {
			rel string
			col int
		}{p.Left.Relation, j}
	}
	var out []row
	for _, r := range rows {
		key := ""
		for _, pi := range probeIdx {
			key += valueKey(r[pi.rel][pi.col])
		}
		for _, t := range build[key] {
			nr := cloneRow(r)
			nr[rel] = t
			out = append(out, nr)
		}
	}
	return out
}

func filterJoins(rows []row, preds []Join, schema *relation.Schema) []row {
	var out []row
	for _, r := range rows {
		ok := true
		for _, p := range preds {
			lrs, _ := schema.Relation(p.Left.Relation)
			rrs, _ := schema.Relation(p.Right.Relation)
			li, _ := lrs.ColIndex(p.Left.Column)
			ri, _ := rrs.ColIndex(p.Right.Column)
			if !r[p.Left.Relation][li].Equal(r[p.Right.Relation][ri]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	return out
}

func cloneRow(r row) row {
	nr := make(row, len(r)+1)
	for k, v := range r {
		nr[k] = v
	}
	return nr
}

func joinKeyOf(t relation.Tuple, idx []int) string {
	key := ""
	for _, i := range idx {
		key += valueKey(t[i])
	}
	return key
}

func valueKey(v relation.Value) string {
	return fmt.Sprintf("%d|%d|%s;", v.Kind, v.Int, v.Str)
}

// applyResidual keeps tuples satisfying every predicate (all of the form
// col cmp literal with col belonging to the relation).
func applyResidual(data *relation.Relation, preds []Predicate) (*relation.Relation, error) {
	out := relation.NewRelation(data.Schema)
	idx := make([]int, len(preds))
	for i, p := range preds {
		j, ok := data.Schema.ColIndex(p.Left.Col.Column)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownColumn, p.Left.Col)
		}
		idx[i] = j
	}
	for _, t := range data.Tuples {
		keep := true
		for i, p := range preds {
			if !evalCmp(t[idx[i]], p.Op, p.Right) {
				keep = false
				break
			}
		}
		if keep {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

func evalCmp(v relation.Value, op CmpOp, right Operand) bool {
	if op == OpIn {
		return inList(v, right.List)
	}
	if right.Lit == nil {
		return false
	}
	lit := *right.Lit
	if v.Kind == relation.TString || lit.Kind == relation.TString {
		eq := v.Kind == lit.Kind && v.Str == lit.Str
		switch op {
		case OpEQ:
			return eq
		case OpNE:
			return !eq
		default:
			return false
		}
	}
	a, b := v.Ordinal(), lit.Ordinal()
	switch op {
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpGE:
		return a >= b
	case OpEQ:
		return a == b
	case OpNE:
		return a != b
	default:
		return false
	}
}

// allIdx returns [0, 1, ..., n-1] for whole-tuple keys.
func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// inList tests IN membership: strings compare exactly, everything else by
// ordinal (so integer literals match date columns by day number).
func inList(v relation.Value, list []relation.Value) bool {
	for _, lv := range list {
		if v.Kind == relation.TString || lv.Kind == relation.TString {
			if v.Kind == lv.Kind && v.Str == lv.Str {
				return true
			}
		} else if v.Ordinal() == lv.Ordinal() {
			return true
		}
	}
	return false
}
