package query

import (
	"testing"

	"p2prange/internal/relation"
)

// FuzzParse asserts the parser never panics and that anything it accepts
// round-trips: rendering the AST and re-parsing must succeed again.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM R",
		"SELECT a, b FROM R, S WHERE a = b AND 1 < x AND x < 9",
		"SELECT Prescription.prescription FROM Patient WHERE 30 <= age AND age <= 50",
		"select * from t where d <= '2002-12-31' order by d desc limit 3",
		"SELECT * FROM R WHERE x BETWEEN 1 AND 5",
		"SELECT * FROM R WHERE 30 < age < 50",
		"SELECT * FROM R WHERE s = 'it''s'",
		"SELECT * FROM R WHERE d = 01-01-2000",
		"SELECT age, COUNT(*) FROM Patient GROUP BY age ORDER BY age DESC LIMIT 2",
		"SELECT SUM(x) FROM R WHERE x IN (1, 2, 3)",
		"SELECT * FROM R WHERE s IN ('a', 'b')",
		"SELECT COUNT(*) FROM R WHERE x IN (",
		"SELECT DISTINCT a FROM R ORDER BY a LIMIT 1",
		"\x00\xff SELECT",
		"SELECT * FROM R LIMIT 99999999999999999999",
		"SELECT * FROM R WHERE x <>",
		"SELECT * FROM R ORDER BY",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		rendered := q.String()
		if _, err := Parse(rendered); err != nil {
			t.Fatalf("accepted %q but rejected own rendering %q: %v", src, rendered, err)
		}
	})
}

// FuzzPlanAndExecute drives arbitrary WHERE clauses against the medical
// schema: planning and execution must never panic, and rows that come
// back must satisfy integer predicates that made it into the plan.
func FuzzPlanAndExecute(f *testing.F) {
	seeds := []string{
		"SELECT * FROM Patient WHERE age > 10",
		"SELECT * FROM Patient WHERE age > 10 AND age < 5",
		"SELECT name FROM Physician ORDER BY name LIMIT 2",
		"SELECT * FROM Patient, Diagnosis WHERE Patient.patient_id = Diagnosis.patient_id AND age = 30",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 50, Physicians: 5, Diagnoses: 80, Seed: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	schema := relation.MedicalSchema()
	src := NewRelationSource(rels)
	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql)
		if err != nil {
			return
		}
		plan, err := BuildPlanWith(q, schema, PlanOptions{AllowMultiAttribute: true})
		if err != nil {
			return
		}
		res, err := Execute(plan, schema, src)
		if err != nil {
			return
		}
		if plan.Limit >= 0 && len(res.Rows) > plan.Limit {
			t.Fatalf("LIMIT %d violated: %d rows", plan.Limit, len(res.Rows))
		}
		for _, row := range res.Rows {
			if len(row) != len(res.Columns) {
				t.Fatalf("ragged row: %d cells, %d columns", len(row), len(res.Columns))
			}
		}
	})
}
