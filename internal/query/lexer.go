package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokStar
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokLT // <
	tokLE // <=
	tokGT // >
	tokGE // >=
	tokEQ // =
	tokNE // <> or !=
	tokKeyword
)

// token is one lexeme with its source position (1-based byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords are matched case-insensitively and normalized to upper case.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"BETWEEN": true, "NOT": true, "OR": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"GROUP": true, "IN": true, "DISTINCT": true,
}

// SyntaxError reports a lexical or grammatical problem with its position.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("query: syntax error at byte %d: %s", e.Pos, e.Msg)
}

func errAt(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i + 1})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i + 1})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i + 1})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i + 1})
			i++
		case c == '.':
			// A dot is qualification punctuation only when not inside a
			// number (numbers are lexed below before reaching here).
			toks = append(toks, token{tokDot, ".", i + 1})
			i++
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokLE, "<=", i + 1})
				i += 2
			} else if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{tokNE, "<>", i + 1})
				i += 2
			} else {
				toks = append(toks, token{tokLT, "<", i + 1})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokGE, ">=", i + 1})
				i += 2
			} else {
				toks = append(toks, token{tokGT, ">", i + 1})
				i++
			}
		case c == '=':
			toks = append(toks, token{tokEQ, "=", i + 1})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokNE, "!=", i + 1})
				i += 2
			} else {
				return nil, errAt(i+1, "unexpected %q", c)
			}
		case c == '\'' || c == '"':
			// SQL-style string literal: the quote character escapes by
			// doubling ('it''s' is the string it's).
			quote := c
			var val strings.Builder
			j := i + 1
			for {
				if j == len(src) {
					return nil, errAt(i+1, "unterminated string literal")
				}
				if src[j] == quote {
					if j+1 < len(src) && src[j+1] == quote {
						val.WriteByte(quote)
						j += 2
						continue
					}
					break
				}
				val.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{tokString, val.String(), i + 1})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '-') {
				// Allow digits and dashes so the paper's date style
				// 01-01-2000 lexes as one number-ish token; the parser
				// decides whether it is an integer or a date.
				if src[j] == '-' && (j+1 >= len(src) || src[j+1] < '0' || src[j+1] > '9') {
					break
				}
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i + 1})
			i = j
		case c == '-':
			// Negative integer literal.
			j := i + 1
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			if j == i+1 {
				return nil, errAt(i+1, "unexpected %q", c)
			}
			toks = append(toks, token{tokNumber, src[i:j], i + 1})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			word := src[i:j]
			if up := strings.ToUpper(word); keywords[up] {
				toks = append(toks, token{tokKeyword, up, i + 1})
			} else {
				toks = append(toks, token{tokIdent, word, i + 1})
			}
			i = j
		default:
			return nil, errAt(i+1, "unexpected %q", c)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src) + 1})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
