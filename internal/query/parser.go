package query

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"p2prange/internal/relation"
)

// Parse parses a restricted SQL SELECT statement:
//
//	SELECT col[, col...] | *
//	FROM rel[, rel...]
//	[WHERE pred AND pred ...]
//
// where each pred is "operand cmp operand" or "col BETWEEN lit AND lit",
// operands are (qualified) column names or literals (integers, quoted
// strings, dates as 'YYYY-MM-DD' or the paper's 01-01-2000 style), and
// cmp is <, <=, =, <>, >=, >.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, errAt(p.cur().pos, "unexpected %s after query", p.cur())
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return errAt(t.pos, "expected %s, got %s", kw, t)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if t := p.cur(); t.kind == tokKeyword && t.text == "DISTINCT" {
		p.next()
		q.Distinct = true
	}
	if p.cur().kind == tokStar {
		p.next()
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, item)
			if p.cur().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, errAt(t.pos, "expected relation name, got %s", t)
		}
		q.From = append(q.From, t.text)
		if p.cur().kind != tokComma {
			break
		}
		p.next()
	}
	if p.cur().kind == tokKeyword && p.cur().text == "WHERE" {
		p.next()
		for {
			preds, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, preds...)
			if p.cur().kind == tokKeyword && p.cur().text == "AND" {
				p.next()
				continue
			}
			break
		}
	}
	if p.cur().kind == tokKeyword && p.cur().text == "GROUP" {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		q.GroupBy = &col
	}
	q.Limit = -1
	if p.cur().kind == tokKeyword && p.cur().text == "ORDER" {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		q.OrderBy = &OrderSpec{Col: col}
		if t := p.cur(); t.kind == tokKeyword && (t.text == "ASC" || t.text == "DESC") {
			p.next()
			q.OrderBy.Desc = t.text == "DESC"
		}
	}
	if p.cur().kind == tokKeyword && p.cur().text == "LIMIT" {
		p.next()
		nt := p.next()
		if nt.kind != tokNumber {
			return nil, errAt(nt.pos, "expected row count after LIMIT, got %s", nt)
		}
		n, err := strconv.Atoi(nt.text)
		if err != nil || n < 0 {
			return nil, errAt(nt.pos, "bad LIMIT %q", nt.text)
		}
		q.Limit = n
	}
	return q, nil
}

// aggNames maps upper-cased function names to aggregate kinds.
var aggNames = map[string]AggKind{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

// parseSelectItem parses a plain column or AGG(col) / COUNT(*).
func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.cur()
	if t.kind == tokIdent && p.toks[p.i+1].kind == tokLParen {
		kind, ok := aggNames[strings.ToUpper(t.text)]
		if !ok {
			return SelectItem{}, errAt(t.pos, "unknown function %q (want COUNT, SUM, AVG, MIN, MAX)", t.text)
		}
		p.next() // function name
		p.next() // (
		item := SelectItem{Agg: kind}
		if p.cur().kind == tokStar {
			if kind != AggCount {
				return SelectItem{}, errAt(p.cur().pos, "%s(*) is not supported; only COUNT(*)", kind)
			}
			item.Star = true
			p.next()
		} else {
			col, err := p.parseColRef()
			if err != nil {
				return SelectItem{}, err
			}
			item.Col = col
		}
		if tk := p.next(); tk.kind != tokRParen {
			return SelectItem{}, errAt(tk.pos, "expected ), got %s", tk)
		}
		return item, nil
	}
	col, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return ColRef{}, errAt(t.pos, "expected column name, got %s", t)
	}
	c := ColRef{Column: t.text}
	if p.cur().kind == tokDot {
		p.next()
		t2 := p.next()
		if t2.kind != tokIdent {
			return ColRef{}, errAt(t2.pos, "expected column after %q., got %s", t.text, t2)
		}
		c = ColRef{Relation: t.text, Column: t2.text}
	}
	return c, nil
}

// parsePredicate parses one comparison, or a BETWEEN which expands to two
// conjuncts. It also folds the paper's chained form "30 < age < 50" into
// two conjuncts.
func (p *parser) parsePredicate() ([]Predicate, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if left.IsCol() && p.cur().kind == tokKeyword && p.cur().text == "IN" {
		p.next()
		if tk := p.next(); tk.kind != tokLParen {
			return nil, errAt(tk.pos, "expected ( after IN, got %s", tk)
		}
		var list []relation.Value
		for {
			op, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			if op.Lit == nil {
				return nil, errAt(p.cur().pos, "IN list elements must be literals")
			}
			list = append(list, *op.Lit)
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if tk := p.next(); tk.kind != tokRParen {
			return nil, errAt(tk.pos, "expected ) closing IN list, got %s", tk)
		}
		return []Predicate{{Left: left, Op: OpIn, Right: Operand{List: list}}}, nil
	}
	if left.IsCol() && p.cur().kind == tokKeyword && p.cur().text == "BETWEEN" {
		p.next()
		lo, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return []Predicate{
			{Left: left, Op: OpGE, Right: lo},
			{Left: left, Op: OpLE, Right: hi},
		}, nil
	}
	op, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	preds := []Predicate{{Left: left, Op: op, Right: right}}
	// Chained comparison: a < b < c.
	if isCmpTok(p.cur().kind) && right.IsCol() {
		op2, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		third, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		preds = append(preds, Predicate{Left: right, Op: op2, Right: third})
	}
	return preds, nil
}

func isCmpTok(k tokenKind) bool {
	switch k {
	case tokLT, tokLE, tokGT, tokGE, tokEQ, tokNE:
		return true
	}
	return false
}

func (p *parser) parseCmp() (CmpOp, error) {
	t := p.next()
	switch t.kind {
	case tokLT:
		return OpLT, nil
	case tokLE:
		return OpLE, nil
	case tokGT:
		return OpGT, nil
	case tokGE:
		return OpGE, nil
	case tokEQ:
		return OpEQ, nil
	case tokNE:
		return OpNE, nil
	default:
		return 0, errAt(t.pos, "expected comparison operator, got %s", t)
	}
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		c, err := p.parseColRef()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Col: c}, nil
	case tokNumber:
		p.next()
		v, err := parseNumberOrDate(t.text)
		if err != nil {
			return Operand{}, errAt(t.pos, "%v", err)
		}
		return Operand{Lit: &v}, nil
	case tokString:
		p.next()
		if d, ok := parseDateString(t.text); ok {
			return Operand{Lit: &d}, nil
		}
		v := relation.StrVal(t.text)
		return Operand{Lit: &v}, nil
	default:
		return Operand{}, errAt(t.pos, "expected column or literal, got %s", t)
	}
}

// parseNumberOrDate interprets a number token: plain integers, and the
// paper's inline date style 01-01-2000 (MM-DD-YYYY) or 2000-01-31
// (YYYY-MM-DD).
func parseNumberOrDate(text string) (relation.Value, error) {
	if strings.Contains(text[1:], "-") { // [1:] so a leading minus is fine
		if d, ok := parseDateString(text); ok {
			return d, nil
		}
		return relation.Value{}, fmt.Errorf("bad date literal %q", text)
	}
	n, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return relation.Value{}, fmt.Errorf("bad integer literal %q", text)
	}
	return relation.IntVal(n), nil
}

// parseDateString accepts YYYY-MM-DD and MM-DD-YYYY.
func parseDateString(s string) (relation.Value, bool) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return relation.Value{}, false
	}
	nums := make([]int, 3)
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return relation.Value{}, false
		}
		nums[i] = n
	}
	var y, m, d int
	switch {
	case len(parts[0]) == 4: // YYYY-MM-DD
		y, m, d = nums[0], nums[1], nums[2]
	case len(parts[2]) == 4: // MM-DD-YYYY
		m, d, y = nums[0], nums[1], nums[2]
	default:
		return relation.Value{}, false
	}
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return relation.Value{}, false
	}
	return relation.DateVal(y, time.Month(m), d), true
}
