package query

import (
	"errors"
	"fmt"
	"math"

	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
)

// Planning errors.
var (
	// ErrAmbiguous reports an unqualified column present in several FROM
	// relations.
	ErrAmbiguous = errors.New("query: ambiguous column")
	// ErrUnknownColumn reports a column absent from every FROM relation.
	ErrUnknownColumn = errors.New("query: unknown column")
	// ErrUnknownRelation reports a FROM relation absent from the schema.
	ErrUnknownRelation = errors.New("query: unknown relation")
	// ErrMultiAttribute reports range selects on two attributes of one
	// relation, which the paper's architecture excludes ("the selects on a
	// relation can be only on one attribute at a time").
	ErrMultiAttribute = errors.New("query: range selects on multiple attributes of one relation")
	// ErrEmptySelect reports contradictory range predicates (e.g. age > 50
	// and age < 30).
	ErrEmptySelect = errors.New("query: contradictory range predicates")
	// ErrUnsupported reports predicates outside the restricted dialect.
	ErrUnsupported = errors.New("query: unsupported predicate")
)

// Scan is a plan leaf: read one relation, optionally through a pushed-down
// range selection that the P2P layer resolves via the DHT.
type Scan struct {
	Relation string
	// Attribute and Range are set when a range selection was pushed down;
	// Attribute is empty for a full scan.
	Attribute string
	Range     rangeset.Range
	// Residual holds predicates re-checked on fetched tuples: string
	// equality (hashed ranges can collide) and any equality predicates on
	// non-selected attributes.
	Residual []Predicate
}

// Selective reports whether the scan carries a pushed-down range.
func (s Scan) Selective() bool { return s.Attribute != "" }

// Join is one equijoin predicate between two relations.
type Join struct {
	Left, Right ColRef // both fully qualified
}

// AggSpec is one aggregate output: the function and its input column
// (zero ColRef for COUNT(*)).
type AggSpec struct {
	Kind AggKind
	Col  ColRef
	Star bool
}

// Plan is the physical plan: selects pushed to the leaves (paper Fig. 1),
// then equijoins, then aggregation or projection, ordering, and limit.
type Plan struct {
	Scans []Scan
	Joins []Join
	// Project lists plain output columns; empty with no Aggregates means
	// all columns of all relations.
	Project []ColRef
	// Aggregates, when non-empty, switches the output to aggregation;
	// GroupBy (optional) partitions the rows first.
	Aggregates []AggSpec
	GroupBy    *ColRef
	OrderBy    *OrderSpec
	Distinct   bool
	Limit      int // -1 means no limit
}

// String renders a compact plan description.
func (p *Plan) String() string {
	s := "plan:"
	for _, sc := range p.Scans {
		if sc.Selective() {
			s += fmt.Sprintf(" scan(%s.%s in %s)", sc.Relation, sc.Attribute, sc.Range)
		} else {
			s += fmt.Sprintf(" scan(%s)", sc.Relation)
		}
	}
	for _, j := range p.Joins {
		s += fmt.Sprintf(" join(%s=%s)", j.Left, j.Right)
	}
	return s
}

// bounds accumulates lo/hi constraints on one attribute.
type bounds struct {
	lo, hi   int64
	eqString *string // set when the bound comes from string equality
	recheck  bool    // predicates must re-verify fetched tuples (IN, string =)
	preds    []Predicate
}

// PlanOptions tune plan construction.
type PlanOptions struct {
	// AllowMultiAttribute lifts the paper's single-attribute restriction
	// (its first stated future-work item): when a relation carries range
	// predicates on several attributes, the most selective one (smallest
	// bounded range) is resolved through the DHT and the rest are
	// evaluated as residual filters at the querying peer.
	AllowMultiAttribute bool
	// Stats, when non-nil, enables statistics-based join ordering (the
	// paper's third future-work item): scans are reordered by estimated
	// cardinality, smallest first, keeping the join tree connected.
	Stats *Stats
}

// BuildPlan resolves the query against the global schema and produces a
// plan with selects pushed to the leaves. Per the paper's restriction,
// each relation may carry range predicates on at most one attribute; use
// BuildPlanWith to lift it.
func BuildPlan(q *Query, schema *relation.Schema) (*Plan, error) {
	return BuildPlanWith(q, schema, PlanOptions{})
}

// BuildPlanWith is BuildPlan with explicit options.
func BuildPlanWith(q *Query, schema *relation.Schema, opts PlanOptions) (*Plan, error) {
	for _, rel := range q.From {
		if _, ok := schema.Relation(rel); !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownRelation, rel)
		}
	}

	resolve := func(c ColRef) (ColRef, relation.Type, error) {
		if c.Relation != "" {
			rs, ok := schema.Relation(c.Relation)
			if !ok || !contains(q.From, c.Relation) {
				return c, 0, fmt.Errorf("%w: %s", ErrUnknownRelation, c.Relation)
			}
			col, ok := rs.Col(c.Column)
			if !ok {
				return c, 0, fmt.Errorf("%w: %s", ErrUnknownColumn, c)
			}
			return c, col.Type, nil
		}
		var found ColRef
		var typ relation.Type
		matches := 0
		for _, rel := range q.From {
			rs, _ := schema.Relation(rel)
			if col, ok := rs.Col(c.Column); ok {
				found = ColRef{Relation: rel, Column: c.Column}
				typ = col.Type
				matches++
			}
		}
		switch matches {
		case 0:
			return c, 0, fmt.Errorf("%w: %s", ErrUnknownColumn, c)
		case 1:
			return found, typ, nil
		default:
			return c, 0, fmt.Errorf("%w: %s", ErrAmbiguous, c)
		}
	}

	plan := &Plan{}
	sel := make(map[string]map[string]*bounds) // relation -> attribute -> bounds
	residualOnly := make(map[string][]Predicate)

	getBounds := func(col ColRef) *bounds {
		if sel[col.Relation] == nil {
			sel[col.Relation] = make(map[string]*bounds)
		}
		b := sel[col.Relation][col.Column]
		if b == nil {
			b = &bounds{lo: math.MinInt64, hi: math.MaxInt64}
			sel[col.Relation][col.Column] = b
		}
		return b
	}

	addBound := func(col ColRef, typ relation.Type, op CmpOp, lit relation.Value, pred Predicate) error {
		if typ == relation.TString && op != OpEQ {
			return fmt.Errorf("%w: %s on string column %s", ErrUnsupported, op, col)
		}
		b := getBounds(col)
		v := lit.Ordinal()
		switch op {
		case OpLT:
			if v-1 < b.hi {
				b.hi = v - 1
			}
		case OpLE:
			if v < b.hi {
				b.hi = v
			}
		case OpGT:
			if v+1 > b.lo {
				b.lo = v + 1
			}
		case OpGE:
			if v > b.lo {
				b.lo = v
			}
		case OpEQ:
			if v > b.lo {
				b.lo = v
			}
			if v < b.hi {
				b.hi = v
			}
			if lit.Kind == relation.TString {
				s := lit.Str
				b.eqString = &s
			}
		default:
			return fmt.Errorf("%w: %s with literal", ErrUnsupported, op)
		}
		b.preds = append(b.preds, pred)
		return nil
	}

	for _, pred := range q.Where {
		l, r := pred.Left, pred.Right
		switch {
		case pred.Op == OpIn:
			if !l.IsCol() || len(r.List) == 0 {
				return nil, fmt.Errorf("%w: malformed IN predicate %s", ErrUnsupported, pred)
			}
			lc, typ, err := resolve(l.Col)
			if err != nil {
				return nil, err
			}
			norm := Predicate{Left: Operand{Col: lc}, Op: OpIn, Right: r}
			if typ == relation.TString {
				// String membership cannot push a meaningful range; it
				// filters locally.
				residualOnly[lc.Relation] = append(residualOnly[lc.Relation], norm)
				continue
			}
			lo, hi := r.List[0].Ordinal(), r.List[0].Ordinal()
			for _, v := range r.List[1:] {
				if o := v.Ordinal(); o < lo {
					lo = o
				} else if o > hi {
					hi = o
				}
			}
			b := getBounds(lc)
			if lo > b.lo {
				b.lo = lo
			}
			if hi < b.hi {
				b.hi = hi
			}
			b.recheck = true
			b.preds = append(b.preds, norm)
		case l.IsCol() && r.IsCol():
			lc, _, err := resolve(l.Col)
			if err != nil {
				return nil, err
			}
			rc, _, err := resolve(r.Col)
			if err != nil {
				return nil, err
			}
			if pred.Op != OpEQ {
				return nil, fmt.Errorf("%w: non-equality join %s", ErrUnsupported, pred)
			}
			if lc.Relation == rc.Relation {
				return nil, fmt.Errorf("%w: intra-relation predicate %s", ErrUnsupported, pred)
			}
			plan.Joins = append(plan.Joins, Join{Left: lc, Right: rc})
		case l.IsCol() && !r.IsCol():
			lc, typ, err := resolve(l.Col)
			if err != nil {
				return nil, err
			}
			norm := Predicate{Left: Operand{Col: lc}, Op: pred.Op, Right: r}
			if err := addBound(lc, typ, pred.Op, *r.Lit, norm); err != nil {
				return nil, err
			}
		case !l.IsCol() && r.IsCol():
			rc, typ, err := resolve(r.Col)
			if err != nil {
				return nil, err
			}
			norm := Predicate{Left: Operand{Col: rc}, Op: pred.Op.flip(), Right: l}
			if err := addBound(rc, typ, pred.Op.flip(), *l.Lit, norm); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: literal-only predicate %s", ErrUnsupported, pred)
		}
	}

	for _, rel := range q.From {
		scan := Scan{Relation: rel}
		attrs := sel[rel]
		// The paper's restriction: at most one attribute per relation may
		// carry a (DHT-resolved) selection. Extra *equality* predicates
		// demote to residual filters; extra true ranges are an error.
		var rangedAttrs, eqAttrs []string
		for attr, b := range attrs {
			if b.lo == math.MinInt64 && b.hi == math.MaxInt64 {
				continue
			}
			if b.lo == b.hi || b.eqString != nil {
				eqAttrs = append(eqAttrs, attr)
			} else {
				rangedAttrs = append(rangedAttrs, attr)
			}
		}
		if len(rangedAttrs) > 1 && !opts.AllowMultiAttribute {
			return nil, fmt.Errorf("%w: %s selects on %v", ErrMultiAttribute, rel, rangedAttrs)
		}
		pick := ""
		switch {
		case len(rangedAttrs) == 1:
			pick = rangedAttrs[0]
		case len(rangedAttrs) > 1:
			pick = mostSelective(rangedAttrs, attrs)
		case len(eqAttrs) > 0:
			pick = pickFirst(eqAttrs, attrs)
		}
		for attr, b := range attrs {
			if b.lo > b.hi {
				return nil, fmt.Errorf("%w: %s.%s", ErrEmptySelect, rel, attr)
			}
			if attr == pick {
				scan.Attribute = attr
				scan.Range = rangeset.Range{Lo: b.lo, Hi: b.hi}
				if b.eqString != nil || b.recheck {
					// Re-verify exact membership after the hashed fetch:
					// string equality (hash collisions) and IN lists (the
					// pushed range is only the list's convex hull).
					scan.Residual = append(scan.Residual, b.preds...)
				}
			} else {
				scan.Residual = append(scan.Residual, b.preds...)
			}
		}
		scan.Residual = append(scan.Residual, residualOnly[rel]...)
		plan.Scans = append(plan.Scans, scan)
	}

	for _, item := range q.Select {
		if item.Agg == AggNone {
			rc, _, err := resolve(item.Col)
			if err != nil {
				return nil, err
			}
			plan.Project = append(plan.Project, rc)
			continue
		}
		spec := AggSpec{Kind: item.Agg, Star: item.Star}
		if !item.Star {
			rc, typ, err := resolve(item.Col)
			if err != nil {
				return nil, err
			}
			if typ == relation.TString && item.Agg != AggCount && item.Agg != AggMin && item.Agg != AggMax {
				return nil, fmt.Errorf("%w: %s over string column %s", ErrUnsupported, item.Agg, rc)
			}
			spec.Col = rc
		}
		plan.Aggregates = append(plan.Aggregates, spec)
	}
	if q.GroupBy != nil {
		rc, _, err := resolve(*q.GroupBy)
		if err != nil {
			return nil, err
		}
		plan.GroupBy = &rc
	}
	if len(plan.Aggregates) > 0 {
		// Plain columns alongside aggregates must be exactly the GROUP BY
		// column.
		for _, c := range plan.Project {
			if plan.GroupBy == nil || c != *plan.GroupBy {
				return nil, fmt.Errorf("%w: column %s must appear in GROUP BY", ErrUnsupported, c)
			}
		}
	} else if plan.GroupBy != nil {
		return nil, fmt.Errorf("%w: GROUP BY without aggregates", ErrUnsupported)
	}
	if q.Distinct {
		if len(plan.Aggregates) > 0 {
			return nil, fmt.Errorf("%w: DISTINCT with aggregates", ErrUnsupported)
		}
		plan.Distinct = true
	}
	plan.Limit = q.Limit
	if q.OrderBy != nil {
		rc, _, err := resolve(q.OrderBy.Col)
		if err != nil {
			return nil, err
		}
		plan.OrderBy = &OrderSpec{Col: rc, Desc: q.OrderBy.Desc}
	}
	if opts.Stats != nil {
		opts.Stats.OrderScans(plan)
	}
	return plan, nil
}

// pickFirst returns the lexicographically first attribute, so plans are
// deterministic.
func pickFirst(attrs []string, _ map[string]*bounds) string {
	best := ""
	for _, a := range attrs {
		if best == "" || a < best {
			best = a
		}
	}
	return best
}

// mostSelective returns the ranged attribute with the smallest bounded
// range (half-open ranges count as unbounded); ties break
// lexicographically for deterministic plans.
func mostSelective(attrs []string, m map[string]*bounds) string {
	best, bestSize := "", uint64(math.MaxUint64)
	for _, a := range attrs {
		b := m[a]
		size := uint64(math.MaxUint64)
		if b.lo != math.MinInt64 && b.hi != math.MaxInt64 {
			size = uint64(b.hi - b.lo + 1)
		}
		if size < bestSize || (size == bestSize && (best == "" || a < best)) {
			best, bestSize = a, size
		}
	}
	return best
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
