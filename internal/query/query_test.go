package query

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
)

func TestParseBasics(t *testing.T) {
	q, err := Parse("SELECT name FROM Patient WHERE 30 < age AND age < 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || q.Select[0].Col.Column != "name" {
		t.Errorf("select = %v", q.Select)
	}
	if len(q.From) != 1 || q.From[0] != "Patient" {
		t.Errorf("from = %v", q.From)
	}
	if len(q.Where) != 2 {
		t.Errorf("where = %v", q.Where)
	}
}

func TestParseStar(t *testing.T) {
	q, err := Parse("select * from Patient")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 0 {
		t.Errorf("star select = %v", q.Select)
	}
}

func TestParseQualifiedAndJoin(t *testing.T) {
	q, err := Parse("SELECT Prescription.prescription FROM Patient, Diagnosis WHERE Patient.patient_id = Diagnosis.patient_id")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Col.Relation != "Prescription" {
		t.Errorf("qualified select = %v", q.Select[0])
	}
	p := q.Where[0]
	if !p.Left.IsCol() || !p.Right.IsCol() || p.Op != OpEQ {
		t.Errorf("join predicate = %v", p)
	}
}

func TestParseChainedComparison(t *testing.T) {
	q, err := Parse("SELECT * FROM R WHERE 30 < age < 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("chained comparison expands to %d predicates, want 2", len(q.Where))
	}
}

func TestParseBetween(t *testing.T) {
	q, err := Parse("SELECT * FROM R WHERE age BETWEEN 30 AND 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("BETWEEN expands to %d predicates, want 2", len(q.Where))
	}
	if q.Where[0].Op != OpGE || q.Where[1].Op != OpLE {
		t.Errorf("BETWEEN ops = %v, %v", q.Where[0].Op, q.Where[1].Op)
	}
}

func TestParseDates(t *testing.T) {
	for _, src := range []string{
		"SELECT * FROM R WHERE d <= '2002-12-31'",
		"SELECT * FROM R WHERE d <= 12-31-2002",
		`SELECT * FROM R WHERE d <= "12-31-2002"`,
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		lit := q.Where[0].Right.Lit
		if lit == nil || lit.Kind != relation.TDate {
			t.Fatalf("%s: literal = %v", src, lit)
		}
		if lit.Int != relation.DayNumber(2002, time.December, 31) {
			t.Errorf("%s: day = %d", src, lit.Int)
		}
	}
}

func TestParseStringLiteral(t *testing.T) {
	q, err := Parse("SELECT * FROM R WHERE diagnosis = 'Glaucoma'")
	if err != nil {
		t.Fatal(err)
	}
	lit := q.Where[0].Right.Lit
	if lit == nil || lit.Kind != relation.TString || lit.Str != "Glaucoma" {
		t.Errorf("literal = %v", lit)
	}
}

func TestParseNegativeNumber(t *testing.T) {
	q, err := Parse("SELECT * FROM R WHERE x > -5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].Right.Lit.Int != -5 {
		t.Errorf("literal = %v", q.Where[0].Right.Lit)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"FROM R",
		"SELECT FROM R",
		"SELECT * FROM",
		"SELECT * FROM R WHERE",
		"SELECT * FROM R WHERE x",
		"SELECT * FROM R WHERE x <",
		"SELECT * FROM R WHERE x < 'unterminated",
		"SELECT * FROM R extra",
		"SELECT * FROM R WHERE x ! 3",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q) error %v is not a SyntaxError", src, err)
			}
		}
	}
}

func medSchema(t *testing.T) *relation.Schema {
	t.Helper()
	return relation.MedicalSchema()
}

func mustPlan(t *testing.T, sql string) *Plan {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(q, medSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanPushesSelects(t *testing.T) {
	p := mustPlan(t, `SELECT Prescription.prescription FROM Patient, Diagnosis, Prescription
		WHERE 30 <= age AND age <= 50 AND diagnosis = 'Glaucoma'
		AND Patient.patient_id = Diagnosis.patient_id
		AND '2000-01-01' <= date AND date <= '2002-12-31'
		AND Diagnosis.prescription_id = Prescription.prescription_id`)
	if len(p.Scans) != 3 {
		t.Fatalf("scans = %d", len(p.Scans))
	}
	byRel := map[string]Scan{}
	for _, s := range p.Scans {
		byRel[s.Relation] = s
	}
	if s := byRel["Patient"]; s.Attribute != "age" || s.Range != (rangeset.Range{Lo: 30, Hi: 50}) {
		t.Errorf("Patient scan = %+v", s)
	}
	if s := byRel["Diagnosis"]; s.Attribute != "diagnosis" || len(s.Residual) == 0 {
		t.Errorf("Diagnosis scan = %+v (string equality needs residual recheck)", s)
	}
	if s := byRel["Prescription"]; s.Attribute != "date" {
		t.Errorf("Prescription scan = %+v", s)
	}
	if len(p.Joins) != 2 {
		t.Errorf("joins = %v", p.Joins)
	}
}

func TestPlanStrictInequalities(t *testing.T) {
	p := mustPlan(t, "SELECT * FROM Patient WHERE 30 < age AND age < 50")
	if p.Scans[0].Range != (rangeset.Range{Lo: 31, Hi: 49}) {
		t.Errorf("strict bounds = %v, want [31,49]", p.Scans[0].Range)
	}
}

func TestPlanHalfOpenRange(t *testing.T) {
	p := mustPlan(t, "SELECT * FROM Patient WHERE age > 50")
	s := p.Scans[0]
	if s.Attribute != "age" || s.Range.Lo != 51 || s.Range.Hi != math.MaxInt64 {
		t.Errorf("half-open scan = %+v", s)
	}
}

func TestPlanContradiction(t *testing.T) {
	q, err := Parse("SELECT * FROM Patient WHERE age > 50 AND age < 30")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPlan(q, medSchema(t)); !errors.Is(err, ErrEmptySelect) {
		t.Errorf("err = %v, want ErrEmptySelect", err)
	}
}

func TestPlanMultiAttributeRejected(t *testing.T) {
	q, err := Parse("SELECT * FROM Prescription WHERE prescription_id > 5 AND date > '2000-01-01'")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPlan(q, medSchema(t)); !errors.Is(err, ErrMultiAttribute) {
		t.Errorf("err = %v, want ErrMultiAttribute", err)
	}
}

func TestPlanAmbiguousColumn(t *testing.T) {
	// "age" exists in both Patient and Physician.
	q, err := Parse("SELECT * FROM Patient, Physician WHERE age > 30")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPlan(q, medSchema(t)); !errors.Is(err, ErrAmbiguous) {
		t.Errorf("err = %v, want ErrAmbiguous", err)
	}
}

func TestPlanUnknowns(t *testing.T) {
	q, _ := Parse("SELECT * FROM Nope")
	if _, err := BuildPlan(q, medSchema(t)); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation err = %v", err)
	}
	q, _ = Parse("SELECT * FROM Patient WHERE shoe_size > 9")
	if _, err := BuildPlan(q, medSchema(t)); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("unknown column err = %v", err)
	}
}

func TestPlanStringRangeRejected(t *testing.T) {
	q, err := Parse("SELECT * FROM Patient WHERE name > 'Bob'")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPlan(q, medSchema(t)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}

// --- Execution ---

func medData(t *testing.T) (*relation.Schema, *RelationSource) {
	t.Helper()
	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 300, Physicians: 20, Diagnoses: 800, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return relation.MedicalSchema(), NewRelationSource(rels)
}

func exec(t *testing.T, sql string) *Result {
	t.Helper()
	schema, src := medData(t)
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(q, schema)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, schema, src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExecuteSimpleSelect(t *testing.T) {
	res := exec(t, "SELECT patient_id, age FROM Patient WHERE 30 <= age AND age <= 50")
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row[1].Int < 30 || row[1].Int > 50 {
			t.Fatalf("row %v violates predicate", row)
		}
	}
	if r := res.ScanRecall["Patient.age"]; r != 1 {
		t.Errorf("base-source recall = %g, want 1", r)
	}
}

func TestExecuteJoinMatchesNestedLoop(t *testing.T) {
	schema, src := medData(t)
	sql := `SELECT Patient.patient_id, Diagnosis.prescription_id FROM Patient, Diagnosis
		WHERE 40 <= age AND age <= 60 AND Patient.patient_id = Diagnosis.patient_id`
	res := exec(t, sql)

	// Brute-force nested loop for the same predicate.
	pat, _ := src.FetchAll("Patient")
	diag, _ := src.FetchAll("Diagnosis")
	want := 0
	for _, pt := range pat.Tuples {
		if pt[2].Int < 40 || pt[2].Int > 60 {
			continue
		}
		for _, dt := range diag.Tuples {
			if dt[0].Int == pt[0].Int {
				want++
			}
		}
	}
	if len(res.Rows) != want {
		t.Errorf("join returned %d rows, nested loop says %d", len(res.Rows), want)
	}
	_ = schema
}

func TestExecutePaperQuery(t *testing.T) {
	res := exec(t, `SELECT Prescription.prescription FROM Patient, Diagnosis, Prescription
		WHERE 30 <= age AND age <= 50 AND diagnosis = 'Glaucoma'
		AND Patient.patient_id = Diagnosis.patient_id
		AND '2000-01-01' <= date AND date <= '2002-12-31'
		AND Diagnosis.prescription_id = Prescription.prescription_id`)
	if len(res.Rows) == 0 {
		t.Fatal("paper query returned nothing; generator should make it non-empty")
	}
	if len(res.Columns) != 1 || res.Columns[0].String() != "Prescription.prescription" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestExecuteStringEqualityExact(t *testing.T) {
	// The hashed degenerate range could collide; the residual filter must
	// guarantee only exact matches survive.
	res := exec(t, "SELECT diagnosis FROM Diagnosis WHERE diagnosis = 'Asthma'")
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row[0].Str != "Asthma" {
			t.Fatalf("string equality leaked %q", row[0].Str)
		}
	}
}

func TestExecuteProjectionStar(t *testing.T) {
	res := exec(t, "SELECT * FROM Physician WHERE physician_id <= 3")
	if len(res.Columns) != 4 {
		t.Errorf("star projection columns = %v", res.Columns)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d, want 3", len(res.Rows))
	}
}

func TestExecuteCrossProductWithoutJoin(t *testing.T) {
	res := exec(t, "SELECT Physician.physician_id FROM Physician, Patient WHERE physician_id <= 2 AND patient_id <= 3")
	if len(res.Rows) != 6 {
		t.Errorf("cross product rows = %d, want 6", len(res.Rows))
	}
}

func TestExecuteEmptyResult(t *testing.T) {
	// The generator draws ages 1..99, so age = 0 selects nothing; the
	// query still executes cleanly end to end.
	res := exec(t, "SELECT * FROM Patient WHERE age = 0")
	if len(res.Rows) != 0 {
		t.Errorf("expected empty result, got %d rows", len(res.Rows))
	}
}

func TestExecuteContradictionRejectedAtPlanTime(t *testing.T) {
	schema := relation.MedicalSchema()
	q, err := Parse("SELECT * FROM Patient WHERE patient_id = 1 AND patient_id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPlan(q, schema); !errors.Is(err, ErrEmptySelect) {
		t.Errorf("err = %v, want ErrEmptySelect", err)
	}
}

func TestExecuteUnknownRelationFromSource(t *testing.T) {
	schema := relation.MedicalSchema()
	src := NewRelationSource(map[string]*relation.Relation{})
	q, _ := Parse("SELECT * FROM Patient WHERE age > 10")
	plan, err := BuildPlan(q, schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(plan, schema, src); !errors.Is(err, ErrNoSource) {
		t.Errorf("err = %v, want ErrNoSource", err)
	}
}

func TestClampToDomain(t *testing.T) {
	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 50, Physicians: 5, Diagnoses: 50, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rels["Patient"]
	dom, _ := r.AttributeRange("age")
	half := rangeset.Range{Lo: 40, Hi: math.MaxInt64}
	got := ClampToDomain(r, "age", half)
	if got.Lo != 40 || got.Hi != dom.Hi {
		t.Errorf("clamped = %v, domain = %v", got, dom)
	}
	bounded := rangeset.Range{Lo: 1, Hi: 2}
	if got := ClampToDomain(r, "age", bounded); got != bounded {
		t.Errorf("bounded range changed: %v", got)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := "SELECT name FROM Patient WHERE 30 <= age AND age <= 50"
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, frag := range []string{"SELECT name", "FROM Patient", "age"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
	// Re-parse of the rendering succeeds.
	if _, err := Parse(s); err != nil {
		t.Errorf("re-parse of %q: %v", s, err)
	}
}

func TestPlanMultiAttributeExtension(t *testing.T) {
	// Prescription carries ranges on both prescription_id and date; with
	// the extension the tighter range (prescription_id, size 5) resolves
	// through the DHT and the date range becomes a residual filter.
	q, err := Parse("SELECT * FROM Prescription WHERE prescription_id >= 1 AND prescription_id <= 5 AND date >= '2000-01-01' AND date <= '2002-12-31'")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlanWith(q, medSchema(t), PlanOptions{AllowMultiAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Scans[0]
	if s.Attribute != "prescription_id" {
		t.Errorf("primary attribute = %s, want prescription_id (most selective)", s.Attribute)
	}
	if s.Range != (rangeset.Range{Lo: 1, Hi: 5}) {
		t.Errorf("primary range = %v", s.Range)
	}
	if len(s.Residual) != 2 {
		t.Errorf("residuals = %v, want the two date bounds", s.Residual)
	}
}

func TestPlanMultiAttributeHalfOpenLosesToBounded(t *testing.T) {
	q, err := Parse("SELECT * FROM Prescription WHERE prescription_id > 100 AND date >= '2000-01-01' AND date <= '2000-01-31'")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlanWith(q, medSchema(t), PlanOptions{AllowMultiAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Scans[0].Attribute; got != "date" {
		t.Errorf("primary = %s, want date (bounded beats half-open)", got)
	}
}

func TestExecuteMultiAttribute(t *testing.T) {
	schema, src := medData(t)
	q, err := Parse("SELECT prescription_id, date FROM Prescription WHERE prescription_id >= 1 AND prescription_id <= 100 AND date >= '2000-01-01' AND date <= '2002-12-31'")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlanWith(q, schema, PlanOptions{AllowMultiAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, schema, src)
	if err != nil {
		t.Fatal(err)
	}
	lo := relation.DayNumber(2000, time.January, 1)
	hi := relation.DayNumber(2002, time.December, 31)
	for _, row := range res.Rows {
		if row[0].Int < 1 || row[0].Int > 100 {
			t.Fatalf("prescription_id %d out of range", row[0].Int)
		}
		if row[1].Int < lo || row[1].Int > hi {
			t.Fatalf("date %s outside window", row[1])
		}
	}
	// Cross-check count with a nested-loop evaluation.
	all, _ := src.FetchAll("Prescription")
	want := 0
	for _, tp := range all.Tuples {
		if tp[0].Int >= 1 && tp[0].Int <= 100 && tp[1].Int >= lo && tp[1].Int <= hi {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Errorf("multi-attribute select returned %d rows, want %d", len(res.Rows), want)
	}
}

func TestParseOrderByAndLimit(t *testing.T) {
	q, err := Parse("SELECT patient_id FROM Patient WHERE age > 10 ORDER BY age DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.OrderBy == nil || q.OrderBy.Col.Column != "age" || !q.OrderBy.Desc {
		t.Errorf("OrderBy = %+v", q.OrderBy)
	}
	if q.Limit != 5 {
		t.Errorf("Limit = %d", q.Limit)
	}
	// Default ASC and no limit.
	q, err = Parse("SELECT patient_id FROM Patient ORDER BY patient_id")
	if err != nil {
		t.Fatal(err)
	}
	if q.OrderBy == nil || q.OrderBy.Desc {
		t.Errorf("OrderBy = %+v", q.OrderBy)
	}
	if q.Limit != -1 {
		t.Errorf("Limit = %d, want -1", q.Limit)
	}
	if _, err := Parse("SELECT * FROM R LIMIT x"); err == nil {
		t.Error("bad LIMIT accepted")
	}
	if _, err := Parse("SELECT * FROM R ORDER age"); err == nil {
		t.Error("ORDER without BY accepted")
	}
}

func TestExecuteOrderByProjectedColumn(t *testing.T) {
	res := exec(t, "SELECT patient_id, age FROM Patient WHERE age >= 30 AND age <= 40 ORDER BY age")
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1].Int > res.Rows[i][1].Int {
			t.Fatalf("rows not sorted ascending at %d", i)
		}
	}
	res = exec(t, "SELECT patient_id, age FROM Patient WHERE age >= 30 AND age <= 40 ORDER BY age DESC")
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1].Int < res.Rows[i][1].Int {
			t.Fatalf("rows not sorted descending at %d", i)
		}
	}
}

func TestExecuteOrderByUnprojectedColumn(t *testing.T) {
	// ORDER BY a column that is not in the projection list.
	res := exec(t, "SELECT patient_id FROM Patient WHERE age >= 30 AND age <= 40 ORDER BY age LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("LIMIT 3 returned %d rows", len(res.Rows))
	}
	// Cross-check: the three returned patients are among those with the
	// smallest ages in the band.
	_, src := medData(t)
	all, _ := src.FetchAll("Patient")
	minAge := int64(1 << 62)
	for _, tp := range all.Tuples {
		if tp[2].Int >= 30 && tp[2].Int <= 40 && tp[2].Int < minAge {
			minAge = tp[2].Int
		}
	}
	found := false
	for _, tp := range all.Tuples {
		if tp[0].Int == res.Rows[0][0].Int {
			if tp[2].Int != minAge {
				t.Errorf("first row age %d, want min %d", tp[2].Int, minAge)
			}
			found = true
		}
	}
	if !found {
		t.Error("returned patient not in base relation")
	}
}

func TestExecuteLimitZero(t *testing.T) {
	res := exec(t, "SELECT * FROM Patient LIMIT 0")
	if len(res.Rows) != 0 {
		t.Errorf("LIMIT 0 returned %d rows", len(res.Rows))
	}
}

func TestExecuteOrderByString(t *testing.T) {
	res := exec(t, "SELECT name FROM Physician ORDER BY name LIMIT 10")
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].Str > res.Rows[i][0].Str {
			t.Fatalf("names not sorted at %d", i)
		}
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse("SELECT COUNT(*), SUM(age), avg(age), MIN(age), MAX(age) FROM Patient")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 5 {
		t.Fatalf("select items = %d", len(q.Select))
	}
	if q.Select[0].Agg != AggCount || !q.Select[0].Star {
		t.Errorf("item 0 = %+v", q.Select[0])
	}
	if q.Select[2].Agg != AggAvg || q.Select[2].Col.Column != "age" {
		t.Errorf("item 2 = %+v", q.Select[2])
	}
	if _, err := Parse("SELECT FOO(age) FROM Patient"); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := Parse("SELECT SUM(*) FROM Patient"); err == nil {
		t.Error("SUM(*) accepted")
	}
	if _, err := Parse("SELECT SUM(age FROM Patient"); err == nil {
		t.Error("missing ) accepted")
	}
}

func TestParseGroupBy(t *testing.T) {
	q, err := Parse("SELECT diagnosis, COUNT(*) FROM Diagnosis GROUP BY diagnosis ORDER BY diagnosis LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.GroupBy == nil || q.GroupBy.Column != "diagnosis" {
		t.Errorf("GroupBy = %+v", q.GroupBy)
	}
}

func TestPlanAggregateValidation(t *testing.T) {
	schema := medSchema(t)
	// Plain column without GROUP BY alongside an aggregate: rejected.
	q, _ := Parse("SELECT age, COUNT(*) FROM Patient")
	if _, err := BuildPlan(q, schema); !errors.Is(err, ErrUnsupported) {
		t.Errorf("ungrouped mixed select: %v", err)
	}
	// GROUP BY without aggregates: rejected.
	q, _ = Parse("SELECT age FROM Patient GROUP BY age")
	if _, err := BuildPlan(q, schema); !errors.Is(err, ErrUnsupported) {
		t.Errorf("GROUP BY without aggregates: %v", err)
	}
	// SUM over a string column: rejected.
	q, _ = Parse("SELECT SUM(name) FROM Patient")
	if _, err := BuildPlan(q, schema); !errors.Is(err, ErrUnsupported) {
		t.Errorf("SUM(string): %v", err)
	}
}

func TestExecuteGlobalAggregates(t *testing.T) {
	res := exec(t, "SELECT COUNT(*), SUM(age), AVG(age), MIN(age), MAX(age) FROM Patient WHERE 30 <= age AND age <= 50")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	// Brute-force the same aggregates.
	_, src := medData(t)
	all, _ := src.FetchAll("Patient")
	var count, sum, minA, maxA int64
	minA = 1 << 62
	for _, tp := range all.Tuples {
		a := tp[2].Int
		if a < 30 || a > 50 {
			continue
		}
		count++
		sum += a
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
	}
	want := []int64{count, sum, sum / count, minA, maxA}
	for i, w := range want {
		if row[i].Int != w {
			t.Errorf("aggregate %d (%s) = %d, want %d", i, res.Columns[i].Column, row[i].Int, w)
		}
	}
}

func TestExecuteGroupBy(t *testing.T) {
	res := exec(t, "SELECT diagnosis, COUNT(*) FROM Diagnosis GROUP BY diagnosis")
	if len(res.Rows) == 0 {
		t.Fatal("no groups")
	}
	// Counts per group sum to the relation size, and group keys are
	// sorted and distinct.
	_, src := medData(t)
	all, _ := src.FetchAll("Diagnosis")
	var total int64
	seen := map[string]bool{}
	for _, row := range res.Rows {
		name := row[0].Str
		if seen[name] {
			t.Fatalf("duplicate group %q", name)
		}
		seen[name] = true
		total += row[1].Int
	}
	if total != int64(all.Len()) {
		t.Errorf("group counts sum to %d, relation has %d", total, all.Len())
	}
}

func TestExecuteGroupByWithLimitAndOrder(t *testing.T) {
	res := exec(t, "SELECT diagnosis, COUNT(*) FROM Diagnosis GROUP BY diagnosis ORDER BY diagnosis DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Str < res.Rows[1][0].Str {
		t.Error("DESC ordering violated")
	}
	// ORDER BY a non-group column with aggregates is unsupported.
	schema, src := medData(t)
	q, _ := Parse("SELECT diagnosis, COUNT(*) FROM Diagnosis GROUP BY diagnosis ORDER BY patient_id")
	plan, err := BuildPlan(q, schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(plan, schema, src); !errors.Is(err, ErrUnsupported) {
		t.Errorf("ORDER BY non-group column: %v", err)
	}
}

func TestExecuteAggregateEmptyInput(t *testing.T) {
	res := exec(t, "SELECT COUNT(*), SUM(age) FROM Patient WHERE age = 0")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Int != 0 || res.Rows[0][1].Int != 0 {
		t.Errorf("empty aggregates = %v", res.Rows[0])
	}
}

func TestExecuteAggregateOverJoin(t *testing.T) {
	res := exec(t, `SELECT COUNT(*) FROM Patient, Diagnosis
		WHERE Patient.patient_id = Diagnosis.patient_id AND 30 <= age AND age <= 60`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Cross-check with the projection form.
	plain := exec(t, `SELECT Diagnosis.prescription_id FROM Patient, Diagnosis
		WHERE Patient.patient_id = Diagnosis.patient_id AND 30 <= age AND age <= 60`)
	if res.Rows[0][0].Int != int64(len(plain.Rows)) {
		t.Errorf("COUNT(*) = %d, projection has %d rows", res.Rows[0][0].Int, len(plain.Rows))
	}
}

func TestParseIn(t *testing.T) {
	q, err := Parse("SELECT * FROM Patient WHERE age IN (30, 40, 50)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 1 || q.Where[0].Op != OpIn || len(q.Where[0].Right.List) != 3 {
		t.Fatalf("IN parse = %+v", q.Where)
	}
	if _, err := Parse("SELECT * FROM R WHERE x IN ()"); err == nil {
		t.Error("empty IN list accepted")
	}
	if _, err := Parse("SELECT * FROM R WHERE x IN (1, y)"); err == nil {
		t.Error("column inside IN list accepted")
	}
	if _, err := Parse("SELECT * FROM R WHERE x IN (1, 2"); err == nil {
		t.Error("unclosed IN list accepted")
	}
}

func TestPlanInPushesConvexHull(t *testing.T) {
	p := mustPlan(t, "SELECT * FROM Patient WHERE age IN (50, 30, 40)")
	s := p.Scans[0]
	if s.Attribute != "age" || s.Range != (rangeset.Range{Lo: 30, Hi: 50}) {
		t.Errorf("IN scan = %+v, want age in [30,50]", s)
	}
	if len(s.Residual) != 1 || s.Residual[0].Op != OpIn {
		t.Errorf("IN residual = %v", s.Residual)
	}
}

func TestPlanInOverStringsIsResidualOnly(t *testing.T) {
	p := mustPlan(t, "SELECT * FROM Diagnosis WHERE diagnosis IN ('Asthma', 'Eczema')")
	s := p.Scans[0]
	if s.Selective() {
		t.Errorf("string IN pushed a range: %+v", s)
	}
	if len(s.Residual) != 1 {
		t.Errorf("residuals = %v", s.Residual)
	}
}

func TestExecuteIn(t *testing.T) {
	res := exec(t, "SELECT age FROM Patient WHERE age IN (30, 40, 50)")
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		a := row[0].Int
		if a != 30 && a != 40 && a != 50 {
			t.Fatalf("IN leaked age %d", a)
		}
	}
	// Count agrees with three equality queries.
	want := 0
	for _, v := range []string{"30", "40", "50"} {
		r := exec(t, "SELECT age FROM Patient WHERE age = "+v)
		want += len(r.Rows)
	}
	if len(res.Rows) != want {
		t.Errorf("IN returned %d rows, equalities total %d", len(res.Rows), want)
	}
}

func TestExecuteInOverStrings(t *testing.T) {
	res := exec(t, "SELECT diagnosis FROM Diagnosis WHERE diagnosis IN ('Asthma', 'Eczema')")
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if s := row[0].Str; s != "Asthma" && s != "Eczema" {
			t.Fatalf("string IN leaked %q", s)
		}
	}
}

func TestParseQuotedStringEscapes(t *testing.T) {
	q, err := Parse("SELECT * FROM R WHERE s = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Where[0].Right.Lit.Str; got != "it's" {
		t.Errorf("escaped literal = %q, want %q", got, "it's")
	}
	// Round trip through String().
	if _, err := Parse(q.String()); err != nil {
		t.Errorf("re-parse of %q: %v", q.String(), err)
	}
	// Double-quoted form with embedded double quote.
	q, err = Parse(`SELECT * FROM R WHERE s = "a""b"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Where[0].Right.Lit.Str; got != `a"b` {
		t.Errorf("escaped literal = %q", got)
	}
}

func TestExecuteDistinct(t *testing.T) {
	res := exec(t, "SELECT DISTINCT diagnosis FROM Diagnosis")
	seen := map[string]bool{}
	for _, row := range res.Rows {
		if seen[row[0].Str] {
			t.Fatalf("duplicate %q survived DISTINCT", row[0].Str)
		}
		seen[row[0].Str] = true
	}
	// Matches the number of groups from GROUP BY.
	grouped := exec(t, "SELECT diagnosis, COUNT(*) FROM Diagnosis GROUP BY diagnosis")
	if len(res.Rows) != len(grouped.Rows) {
		t.Errorf("DISTINCT found %d values, GROUP BY %d", len(res.Rows), len(grouped.Rows))
	}
}

func TestExecuteDistinctWithOrderAndLimit(t *testing.T) {
	res := exec(t, "SELECT DISTINCT diagnosis FROM Diagnosis ORDER BY diagnosis LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].Str >= res.Rows[i][0].Str {
			t.Fatal("not sorted or not distinct")
		}
	}
}

func TestPlanDistinctWithAggregatesRejected(t *testing.T) {
	q, err := Parse("SELECT DISTINCT COUNT(*) FROM Patient")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildPlan(q, medSchema(t)); !errors.Is(err, ErrUnsupported) {
		t.Errorf("err = %v, want ErrUnsupported", err)
	}
}
