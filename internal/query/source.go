package query

import (
	"fmt"
	"math"

	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
)

// RelationSource is a Source backed by fully materialized relations — the
// "data source peer" of the paper, or a purely local execution. It always
// covers the requested range exactly.
type RelationSource struct {
	Rels map[string]*relation.Relation
}

// NewRelationSource wraps a set of base relations.
func NewRelationSource(rels map[string]*relation.Relation) *RelationSource {
	return &RelationSource{Rels: rels}
}

// Fetch implements Source by selecting from the base relation.
func (s *RelationSource) Fetch(rel, attribute string, rg rangeset.Range) (*relation.Relation, rangeset.Range, error) {
	r, ok := s.Rels[rel]
	if !ok {
		return nil, rangeset.Range{}, fmt.Errorf("%w: %s", ErrNoSource, rel)
	}
	rg = ClampToDomain(r, attribute, rg)
	data, err := r.SelectRange(attribute, rg)
	if err != nil {
		return nil, rangeset.Range{}, err
	}
	return data, rg, nil
}

// FetchAll implements Source.
func (s *RelationSource) FetchAll(rel string) (*relation.Relation, error) {
	r, ok := s.Rels[rel]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSource, rel)
	}
	return r, nil
}

// ClampToDomain narrows half-open plan ranges (MinInt64/MaxInt64
// endpoints) to the attribute's observed domain so they can be hashed and
// selected. Fully bounded ranges pass through unchanged.
func ClampToDomain(r *relation.Relation, attribute string, rg rangeset.Range) rangeset.Range {
	if rg.Lo != math.MinInt64 && rg.Hi != math.MaxInt64 {
		return rg
	}
	dom, err := r.AttributeRange(attribute)
	if err != nil {
		return rg
	}
	if rg.Lo == math.MinInt64 {
		rg.Lo = dom.Lo
	}
	if rg.Hi == math.MaxInt64 {
		rg.Hi = dom.Hi
	}
	if rg.Hi < rg.Lo {
		rg.Hi = rg.Lo
	}
	return rg
}
