package query

import (
	"fmt"
	"math"

	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
)

// Stats summarizes base relations for the planner: tuple counts and
// equi-width attribute histograms. This backs the paper's third
// future-work item ("planning a query in a peer-to-peer system based on
// available statistics"): with Stats supplied, BuildPlanWith orders the
// join tree by estimated scan cardinality instead of FROM order.
type Stats struct {
	rels map[string]*relStats
}

type relStats struct {
	rows  int
	attrs map[string]*attrHist
}

// statBuckets is the histogram resolution.
const statBuckets = 32

// attrHist is an equi-width histogram over an attribute's ordinal domain.
type attrHist struct {
	lo, hi int64
	counts [statBuckets]int
	total  int
}

func newAttrHist(lo, hi int64) *attrHist {
	if hi < lo {
		hi = lo
	}
	return &attrHist{lo: lo, hi: hi}
}

func (h *attrHist) bucket(v int64) int {
	if h.hi == h.lo {
		return 0
	}
	i := int((v - h.lo) * statBuckets / (h.hi - h.lo + 1))
	if i < 0 {
		i = 0
	}
	if i >= statBuckets {
		i = statBuckets - 1
	}
	return i
}

func (h *attrHist) add(v int64) {
	h.counts[h.bucket(v)]++
	h.total++
}

// selectivity estimates the fraction of tuples with ordinal in rg,
// assuming uniformity within buckets.
func (h *attrHist) selectivity(rg rangeset.Range) float64 {
	if h.total == 0 {
		return 0
	}
	lo, hi := rg.Lo, rg.Hi
	if hi < h.lo || lo > h.hi {
		return 0
	}
	if lo < h.lo {
		lo = h.lo
	}
	if hi > h.hi {
		hi = h.hi
	}
	width := float64(h.hi-h.lo+1) / statBuckets
	var est float64
	for b := h.bucket(lo); b <= h.bucket(hi); b++ {
		bLo := float64(h.lo) + float64(b)*width
		bHi := bLo + width
		overlap := math.Min(bHi, float64(hi)+1) - math.Max(bLo, float64(lo))
		if overlap <= 0 {
			continue
		}
		est += float64(h.counts[b]) * overlap / width
	}
	return est / float64(h.total)
}

// NewStats builds statistics for the given base relations; string
// attributes are histogrammed over their hashed ordinals, which still
// estimates equality selects reasonably.
func NewStats(rels map[string]*relation.Relation) *Stats {
	s := &Stats{rels: make(map[string]*relStats)}
	for name, r := range rels {
		rs := &relStats{rows: r.Len(), attrs: make(map[string]*attrHist)}
		s.rels[name] = rs
		for ci, col := range r.Schema.Columns {
			if r.Len() == 0 {
				continue
			}
			lo, hi := r.Tuples[0][ci].Ordinal(), r.Tuples[0][ci].Ordinal()
			for _, t := range r.Tuples {
				v := t[ci].Ordinal()
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			h := newAttrHist(lo, hi)
			for _, t := range r.Tuples {
				h.add(t[ci].Ordinal())
			}
			rs.attrs[col.Name] = h
		}
	}
	return s
}

// Rows returns the tuple count of a relation (0 when unknown).
func (s *Stats) Rows(rel string) int {
	if rs, ok := s.rels[rel]; ok {
		return rs.rows
	}
	return 0
}

// Selectivity estimates the fraction of rel's tuples selected by rg over
// attribute, defaulting to 1 (no information).
func (s *Stats) Selectivity(rel, attribute string, rg rangeset.Range) float64 {
	rs, ok := s.rels[rel]
	if !ok {
		return 1
	}
	h, ok := rs.attrs[attribute]
	if !ok {
		return 1
	}
	return h.selectivity(rg)
}

// EstimateScan estimates a scan's output cardinality.
func (s *Stats) EstimateScan(scan Scan) float64 {
	rows := float64(s.Rows(scan.Relation))
	if rows == 0 {
		return math.Inf(1) // unknown relations sort last
	}
	if scan.Selective() {
		rg := scan.Range
		// Clamp half-open bounds to the histogram's domain.
		if rs, ok := s.rels[scan.Relation]; ok {
			if h, ok := rs.attrs[scan.Attribute]; ok {
				if rg.Lo == math.MinInt64 {
					rg.Lo = h.lo
				}
				if rg.Hi == math.MaxInt64 {
					rg.Hi = h.hi
				}
			}
		}
		rows *= s.Selectivity(scan.Relation, scan.Attribute, rg)
	}
	// Residual equality filters get a generic 10% selectivity each.
	for range scan.Residual {
		rows *= 0.10
	}
	return rows
}

// OrderScans reorders the plan's scans greedily by estimated cardinality
// while keeping the left-deep join tree connected: the smallest scan
// starts, then at each step the smallest *connected* relation joins next
// (falling back to the smallest remaining one when the join graph is
// disconnected). The executor evaluates joins in scan order, so this is
// the complete join-ordering decision.
func (s *Stats) OrderScans(plan *Plan) {
	n := len(plan.Scans)
	if n <= 2 {
		if n == 2 && s.EstimateScan(plan.Scans[1]) < s.EstimateScan(plan.Scans[0]) {
			plan.Scans[0], plan.Scans[1] = plan.Scans[1], plan.Scans[0]
		}
		return
	}
	est := make(map[string]float64, n)
	for _, sc := range plan.Scans {
		est[sc.Relation] = s.EstimateScan(sc)
	}
	connected := func(rel string, placed map[string]bool) bool {
		for _, j := range plan.Joins {
			if j.Left.Relation == rel && placed[j.Right.Relation] {
				return true
			}
			if j.Right.Relation == rel && placed[j.Left.Relation] {
				return true
			}
		}
		return false
	}
	remaining := append([]Scan(nil), plan.Scans...)
	var out []Scan
	placed := map[string]bool{}
	for len(remaining) > 0 {
		best := -1
		for i, sc := range remaining {
			if len(out) > 0 && !connected(sc.Relation, placed) {
				continue
			}
			if best < 0 || est[sc.Relation] < est[remaining[best].Relation] {
				best = i
			}
		}
		if best < 0 {
			best = 0 // disconnected component: take the smallest remaining
			for i := range remaining {
				if est[remaining[i].Relation] < est[remaining[best].Relation] {
					best = i
				}
			}
		}
		out = append(out, remaining[best])
		placed[remaining[best].Relation] = true
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	plan.Scans = out
}

// String summarizes the statistics for diagnostics.
func (s *Stats) String() string {
	out := "stats:"
	for name, rs := range s.rels {
		out += fmt.Sprintf(" %s=%d", name, rs.rows)
	}
	return out
}
