package query

import (
	"math"
	"testing"

	"p2prange/internal/rangeset"
	"p2prange/internal/relation"
)

func statsFixture(t *testing.T) (*Stats, map[string]*relation.Relation) {
	t.Helper()
	rels, err := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 1000, Physicians: 30, Diagnoses: 2000, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewStats(rels), rels
}

func TestStatsRows(t *testing.T) {
	s, rels := statsFixture(t)
	for name, r := range rels {
		if got := s.Rows(name); got != r.Len() {
			t.Errorf("Rows(%s) = %d, want %d", name, got, r.Len())
		}
	}
	if s.Rows("Nope") != 0 {
		t.Error("unknown relation should report 0 rows")
	}
}

func TestStatsSelectivityAccuracy(t *testing.T) {
	s, rels := statsFixture(t)
	pat := rels["Patient"]
	cases := []rangeset.Range{
		{Lo: 1, Hi: 99},    // everything
		{Lo: 30, Hi: 50},   // interior band
		{Lo: 90, Hi: 99},   // right tail
		{Lo: 200, Hi: 300}, // outside the domain
	}
	for _, rg := range cases {
		truth := 0
		for _, tp := range pat.Tuples {
			if rg.Contains(tp[2].Int) {
				truth++
			}
		}
		trueSel := float64(truth) / float64(pat.Len())
		est := s.Selectivity("Patient", "age", rg)
		if math.Abs(est-trueSel) > 0.05 {
			t.Errorf("Selectivity(age, %v) = %.3f, true %.3f", rg, est, trueSel)
		}
	}
	// Unknown attribute defaults to 1.
	if got := s.Selectivity("Patient", "shoe", rangeset.Range{Lo: 0, Hi: 1}); got != 1 {
		t.Errorf("unknown attribute selectivity = %g", got)
	}
}

func TestStatsEstimateScan(t *testing.T) {
	s, rels := statsFixture(t)
	full := Scan{Relation: "Patient"}
	if got := s.EstimateScan(full); got != float64(rels["Patient"].Len()) {
		t.Errorf("full scan estimate = %g", got)
	}
	sel := Scan{Relation: "Patient", Attribute: "age", Range: rangeset.Range{Lo: 30, Hi: 50}}
	if got := s.EstimateScan(sel); got >= float64(rels["Patient"].Len()) || got <= 0 {
		t.Errorf("selective scan estimate = %g", got)
	}
	half := Scan{Relation: "Patient", Attribute: "age", Range: rangeset.Range{Lo: 90, Hi: math.MaxInt64}}
	if got := s.EstimateScan(half); got >= float64(rels["Patient"].Len())/2 {
		t.Errorf("half-open tail estimate = %g, should clamp to the domain", got)
	}
	if got := s.EstimateScan(Scan{Relation: "Ghost"}); !math.IsInf(got, 1) {
		t.Errorf("unknown relation estimate = %g, want +Inf", got)
	}
}

func TestOrderScansPutsSelectiveFirst(t *testing.T) {
	s, _ := statsFixture(t)
	q, err := Parse(`SELECT Prescription.prescription FROM Prescription, Diagnosis, Patient
		WHERE 40 <= age AND age <= 42
		AND Patient.patient_id = Diagnosis.patient_id
		AND Diagnosis.prescription_id = Prescription.prescription_id`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlanWith(q, relation.MedicalSchema(), PlanOptions{Stats: s})
	if err != nil {
		t.Fatal(err)
	}
	// The tiny age band makes Patient by far the smallest input; without
	// stats the FROM order would start with Prescription (2000 rows).
	if plan.Scans[0].Relation != "Patient" {
		t.Errorf("scan order = %v, want Patient first", relNames(plan))
	}
	// Connectivity: Diagnosis must come before Prescription (only
	// Diagnosis joins directly to Patient).
	if plan.Scans[1].Relation != "Diagnosis" {
		t.Errorf("scan order = %v, want Diagnosis second (join connectivity)", relNames(plan))
	}
	// Same rows as the unordered plan.
	rels, _ := relation.GenerateMedical(relation.MedicalConfig{
		Patients: 1000, Physicians: 30, Diagnoses: 2000, Seed: 8,
	})
	src := NewRelationSource(rels)
	unordered, err := BuildPlan(q, relation.MedicalSchema())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Execute(plan, relation.MedicalSchema(), src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(unordered, relation.MedicalSchema(), src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Errorf("ordered plan returned %d rows, unordered %d", len(a.Rows), len(b.Rows))
	}
}

func TestOrderScansTwoRelations(t *testing.T) {
	s, _ := statsFixture(t)
	q, err := Parse(`SELECT * FROM Diagnosis, Physician WHERE Physician.physician_id = Diagnosis.physician_id`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlanWith(q, relation.MedicalSchema(), PlanOptions{Stats: s})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Scans[0].Relation != "Physician" { // 30 rows vs 2000
		t.Errorf("scan order = %v, want Physician first", relNames(plan))
	}
}

func relNames(p *Plan) []string {
	out := make([]string, len(p.Scans))
	for i, s := range p.Scans {
		out[i] = s.Relation
	}
	return out
}
