// Package rangeset provides the value-set view of range predicates that
// the whole system is built on: a selection lo <= attr <= hi is treated
// as the set of integers {lo, ..., hi} (paper Sec. 3.3), so set
// similarity between ranges is defined and locality sensitive hashing
// applies.
//
// Range is a closed interval [Lo, Hi]; Set is a union of disjoint ranges,
// used for multi-interval predicates (IN/OR) and padded probes. The
// similarity measures mirror the paper's:
//
//   - Jaccard (Sec. 3.3): |A∩B|/|A∪B|, the collision probability of
//     min-wise hashing and the x-axis of the Figs. 6-7 histograms.
//   - Containment (Sec. 5.2): |A∩B|/|A|, how much of A the candidate B
//     covers — the alternative bucket-match measure of Fig. 9.
//   - Recall: the fraction of the query range a matched partition
//     answers, the y-axis of Figs. 8-10.
//
// Pad grows a range by a fraction of its size on each side, clamped to
// the attribute domain — Fig. 10's 20% query padding, which trades extra
// tuples for a higher chance that a cached partition contains the query.
package rangeset
