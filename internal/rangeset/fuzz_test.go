package rangeset

import "testing"

// FuzzSetNormalization asserts NewSet's canonical-form invariants for
// arbitrary endpoint quadruples: ranges sorted, disjoint, non-adjacent,
// and membership identical to the raw inputs'.
func FuzzSetNormalization(f *testing.F) {
	f.Add(int64(0), int64(10), int64(5), int64(20))
	f.Add(int64(0), int64(10), int64(11), int64(20)) // adjacent: must merge
	f.Add(int64(5), int64(1), int64(3), int64(3))    // first invalid
	f.Add(int64(-50), int64(50), int64(-50), int64(50))
	f.Fuzz(func(t *testing.T, a, b, c, d int64) {
		clamp := func(v int64) int64 {
			const lim = 1 << 20 // keep membership checks cheap
			if v > lim {
				return lim
			}
			if v < -lim {
				return -lim
			}
			return v
		}
		a, b, c, d = clamp(a), clamp(b), clamp(c), clamp(d)
		r1 := Range{Lo: a, Hi: b}
		r2 := Range{Lo: c, Hi: d}
		s := NewSet(r1, r2)
		rs := s.Ranges()
		for i, r := range rs {
			if !r.Valid() {
				t.Fatalf("invalid range %v in canonical form", r)
			}
			if i > 0 && rs[i-1].Hi+1 >= r.Lo {
				t.Fatalf("ranges %v and %v not disjoint/non-adjacent", rs[i-1], r)
			}
		}
		// Membership agrees with the inputs at the edges and midpoints.
		probe := []int64{a, b, c, d, a - 1, b + 1, (a + b) / 2, (c + d) / 2}
		for _, v := range probe {
			want := (r1.Valid() && r1.Contains(v)) || (r2.Valid() && r2.Contains(v))
			if got := s.Contains(v); got != want {
				t.Fatalf("Contains(%d) = %v, inputs say %v (set %v)", v, got, want, s)
			}
		}
		// Size equals sum of canonical range sizes (definitionally) and
		// never exceeds the raw inputs' combined size.
		var raw int64
		if r1.Valid() {
			raw += r1.Size()
		}
		if r2.Valid() {
			raw += r2.Size()
		}
		if s.Size() > raw {
			t.Fatalf("canonical size %d exceeds raw %d", s.Size(), raw)
		}
	})
}

// FuzzSimilarityBounds asserts every similarity measure stays within
// [0, 1] and equals 1 exactly for identical non-empty ranges.
func FuzzSimilarityBounds(f *testing.F) {
	f.Add(int64(0), int64(10), int64(5), int64(20))
	f.Add(int64(3), int64(3), int64(3), int64(3))
	f.Fuzz(func(t *testing.T, a, b, c, d int64) {
		if b < a || d < c || b-a > 1<<30 || d-c > 1<<30 || a < -(1<<40) || c < -(1<<40) || a > 1<<40 || c > 1<<40 {
			return
		}
		q := Range{Lo: a, Hi: b}
		r := Range{Lo: c, Hi: d}
		for name, v := range map[string]float64{
			"jaccard":     q.Jaccard(r),
			"containment": q.Containment(r),
			"recall":      q.Recall(r),
		} {
			if v < 0 || v > 1 {
				t.Fatalf("%s(%v,%v) = %g out of [0,1]", name, q, r, v)
			}
		}
		if q == r && q.Jaccard(r) != 1 {
			t.Fatalf("identical ranges Jaccard = %g", q.Jaccard(r))
		}
	})
}
