package rangeset

import (
	"errors"
	"fmt"
)

// ErrEmpty is returned by constructors when hi < lo would produce an empty
// range, which the hashing layer cannot represent.
var ErrEmpty = errors.New("rangeset: empty range (hi < lo)")

// Range is a closed interval [Lo, Hi] of integers. It models the set of
// attribute values selected by a range predicate, e.g. 30 <= age <= 50 is
// Range{30, 50} with the value set {30, 31, ..., 50}.
type Range struct {
	Lo, Hi int64
}

// New returns the range [lo, hi]. It returns ErrEmpty if hi < lo.
func New(lo, hi int64) (Range, error) {
	if hi < lo {
		return Range{}, fmt.Errorf("%w: [%d,%d]", ErrEmpty, lo, hi)
	}
	return Range{Lo: lo, Hi: hi}, nil
}

// MustNew is New but panics on error; for tests and literals.
func MustNew(lo, hi int64) Range {
	r, err := New(lo, hi)
	if err != nil {
		panic(err)
	}
	return r
}

// Size returns the number of integers in the range.
func (r Range) Size() int64 { return r.Hi - r.Lo + 1 }

// Valid reports whether the range is non-empty.
func (r Range) Valid() bool { return r.Hi >= r.Lo }

// Contains reports whether v lies in the range.
func (r Range) Contains(v int64) bool { return r.Lo <= v && v <= r.Hi }

// ContainsRange reports whether other is entirely inside r.
func (r Range) ContainsRange(other Range) bool {
	return r.Lo <= other.Lo && other.Hi <= r.Hi
}

// Overlaps reports whether the two ranges share at least one value.
func (r Range) Overlaps(other Range) bool {
	return r.Lo <= other.Hi && other.Lo <= r.Hi
}

// Intersect returns the intersection and whether it is non-empty.
func (r Range) Intersect(other Range) (Range, bool) {
	lo, hi := max64(r.Lo, other.Lo), min64(r.Hi, other.Hi)
	if hi < lo {
		return Range{}, false
	}
	return Range{lo, hi}, true
}

// IntersectSize returns |r ∩ other|.
func (r Range) IntersectSize(other Range) int64 {
	if x, ok := r.Intersect(other); ok {
		return x.Size()
	}
	return 0
}

// UnionSize returns |r ∪ other| (the ranges need not overlap).
func (r Range) UnionSize(other Range) int64 {
	return r.Size() + other.Size() - r.IntersectSize(other)
}

// Jaccard returns the Jaccard set similarity |r ∩ other| / |r ∪ other|.
// It is 1 for identical ranges and 0 for disjoint ones. The corresponding
// distance 1 - Jaccard satisfies the triangle inequality, which is why the
// paper's locality sensitive hash family exists for this measure.
func (r Range) Jaccard(other Range) float64 {
	inter := r.IntersectSize(other)
	if inter == 0 {
		return 0
	}
	return float64(inter) / float64(r.UnionSize(other))
}

// Containment returns |q ∩ r| / |q| where q is the receiver (the query
// range) and r the candidate. It measures how much of the query the
// candidate can answer; it does not admit an LSH family (its distance
// violates the triangle inequality) but is the better bucket-level match
// measure (paper Sec. 5.2, Fig. 9).
func (q Range) Containment(r Range) float64 {
	return float64(q.IntersectSize(r)) / float64(q.Size())
}

// Recall is how much of the desired answer the matched partition supplies:
// |q ∩ r| / |q|. For single ranges it coincides with Containment; it is
// named separately because the evaluation reports it as "part of query
// answered" (Figs. 8-10).
func (q Range) Recall(r Range) float64 { return q.Containment(r) }

// Pad expands the range by frac of its size on each edge, clamped to
// [floor, ceil]. The paper pads queries 20% on the edges (Fig. 10).
// The pad amount is at least 1 when frac > 0 so small ranges still grow.
func (r Range) Pad(frac float64, floor, ceil int64) Range {
	if frac <= 0 {
		return r
	}
	pad := int64(frac * float64(r.Size()))
	if pad < 1 {
		pad = 1
	}
	lo, hi := r.Lo-pad, r.Hi+pad
	if lo < floor {
		lo = floor
	}
	if hi > ceil {
		hi = ceil
	}
	return Range{lo, hi}
}

// Values materializes the value set. Intended for tests and small ranges.
func (r Range) Values() []int64 {
	vs := make([]int64, 0, r.Size())
	for v := r.Lo; v <= r.Hi; v++ {
		vs = append(vs, v)
	}
	return vs
}

// String formats the range in the paper's predicate style.
func (r Range) String() string { return fmt.Sprintf("[%d,%d]", r.Lo, r.Hi) }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
