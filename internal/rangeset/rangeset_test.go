package rangeset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	r, err := New(3, 7)
	if err != nil {
		t.Fatalf("New(3,7): %v", err)
	}
	if r.Lo != 3 || r.Hi != 7 {
		t.Errorf("New(3,7) = %v", r)
	}
	if _, err := New(7, 3); err == nil {
		t.Error("New(7,3) should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(5,1) did not panic")
		}
	}()
	MustNew(5, 1)
}

func TestSize(t *testing.T) {
	cases := []struct {
		r    Range
		want int64
	}{
		{MustNew(0, 0), 1},
		{MustNew(30, 50), 21},
		{MustNew(-5, 5), 11},
	}
	for _, c := range cases {
		if got := c.r.Size(); got != c.want {
			t.Errorf("%v.Size() = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	r := MustNew(30, 50)
	for _, v := range []int64{30, 40, 50} {
		if !r.Contains(v) {
			t.Errorf("%v should contain %d", r, v)
		}
	}
	for _, v := range []int64{29, 51, -1} {
		if r.Contains(v) {
			t.Errorf("%v should not contain %d", r, v)
		}
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b  Range
		want  Range
		empty bool
	}{
		{MustNew(0, 10), MustNew(5, 15), MustNew(5, 10), false},
		{MustNew(0, 10), MustNew(10, 20), MustNew(10, 10), false},
		{MustNew(0, 10), MustNew(11, 20), Range{}, true},
		{MustNew(0, 100), MustNew(40, 60), MustNew(40, 60), false},
	}
	for _, c := range cases {
		got, ok := c.a.Intersect(c.b)
		if ok == c.empty {
			t.Errorf("%v ∩ %v: ok = %v", c.a, c.b, ok)
			continue
		}
		if !c.empty && got != c.want {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
		// Intersection commutes.
		got2, ok2 := c.b.Intersect(c.a)
		if got2 != got || ok2 != ok {
			t.Errorf("intersection not commutative for %v, %v", c.a, c.b)
		}
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b Range
		want float64
	}{
		{MustNew(30, 50), MustNew(30, 50), 1},
		{MustNew(0, 9), MustNew(10, 19), 0},
		{MustNew(0, 9), MustNew(5, 14), 5.0 / 15.0},
		{MustNew(30, 50), MustNew(30, 49), 20.0 / 21.0},
	}
	for _, c := range cases {
		if got := c.a.Jaccard(c.b); !close(got, c.want) {
			t.Errorf("Jaccard(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
		if got := c.b.Jaccard(c.a); !close(got, c.want) {
			t.Errorf("Jaccard(%v,%v) = %g, want %g (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestContainment(t *testing.T) {
	q := MustNew(30, 49) // the paper's example: query [30,49] vs cached [30,50]
	r := MustNew(30, 50)
	if got := q.Containment(r); got != 1 {
		t.Errorf("Containment(%v,%v) = %g, want 1 (answer fully contained)", q, r, got)
	}
	if got := r.Containment(q); got >= 1 {
		t.Errorf("Containment(%v,%v) = %g, want < 1", r, q, got)
	}
	if got := MustNew(0, 9).Containment(MustNew(100, 200)); got != 0 {
		t.Errorf("disjoint containment = %g, want 0", got)
	}
}

func TestPad(t *testing.T) {
	r := MustNew(100, 199) // size 100
	p := r.Pad(0.2, 0, 1000)
	if p.Lo != 80 || p.Hi != 219 {
		t.Errorf("Pad 20%% of %v = %v, want [80,219]", r, p)
	}
	// Clamped at domain edges.
	p = MustNew(0, 99).Pad(0.2, 0, 1000)
	if p.Lo != 0 || p.Hi != 119 {
		t.Errorf("clamped pad = %v, want [0,119]", p)
	}
	// Minimum pad of 1 for tiny ranges.
	p = MustNew(5, 5).Pad(0.2, 0, 1000)
	if p.Lo != 4 || p.Hi != 6 {
		t.Errorf("tiny pad = %v, want [4,6]", p)
	}
	// No-op pad.
	if p := r.Pad(0, 0, 1000); p != r {
		t.Errorf("Pad(0) = %v, want %v", p, r)
	}
}

func TestValues(t *testing.T) {
	vs := MustNew(3, 6).Values()
	want := []int64{3, 4, 5, 6}
	if len(vs) != len(want) {
		t.Fatalf("Values() = %v", vs)
	}
	for i := range vs {
		if vs[i] != want[i] {
			t.Fatalf("Values() = %v, want %v", vs, want)
		}
	}
}

// randRange draws a range within [0, 1000].
func randRange(rng *rand.Rand) Range {
	a, b := rng.Int63n(1001), rng.Int63n(1001)
	if a > b {
		a, b = b, a
	}
	return Range{a, b}
}

// TestJaccardTriangleInequality verifies the property the whole hashing
// scheme rests on: 1 - Jaccard is a metric.
func TestJaccardTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const eps = 1e-12
	for i := 0; i < 20000; i++ {
		a, b, c := randRange(rng), randRange(rng), randRange(rng)
		ab, bc, ac := JaccardDistance(a, b), JaccardDistance(b, c), JaccardDistance(a, c)
		if ab+bc+eps < ac {
			t.Fatalf("triangle violated: d(%v,%v)+d(%v,%v)=%g < d(%v,%v)=%g",
				a, b, b, c, ab+bc, a, c, ac)
		}
	}
}

// TestContainmentNotMetric demonstrates the paper's Section 3.2 point: the
// containment distance violates the triangle inequality, so no LSH family
// exists for it.
func TestContainmentNotMetric(t *testing.T) {
	// Q ⊂ R and R ⊂ S-ish configuration with Q, S far apart:
	// d(Q,R) = 0 (Q inside R), d(R,S) small, but d(Q,S) large.
	q := MustNew(0, 9)
	r := MustNew(0, 999)
	s := MustNew(500, 999)
	dqr := ContainmentDistance(q, r) // 0: q fully inside r
	drs := ContainmentDistance(r, s)
	dqs := ContainmentDistance(q, s) // 1: disjoint
	if dqr+drs >= dqs {
		t.Fatalf("expected triangle violation, got d(q,r)+d(r,s)=%g >= d(q,s)=%g",
			dqr+drs, dqs)
	}
}

// Property: Jaccard via range arithmetic agrees with brute-force set
// computation.
func TestJaccardMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		a, b := randRange(rng), randRange(rng)
		inSet := make(map[int64]int)
		for _, v := range a.Values() {
			inSet[v]++
		}
		for _, v := range b.Values() {
			inSet[v] += 2
		}
		var inter, union float64
		for _, m := range inSet {
			union++
			if m == 3 {
				inter++
			}
		}
		want := inter / union
		return close(a.Jaccard(b), want)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(func() bool { return f() }, cfg); err != nil {
		t.Error(err)
	}
}

func TestRecallBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		q, r := randRange(rng), randRange(rng)
		rec := q.Recall(r)
		if rec < 0 || rec > 1 {
			t.Fatalf("Recall(%v,%v) = %g out of [0,1]", q, r, rec)
		}
		if r.ContainsRange(q) && rec != 1 {
			t.Fatalf("Recall(%v,%v) = %g, want 1 when r contains q", q, r, rec)
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
