package rangeset

import (
	"sort"
	"strings"
)

// Set is a union of disjoint, sorted, non-adjacent ranges. The zero value
// is the empty set. Sets support the multi-interval extension hooks
// (future work in the paper) and provide exact set algebra for property
// tests of the similarity measures.
type Set struct {
	rs []Range // invariant: sorted by Lo, disjoint, gaps of >= 1 between them
}

// NewSet builds a Set from arbitrary (possibly overlapping, unsorted)
// ranges, normalizing them into the canonical disjoint form.
func NewSet(ranges ...Range) Set {
	if len(ranges) == 0 {
		return Set{}
	}
	rs := make([]Range, 0, len(ranges))
	for _, r := range ranges {
		if r.Valid() {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:0]
	for _, r := range rs {
		if n := len(out); n > 0 && r.Lo <= out[n-1].Hi+1 {
			if r.Hi > out[n-1].Hi {
				out[n-1].Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return Set{rs: append([]Range(nil), out...)}
}

// Ranges returns the canonical disjoint ranges in ascending order.
func (s Set) Ranges() []Range { return append([]Range(nil), s.rs...) }

// Empty reports whether the set holds no values.
func (s Set) Empty() bool { return len(s.rs) == 0 }

// Size returns the number of integers in the set.
func (s Set) Size() int64 {
	var n int64
	for _, r := range s.rs {
		n += r.Size()
	}
	return n
}

// Contains reports whether v is in the set.
func (s Set) Contains(v int64) bool {
	i := sort.Search(len(s.rs), func(i int) bool { return s.rs[i].Hi >= v })
	return i < len(s.rs) && s.rs[i].Contains(v)
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	return NewSet(append(s.Ranges(), t.rs...)...)
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var out []Range
	i, j := 0, 0
	for i < len(s.rs) && j < len(t.rs) {
		if x, ok := s.rs[i].Intersect(t.rs[j]); ok {
			out = append(out, x)
		}
		if s.rs[i].Hi < t.rs[j].Hi {
			i++
		} else {
			j++
		}
	}
	return NewSet(out...)
}

// Jaccard returns |s ∩ t| / |s ∪ t|, or 0 when both sets are empty.
func (s Set) Jaccard(t Set) float64 {
	inter := s.Intersect(t).Size()
	union := s.Size() + t.Size() - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Containment returns |s ∩ t| / |s|, treating s as the query set.
// It returns 0 for an empty query set.
func (s Set) Containment(t Set) float64 {
	if s.Size() == 0 {
		return 0
	}
	return float64(s.Intersect(t).Size()) / float64(s.Size())
}

// Iterate calls fn on every value in ascending order, stopping early if fn
// returns false.
func (s Set) Iterate(fn func(v int64) bool) {
	for _, r := range s.rs {
		for v := r.Lo; v <= r.Hi; v++ {
			if !fn(v) {
				return
			}
		}
	}
}

// String formats the set as a union of intervals.
func (s Set) String() string {
	if s.Empty() {
		return "∅"
	}
	parts := make([]string, len(s.rs))
	for i, r := range s.rs {
		parts[i] = r.String()
	}
	return strings.Join(parts, "∪")
}

// JaccardDistance returns 1 - Jaccard(a, b). The paper (via Charikar)
// relies on this being a metric; the property tests verify the triangle
// inequality on it, and its violation for containment distance.
func JaccardDistance(a, b Range) float64 { return 1 - a.Jaccard(b) }

// ContainmentDistance returns 1 - Containment(a, b). Included to let tests
// demonstrate it is NOT a metric (the reason no LSH family exists for it).
func ContainmentDistance(a, b Range) float64 { return 1 - a.Containment(b) }
