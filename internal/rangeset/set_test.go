package rangeset

import (
	"math/rand"
	"testing"
)

func TestNewSetNormalizes(t *testing.T) {
	s := NewSet(MustNew(5, 10), MustNew(0, 3), MustNew(4, 6), MustNew(20, 25))
	// [0,3] and [4,6] are adjacent → merge; [4,6] overlaps [5,10] → merge.
	got := s.Ranges()
	want := []Range{{0, 10}, {20, 25}}
	if len(got) != len(want) {
		t.Fatalf("Ranges() = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Ranges() = %v, want %v", got, want)
		}
	}
}

func TestSetEmpty(t *testing.T) {
	var s Set
	if !s.Empty() || s.Size() != 0 {
		t.Error("zero Set should be empty")
	}
	if s.Contains(0) {
		t.Error("empty set contains nothing")
	}
	if got := NewSet().String(); got != "∅" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(MustNew(0, 5), MustNew(10, 15))
	for _, v := range []int64{0, 5, 10, 15, 3} {
		if !s.Contains(v) {
			t.Errorf("set should contain %d", v)
		}
	}
	for _, v := range []int64{-1, 6, 9, 16} {
		if s.Contains(v) {
			t.Errorf("set should not contain %d", v)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewSet(MustNew(0, 10), MustNew(20, 30))
	b := NewSet(MustNew(5, 25))
	inter := a.Intersect(b)
	if got := inter.Size(); got != 6+6 {
		t.Errorf("intersection size = %d, want 12 (%v)", got, inter)
	}
	union := a.Union(b)
	if got := union.Size(); got != 31 {
		t.Errorf("union size = %d, want 31 (%v)", got, union)
	}
	// |A| + |B| = |A∪B| + |A∩B|
	if a.Size()+b.Size() != union.Size()+inter.Size() {
		t.Error("inclusion-exclusion violated")
	}
}

func randSet(rng *rand.Rand) Set {
	n := 1 + rng.Intn(4)
	rs := make([]Range, n)
	for i := range rs {
		rs[i] = randRange(rng)
	}
	return NewSet(rs...)
}

func TestSetAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b := randSet(rng), randSet(rng)
		inter, union := a.Intersect(b), a.Union(b)
		if a.Size()+b.Size() != union.Size()+inter.Size() {
			t.Fatalf("inclusion-exclusion violated for %v, %v", a, b)
		}
		// Commutativity.
		if got := b.Intersect(a).Size(); got != inter.Size() {
			t.Fatalf("intersection not commutative for %v, %v", a, b)
		}
		if got := b.Union(a).Size(); got != union.Size() {
			t.Fatalf("union not commutative for %v, %v", a, b)
		}
		// Bounds: A∩B ⊆ A ⊆ A∪B.
		if inter.Size() > a.Size() || a.Size() > union.Size() {
			t.Fatalf("size monotonicity violated for %v, %v", a, b)
		}
		// Jaccard within [0,1] and consistent with Range.Jaccard for
		// single-interval sets.
		j := a.Jaccard(b)
		if j < 0 || j > 1 {
			t.Fatalf("Jaccard out of range: %g", j)
		}
	}
}

func TestSetJaccardMatchesRangeJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		a, b := randRange(rng), randRange(rng)
		sa, sb := NewSet(a), NewSet(b)
		if got, want := sa.Jaccard(sb), a.Jaccard(b); !close(got, want) {
			t.Fatalf("Set.Jaccard(%v,%v) = %g, want %g", a, b, got, want)
		}
		if got, want := sa.Containment(sb), a.Containment(b); !close(got, want) {
			t.Fatalf("Set.Containment(%v,%v) = %g, want %g", a, b, got, want)
		}
	}
}

func TestSetIterate(t *testing.T) {
	s := NewSet(MustNew(0, 2), MustNew(10, 11))
	var got []int64
	s.Iterate(func(v int64) bool {
		got = append(got, v)
		return true
	})
	want := []int64{0, 1, 2, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("Iterate visited %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Iterate visited %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	s.Iterate(func(v int64) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d values, want 2", count)
	}
}
