package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WriteCSV serializes the relation: a header row of column names, then
// one record per tuple. Dates render as YYYY-MM-DD, strings verbatim
// (encoding/csv handles quoting).
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(r.Schema.Columns))
	for i, c := range r.Schema.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, t := range r.Tuples {
		for i, v := range t {
			rec[i] = csvCell(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func csvCell(v Value) string {
	switch v.Kind {
	case TString:
		return v.Str
	case TDate:
		y, m, d := DayToDate(v.Int)
		return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
	default:
		return strconv.FormatInt(v.Int, 10)
	}
}

// ReadCSV parses a relation under rs from CSV produced by WriteCSV (or
// hand-written in the same shape). The header must name exactly the
// schema's columns, in any order; cells parse per the column type
// (integers, YYYY-MM-DD dates, strings verbatim).
func ReadCSV(rs *RelationSchema, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = len(rs.Columns)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: csv header: %w", err)
	}
	perm := make([]int, len(header)) // record position -> schema column
	seen := make(map[string]bool)
	for i, name := range header {
		name = strings.TrimSpace(name)
		j, ok := rs.ColIndex(name)
		if !ok {
			return nil, fmt.Errorf("relation: csv column %q not in schema %s", name, rs.Name)
		}
		if seen[name] {
			return nil, fmt.Errorf("relation: duplicate csv column %q", name)
		}
		seen[name] = true
		perm[i] = j
	}
	out := NewRelation(rs)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: csv line %d: %w", line, err)
		}
		t := make(Tuple, len(rs.Columns))
		for i, cell := range rec {
			col := rs.Columns[perm[i]]
			v, err := parseCSVCell(col.Type, cell)
			if err != nil {
				return nil, fmt.Errorf("relation: csv line %d, column %s: %w", line, col.Name, err)
			}
			t[perm[i]] = v
		}
		if err := out.Insert(t); err != nil {
			return nil, fmt.Errorf("relation: csv line %d: %w", line, err)
		}
	}
}

func parseCSVCell(typ Type, cell string) (Value, error) {
	cell = strings.TrimSpace(cell)
	switch typ {
	case TInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad integer %q", cell)
		}
		return IntVal(n), nil
	case TDate:
		parts := strings.Split(cell, "-")
		if len(parts) != 3 || len(parts[0]) != 4 {
			return Value{}, fmt.Errorf("bad date %q (want YYYY-MM-DD)", cell)
		}
		y, err1 := strconv.Atoi(parts[0])
		m, err2 := strconv.Atoi(parts[1])
		d, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || m < 1 || m > 12 || d < 1 || d > 31 {
			return Value{}, fmt.Errorf("bad date %q", cell)
		}
		return DateVal(y, time.Month(m), d), nil
	default:
		return StrVal(cell), nil
	}
}
