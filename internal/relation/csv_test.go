package relation

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	rels, err := GenerateMedical(MedicalConfig{Patients: 50, Physicians: 5, Diagnoses: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range rels {
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadCSV(r.Schema, &buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if got.Len() != r.Len() {
			t.Fatalf("%s: %d tuples, want %d", name, got.Len(), r.Len())
		}
		for i, tp := range got.Tuples {
			for j, v := range tp {
				if !v.Equal(r.Tuples[i][j]) {
					t.Fatalf("%s: tuple %d col %d = %v, want %v", name, i, j, v, r.Tuples[i][j])
				}
			}
		}
	}
}

func TestCSVQuotedStrings(t *testing.T) {
	rs := &RelationSchema{Name: "T", Columns: []Column{
		{Name: "id", Type: TInt}, {Name: "note", Type: TString},
	}}
	r := NewRelation(rs)
	tricky := []string{`comma, inside`, `quote " inside`, "newline\ninside", ""}
	for i, s := range tricky {
		if err := r.Insert(Tuple{IntVal(int64(i)), StrVal(s)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(rs, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range tricky {
		if got.Tuples[i][1].Str != s {
			t.Errorf("tuple %d note = %q, want %q", i, got.Tuples[i][1].Str, s)
		}
	}
}

func TestCSVColumnReordering(t *testing.T) {
	rs := &RelationSchema{Name: "T", Columns: []Column{
		{Name: "a", Type: TInt}, {Name: "b", Type: TString}, {Name: "d", Type: TDate},
	}}
	in := "d,a,b\n2001-02-03,7,hello\n"
	got, err := ReadCSV(rs, strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	tp := got.Tuples[0]
	if tp[0].Int != 7 || tp[1].Str != "hello" || tp[2].Int != DayNumber(2001, time.February, 3) {
		t.Errorf("reordered parse = %v", tp)
	}
}

func TestCSVErrors(t *testing.T) {
	rs := &RelationSchema{Name: "T", Columns: []Column{
		{Name: "a", Type: TInt}, {Name: "d", Type: TDate},
	}}
	cases := []struct {
		name, in string
	}{
		{"unknown column", "a,x\n1,2\n"},
		{"duplicate column", "a,a\n1,2\n"},
		{"bad integer", "a,d\nxyz,2001-01-01\n"},
		{"bad date", "a,d\n1,01/02/2001\n"},
		{"bad date fields", "a,d\n1,2001-13-40\n"},
		{"wrong arity", "a,d\n1\n"},
		{"empty input", ""},
	}
	for _, c := range cases {
		if _, err := ReadCSV(rs, strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestCSVEmptyRelation(t *testing.T) {
	rs := &RelationSchema{Name: "T", Columns: []Column{{Name: "a", Type: TInt}}}
	var buf bytes.Buffer
	if err := NewRelation(rs).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(rs, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("round-tripped empty relation has %d tuples", got.Len())
	}
}
