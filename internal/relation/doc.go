// Package relation is the relational substrate the paper's architecture
// shares: a global schema known to all peers (Sec. 2 assumes "the schema
// is known to all the peers"), typed tuples, relations, and horizontal
// partitions — the unit of caching, the tuples of one relation selected
// by a range predicate on a single attribute.
//
// # The medical running example
//
// MedicalSchema ships the paper's Sec. 2 example schema (Patient,
// Diagnosis, Physician, Prescription) and GenerateMedical produces a
// deterministic synthetic dataset over it, so the Fig. 1 example query
// ("patients between 30 and 50 years of age ...") runs end to end in
// tests, rangeql, and the examples.
//
// # Partitions and indexes
//
// Partition pairs a range descriptor with its materialized tuples;
// Relation.Partition slices a base relation by attribute range, backed by
// optional per-column sorted indexes (BuildIndex) so the data source
// materializes partitions in O(log n + k). CSV read/write supports moving
// relations in and out of live deployments (rangeql \dump/\load, peerd
// -publish).
package relation
