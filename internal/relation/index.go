package relation

import (
	"fmt"
	"sort"

	"p2prange/internal/rangeset"
)

// BuildIndex builds (or rebuilds) a sorted index over the attribute's
// ordinals, making SelectRange on that attribute O(log n + k) instead of
// a full scan. Data-source peers that serve many partition
// materializations benefit most. Inserts invalidate all indexes.
func (r *Relation) BuildIndex(attribute string) error {
	ci, ok := r.Schema.ColIndex(attribute)
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoColumn, r.Schema.Name, attribute)
	}
	idx := make([]int, len(r.Tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.Tuples[idx[a]][ci].Ordinal() < r.Tuples[idx[b]][ci].Ordinal()
	})
	if r.indexes == nil {
		r.indexes = make(map[string][]int)
	}
	r.indexes[attribute] = idx
	return nil
}

// Indexed reports whether the attribute currently has a valid index.
func (r *Relation) Indexed(attribute string) bool {
	_, ok := r.indexes[attribute]
	return ok
}

// selectViaIndex gathers the tuples in rg using the sorted index.
func (r *Relation) selectViaIndex(attribute string, ci int, rg rangeset.Range) *Relation {
	idx := r.indexes[attribute]
	lo := sort.Search(len(idx), func(i int) bool {
		return r.Tuples[idx[i]][ci].Ordinal() >= rg.Lo
	})
	out := NewRelation(r.Schema)
	for i := lo; i < len(idx); i++ {
		t := r.Tuples[idx[i]]
		if t[ci].Ordinal() > rg.Hi {
			break
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out
}
