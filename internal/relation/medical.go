package relation

import (
	"fmt"
	"math/rand"
	"time"
)

// The paper's running example (Sec. 2): a medical global schema with
// Patient, Diagnosis, Physician, and Prescription relations.

// MedicalSchema returns the global schema of the paper's example.
func MedicalSchema() *Schema {
	s, err := NewSchema(
		&RelationSchema{Name: "Patient", Columns: []Column{
			{Name: "patient_id", Type: TInt},
			{Name: "name", Type: TString},
			{Name: "age", Type: TInt},
		}},
		&RelationSchema{Name: "Diagnosis", Columns: []Column{
			{Name: "patient_id", Type: TInt},
			{Name: "diagnosis", Type: TString},
			{Name: "physician_id", Type: TInt},
			{Name: "prescription_id", Type: TInt},
		}},
		&RelationSchema{Name: "Physician", Columns: []Column{
			{Name: "physician_id", Type: TInt},
			{Name: "name", Type: TString},
			{Name: "age", Type: TInt},
			{Name: "specialization", Type: TString},
		}},
		&RelationSchema{Name: "Prescription", Columns: []Column{
			{Name: "prescription_id", Type: TInt},
			{Name: "date", Type: TDate},
			{Name: "prescription", Type: TString},
			{Name: "comments", Type: TString},
		}},
	)
	if err != nil {
		panic(err) // static schema; cannot fail
	}
	return s
}

// MedicalConfig sizes the synthetic medical dataset.
type MedicalConfig struct {
	Patients   int
	Physicians int
	Diagnoses  int // one prescription is generated per diagnosis
	Seed       int64
}

// DefaultMedicalConfig is a small but join-rich dataset.
func DefaultMedicalConfig() MedicalConfig {
	return MedicalConfig{Patients: 2000, Physicians: 50, Diagnoses: 5000, Seed: 42}
}

var (
	diagnosisNames = []string{
		"Glaucoma", "Diabetes", "Hypertension", "Asthma", "Arthritis",
		"Migraine", "Anemia", "Bronchitis", "Cataract", "Eczema",
	}
	specializations = []string{
		"Ophthalmology", "Endocrinology", "Cardiology", "Pulmonology",
		"Rheumatology", "Neurology", "General",
	}
	drugNames = []string{
		"Timolol", "Metformin", "Lisinopril", "Albuterol", "Ibuprofen",
		"Sumatriptan", "Ferrous sulfate", "Amoxicillin", "Latanoprost",
		"Hydrocortisone",
	}
	firstNames = []string{
		"Ada", "Ben", "Cleo", "Dev", "Eve", "Flo", "Gus", "Hal", "Ivy",
		"Jun", "Kai", "Lea", "Max", "Nia", "Oz", "Pia", "Quinn", "Rex",
		"Sol", "Tia",
	}
	lastNames = []string{
		"Adams", "Brown", "Chen", "Diaz", "Evans", "Fox", "Gupta",
		"Hahn", "Ito", "Jones", "Khan", "Lee", "Mori", "Nunez", "Okafor",
		"Patel", "Qi", "Rao", "Silva", "Tran",
	}
)

// GenerateMedical produces a deterministic synthetic instance of the
// medical schema: relations keyed by name. Diagnoses reference valid
// patients, physicians, and prescriptions, so the paper's example join
// query has non-empty answers.
func GenerateMedical(cfg MedicalConfig) (map[string]*Relation, error) {
	schema := MedicalSchema()
	rng := rand.New(rand.NewSource(cfg.Seed))
	name := func() string {
		return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
	}

	rels := make(map[string]*Relation)
	for _, rn := range schema.Relations() {
		rs, _ := schema.Relation(rn)
		rels[rn] = NewRelation(rs)
	}

	for i := 0; i < cfg.Patients; i++ {
		err := rels["Patient"].Insert(Tuple{
			IntVal(int64(i + 1)),
			StrVal(name()),
			IntVal(int64(1 + rng.Intn(99))), // ages 1..99
		})
		if err != nil {
			return nil, err
		}
	}

	for i := 0; i < cfg.Physicians; i++ {
		err := rels["Physician"].Insert(Tuple{
			IntVal(int64(i + 1)),
			StrVal("Dr. " + name()),
			IntVal(int64(28 + rng.Intn(45))),
			StrVal(specializations[rng.Intn(len(specializations))]),
		})
		if err != nil {
			return nil, err
		}
	}

	// Dates span 1998-01-01 .. 2003-12-31 so the paper's 2000-2002 window
	// selects an interior partition.
	dateLo := DayNumber(1998, time.January, 1)
	dateHi := DayNumber(2003, time.December, 31)
	for i := 0; i < cfg.Diagnoses; i++ {
		presID := int64(i + 1)
		drug := drugNames[rng.Intn(len(drugNames))]
		day := dateLo + rng.Int63n(dateHi-dateLo+1)
		err := rels["Prescription"].Insert(Tuple{
			IntVal(presID),
			{Kind: TDate, Int: day},
			StrVal(drug),
			StrVal(fmt.Sprintf("take %d/day", 1+rng.Intn(3))),
		})
		if err != nil {
			return nil, err
		}
		err = rels["Diagnosis"].Insert(Tuple{
			IntVal(int64(1 + rng.Intn(cfg.Patients))),
			StrVal(diagnosisNames[rng.Intn(len(diagnosisNames))]),
			IntVal(int64(1 + rng.Intn(cfg.Physicians))),
			IntVal(presID),
		})
		if err != nil {
			return nil, err
		}
	}
	return rels, nil
}
