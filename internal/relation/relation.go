package relation

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"p2prange/internal/rangeset"
)

// Type is a column type. All types order-embed into int64 so any column
// can carry a range predicate; strings embed by dictionary-free hashing
// and therefore support only equality predicates (encoded as degenerate
// ranges).
type Type int

const (
	// TInt is a 64-bit integer column.
	TInt Type = iota
	// TString is a string column (equality predicates only).
	TString
	// TDate is a calendar date, stored as days since 1970-01-01.
	TDate
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TString:
		return "string"
	case TDate:
		return "date"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is one typed cell. Exactly one of Int/Str is meaningful, per Kind;
// dates use Int as a day number.
type Value struct {
	Kind Type
	Int  int64
	Str  string
}

// IntVal builds an integer value.
func IntVal(v int64) Value { return Value{Kind: TInt, Int: v} }

// StrVal builds a string value.
func StrVal(s string) Value { return Value{Kind: TString, Str: s} }

// DateVal builds a date value from a civil date.
func DateVal(year int, month time.Month, day int) Value {
	return Value{Kind: TDate, Int: DayNumber(year, month, day)}
}

// DayNumber converts a civil date to days since the Unix epoch.
func DayNumber(year int, month time.Month, day int) int64 {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return t.Unix() / 86400
}

// DayToDate converts a day number back to a civil date.
func DayToDate(days int64) (year int, month time.Month, day int) {
	t := time.Unix(days*86400, 0).UTC()
	return t.Year(), t.Month(), t.Day()
}

// Ordinal returns the value's position in the total order used by range
// predicates. String values are not ordered (see StringKey); calling
// Ordinal on one returns its 32-bit key, which is only meaningful for
// equality.
func (v Value) Ordinal() int64 {
	if v.Kind == TString {
		return StringKey(v.Str)
	}
	return v.Int
}

// Equal reports deep equality of two values.
func (v Value) Equal(w Value) bool { return v.Kind == w.Kind && v.Int == w.Int && v.Str == w.Str }

// String formats the value.
func (v Value) String() string {
	switch v.Kind {
	case TString:
		return fmt.Sprintf("%q", v.Str)
	case TDate:
		y, m, d := DayToDate(v.Int)
		return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
	default:
		return fmt.Sprintf("%d", v.Int)
	}
}

// StringKey maps a string to a stable 32-bit integer for equality
// predicates over string attributes (FNV-1a). The paper restricts range
// selection to ordered attributes; string equality selects become the
// degenerate range [key, key].
func StringKey(s string) int64 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return int64(h)
}

// Column is one attribute of a relation schema.
type Column struct {
	Name string
	Type Type
}

// RelationSchema describes one relation.
type RelationSchema struct {
	Name    string
	Columns []Column
}

// ColIndex returns the position of the named column.
func (rs *RelationSchema) ColIndex(name string) (int, bool) {
	for i, c := range rs.Columns {
		if c.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Col returns the named column.
func (rs *RelationSchema) Col(name string) (Column, bool) {
	if i, ok := rs.ColIndex(name); ok {
		return rs.Columns[i], true
	}
	return Column{}, false
}

// Schema is the global schema shared by every peer in the system.
type Schema struct {
	rels  map[string]*RelationSchema
	order []string
}

// NewSchema builds a schema from relation definitions.
func NewSchema(rels ...*RelationSchema) (*Schema, error) {
	s := &Schema{rels: make(map[string]*RelationSchema)}
	for _, r := range rels {
		if _, dup := s.rels[r.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate relation %q", r.Name)
		}
		seen := make(map[string]bool)
		for _, c := range r.Columns {
			if seen[c.Name] {
				return nil, fmt.Errorf("relation: duplicate column %s.%s", r.Name, c.Name)
			}
			seen[c.Name] = true
		}
		s.rels[r.Name] = r
		s.order = append(s.order, r.Name)
	}
	return s, nil
}

// Relation looks up a relation schema by name.
func (s *Schema) Relation(name string) (*RelationSchema, bool) {
	r, ok := s.rels[name]
	return r, ok
}

// Relations returns the relation names in definition order.
func (s *Schema) Relations() []string { return append([]string(nil), s.order...) }

// Tuple is one row; Tuple[i] corresponds to schema column i.
type Tuple []Value

// Relation is a materialized set of tuples under one schema. Optional
// sorted indexes (BuildIndex) accelerate SelectRange; mutating the
// relation invalidates them.
type Relation struct {
	Schema *RelationSchema
	Tuples []Tuple

	indexes map[string][]int // attribute -> tuple positions sorted by ordinal
}

// ErrNoColumn reports a reference to a column absent from the schema.
var ErrNoColumn = errors.New("relation: no such column")

// NewRelation returns an empty relation under rs.
func NewRelation(rs *RelationSchema) *Relation {
	return &Relation{Schema: rs}
}

// Insert appends a tuple, validating arity and column types.
func (r *Relation) Insert(t Tuple) error {
	if len(t) != len(r.Schema.Columns) {
		return fmt.Errorf("relation: %s expects %d columns, got %d",
			r.Schema.Name, len(r.Schema.Columns), len(t))
	}
	for i, v := range t {
		if v.Kind != r.Schema.Columns[i].Type {
			return fmt.Errorf("relation: %s.%s expects %s, got %s",
				r.Schema.Name, r.Schema.Columns[i].Name, r.Schema.Columns[i].Type, v.Kind)
		}
	}
	r.Tuples = append(r.Tuples, t)
	r.indexes = nil // any index is now stale
	return nil
}

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.Tuples) }

// SelectRange returns the tuples whose attribute ordinal falls in rg —
// the horizontal partition defined by the predicate lo <= attr <= hi.
func (r *Relation) SelectRange(attribute string, rg rangeset.Range) (*Relation, error) {
	i, ok := r.Schema.ColIndex(attribute)
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoColumn, r.Schema.Name, attribute)
	}
	if _, indexed := r.indexes[attribute]; indexed {
		return r.selectViaIndex(attribute, i, rg), nil
	}
	out := NewRelation(r.Schema)
	for _, t := range r.Tuples {
		if rg.Contains(t[i].Ordinal()) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out, nil
}

// AttributeRange returns the [min, max] ordinal of the attribute across
// all tuples, for padding clamps and workload domains.
func (r *Relation) AttributeRange(attribute string) (rangeset.Range, error) {
	i, ok := r.Schema.ColIndex(attribute)
	if !ok {
		return rangeset.Range{}, fmt.Errorf("%w: %s.%s", ErrNoColumn, r.Schema.Name, attribute)
	}
	if len(r.Tuples) == 0 {
		return rangeset.Range{}, errors.New("relation: empty relation has no attribute range")
	}
	lo, hi := r.Tuples[0][i].Ordinal(), r.Tuples[0][i].Ordinal()
	for _, t := range r.Tuples[1:] {
		v := t[i].Ordinal()
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return rangeset.Range{Lo: lo, Hi: hi}, nil
}

// SortBy orders tuples by the attribute's ordinal, ascending; stable.
func (r *Relation) SortBy(attribute string) error {
	i, ok := r.Schema.ColIndex(attribute)
	if !ok {
		return fmt.Errorf("%w: %s.%s", ErrNoColumn, r.Schema.Name, attribute)
	}
	sort.SliceStable(r.Tuples, func(a, b int) bool {
		return r.Tuples[a][i].Ordinal() < r.Tuples[b][i].Ordinal()
	})
	r.indexes = nil // tuple positions changed
	return nil
}

// Partition is a materialized horizontal partition: the descriptor plus
// the tuple data. It is what a holder peer serves when another peer
// fetches a matched partition.
type Partition struct {
	Relation  string
	Attribute string
	Range     rangeset.Range
	Data      *Relation
}

// Partition materializes the horizontal partition of r for rg over
// attribute.
func (r *Relation) Partition(attribute string, rg rangeset.Range) (*Partition, error) {
	data, err := r.SelectRange(attribute, rg)
	if err != nil {
		return nil, err
	}
	return &Partition{
		Relation:  r.Schema.Name,
		Attribute: attribute,
		Range:     rg,
		Data:      data,
	}, nil
}
