package relation

import (
	"errors"
	"testing"
	"time"

	"p2prange/internal/rangeset"
)

func testSchema(t *testing.T) *RelationSchema {
	t.Helper()
	return &RelationSchema{Name: "T", Columns: []Column{
		{Name: "id", Type: TInt},
		{Name: "name", Type: TString},
		{Name: "when", Type: TDate},
	}}
}

func TestInsertValidation(t *testing.T) {
	r := NewRelation(testSchema(t))
	ok := Tuple{IntVal(1), StrVal("x"), DateVal(2001, time.March, 4)}
	if err := r.Insert(ok); err != nil {
		t.Fatalf("valid insert: %v", err)
	}
	if err := r.Insert(Tuple{IntVal(1)}); err == nil {
		t.Error("arity violation accepted")
	}
	if err := r.Insert(Tuple{StrVal("x"), StrVal("y"), DateVal(2001, time.March, 4)}); err == nil {
		t.Error("type violation accepted")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestSelectRange(t *testing.T) {
	r := NewRelation(testSchema(t))
	for i := int64(0); i < 100; i++ {
		if err := r.Insert(Tuple{IntVal(i), StrVal("n"), DateVal(2000, time.January, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.SelectRange("id", rangeset.Range{Lo: 30, Hi: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 21 {
		t.Errorf("selected %d tuples, want 21", got.Len())
	}
	for _, tp := range got.Tuples {
		if tp[0].Int < 30 || tp[0].Int > 50 {
			t.Fatalf("tuple %v outside range", tp)
		}
	}
	if _, err := r.SelectRange("nope", rangeset.Range{Lo: 0, Hi: 1}); !errors.Is(err, ErrNoColumn) {
		t.Errorf("unknown column error = %v", err)
	}
}

func TestSelectRangeOnDates(t *testing.T) {
	r := NewRelation(testSchema(t))
	dates := []Value{
		DateVal(1999, time.December, 31),
		DateVal(2000, time.June, 15),
		DateVal(2002, time.December, 31),
		DateVal(2003, time.January, 1),
	}
	for i, d := range dates {
		if err := r.Insert(Tuple{IntVal(int64(i)), StrVal("n"), d}); err != nil {
			t.Fatal(err)
		}
	}
	window := rangeset.Range{
		Lo: DayNumber(2000, time.January, 1),
		Hi: DayNumber(2002, time.December, 31),
	}
	got, err := r.SelectRange("when", window)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("date select returned %d tuples, want 2", got.Len())
	}
}

func TestDayNumberRoundTrip(t *testing.T) {
	cases := []struct {
		y int
		m time.Month
		d int
	}{
		{1970, time.January, 1},
		{2000, time.February, 29}, // leap day
		{2002, time.December, 31},
		{1969, time.July, 20}, // pre-epoch
	}
	for _, c := range cases {
		n := DayNumber(c.y, c.m, c.d)
		y, m, d := DayToDate(n)
		if y != c.y || m != c.m || d != c.d {
			t.Errorf("round trip %04d-%02d-%02d -> %d -> %04d-%02d-%02d",
				c.y, c.m, c.d, n, y, m, d)
		}
	}
	if DayNumber(1970, time.January, 1) != 0 {
		t.Error("epoch day should be 0")
	}
	if DayNumber(1970, time.January, 2) != 1 {
		t.Error("day numbering should be contiguous")
	}
}

func TestStringKeyStable(t *testing.T) {
	if StringKey("Glaucoma") != StringKey("Glaucoma") {
		t.Error("StringKey not deterministic")
	}
	if StringKey("Glaucoma") == StringKey("Diabetes") {
		t.Error("distinct strings collide (unlucky FNV collision?)")
	}
	if StringKey("") < 0 || StringKey("x") < 0 {
		t.Error("keys must be non-negative for range encoding")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{IntVal(42), "42"},
		{StrVal("hi"), `"hi"`},
		{DateVal(2002, time.December, 31), "2002-12-31"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestAttributeRange(t *testing.T) {
	r := NewRelation(testSchema(t))
	for _, id := range []int64{5, 90, 17} {
		if err := r.Insert(Tuple{IntVal(id), StrVal("n"), DateVal(2000, time.January, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	dom, err := r.AttributeRange("id")
	if err != nil {
		t.Fatal(err)
	}
	if dom.Lo != 5 || dom.Hi != 90 {
		t.Errorf("domain = %v, want [5,90]", dom)
	}
	empty := NewRelation(testSchema(t))
	if _, err := empty.AttributeRange("id"); err == nil {
		t.Error("empty relation should have no attribute range")
	}
}

func TestSortBy(t *testing.T) {
	r := NewRelation(testSchema(t))
	for _, id := range []int64{5, 1, 9} {
		if err := r.Insert(Tuple{IntVal(id), StrVal("n"), DateVal(2000, time.January, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.SortBy("id"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < r.Len(); i++ {
		if r.Tuples[i-1][0].Int > r.Tuples[i][0].Int {
			t.Fatalf("not sorted: %v", r.Tuples)
		}
	}
}

func TestPartitionMaterialization(t *testing.T) {
	r := NewRelation(testSchema(t))
	for i := int64(0); i < 50; i++ {
		if err := r.Insert(Tuple{IntVal(i), StrVal("n"), DateVal(2000, time.January, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	part, err := r.Partition("id", rangeset.Range{Lo: 10, Hi: 19})
	if err != nil {
		t.Fatal(err)
	}
	if part.Relation != "T" || part.Attribute != "id" || part.Data.Len() != 10 {
		t.Errorf("partition = %+v with %d tuples", part, part.Data.Len())
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(
		&RelationSchema{Name: "A"}, &RelationSchema{Name: "A"},
	); err == nil {
		t.Error("duplicate relation accepted")
	}
	if _, err := NewSchema(&RelationSchema{
		Name:    "A",
		Columns: []Column{{Name: "x", Type: TInt}, {Name: "x", Type: TInt}},
	}); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestMedicalGeneration(t *testing.T) {
	cfg := MedicalConfig{Patients: 100, Physicians: 10, Diagnoses: 300, Seed: 1}
	rels, err := GenerateMedical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rels["Patient"].Len(); got != 100 {
		t.Errorf("patients = %d", got)
	}
	if got := rels["Diagnosis"].Len(); got != 300 {
		t.Errorf("diagnoses = %d", got)
	}
	if got := rels["Prescription"].Len(); got != 300 {
		t.Errorf("prescriptions = %d", got)
	}
	// Referential integrity: diagnosis FKs resolve.
	patIdx := make(map[int64]bool)
	for _, tp := range rels["Patient"].Tuples {
		patIdx[tp[0].Int] = true
	}
	presIdx := make(map[int64]bool)
	for _, tp := range rels["Prescription"].Tuples {
		presIdx[tp[0].Int] = true
	}
	for _, tp := range rels["Diagnosis"].Tuples {
		if !patIdx[tp[0].Int] {
			t.Fatalf("dangling patient_id %d", tp[0].Int)
		}
		if !presIdx[tp[3].Int] {
			t.Fatalf("dangling prescription_id %d", tp[3].Int)
		}
	}
	// Determinism.
	rels2, err := GenerateMedical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rels["Patient"].Tuples[0][1].Str != rels2["Patient"].Tuples[0][1].Str {
		t.Error("generation not deterministic for equal seeds")
	}
}

func TestMedicalSchemaShape(t *testing.T) {
	s := MedicalSchema()
	for _, name := range []string{"Patient", "Diagnosis", "Physician", "Prescription"} {
		if _, ok := s.Relation(name); !ok {
			t.Errorf("missing relation %s", name)
		}
	}
	rs, _ := s.Relation("Patient")
	if col, ok := rs.Col("age"); !ok || col.Type != TInt {
		t.Error("Patient.age missing or mistyped")
	}
}

func TestIndexedSelectMatchesScan(t *testing.T) {
	rels, err := GenerateMedical(MedicalConfig{Patients: 500, Physicians: 10, Diagnoses: 500, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	r := rels["Patient"]
	scan, err := r.SelectRange("age", rangeset.Range{Lo: 30, Hi: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.BuildIndex("age"); err != nil {
		t.Fatal(err)
	}
	if !r.Indexed("age") {
		t.Fatal("index not registered")
	}
	indexed, err := r.SelectRange("age", rangeset.Range{Lo: 30, Hi: 50})
	if err != nil {
		t.Fatal(err)
	}
	if indexed.Len() != scan.Len() {
		t.Fatalf("indexed select %d tuples, scan %d", indexed.Len(), scan.Len())
	}
	// Same multiset of patient ids.
	count := map[int64]int{}
	for _, tp := range scan.Tuples {
		count[tp[0].Int]++
	}
	for _, tp := range indexed.Tuples {
		count[tp[0].Int]--
	}
	for id, c := range count {
		if c != 0 {
			t.Fatalf("tuple multiset differs at id %d", id)
		}
	}
	// Edge ranges behave.
	for _, rg := range []rangeset.Range{{Lo: -10, Hi: -1}, {Lo: 200, Hi: 300}, {Lo: 1, Hi: 99}} {
		a, _ := r.SelectRange("age", rg)
		r2 := rels["Physician"] // unindexed control not needed; rescan without index
		_ = r2
		bIdx := a.Len()
		full := 0
		for _, tp := range r.Tuples {
			if rg.Contains(tp[2].Ordinal()) {
				full++
			}
		}
		if bIdx != full {
			t.Fatalf("range %v: indexed %d, brute %d", rg, bIdx, full)
		}
	}
}

func TestIndexInvalidatedByInsert(t *testing.T) {
	r := NewRelation(&RelationSchema{Name: "T", Columns: []Column{{Name: "a", Type: TInt}}})
	for i := int64(0); i < 10; i++ {
		if err := r.Insert(Tuple{IntVal(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.BuildIndex("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert(Tuple{IntVal(5)}); err != nil {
		t.Fatal(err)
	}
	if r.Indexed("a") {
		t.Fatal("stale index survived Insert")
	}
	// Selects remain correct post-invalidation.
	got, err := r.SelectRange("a", rangeset.Range{Lo: 5, Hi: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("post-insert select = %d tuples, want 2", got.Len())
	}
}

func TestIndexUnknownColumn(t *testing.T) {
	r := NewRelation(&RelationSchema{Name: "T", Columns: []Column{{Name: "a", Type: TInt}}})
	if err := r.BuildIndex("nope"); err == nil {
		t.Error("unknown column indexed")
	}
}
