// Package replica keeps partition descriptors available and their query
// load balanced once traffic stops being uniform. The paper stores each
// descriptor on exactly one Chord successor per identifier, so a popular
// range hammers one peer and a single crash erases the match; Section 5
// leaves caching popular results and balancing storage load as future
// work. This package implements both:
//
//   - Replication: when a bucket owner admits a new descriptor it stamps
//     the copy with a version and its own address (the origin) and
//     pushes it to the first R-1 nodes of its successor list, so the
//     descriptor survives the owner and — because Chord hands a dead
//     node's arc to its first live successor — the bucket's next owner
//     already holds every copy.
//
//   - Popularity tracking: owners count per-identifier probe hits with a
//     decaying gauge; a bucket whose recent hits cross HotThreshold is
//     promoted to a wider replica set (RHot copies), widening exactly
//     the partitions a skewed workload hammers.
//
//   - Load-aware selection: the query side resolves the bucket owner as
//     usual, then probes the replica set's load gauges and sends the
//     bucket search to the least-loaded live copy, falling back through
//     suspects to the plain owner path. Reads spread across replicas in
//     proportion to their idleness, which is what tames the hot
//     partition.
//
//   - Anti-entropy repair: owners periodically send a version vector
//     (descriptor key -> version, per bucket) to each replica; the
//     replica answers with what it lacks and the owner pushes full
//     descriptors for just those keys. Churn-lost replicas are re-created
//     within one repair period. The chord Maintainer drives the loop in
//     live deployments (MaintainerConfig.Repair); simulations call
//     Manager.Sync between query batches.
//
// Repair composes with the durable store (internal/wal): a peer that
// restarts with a data directory replays its descriptors with version
// and origin stamps intact, so the digest exchange sees them as current
// and backfills only what changed while the peer was down — replay
// restores the peer's view, anti-entropy reconciles it. A cold restart
// (no journal) is the degenerate case where repair must resupply
// everything, measured as the restart rows of the churn experiment.
//
// The Manager is transport-agnostic: the peer layer supplies the
// successor list, the ownership predicate, and push/call closures, so
// this package depends only on chord refs and the store. Counters land
// in the Default metrics registry under replica.* (see
// docs/OBSERVABILITY.md).
package replica
