package replica

import (
	"sync"
	"sync/atomic"

	"p2prange/internal/chord"
	"p2prange/internal/metrics"
	"p2prange/internal/obs"
	"p2prange/internal/store"
	"p2prange/internal/transport"
)

// Defaults for Config's zero values.
const (
	// DefaultR is the replica-set size: each descriptor lives on its
	// bucket owner plus R-1 successors.
	DefaultR = 3
	// DefaultHotThreshold is the decayed per-bucket hit count at which a
	// bucket is promoted to the wide (RHot) replica set.
	DefaultHotThreshold = 64
)

// The Default-registry replica.* family: replication, promotion, repair,
// and selection counters aggregated across every peer in the process.
var (
	metPushed     = metrics.Default.Counter("replica.pushed")
	metPushErrors = metrics.Default.Counter("replica.push_errors")
	metPromotions = metrics.Default.Counter("replica.promotions")
	metSyncRounds = metrics.Default.Counter("replica.sync_rounds")
	metRepaired   = metrics.Default.Counter("replica.repaired")
	metSyncErrors = metrics.Default.Counter("replica.sync_errors")
	metLoadProbes = metrics.Default.Counter("replica.load_probes")
	metSelections = metrics.Default.Counter("replica.selections")
	metDiverted   = metrics.Default.Counter("replica.diverted")
	metFallbacks  = metrics.Default.Counter("replica.fallbacks")
	metShipSynced = metrics.Default.Counter("replica.ship_synced")
	metShipFellBk = metrics.Default.Counter("replica.ship_fallbacks")
)

// Wire messages of the replica protocol. The peer layer dispatches them
// alongside its partition protocol.
type (
	// SyncReq carries an owner's version vector for the buckets a
	// replica should hold; the replica answers with what it lacks.
	SyncReq struct {
		Digest store.Digest
	}
	// SyncResp lists the descriptor keys (per bucket) that are missing
	// or stale at the replica.
	SyncResp struct {
		Missing map[uint32][]string
	}
	// LoadReq asks a peer for its current query-load gauge and the
	// replica fan-out of bucket ID (R, or RHot when the bucket is hot).
	LoadReq struct {
		ID uint32
	}
	// LoadResp reports the gauge and fan-out the selection ranks on.
	LoadResp struct {
		Load   int64
		Fanout int
	}
)

func init() {
	for _, v := range []any{SyncReq{}, SyncResp{}, LoadReq{}, LoadResp{}} {
		transport.RegisterType(v)
	}
}

// Config parameterizes a Manager. The zero value enables nothing; R must
// be at least 2 for replication to place any copies.
type Config struct {
	// R is the replica-set size per descriptor: the bucket owner plus
	// R-1 successors (default DefaultR).
	R int
	// RHot is the replica-set size for hot buckets (default 2*R).
	RHot int
	// HotThreshold is the decayed hit count promoting a bucket to RHot
	// copies (default DefaultHotThreshold).
	HotThreshold uint64
}

func (c Config) withDefaults() Config {
	if c.R <= 0 {
		c.R = DefaultR
	}
	if c.RHot < c.R {
		c.RHot = 2 * c.R
	}
	if c.HotThreshold == 0 {
		c.HotThreshold = DefaultHotThreshold
	}
	return c
}

// Deps are the closures a Manager uses to reach the rest of the peer: it
// owns no transport or routing state of its own.
type Deps struct {
	// Successors returns up to k distinct ring successors of this peer
	// (the placement set).
	Successors func(k int) []chord.Ref
	// SuccessorsOf fetches the successor list of another peer (the
	// replica set of a remote owner, for query-side selection).
	SuccessorsOf func(owner chord.Ref) ([]chord.Ref, error)
	// Owns reports whether this peer currently owns bucket id; only
	// owned buckets are offered during anti-entropy, so copies do not
	// cascade replica-to-replica around the ring.
	Owns func(id uint32) bool
	// Suspect excludes a peer that failed an RPC from routing.
	Suspect func(id chord.ID)
	// Push writes one descriptor copy to a replica.
	Push func(to chord.Ref, id uint32, p store.Partition) error
	// Call issues a replica-protocol request (SyncReq, LoadReq).
	Call func(to chord.Ref, req any) (any, error)
}

// ShipFunc is the log-shipping fast path for one successor: push the
// WAL records written since the last round and report (records shipped,
// converged). ok=false demotes that successor to a digest exchange this
// round — ship is the common case, digests the repair of last resort.
type ShipFunc func(succ chord.Ref) (pushed int, ok bool)

// Manager runs one peer's side of the replication subsystem: stamping
// and pushing copies on publish, promoting hot buckets, answering load
// probes, and repairing replicas by anti-entropy. All methods are safe
// for concurrent use.
type Manager struct {
	cfg     Config
	self    chord.Ref
	st      *store.Store
	deps    Deps
	tracker *Tracker
	ver     atomic.Uint64

	shipMu sync.RWMutex
	ship   ShipFunc
}

// SetShip installs the log-shipping sync path. It is attached after
// construction because the WAL (the shipped log) opens only once the
// peer's store has been recovered.
func (m *Manager) SetShip(f ShipFunc) {
	m.shipMu.Lock()
	m.ship = f
	m.shipMu.Unlock()
}

func (m *Manager) shipFunc() ShipFunc {
	m.shipMu.RLock()
	defer m.shipMu.RUnlock()
	return m.ship
}

// NewManager builds a manager for the peer at self over its store.
func NewManager(self chord.Ref, st *store.Store, cfg Config, deps Deps) *Manager {
	cfg = cfg.withDefaults()
	return &Manager{
		cfg:     cfg,
		self:    self,
		st:      st,
		deps:    deps,
		tracker: NewTracker(cfg.HotThreshold),
	}
}

// Stamp tags a descriptor this peer is about to admit as bucket owner:
// a locally monotonic version and this peer's address as origin. Call it
// only for descriptors not already stored (re-stamping a duplicate would
// make every re-publish look newer than the stored copy).
func (m *Manager) Stamp(p *store.Partition) {
	p.Version = m.ver.Add(1)
	p.Origin = m.self.Addr
}

// Fanout returns the replica-set size of bucket id: RHot while the
// bucket is hot, R otherwise.
func (m *Manager) Fanout(id uint32) int {
	if m.tracker.Hot(id) {
		return m.cfg.RHot
	}
	return m.cfg.R
}

// Load returns this peer's query-load gauge (decayed recent probe hits).
func (m *Manager) Load() int64 { return m.tracker.Load() }

// HandleLoad answers a LoadReq.
func (m *Manager) HandleLoad(r LoadReq) LoadResp {
	return LoadResp{Load: m.tracker.Load(), Fanout: m.Fanout(r.ID)}
}

// HandleSync answers a SyncReq with the keys this peer lacks.
func (m *Manager) HandleSync(r SyncReq) SyncResp {
	return SyncResp{Missing: m.st.MissingFrom(r.Digest)}
}

// Replicate pushes a freshly admitted descriptor to the first Fanout-1
// successors. Pushes are best-effort — an unreachable successor is
// counted and skipped; the anti-entropy loop re-creates the copy once
// the node recovers or the list repairs. Returns the copies written.
func (m *Manager) Replicate(id uint32, p store.Partition) int {
	return m.push(id, p, m.Fanout(id)-1)
}

func (m *Manager) push(id uint32, p store.Partition, copies int) int {
	if copies <= 0 {
		return 0
	}
	sent := 0
	for _, succ := range m.deps.Successors(copies) {
		if err := m.deps.Push(succ, id, p); err != nil {
			metPushErrors.Inc()
			continue
		}
		metPushed.Inc()
		sent++
	}
	return sent
}

// Hit records one probe served for bucket id. When the hit promotes the
// bucket to hot, its descriptors are immediately re-replicated at the
// wide fan-out so the extra copies exist before the next burst arrives.
// Only the bucket's owner pushes — a replica that serves diverted probes
// tracks its own heat but must not scatter copies to its successors,
// which are not the bucket's replica set.
func (m *Manager) Hit(id uint32) {
	if !m.tracker.Hit(id) {
		return
	}
	metPromotions.Inc()
	obs.Events.Emitf(obs.SevInfo, "replica", "%s promoted hot bucket %08x to fan-out %d", m.self.Addr, id, m.cfg.RHot)
	if m.deps.Owns != nil && !m.deps.Owns(id) {
		return
	}
	for _, p := range m.st.Bucket(id) {
		m.push(id, p, m.cfg.RHot-1)
	}
}

// SyncStats summarizes one anti-entropy round.
type SyncStats struct {
	// Peers is the number of successors that answered a digest exchange.
	Peers int
	// Repaired is the number of descriptor copies re-created.
	Repaired int
	// Errors counts unreachable successors and failed pushes.
	Errors int
	// Shipped is the number of WAL records pushed by log shipping in
	// place of digest rows.
	Shipped int
	// ShipFallbacks counts successors demoted to a digest exchange this
	// round (fresh pairing, receiver restart, or retention outran the
	// cursor).
	ShipFallbacks int
}

// Sync runs one anti-entropy round. With a ship path installed
// (SetShip), each full-replica successor is synchronized by pushing the
// WAL records written since the last round; the digest exchange below
// runs only when shipping cannot prove convergence. Without one — or
// for hot-only successors past depth R-1 — it is the classic exchange:
// send the version vector of the owned buckets that successor
// should replicate (successor i holds copies of buckets with fan-out
// > i+1), and push full descriptors for whatever it reports missing.
// Sync also decays the popularity tracker, so the hot set and the load
// gauge both measure the window since the last repair period.
func (m *Manager) Sync() SyncStats {
	metSyncRounds.Inc()
	m.tracker.Decay()
	ship := m.shipFunc()
	var stats SyncStats
	for i, succ := range m.deps.Successors(m.cfg.RHot - 1) {
		depth := i + 1 // succ holds copies of buckets with Fanout > depth
		if ship != nil && depth < m.cfg.R {
			// Full-replica successor (holds every owned bucket, since
			// Fanout >= R > depth): ship the WAL delta instead of
			// walking digests — O(records written) rather than
			// O(store). Hot-only successors below keep the digest
			// path; their bucket set shifts with the hot set, which
			// the log does not encode.
			pushed, ok := ship(succ)
			stats.Shipped += pushed
			if ok {
				metShipSynced.Inc()
				stats.Peers++
				continue
			}
			metShipFellBk.Inc()
			stats.ShipFallbacks++
		}
		digest := m.st.Digest(func(id store.ID) bool {
			return m.deps.Owns(id) && m.Fanout(id) > depth
		})
		if len(digest) == 0 {
			continue
		}
		resp, err := m.deps.Call(succ, SyncReq{Digest: digest})
		if err != nil {
			metSyncErrors.Inc()
			stats.Errors++
			if transport.Retryable(err) {
				m.deps.Suspect(succ.ID)
			}
			continue
		}
		sr, ok := resp.(SyncResp)
		if !ok {
			metSyncErrors.Inc()
			stats.Errors++
			continue
		}
		stats.Peers++
		for id, keys := range sr.Missing {
			for _, key := range keys {
				p, held := m.st.Get(id, key)
				if !held {
					continue // evicted since the digest was built
				}
				if err := m.deps.Push(succ, id, p); err != nil {
					metPushErrors.Inc()
					stats.Errors++
					continue
				}
				metPushed.Inc()
				metRepaired.Inc()
				stats.Repaired++
			}
		}
	}
	// One journal line per round that actually fixed something: repair is
	// the signal that copies were lost (a crash, an eviction, a missed
	// push), not routine convergence.
	if stats.Repaired > 0 {
		obs.Events.Emitf(obs.SevWarn, "replica", "%s anti-entropy repaired %d cop(ies) across %d successor(s)", m.self.Addr, stats.Repaired, stats.Peers)
	}
	return stats
}
