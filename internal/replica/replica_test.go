package replica

import (
	"sync"
	"testing"

	"p2prange/internal/chord"
	"p2prange/internal/rangeset"
	"p2prange/internal/store"
	"p2prange/internal/transport"
)

func ref(i int) chord.Ref {
	return chord.Ref{ID: uint32(i), Addr: string(rune('a' + i))}
}

func part(lo, hi int64) store.Partition {
	return store.Partition{Relation: "R", Attribute: "a", Range: rangeset.Range{Lo: lo, Hi: hi}, Holder: "h"}
}

// fakeRing is a transport-free cluster of stores: the manager under test
// sits at refs[0] and sees refs[1:] as its successor list.
type fakeRing struct {
	mu     sync.Mutex
	refs   []chord.Ref
	stores map[chord.ID]*store.Store
	loads  map[chord.ID]int64
	down   map[chord.ID]bool
	fanout int // fan-out every fake peer reports for LoadReq
}

func newFakeRing(n int) *fakeRing {
	r := &fakeRing{
		stores: make(map[chord.ID]*store.Store),
		loads:  make(map[chord.ID]int64),
		down:   make(map[chord.ID]bool),
		fanout: 1,
	}
	for i := 0; i < n; i++ {
		r.refs = append(r.refs, ref(i))
		r.stores[uint32(i)] = store.New()
	}
	return r
}

func (r *fakeRing) deps() Deps {
	return Deps{
		Successors: func(k int) []chord.Ref {
			if k > len(r.refs)-1 {
				k = len(r.refs) - 1
			}
			return append([]chord.Ref(nil), r.refs[1:1+k]...)
		},
		SuccessorsOf: func(owner chord.Ref) ([]chord.Ref, error) {
			return append([]chord.Ref(nil), r.refs[1:]...), nil
		},
		Owns:    func(id uint32) bool { return true },
		Suspect: func(id chord.ID) {},
		Push: func(to chord.Ref, id uint32, p store.Partition) error {
			r.mu.Lock()
			defer r.mu.Unlock()
			if r.down[to.ID] {
				return transport.ErrUnknownAddr
			}
			r.stores[to.ID].Put(id, p)
			return nil
		},
		Call: func(to chord.Ref, req any) (any, error) {
			r.mu.Lock()
			defer r.mu.Unlock()
			if r.down[to.ID] {
				return nil, transport.ErrUnknownAddr
			}
			switch q := req.(type) {
			case SyncReq:
				return SyncResp{Missing: r.stores[to.ID].MissingFrom(q.Digest)}, nil
			case LoadReq:
				return LoadResp{Load: r.loads[to.ID], Fanout: r.fanout}, nil
			}
			return nil, transport.BadRequest(req)
		},
	}
}

func (r *fakeRing) manager(cfg Config) *Manager {
	return NewManager(r.refs[0], r.stores[r.refs[0].ID], cfg, r.deps())
}

func TestReplicaTrackerPromotionAndDecay(t *testing.T) {
	tr := NewTracker(4)
	for i := 0; i < 3; i++ {
		if tr.Hit(7) {
			t.Fatalf("promoted after %d hits, threshold 4", i+1)
		}
	}
	if !tr.Hit(7) {
		t.Fatal("4th hit should promote")
	}
	if tr.Hit(7) {
		t.Fatal("promotion should fire exactly once")
	}
	if !tr.Hot(7) || tr.Hot(8) {
		t.Fatal("hot set wrong")
	}
	if tr.Load() != 5 {
		t.Fatalf("Load = %d, want 5", tr.Load())
	}
	tr.Decay() // 5 -> 2, still >= threshold/2: stays hot
	if !tr.Hot(7) {
		t.Fatal("decay to 2 should keep bucket hot (demotion at <2)")
	}
	tr.Decay() // 2 -> 1 < threshold/2: demoted
	if tr.Hot(7) {
		t.Fatal("bucket should demote once cooled below threshold/2")
	}
	promoted := false
	for i := 0; i < 4 && !promoted; i++ {
		promoted = tr.Hit(7)
	}
	if !promoted {
		t.Fatal("cooled bucket should be promotable again")
	}
}

func TestReplicaStampAndReplicate(t *testing.T) {
	r := newFakeRing(5)
	m := r.manager(Config{R: 3})
	p := part(0, 10)
	m.Stamp(&p)
	if p.Version != 1 || p.Origin != r.refs[0].Addr {
		t.Fatalf("stamped %+v, want version 1 origin %q", p, r.refs[0].Addr)
	}
	if sent := m.Replicate(42, p); sent != 2 {
		t.Fatalf("Replicate sent %d copies, want R-1 = 2", sent)
	}
	for _, i := range []int{1, 2} {
		if got := r.stores[uint32(i)].Bucket(42); len(got) != 1 || got[0].Version != 1 {
			t.Errorf("successor %d: bucket = %+v, want the stamped copy", i, got)
		}
	}
	if len(r.stores[3].Bucket(42)) != 0 {
		t.Error("copy placed beyond the replica set")
	}
	var q = part(20, 30)
	m.Stamp(&q)
	if q.Version != 2 {
		t.Errorf("versions not monotonic: %d", q.Version)
	}
}

func TestReplicaReplicateSkipsDeadSuccessor(t *testing.T) {
	r := newFakeRing(4)
	r.down[1] = true
	m := r.manager(Config{R: 3})
	p := part(0, 10)
	m.Stamp(&p)
	r.stores[0].Put(42, p)
	// Placement is fixed (first R-1 successors), so a dead successor
	// means a lost copy now — anti-entropy repairs it later.
	if sent := m.Replicate(42, p); sent != 1 {
		t.Fatalf("sent %d, want 1 (successor 1 down)", sent)
	}
	r.down[1] = false
	st := m.Sync()
	if st.Repaired != 1 {
		t.Fatalf("Sync repaired %d, want 1", st.Repaired)
	}
	if got := r.stores[1].Bucket(42); len(got) != 1 {
		t.Errorf("successor 1 not repaired: %v", got)
	}
}

func TestReplicaSyncRepairsStaleAndMissing(t *testing.T) {
	r := newFakeRing(4)
	m := r.manager(Config{R: 3})
	a, b := part(0, 10), part(20, 30)
	m.Stamp(&a)
	m.Stamp(&b)
	r.stores[0].Put(1, a)
	r.stores[0].Put(2, b)
	stale := a
	stale.Version = 0
	r.stores[1].Put(1, stale) // successor 1: stale copy of a, no b
	// successor 2: nothing at all

	st := m.Sync()
	if st.Peers != 2 {
		t.Fatalf("synced %d peers, want 2", st.Peers)
	}
	if st.Repaired != 4 { // a+b at successor 2, a(upgrade)+b at successor 1
		t.Fatalf("repaired %d copies, want 4", st.Repaired)
	}
	for _, i := range []int{1, 2} {
		if got := r.stores[uint32(i)].Bucket(1); len(got) != 1 || got[0].Version != a.Version {
			t.Errorf("successor %d bucket 1 = %+v", i, got)
		}
		if got := r.stores[uint32(i)].Bucket(2); len(got) != 1 {
			t.Errorf("successor %d missing bucket 2", i)
		}
	}
	// Converged: a second round repairs nothing.
	if st := m.Sync(); st.Repaired != 0 {
		t.Errorf("second Sync repaired %d, want 0", st.Repaired)
	}
}

func TestReplicaSyncOffersOnlyOwnedBuckets(t *testing.T) {
	r := newFakeRing(3)
	deps := r.deps()
	deps.Owns = func(id uint32) bool { return id == 1 }
	m := NewManager(r.refs[0], r.stores[0], Config{R: 3}, deps)
	a, b := part(0, 10), part(20, 30)
	m.Stamp(&a)
	m.Stamp(&b)
	r.stores[0].Put(1, a) // owned
	r.stores[0].Put(2, b) // a replica this peer merely holds
	m.Sync()
	for _, i := range []int{1, 2} {
		if len(r.stores[uint32(i)].Bucket(2)) != 0 {
			t.Errorf("successor %d received a copy of an unowned bucket", i)
		}
	}
	if len(r.stores[1].Bucket(1)) != 1 {
		t.Error("owned bucket not replicated")
	}
}

func TestReplicaHitPromotionWidensSet(t *testing.T) {
	r := newFakeRing(7)
	m := r.manager(Config{R: 2, RHot: 4, HotThreshold: 3})
	p := part(0, 10)
	m.Stamp(&p)
	r.stores[0].Put(9, p)
	m.Replicate(9, p)
	if len(r.stores[2].Bucket(9)) != 0 {
		t.Fatal("cold bucket should have R-1 = 1 copy")
	}
	for i := 0; i < 3; i++ {
		m.Hit(9)
	}
	if m.Fanout(9) != 4 {
		t.Fatalf("Fanout = %d after promotion, want RHot = 4", m.Fanout(9))
	}
	for _, i := range []int{1, 2, 3} {
		if len(r.stores[uint32(i)].Bucket(9)) != 1 {
			t.Errorf("successor %d lacks the widened copy", i)
		}
	}
	if len(r.stores[4].Bucket(9)) != 0 {
		t.Error("copy placed beyond RHot-1 successors")
	}
}

func TestReplicaProbeBestPicksLeastLoaded(t *testing.T) {
	r := newFakeRing(4)
	r.fanout = 3
	m := r.manager(Config{R: 3})
	r.loads[0], r.loads[1], r.loads[2] = 10, 2, 7
	var served chord.Ref
	probe := func(to chord.Ref) (any, error) {
		served = to
		return "resp", nil
	}
	got, resp, ok := m.ProbeBest(5, r.refs[0], probe, nil)
	if !ok || resp != "resp" {
		t.Fatalf("ProbeBest failed: ok=%v resp=%v", ok, resp)
	}
	if got.ID != 1 || served.ID != 1 {
		t.Errorf("served by %v, want least-loaded peer 1", served)
	}
}

func TestReplicaProbeBestFallsThroughDeadReplicas(t *testing.T) {
	r := newFakeRing(4)
	r.fanout = 3
	m := r.manager(Config{R: 3})
	r.loads[0], r.loads[1], r.loads[2] = 10, 2, 7
	probe := func(to chord.Ref) (any, error) {
		if to.ID == 1 {
			return nil, transport.ErrUnknownAddr // least-loaded copy just died
		}
		return to.ID, nil
	}
	got, resp, ok := m.ProbeBest(5, r.refs[0], probe, nil)
	if !ok {
		t.Fatal("ProbeBest should fall through to the next candidate")
	}
	if got.ID != 2 || resp != uint32(2) {
		t.Errorf("served by %v, want next-least-loaded peer 2", got)
	}
}

func TestReplicaProbeBestOwnerDownFallsBack(t *testing.T) {
	r := newFakeRing(3)
	m := r.manager(Config{R: 3})
	r.down[0] = true
	suspected := false
	deps := r.deps()
	deps.Suspect = func(id chord.ID) { suspected = suspected || id == 0 }
	m.deps = deps
	_, _, ok := m.ProbeBest(5, r.refs[0], func(chord.Ref) (any, error) { return nil, nil }, nil)
	if ok {
		t.Fatal("ProbeBest should report fallback when the owner cannot be load-probed")
	}
	if !suspected {
		t.Error("dead owner not marked suspect")
	}
}

// TestReplicaManagerConcurrency exercises the manager's shared state
// (tracker counts, version counter, store) from racing goroutines; run
// under -race it is the data-race gate for the subsystem.
func TestReplicaManagerConcurrency(t *testing.T) {
	r := newFakeRing(6)
	r.fanout = 3
	m := r.manager(Config{R: 3, HotThreshold: 8})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := part(int64(i), int64(i)+10)
				m.Stamp(&p)
				id := uint32(i % 7)
				r.stores[0].Put(id, p)
				m.Replicate(id, p)
				m.Hit(id)
				if i%50 == 0 {
					m.Sync()
				}
				m.ProbeBest(id, r.refs[0], func(chord.Ref) (any, error) { return nil, nil }, nil)
			}
		}(w)
	}
	wg.Wait()
	if m.Load() == 0 {
		t.Error("tracker recorded no load")
	}
}

func BenchmarkReplicaTrackerHit(b *testing.B) {
	tr := NewTracker(DefaultHotThreshold)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Hit(uint32(i % 512))
	}
}

func BenchmarkReplicaSyncConverged(b *testing.B) {
	r := newFakeRing(4)
	m := r.manager(Config{R: 3})
	for i := 0; i < 256; i++ {
		p := part(int64(i)*10, int64(i)*10+5)
		m.Stamp(&p)
		r.stores[0].Put(uint32(i%32), p)
		m.Replicate(uint32(i%32), p)
	}
	m.Sync() // converge
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sync()
	}
}

func BenchmarkReplicaProbeBest(b *testing.B) {
	r := newFakeRing(4)
	r.fanout = 3
	m := r.manager(Config{R: 3})
	probe := func(chord.Ref) (any, error) { return nil, nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ProbeBest(5, r.refs[0], probe, nil)
	}
}
