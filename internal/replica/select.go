package replica

import (
	"sort"

	"p2prange/internal/chord"
	"p2prange/internal/trace"
	"p2prange/internal/transport"
)

// Candidate is one member of a bucket's replica set with its probed load.
type Candidate struct {
	Ref  chord.Ref
	Load int64
}

// SortByLoad orders candidates by ascending load, keeping the original
// order (owner first, then ring order) on ties. Stability matters: with
// equal gauges the owner keeps serving, so an idle system behaves
// exactly like the unreplicated protocol.
func SortByLoad(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Load < cands[j].Load })
}

// ProbeBest sends a bucket probe to the least-loaded live member of
// bucket id's replica set instead of its owner: it asks the owner for
// its load gauge and the bucket's fan-out, probes the gauges of the
// owner's first fanout-1 successors, ranks the live candidates by load,
// and invokes probe against each in that order until one answers.
// Unreachable candidates are marked suspect and skipped.
//
// ok is false when the owner could not be load-probed or every candidate
// failed; the caller should fall back to the plain owner path (which
// re-resolves via the suspect machinery). Selection decisions land on sp.
func (m *Manager) ProbeBest(id uint32, owner chord.Ref, probe func(chord.Ref) (any, error), sp *trace.Span) (chord.Ref, any, bool) {
	cands := m.rank(id, owner, sp)
	for i, c := range cands {
		resp, err := probe(c.Ref)
		if err != nil {
			if transport.Retryable(err) {
				m.deps.Suspect(c.Ref.ID)
			}
			if sp.On() {
				sp.Eventf("replica", "%s failed (%v), trying next", c.Ref, err)
			}
			continue
		}
		metSelections.Inc()
		if c.Ref.ID != owner.ID {
			metDiverted.Inc()
		}
		if sp.On() {
			sp.Eventf("replica", "served by %s load=%d (candidate %d/%d)", c.Ref, c.Load, i+1, len(cands))
		}
		return c.Ref, resp, true
	}
	metFallbacks.Inc()
	if sp.On() {
		sp.Eventf("replica", "no live replica of %d candidates, falling back to owner", len(cands))
	}
	return chord.Ref{}, nil, false
}

// rank builds the load-ordered candidate list for bucket id: the owner
// plus the first fanout-1 entries of the owner's successor list, each
// annotated with its probed load gauge. Peers that fail the load probe
// are suspected and dropped.
func (m *Manager) rank(id uint32, owner chord.Ref, sp *trace.Span) []Candidate {
	metLoadProbes.Inc()
	resp, err := m.deps.Call(owner, LoadReq{ID: id})
	lr, ok := resp.(LoadResp)
	if err != nil || !ok {
		if err != nil && transport.Retryable(err) {
			m.deps.Suspect(owner.ID)
		}
		return nil
	}
	cands := []Candidate{{Ref: owner, Load: lr.Load}}
	if lr.Fanout <= 1 {
		return cands
	}
	list, err := m.deps.SuccessorsOf(owner)
	if err != nil {
		return cands
	}
	for _, s := range list {
		if len(cands) >= lr.Fanout {
			break
		}
		if s.IsZero() || s.ID == owner.ID {
			continue
		}
		metLoadProbes.Inc()
		resp, err := m.deps.Call(s, LoadReq{ID: id})
		if err != nil {
			if transport.Retryable(err) {
				m.deps.Suspect(s.ID)
			}
			continue
		}
		if lr, ok := resp.(LoadResp); ok {
			cands = append(cands, Candidate{Ref: s, Load: lr.Load})
		}
	}
	SortByLoad(cands)
	return cands
}
