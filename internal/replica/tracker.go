package replica

import "sync"

// Tracker counts per-identifier probe hits at a bucket owner and decides
// which buckets are hot. Counts decay geometrically (halved each Decay
// call, driven by the anti-entropy loop), so "hot" means recently
// popular, not popular once. Safe for concurrent use.
type Tracker struct {
	threshold uint64
	mu        sync.Mutex
	hits      map[uint32]uint64
	hot       map[uint32]bool
	total     uint64
}

// NewTracker returns a tracker promoting buckets whose decayed hit count
// reaches threshold.
func NewTracker(threshold uint64) *Tracker {
	return &Tracker{
		threshold: threshold,
		hits:      make(map[uint32]uint64),
		hot:       make(map[uint32]bool),
	}
}

// Hit records one probe against bucket id and reports whether the bucket
// just crossed the hot threshold (true exactly once per promotion; a
// bucket that cools via Decay below half the threshold can be promoted
// again later).
func (t *Tracker) Hit(id uint32) (promoted bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hits[id]++
	t.total++
	if !t.hot[id] && t.hits[id] >= t.threshold {
		t.hot[id] = true
		return true
	}
	return false
}

// Hot reports whether bucket id is currently promoted.
func (t *Tracker) Hot(id uint32) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hot[id]
}

// Load returns the decayed total hit count — the peer's query-load gauge
// that replica selection compares across copies.
func (t *Tracker) Load() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(t.total)
}

// Decay halves every count (dropping zeros) and demotes buckets that
// cooled below half the threshold. Hysteresis — promote at threshold,
// demote at threshold/2 — keeps a bucket hovering at the boundary from
// flapping between replica sets.
func (t *Tracker) Decay() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total /= 2
	for id, h := range t.hits {
		h /= 2
		if h == 0 {
			delete(t.hits, id)
		} else {
			t.hits[id] = h
		}
		if t.hot[id] && h < t.threshold/2 {
			delete(t.hot, id)
		}
	}
}
