package ship

import (
	"fmt"
	"testing"

	"p2prange/internal/store"
	"p2prange/internal/transport"
	"p2prange/internal/wal"
)

// encodeMsg/decodeMsg drive the same append/parse pairs the transport
// registry dispatches, keyed by concrete type.
func encodeMsg(v any) ([]byte, error) {
	switch r := v.(type) {
	case SubscribeReq:
		return appendSubscribeReq(nil, &r), nil
	case SubscribeResp:
		return appendSubscribeResp(nil, &r), nil
	case EntriesReq:
		return appendEntriesReq(nil, &r), nil
	case EntriesResp:
		return appendEntriesResp(nil, &r), nil
	case SnapshotChunkReq:
		return appendSnapshotChunkReq(nil, &r), nil
	case SnapshotChunkResp:
		return appendSnapshotChunkResp(nil, &r), nil
	case CursorAckReq:
		return appendCursorAckReq(nil, &r), nil
	case CursorAckResp:
		return nil, nil
	case ApplyReq:
		return appendApplyReq(nil, &r), nil
	case ApplyResp:
		return appendApplyResp(nil, &r), nil
	}
	return nil, fmt.Errorf("unknown message %T", v)
}

func decodeMsg(proto any, b []byte) (any, error) {
	c := transport.NewCursor(b)
	var v any
	switch proto.(type) {
	case SubscribeReq:
		v = parseSubscribeReq(c)
	case SubscribeResp:
		v = parseSubscribeResp(c)
	case EntriesReq:
		v = parseEntriesReq(c)
	case EntriesResp:
		v = parseEntriesResp(c)
	case SnapshotChunkReq:
		v = parseSnapshotChunkReq(c)
	case SnapshotChunkResp:
		v = parseSnapshotChunkResp(c)
	case CursorAckReq:
		v = parseCursorAckReq(c)
	case CursorAckResp:
		v = CursorAckResp{}
	case ApplyReq:
		v = parseApplyReq(c)
	case ApplyResp:
		v = parseApplyResp(c)
	default:
		return nil, fmt.Errorf("unknown message %T", proto)
	}
	if c.Err != nil {
		return nil, c.Err
	}
	if c.Len() != 0 {
		return nil, fmt.Errorf("%d trailing bytes after %T", c.Len(), proto)
	}
	return v, nil
}

// FuzzShipFrameParse throws arbitrary bytes at every shipping-protocol
// parser. The contract for hostile frames: latch an error or decode to
// a value that re-encodes equivalently — never panic, and never
// allocate beyond the actual bytes present (the data copies in
// parseData are bounded by the frame length because Cursor.Bytes
// returns a view, not a count-trusted allocation).
func FuzzShipFrameParse(f *testing.F) {
	batch := wal.AppendFramed(nil, &wal.Record{Op: wal.OpPut, ID: 5, Part: store.Partition{
		Relation: "R", Attribute: "a", Holder: "h:1", Version: 2, Origin: "o:1"}})
	seeds := []any{
		SubscribeReq{Follower: "f:1", Cursor: wal.Cursor{Seq: 2, Off: 64}},
		SubscribeResp{Tail: true, Next: wal.Cursor{Seq: 2, Off: 64}, SnapSeq: 1, SnapSize: 4096},
		EntriesReq{Follower: "f:1", Cursor: wal.Cursor{Seq: 1, Off: 9}, MaxBytes: 65536},
		EntriesResp{Data: batch, Next: wal.Cursor{Seq: 1, Off: 99}, More: true},
		SnapshotChunkReq{Follower: "f:1", Seq: 3, Off: 8192, MaxBytes: 1024},
		SnapshotChunkResp{Data: []byte{9, 8, 7}, CRC: ChunkCRC([]byte{9, 8, 7}), Total: 777},
		CursorAckReq{Follower: "f:1", Cursor: wal.Cursor{Seq: 4, Off: 2}},
		ApplyReq{Origin: "o:1", Data: batch},
		ApplyResp{Token: 3, Applied: 9},
	}
	for _, s := range seeds {
		b, err := encodeMsg(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		if len(b) > 2 {
			f.Add(b[:len(b)/2])
		}
	}
	protos := []any{
		SubscribeReq{}, SubscribeResp{}, EntriesReq{}, EntriesResp{},
		SnapshotChunkReq{}, SnapshotChunkResp{}, CursorAckReq{},
		ApplyReq{}, ApplyResp{},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		for _, proto := range protos {
			v, err := decodeMsg(proto, data)
			if err != nil {
				continue
			}
			// Clean decodes must re-encode to something that decodes to
			// the same value (canonical-form check; the encoding is not
			// injective over inputs, only over values).
			b2, err := encodeMsg(v)
			if err != nil {
				t.Fatalf("%T: decoded value failed to encode: %v", proto, err)
			}
			v2, err := decodeMsg(proto, b2)
			if err != nil {
				t.Fatalf("%T: re-encoded frame failed to parse: %v", proto, err)
			}
			b3, err := encodeMsg(v2)
			if err != nil || string(b2) != string(b3) {
				t.Fatalf("%T: encoding not stable across a round trip", proto)
			}
		}
	})
}

// BenchmarkShipApply measures the follower's entry-apply hot path: CRC
// walk + record decode + idempotent store re-apply of one shipped
// batch, the work done per byte for the whole catch-up stream. `make
// benchguard` asserts 0 allocs/op: parsing interns strings, and
// re-applying an already-present descriptor takes the first-wins
// rejection path without copying.
func BenchmarkShipApply(b *testing.B) {
	st := store.New()
	var batch []byte
	for i := 0; i < 64; i++ {
		r := wal.Record{Op: wal.OpPut, ID: store.ID(i % 8), Part: store.Partition{
			Relation: "R", Attribute: "a", Holder: "h:1", Version: 1, Origin: "o:1"}}
		r.Part.Range.Lo, r.Part.Range.Hi = int64(i), int64(i+10)
		batch = wal.AppendFramed(batch, &r)
		st.Put(r.ID, r.Part) // pre-apply: the benchmark measures re-apply
	}
	apply := PutApplier(st)
	w := wal.NewWalker()
	if n, err := w.Walk(batch, apply); err != nil || n != len(batch) {
		b.Fatalf("walk broken before measuring: n=%d err=%v", n, err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(batch)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Walk(batch, apply); err != nil {
			b.Fatal(err)
		}
	}
}
