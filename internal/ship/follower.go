package ship

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"p2prange/internal/obs"
	"p2prange/internal/wal"
)

// FollowerConfig wires a Follower to an owner and to local storage.
type FollowerConfig struct {
	// Owner is the address shipped from (display/logging only; the
	// Call closure already knows where to dial).
	Owner string
	// Self identifies this follower to the owner; its retention pin and
	// /status row key on the owner side.
	Self string
	// Call sends one request frame to the owner and returns the typed
	// response (peer.Client.Call shaped).
	Call func(req any) (any, error)
	// Apply applies one shipped record locally — all ops, full
	// fidelity, exactly as recovery replays them (wal.StoreRestorer).
	Apply func(wal.Record) error
	// Reset wipes local state before a reseed (snapshot or
	// tail-from-oldest). Must be journaled like any other mutation.
	Reset func() error
	// Commit is the local durability barrier run after each applied
	// batch, before the cursor advances past it.
	Commit func() error
	// Dir, when set, holds the resumable snapshot part file so a
	// follower crash mid-seed continues instead of restarting.
	Dir string
	// MaxBatch caps one EntriesReq (default 256KiB).
	MaxBatch int
	// Interval is the tail poll period for Run (default 1s).
	Interval time.Duration
}

// FollowerStats is a Follower's progress snapshot for /status.
type FollowerStats struct {
	Owner     string     `json:"owner"`
	State     string     `json:"state"` // idle | snapshot | tail
	Cursor    wal.Cursor `json:"cursor"`
	Applied   uint64     `json:"applied_records"`
	Bytes     uint64     `json:"applied_bytes"`
	Snapshots uint64     `json:"snapshots"`
	Resumes   uint64     `json:"snapshot_resumes"`
	Resets    uint64     `json:"cursor_resets"`
	Errors    uint64     `json:"errors"`
	LastError string     `json:"last_error,omitempty"`
}

// Follower subscribes to an owner's WAL and keeps a local store
// converged with it: snapshot seed when too far behind, record tail
// otherwise. One goroutine (Run) per followed owner.
type Follower struct {
	cfg FollowerConfig

	mu     sync.Mutex
	cursor wal.Cursor
	state  string
	stats  FollowerStats
	stop   chan struct{}
	done   chan struct{}

	// walker is the reusable batch parser for the apply hot path; only
	// the single CatchUp/Run goroutine touches it.
	walker *wal.Walker
}

// NewFollower builds a Follower. See FollowerConfig.
func NewFollower(cfg FollowerConfig) *Follower {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256 << 10
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	return &Follower{cfg: cfg, state: "idle", walker: wal.NewWalker()}
}

func (f *Follower) setState(s string) {
	f.mu.Lock()
	f.state = s
	f.mu.Unlock()
}

func (f *Follower) setCursor(c wal.Cursor) {
	f.mu.Lock()
	f.cursor = c
	f.mu.Unlock()
}

// Stats snapshots the follower's progress.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.stats
	st.Owner = f.cfg.Owner
	st.State = f.state
	st.Cursor = f.cursor
	return st
}

func (f *Follower) call(req any) (any, error) {
	resp, err := f.cfg.Call(req)
	if err != nil {
		f.mu.Lock()
		f.stats.Errors++
		f.stats.LastError = err.Error()
		f.mu.Unlock()
	}
	return resp, err
}

// CatchUp drives one full convergence pass: subscribe at the current
// cursor, seed a snapshot if the owner says the cursor's history is
// gone, then tail records until the owner reports nothing newer. It
// returns the number of records applied. Safe to call repeatedly; the
// cursor persists across calls (in memory — a restarted follower
// resubscribes from zero and is reseeded).
func (f *Follower) CatchUp() (int, error) {
	total := 0
	// A reseed response restarts the pass from a zero cursor; bound the
	// restarts so a flapping owner (fold storm) cannot loop us forever.
	for attempt := 0; attempt < 5; attempt++ {
		n, retry, err := f.catchUpOnce()
		total += n
		if err != nil || !retry {
			return total, err
		}
	}
	return total, fmt.Errorf("ship: %s keeps resetting our cursor; giving up this pass", f.cfg.Owner)
}

func (f *Follower) catchUpOnce() (applied int, retry bool, err error) {
	f.mu.Lock()
	cur := f.cursor
	f.mu.Unlock()

	resp, err := f.call(SubscribeReq{Follower: f.cfg.Self, Cursor: cur})
	if err != nil {
		return 0, false, err
	}
	sub, ok := resp.(SubscribeResp)
	if !ok {
		return 0, false, fmt.Errorf("ship: bad subscribe response %T", resp)
	}

	switch {
	case sub.Tail && sub.Reseed:
		// Whole history lives in WAL files; wipe and tail from the
		// oldest record.
		if err := f.reset(); err != nil {
			return 0, false, err
		}
		obs.Events.Emitf(obs.SevWarn, "ship", "%s wiped local state to re-tail %s from the oldest record", f.cfg.Self, f.cfg.Owner)
		cur = sub.Next
	case sub.Tail:
		cur = sub.Next
	default:
		// Too far behind: seed from the sealed segment, then tail from
		// the seal point.
		n, c, err := f.seedSnapshot(sub.SnapSeq, sub.SnapSize)
		if errors.Is(err, errSnapshotGone) {
			// The segment was replaced by a newer fold mid-stream;
			// resubscribe for the new one.
			f.setCursor(wal.Cursor{})
			return 0, true, nil
		}
		if err != nil {
			return 0, false, err
		}
		applied += n
		cur = c
	}

	f.setCursor(cur)
	f.setState("tail")
	defer f.setState("idle")

	n, retry, err := f.tail(cur)
	return applied + n, retry, err
}

// tail pulls entry batches from cur until the owner reports no more,
// applying every record in order. Returns retry=true when the owner
// reset our cursor (retention outran us) — the caller resubscribes.
func (f *Follower) tail(cur wal.Cursor) (int, bool, error) {
	applied := 0
	sinceAck := 0
	for {
		resp, err := f.call(EntriesReq{Follower: f.cfg.Self, Cursor: cur, MaxBytes: uint32(f.cfg.MaxBatch)})
		if err != nil {
			return applied, false, err
		}
		ent, ok := resp.(EntriesResp)
		if !ok {
			return applied, false, fmt.Errorf("ship: bad entries response %T", resp)
		}
		if ent.Reset {
			f.mu.Lock()
			f.stats.Resets++
			f.cursor = wal.Cursor{}
			f.mu.Unlock()
			metCursorResets.Inc()
			obs.Events.Emitf(obs.SevWarn, "ship", "%s reset follower %s: retention outran cursor seq=%d, resubscribing", f.cfg.Owner, f.cfg.Self, cur.Seq)
			return applied, true, nil
		}
		if len(ent.Data) > 0 {
			n, err := f.applyBatch(ent.Data)
			applied += n
			sinceAck += n
			if err != nil {
				return applied, false, err
			}
		}
		cur = ent.Next
		f.setCursor(cur)
		if sinceAck >= 4096 {
			_, _ = f.call(CursorAckReq{Follower: f.cfg.Self, Cursor: cur})
			sinceAck = 0
		}
		if !ent.More {
			// Final ack records our resting cursor as the owner's
			// retention floor for this follower.
			_, _ = f.call(CursorAckReq{Follower: f.cfg.Self, Cursor: cur})
			return applied, false, nil
		}
	}
}

// applyBatch walks one shipped record batch and applies every record —
// all ops, the same order recovery would replay them — then runs the
// commit barrier so the cursor never advances past unapplied bytes.
func (f *Follower) applyBatch(data []byte) (int, error) {
	applied := 0
	n, err := f.walker.Walk(data, func(r wal.Record) error {
		if err := f.cfg.Apply(r); err != nil {
			return err
		}
		applied++
		return nil
	})
	if err == nil && n != len(data) {
		err = fmt.Errorf("ship: torn batch from %s (%d/%d bytes valid)", f.cfg.Owner, n, len(data))
	}
	if err != nil {
		return applied, err
	}
	if f.cfg.Commit != nil {
		if err := f.cfg.Commit(); err != nil {
			return applied, err
		}
	}
	f.mu.Lock()
	f.stats.Applied += uint64(applied)
	f.stats.Bytes += uint64(len(data))
	f.mu.Unlock()
	metApplied.Add(uint64(applied))
	metAppliedBytes.Add(uint64(len(data)))
	return applied, nil
}

var errSnapshotGone = errors.New("ship: snapshot segment replaced mid-stream")

// seedSnapshot streams segment seq (size bytes) chunk by chunk into a
// part file (resumable across follower crashes when cfg.Dir is set),
// verifies the assembled image record-by-record, wipes local state and
// applies the segment's records, and returns the seal-point cursor the
// tail starts from.
func (f *Follower) seedSnapshot(seq uint64, size int64) (int, wal.Cursor, error) {
	f.setState("snapshot")
	defer f.setState("idle")
	metSnapSeeds.Inc()
	f.mu.Lock()
	f.stats.Snapshots++
	f.mu.Unlock()

	var part string
	var data []byte
	if f.cfg.Dir != "" {
		part = filepath.Join(f.cfg.Dir, fmt.Sprintf("ship-seg-%016x.part", seq))
		if prev, err := os.ReadFile(part); err == nil && int64(len(prev)) <= size {
			data = prev
			if len(prev) > 0 {
				metSnapResumes.Inc()
				f.mu.Lock()
				f.stats.Resumes++
				f.mu.Unlock()
			}
		}
		// Part files for older segments are stale; drop them.
		stale, _ := filepath.Glob(filepath.Join(f.cfg.Dir, "ship-seg-*.part"))
		for _, p := range stale {
			if p != part {
				os.Remove(p)
			}
		}
	}

	for int64(len(data)) < size {
		resp, err := f.call(SnapshotChunkReq{
			Follower: f.cfg.Self,
			Seq:      seq,
			Off:      int64(len(data)),
			MaxBytes: 256 << 10,
		})
		if err != nil {
			return 0, wal.Cursor{}, err
		}
		ch, ok := resp.(SnapshotChunkResp)
		if !ok {
			return 0, wal.Cursor{}, fmt.Errorf("ship: bad chunk response %T", resp)
		}
		if ch.Gone {
			metSnapRestarts.Inc()
			if part != "" {
				os.Remove(part)
			}
			return 0, wal.Cursor{}, errSnapshotGone
		}
		if len(ch.Data) == 0 {
			return 0, wal.Cursor{}, fmt.Errorf("ship: empty chunk at %d/%d from %s", len(data), size, f.cfg.Owner)
		}
		if ChunkCRC(ch.Data) != ch.CRC {
			return 0, wal.Cursor{}, fmt.Errorf("ship: chunk CRC mismatch at %d from %s", len(data), f.cfg.Owner)
		}
		data = append(data, ch.Data...)
		if part != "" {
			// Persist progress so a crash here resumes at this offset.
			if err := appendFileTo(part, ch.Data, int64(len(data))-int64(len(ch.Data))); err != nil {
				return 0, wal.Cursor{}, err
			}
		}
	}

	// Full structural verify before touching local state: every record
	// CRC, the seal, the count — the same gate recovery applies.
	recs, err := wal.ParseSegment(data, seq)
	if err != nil {
		if part != "" {
			os.Remove(part)
		}
		return 0, wal.Cursor{}, fmt.Errorf("ship: seeded segment failed verification: %w", err)
	}

	if err := f.reset(); err != nil {
		return 0, wal.Cursor{}, err
	}
	for _, r := range recs {
		if err := f.cfg.Apply(r); err != nil {
			return 0, wal.Cursor{}, err
		}
	}
	if f.cfg.Commit != nil {
		if err := f.cfg.Commit(); err != nil {
			return 0, wal.Cursor{}, err
		}
	}
	f.mu.Lock()
	f.stats.Applied += uint64(len(recs))
	f.stats.Bytes += uint64(len(data))
	f.mu.Unlock()
	if part != "" {
		os.Remove(part)
	}

	cur := wal.Cursor{Seq: seq + 1}
	_, _ = f.call(CursorAckReq{Follower: f.cfg.Self, Cursor: cur})
	obs.Events.Emitf(obs.SevInfo, "ship", "%s seeded from snapshot segment %016x of %s: %d record(s), %d byte(s)", f.cfg.Self, seq, f.cfg.Owner, len(recs), len(data))
	return len(recs), cur, nil
}

func (f *Follower) reset() error {
	if f.cfg.Reset == nil {
		return nil
	}
	return f.cfg.Reset()
}

// appendFileTo appends data to path, but only if the file is currently
// at off — a cheap idempotence guard for the resume path.
func appendFileTo(path string, data []byte, off int64) error {
	fd, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return err
	}
	if st.Size() != off {
		return fmt.Errorf("ship: part file %s moved underneath us (%d != %d)", path, st.Size(), off)
	}
	if _, err := fd.WriteAt(data, off); err != nil {
		return err
	}
	return fd.Sync()
}

// Run polls CatchUp every Interval until Stop. Errors are recorded in
// Stats and retried next tick — an owner crash mid-stream is just a
// failed pass.
func (f *Follower) Run() {
	f.mu.Lock()
	if f.stop != nil {
		f.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	f.stop, f.done = stop, done
	f.mu.Unlock()

	go func() {
		defer close(done)
		t := time.NewTicker(f.cfg.Interval)
		defer t.Stop()
		for {
			_, _ = f.CatchUp()
			select {
			case <-stop:
				_, _ = f.call(CursorAckReq{Follower: f.cfg.Self, Leave: true})
				return
			case <-t.C:
			}
		}
	}()
}

// Stop halts Run and tells the owner to drop our retention pin.
func (f *Follower) Stop() {
	f.mu.Lock()
	stop, done := f.stop, f.done
	f.stop, f.done = nil, nil
	f.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
