package ship

import (
	"errors"
	"sync"

	"p2prange/internal/wal"
)

// Pusher is the replica-sync side of shipping: instead of a digest
// walk (O(store) rows exchanged even when nothing changed), the owner
// pushes the WAL records written since the last round to each
// successor. Digest anti-entropy stays behind it as repair of last
// resort — the pusher reports ok=false whenever it cannot prove the
// receiver saw every record (fresh pairing, receiver restart, cursor
// outrun by retention), and the caller falls back to a digest round.
type Pusher struct {
	log  *wal.Log
	self string
	// keep filters which put records ship (nil ships every put).
	// Replica sync sets it to the ownership predicate so records this
	// peer merely replicates are not re-pushed onward — copies must not
	// cascade replica-to-replica, mirroring the digest path's Owns
	// filter.
	keep func(wal.Record) bool

	mu    sync.Mutex
	peers map[string]*pushState
}

type pushState struct {
	cursor    wal.Cursor
	token     uint64
	baselined bool
}

// NewPusher builds a Pusher shipping from log, identifying its pins as
// self's. keep filters which put records ship (nil ships every put);
// see Pusher.keep.
func NewPusher(log *wal.Log, self string, keep func(wal.Record) bool) *Pusher {
	return &Pusher{log: log, self: self, keep: keep, peers: make(map[string]*pushState)}
}

// maxPushRounds bounds one SyncTo call so a sync pass over many
// successors cannot stall on one far-behind receiver; the next pass
// continues from the saved cursor.
const maxPushRounds = 16

// SyncTo ships the records written since the last successful round to
// addr via call, applying them remotely (puts only). It returns the
// record count pushed and ok=true when the receiver is provably caught
// up to our durable watermark — ok=false means the caller must run a
// digest round for this peer (and the pusher has re-baselined so the
// NEXT round ships incrementally again).
func (p *Pusher) SyncTo(addr string, call func(req any) (any, error)) (int, bool) {
	p.mu.Lock()
	st := p.peers[addr]
	if st == nil {
		st = &pushState{}
		p.peers[addr] = st
	}
	baselined := st.baselined
	cur := st.cursor
	p.mu.Unlock()

	if !baselined {
		// First pairing with this receiver: we cannot know what it
		// already holds, so let the digest round level it, and ship
		// only what lands after this watermark.
		return p.rebaseline(addr, st, call)
	}

	total := 0
	for round := 0; round < maxPushRounds; round++ {
		data, next, err := p.log.ReadEntries(cur, 256<<10)
		if errors.Is(err, wal.ErrCursorGone) {
			// Retention outran this receiver's cursor — we can no
			// longer prove continuity. Digest repair, then resume
			// incremental from the current watermark.
			metPushResets.Inc()
			_, _ = p.rebaseline(addr, st, call)
			return total, false
		}
		if err != nil {
			return total, false
		}

		n, tok, err := p.apply(call, p.filter(data))
		if err != nil {
			return total, false
		}
		p.mu.Lock()
		restarted := st.token != 0 && tok != st.token
		st.token = tok
		p.mu.Unlock()
		if restarted {
			// The receiver restarted since our last round: everything
			// we shipped it lives only in its lost memory/journal.
			metPushFallbacks.Inc()
			_, _ = p.rebaseline(addr, st, call)
			return total, false
		}
		total += n
		metPushRounds.Inc()
		metPushRecords.Add(uint64(n))
		metPushBytes.Add(uint64(len(data)))

		cur = next
		p.pin(addr, st, cur)
		if !cur.Less(p.log.End()) {
			return total, true
		}
	}
	// Budget exhausted mid-catch-up: progress is saved, but this round
	// cannot vouch for full convergence.
	return total, false
}

// filter rebuilds a raw WAL byte range into its pushable subset: put
// records passing keep. Evicts and arc drops never ship — they are the
// owner's local capacity and ownership decisions, not the receiver's
// (which would ignore them anyway). The input is CRC-validated WAL
// bytes, so the walk cannot fail.
func (p *Pusher) filter(data []byte) []byte {
	if len(data) == 0 {
		return nil
	}
	var out []byte
	_, _ = wal.WalkBuffer(data, func(r wal.Record) error {
		if r.Op != wal.OpPut || (p.keep != nil && !p.keep(r)) {
			return nil
		}
		out = wal.AppendFramed(out, &r)
		return nil
	})
	return out
}

// apply sends one record batch (possibly empty — the empty call still
// fetches the receiver's boot token) and returns the applied count and
// token.
func (p *Pusher) apply(call func(req any) (any, error), data []byte) (int, uint64, error) {
	resp, err := call(ApplyReq{Origin: p.self, Data: data})
	if err != nil {
		return 0, 0, err
	}
	ar, ok := resp.(ApplyResp)
	if !ok {
		return 0, 0, errors.New("ship: bad apply response")
	}
	return ar.Applied, ar.Token, nil
}

// rebaseline points addr's cursor at the current durable watermark and
// records the receiver's boot token. Always returns ok=false: the gap
// before the new watermark is the digest round's to close.
func (p *Pusher) rebaseline(addr string, st *pushState, call func(req any) (any, error)) (int, bool) {
	_, tok, err := p.apply(call, nil)
	if err != nil {
		return 0, false
	}
	p.mu.Lock()
	st.token = tok
	st.baselined = true
	p.mu.Unlock()
	p.pin(addr, st, p.log.End())
	return 0, false
}

func (p *Pusher) pin(addr string, st *pushState, c wal.Cursor) {
	p.mu.Lock()
	st.cursor = c
	p.mu.Unlock()
	p.log.Pin("push:"+addr, c)
}

// Forget drops addr's push state and retention pin (successor left the
// replica set).
func (p *Pusher) Forget(addr string) {
	p.mu.Lock()
	delete(p.peers, addr)
	p.mu.Unlock()
	p.log.Unpin("push:" + addr)
}

// Cursors reports each receiver's push cursor, for /status.
func (p *Pusher) Cursors() map[string]wal.Cursor {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]wal.Cursor, len(p.peers))
	for addr, st := range p.peers {
		if st.baselined {
			out[addr] = st.cursor
		}
	}
	return out
}
