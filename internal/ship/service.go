package ship

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"p2prange/internal/store"
	"p2prange/internal/wal"
)

// tokenCounter hands out process-unique boot tokens so a pusher can
// detect that the peer it has been shipping to was replaced (restarted)
// and its applied state is gone.
var tokenCounter atomic.Uint64

// ServiceConfig wires a Service to one peer's storage.
type ServiceConfig struct {
	// Log is the WAL this peer serves to followers. Nil is valid for a
	// memory-only peer: it then accepts ApplyReq pushes but cannot be
	// subscribed to.
	Log *wal.Log
	// Apply applies one pushed record into the local store (ApplyReq
	// path). Only OpPut records reach it. PutApplier adapts a store.
	Apply func(wal.Record) error
	// Commit is the local durability barrier run after each applied
	// batch, before acknowledging it. Nil means no barrier (memory-only).
	Commit func() error
	// MaxEntryBytes caps one EntriesResp (default 1MiB + one record).
	MaxEntryBytes int
	// MaxChunkBytes caps one SnapshotChunkResp (default 256KiB).
	MaxChunkBytes int
}

// FollowerStatus is one subscribed follower's progress, for /status.
type FollowerStatus struct {
	Addr        string     `json:"addr"`
	Cursor      wal.Cursor `json:"cursor"`
	LagBytes    int64      `json:"lag_bytes"`
	Snapshot    bool       `json:"snapshot,omitempty"` // currently seeding
	IdleSeconds int64      `json:"idle_seconds"`
}

// Service is the owner side of the shipping protocol plus the receiver
// side of replica pushes. Register its Handle with peer.RegisterAux.
// It serves strictly by pull — nothing here can block the owner's
// group-commit path on a slow or stalled follower; such a follower
// simply stops pulling, and its only owner-side footprint is a
// retention pin bounded by the ShipRetain budget.
type Service struct {
	cfg   ServiceConfig
	token uint64

	mu        sync.Mutex
	followers map[string]*followerState
}

type followerState struct {
	cursor   wal.Cursor
	snapshot bool
	lastSeen time.Time
}

// NewService builds a Service. See ServiceConfig.
func NewService(cfg ServiceConfig) *Service {
	if cfg.MaxEntryBytes <= 0 {
		cfg.MaxEntryBytes = 1<<20 + wal.MaxRecord
	}
	if cfg.MaxChunkBytes <= 0 {
		cfg.MaxChunkBytes = 256 << 10
	}
	return &Service{
		cfg:       cfg,
		token:     tokenCounter.Add(1),
		followers: make(map[string]*followerState),
	}
}

// Handle dispatches shipping requests; the peer.AuxHandler contract:
// handled=false for foreign message types.
func (s *Service) Handle(req any) (resp any, handled bool, err error) {
	switch r := req.(type) {
	case SubscribeReq:
		resp, err = s.subscribe(r)
	case EntriesReq:
		resp, err = s.entries(r)
	case SnapshotChunkReq:
		resp, err = s.snapshotChunk(r)
	case CursorAckReq:
		resp, err = s.ack(r)
	case ApplyReq:
		resp, err = s.applyPush(r)
	default:
		return nil, false, nil
	}
	return resp, true, err
}

// ErrNotShipping reports a stream request against a peer with no WAL.
var ErrNotShipping = errors.New("ship: peer has no log to ship")

func (s *Service) subscribe(r SubscribeReq) (SubscribeResp, error) {
	if s.cfg.Log == nil {
		return SubscribeResp{}, ErrNotShipping
	}
	if r.Follower == "" {
		return SubscribeResp{}, badFrame("subscribe without follower identity")
	}
	lg := s.cfg.Log
	if !r.Cursor.IsZero() && lg.Servable(r.Cursor) {
		s.touch(r.Follower, r.Cursor, false)
		lg.Pin(r.Follower, r.Cursor)
		return SubscribeResp{Tail: true, Next: r.Cursor}, nil
	}
	// Full history needed (fresh follower, or a cursor retention let go
	// of). Seed from the sealed segment when one exists; otherwise the
	// whole history is still in WAL files and the follower tails from
	// the oldest one, wiping first.
	if seq, size, ok := lg.SegmentInfo(); ok {
		metSnapSeeds.Inc()
		s.touch(r.Follower, wal.Cursor{Seq: seq + 1}, true)
		lg.Pin(r.Follower, wal.Cursor{Seq: seq + 1})
		return SubscribeResp{SnapSeq: seq, SnapSize: size}, nil
	}
	start, ok := lg.TailStart(wal.Cursor{Seq: 1})
	if !ok {
		return SubscribeResp{}, errors.New("ship: no servable history")
	}
	s.touch(r.Follower, start, false)
	lg.Pin(r.Follower, start)
	return SubscribeResp{Tail: true, Reseed: true, Next: start}, nil
}

func (s *Service) entries(r EntriesReq) (EntriesResp, error) {
	if s.cfg.Log == nil {
		return EntriesResp{}, ErrNotShipping
	}
	if r.Follower == "" {
		return EntriesResp{}, badFrame("entries without follower identity")
	}
	lg := s.cfg.Log
	max := int(r.MaxBytes)
	if max <= 0 || max > s.cfg.MaxEntryBytes {
		max = s.cfg.MaxEntryBytes
	}
	// The request cursor is also the follower's progress claim: advance
	// its retention pin there before reading, so the files the batch
	// comes from stay put across a racing fold.
	lg.Pin(r.Follower, r.Cursor)
	data, next, err := lg.ReadEntries(r.Cursor, max)
	if errors.Is(err, wal.ErrCursorGone) {
		metCursorResets.Inc()
		s.touch(r.Follower, r.Cursor, false)
		return EntriesResp{Reset: true}, nil
	}
	if err != nil {
		return EntriesResp{}, err
	}
	s.touch(r.Follower, next, false)
	metShipBatches.Inc()
	metShipBytes.Add(uint64(len(data)))
	return EntriesResp{
		Data: data,
		Next: next,
		More: next.Less(lg.End()),
	}, nil
}

func (s *Service) snapshotChunk(r SnapshotChunkReq) (SnapshotChunkResp, error) {
	if s.cfg.Log == nil {
		return SnapshotChunkResp{}, ErrNotShipping
	}
	max := int(r.MaxBytes)
	if max <= 0 || max > s.cfg.MaxChunkBytes {
		max = s.cfg.MaxChunkBytes
	}
	data, total, err := s.cfg.Log.ReadSegmentChunk(r.Seq, r.Off, max)
	if errors.Is(err, wal.ErrSegmentGone) {
		metCursorResets.Inc()
		return SnapshotChunkResp{Gone: true}, nil
	}
	if err != nil {
		return SnapshotChunkResp{}, err
	}
	if r.Follower != "" {
		s.touch(r.Follower, wal.Cursor{Seq: r.Seq + 1}, true)
	}
	metSnapChunks.Inc()
	metSnapBytes.Add(uint64(len(data)))
	return SnapshotChunkResp{Data: data, CRC: ChunkCRC(data), Total: total}, nil
}

func (s *Service) ack(r CursorAckReq) (CursorAckResp, error) {
	if r.Follower == "" {
		return CursorAckResp{}, badFrame("ack without follower identity")
	}
	metAcks.Inc()
	if r.Leave {
		s.mu.Lock()
		delete(s.followers, r.Follower)
		metFollowers.Set(int64(len(s.followers)))
		s.mu.Unlock()
		if s.cfg.Log != nil {
			s.cfg.Log.Unpin(r.Follower)
		}
		return CursorAckResp{}, nil
	}
	s.touch(r.Follower, r.Cursor, false)
	if s.cfg.Log != nil {
		s.cfg.Log.Pin(r.Follower, r.Cursor)
	}
	return CursorAckResp{}, nil
}

// applyPush applies a pushed record batch (replica ship-first sync)
// into the local store: OpPut records only — the owner's evictions and
// arc handoffs are its own capacity and ownership decisions, and
// replaying them here could delete this replica's legitimate data.
func (s *Service) applyPush(r ApplyReq) (ApplyResp, error) {
	applied := 0
	if len(r.Data) > 0 {
		if s.cfg.Apply == nil {
			return ApplyResp{}, errors.New("ship: peer accepts no pushed records")
		}
		n, err := wal.WalkBuffer(r.Data, func(rec wal.Record) error {
			if rec.Op != wal.OpPut {
				return nil
			}
			if err := s.cfg.Apply(rec); err != nil {
				return err
			}
			applied++
			return nil
		})
		if err != nil || n != len(r.Data) {
			return ApplyResp{}, badFrame("corrupt pushed batch from %s (%d/%d bytes valid)", r.Origin, n, len(r.Data))
		}
		if s.cfg.Commit != nil {
			if err := s.cfg.Commit(); err != nil {
				return ApplyResp{}, err
			}
		}
		metApplied.Add(uint64(applied))
		metAppliedBytes.Add(uint64(len(r.Data)))
	}
	return ApplyResp{Token: s.token, Applied: applied}, nil
}

func (s *Service) touch(follower string, c wal.Cursor, snapshot bool) {
	s.mu.Lock()
	st := s.followers[follower]
	if st == nil {
		st = &followerState{}
		s.followers[follower] = st
		metFollowers.Set(int64(len(s.followers)))
	}
	st.cursor = c
	st.snapshot = snapshot
	st.lastSeen = time.Now()
	s.mu.Unlock()
}

// Followers reports every subscribed follower's progress and lag, for
// /status and rangetop. It also refreshes the ship.max_lag_bytes gauge.
func (s *Service) Followers() []FollowerStatus {
	s.mu.Lock()
	out := make([]FollowerStatus, 0, len(s.followers))
	for addr, st := range s.followers {
		out = append(out, FollowerStatus{
			Addr:        addr,
			Cursor:      st.cursor,
			Snapshot:    st.snapshot,
			IdleSeconds: int64(time.Since(st.lastSeen) / time.Second),
		})
	}
	s.mu.Unlock()
	var maxLag int64
	if s.cfg.Log != nil {
		for i := range out {
			out[i].LagBytes = s.cfg.Log.Lag(out[i].Cursor)
			if out[i].LagBytes > maxLag {
				maxLag = out[i].LagBytes
			}
		}
	}
	metMaxLagBytes.Set(maxLag)
	return out
}

// PutApplier adapts a store for the push-apply path: pushed puts keep
// their version and origin stamps (store.Put's first-wins /
// higher-version-replaces admission applies), exactly as recovery
// restores them.
func PutApplier(s *store.Store) func(wal.Record) error {
	return func(r wal.Record) error {
		if r.Op == wal.OpPut {
			s.Put(r.ID, r.Part)
		}
		return nil
	}
}
