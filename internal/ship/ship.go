// Package ship is the log-shipping replication subsystem: followers
// catch up from an owner's write-ahead log instead of walking
// per-descriptor digests.
//
// The WAL (internal/wal) already gives every durable peer an
// authoritative, checksummed, position-addressable record stream; ship
// turns that stream into a replication transport. A follower holds a
// cursor — (WAL file sequence, byte offset) — into the owner's log and
// pulls the committed framed record bytes from there, applying them
// through the same replay path recovery uses, so a shipped store is
// byte-identical to one recovered locally from the owner's directory.
// A follower whose cursor pre-dates the oldest retained WAL file
// (compaction folded it away) is reseeded by streaming the sealed
// segment itself — chunked, CRC-verified, resumable — then tails the
// WAL from the seal point.
//
// Three roles, all speaking the same frames over the existing
// multiplexed binary wire protocol (tags at transport.TagShipBase):
//
//   - Service (service.go): owner side. Serves SubscribeReq /
//     EntriesReq / SnapshotChunkReq / CursorAckReq against its Log, and
//     applies ApplyReq record batches pushed by a remote owner into the
//     local store. Registered as a peer aux handler.
//   - Follower (follower.go): pull side. The subscribe → (snapshot) →
//     tail state machine behind `peerd -follow`.
//   - Pusher (pusher.go): replica sync. The owner streams its own WAL
//     delta to each successor (ApplyReq), demoting digest anti-entropy
//     to repair-of-last-resort.
//
// Flow control is pull-shaped everywhere: the owner never buffers for
// a follower and never blocks its group-commit path on one — a stalled
// follower simply stops pulling (or, on the push path, stalls only the
// owner's bounded per-round batch, never its WAL).
package ship

import (
	"fmt"
	"hash/crc32"

	"p2prange/internal/metrics"
	"p2prange/internal/transport"
	"p2prange/internal/wal"
)

// Wire tags. Like all tags these are protocol: never renumber.
const (
	tagSubscribeReq      = transport.TagShipBase + 0
	tagSubscribeResp     = transport.TagShipBase + 1
	tagEntriesReq        = transport.TagShipBase + 2
	tagEntriesResp       = transport.TagShipBase + 3
	tagSnapshotChunkReq  = transport.TagShipBase + 4
	tagSnapshotChunkResp = transport.TagShipBase + 5
	tagCursorAckReq      = transport.TagShipBase + 6
	tagCursorAckResp     = transport.TagShipBase + 7
	tagApplyReq          = transport.TagShipBase + 8
	tagApplyResp         = transport.TagShipBase + 9
)

var (
	metShipBatches   = metrics.Default.Counter("ship.entry_batches")
	metShipBytes     = metrics.Default.Counter("ship.entry_bytes")
	metSnapSeeds     = metrics.Default.Counter("ship.snapshot_seeds")
	metSnapChunks    = metrics.Default.Counter("ship.snapshot_chunks")
	metSnapBytes     = metrics.Default.Counter("ship.snapshot_bytes")
	metCursorResets  = metrics.Default.Counter("ship.cursor_resets")
	metAcks          = metrics.Default.Counter("ship.acks")
	metFollowers     = metrics.Default.Gauge("ship.followers")
	metApplied       = metrics.Default.Counter("ship.applied_records")
	metAppliedBytes  = metrics.Default.Counter("ship.applied_bytes")
	metSnapResumes   = metrics.Default.Counter("ship.snapshot_resumes")
	metSnapRestarts  = metrics.Default.Counter("ship.snapshot_restarts")
	metPushRounds    = metrics.Default.Counter("ship.push_rounds")
	metPushRecords   = metrics.Default.Counter("ship.push_records")
	metPushBytes     = metrics.Default.Counter("ship.push_bytes")
	metPushResets    = metrics.Default.Counter("ship.push_resets")
	metPushFallbacks = metrics.Default.Counter("ship.push_fallbacks")
	metMaxLagBytes   = metrics.Default.Gauge("ship.max_lag_bytes")
)

// SubscribeReq opens (or revalidates) a follower's stream at Cursor.
// The zero cursor asks for full history.
type SubscribeReq struct {
	Follower string
	Cursor   wal.Cursor
}

// SubscribeResp tells the follower how to proceed. Tail true: pull
// entries starting at Next; if Reseed is also true the follower's local
// state is NOT a prefix of the stream at Next and must be wiped first.
// Tail false: stream sealed segment SnapSeq (SnapSize bytes) via
// SnapshotChunkReq, apply it over a wiped store, then tail from the
// seal point Cursor{Seq: SnapSeq + 1}.
type SubscribeResp struct {
	Tail     bool
	Reseed   bool
	Next     wal.Cursor
	SnapSeq  uint64
	SnapSize int64
}

// EntriesReq pulls committed records from Cursor, up to ~MaxBytes. The
// cursor doubles as the follower's progress report: the owner advances
// this follower's retention pin to it.
type EntriesReq struct {
	Follower string
	Cursor   wal.Cursor
	MaxBytes uint32
}

// EntriesResp carries raw framed WAL records — the bytes on the
// owner's disk, verbatim — ending on a record boundary. Reset true
// means the cursor's history is gone (compaction + retention budget):
// resubscribe with the zero cursor and reseed. More true means the
// owner has more committed records past Next right now.
type EntriesResp struct {
	Data  []byte
	Next  wal.Cursor
	More  bool
	Reset bool
}

// SnapshotChunkReq pulls [Off, Off+MaxBytes) of sealed segment Seq.
type SnapshotChunkReq struct {
	Follower string
	Seq      uint64
	Off      int64
	MaxBytes uint32
}

// SnapshotChunkResp is one chunk of the segment file. CRC is CRC32-C
// over Data (transit check; the reassembled file is re-verified whole
// before any of it is applied). Gone true means compaction replaced
// the segment mid-stream: resubscribe and restart against the new one.
type SnapshotChunkResp struct {
	Data  []byte
	CRC   uint32
	Total int64
	Gone  bool
}

// CursorAckReq reports the follower's durably-applied position (moving
// its retention pin), or with Leave true unsubscribes it entirely.
type CursorAckReq struct {
	Follower string
	Cursor   wal.Cursor
	Leave    bool
}

// CursorAckResp acknowledges a CursorAckReq.
type CursorAckResp struct{}

// ApplyReq pushes a batch of framed WAL records from an owner to a
// replica (the ship-first successor sync). The receiver applies OpPut
// records only — evictions and arc drops in the owner's log concern the
// owner's capacity and ownership, not the replica's, and applying them
// could delete the replica's own legitimate data.
type ApplyReq struct {
	Origin string
	Data   []byte
}

// ApplyResp reports how many records were applied and the receiver's
// boot token. A token change between rounds means the receiver
// restarted (losing everything shipped so far) — the pusher rebaselines
// and lets digest anti-entropy rebuild it.
type ApplyResp struct {
	Token   uint64
	Applied int
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ChunkCRC is the per-chunk transit checksum (CRC32-C, the same
// polynomial as WAL records and segment footers).
func ChunkCRC(data []byte) uint32 { return crc32.Checksum(data, crcTable) }

func appendCursor(b []byte, c wal.Cursor) []byte {
	b = transport.AppendUvarint(b, c.Seq)
	return transport.AppendUvarint(b, uint64(c.Off))
}

func parseCursor(c *transport.Cursor) wal.Cursor {
	return wal.Cursor{Seq: c.Uvarint(), Off: int64(c.Uvarint())}
}

// appendData length-prefixes raw bytes; parseData copies them out of
// the frame buffer (the mux may reuse it for the next frame).
func appendData(b, data []byte) []byte {
	b = transport.AppendUvarint(b, uint64(len(data)))
	return append(b, data...)
}

func parseData(c *transport.Cursor) []byte {
	v := c.Bytes()
	if c.Err != nil || len(v) == 0 {
		return nil
	}
	return append([]byte(nil), v...)
}

func appendSubscribeReq(b []byte, r *SubscribeReq) []byte {
	b = transport.AppendString(b, r.Follower)
	return appendCursor(b, r.Cursor)
}

func parseSubscribeReq(c *transport.Cursor) SubscribeReq {
	return SubscribeReq{Follower: c.String(), Cursor: parseCursor(c)}
}

func appendSubscribeResp(b []byte, r *SubscribeResp) []byte {
	b = transport.AppendBool(b, r.Tail)
	b = transport.AppendBool(b, r.Reseed)
	b = appendCursor(b, r.Next)
	b = transport.AppendUvarint(b, r.SnapSeq)
	return transport.AppendUvarint(b, uint64(r.SnapSize))
}

func parseSubscribeResp(c *transport.Cursor) SubscribeResp {
	return SubscribeResp{
		Tail:     c.Bool(),
		Reseed:   c.Bool(),
		Next:     parseCursor(c),
		SnapSeq:  c.Uvarint(),
		SnapSize: int64(c.Uvarint()),
	}
}

func appendEntriesReq(b []byte, r *EntriesReq) []byte {
	b = transport.AppendString(b, r.Follower)
	b = appendCursor(b, r.Cursor)
	return transport.AppendUvarint(b, uint64(r.MaxBytes))
}

func parseEntriesReq(c *transport.Cursor) EntriesReq {
	return EntriesReq{Follower: c.String(), Cursor: parseCursor(c), MaxBytes: uint32(c.Uvarint())}
}

func appendEntriesResp(b []byte, r *EntriesResp) []byte {
	b = appendData(b, r.Data)
	b = appendCursor(b, r.Next)
	b = transport.AppendBool(b, r.More)
	return transport.AppendBool(b, r.Reset)
}

func parseEntriesResp(c *transport.Cursor) EntriesResp {
	return EntriesResp{
		Data:  parseData(c),
		Next:  parseCursor(c),
		More:  c.Bool(),
		Reset: c.Bool(),
	}
}

func appendSnapshotChunkReq(b []byte, r *SnapshotChunkReq) []byte {
	b = transport.AppendString(b, r.Follower)
	b = transport.AppendUvarint(b, r.Seq)
	b = transport.AppendUvarint(b, uint64(r.Off))
	return transport.AppendUvarint(b, uint64(r.MaxBytes))
}

func parseSnapshotChunkReq(c *transport.Cursor) SnapshotChunkReq {
	return SnapshotChunkReq{
		Follower: c.String(),
		Seq:      c.Uvarint(),
		Off:      int64(c.Uvarint()),
		MaxBytes: uint32(c.Uvarint()),
	}
}

func appendSnapshotChunkResp(b []byte, r *SnapshotChunkResp) []byte {
	b = appendData(b, r.Data)
	b = transport.AppendUvarint(b, uint64(r.CRC))
	b = transport.AppendUvarint(b, uint64(r.Total))
	return transport.AppendBool(b, r.Gone)
}

func parseSnapshotChunkResp(c *transport.Cursor) SnapshotChunkResp {
	return SnapshotChunkResp{
		Data:  parseData(c),
		CRC:   uint32(c.Uvarint()),
		Total: int64(c.Uvarint()),
		Gone:  c.Bool(),
	}
}

func appendCursorAckReq(b []byte, r *CursorAckReq) []byte {
	b = transport.AppendString(b, r.Follower)
	b = appendCursor(b, r.Cursor)
	return transport.AppendBool(b, r.Leave)
}

func parseCursorAckReq(c *transport.Cursor) CursorAckReq {
	return CursorAckReq{Follower: c.String(), Cursor: parseCursor(c), Leave: c.Bool()}
}

func appendApplyReq(b []byte, r *ApplyReq) []byte {
	b = transport.AppendString(b, r.Origin)
	return appendData(b, r.Data)
}

func parseApplyReq(c *transport.Cursor) ApplyReq {
	return ApplyReq{Origin: c.String(), Data: parseData(c)}
}

func appendApplyResp(b []byte, r *ApplyResp) []byte {
	b = transport.AppendUvarint(b, r.Token)
	return transport.AppendUvarint(b, uint64(r.Applied))
}

func parseApplyResp(c *transport.Cursor) ApplyResp {
	return ApplyResp{Token: c.Uvarint(), Applied: int(c.Uvarint())}
}

func init() {
	transport.RegisterCodec(tagSubscribeReq, SubscribeReq{}, transport.DirRequest,
		func(b []byte, v any) []byte { r := v.(SubscribeReq); return appendSubscribeReq(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseSubscribeReq(c), c.Err })
	transport.RegisterCodec(tagSubscribeResp, SubscribeResp{}, transport.DirResponse,
		func(b []byte, v any) []byte { r := v.(SubscribeResp); return appendSubscribeResp(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseSubscribeResp(c), c.Err })
	transport.RegisterCodec(tagEntriesReq, EntriesReq{}, transport.DirRequest,
		func(b []byte, v any) []byte { r := v.(EntriesReq); return appendEntriesReq(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseEntriesReq(c), c.Err })
	transport.RegisterCodec(tagEntriesResp, EntriesResp{}, transport.DirResponse,
		func(b []byte, v any) []byte { r := v.(EntriesResp); return appendEntriesResp(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseEntriesResp(c), c.Err })
	transport.RegisterCodec(tagSnapshotChunkReq, SnapshotChunkReq{}, transport.DirRequest,
		func(b []byte, v any) []byte { r := v.(SnapshotChunkReq); return appendSnapshotChunkReq(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseSnapshotChunkReq(c), c.Err })
	transport.RegisterCodec(tagSnapshotChunkResp, SnapshotChunkResp{}, transport.DirResponse,
		func(b []byte, v any) []byte { r := v.(SnapshotChunkResp); return appendSnapshotChunkResp(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseSnapshotChunkResp(c), c.Err })
	transport.RegisterCodec(tagCursorAckReq, CursorAckReq{}, transport.DirRequest,
		func(b []byte, v any) []byte { r := v.(CursorAckReq); return appendCursorAckReq(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseCursorAckReq(c), c.Err })
	transport.RegisterCodec(tagCursorAckResp, CursorAckResp{}, transport.DirResponse,
		func(b []byte, v any) []byte { return b },
		func(c *transport.Cursor) (any, error) { return CursorAckResp{}, c.Err })
	transport.RegisterCodec(tagApplyReq, ApplyReq{}, transport.DirRequest,
		func(b []byte, v any) []byte { r := v.(ApplyReq); return appendApplyReq(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseApplyReq(c), c.Err })
	transport.RegisterCodec(tagApplyResp, ApplyResp{}, transport.DirResponse,
		func(b []byte, v any) []byte { r := v.(ApplyResp); return appendApplyResp(b, &r) },
		func(c *transport.Cursor) (any, error) { return parseApplyResp(c), c.Err })
}

// badFrame wraps a shipping-protocol violation as a transport bad
// request, so hostile frames are rejected without tearing the
// connection down.
func badFrame(format string, args ...any) error {
	return fmt.Errorf("%w: ship: %s", transport.ErrBadRequest, fmt.Sprintf(format, args...))
}
