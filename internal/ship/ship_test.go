package ship

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"p2prange/internal/rangeset"
	"p2prange/internal/store"
	"p2prange/internal/wal"
)

func testPart(i int) store.Partition {
	return store.Partition{
		Relation:  "R",
		Attribute: "a",
		Range:     rangeset.Range{Lo: int64(i), Hi: int64(i + 10)},
		Holder:    fmt.Sprintf("peer-%d:4000", i),
		Version:   uint64(i%4 + 1),
		Origin:    fmt.Sprintf("origin-%d", i%3),
	}
}

// ownerPeer is one durable peer under test: store, WAL, and the ship
// service bound to them.
type ownerPeer struct {
	st  *store.Store
	lg  *wal.Log
	svc *Service
}

func newOwner(t *testing.T, dir string, opt wal.Options) *ownerPeer {
	t.Helper()
	opt.Dir = dir
	if opt.CompactEvery == 0 {
		opt.CompactEvery = -1 // folds are explicit in tests
	}
	st := store.New()
	lg, _, err := wal.Open(opt, wal.StoreRestorer(st))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st.SetJournal(lg)
	o := &ownerPeer{st: st, lg: lg,
		svc: NewService(ServiceConfig{Log: lg, Apply: PutApplier(st), Commit: lg.Commit})}
	t.Cleanup(func() { o.lg.Close() })
	return o
}

// call adapts the service's aux handler into the Follower's Call shape.
func (o *ownerPeer) call(req any) (any, error) {
	resp, handled, err := o.svc.Handle(req)
	if !handled {
		return nil, fmt.Errorf("unhandled request %T", req)
	}
	return resp, err
}

// put writes one descriptor through the journaled path and commits.
func (o *ownerPeer) put(t *testing.T, i int) {
	t.Helper()
	o.st.Put(store.ID(i%17+1), testPart(i))
	if err := o.lg.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// followerPeer is a follower with its own durable store, applying
// shipped records through the same journaled path recovery uses.
type followerPeer struct {
	st *store.Store
	lg *wal.Log
	fl *Follower
}

func newFollowerPeer(t *testing.T, dir string, call func(any) (any, error)) *followerPeer {
	t.Helper()
	st := store.New()
	lg, _, err := wal.Open(wal.Options{Dir: dir, CompactEvery: -1}, wal.StoreRestorer(st))
	if err != nil {
		t.Fatalf("Open follower: %v", err)
	}
	st.SetJournal(lg)
	f := &followerPeer{st: st, lg: lg}
	f.fl = NewFollower(FollowerConfig{
		Owner:  "owner",
		Self:   "follower:1",
		Call:   call,
		Apply:  wal.StoreRestorer(st),
		Reset:  func() error { st.ExtractArc(0, 0); return nil },
		Commit: lg.Commit,
		Dir:    dir,
	})
	t.Cleanup(func() { f.lg.Close() })
	return f
}

// fingerprint renders a store's full content — every bucket, every
// descriptor, stamps included — as a canonical string, so two stores
// can be compared for exact equality.
func fingerprint(st *store.Store) string {
	var lines []string
	for _, id := range st.IDs() {
		for _, p := range st.Bucket(id) {
			lines = append(lines, fmt.Sprintf("%d|%s|%s|%d|%d|%s|%d|%s",
				id, p.Relation, p.Attribute, p.Range.Lo, p.Range.Hi, p.Holder, p.Version, p.Origin))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// recoverDir replays a data directory into a fresh store — the local
// recovery a shipped store must be byte-identical to.
func recoverDir(t *testing.T, dir string) *store.Store {
	t.Helper()
	st := store.New()
	lg, _, err := wal.Open(wal.Options{Dir: dir, CompactEvery: -1}, wal.StoreRestorer(st))
	if err != nil {
		t.Fatalf("recover %s: %v", dir, err)
	}
	lg.Close()
	return st
}

// TestShipTailConvergence drives the happy path: a follower tails the
// owner's WAL and converges, and a later catch-up costs O(new records),
// not O(store).
func TestShipTailConvergence(t *testing.T) {
	o := newOwner(t, t.TempDir(), wal.Options{})
	for i := 0; i < 60; i++ {
		o.put(t, i)
	}
	o.st.Delete(store.ID(3), testPart(2).Key())
	if err := o.lg.Commit(); err != nil {
		t.Fatal(err)
	}

	f := newFollowerPeer(t, t.TempDir(), o.call)
	n, err := f.fl.CatchUp()
	if err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	if n == 0 {
		t.Fatal("caught up without applying anything")
	}
	if got, want := fingerprint(f.st), fingerprint(o.st); got != want {
		t.Fatalf("follower store diverges after tail:\n got %d bytes\nwant %d bytes", len(got), len(want))
	}

	// Incremental: N new writes must ship ~N records, independent of
	// the 60 already replicated.
	for i := 100; i < 110; i++ {
		o.put(t, i)
	}
	n, err = f.fl.CatchUp()
	if err != nil {
		t.Fatalf("incremental CatchUp: %v", err)
	}
	if n != 10 {
		t.Errorf("incremental catch-up applied %d records, want exactly the 10 new ones", n)
	}
	if fingerprint(f.st) != fingerprint(o.st) {
		t.Error("follower store diverges after incremental tail")
	}
	// The follower's own recovery path must reproduce the same store:
	// shipped records went through the journal.
	f.lg.Close()
	if got, want := fingerprint(recoverDir(t, f.fl.cfg.Dir)), fingerprint(o.st); got != want {
		t.Error("follower's OWN recovery diverges from the shipped state")
	}
}

// TestShipSnapshotSeed forces the reseed path: the owner folds with
// retention disabled, so a zero-cursor follower must stream the sealed
// segment and then tail from the seal point. The shipped store must be
// byte-identical to a local recovery of the owner's directory.
func TestShipSnapshotSeed(t *testing.T) {
	dir := t.TempDir()
	o := newOwner(t, dir, wal.Options{ShipRetain: -1})
	for i := 0; i < 80; i++ {
		o.put(t, i)
	}
	if err := o.lg.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Post-fold writes: the tail the snapshot hands off to.
	for i := 200; i < 220; i++ {
		o.put(t, i)
	}

	f := newFollowerPeer(t, t.TempDir(), o.call)
	if _, err := f.fl.CatchUp(); err != nil {
		t.Fatalf("CatchUp: %v", err)
	}
	if st := f.fl.Stats(); st.Snapshots == 0 {
		t.Error("zero-cursor follower behind a fold should have seeded from the segment")
	}
	if fingerprint(f.st) != fingerprint(o.st) {
		t.Fatal("follower store diverges after snapshot+tail")
	}
	o.lg.Close()
	if got, want := fingerprint(f.st), fingerprint(recoverDir(t, dir)); got != want {
		t.Fatal("snapshot+tail follower is not byte-identical to local recovery")
	}
}

// TestShipCompactionRacingSubscriber runs a follower tail loop
// concurrently with owner writes and folds (run under -race by make
// check). Retention pinning must hand the follower across each seal
// point without skipping or duplicating records: at the end the stores
// are identical.
func TestShipCompactionRacingSubscriber(t *testing.T) {
	dir := t.TempDir()
	o := newOwner(t, dir, wal.Options{})
	f := newFollowerPeer(t, t.TempDir(), o.call)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := f.fl.CatchUp(); err != nil {
				t.Errorf("CatchUp during compaction: %v", err)
				return
			}
		}
	}()

	for i := 0; i < 400; i++ {
		o.put(t, i)
		if i%50 == 49 {
			if err := o.lg.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
		}
	}
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}
	if _, err := f.fl.CatchUp(); err != nil {
		t.Fatalf("final CatchUp: %v", err)
	}
	if fingerprint(f.st) != fingerprint(o.st) {
		t.Fatal("follower diverges after racing folds")
	}
	o.lg.Close()
	if fingerprint(f.st) != fingerprint(recoverDir(t, dir)) {
		t.Fatal("follower is not byte-identical to local recovery after racing folds")
	}
}

// TestShipFollowerCrashMidSnapshot kills the follower partway through a
// snapshot stream and restarts it with the same directory: the part
// file resumes (no restart from zero), and the finished store matches
// local recovery.
func TestShipFollowerCrashMidSnapshot(t *testing.T) {
	ownerDir := t.TempDir()
	o := newOwner(t, ownerDir, wal.Options{ShipRetain: -1})
	for i := 0; i < 150; i++ {
		o.put(t, i)
	}
	if err := o.lg.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	followDir := t.TempDir()
	// First incarnation: the transport dies after a few snapshot chunks.
	chunks := 0
	errCut := errors.New("owner crashed mid-stream")
	cut := func(req any) (any, error) {
		if r, ok := req.(SnapshotChunkReq); ok {
			chunks++
			if chunks > 2 {
				return nil, errCut
			}
			// Tiny chunks so the cut lands mid-segment.
			r.MaxBytes = 512
			req = r
		}
		return o.call(req)
	}
	f1 := newFollowerPeer(t, followDir, cut)
	if _, err := f1.fl.CatchUp(); !errors.Is(err, errCut) {
		t.Fatalf("CatchUp through a dying transport: err=%v, want the cut", err)
	}
	parts, _ := filepath.Glob(filepath.Join(followDir, "ship-seg-*.part"))
	if len(parts) != 1 {
		t.Fatalf("after mid-snapshot crash: %d part files, want 1", len(parts))
	}
	if fi, err := os.Stat(parts[0]); err != nil || fi.Size() == 0 {
		t.Fatalf("part file empty or missing: %v", err)
	}
	f1.lg.Close()

	// Second incarnation, same directory: must resume, not restart.
	f2Store := store.New()
	f2 := NewFollower(FollowerConfig{
		Owner: "owner", Self: "follower:1", Call: o.call,
		Apply: wal.StoreRestorer(f2Store),
		Reset: func() error { f2Store.ExtractArc(0, 0); return nil },
		Dir:   followDir,
	})
	if _, err := f2.CatchUp(); err != nil {
		t.Fatalf("resumed CatchUp: %v", err)
	}
	if st := f2.Stats(); st.Resumes == 0 {
		t.Error("second incarnation should have resumed the part file")
	}
	if fingerprint(f2Store) != fingerprint(o.st) {
		t.Fatal("resumed follower diverges from owner")
	}
	o.lg.Close()
	if fingerprint(f2Store) != fingerprint(recoverDir(t, ownerDir)) {
		t.Fatal("resumed follower is not byte-identical to local recovery")
	}
}

// TestShipRetentionResetsCursor pins the reseed state machine: a
// follower that stalls past the retention budget gets Reset from
// EntriesReq, resubscribes from zero, seeds the segment, and still
// converges exactly.
func TestShipRetentionResetsCursor(t *testing.T) {
	dir := t.TempDir()
	o := newOwner(t, dir, wal.Options{ShipRetain: -1})
	for i := 0; i < 40; i++ {
		o.put(t, i)
	}

	f := newFollowerPeer(t, t.TempDir(), o.call)
	if _, err := f.fl.CatchUp(); err != nil {
		t.Fatal(err)
	}

	// The follower stalls; the owner writes on and folds twice. With
	// retention off, the follower's cursor now pre-dates the oldest
	// retained WAL byte. (Unpin first — a live pin would otherwise
	// hold the files within budget; a stalled real follower is
	// eventually evicted the same way.)
	o.lg.Unpin("follower:1")
	for i := 40; i < 90; i++ {
		o.put(t, i)
	}
	if err := o.lg.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 90; i < 120; i++ {
		o.put(t, i)
	}
	if err := o.lg.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	if _, err := f.fl.CatchUp(); err != nil {
		t.Fatalf("CatchUp after retention outran cursor: %v", err)
	}
	st := f.fl.Stats()
	if st.Resets == 0 && st.Snapshots == 0 {
		t.Error("expected a cursor reset or reseed after retention dropped the tail")
	}
	if fingerprint(f.st) != fingerprint(o.st) {
		t.Fatal("follower diverges after retention-forced reseed")
	}
}

// TestShipRetentionPinsSurviveFold is the opposite case: an active
// follower's pin keeps the folded WAL files on disk (within budget), so
// its tail continues across the fold with no reset and no reseed.
func TestShipRetentionPinsSurviveFold(t *testing.T) {
	o := newOwner(t, t.TempDir(), wal.Options{}) // default 64MiB budget
	for i := 0; i < 40; i++ {
		o.put(t, i)
	}
	f := newFollowerPeer(t, t.TempDir(), o.call)
	if _, err := f.fl.CatchUp(); err != nil {
		t.Fatal(err)
	}

	for i := 40; i < 80; i++ {
		o.put(t, i)
	}
	if err := o.lg.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	n, err := f.fl.CatchUp()
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Errorf("tail across pinned fold applied %d records, want 40", n)
	}
	st := f.fl.Stats()
	if st.Resets != 0 || st.Snapshots != 0 {
		t.Errorf("pinned follower should tail across the fold untouched; resets=%d snapshots=%d",
			st.Resets, st.Snapshots)
	}
	if fingerprint(f.st) != fingerprint(o.st) {
		t.Fatal("follower diverges across pinned fold")
	}
}

// TestPusherShipFirstSync exercises the replica-sync half: baseline on
// first pairing, incremental pushes after, restart detection via the
// boot token, and retention-outrun fallback.
func TestPusherShipFirstSync(t *testing.T) {
	o := newOwner(t, t.TempDir(), wal.Options{})
	recv := store.New()
	recvSvc := NewService(ServiceConfig{Apply: PutApplier(recv)}) // memory-only receiver
	call := func(req any) (any, error) {
		resp, handled, err := recvSvc.Handle(req)
		if !handled {
			return nil, fmt.Errorf("unhandled %T", req)
		}
		return resp, err
	}

	pusher := NewPusher(o.lg, "owner", nil)

	// Round 1: fresh pairing — must demand a digest round and baseline.
	if n, ok := pusher.SyncTo("recv", call); ok || n != 0 {
		t.Fatalf("first pairing: (%d, %v), want (0, false)", n, ok)
	}
	// Writes before the baseline are the digest's problem; after it,
	// shipping owns them.
	for i := 0; i < 25; i++ {
		o.put(t, i)
	}
	n, ok := pusher.SyncTo("recv", call)
	if !ok || n != 25 {
		t.Fatalf("incremental push: (%d, %v), want (25, true)", n, ok)
	}
	if recv.Len() == 0 {
		t.Fatal("receiver store empty after push")
	}
	// Convergence claim: every put the owner journaled is at the receiver.
	if missing := recv.MissingFrom(o.st.Digest(nil)); len(missing) != 0 {
		t.Fatalf("receiver still missing %d buckets after push", len(missing))
	}

	// Nothing new: an empty round still verifies the token and succeeds.
	if n, ok := pusher.SyncTo("recv", call); !ok || n != 0 {
		t.Fatalf("idle push: (%d, %v), want (0, true)", n, ok)
	}

	// Receiver restarts (new Service = new boot token, empty store):
	// the pusher must refuse to vouch and fall back.
	recv = store.New()
	recvSvc = NewService(ServiceConfig{Apply: PutApplier(recv)})
	if _, ok := pusher.SyncTo("recv", call); ok {
		t.Fatal("push to restarted receiver claimed convergence")
	}
	for i := 30; i < 35; i++ {
		o.put(t, i)
	}
	if n, ok := pusher.SyncTo("recv", call); !ok || n != 5 {
		t.Fatalf("push after restart rebaseline: (%d, %v), want (5, true)", n, ok)
	}
}

// TestPusherFilter pins the cascade guard: records failing the keep
// filter (buckets this peer does not own) are never pushed onward.
func TestPusherFilter(t *testing.T) {
	o := newOwner(t, t.TempDir(), wal.Options{})
	recv := store.New()
	recvSvc := NewService(ServiceConfig{Apply: PutApplier(recv)})
	call := func(req any) (any, error) {
		resp, _, err := recvSvc.Handle(req)
		return resp, err
	}
	pusher := NewPusher(o.lg, "owner", func(r wal.Record) bool { return r.ID%2 == 0 })
	pusher.SyncTo("recv", call) // baseline
	for i := 0; i < 20; i++ {
		o.st.Put(store.ID(i), testPart(i))
	}
	if err := o.lg.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, ok := pusher.SyncTo("recv", call); !ok || n != 10 {
		t.Fatalf("filtered push: (%d, %v), want (10, true)", n, ok)
	}
	for _, id := range recv.IDs() {
		if id%2 != 0 {
			t.Errorf("filtered-out bucket %d cascaded to the receiver", id)
		}
	}
}

// TestServiceRejectsHostileRequests pins the owner-side guards: missing
// identity and corrupt pushed batches are bad requests, not crashes,
// and do not wedge the service for well-formed peers.
func TestServiceRejectsHostileRequests(t *testing.T) {
	o := newOwner(t, t.TempDir(), wal.Options{})
	o.put(t, 1)

	if _, err := o.call(SubscribeReq{}); err == nil {
		t.Error("anonymous subscribe accepted")
	}
	if _, err := o.call(EntriesReq{Cursor: wal.Cursor{Seq: 1}}); err == nil {
		t.Error("anonymous entries request accepted")
	}
	if _, err := o.call(ApplyReq{Origin: "evil", Data: []byte("not a wal record")}); err == nil {
		t.Error("corrupt pushed batch accepted")
	}
	// A put record with a valid frame but applied through a nil-Apply
	// service must error cleanly too.
	empty := NewService(ServiceConfig{})
	rec := wal.Record{Op: wal.OpPut, ID: 1, Part: testPart(1)}
	if _, _, err := empty.Handle(ApplyReq{Origin: "x", Data: wal.AppendFramed(nil, &rec)}); err == nil {
		t.Error("apply-incapable service accepted a pushed batch")
	}
	// The service still works for honest followers afterwards.
	if _, err := o.call(SubscribeReq{Follower: "good"}); err != nil {
		t.Errorf("honest subscribe after hostile traffic: %v", err)
	}
}

// TestShipCodecRoundTrips drives every wire message through its
// append/parse pair.
func TestShipCodecRoundTrips(t *testing.T) {
	data := wal.AppendFramed(nil, &wal.Record{Op: wal.OpPut, ID: 9, Part: testPart(9)})
	msgs := []any{
		SubscribeReq{Follower: "f:1", Cursor: wal.Cursor{Seq: 3, Off: 999}},
		SubscribeResp{Tail: true, Reseed: true, Next: wal.Cursor{Seq: 4, Off: 17}, SnapSeq: 3, SnapSize: 1 << 20},
		EntriesReq{Follower: "f:1", Cursor: wal.Cursor{Seq: 2, Off: 10}, MaxBytes: 4096},
		EntriesResp{Data: data, Next: wal.Cursor{Seq: 2, Off: 300}, More: true},
		EntriesResp{Reset: true},
		SnapshotChunkReq{Follower: "f:1", Seq: 7, Off: 4096, MaxBytes: 512},
		SnapshotChunkResp{Data: []byte{1, 2, 3}, CRC: ChunkCRC([]byte{1, 2, 3}), Total: 12345},
		SnapshotChunkResp{Gone: true},
		CursorAckReq{Follower: "f:1", Cursor: wal.Cursor{Seq: 5, Off: 42}, Leave: true},
		CursorAckResp{},
		ApplyReq{Origin: "o:1", Data: data},
		ApplyResp{Token: 77, Applied: 12},
	}
	for _, in := range msgs {
		b, err := encodeMsg(in)
		if err != nil {
			t.Fatalf("encode %T: %v", in, err)
		}
		out, err := decodeMsg(in, b)
		if err != nil {
			t.Fatalf("decode %T: %v", in, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%T round trip:\n in  %+v\n out %+v", in, in, out)
		}
	}
}
