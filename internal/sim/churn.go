package sim

import (
	"fmt"

	"p2prange/internal/chord"
	"p2prange/internal/peer"
)

// Churn operations: clusters built by NewCluster can grow, shrink, and
// suffer crashes mid-run, exercising the live join/stabilize/handoff
// protocol inside the simulation (the paper's evaluation uses static
// rings; these operations back the failure-injection tests).

// Join adds one new peer to the running cluster through the real join
// protocol (bootstrap via an existing peer, then synchronous
// stabilization rounds across the cluster) and reclaims the arc it now
// owns.
func (c *Cluster) Join() (*peer.Peer, error) {
	if len(c.Peers) == 0 {
		return nil, fmt.Errorf("sim: cannot join an empty cluster")
	}
	ids := make(map[chord.ID]bool, len(c.Peers))
	for _, p := range c.Peers {
		ids[p.Node().ID()] = true
	}
	caller := c.peerCaller()
	var joiner *peer.Peer
	for attempt := 0; ; attempt++ {
		addr := fmt.Sprintf("join-%d-%d", len(c.Peers), attempt)
		p, err := peer.New(addr, caller, c.cfg.Peer)
		if err != nil {
			return nil, err
		}
		if !ids[p.Node().ID()] {
			joiner = p
			break
		}
	}
	c.Net.Register(joiner.Addr(), joiner.Handle)
	if err := joiner.Node().Join(c.Peers[0].Addr()); err != nil {
		c.Net.Unregister(joiner.Addr())
		return nil, err
	}
	c.Peers = append(c.Peers, joiner)
	c.Stabilize(4)
	if err := joiner.ReclaimArc(); err != nil {
		return nil, err
	}
	return joiner, nil
}

// Leave removes peer i gracefully: buckets hand off to the successor,
// neighbors re-link, and the address unregisters.
func (c *Cluster) Leave(i int) error {
	if i < 0 || i >= len(c.Peers) {
		return fmt.Errorf("sim: no peer %d", i)
	}
	p := c.Peers[i]
	succ := p.Node().Successor()
	if succ.ID != p.Node().ID() {
		if err := p.HandoffTo(succ); err != nil {
			return err
		}
	}
	if err := p.Node().Leave(); err != nil {
		return err
	}
	c.Net.Unregister(p.Addr())
	c.Peers = append(c.Peers[:i], c.Peers[i+1:]...)
	c.Stabilize(4)
	return nil
}

// Crash fails peer i abruptly: no handoff, no notification; its
// descriptors are lost and the ring must repair via successor lists.
func (c *Cluster) Crash(i int) error {
	if i < 0 || i >= len(c.Peers) {
		return fmt.Errorf("sim: no peer %d", i)
	}
	c.Net.Unregister(c.Peers[i].Addr())
	c.Peers = append(c.Peers[:i], c.Peers[i+1:]...)
	c.Stabilize(6)
	return nil
}

// Stabilize drives the full maintenance cycle (stabilize, predecessor
// checks, all fingers) for the given rounds across every peer.
func (c *Cluster) Stabilize(rounds int) {
	nodes := make([]*chord.Node, len(c.Peers))
	for i, p := range c.Peers {
		nodes[i] = p.Node()
	}
	chord.StabilizeAll(nodes, rounds)
}

// VerifyRing checks ring consistency across the current peers.
func (c *Cluster) VerifyRing() error {
	nodes := make([]*chord.Node, len(c.Peers))
	for i, p := range c.Peers {
		nodes[i] = p.Node()
	}
	_, err := chord.VerifyRing(nodes)
	return err
}
