package sim

import (
	"math/rand"
	"testing"

	"p2prange/internal/peer"
	"p2prange/internal/rangeset"
	"p2prange/internal/store"
)

func churnCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		N:    n,
		Peer: peer.Config{Scheme: testScheme(t), Measure: store.MatchContainment},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestJoinGrowsRing(t *testing.T) {
	c := churnCluster(t, 8)
	for i := 0; i < 4; i++ {
		if _, err := c.Join(); err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if c.N() != 12 {
		t.Errorf("N = %d, want 12", c.N())
	}
	if err := c.VerifyRing(); err != nil {
		t.Fatalf("ring broken after joins: %v", err)
	}
}

func TestJoinPreservesLookups(t *testing.T) {
	c := churnCluster(t, 8)
	q := rangeset.Range{Lo: 30, Hi: 50}
	if _, err := c.Peers[0].Lookup("R", "a", q, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := c.Join(); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		lr, err := c.RandomPeer(rng).Lookup("R", "a", q, false)
		if err != nil {
			t.Fatalf("lookup after join %d: %v", i, err)
		}
		if !lr.Found {
			t.Fatalf("descriptor lost after join %d (arc reclamation broken)", i)
		}
	}
	if c.TotalStored() == 0 {
		t.Error("descriptors vanished")
	}
}

func TestLeavePreservesDescriptors(t *testing.T) {
	c := churnCluster(t, 10)
	q := rangeset.Range{Lo: 100, Hi: 180}
	if _, err := c.Peers[0].Lookup("R", "a", q, true); err != nil {
		t.Fatal(err)
	}
	before := c.TotalStored()
	// Remove half the ring gracefully, one at a time.
	for c.N() > 5 {
		if err := c.Leave(c.N() - 1); err != nil {
			t.Fatalf("leave at N=%d: %v", c.N(), err)
		}
		if got := c.TotalStored(); got != before {
			t.Fatalf("descriptors %d -> %d after leave (handoff lost data)", before, got)
		}
	}
	if err := c.VerifyRing(); err != nil {
		t.Fatalf("ring broken after leaves: %v", err)
	}
	lr, err := c.Peers[0].Lookup("R", "a", q, false)
	if err != nil || !lr.Found {
		t.Errorf("descriptor unfindable after churn: found=%v err=%v", lr.Found, err)
	}
}

func TestCrashRepairsRing(t *testing.T) {
	c := churnCluster(t, 12)
	if err := c.Crash(5); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyRing(); err != nil {
		t.Fatalf("ring not repaired after crash: %v", err)
	}
	// The system still serves queries.
	q := rangeset.Range{Lo: 0, Hi: 99}
	if _, err := c.Peers[0].Lookup("R", "a", q, true); err != nil {
		t.Fatalf("lookup after crash: %v", err)
	}
}

func TestWorkloadUnderChurn(t *testing.T) {
	c := churnCluster(t, 16)
	rng := rand.New(rand.NewSource(7))
	failures := 0
	for i := 0; i < 300; i++ {
		switch {
		case i%60 == 30:
			if _, err := c.Join(); err != nil {
				t.Fatalf("join at %d: %v", i, err)
			}
		case i%60 == 59 && c.N() > 8:
			if err := c.Leave(rng.Intn(c.N())); err != nil {
				t.Fatalf("leave at %d: %v", i, err)
			}
		}
		lo := rng.Int63n(900)
		q := rangeset.Range{Lo: lo, Hi: lo + rng.Int63n(100)}
		if _, err := c.RandomPeer(rng).Lookup("R", "a", q, true); err != nil {
			failures++
		}
	}
	if failures > 0 {
		t.Errorf("%d/300 lookups failed under graceful churn", failures)
	}
	if err := c.VerifyRing(); err != nil {
		t.Fatalf("ring broken after churn workload: %v", err)
	}
}

func TestChurnValidation(t *testing.T) {
	c := churnCluster(t, 3)
	if err := c.Leave(99); err == nil {
		t.Error("Leave(99) accepted")
	}
	if err := c.Crash(-1); err == nil {
		t.Error("Crash(-1) accepted")
	}
}

func TestReplicationSurvivesCrash(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		N: 12,
		Peer: peer.Config{
			Scheme:   testScheme(t),
			Measure:  store.MatchContainment,
			Replicas: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := rangeset.Range{Lo: 30, Hi: 50}
	if _, err := c.Peers[0].Lookup("R", "a", q, true); err != nil {
		t.Fatal(err)
	}
	// Crash every peer that currently holds a primary descriptor for q's
	// first identifier — the replicas at successors must keep the range
	// findable after the ring repairs.
	id := c.Peers[0].Identifiers(q)[0]
	for i := 0; i < len(c.Peers); i++ {
		if c.Peers[i].Node().Owns(id) {
			if err := c.Crash(i); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	lr, err := c.Peers[0].Lookup("R", "a", q, false)
	if err != nil {
		t.Fatalf("lookup after owner crash: %v", err)
	}
	if !lr.Found {
		t.Fatal("descriptor lost despite replication")
	}
}

func TestNoReplicationLosesDescriptorOnCrash(t *testing.T) {
	// Control: with Replicas=0 the same crash pattern loses at least the
	// crashed peer's buckets (other identifier owners may still answer,
	// so we assert on stored counts, not findability).
	c := churnCluster(t, 12)
	q := rangeset.Range{Lo: 30, Hi: 50}
	if _, err := c.Peers[0].Lookup("R", "a", q, true); err != nil {
		t.Fatal(err)
	}
	before := c.TotalStored()
	id := c.Peers[0].Identifiers(q)[0]
	for i := 0; i < len(c.Peers); i++ {
		if c.Peers[i].Node().Owns(id) {
			if err := c.Crash(i); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if got := c.TotalStored(); got >= before {
		t.Errorf("stored %d -> %d after crash without replication", before, got)
	}
}
