package sim

import (
	"fmt"
	"math/rand"

	"p2prange/internal/chord"
	"p2prange/internal/metrics"
	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/transport"
)

// ChurnConfig parameterizes a churn/loss availability run: a ring where
// peers crash abruptly mid-workload over a lossy network, with repair
// (stabilization) running much more slowly than query traffic.
type ChurnConfig struct {
	// N is the ring size (default 64).
	N int
	// Lookups is the number of lookups issued (default 500).
	Lookups int
	// Crashes is the number of abrupt peer failures, spread evenly across
	// the run (default N/8). Crashed peers drop off the network with no
	// handoff and no notification.
	Crashes int
	// StabilizeEvery runs one synchronous maintenance round every this
	// many lookups (default 50), so lookups race stale routing state the
	// way live traffic races background repair. Negative disables repair.
	StabilizeEvery int
	// Drop is the per-RPC probability the network loses a message.
	Drop float64
	// FaultTolerance enables the failure handling under test: transport
	// retries, suspect tracking, and successor-list rerouting. Disabled,
	// the run measures the naive baseline.
	FaultTolerance bool
	// Seed drives all randomness (crash victims, workload, faults).
	Seed int64
}

func (cfg *ChurnConfig) withDefaults() ChurnConfig {
	out := *cfg
	if out.N <= 0 {
		out.N = 64
	}
	if out.Lookups <= 0 {
		out.Lookups = 500
	}
	if out.Crashes == 0 {
		out.Crashes = out.N / 8
	}
	if out.StabilizeEvery == 0 {
		out.StabilizeEvery = 50
	}
	return out
}

// ChurnResult reports a churn run's availability.
type ChurnResult struct {
	// Lookups is the number issued; Succeeded those that resolved a live
	// owner (after the protocol's one re-resolution on a dead owner).
	Lookups   int
	Succeeded int
	// Stats are the routing-layer counters (retries, reroutes, failures).
	Stats metrics.RouteSnapshot
	// Injected is how many faults the network injected.
	Injected uint64
	// Survivors is the ring size at the end of the run.
	Survivors int
}

// SuccessRate returns the percentage of lookups that resolved a live owner.
func (r ChurnResult) SuccessRate() float64 {
	if r.Lookups == 0 {
		return 100
	}
	return 100 * float64(r.Succeeded) / float64(r.Lookups)
}

// RunChurn builds a ring, then interleaves abrupt crashes and a lossy
// network with a lookup workload. A lookup counts as successful only if
// it resolves to a peer that is actually alive; like the peer protocol
// (see peer.callOwner), a fault-tolerant origin that resolves a dead
// owner marks it suspect and re-resolves once before giving up.
func RunChurn(cfg ChurnConfig) (ChurnResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Crashes >= cfg.N {
		return ChurnResult{}, fmt.Errorf("sim: cannot crash %d of %d peers", cfg.Crashes, cfg.N)
	}
	stats := &metrics.RouteStats{}
	var fault *transport.FaultCaller
	seq := int64(0)
	ccfg := ClusterConfig{
		N: cfg.N,
		Peer: peer.Config{
			Scheme: minhash.NewExactScheme(),
			Chord: chord.Config{
				DisableRerouting: !cfg.FaultTolerance,
				Stats:            stats,
			},
		},
		WrapCaller: func(inner transport.Caller) transport.Caller {
			if fault == nil {
				fault = transport.NewFaultCaller(inner, transport.FaultConfig{
					Seed: cfg.Seed + 1, Drop: cfg.Drop,
				})
			}
			if !cfg.FaultTolerance {
				return fault
			}
			seq++
			return transport.NewRetryCaller(fault, transport.RetryConfig{
				Seed: cfg.Seed + 1 + seq, Stats: stats,
			})
		},
	}
	c, err := NewCluster(ccfg)
	if err != nil {
		return ChurnResult{}, err
	}
	live := make(map[string]bool, cfg.N)
	for _, p := range c.Peers {
		live[p.Addr()] = true
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	crashGap := cfg.Lookups / (cfg.Crashes + 1)
	if crashGap == 0 {
		crashGap = 1
	}
	crashed := 0
	res := ChurnResult{Lookups: cfg.Lookups}
	for q := 0; q < cfg.Lookups; q++ {
		if crashed < cfg.Crashes && q == (crashed+1)*crashGap {
			// Abrupt failure: the peer vanishes; no stabilization runs, so
			// every finger and successor pointer at it goes stale.
			i := rng.Intn(len(c.Peers))
			delete(live, c.Peers[i].Addr())
			c.Net.Unregister(c.Peers[i].Addr())
			c.Peers = append(c.Peers[:i], c.Peers[i+1:]...)
			crashed++
		}
		if cfg.StabilizeEvery > 0 && q > 0 && q%cfg.StabilizeEvery == 0 {
			c.Stabilize(1)
		}
		origin := c.RandomPeer(rng)
		id := rng.Uint32()
		owner, _, err := origin.Node().Lookup(id)
		ok := err == nil && live[owner.Addr]
		if !ok && err == nil && cfg.FaultTolerance {
			origin.Node().MarkSuspect(owner.ID)
			owner, _, err = origin.Node().Lookup(id)
			ok = err == nil && live[owner.Addr]
		}
		if ok {
			res.Succeeded++
		}
	}
	res.Stats = stats.Snapshot()
	res.Injected = fault.Injected()
	res.Survivors = len(c.Peers)
	return res, nil
}
