package sim

import "testing"

// TestChurnResilience is the acceptance experiment for the fault-model
// work: under abrupt crashes and 2% message loss, retries plus
// successor-list rerouting must keep lookup availability at ≥99%, while
// the same workload with fault tolerance disabled measurably degrades.
func TestChurnResilience(t *testing.T) {
	cfg := ChurnConfig{N: 64, Lookups: 500, Drop: 0.02, Seed: 1}

	cfg.FaultTolerance = true
	on, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultTolerance = false
	off, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fault tolerance on:  %.1f%% success, %d retries, %d reroutes, %d faults injected",
		on.SuccessRate(), on.Stats.Retries, on.Stats.Rerouted, on.Injected)
	t.Logf("fault tolerance off: %.1f%% success, %d failed lookups, %d faults injected",
		off.SuccessRate(), off.Stats.FailedLookups, off.Injected)

	if got := on.SuccessRate(); got < 99 {
		t.Errorf("fault-tolerant success rate %.1f%%, want >= 99%%", got)
	}
	if on.Stats.Retries == 0 {
		t.Error("no transport retries happened — the fault injection is not biting")
	}
	if on.Stats.Rerouted == 0 {
		t.Error("no reroutes happened — crashes did not exercise rerouting")
	}
	if on.Injected == 0 || off.Injected == 0 {
		t.Error("no faults injected")
	}
	if off.SuccessRate() >= on.SuccessRate() {
		t.Errorf("disabling fault tolerance did not hurt: %.1f%% vs %.1f%%",
			off.SuccessRate(), on.SuccessRate())
	}
	if off.SuccessRate() > 97 {
		t.Errorf("baseline success rate %.1f%% suspiciously high; the scenario lost its teeth", off.SuccessRate())
	}
	// Same seed, two runs: the injection and workload must be deterministic.
	cfg.FaultTolerance = true
	again, err := RunChurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if again.Succeeded != on.Succeeded || again.Injected != on.Injected || again.Stats != on.Stats {
		t.Errorf("same-seed rerun diverged: %+v vs %+v", again, on)
	}
}

// TestClusterWrapCaller checks the hook is applied: a counting wrapper
// must see the cluster's traffic.
func TestClusterWrapCaller(t *testing.T) {
	res, err := RunChurn(ChurnConfig{N: 16, Lookups: 50, Crashes: 1, Seed: 5, FaultTolerance: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Survivors != 15 {
		t.Errorf("survivors = %d, want 15", res.Survivors)
	}
	if res.Lookups != 50 {
		t.Errorf("lookups = %d, want 50", res.Lookups)
	}
}
