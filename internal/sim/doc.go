// Package sim builds in-memory clusters of peers and drives the paper's
// two kinds of experiments.
//
// # Cluster
//
// NewCluster wires N peers over the in-memory transport (deterministic
// addresses 10.x.x.x:4000, chord IDs the SHA-1 of the address) onto a
// converged chord ring sharing one LSH scheme, exercising the same
// protocol code live TCP deployments run. Join/Leave/Crash drive churn
// through the real join, graceful-leave, and stabilization paths, so the
// availability experiments measure the actual repair machinery rather
// than a model of it.
//
// # Experiment drivers
//
// Match-quality runs reproduce Figs. 6-10: feed the 10,000-query
// workload (internal/workload) through the Section 4 protocol and record
// similarity and recall. Scalability runs reproduce Figs. 11-12: store
// tens of thousands of partitions across rings of 100-5000 peers and
// record load distribution and lookup path lengths. The
// internal/experiments package composes these into the figure-by-figure
// tables rangebench prints.
package sim
