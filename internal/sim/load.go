package sim

import (
	"fmt"
	"math/rand"

	"p2prange/internal/metrics"
	"p2prange/internal/minhash"
	"p2prange/internal/obs"
	"p2prange/internal/peer"
	"p2prange/internal/rangeset"
	"p2prange/internal/store"
	"p2prange/internal/workload"
)

// LoadConfig parameterizes a hot-partition load run: a skewed query
// stream over a fixed set of published ranges, with optional replication,
// load-aware replica selection, and abrupt crashes mid-run. The exact
// (l=1) scheme keeps every query answerable — success means finding the
// published range itself — so the run isolates load balancing and
// availability from match quality.
type LoadConfig struct {
	// N is the ring size (default 48).
	N int
	// Partitions is the number of distinct ranges published before the
	// query stream starts (default 200).
	Partitions int
	// Queries is the number of queries issued (default 2000).
	Queries int
	// Replicas is the successor-copy count per descriptor
	// (peer.Config.Replicas); 0 disables the replica subsystem — the
	// single-copy baseline.
	Replicas int
	// LoadAware routes each probe to the least-loaded live replica.
	LoadAware bool
	// HotReplicas and HotThreshold configure hot-bucket promotion
	// (defaults 2*(Replicas+1) and 16 — the threshold is lower than the
	// live default because a run's windows are a few hundred queries).
	HotReplicas  int
	HotThreshold uint64
	// Crashes is the number of abrupt peer failures, spread evenly across
	// the query stream (default 0). Negative disables crashing.
	Crashes int
	// StabilizeEvery runs one synchronous ring-repair round every this
	// many queries (default 50).
	StabilizeEvery int
	// RepairEvery runs one anti-entropy round at every peer every this
	// many queries (default 100); it also decays the popularity trackers.
	RepairEvery int
	// Skew is the Zipf exponent of the query distribution over the
	// published ranges (default 1.2; must be > 1).
	Skew float64
	// Seed drives all randomness.
	Seed int64
}

func (cfg *LoadConfig) withDefaults() LoadConfig {
	out := *cfg
	if out.N <= 0 {
		out.N = 48
	}
	if out.Partitions <= 0 {
		out.Partitions = 200
	}
	if out.Queries <= 0 {
		out.Queries = 2000
	}
	if out.HotThreshold == 0 {
		out.HotThreshold = 16
	}
	if out.StabilizeEvery <= 0 {
		out.StabilizeEvery = 50
	}
	if out.RepairEvery <= 0 {
		out.RepairEvery = 100
	}
	if out.Skew <= 1 {
		out.Skew = 1.2
	}
	return out
}

// LoadResult reports per-peer query load and availability.
type LoadResult struct {
	// Queries is the number issued; Succeeded those that found the exact
	// published range.
	Queries   int
	Succeeded int
	// Loads is the number of bucket probes each surviving peer served.
	Loads []int64
	// Max and Mean summarize Loads.
	Max  int64
	Mean float64
	// Repaired counts descriptor copies re-created by anti-entropy.
	Repaired int
	// Survivors is the ring size at the end of the run.
	Survivors int
	// Rollup is the cluster-wide observability summary for this run —
	// the same aggregate rangetop computes against a live cluster,
	// derived here from the run's metrics delta and the surviving peers.
	Rollup obs.Rollup
}

// SuccessRate returns the percentage of queries answered exactly.
func (r LoadResult) SuccessRate() float64 {
	if r.Queries == 0 {
		return 100
	}
	return 100 * float64(r.Succeeded) / float64(r.Queries)
}

// Imbalance returns max/mean peer load — 1.0 is a perfectly even
// cluster; the hot-partition pathology drives it toward N.
func (r LoadResult) Imbalance() float64 {
	if r.Mean == 0 {
		return 0
	}
	return float64(r.Max) / r.Mean
}

// RunLoad publishes cfg.Partitions uniform ranges, then drives a
// Zipf-skewed query stream over exactly that set while crashing peers and
// running ring stabilization and anti-entropy repair at their configured
// cadences. Per-peer served-probe counts are collected at the end.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Crashes >= cfg.N {
		return nil, fmt.Errorf("sim: cannot crash %d of %d peers", cfg.Crashes, cfg.N)
	}
	c, err := NewCluster(ClusterConfig{
		N: cfg.N,
		Peer: peer.Config{
			Scheme:       minhash.NewExactScheme(),
			Replicas:     cfg.Replicas,
			LoadAware:    cfg.LoadAware,
			HotReplicas:  cfg.HotReplicas,
			HotThreshold: cfg.HotThreshold,
		},
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	metBefore := metrics.Default.Snapshot()

	// Publish a fixed catalog of distinct ranges; the query stream draws
	// from it, so every query has an exact answer somewhere.
	catalog := make([]store.Partition, 0, cfg.Partitions)
	seen := make(map[string]bool, cfg.Partitions)
	gen := workload.NewUniform(workload.DefaultDomainLo, workload.DefaultDomainHi, cfg.Seed+1)
	for len(catalog) < cfg.Partitions {
		p := store.Partition{Relation: "R", Attribute: "a", Range: gen.Next()}
		if seen[p.Key()] {
			continue
		}
		seen[p.Key()] = true
		origin := c.RandomPeer(rng)
		p.Holder = origin.Addr()
		if _, err := origin.Publish(p); err != nil {
			return nil, fmt.Errorf("sim: publish %s: %w", p.Range, err)
		}
		catalog = append(catalog, p)
	}

	ranges := make([]rangeset.Range, len(catalog))
	for i, p := range catalog {
		ranges[i] = p.Range
	}
	queries := workload.NewZipfChoice(ranges, cfg.Skew, cfg.Seed+2)

	res := &LoadResult{Queries: cfg.Queries}
	crashGap := cfg.Queries
	if cfg.Crashes > 0 {
		crashGap = cfg.Queries / (cfg.Crashes + 1)
		if crashGap == 0 {
			crashGap = 1
		}
	}
	crashed := 0
	for q := 0; q < cfg.Queries; q++ {
		if cfg.Crashes > 0 && crashed < cfg.Crashes && q == (crashed+1)*crashGap {
			i := rng.Intn(len(c.Peers))
			c.Net.Unregister(c.Peers[i].Addr())
			c.Peers = append(c.Peers[:i], c.Peers[i+1:]...)
			crashed++
		}
		if q > 0 && q%cfg.StabilizeEvery == 0 {
			c.Stabilize(1)
		}
		if q > 0 && q%cfg.RepairEvery == 0 {
			res.Repaired += c.RepairReplicas()
		}
		want := queries.Next()
		origin := c.RandomPeer(rng)
		lr, err := origin.Lookup("R", "a", want, false)
		if err == nil && lr.Found && lr.Match.Partition.Range == want {
			res.Succeeded++
		}
	}
	res.Loads = make([]int64, len(c.Peers))
	var total int64
	for i, p := range c.Peers {
		res.Loads[i] = p.ServedProbes()
		total += res.Loads[i]
		if res.Loads[i] > res.Max {
			res.Max = res.Loads[i]
		}
	}
	if len(res.Loads) > 0 {
		res.Mean = float64(total) / float64(len(res.Loads))
	}
	res.Survivors = len(c.Peers)
	res.Rollup = c.ViewSince(metBefore).Rollup
	return res, nil
}

// RepairReplicas runs one anti-entropy round at every peer, returning
// the number of descriptor copies re-created.
func (c *Cluster) RepairReplicas() int {
	repaired := 0
	for _, p := range c.Peers {
		repaired += p.RepairReplicas().Repaired
	}
	return repaired
}
