package sim

import (
	"testing"

	"p2prange/internal/metrics"
	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/rangeset"
	"p2prange/internal/store"
)

// TestReplicaRepairUnderChurn kills a descriptor's owner mid-run and
// asserts anti-entropy re-creates the lost copies: after the ring repairs
// and one repair round runs, the query succeeds and the replica set is
// back at full strength.
func TestReplicaRepairUnderChurn(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		N: 16,
		Peer: peer.Config{
			Scheme:   minhash.NewExactScheme(),
			Replicas: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := rangeset.Range{Lo: 30, Hi: 50}
	pub := store.Partition{Relation: "R", Attribute: "a", Range: q, Holder: c.Peers[0].Addr()}
	if _, err := c.Peers[0].Publish(pub); err != nil {
		t.Fatal(err)
	}
	id := c.Peers[0].Identifiers(q)[0]
	holders := func() int {
		n := 0
		for _, p := range c.Peers {
			if len(p.Store().Bucket(id)) > 0 {
				n++
			}
		}
		return n
	}
	if got := holders(); got != 3 {
		t.Fatalf("replica set has %d members after publish, want 3", got)
	}
	for i := 0; i < len(c.Peers); i++ {
		if c.Peers[i].Node().Owns(id) {
			if err := c.Crash(i); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	lr, err := c.Peers[0].Lookup("R", "a", q, false)
	if err != nil || !lr.Found {
		t.Fatalf("query failed after owner crash: found=%v err=%v", lr.Found, err)
	}
	// The crash left the set one copy short; anti-entropy at the new
	// owner must restore it.
	if got := holders(); got != 2 {
		t.Fatalf("replica set has %d members after crash, want 2", got)
	}
	c.RepairReplicas()
	if got := holders(); got != 3 {
		t.Errorf("replica set has %d members after repair, want 3", got)
	}
	lr, err = c.Peers[0].Lookup("R", "a", q, false)
	if err != nil || !lr.Found || lr.Match.Partition.Range != q {
		t.Errorf("query wrong after repair: found=%v err=%v", lr.Found, err)
	}
}

// TestReplicaLoadBalancing is the acceptance run: under a Zipf workload
// with churn, R=3 plus load-aware selection must cut max/mean peer load
// to at most half the single-copy baseline while keeping >= 99% of
// queries answered.
func TestReplicaLoadBalancing(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	base := LoadConfig{
		N:          32,
		Partitions: 120,
		Queries:    1200,
		Crashes:    4,
		Seed:       42,
	}
	single, err := RunLoad(base)
	if err != nil {
		t.Fatal(err)
	}
	repl := base
	repl.Replicas = 2 // R=3 total copies
	repl.LoadAware = true
	balanced, err := RunLoad(repl)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline: imbalance=%.2f success=%.1f%%; R=3 load-aware: imbalance=%.2f success=%.1f%% repaired=%d",
		single.Imbalance(), single.SuccessRate(), balanced.Imbalance(), balanced.SuccessRate(), balanced.Repaired)
	if single.Imbalance() < 2 {
		t.Fatalf("baseline not skewed enough to test against (imbalance %.2f)", single.Imbalance())
	}
	if got, want := balanced.Imbalance(), 0.5*single.Imbalance(); got > want {
		t.Errorf("imbalance %.2f with R=3 load-aware, want <= %.2f (half of baseline %.2f)",
			got, want, single.Imbalance())
	}
	if got := balanced.SuccessRate(); got < 99 {
		t.Errorf("success rate %.2f%% under churn, want >= 99%%", got)
	}
}

// TestReplicaHotPromotionInLoadRun checks the popularity machinery end to
// end: a strongly skewed stream must promote at least the hottest bucket
// to the wide replica set (visible as replica.promotions ticking).
func TestReplicaHotPromotionInLoadRun(t *testing.T) {
	before := metrics.Default.Snapshot()
	res, err := RunLoad(LoadConfig{
		N:            24,
		Partitions:   60,
		Queries:      800,
		Replicas:     1, // R=2 cold, RHot=4
		LoadAware:    true,
		HotThreshold: 8,
		Skew:         1.5,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() < 99 {
		t.Errorf("success rate %.2f%% without churn, want >= 99%%", res.SuccessRate())
	}
	delta := metrics.Default.Snapshot().Sub(before)
	if delta.Counters["replica.promotions"] == 0 {
		t.Error("skewed stream promoted no bucket to the hot replica set")
	}
}
