package sim

import "sync"

// AdaptivePadder implements the paper's "dynamically adjusting padding"
// future-work idea as an AIMD controller: each incompletely answered
// query nudges the padding fraction up (more padding matches broader
// partitions, which contain more of the answer), and each completely
// answered query decays it (padding has a recall cost on the queries it
// misleads, Fig. 10). Safe for concurrent use.
type AdaptivePadder struct {
	mu  sync.Mutex
	pad float64
	max float64
}

// AIMD constants: additive increase per incomplete answer, multiplicative
// decay per complete one.
const (
	padIncrease = 0.02
	padDecay    = 0.95
)

// NewAdaptivePadder returns a padder bounded by maxPad (e.g. 0.30).
func NewAdaptivePadder(maxPad float64) *AdaptivePadder {
	if maxPad <= 0 {
		maxPad = 0.30
	}
	return &AdaptivePadder{max: maxPad}
}

// Pad returns the current padding fraction.
func (a *AdaptivePadder) Pad() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pad
}

// Observe feeds back one query's recall.
func (a *AdaptivePadder) Observe(recall float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if recall >= 1 {
		a.pad *= padDecay
		return
	}
	a.pad += padIncrease
	if a.pad > a.max {
		a.pad = a.max
	}
}
