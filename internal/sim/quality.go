package sim

import (
	"fmt"
	"math/rand"

	"p2prange/internal/metrics"
	"p2prange/internal/workload"
)

// QualityConfig parameterizes a match-quality run (Figs. 6-10): the
// workload is fed through the Section 4 protocol on a live simulated
// cluster; the system starts empty and caches every non-exact query
// range.
type QualityConfig struct {
	// Queries is the number of query ranges (default
	// workload.DefaultQueries).
	Queries int
	// WarmupFrac is the fraction of initial queries excluded from the
	// reported statistics (default workload.DefaultWarmupFrac).
	WarmupFrac float64
	// PadFrac expands each query range by this fraction on each edge
	// before hashing and matching (Fig. 10 uses 0.20); recall is always
	// measured against the unpadded query.
	PadFrac float64
	// AdaptivePadding, when non-nil, overrides PadFrac with the AIMD
	// controller's current fraction and feeds each query's recall back.
	AdaptivePadding *AdaptivePadder
	// Workload generates the query ranges; defaults to the paper's
	// uniform workload with the given seed.
	Workload workload.Generator
	// Seed seeds the default workload and peer selection.
	Seed int64
	// Relation and Attribute name the partitions; defaults are synthetic.
	Relation, Attribute string
	// Bins is the similarity histogram bin count (default 10, matching
	// the paper's 0.1-wide buckets).
	Bins int
}

func (q *QualityConfig) withDefaults() QualityConfig {
	out := *q
	if out.Queries <= 0 {
		out.Queries = workload.DefaultQueries
	}
	if out.WarmupFrac <= 0 {
		out.WarmupFrac = workload.DefaultWarmupFrac
	}
	if out.Workload == nil {
		out.Workload = workload.NewUniform(workload.DefaultDomainLo, workload.DefaultDomainHi, out.Seed)
	}
	if out.Relation == "" {
		out.Relation = "R"
	}
	if out.Attribute == "" {
		out.Attribute = "a"
	}
	if out.Bins <= 0 {
		out.Bins = 10
	}
	return out
}

// QualityResult aggregates a quality run.
type QualityResult struct {
	// Similarity histograms the Jaccard similarity between each measured
	// query and its matched partition (Figs. 6-7); unmatched queries
	// count as similarity 0.
	Similarity *metrics.Histogram
	// Recall accumulates the fraction of each query's answer covered by
	// the match (Figs. 8-10); unmatched queries count as recall 0.
	Recall *metrics.CDF
	// Matched counts measured queries that found any candidate.
	Matched int
	// Exact counts measured queries whose match was identical.
	Exact int
	// Measured is the number of post-warmup queries.
	Measured int
}

// RunQuality drives the workload through the cluster per the paper's
// Section 5 methodology: start empty, look up each query range, record
// the best match's Jaccard similarity and its recall against the query,
// and cache the query's own partition when the match was not exact.
func RunQuality(c *Cluster, cfg QualityConfig) (*QualityResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	res := &QualityResult{
		Similarity: metrics.NewHistogram(0, 1, cfg.Bins),
		Recall:     &metrics.CDF{},
	}
	warmup := int(float64(cfg.Queries) * cfg.WarmupFrac)
	domLo, domHi := int64(workload.DefaultDomainLo), int64(workload.DefaultDomainHi)
	if u, ok := cfg.Workload.(*workload.Uniform); ok {
		domLo, domHi = u.Lo, u.Hi
	}
	for i := 0; i < cfg.Queries; i++ {
		q := cfg.Workload.Next()
		probe := q
		pad := cfg.PadFrac
		if cfg.AdaptivePadding != nil {
			pad = cfg.AdaptivePadding.Pad()
		}
		if pad > 0 {
			probe = q.Pad(pad, domLo, domHi)
		}
		origin := c.RandomPeer(rng)
		lr, err := origin.Lookup(cfg.Relation, cfg.Attribute, probe, true)
		if err != nil {
			return nil, fmt.Errorf("sim: query %d %s: %w", i, q, err)
		}
		var simJ, recall float64
		if lr.Found {
			matched := lr.Match.Partition.Range
			simJ = probe.Jaccard(matched)
			recall = q.Recall(matched)
		}
		if cfg.AdaptivePadding != nil {
			cfg.AdaptivePadding.Observe(recall)
		}
		if i < warmup {
			continue
		}
		res.Measured++
		if lr.Found {
			res.Matched++
			if lr.Match.Partition.Range == probe {
				res.Exact++
			}
		}
		res.Similarity.Add(simJ)
		res.Recall.Add(recall)
	}
	return res, nil
}

// Survival renders the recall survival series at the paper's 0.05 step.
func (r *QualityResult) Survival() []metrics.Point { return r.Recall.Survival(0.05) }
