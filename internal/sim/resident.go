package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"p2prange/internal/chord"
	"p2prange/internal/metrics"
	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/rangeset"
	"p2prange/internal/store"
	"p2prange/internal/transport"
	"p2prange/internal/wal"
	"p2prange/internal/workload"
)

// Resident-set ablation: seed one durable peer with a working set, seal
// it into a segment, then reboot the peer with its in-memory store capped
// to a fraction of that set and replay an identical query mix. With
// segment read-through the capped peer must answer every query exactly
// like the unbounded baseline — the cap costs disk reads and latency,
// never recall. This is the experiment behind `rangebench -fig churn`'s
// resident rows and the acceptance test for `peerd -mem-limit`.

// ResidentConfig parameterizes one capped-reboot run.
type ResidentConfig struct {
	// Partitions is the number of distinct ranges seeded (default 400).
	Partitions int
	// Queries is the size of the lookup mix (default 300).
	Queries int
	// CapPct caps the resident descriptor count at this percentage of the
	// seeded working set (0 = unbounded: the whole set stays in memory and
	// the segment tier is never consulted).
	CapPct int
	// Dir is the peer's data directory (required).
	Dir string
	// Seed drives all randomness; runs with equal seeds see identical
	// partition catalogs and query mixes.
	Seed int64
}

func (cfg *ResidentConfig) withDefaults() ResidentConfig {
	out := *cfg
	if out.Partitions <= 0 {
		out.Partitions = 400
	}
	if out.Queries <= 0 {
		out.Queries = 300
	}
	return out
}

// ResidentResult reports one capped run.
type ResidentResult struct {
	// Held is the seeded working-set size (descriptors on the peer).
	Held int
	// Cap is the applied resident limit in descriptors (0 = unbounded).
	Cap int
	// Resident is the in-memory descriptor count after the query mix.
	Resident int
	// Answers fingerprints every query's result in mix order — match
	// identity, score, and found flag. Two runs answered identically
	// exactly when their Answers are element-wise equal.
	Answers []string
	// P99 is the 99th-percentile lookup latency over the mix.
	P99 time.Duration
	// SegReads and MissDisk are the wal.seg_reads / store.miss_disk
	// counter deltas over the query phase: how often the segment tier was
	// consulted.
	SegReads, MissDisk uint64
	// Recovery is the boot-time replay summary of the capped reboot.
	Recovery wal.Recovery
}

// DiskPerQuery is the mean number of segment reads per lookup.
func (r *ResidentResult) DiskPerQuery() float64 {
	if len(r.Answers) == 0 {
		return 0
	}
	return float64(r.SegReads) / float64(len(r.Answers))
}

// Recall is the fraction of this run's answers that equal the baseline's,
// element-wise. A read-through store must score 1.0 against the unbounded
// run; anything lower means the cap changed an answer.
func (r *ResidentResult) Recall(baseline *ResidentResult) float64 {
	if len(r.Answers) == 0 || len(r.Answers) != len(baseline.Answers) {
		return 0
	}
	same := 0
	for i, a := range r.Answers {
		if a == baseline.Answers[i] {
			same++
		}
	}
	return float64(same) / float64(len(r.Answers))
}

// RunResident seeds a single durable peer with cfg.Partitions distinct
// ranges, checkpoints so the whole set lives in one sealed segment,
// crashes, and reboots with the store capped at cfg.CapPct of the set
// (read-through enabled). It then runs the seeded query mix against the
// rebooted peer and reports the answers, tail latency, and disk-read
// counters. Run it once with CapPct 0 for the baseline and compare.
func RunResident(cfg ResidentConfig) (*ResidentResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("sim: ResidentConfig.Dir required")
	}

	// Phase 1 — seed. A one-peer ring owns every identifier, so the whole
	// catalog lands on the victim's durable store.
	c, err := NewCluster(ClusterConfig{
		N:    1,
		Peer: peer.Config{Scheme: minhash.NewExactScheme()},
	})
	if err != nil {
		return nil, err
	}
	seeder := c.Peers[0]
	addr := seeder.Addr()
	lg, _, err := wal.Open(wal.Options{Dir: cfg.Dir}, wal.StoreRestorer(seeder.Store()))
	if err != nil {
		return nil, err
	}
	seeder.Store().SetJournal(lg)
	seeder.AttachDurability(lg)

	gen := workload.NewUniform(workload.DefaultDomainLo, workload.DefaultDomainHi, cfg.Seed+1)
	seen := make(map[string]bool, cfg.Partitions)
	catalog := make([]rangeset.Range, 0, cfg.Partitions)
	for published := 0; published < cfg.Partitions; {
		p := store.Partition{Relation: "R", Attribute: "a", Range: gen.Next(), Holder: addr}
		if seen[p.Key()] {
			continue
		}
		seen[p.Key()] = true
		catalog = append(catalog, p.Range)
		if _, err := seeder.Publish(p); err != nil {
			return nil, fmt.Errorf("sim: publish %s: %w", p.Range, err)
		}
		published++
	}
	res := &ResidentResult{Held: seeder.Store().Len()}
	// Fold everything into one sealed segment, then die as on kill -9.
	if err := lg.Checkpoint(); err != nil {
		return nil, fmt.Errorf("sim: checkpoint: %w", err)
	}
	lg.Crash()

	// Phase 2 — capped reboot. Same identity on a fresh network; the
	// store is bounded and, when capped, reads through to the segment.
	if cfg.CapPct > 0 {
		res.Cap = res.Held * cfg.CapPct / 100
		if res.Cap < 1 {
			res.Cap = 1
		}
	}
	net := transport.NewMemory()
	revived, err := peer.New(addr, net, peer.Config{
		Scheme:        minhash.NewExactScheme(),
		CacheCapacity: res.Cap,
	})
	if err != nil {
		return nil, err
	}
	opts := wal.Options{Dir: cfg.Dir}
	if res.Cap > 0 {
		st := revived.Store()
		opts.ReadThrough = true
		opts.OnSegment = func(r *wal.SegmentReader) error {
			if r == nil {
				st.SetSegments(nil)
			} else {
				st.SetSegments(r)
			}
			return nil
		}
		opts.OnSwap = func(r *wal.SegmentReader, upto uint64) { st.SwapSegments(r, upto) }
	}
	lg2, rec, err := wal.Open(opts, wal.StoreRestorer(revived.Store()))
	if err != nil {
		return nil, err
	}
	defer lg2.Close()
	res.Recovery = rec
	revived.Store().SetJournal(lg2)
	revived.AttachDurability(lg2)
	net.RegisterTraced(revived.Addr(), revived.HandleTraced)
	if err := chord.BuildStableRing([]*chord.Node{revived.Node()}); err != nil {
		return nil, err
	}
	if got := revived.Store().Len(); got != res.Held {
		return nil, fmt.Errorf("sim: reboot recovered %d of %d descriptors", got, res.Held)
	}

	// Phase 3 — the query mix, identical across runs with equal seeds.
	// Mostly probes drawn from the seeded catalog (these must hit), with
	// an absent range every eighth query (bloom filters should turn most
	// of those away before any I/O). cache=false keeps lookups read-only
	// so every run probes the same working set.
	qrng := rand.New(rand.NewSource(cfg.Seed + 2))
	qgen := workload.NewUniform(workload.DefaultDomainLo, workload.DefaultDomainHi, cfg.Seed+3)
	before := metrics.Default.Snapshot()
	lat := make([]time.Duration, 0, cfg.Queries)
	for q := 0; q < cfg.Queries; q++ {
		var probe rangeset.Range
		if q%8 == 7 {
			probe = qgen.Next()
		} else {
			probe = catalog[qrng.Intn(len(catalog))]
		}
		start := time.Now()
		lr, err := revived.Lookup("R", "a", probe, false)
		lat = append(lat, time.Since(start))
		if err != nil {
			return nil, fmt.Errorf("sim: lookup %s: %w", probe, err)
		}
		res.Answers = append(res.Answers, fmt.Sprintf("%s|%.9f|%t",
			lr.Match.Partition.Key(), lr.Match.Score, lr.Found))
	}
	delta := metrics.Default.Snapshot().Sub(before)
	res.SegReads = delta.Counters["wal.seg_reads"]
	res.MissDisk = delta.Counters["store.miss_disk"]
	res.Resident = revived.Store().MemLen()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.P99 = lat[len(lat)*99/100]
	return res, nil
}
