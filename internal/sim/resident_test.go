package sim

import (
	"strings"
	"testing"
)

// TestResidentCapMatchesUnbounded is the acceptance check for segment
// read-through: a peer rebooted with its resident set capped at 10% of
// the working set must answer the whole query mix byte-identically to an
// unbounded reboot, and must visibly pay for it in disk reads.
func TestResidentCapMatchesUnbounded(t *testing.T) {
	const seed = 11
	base, err := RunResident(ResidentConfig{
		Partitions: 120, Queries: 150, CapPct: 0, Dir: t.TempDir(), Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Held == 0 || len(base.Answers) != 150 {
		t.Fatalf("vacuous baseline: %+v", base)
	}
	found := 0
	for _, a := range base.Answers {
		if strings.HasSuffix(a, "|true") {
			found++
		}
	}
	if found < len(base.Answers)/2 {
		t.Fatalf("baseline found only %d/%d probes; the mix is not exercising the store", found, len(base.Answers))
	}
	if base.SegReads != 0 {
		t.Errorf("unbounded baseline touched the segment %d times", base.SegReads)
	}

	for _, pct := range []int{100, 50, 10} {
		capped, err := RunResident(ResidentConfig{
			Partitions: 120, Queries: 150, CapPct: pct, Dir: t.TempDir(), Seed: seed,
		})
		if err != nil {
			t.Fatalf("cap %d%%: %v", pct, err)
		}
		if capped.Held != base.Held {
			t.Fatalf("cap %d%%: held %d, baseline %d", pct, capped.Held, base.Held)
		}
		if got := capped.Recall(base); got != 1.0 {
			t.Errorf("cap %d%%: recall %.4f, want 1.0 — the cap changed answers", pct, got)
		}
		if !capped.Recovery.ReadThrough {
			t.Errorf("cap %d%%: recovery did not run read-through: %+v", pct, capped.Recovery)
		}
		if capped.SegReads == 0 {
			t.Errorf("cap %d%%: no segment reads — the disk tier was never consulted", pct)
		}
		if capped.Resident > capped.Cap {
			t.Errorf("cap %d%%: resident %d exceeds cap %d", pct, capped.Resident, capped.Cap)
		}
		t.Logf("cap %d%% (%d descriptors): resident %d, seg reads %d (%.2f/query), miss_disk %d, p99 %v",
			pct, capped.Cap, capped.Resident, capped.SegReads, capped.DiskPerQuery(), capped.MissDisk, capped.P99)
	}
}
