package sim

import (
	"fmt"
	"math/rand"

	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/store"
	"p2prange/internal/wal"
	"p2prange/internal/workload"
)

// Restart ablation: crash one peer that owns a durable store, bring it
// back with the same identity and data directory, and account for every
// descriptor it held — recovered from disk by WAL replay, backfilled
// over the network by arc reclaim + anti-entropy, or lost. Running the
// same scenario with Durable false is the pre-durability baseline where
// replay recovers nothing and the network must resupply everything it
// can.

// RestartConfig parameterizes one crash-and-restart run.
type RestartConfig struct {
	// N is the ring size (default 16).
	N int
	// Partitions is the number of distinct ranges published before the
	// crash (default 300).
	Partitions int
	// Replicas is the successor-copy count per descriptor (default 2);
	// backfill needs at least one copy to survive the crash.
	Replicas int
	// Durable attaches a write-ahead log to the victim, so the restart
	// replays its store from Dir. False is the cold-restart baseline.
	Durable bool
	// Dir is the victim's data directory (required when Durable).
	Dir string
	// Fsync is the WAL commit barrier mode (default FsyncAlways).
	Fsync wal.FsyncMode
	// CompactEvery is the WAL fold threshold (0 = wal default; negative
	// disables compaction so recovery replays raw WAL records).
	CompactEvery int
	// RepairRounds is how many cluster-wide anti-entropy rounds run
	// after the rejoin before the final accounting (default 3).
	RepairRounds int
	// Seed drives all randomness.
	Seed int64
}

func (cfg *RestartConfig) withDefaults() RestartConfig {
	out := *cfg
	if out.N <= 0 {
		out.N = 16
	}
	if out.Partitions <= 0 {
		out.Partitions = 300
	}
	if out.Replicas <= 0 {
		out.Replicas = 2
	}
	if out.RepairRounds <= 0 {
		out.RepairRounds = 3
	}
	return out
}

// RestartResult accounts for the victim's descriptors across the
// crash-restart cycle.
type RestartResult struct {
	// Held is how many descriptors the victim held when it crashed.
	Held int
	// Recovered were present immediately after WAL replay, before the
	// peer rejoined the ring (always 0 for a cold restart).
	Recovered int
	// Backfilled were absent after replay but resupplied by arc reclaim
	// and anti-entropy once the peer rejoined.
	Backfilled int
	// Lost are still missing after RepairRounds of repair.
	Lost int
	// Recovery is the WAL replay summary (zero for a cold restart);
	// Recovery.Elapsed is the recovery latency.
	Recovery wal.Recovery
}

// RunRestart publishes a catalog onto a fresh ring whose victim peer
// (index 0) journals every mutation when cfg.Durable is set, crashes the
// victim abruptly (the WAL stops as on kill -9: committed records are on
// disk, uncommitted buffer lost), restarts it with the same address and
// data directory, and reports the recovered / backfilled / lost split.
func RunRestart(cfg RestartConfig) (*RestartResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Durable && cfg.Dir == "" {
		return nil, fmt.Errorf("sim: RestartConfig.Dir required when Durable")
	}
	c, err := NewCluster(ClusterConfig{
		N: cfg.N,
		Peer: peer.Config{
			Scheme:   minhash.NewExactScheme(),
			Replicas: cfg.Replicas,
		},
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	victim := c.Peers[0]
	victimAddr := victim.Addr()

	var lg *wal.Log
	if cfg.Durable {
		// The victim's store is empty, so there is nothing to replay;
		// Open only creates the directory and the first WAL file.
		lg, _, err = wal.Open(wal.Options{
			Dir: cfg.Dir, Fsync: cfg.Fsync, CompactEvery: cfg.CompactEvery,
		}, wal.StoreRestorer(victim.Store()))
		if err != nil {
			return nil, err
		}
		victim.Store().SetJournal(lg)
		victim.AttachDurability(lg)
	}

	// Publish a catalog of distinct ranges from random origins; every
	// StoreReq the victim acknowledges is committed to its WAL first.
	gen := workload.NewUniform(workload.DefaultDomainLo, workload.DefaultDomainHi, cfg.Seed+1)
	seen := make(map[string]bool, cfg.Partitions)
	for published := 0; published < cfg.Partitions; {
		p := store.Partition{Relation: "R", Attribute: "a", Range: gen.Next()}
		if seen[p.Key()] {
			continue
		}
		seen[p.Key()] = true
		origin := c.RandomPeer(rng)
		p.Holder = origin.Addr()
		if _, err := origin.Publish(p); err != nil {
			return nil, fmt.Errorf("sim: publish %s: %w", p.Range, err)
		}
		published++
	}

	// Snapshot what the victim holds (per bucket, per descriptor key),
	// then kill it: WAL first (as the process dies, buffered-but-
	// unacknowledged records vanish), then the network identity.
	res := &RestartResult{}
	held := victim.Store().Digest(nil)
	for _, vv := range held {
		res.Held += len(vv)
	}
	if lg != nil {
		lg.Crash()
	}
	if err := c.Crash(0); err != nil {
		return nil, err
	}

	// Restart with the same address — same chord ID, same arc. Replay
	// the data directory into the fresh store before rejoining.
	revived, err := peer.New(victimAddr, c.peerCaller(), c.cfg.Peer)
	if err != nil {
		return nil, err
	}
	recovered := make(map[string]bool, res.Held)
	if cfg.Durable {
		lg2, rec, err := wal.Open(wal.Options{
			Dir: cfg.Dir, Fsync: cfg.Fsync, CompactEvery: cfg.CompactEvery,
		}, wal.StoreRestorer(revived.Store()))
		if err != nil {
			return nil, err
		}
		res.Recovery = rec
		revived.Store().SetJournal(lg2)
		revived.AttachDurability(lg2)
		for id, vv := range held {
			for key := range vv {
				if _, ok := revived.Store().Get(id, key); ok {
					res.Recovered++
					recovered[fmt.Sprintf("%08x/%s", id, key)] = true
				}
			}
		}
	}

	// Rejoin and let the network resupply the rest: reclaim the arc from
	// the successor, then run anti-entropy rounds cluster-wide.
	c.Net.Register(revived.Addr(), revived.Handle)
	if err := revived.Node().Join(c.Peers[0].Addr()); err != nil {
		return nil, fmt.Errorf("sim: rejoin: %w", err)
	}
	c.Peers = append(c.Peers, revived)
	c.Stabilize(4)
	if err := revived.ReclaimArc(); err != nil {
		return nil, fmt.Errorf("sim: reclaim after restart: %w", err)
	}
	for r := 0; r < cfg.RepairRounds; r++ {
		c.RepairReplicas()
		c.Stabilize(1)
	}

	for id, vv := range held {
		for key := range vv {
			if _, ok := revived.Store().Get(id, key); ok {
				if !recovered[fmt.Sprintf("%08x/%s", id, key)] {
					res.Backfilled++
				}
			} else {
				res.Lost++
			}
		}
	}
	return res, nil
}
