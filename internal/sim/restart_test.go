package sim

import "testing"

// TestRecoverRestartDurable is the end-to-end acceptance check for the
// durability work: crash a peer holding a journaled store, restart it
// with the same data directory, and require that no descriptor it
// acknowledged is lost — with replay, not the network, doing the bulk of
// the restoration.
func TestRecoverRestartDurable(t *testing.T) {
	res, err := RunRestart(RestartConfig{
		N: 12, Partitions: 150, Durable: true, Dir: t.TempDir(), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Held == 0 {
		t.Fatal("victim held nothing; scenario is vacuous")
	}
	if res.Lost != 0 {
		t.Errorf("lost %d of %d acknowledged descriptors after durable restart", res.Lost, res.Held)
	}
	if res.Recovered == 0 {
		t.Errorf("WAL replay recovered nothing (held %d, backfilled %d)", res.Held, res.Backfilled)
	}
	if res.Recovery.Replayed == 0 && res.Recovery.SegmentRecords == 0 {
		t.Errorf("recovery summary empty: %+v", res.Recovery)
	}
	if got := res.Recovered + res.Backfilled + res.Lost; got != res.Held {
		t.Errorf("accounting mismatch: %d+%d+%d != %d", res.Recovered, res.Backfilled, res.Lost, res.Held)
	}
}

// TestRecoverRestartCold is the pre-durability baseline: with no WAL the
// restarted peer recovers nothing locally and depends entirely on arc
// reclaim and anti-entropy.
func TestRecoverRestartCold(t *testing.T) {
	res, err := RunRestart(RestartConfig{N: 12, Partitions: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered != 0 {
		t.Errorf("cold restart recovered %d descriptors from nowhere", res.Recovered)
	}
	if res.Held == 0 || res.Backfilled == 0 {
		t.Errorf("cold restart backfilled nothing: %+v", res)
	}
}
