package sim

import (
	"fmt"
	"math/rand"

	"p2prange/internal/metrics"
	"p2prange/internal/minhash"
	"p2prange/internal/rangeset"
	"p2prange/internal/store"
	"p2prange/internal/workload"
)

// ScaleWorkload is a pre-hashed partition workload for scalability runs:
// unique ranges with their l identifiers computed once, so sweeps over
// ring sizes re-use the hashing work (identifiers do not depend on N).
type ScaleWorkload struct {
	Ranges []rangeset.Range
	IDs    [][]uint32 // IDs[i] are the l identifiers of Ranges[i]
}

// NewScaleWorkload draws unique uniform ranges and hashes each with the
// scheme. The paper's scalability runs use 10,000 unique partitions, each
// stored under 5 identifiers (5 x 10^4 stored descriptors).
func NewScaleWorkload(scheme *minhash.Scheme, unique int, seed int64) *ScaleWorkload {
	gen := workload.NewUniform(workload.DefaultDomainLo, workload.DefaultDomainHi, seed)
	seen := make(map[rangeset.Range]bool, unique)
	w := &ScaleWorkload{}
	for len(w.Ranges) < unique {
		q := gen.Next()
		if seen[q] {
			continue
		}
		seen[q] = true
		w.Ranges = append(w.Ranges, q)
		w.IDs = append(w.IDs, scheme.Identifiers(q))
	}
	return w
}

// Stored returns the total number of descriptors the workload stores
// (unique ranges x l identifiers).
func (w *ScaleWorkload) Stored() int {
	if len(w.IDs) == 0 {
		return 0
	}
	return len(w.Ranges) * len(w.IDs[0])
}

// Truncate returns a view of the first n unique ranges.
func (w *ScaleWorkload) Truncate(n int) *ScaleWorkload {
	if n > len(w.Ranges) {
		n = len(w.Ranges)
	}
	return &ScaleWorkload{Ranges: w.Ranges[:n], IDs: w.IDs[:n]}
}

// StoreWorkload stores every pre-hashed partition of w into the cluster
// from random origin peers (the store phase of a scalability run).
func (c *Cluster) StoreWorkload(w *ScaleWorkload, seed int64) error {
	rng := rand.New(rand.NewSource(seed ^ 0x5deece66d))
	for i, q := range w.Ranges {
		origin := c.RandomPeer(rng)
		part := store.Partition{Relation: "R", Attribute: "a", Range: q, Holder: origin.Addr()}
		for _, id := range w.IDs[i] {
			if _, err := c.StoreByID(origin, id, part); err != nil {
				return fmt.Errorf("sim: store %s under %08x: %w", q, id, err)
			}
		}
	}
	return nil
}

// ScaleResult aggregates one scalability run.
type ScaleResult struct {
	N          int                 // peers in the ring
	Stored     int                 // descriptors stored
	Load       metrics.LoadSummary // partitions per node (Fig. 11)
	PathLength *metrics.IntDist    // chord hops per find operation (Fig. 12)
}

// RunScale stores the workload into a fresh cluster of n peers (from
// random origin peers, recording path lengths of the store routing) and
// then issues one find per range from a random origin, recording the
// lookup path lengths — mirroring the paper's modified-Chord-simulator
// methodology where find operations take a range set and resolve its 5
// identifiers. Duplicate stores are suppressed by the bucket store, as in
// the paper (ranges are cached only if not already stored).
func RunScale(peerCfg ClusterConfig, w *ScaleWorkload, seed int64) (*ScaleResult, error) {
	c, err := NewCluster(peerCfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	res := &ScaleResult{N: c.N(), PathLength: &metrics.IntDist{}}

	if err := c.StoreWorkload(w, seed); err != nil {
		return nil, err
	}
	res.Stored = c.TotalStored()
	res.Load = metrics.SummarizeLoad(c.Loads())

	// Find phase: route each range's identifiers from a random peer and
	// record every probe's path length.
	for i := range w.Ranges {
		origin := c.RandomPeer(rng)
		for _, id := range w.IDs[i] {
			hops, err := c.RouteOnly(origin, id)
			if err != nil {
				return nil, err
			}
			res.PathLength.Add(hops)
		}
	}
	return res, nil
}
