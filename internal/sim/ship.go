package sim

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"p2prange/internal/replica"
	"p2prange/internal/ship"
	"p2prange/internal/store"
	"p2prange/internal/wal"
	"p2prange/internal/workload"
)

// Ship ablation: one durable owner, one durable follower that synced
// once and then missed Missed writes, and three ways to converge again —
// the digest anti-entropy exchange (cost scales with the whole store),
// tailing the owner's WAL from the follower's cursor (cost scales with
// the missed writes), and snapshot seeding (the segment stream a
// follower takes when retention outran its cursor). Every mode ends with
// a byte-identity check against a local recovery of the owner's data
// directory: a shipped store must be indistinguishable from a recovered
// one.

// Ship catch-up modes.
const (
	// ShipModeDigest converges by the replica subsystem's digest
	// exchange: the owner's full version vector crosses the wire, the
	// follower answers with what it lacks, the owner pushes those
	// descriptors. O(store) rows regardless of how few writes were
	// missed.
	ShipModeDigest = "digest"
	// ShipModeTail converges by shipping WAL records from the
	// follower's cursor. O(missed) records; the rest of the store never
	// moves.
	ShipModeTail = "tail"
	// ShipModeSnapshot folds the owner's WAL (retention keeps nothing)
	// before the follower returns, forcing the snapshot path: stream
	// the sealed segment, then tail from the seal point. O(store)
	// bytes, but self-contained — it needs no WAL history at all.
	ShipModeSnapshot = "snapshot"
)

// ShipConfig parameterizes one catch-up run.
type ShipConfig struct {
	// Base is the descriptor count both sides hold before the follower
	// disconnects (default 400).
	Base int
	// Missed is how many writes land while the follower is away
	// (default 50).
	Missed int
	// Mode is one of the ShipMode constants.
	Mode string
	// OwnerDir and FollowerDir are the two data directories (required;
	// both stores journal every mutation).
	OwnerDir, FollowerDir string
	// Seed drives the workload.
	Seed int64
}

func (cfg *ShipConfig) withDefaults() ShipConfig {
	out := *cfg
	if out.Base <= 0 {
		out.Base = 400
	}
	if out.Missed <= 0 {
		out.Missed = 50
	}
	return out
}

// ShipResult reports what one catch-up cost.
type ShipResult struct {
	// Held is the owner's descriptor count after all writes.
	Held int
	// SyncRecords is how many records (tail/snapshot) or pushed
	// descriptors (digest) the catch-up moved.
	SyncRecords int
	// SyncBytes is the payload bytes the catch-up moved: entry batches
	// and segment chunks for the shipping modes, encoded digests plus
	// pushed descriptors for the digest mode.
	SyncBytes int64
	// DigestRows is the version-vector row count the digest exchange
	// carried (0 for the shipping modes) — the O(store) term.
	DigestRows int
	// Snapshots counts snapshot seeds taken (snapshot mode expects 1).
	Snapshots int
	// Elapsed is the catch-up wall time.
	Elapsed time.Duration
	// Identical reports the byte-identity shadow check: the follower's
	// store renders exactly like a store recovered locally from the
	// owner's data directory.
	Identical bool
}

// RunShip publishes Base descriptors to a durable owner, syncs a durable
// follower, disconnects it, lands Missed more writes, then converges by
// cfg.Mode and accounts for the cost.
func RunShip(cfg ShipConfig) (*ShipResult, error) {
	cfg = cfg.withDefaults()
	if cfg.OwnerDir == "" || cfg.FollowerDir == "" {
		return nil, fmt.Errorf("sim: ShipConfig.OwnerDir and FollowerDir are required")
	}

	// Owner: journaled store plus the ship service. Snapshot mode
	// retains no WAL past a fold, so the follower's cursor is dead the
	// moment the owner compacts; the other modes keep the default
	// retention budget.
	oOpt := wal.Options{Dir: cfg.OwnerDir, CompactEvery: -1}
	if cfg.Mode == ShipModeSnapshot {
		oOpt.ShipRetain = -1
	}
	ost := store.New()
	olg, _, err := wal.Open(oOpt, wal.StoreRestorer(ost))
	if err != nil {
		return nil, err
	}
	defer olg.Close()
	ost.SetJournal(olg)
	svc := ship.NewService(ship.ServiceConfig{Log: olg, Apply: ship.PutApplier(ost), Commit: olg.Commit})
	call := func(req any) (any, error) {
		resp, handled, err := svc.Handle(req)
		if !handled {
			return nil, fmt.Errorf("sim: unhandled ship request %T", req)
		}
		return resp, err
	}

	// Follower: its own journaled store, applying shipped records
	// through the same replay path recovery uses.
	fst := store.New()
	flg, _, err := wal.Open(wal.Options{Dir: cfg.FollowerDir, CompactEvery: -1}, wal.StoreRestorer(fst))
	if err != nil {
		return nil, err
	}
	defer flg.Close()
	fst.SetJournal(flg)
	const self = "follower:1"
	fl := ship.NewFollower(ship.FollowerConfig{
		Owner:  "owner",
		Self:   self,
		Call:   call,
		Apply:  wal.StoreRestorer(fst),
		Reset:  func() error { fst.ExtractArc(0, 0); return nil },
		Commit: flg.Commit,
		Dir:    cfg.FollowerDir,
	})

	// Publish the shared base, converge the follower, then disconnect
	// it (drop its retention pin, as a stopping follower does).
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := workload.NewUniform(workload.DefaultDomainLo, workload.DefaultDomainHi, cfg.Seed+1)
	publish := func(n int) error {
		for i := 0; i < n; i++ {
			p := store.Partition{Relation: "R", Attribute: "a", Range: gen.Next(),
				Holder: "owner:4000", Version: 1, Origin: "o:1"}
			ost.Put(rng.Uint32(), p)
		}
		return olg.Commit()
	}
	if err := publish(cfg.Base); err != nil {
		return nil, err
	}
	if _, err := fl.CatchUp(); err != nil {
		return nil, fmt.Errorf("sim: initial sync: %w", err)
	}
	if _, err := call(ship.CursorAckReq{Follower: self, Leave: true}); err != nil {
		return nil, err
	}

	// The gap: Missed writes the follower never sees. Snapshot mode
	// folds afterward, destroying the WAL history the cursor points at.
	if err := publish(cfg.Missed); err != nil {
		return nil, err
	}
	if cfg.Mode == ShipModeSnapshot {
		if err := olg.Checkpoint(); err != nil {
			return nil, err
		}
	}

	res := &ShipResult{}
	for _, vv := range ost.Digest(nil) {
		res.Held += len(vv)
	}

	start := time.Now()
	switch cfg.Mode {
	case ShipModeDigest:
		// The replica exchange, costed message by message: the owner's
		// full digest out, the missing-keys answer back, one push per
		// lacking descriptor. Payload sizes are the gob encodings the
		// aux protocol actually ships inside its frames.
		digest := ost.Digest(nil)
		for _, vv := range digest {
			res.DigestRows += len(vv)
		}
		res.SyncBytes += gobSize(replica.SyncReq{Digest: digest})
		missing := fst.MissingFrom(digest)
		res.SyncBytes += gobSize(replica.SyncResp{Missing: missing})
		for id, keys := range missing {
			for _, key := range keys {
				p, held := ost.Get(id, key)
				if !held {
					continue
				}
				res.SyncBytes += gobSize(p)
				fst.Put(id, p)
				res.SyncRecords++
			}
		}
		if err := flg.Commit(); err != nil {
			return nil, err
		}
	case ShipModeTail, ShipModeSnapshot:
		before := fl.Stats()
		if _, err := fl.CatchUp(); err != nil {
			return nil, fmt.Errorf("sim: catch-up: %w", err)
		}
		after := fl.Stats()
		res.SyncRecords = int(after.Applied - before.Applied)
		res.SyncBytes = int64(after.Bytes - before.Bytes)
		res.Snapshots = int(after.Snapshots - before.Snapshots)
	default:
		return nil, fmt.Errorf("sim: unknown ship mode %q", cfg.Mode)
	}
	res.Elapsed = time.Since(start)

	// Shadow check: recover the owner's directory into a fresh store
	// and demand the follower renders identically, byte for byte.
	rst := store.New()
	rlg, _, err := wal.Open(wal.Options{Dir: cfg.OwnerDir, CompactEvery: -1}, wal.StoreRestorer(rst))
	if err != nil {
		return nil, fmt.Errorf("sim: shadow recovery: %w", err)
	}
	res.Identical = storeFingerprint(fst) == storeFingerprint(rst)
	rlg.Close()

	return res, nil
}

// gobSize is the encoded size of one aux-protocol payload — the bytes
// the frame would carry on the wire.
func gobSize(v any) int64 {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0
	}
	return int64(buf.Len())
}

// storeFingerprint renders a store's full content — every bucket, every
// descriptor, stamps included — canonically, so two stores compare for
// exact equality.
func storeFingerprint(st *store.Store) string {
	var lines []string
	for _, id := range st.IDs() {
		for _, p := range st.Bucket(id) {
			lines = append(lines, fmt.Sprintf("%d|%s|%s|%d|%d|%s|%d|%s",
				id, p.Relation, p.Attribute, p.Range.Lo, p.Range.Hi, p.Holder, p.Version, p.Origin))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
