package sim

import "testing"

// TestRunShipModes pins the ablation's shape: tailing costs O(missed)
// records, the digest exchange carries O(store) rows no matter how small
// the gap, snapshot seeding streams the whole segment once — and every
// mode ends byte-identical to a local recovery of the owner's directory.
func TestRunShipModes(t *testing.T) {
	const base, missed = 120, 15
	run := func(mode string) *ShipResult {
		t.Helper()
		res, err := RunShip(ShipConfig{Base: base, Missed: missed, Mode: mode,
			OwnerDir: t.TempDir(), FollowerDir: t.TempDir(), Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !res.Identical {
			t.Fatalf("%s: follower diverged from local recovery", mode)
		}
		return res
	}

	tail := run(ShipModeTail)
	if tail.SyncRecords != missed {
		t.Fatalf("tail shipped %d records, want exactly the %d missed", tail.SyncRecords, missed)
	}
	if tail.DigestRows != 0 || tail.Snapshots != 0 {
		t.Fatalf("tail took a detour: rows=%d snaps=%d", tail.DigestRows, tail.Snapshots)
	}

	dig := run(ShipModeDigest)
	if dig.DigestRows != dig.Held {
		t.Fatalf("digest carried %d rows, want the whole store (%d)", dig.DigestRows, dig.Held)
	}
	if dig.SyncRecords != missed {
		t.Fatalf("digest pushed %d descriptors, want %d", dig.SyncRecords, missed)
	}

	snap := run(ShipModeSnapshot)
	if snap.Snapshots != 1 {
		t.Fatalf("snapshot mode took %d seeds, want 1", snap.Snapshots)
	}
	if snap.SyncRecords != snap.Held {
		t.Fatalf("snapshot applied %d records, want the whole store (%d)", snap.SyncRecords, snap.Held)
	}
	if snap.SyncBytes <= tail.SyncBytes {
		t.Fatalf("snapshot (%dB) should cost more than tail (%dB)", snap.SyncBytes, tail.SyncBytes)
	}

	if tail.SyncBytes*4 >= dig.SyncBytes {
		t.Fatalf("tail (%dB) should be far cheaper than digest (%dB) at this store/gap ratio",
			tail.SyncBytes, dig.SyncBytes)
	}
}

// TestRunShipValidates covers the config error paths.
func TestRunShipValidates(t *testing.T) {
	if _, err := RunShip(ShipConfig{Mode: ShipModeTail}); err == nil {
		t.Fatal("missing dirs accepted")
	}
	if _, err := RunShip(ShipConfig{Mode: "warp",
		OwnerDir: t.TempDir(), FollowerDir: t.TempDir()}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
