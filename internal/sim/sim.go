package sim

import (
	"fmt"
	"math/rand"

	"p2prange/internal/chord"
	"p2prange/internal/metrics"
	"p2prange/internal/minhash"
	"p2prange/internal/obs"
	"p2prange/internal/peer"
	"p2prange/internal/store"
	"p2prange/internal/transport"
)

// ClusterConfig parameterizes a simulated cluster.
type ClusterConfig struct {
	// N is the number of peers.
	N int
	// Peer is applied to every peer; Peer.Scheme is required.
	Peer peer.Config
	// WrapCaller, when set, wraps each peer's view of the network before
	// the peer is built — e.g. with transport.NewFaultCaller for fault
	// injection or transport.NewRetryCaller for resilience. Called once
	// per peer with the shared in-memory network as the inner caller.
	WrapCaller func(inner transport.Caller) transport.Caller
	// Addrs, when non-empty, assigns exact peer addresses (len must be N)
	// instead of the synthetic defaults. Equivalence tests use it to give
	// an in-memory cluster the same addresses — and therefore the same
	// chord IDs and ring geometry — as a live TCP cluster.
	Addrs []string
}

// Cluster is an in-memory system of N peers on a converged chord ring.
type Cluster struct {
	Net   *transport.Memory
	Peers []*peer.Peer
	cfg   ClusterConfig
}

// NewCluster builds a converged cluster. Peer addresses are synthetic
// ("10.s.h.p:4000"); in the vanishingly-rare event of a 32-bit chord ID
// collision the address is perturbed until IDs are unique.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: cluster size must be positive, got %d", cfg.N)
	}
	if cfg.Peer.Scheme == nil {
		return nil, fmt.Errorf("sim: ClusterConfig.Peer.Scheme is required")
	}
	if len(cfg.Addrs) > 0 && len(cfg.Addrs) != cfg.N {
		return nil, fmt.Errorf("sim: ClusterConfig.Addrs has %d entries for %d peers", len(cfg.Addrs), cfg.N)
	}
	c := &Cluster{Net: transport.NewMemory(), cfg: cfg}
	seen := make(map[chord.ID]bool, cfg.N)
	for i := 0; i < cfg.N; i++ {
		caller := c.peerCaller()
		var p *peer.Peer
		var err error
		for attempt := 0; ; attempt++ {
			addr := fmt.Sprintf("10.%d.%d.%d:%d", i>>16&0xff, i>>8&0xff, i&0xff, 4000+attempt)
			if len(cfg.Addrs) > 0 {
				addr = cfg.Addrs[i]
			}
			p, err = peer.New(addr, caller, cfg.Peer)
			if err != nil {
				return nil, err
			}
			if !seen[p.Node().ID()] {
				break
			}
			if len(cfg.Addrs) > 0 {
				return nil, fmt.Errorf("sim: chord ID collision on assigned address %s", addr)
			}
		}
		seen[p.Node().ID()] = true
		c.Net.RegisterTraced(p.Addr(), p.HandleTraced)
		c.Peers = append(c.Peers, p)
	}
	nodes := make([]*chord.Node, len(c.Peers))
	for i, p := range c.Peers {
		nodes[i] = p.Node()
	}
	if err := chord.BuildStableRing(nodes); err != nil {
		return nil, err
	}
	return c, nil
}

// peerCaller builds one peer's view of the network.
func (c *Cluster) peerCaller() transport.Caller {
	if c.cfg.WrapCaller != nil {
		return c.cfg.WrapCaller(c.Net)
	}
	return c.Net
}

// N returns the cluster size.
func (c *Cluster) N() int { return len(c.Peers) }

// RandomPeer picks a uniformly random peer.
func (c *Cluster) RandomPeer(rng *rand.Rand) *peer.Peer {
	return c.Peers[rng.Intn(len(c.Peers))]
}

// Loads returns the number of stored partition descriptors per peer — the
// per-node load of Fig. 11.
func (c *Cluster) Loads() []int {
	out := make([]int, len(c.Peers))
	for i, p := range c.Peers {
		out[i] = p.Store().Len()
	}
	return out
}

// TotalStored sums stored descriptors across peers.
func (c *Cluster) TotalStored() int {
	t := 0
	for _, l := range c.Loads() {
		t += l
	}
	return t
}

// StoreByID routes identifier id from peer origin and stores part at the
// owner, returning the chord path length. Scalability runs use it with
// precomputed identifiers so hashing cost is paid once per partition, not
// once per ring size.
func (c *Cluster) StoreByID(origin *peer.Peer, id uint32, part store.Partition) (int, error) {
	owner, hops, err := origin.Node().Lookup(id)
	if err != nil {
		return hops, err
	}
	if _, err := c.call(origin, owner, peer.StoreReq{ID: id, Partition: part}); err != nil {
		return hops, err
	}
	return hops, nil
}

// RouteOnly resolves the owner of id from origin, returning the path
// length without any storage side effect (Fig. 12's find operations).
func (c *Cluster) RouteOnly(origin *peer.Peer, id uint32) (int, error) {
	_, hops, err := origin.Node().Lookup(id)
	return hops, err
}

func (c *Cluster) call(origin *peer.Peer, to chord.Ref, req any) (any, error) {
	if to.ID == origin.Node().ID() {
		return origin.Handle(req)
	}
	return c.Net.Call(to.Addr, req)
}

// View assembles the cluster observability view: per-peer status (ring
// position, stored descriptors, probes served) plus the process-wide
// metrics snapshot as the global state — simulated peers share one
// registry, so the snapshot is already cluster-wide. The same rollup
// rangetop computes against a live cluster comes from here for free.
func (c *Cluster) View() obs.ClusterView {
	return c.viewWith(metrics.Default.Snapshot())
}

// ViewSince is View with the global metrics restricted to the delta
// since prev, so a single experiment's rollup is not polluted by earlier
// runs in the same process.
func (c *Cluster) ViewSince(prev metrics.Snapshot) obs.ClusterView {
	return c.viewWith(metrics.Default.Snapshot().Sub(prev))
}

func (c *Cluster) viewWith(g metrics.Snapshot) obs.ClusterView {
	nodes := make([]obs.NodeStatus, len(c.Peers))
	for i, p := range c.Peers {
		nodes[i] = obs.NodeStatus{
			Addr:      p.Addr(),
			Ref:       p.Ref().String(),
			Successor: p.Node().Successor().String(),
			Stable:    true, // simulated rings are built converged
			Stored:    p.Store().Len(),
			Served:    p.ServedProbes(),
		}
	}
	return obs.Compute(nodes, &g)
}

// Scheme is a convenience for building the paper's default scheme with a
// deterministic seed, compiled for bulk hashing.
func Scheme(f minhash.Family, seed int64) (*minhash.Scheme, error) {
	s, err := minhash.NewDefaultScheme(f, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	return s.Compiled(), nil
}
