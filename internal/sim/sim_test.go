package sim

import (
	"math/rand"
	"testing"

	"p2prange/internal/minhash"
	"p2prange/internal/peer"
	"p2prange/internal/rangeset"
	"p2prange/internal/store"
	"p2prange/internal/workload"
)

func testScheme(t testing.TB) *minhash.Scheme {
	t.Helper()
	s, err := Scheme(minhash.ApproxMinWise, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{N: 0, Peer: peer.Config{}}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := NewCluster(ClusterConfig{N: 5}); err == nil {
		t.Error("missing scheme accepted")
	}
}

func TestClusterUniqueIDs(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 200, Peer: peer.Config{Scheme: testScheme(t)}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint32]bool{}
	for _, p := range c.Peers {
		if seen[p.Node().ID()] {
			t.Fatal("duplicate chord ID in cluster")
		}
		seen[p.Node().ID()] = true
	}
	if c.N() != 200 {
		t.Errorf("N = %d", c.N())
	}
}

func TestStoreByIDPlacesAtOwner(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 32, Peer: peer.Config{Scheme: testScheme(t)}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	id := uint32(0xdeadbeef)
	part := store.Partition{Relation: "R", Attribute: "a", Range: rangeset.Range{Lo: 1, Hi: 2}}
	hops, err := c.StoreByID(c.RandomPeer(rng), id, part)
	if err != nil {
		t.Fatal(err)
	}
	if hops < 0 {
		t.Errorf("hops = %d", hops)
	}
	// Exactly the owner peer holds it.
	holders := 0
	for _, p := range c.Peers {
		if p.Store().Len() > 0 {
			holders++
			if !p.Node().Owns(id) {
				t.Error("descriptor stored at a non-owner")
			}
		}
	}
	if holders != 1 {
		t.Errorf("%d holders, want 1", holders)
	}
	if c.TotalStored() != 1 {
		t.Errorf("TotalStored = %d", c.TotalStored())
	}
}

func TestRunQualityBasics(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 12, Peer: peer.Config{Scheme: testScheme(t)}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunQuality(c, QualityConfig{Queries: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured != 400 { // 20% warm-up of 500
		t.Errorf("Measured = %d, want 400", res.Measured)
	}
	if res.Similarity.N() != res.Measured || res.Recall.N() != res.Measured {
		t.Error("metric counts disagree with Measured")
	}
	if res.Matched == 0 {
		t.Error("nothing matched after warm-up; caching must be broken")
	}
	if res.Matched > res.Measured {
		t.Error("matched exceeds measured")
	}
	// Stored descriptors: every non-exact query cached at L identifiers.
	if c.TotalStored() == 0 {
		t.Error("no descriptors cached")
	}
}

func TestRunQualityDeterministic(t *testing.T) {
	run := func() *QualityResult {
		c, err := NewCluster(ClusterConfig{N: 8, Peer: peer.Config{Scheme: testScheme(t)}})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunQuality(c, QualityConfig{Queries: 300, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Matched != b.Matched || a.Exact != b.Exact {
		t.Errorf("runs diverged: %d/%d vs %d/%d", a.Matched, a.Exact, b.Matched, b.Exact)
	}
}

func TestRunQualityPaddingImprovesFullRecall(t *testing.T) {
	run := func(pad float64) *QualityResult {
		scheme, err := Scheme(minhash.ApproxMinWise, 5)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCluster(ClusterConfig{
			N:    16,
			Peer: peer.Config{Scheme: scheme, Measure: store.MatchContainment},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunQuality(c, QualityConfig{Queries: 2000, Seed: 5, PadFrac: pad})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	padded, plain := run(0.2), run(0)
	if padded.Recall.AtLeast(0.9999) <= plain.Recall.AtLeast(0.9999) {
		t.Errorf("padding did not raise fully-answered: %.1f%% vs %.1f%% (Fig. 10 shape)",
			padded.Recall.AtLeast(0.9999), plain.Recall.AtLeast(0.9999))
	}
}

func TestScaleWorkload(t *testing.T) {
	w := NewScaleWorkload(testScheme(t), 500, 6)
	if len(w.Ranges) != 500 || len(w.IDs) != 500 {
		t.Fatalf("workload sizes: %d ranges, %d id sets", len(w.Ranges), len(w.IDs))
	}
	if w.Stored() != 500*minhash.DefaultL {
		t.Errorf("Stored = %d", w.Stored())
	}
	seen := map[rangeset.Range]bool{}
	for _, q := range w.Ranges {
		if seen[q] {
			t.Fatal("duplicate range in unique workload")
		}
		seen[q] = true
	}
	tr := w.Truncate(100)
	if len(tr.Ranges) != 100 {
		t.Errorf("Truncate(100) kept %d", len(tr.Ranges))
	}
	if got := w.Truncate(10_000); len(got.Ranges) != 500 {
		t.Errorf("over-truncate kept %d", len(got.Ranges))
	}
}

func TestRunScale(t *testing.T) {
	scheme := testScheme(t)
	w := NewScaleWorkload(scheme, 300, 7)
	res, err := RunScale(ClusterConfig{N: 40, Peer: peer.Config{Scheme: scheme}}, w, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 40 {
		t.Errorf("N = %d", res.N)
	}
	// Some stores may deduplicate (same id+range collisions are rare but
	// possible), so Stored is close to but at most the workload total.
	if res.Stored == 0 || res.Stored > w.Stored() {
		t.Errorf("Stored = %d, workload = %d", res.Stored, w.Stored())
	}
	if res.Load.Mean <= 0 || res.Load.P99 < res.Load.Mean {
		t.Errorf("load summary %+v", res.Load)
	}
	if res.PathLength.N() != 300*minhash.DefaultL {
		t.Errorf("path samples = %d", res.PathLength.N())
	}
	// Mean path length should be around ½ log2(40) ≈ 2.7; generous band.
	if m := res.PathLength.Mean(); m < 1 || m > 6 {
		t.Errorf("mean path length = %g", m)
	}
}

func TestRunQualityCustomWorkload(t *testing.T) {
	c, err := NewCluster(ClusterConfig{N: 8, Peer: peer.Config{Scheme: testScheme(t)}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunQuality(c, QualityConfig{
		Queries:  200,
		Seed:     9,
		Workload: workload.NewClustered(0, 1000, 3, 20, 200, 9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Measured == 0 {
		t.Error("no measurements")
	}
}
