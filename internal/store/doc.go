// Package store implements the per-peer partition store of the paper's
// Sec. 4 protocol: hash buckets keyed by 32-bit identifiers, each holding
// descriptors of cached data partitions.
//
// A descriptor (Partition) names a horizontal partition — the tuples of
// one relation selected by a range predicate on one attribute — and the
// peer that materialized it. Descriptors are what travel through the DHT:
// a partition is published under each of its l LSH identifiers (see
// internal/minhash), so the bucket for any one identifier of a similar
// query range likely contains it.
//
// Lookup locates the bucket for an identifier and picks the best-matching
// descriptor under a similarity measure (Sec. 5.2): MatchJaccard scores
// candidates by Jaccard similarity |Q∩P|/|Q∪P| — the measure the hash
// family is calibrated for (Figs. 6-8) — while MatchContainment scores by
// |Q∩P|/|Q|, which rewards supersets of the query and lifts full-recall
// answers from ~35% to ~60% of queries in Fig. 9.
//
// Two extensions ride on the same structure. NewBounded caps the number
// of cached descriptors with least-recently-matched eviction (the paper
// assumes unbounded caches; the "capacity" ablation measures the
// degradation). The peer index (Sec. 5.3) searches every bucket a peer
// owns rather than only the requested one, trading per-lookup work for
// recall.
//
// The store is also the write-through point for durability: SetJournal
// attaches a Journal (implemented by internal/wal) that is called under
// the store's write lock on every admission, upgrade, deletion,
// eviction, and arc extraction — so journal order always equals apply
// order, and boot-time replay (wal.StoreRestorer) reconstructs the
// store exactly. Evictions are journaled with the exact victim before
// the displacing insert, so replay on a bounded store never re-runs the
// LRU choice. Journal appends only buffer; the fsync barrier lives in
// the peer's acknowledgement path (see docs/DURABILITY.md).
package store
