package store

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"p2prange/internal/rangeset"
)

// ID is a bucket identifier in the 32-bit identifier space.
type ID = uint32

// Partition describes one cached horizontal partition: the tuples of
// Relation selected by Range over Attribute, materialized at the peer
// with transport address Holder. The descriptor is what travels through
// the DHT; tuple data is fetched from the holder afterwards.
//
// Version and Origin are replication metadata: the bucket owner that
// first admitted the descriptor stamps it with its own address and a
// locally monotonic version, and pushes the stamped copy to its
// successors. Anti-entropy compares versions per descriptor key, so a
// replica holding an older (or no) copy is repaired from the owner.
// Identity (Key) is unversioned — two copies of the same partition at
// different versions are the same descriptor, newest metadata wins.
type Partition struct {
	Relation  string
	Attribute string
	Range     rangeset.Range
	Holder    string
	Version   uint64
	Origin    string
}

// Key is the identity of a partition for deduplication.
func (p Partition) Key() string {
	return fmt.Sprintf("%s.%s%s", p.Relation, p.Attribute, p.Range)
}

// String formats the partition descriptor.
func (p Partition) String() string {
	return fmt.Sprintf("%s.%s%s@%s", p.Relation, p.Attribute, p.Range, p.Holder)
}

// Measure selects the bucket-level similarity used to pick the best match.
type Measure int

const (
	// MatchJaccard scores candidates by Jaccard set similarity, the
	// measure the hash family is built on.
	MatchJaccard Measure = iota
	// MatchContainment scores candidates by |Q ∩ R| / |Q|: how much of the
	// query the candidate answers. Not a metric, but the more useful match
	// measure once the bucket is located (Fig. 9).
	MatchContainment
)

// String names the measure as in the paper's figures.
func (m Measure) String() string {
	switch m {
	case MatchJaccard:
		return "Jaccard"
	case MatchContainment:
		return "Containment"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Score computes the measure for query q against candidate r.
func (m Measure) Score(q, r rangeset.Range) float64 {
	switch m {
	case MatchContainment:
		return q.Containment(r)
	default:
		return q.Jaccard(r)
	}
}

// Match is a scored candidate returned by a bucket search.
type Match struct {
	Partition Partition
	Score     float64
}

// Journal receives every mutation of a store, in apply order, for
// write-through persistence (internal/wal implements it). Methods are
// invoked under the store's write lock, so implementations must only
// buffer — never block on IO — and must not call back into the store.
// Durability is a separate barrier (wal.Log.Commit), taken by callers
// on acknowledgment paths.
type Journal interface {
	// Put records a descriptor admission or in-place version upgrade.
	Put(id ID, p Partition)
	// Evict records a descriptor removal (capacity eviction or Delete).
	Evict(id ID, key string)
	// DropArc records ExtractArc removing every bucket on (from, to].
	DropArc(from, to ID)
}

// Store holds the buckets owned by one peer. Safe for concurrent use.
// With a positive capacity, the store evicts its least-recently-matched
// descriptor to admit a new one (the paper assumes unbounded caches; the
// capacity ablation measures what bounding them costs).
type Store struct {
	mu      sync.RWMutex
	buckets map[ID][]Partition
	count   int // total stored descriptors across buckets
	cap     int // 0 = unbounded
	journal Journal

	// Recency tracking, maintained only on bounded stores: an intrusive
	// LRU list (most-recently-matched at the front) plus an index from
	// bucket-qualified key to list element, so both a touch and an
	// eviction are O(1) instead of a full descriptor scan.
	lru   *list.List
	index map[string]*list.Element
}

// lruEntry locates one descriptor from its LRU list slot.
type lruEntry struct {
	id  ID
	key string // entryKey(id, p)
}

// New returns an empty, unbounded store.
func New() *Store {
	return &Store{buckets: make(map[ID][]Partition)}
}

// NewBounded returns a store that holds at most capacity descriptors,
// evicting the least-recently-matched one on overflow.
func NewBounded(capacity int) *Store {
	s := New()
	s.cap = capacity
	s.lru = list.New()
	s.index = make(map[string]*list.Element)
	return s
}

// SetJournal attaches (or, with nil, detaches) the store's write-ahead
// journal. Attach it only after any recovery replay has finished, or
// replayed mutations would be re-journaled.
func (s *Store) SetJournal(j Journal) {
	s.mu.Lock()
	s.journal = j
	s.mu.Unlock()
}

// entryKey identifies one descriptor within one bucket for LRU tracking.
func entryKey(id ID, p Partition) string {
	return fmt.Sprintf("%08x/%s", id, p.Key())
}

// Put stores the partition descriptor in bucket id. Exact duplicates
// (same relation, attribute, and range) are ignored; the first holder
// wins, as in the paper's protocol where only missing partitions are
// cached. The one exception is replication metadata: a duplicate
// carrying a strictly higher Version replaces the stored copy in place,
// so anti-entropy can upgrade an unstamped or stale replica without
// changing the descriptor count. It reports whether the descriptor was
// newly stored. A bounded store at capacity evicts its
// least-recently-matched descriptor first.
func (s *Store) Put(id ID, p Partition) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.buckets[id] {
		if q.Relation == p.Relation && q.Attribute == p.Attribute && q.Range == p.Range {
			if p.Version > q.Version {
				s.buckets[id][i] = p
				// A version upgrade is a repair of a live descriptor:
				// refresh its recency so a freshly repaired hot replica is
				// not the next eviction victim.
				s.touchLocked(id, p)
				if s.journal != nil {
					s.journal.Put(id, p)
				}
			}
			return false
		}
	}
	if s.cap > 0 && s.count >= s.cap {
		s.evictLocked()
	}
	s.buckets[id] = append(s.buckets[id], p)
	s.touchLocked(id, p)
	s.count++
	if s.journal != nil {
		s.journal.Put(id, p)
	}
	return true
}

// touchLocked moves the descriptor to the LRU front, inserting it if
// new. A no-op on unbounded stores, which track no recency. Caller holds
// the write lock.
func (s *Store) touchLocked(id ID, p Partition) {
	if s.cap == 0 {
		return
	}
	k := entryKey(id, p)
	if el, ok := s.index[k]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.index[k] = s.lru.PushFront(lruEntry{id: id, key: k})
}

// dropLocked removes the descriptor's LRU state, if tracked. Caller
// holds the write lock.
func (s *Store) dropLocked(id ID, p Partition) {
	if s.cap == 0 {
		return
	}
	k := entryKey(id, p)
	if el, ok := s.index[k]; ok {
		s.lru.Remove(el)
		delete(s.index, k)
	}
}

// evictLocked removes the least-recently-matched descriptor — the back
// of the LRU list, in O(bucket) rather than a scan of every descriptor.
// Caller holds the write lock.
func (s *Store) evictLocked() {
	el := s.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(lruEntry)
	s.lru.Remove(el)
	delete(s.index, e.key)
	bucket := s.buckets[e.id]
	for i, p := range bucket {
		if entryKey(e.id, p) == e.key {
			// Journaled before the insert that displaces it, so replay
			// deletes this exact victim instead of re-running LRU choice.
			if s.journal != nil {
				s.journal.Evict(e.id, p.Key())
			}
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(s.buckets, e.id)
	} else {
		s.buckets[e.id] = bucket
	}
	s.count--
}

// Delete removes the descriptor with the given Key from bucket id,
// reporting whether it was present. It is the replay complement of the
// journal's Evict record, and is safe on descriptors the store no
// longer holds.
func (s *Store) Delete(id ID, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	bucket := s.buckets[id]
	for i, p := range bucket {
		if p.Key() != key {
			continue
		}
		s.dropLocked(id, p)
		if s.journal != nil {
			s.journal.Evict(id, key)
		}
		bucket = append(bucket[:i], bucket[i+1:]...)
		if len(bucket) == 0 {
			delete(s.buckets, id)
		} else {
			s.buckets[id] = bucket
		}
		s.count--
		return true
	}
	return false
}

// FindBest scans bucket id for the best match for query q on relation and
// attribute under measure. ok is true only when some candidate scores
// above zero; a zero-score best candidate is still returned (with
// ok=false) so callers can tell an empty bucket from a dissimilar one.
// On bounded stores a positive match refreshes the entry's LRU position.
func (s *Store) FindBest(id ID, relation, attribute string, q rangeset.Range, measure Measure) (Match, bool) {
	s.mu.RLock()
	m, ok := bestOf(s.buckets[id], relation, attribute, q, measure)
	bounded := s.cap > 0
	s.mu.RUnlock()
	if !ok || !bounded {
		return m, ok
	}
	// Positive match on a bounded store: upgrade to the write lock only
	// now, so concurrent misses (and concurrent hits' scans) share the
	// read lock. The entry may have been evicted between the two locks —
	// touch it only if the index still knows it.
	s.mu.Lock()
	if el, present := s.index[entryKey(id, m.Partition)]; present {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	return m, ok
}

// FindBestAnywhere searches every bucket the peer owns (the Section 5.3
// peer-wide index). With few peers this sees most of the system's
// partitions; with many peers it degenerates to single-bucket search.
func (s *Store) FindBestAnywhere(relation, attribute string, q rangeset.Range, measure Measure) (Match, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best Match
	found := false
	for _, bucket := range s.buckets {
		if m, ok := bestOf(bucket, relation, attribute, q, measure); ok && (!found || better(m, best)) {
			best, found = m, true
		}
	}
	return best, found
}

// better reports whether candidate m beats the current best: higher
// score, or — on an exact score tie — the lexicographically lowest
// partition key. The tie-break keeps replicated copies deterministic:
// different peers hold the same descriptors in different append orders
// (and FindBestAnywhere walks buckets in map order), so without it
// equally-scored candidates would resolve differently per replica and
// load-aware replica routing would return answer A or B depending on
// which copy served the probe.
func better(m, best Match) bool {
	if m.Score != best.Score {
		return m.Score > best.Score
	}
	return m.Partition.Key() < best.Partition.Key()
}

func bestOf(bucket []Partition, relation, attribute string, q rangeset.Range, measure Measure) (Match, bool) {
	var best Match
	found := false
	for _, p := range bucket {
		if p.Relation != relation || p.Attribute != attribute {
			continue
		}
		m := Match{Partition: p, Score: measure.Score(q, p.Range)}
		if !found || better(m, best) {
			best = m
			found = true
		}
	}
	return best, found && best.Score > 0
}

// Bucket returns a copy of the descriptors in bucket id.
func (s *Store) Bucket(id ID) []Partition {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Partition(nil), s.buckets[id]...)
}

// Len returns the total number of stored descriptors (the per-node load
// the paper plots in Fig. 11).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Buckets returns the number of non-empty buckets.
func (s *Store) Buckets() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.buckets)
}

// IDs returns the bucket identifiers in ascending order.
func (s *Store) IDs() []ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]ID, 0, len(s.buckets))
	for id := range s.buckets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ExtractArc removes and returns all buckets whose identifier lies on the
// arc (from, to] of the ring. It implements data handoff when ring
// ownership changes (a predecessor joins or this peer leaves).
func (s *Store) ExtractArc(from, to ID) map[ID][]Partition {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[ID][]Partition)
	for id, bucket := range s.buckets {
		if betweenRightIncl(from, to, id) {
			out[id] = bucket
			s.count -= len(bucket)
			delete(s.buckets, id)
			for _, p := range bucket {
				s.dropLocked(id, p)
			}
		}
	}
	// One arc record covers every removed bucket; an empty extraction
	// journals nothing.
	if s.journal != nil && len(out) > 0 {
		s.journal.DropArc(from, to)
	}
	return out
}

// Absorb merges buckets produced by ExtractArc into this store.
func (s *Store) Absorb(buckets map[ID][]Partition) {
	for id, bucket := range buckets {
		for _, p := range bucket {
			s.Put(id, p)
		}
	}
}

// Has reports whether bucket id already holds a descriptor with p's
// identity (relation, attribute, range), at any version.
func (s *Store) Has(id ID, p Partition) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, q := range s.buckets[id] {
		if q.Relation == p.Relation && q.Attribute == p.Attribute && q.Range == p.Range {
			return true
		}
	}
	return false
}

// Get returns the descriptor in bucket id with the given Key.
func (s *Store) Get(id ID, key string) (Partition, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.buckets[id] {
		if p.Key() == key {
			return p, true
		}
	}
	return Partition{}, false
}

// Digest is a version vector over a set of buckets: descriptor key ->
// version, per bucket. Anti-entropy ships digests instead of descriptors
// so only missing or stale copies travel.
type Digest = map[ID]map[string]uint64

// Digest summarizes every bucket accepted by keep (nil keeps all) as
// descriptor-key -> version maps.
func (s *Store) Digest(keep func(ID) bool) Digest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(Digest)
	for id, bucket := range s.buckets {
		if keep != nil && !keep(id) {
			continue
		}
		vv := make(map[string]uint64, len(bucket))
		for _, p := range bucket {
			vv[p.Key()] = p.Version
		}
		out[id] = vv
	}
	return out
}

// MissingFrom compares an offered digest against local state and returns
// the keys this store lacks — absent entirely, or held at a strictly
// lower version. The sender repairs the returned keys by pushing full
// descriptors.
func (s *Store) MissingFrom(offered Digest) map[ID][]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var missing map[ID][]string
	for id, vv := range offered {
		local := make(map[string]uint64, len(s.buckets[id]))
		for _, p := range s.buckets[id] {
			local[p.Key()] = p.Version
		}
		for key, ver := range vv {
			have, ok := local[key]
			if ok && have >= ver {
				continue
			}
			if missing == nil {
				missing = make(map[ID][]string)
			}
			missing[id] = append(missing[id], key)
		}
	}
	return missing
}

// betweenRightIncl mirrors chord.BetweenRightIncl without importing chord.
func betweenRightIncl(a, b, x ID) bool {
	if x == b {
		return true
	}
	if a < b {
		return a < x && x < b
	}
	return x > a || x < b
}
