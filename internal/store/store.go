package store

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"p2prange/internal/rangeset"
)

// ID is a bucket identifier in the 32-bit identifier space.
type ID = uint32

// Partition describes one cached horizontal partition: the tuples of
// Relation selected by Range over Attribute, materialized at the peer
// with transport address Holder. The descriptor is what travels through
// the DHT; tuple data is fetched from the holder afterwards.
//
// Version and Origin are replication metadata: the bucket owner that
// first admitted the descriptor stamps it with its own address and a
// locally monotonic version, and pushes the stamped copy to its
// successors. Anti-entropy compares versions per descriptor key, so a
// replica holding an older (or no) copy is repaired from the owner.
// Identity (Key) is unversioned — two copies of the same partition at
// different versions are the same descriptor, newest metadata wins.
type Partition struct {
	Relation  string
	Attribute string
	Range     rangeset.Range
	Holder    string
	Version   uint64
	Origin    string
}

// Key is the identity of a partition for deduplication.
func (p Partition) Key() string {
	return fmt.Sprintf("%s.%s%s", p.Relation, p.Attribute, p.Range)
}

// String formats the partition descriptor.
func (p Partition) String() string {
	return fmt.Sprintf("%s.%s%s@%s", p.Relation, p.Attribute, p.Range, p.Holder)
}

// Measure selects the bucket-level similarity used to pick the best match.
type Measure int

const (
	// MatchJaccard scores candidates by Jaccard set similarity, the
	// measure the hash family is built on.
	MatchJaccard Measure = iota
	// MatchContainment scores candidates by |Q ∩ R| / |Q|: how much of the
	// query the candidate answers. Not a metric, but the more useful match
	// measure once the bucket is located (Fig. 9).
	MatchContainment
)

// String names the measure as in the paper's figures.
func (m Measure) String() string {
	switch m {
	case MatchJaccard:
		return "Jaccard"
	case MatchContainment:
		return "Containment"
	default:
		return fmt.Sprintf("Measure(%d)", int(m))
	}
}

// Score computes the measure for query q against candidate r.
func (m Measure) Score(q, r rangeset.Range) float64 {
	switch m {
	case MatchContainment:
		return q.Containment(r)
	default:
		return q.Jaccard(r)
	}
}

// Match is a scored candidate returned by a bucket search.
type Match struct {
	Partition Partition
	Score     float64
}

// Journal receives every mutation of a store, in apply order, for
// write-through persistence (internal/wal implements it). Methods are
// invoked under the store's write lock, so implementations must only
// buffer — never block on IO — and must not call back into the store.
// Durability is a separate barrier (wal.Log.Commit), taken by callers
// on acknowledgment paths.
type Journal interface {
	// Put records a descriptor admission or in-place version upgrade.
	Put(id ID, p Partition)
	// Evict records a descriptor removal (capacity eviction or Delete).
	Evict(id ID, key string)
	// DropArc records ExtractArc removing every bucket on (from, to].
	DropArc(from, to ID)
}

// Store holds the buckets owned by one peer. Safe for concurrent use.
// With a positive capacity, the store evicts its least-recently-matched
// descriptor to admit a new one (the paper assumes unbounded caches; the
// capacity ablation measures what bounding them costs).
//
// With a segment tier attached (SetSegments), the store becomes a
// bounded read-through cache over a sealed on-disk segment: reads merge
// both tiers (memory wins per identity), misses served from disk are
// admitted back into memory, and capacity evictions silently drop
// segment-backed entries — the overlay bookkeeping that makes this safe
// lives in tiered.go.
type Store struct {
	mu      sync.RWMutex
	buckets map[ID][]Partition
	count   int // descriptors resident in memory
	cap     int // 0 = unbounded
	journal Journal

	// Recency tracking, maintained only on bounded stores: an intrusive
	// LRU list (most-recently-matched at the front) plus an index from
	// bucket-qualified key to list element, so both a touch and an
	// eviction are O(1) instead of a full descriptor scan.
	lru   *list.List
	index map[string]*list.Element

	// Two-tier state (tiered.go). total is the logical descriptor count
	// across both tiers; pinned/tombs/arcTombs track where memory
	// diverges from the sealed segment, stamped with the WAL epoch whose
	// fold absorbs the divergence.
	tiered   bool
	segs     SegmentSource
	total    int
	pinned   map[string]pin
	tombs    map[string]uint64
	arcTombs []arcTomb
	epochFn  func() uint64
}

// lruEntry locates one descriptor from its LRU list slot.
type lruEntry struct {
	id  ID
	key string // entryKey(id, p)
}

// New returns an empty, unbounded store.
func New() *Store {
	return &Store{buckets: make(map[ID][]Partition)}
}

// NewBounded returns a store that holds at most capacity descriptors,
// evicting the least-recently-matched one on overflow.
func NewBounded(capacity int) *Store {
	s := New()
	s.cap = capacity
	s.lru = list.New()
	s.index = make(map[string]*list.Element)
	return s
}

// SetJournal attaches (or, with nil, detaches) the store's write-ahead
// journal. Attach it only after any recovery replay has finished, or
// replayed mutations would be re-journaled. A journal that also exposes
// Epoch() uint64 (wal.Log does) lets the two-tier overlay stamp pins
// and tombstones with the WAL epoch that will fold them away.
func (s *Store) SetJournal(j Journal) {
	s.mu.Lock()
	s.journal = j
	s.epochFn = nil
	if e, ok := j.(interface{ Epoch() uint64 }); ok {
		s.epochFn = e.Epoch
	}
	s.mu.Unlock()
}

// entryKey identifies one descriptor within one bucket for LRU tracking.
func entryKey(id ID, p Partition) string {
	return entryKeyStr(id, p.Key())
}

// entryKeyStr is entryKey from an already-built identity key.
func entryKeyStr(id ID, key string) string {
	return fmt.Sprintf("%08x/%s", id, key)
}

// Put stores the partition descriptor in bucket id. Exact duplicates
// (same relation, attribute, and range) are ignored; the first holder
// wins, as in the paper's protocol where only missing partitions are
// cached. The one exception is replication metadata: a duplicate
// carrying a strictly higher Version replaces the stored copy in place,
// so anti-entropy can upgrade an unstamped or stale replica without
// changing the descriptor count. It reports whether the descriptor was
// newly stored. A bounded store at capacity evicts its
// least-recently-matched descriptor first.
func (s *Store) Put(id ID, p Partition) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.buckets[id] {
		if q.Relation == p.Relation && q.Attribute == p.Attribute && q.Range == p.Range {
			if p.Version > q.Version {
				s.buckets[id][i] = p
				// A version upgrade is a repair of a live descriptor:
				// refresh its recency so a freshly repaired hot replica is
				// not the next eviction victim (journalPutLocked pins it
				// instead on a tiered store — it is newer than the segment
				// copy now, so it must not be evicted before the next fold).
				s.touchLocked(id, p)
				s.journalPutLocked(id, p)
			}
			return false
		}
	}
	// Not in memory. On a tiered store the identity may still live in the
	// segment: a same-or-newer disk copy makes this put a duplicate, an
	// older one makes it an upgrade — either way the descriptor count is
	// unchanged. Only a descriptor absent from both tiers is new.
	upgrade := false
	if s.tiered && s.segs != nil && !s.maskedLocked(id, p.Key()) {
		metMissDisk.Inc()
		if q, ok, err := s.segs.Get(id, p.Key()); err != nil {
			metDiskErrs.Inc()
		} else if ok {
			metMissDiskHits.Inc()
			if p.Version <= q.Version {
				return false
			}
			upgrade = true
		}
	}
	if s.cap > 0 && s.count >= s.cap {
		s.evictLocked()
	}
	s.buckets[id] = append(s.buckets[id], p)
	s.touchLocked(id, p)
	s.count++
	s.journalPutLocked(id, p)
	if upgrade {
		return false
	}
	if s.tiered {
		s.total++
	}
	return true
}

// touchLocked moves the descriptor to the LRU front, inserting it if
// new. A no-op on unbounded stores, which track no recency. Caller holds
// the write lock.
func (s *Store) touchLocked(id ID, p Partition) {
	if s.cap == 0 {
		return
	}
	k := entryKey(id, p)
	if _, isPinned := s.pinned[k]; isPinned {
		return // pinned entries live outside the LRU (tiered.go)
	}
	if el, ok := s.index[k]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.index[k] = s.lru.PushFront(lruEntry{id: id, key: k})
}

// dropLocked removes the descriptor's LRU state, if tracked. Caller
// holds the write lock.
func (s *Store) dropLocked(id ID, p Partition) {
	if s.cap == 0 {
		return
	}
	k := entryKey(id, p)
	if el, ok := s.index[k]; ok {
		s.lru.Remove(el)
		delete(s.index, k)
	}
}

// evictLocked removes the least-recently-matched descriptor — the back
// of the LRU list, in O(bucket) rather than a scan of every descriptor.
// Caller holds the write lock.
func (s *Store) evictLocked() {
	el := s.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(lruEntry)
	s.lru.Remove(el)
	delete(s.index, e.key)
	bucket := s.buckets[e.id]
	for i, p := range bucket {
		if entryKey(e.id, p) == e.key {
			// Untiered: journaled before the insert that displaces it, so
			// replay deletes this exact victim instead of re-running LRU
			// choice. Tiered: silent — every LRU entry is segment-backed
			// by construction (unfolded descriptors are pinned outside the
			// list), so dropping it from memory loses nothing, and
			// journaling an evict here would fold the descriptor away.
			if !s.tiered && s.journal != nil {
				s.journal.Evict(e.id, p.Key())
			}
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(s.buckets, e.id)
	} else {
		s.buckets[e.id] = bucket
	}
	s.count--
}

// Delete removes the descriptor with the given Key from bucket id,
// reporting whether it was present. It is the replay complement of the
// journal's Evict record, and is safe on descriptors the store no
// longer holds.
func (s *Store) Delete(id ID, key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	bucket := s.buckets[id]
	for i, p := range bucket {
		if p.Key() != key {
			continue
		}
		s.dropLocked(id, p)
		if s.journal != nil {
			s.journal.Evict(id, key)
		}
		if s.tiered {
			// Mask the segment's copy (if any) until the fold applies the
			// evict record, and release the pin if it had one.
			k := entryKeyStr(id, key)
			delete(s.pinned, k)
			s.tombs[k] = s.epochLocked()
			s.total--
		}
		bucket = append(bucket[:i], bucket[i+1:]...)
		if len(bucket) == 0 {
			delete(s.buckets, id)
		} else {
			s.buckets[id] = bucket
		}
		s.count--
		return true
	}
	// Not resident — on a tiered store the identity may still live in the
	// segment; deleting it is a journaled evict plus a tombstone.
	if s.tiered && s.segs != nil && !s.maskedLocked(id, key) {
		metMissDisk.Inc()
		if _, ok, err := s.segs.Get(id, key); err != nil {
			metDiskErrs.Inc()
		} else if ok {
			metMissDiskHits.Inc()
			if s.journal != nil {
				s.journal.Evict(id, key)
			}
			s.tombs[entryKeyStr(id, key)] = s.epochLocked()
			s.total--
			return true
		}
	}
	return false
}

// FindBest scans bucket id for the best match for query q on relation and
// attribute under measure, merging the memory and segment tiers when a
// disk tier is attached. ok is true only when some candidate scores
// above zero; a zero-score best candidate is still returned (with
// ok=false) so callers can tell an empty bucket from a dissimilar one.
// On bounded stores a positive match refreshes the entry's LRU position;
// a positive match served from the segment is admitted into memory.
func (s *Store) FindBest(id ID, relation, attribute string, q rangeset.Range, measure Measure) (Match, bool) {
	return s.FindBestTraced(id, relation, attribute, q, measure, nil)
}

// FindBestAnywhere searches every bucket the peer owns (the Section 5.3
// peer-wide index), both tiers included. With few peers this sees most
// of the system's partitions; with many peers it degenerates to
// single-bucket search.
func (s *Store) FindBestAnywhere(relation, attribute string, q rangeset.Range, measure Measure) (Match, bool) {
	return s.FindBestAnywhereTraced(relation, attribute, q, measure, nil)
}

// better reports whether candidate m beats the current best: higher
// score, or — on an exact score tie — the lexicographically lowest
// partition key. The tie-break keeps replicated copies deterministic:
// different peers hold the same descriptors in different append orders
// (and FindBestAnywhere walks buckets in map order), so without it
// equally-scored candidates would resolve differently per replica and
// load-aware replica routing would return answer A or B depending on
// which copy served the probe.
func better(m, best Match) bool {
	if m.Score != best.Score {
		return m.Score > best.Score
	}
	return m.Partition.Key() < best.Partition.Key()
}

func bestOf(bucket []Partition, relation, attribute string, q rangeset.Range, measure Measure) (Match, bool) {
	best, found := rawBestOf(bucket, relation, attribute, q, measure)
	return best, found && best.Score > 0
}

// rawBestOf is bestOf without the positive-score threshold, so tier
// merges can combine candidates first and apply the threshold once.
func rawBestOf(bucket []Partition, relation, attribute string, q rangeset.Range, measure Measure) (Match, bool) {
	var best Match
	found := false
	for _, p := range bucket {
		if p.Relation != relation || p.Attribute != attribute {
			continue
		}
		m := Match{Partition: p, Score: measure.Score(q, p.Range)}
		if !found || better(m, best) {
			best = m
			found = true
		}
	}
	return best, found
}

// Bucket returns a copy of the descriptors in bucket id, both tiers
// merged (memory wins per identity).
func (s *Store) Bucket(id ID) []Partition {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]Partition(nil), s.buckets[id]...)
	if s.tiered && s.segs != nil && !s.arcDeadLocked(id) && s.segs.MayContain(id) {
		mem := s.buckets[id]
		err := s.segs.Bucket(id, func(p Partition) error {
			if _, dead := s.tombs[entryKeyStr(id, p.Key())]; dead {
				return nil
			}
			if memHasIdentity(mem, p) {
				return nil
			}
			out = append(out, p)
			return nil
		})
		if err != nil {
			metDiskErrs.Inc()
		}
	}
	return out
}

// Len returns the total number of stored descriptors across both tiers
// (the per-node load the paper plots in Fig. 11). MemLen reports how
// many of them are resident in memory.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.tiered {
		return s.total
	}
	return s.count
}

// Buckets returns the number of non-empty buckets, both tiers merged.
func (s *Store) Buckets() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.tiered || s.segs == nil {
		return len(s.buckets)
	}
	return len(s.idSetLocked())
}

// IDs returns the bucket identifiers in ascending order, both tiers
// merged.
func (s *Store) IDs() []ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := s.idSetLocked()
	ids := make([]ID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// idSetLocked collects the non-empty bucket ids across both tiers.
// Caller holds at least the read lock.
func (s *Store) idSetLocked() map[ID]struct{} {
	set := make(map[ID]struct{}, len(s.buckets))
	for id := range s.buckets {
		set[id] = struct{}{}
	}
	if s.tiered && s.segs != nil {
		err := s.segs.Scan(func(id ID, p Partition) error {
			if _, ok := set[id]; ok {
				return nil
			}
			if s.maskedLocked(id, p.Key()) {
				return nil
			}
			set[id] = struct{}{}
			return nil
		})
		if err != nil {
			metDiskErrs.Inc()
		}
	}
	return set
}

// ExtractArc removes and returns all buckets whose identifier lies on the
// arc (from, to] of the ring. It implements data handoff when ring
// ownership changes (a predecessor joins or this peer leaves).
func (s *Store) ExtractArc(from, to ID) map[ID][]Partition {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[ID][]Partition)
	for id, bucket := range s.buckets {
		if betweenRightIncl(from, to, id) {
			out[id] = bucket
			s.count -= len(bucket)
			delete(s.buckets, id)
			for _, p := range bucket {
				s.dropLocked(id, p)
				if s.tiered {
					delete(s.pinned, entryKey(id, p))
					s.total--
				}
			}
		}
	}
	// Tiered: the segment holds descriptors on the arc that were never
	// resident — hand those off too, and mask the whole arc until the
	// fold applies the drop record. Resident copies extracted above
	// dedupe the disk walk (memory is same-or-newer).
	if s.tiered && s.segs != nil {
		err := s.segs.ScanArc(from, to, func(id ID, p Partition) error {
			if s.maskedLocked(id, p.Key()) || memHasIdentity(out[id], p) {
				return nil
			}
			out[id] = append(out[id], p)
			s.total--
			return nil
		})
		if err != nil {
			metDiskErrs.Inc()
		}
	}
	// One arc record covers every removed bucket; an empty extraction
	// journals nothing.
	if len(out) > 0 {
		if s.journal != nil {
			s.journal.DropArc(from, to)
		}
		if s.tiered {
			s.arcTombs = append(s.arcTombs, arcTomb{from: from, to: to, epoch: s.epochLocked()})
		}
	}
	return out
}

// Absorb merges buckets produced by ExtractArc into this store.
func (s *Store) Absorb(buckets map[ID][]Partition) {
	for id, bucket := range buckets {
		for _, p := range bucket {
			s.Put(id, p)
		}
	}
}

// Has reports whether bucket id already holds a descriptor with p's
// identity (relation, attribute, range), at any version, in either tier.
func (s *Store) Has(id ID, p Partition) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if memHasIdentity(s.buckets[id], p) {
		return true
	}
	_, ok := s.diskGetLocked(id, p.Key())
	return ok
}

// Get returns the descriptor in bucket id with the given Key, consulting
// the segment tier on a memory miss.
func (s *Store) Get(id ID, key string) (Partition, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, p := range s.buckets[id] {
		if p.Key() == key {
			return p, true
		}
	}
	return s.diskGetLocked(id, key)
}

// Digest is a version vector over a set of buckets: descriptor key ->
// version, per bucket. Anti-entropy ships digests instead of descriptors
// so only missing or stale copies travel.
type Digest = map[ID]map[string]uint64

// Digest summarizes every bucket accepted by keep (nil keeps all) as
// descriptor-key -> version maps.
func (s *Store) Digest(keep func(ID) bool) Digest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(Digest)
	for id, bucket := range s.buckets {
		if keep != nil && !keep(id) {
			continue
		}
		vv := make(map[string]uint64, len(bucket))
		for _, p := range bucket {
			vv[p.Key()] = p.Version
		}
		out[id] = vv
	}
	if s.tiered && s.segs != nil {
		err := s.segs.Scan(func(id ID, p Partition) error {
			if keep != nil && !keep(id) {
				return nil
			}
			key := p.Key()
			if s.maskedLocked(id, key) {
				return nil
			}
			vv := out[id]
			if _, resident := vv[key]; resident {
				return nil // memory is same-or-newer
			}
			if vv == nil {
				vv = make(map[string]uint64)
				out[id] = vv
			}
			vv[key] = p.Version
			return nil
		})
		if err != nil {
			metDiskErrs.Inc()
		}
	}
	return out
}

// MissingFrom compares an offered digest against local state and returns
// the keys this store lacks — absent entirely, or held at a strictly
// lower version. The sender repairs the returned keys by pushing full
// descriptors.
func (s *Store) MissingFrom(offered Digest) map[ID][]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var missing map[ID][]string
	for id, vv := range offered {
		local := make(map[string]uint64, len(s.buckets[id]))
		for _, p := range s.buckets[id] {
			local[p.Key()] = p.Version
		}
		for key, ver := range vv {
			have, ok := local[key]
			if ok && have >= ver {
				continue
			}
			if !ok {
				// Not resident; the segment may hold a current copy (a
				// deleted identity stays missing — its tombstone masks the
				// disk copy, exactly as if it were absent).
				if q, onDisk := s.diskGetLocked(id, key); onDisk && q.Version >= ver {
					continue
				}
			}
			if missing == nil {
				missing = make(map[ID][]string)
			}
			missing[id] = append(missing[id], key)
		}
	}
	return missing
}

// betweenRightIncl mirrors chord.BetweenRightIncl without importing chord.
func betweenRightIncl(a, b, x ID) bool {
	if x == b {
		return true
	}
	if a < b {
		return a < x && x < b
	}
	return x > a || x < b
}
