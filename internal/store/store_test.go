package store

import (
	"math/rand"
	"sync"
	"testing"

	"p2prange/internal/rangeset"
)

func part(lo, hi int64) Partition {
	return Partition{Relation: "R", Attribute: "a", Range: rangeset.Range{Lo: lo, Hi: hi}, Holder: "h"}
}

func TestPutDeduplicates(t *testing.T) {
	s := New()
	if !s.Put(1, part(0, 10)) {
		t.Error("first Put should store")
	}
	if s.Put(1, part(0, 10)) {
		t.Error("duplicate Put should be ignored")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	// Same range in a different bucket is a separate descriptor.
	if !s.Put(2, part(0, 10)) {
		t.Error("same partition in another bucket should store")
	}
	if s.Len() != 2 || s.Buckets() != 2 {
		t.Errorf("Len=%d Buckets=%d, want 2, 2", s.Len(), s.Buckets())
	}
}

func TestPutFirstHolderWins(t *testing.T) {
	s := New()
	p1 := part(0, 10)
	p2 := p1
	p2.Holder = "other"
	s.Put(1, p1)
	s.Put(1, p2)
	bucket := s.Bucket(1)
	if len(bucket) != 1 || bucket[0].Holder != "h" {
		t.Errorf("bucket = %v, want single entry held by %q", bucket, "h")
	}
}

func TestFindBest(t *testing.T) {
	s := New()
	s.Put(1, part(0, 100))
	s.Put(1, part(40, 60))
	s.Put(1, part(500, 600))

	q := rangeset.Range{Lo: 45, Hi: 55}
	m, ok := s.FindBest(1, "R", "a", q, MatchJaccard)
	if !ok {
		t.Fatal("expected a match")
	}
	if m.Partition.Range != (rangeset.Range{Lo: 40, Hi: 60}) {
		t.Errorf("best Jaccard match = %v", m.Partition.Range)
	}
	if want := q.Jaccard(m.Partition.Range); m.Score != want {
		t.Errorf("score = %g, want %g", m.Score, want)
	}
	// Containment prefers any containing range equally (score 1); the
	// scan keeps the first maximal one.
	m, ok = s.FindBest(1, "R", "a", q, MatchContainment)
	if !ok || m.Score != 1 {
		t.Fatalf("containment match = %+v, %v", m, ok)
	}
}

func TestFindBestFiltersRelationAndAttribute(t *testing.T) {
	s := New()
	s.Put(1, Partition{Relation: "S", Attribute: "a", Range: rangeset.Range{Lo: 0, Hi: 10}})
	s.Put(1, Partition{Relation: "R", Attribute: "b", Range: rangeset.Range{Lo: 0, Hi: 10}})
	if _, ok := s.FindBest(1, "R", "a", rangeset.Range{Lo: 0, Hi: 10}, MatchJaccard); ok {
		t.Error("match crossed relation/attribute boundaries")
	}
}

func TestFindBestEmptyAndDisjoint(t *testing.T) {
	s := New()
	if _, ok := s.FindBest(9, "R", "a", rangeset.Range{Lo: 0, Hi: 1}, MatchJaccard); ok {
		t.Error("empty bucket should not match")
	}
	s.Put(9, part(500, 600))
	m, ok := s.FindBest(9, "R", "a", rangeset.Range{Lo: 0, Hi: 1}, MatchJaccard)
	if ok {
		t.Error("disjoint candidate should report ok=false")
	}
	if m.Partition.Range != (rangeset.Range{Lo: 500, Hi: 600}) {
		t.Error("zero-score best candidate should still be populated")
	}
}

func TestFindBestAnywhere(t *testing.T) {
	s := New()
	s.Put(1, part(0, 10))
	s.Put(2, part(40, 60))
	q := rangeset.Range{Lo: 45, Hi: 55}
	// Bucket 1 has only the poor candidate...
	if m, ok := s.FindBest(1, "R", "a", q, MatchJaccard); ok {
		t.Errorf("bucket 1 should have no positive match, got %+v", m)
	}
	// ...but the peer-wide index (Sec 5.3) sees bucket 2.
	m, ok := s.FindBestAnywhere("R", "a", q, MatchJaccard)
	if !ok || m.Partition.Range != (rangeset.Range{Lo: 40, Hi: 60}) {
		t.Errorf("FindBestAnywhere = %+v, %v", m, ok)
	}
}

func TestMeasureScore(t *testing.T) {
	q := rangeset.Range{Lo: 0, Hi: 9}
	r := rangeset.Range{Lo: 0, Hi: 19}
	if got := MatchJaccard.Score(q, r); got != 0.5 {
		t.Errorf("Jaccard score = %g, want 0.5", got)
	}
	if got := MatchContainment.Score(q, r); got != 1 {
		t.Errorf("containment score = %g, want 1", got)
	}
	if MatchJaccard.String() != "Jaccard" || MatchContainment.String() != "Containment" {
		t.Error("Measure.String mismatch")
	}
}

func TestExtractArcAndAbsorb(t *testing.T) {
	s := New()
	s.Put(10, part(0, 10))
	s.Put(20, part(20, 30))
	s.Put(30, part(40, 50))

	// Arc (15, 25] captures bucket 20 only.
	moved := s.ExtractArc(15, 25)
	if len(moved) != 1 || len(moved[20]) != 1 {
		t.Fatalf("ExtractArc moved %v", moved)
	}
	if s.Len() != 2 {
		t.Errorf("source Len = %d after extract, want 2", s.Len())
	}
	dst := New()
	dst.Absorb(moved)
	if dst.Len() != 1 {
		t.Errorf("dst Len = %d after absorb, want 1", dst.Len())
	}
	// Whole-circle extraction drains everything.
	all := s.ExtractArc(5, 5)
	if len(all) != 2 || s.Len() != 0 {
		t.Errorf("whole-circle extract left Len=%d, moved %d buckets", s.Len(), len(all))
	}
}

func TestExtractArcWrapped(t *testing.T) {
	s := New()
	s.Put(0xfffffff0, part(0, 1))
	s.Put(0x00000010, part(2, 3))
	s.Put(0x80000000, part(4, 5))
	moved := s.ExtractArc(0xffffff00, 0x20) // wrapped arc
	if len(moved) != 2 {
		t.Fatalf("wrapped arc moved %d buckets, want 2", len(moved))
	}
}

func TestIDsSorted(t *testing.T) {
	s := New()
	for _, id := range []ID{5, 1, 9, 3} {
		s.Put(id, part(int64(id), int64(id)+1))
	}
	ids := s.IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

func TestPartitionKeyAndString(t *testing.T) {
	p := part(0, 10)
	q := part(0, 11)
	if p.Key() == q.Key() {
		t.Error("distinct partitions share a key")
	}
	if p.String() == "" || p.Key() == "" {
		t.Error("empty formatting")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 500; i++ {
				lo := rng.Int63n(1000)
				s.Put(uint32(rng.Intn(50)), part(lo, lo+rng.Int63n(100)))
				s.FindBest(uint32(rng.Intn(50)), "R", "a", rangeset.Range{Lo: lo, Hi: lo + 10}, MatchJaccard)
				s.FindBestAnywhere("R", "a", rangeset.Range{Lo: lo, Hi: lo + 10}, MatchContainment)
			}
		}(g)
	}
	wg.Wait()
	if s.Len() == 0 {
		t.Error("nothing stored")
	}
}

// Property: FindBest returns the maximal score in the bucket.
func TestFindBestIsMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		s := New()
		n := 1 + rng.Intn(20)
		var parts []Partition
		for i := 0; i < n; i++ {
			lo := rng.Int63n(1000)
			p := part(lo, lo+rng.Int63n(200))
			if s.Put(3, p) {
				parts = append(parts, p)
			}
		}
		qlo := rng.Int63n(1000)
		q := rangeset.Range{Lo: qlo, Hi: qlo + rng.Int63n(200)}
		for _, measure := range []Measure{MatchJaccard, MatchContainment} {
			m, ok := s.FindBest(3, "R", "a", q, measure)
			best := 0.0
			for _, p := range parts {
				if sc := measure.Score(q, p.Range); sc > best {
					best = sc
				}
			}
			if ok != (best > 0) {
				t.Fatalf("ok=%v but best=%g", ok, best)
			}
			if ok && m.Score != best {
				t.Fatalf("FindBest score %g, brute force %g", m.Score, best)
			}
		}
	}
}

// Property: ExtractArc + Absorb conserves descriptors, and the extracted
// set is exactly the bucket ids on the arc.
func TestExtractAbsorbConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		s := New()
		n := 1 + rng.Intn(40)
		for i := 0; i < n; i++ {
			lo := rng.Int63n(1000)
			s.Put(rng.Uint32(), part(lo, lo+rng.Int63n(50)))
		}
		total := s.Len()
		from, to := rng.Uint32(), rng.Uint32()
		moved := s.ExtractArc(from, to)
		movedCount := 0
		for id, bucket := range moved {
			if !betweenRightIncl(from, to, id) {
				t.Fatalf("extracted id %08x outside arc (%08x,%08x]", id, from, to)
			}
			movedCount += len(bucket)
		}
		for _, id := range s.IDs() {
			if betweenRightIncl(from, to, id) && from != to {
				t.Fatalf("id %08x on arc (%08x,%08x] left behind", id, from, to)
			}
		}
		if s.Len()+movedCount != total {
			t.Fatalf("conservation violated: %d + %d != %d", s.Len(), movedCount, total)
		}
		dst := New()
		dst.Absorb(moved)
		if s.Len()+dst.Len() != total {
			t.Fatalf("absorb lost descriptors: %d + %d != %d", s.Len(), dst.Len(), total)
		}
	}
}

// Property: Put/FindBest never mutate unrelated buckets.
func TestBucketIsolation(t *testing.T) {
	s := New()
	s.Put(1, part(0, 10))
	snapshot := s.Bucket(1)
	s.Put(2, part(20, 30))
	s.FindBest(2, "R", "a", rangeset.Range{Lo: 0, Hi: 5}, MatchJaccard)
	after := s.Bucket(1)
	if len(after) != len(snapshot) || after[0] != snapshot[0] {
		t.Error("bucket 1 changed by operations on bucket 2")
	}
}

func TestBoundedStoreEvictsLRU(t *testing.T) {
	s := NewBounded(3)
	s.Put(1, part(0, 10))
	s.Put(2, part(20, 30))
	s.Put(3, part(40, 50))
	// Touch buckets 1 and 2 via matches; bucket 3 becomes the LRU victim.
	s.FindBest(1, "R", "a", rangeset.Range{Lo: 0, Hi: 10}, MatchJaccard)
	s.FindBest(2, "R", "a", rangeset.Range{Lo: 20, Hi: 30}, MatchJaccard)
	s.Put(4, part(60, 70)) // overflow: evicts bucket 3's entry
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want capacity 3", s.Len())
	}
	if len(s.Bucket(3)) != 0 {
		t.Error("LRU entry (bucket 3) not evicted")
	}
	for _, id := range []ID{1, 2, 4} {
		if len(s.Bucket(id)) != 1 {
			t.Errorf("bucket %d unexpectedly evicted", id)
		}
	}
}

func TestBoundedStoreNeverExceedsCapacity(t *testing.T) {
	s := NewBounded(10)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		lo := rng.Int63n(1000)
		s.Put(rng.Uint32(), part(lo, lo+rng.Int63n(100)))
		if s.Len() > 10 {
			t.Fatalf("Len = %d exceeds capacity after %d puts", s.Len(), i+1)
		}
	}
	if s.Len() != 10 {
		t.Errorf("Len = %d, want full capacity 10", s.Len())
	}
}

func TestUnboundedStoreNeverEvicts(t *testing.T) {
	s := New()
	for i := 0; i < 200; i++ {
		s.Put(ID(i), part(int64(i), int64(i)+1))
	}
	if s.Len() != 200 {
		t.Errorf("unbounded store evicted: Len = %d", s.Len())
	}
}

func TestFindBestBreaksTiesDeterministically(t *testing.T) {
	// Two candidates overlapping the query symmetrically, so their
	// Jaccard scores tie exactly.
	q := rangeset.Range{Lo: 20, Hi: 30}
	a := part(10, 25) // overlap [20,25]: 6/21
	b := part(25, 40) // overlap [25,30]: 6/21
	if q.Jaccard(a.Range) != q.Jaccard(b.Range) {
		t.Fatalf("test setup: scores differ: %v vs %v", q.Jaccard(a.Range), q.Jaccard(b.Range))
	}
	want := a
	if b.Key() < a.Key() {
		want = b
	}
	// Replicated copies land in different append orders on different
	// peers; both orders must return the same best match.
	for _, order := range [][]Partition{{a, b}, {b, a}} {
		s := New()
		for _, p := range order {
			s.Put(1, p)
		}
		m, ok := s.FindBest(1, "R", "a", q, MatchJaccard)
		if !ok || m.Partition.Key() != want.Key() {
			t.Errorf("order %v: best = %v, want %v", order, m.Partition.Key(), want.Key())
		}
		ma, ok := s.FindBestAnywhere("R", "a", q, MatchJaccard)
		if !ok || ma.Partition.Key() != want.Key() {
			t.Errorf("order %v: FindBestAnywhere best = %v, want %v", order, ma.Partition.Key(), want.Key())
		}
	}
}

func TestReplicaVersionUpgradeInPlace(t *testing.T) {
	s := New()
	p := part(0, 10)
	s.Put(1, p)
	stamped := p
	stamped.Version, stamped.Origin = 7, "owner:1"
	if s.Put(1, stamped) {
		t.Error("version upgrade should not count as a new descriptor")
	}
	if got := s.Bucket(1); len(got) != 1 || got[0].Version != 7 || got[0].Origin != "owner:1" {
		t.Errorf("bucket = %+v, want single copy at version 7", got)
	}
	// A stale (lower-version) duplicate must not downgrade the copy.
	s.Put(1, p)
	if got := s.Bucket(1); got[0].Version != 7 {
		t.Errorf("stale duplicate downgraded version to %d", got[0].Version)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestReplicaDigestAndMissingFrom(t *testing.T) {
	owner := New()
	a, b, c := part(0, 10), part(20, 30), part(40, 50)
	a.Version, b.Version, c.Version = 1, 2, 3
	owner.Put(1, a)
	owner.Put(1, b)
	owner.Put(2, c)

	rep := New()
	rep.Put(1, a) // up to date
	stale := b
	stale.Version = 1 // older copy
	rep.Put(1, stale)
	// bucket 2 entirely absent

	d := owner.Digest(nil)
	if len(d) != 2 || len(d[1]) != 2 || d[2][c.Key()] != 3 {
		t.Fatalf("digest = %v", d)
	}
	missing := rep.MissingFrom(d)
	if len(missing[1]) != 1 || missing[1][0] != b.Key() {
		t.Errorf("missing[1] = %v, want [%s]", missing[1], b.Key())
	}
	if len(missing[2]) != 1 || missing[2][0] != c.Key() {
		t.Errorf("missing[2] = %v, want [%s]", missing[2], c.Key())
	}
	// Repair and re-check: nothing missing afterwards.
	for id, keys := range missing {
		for _, k := range keys {
			p, ok := owner.Get(id, k)
			if !ok {
				t.Fatalf("owner lost %s", k)
			}
			rep.Put(id, p)
		}
	}
	if m := rep.MissingFrom(owner.Digest(nil)); m != nil {
		t.Errorf("still missing after repair: %v", m)
	}
	// Filtered digest keeps only accepted buckets.
	if d := owner.Digest(func(id ID) bool { return id == 2 }); len(d) != 1 || d[2] == nil {
		t.Errorf("filtered digest = %v", d)
	}
}

func TestVersionUpgradeRefreshesLRU(t *testing.T) {
	s := NewBounded(2)
	a, b := part(0, 10), part(20, 30)
	s.Put(1, a) // a is oldest
	s.Put(2, b)
	// Anti-entropy repairs a with a newer version: that must refresh its
	// recency, making b the eviction victim — a repaired hot replica must
	// not be first out the door.
	repaired := a
	repaired.Version = 5
	s.Put(1, repaired)
	s.Put(3, part(40, 50)) // overflow
	if len(s.Bucket(1)) != 1 {
		t.Error("freshly repaired descriptor evicted first")
	}
	if len(s.Bucket(2)) != 0 {
		t.Error("stale descriptor survived eviction")
	}
}

func TestEvictionAfterExtractArc(t *testing.T) {
	// ExtractArc must scrub LRU state: an extracted descriptor can no
	// longer be the eviction victim, and re-absorbing works.
	s := NewBounded(3)
	s.Put(1, part(0, 10))
	s.Put(2, part(20, 30))
	s.Put(3, part(40, 50))
	out := s.ExtractArc(0, 2) // removes buckets 1 and 2
	if s.Len() != 1 {
		t.Fatalf("Len after extract = %d, want 1", s.Len())
	}
	s.Put(4, part(60, 70))
	s.Put(5, part(80, 90))
	s.Put(6, part(100, 110)) // overflow: must evict bucket 3 (oldest live)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if len(s.Bucket(3)) != 0 {
		t.Error("oldest live entry (bucket 3) not evicted")
	}
	s.Absorb(out) // back over capacity triggers further evictions
	if s.Len() != 3 {
		t.Errorf("Len after absorb = %d, want capacity 3", s.Len())
	}
}

func TestConcurrentBoundedFindBest(t *testing.T) {
	// Bounded FindBest scans under the read lock and only upgrades on a
	// hit; hammer hits, misses, and puts concurrently under the race
	// detector.
	s := NewBounded(50)
	for i := int64(0); i < 50; i++ {
		s.Put(ID(i), part(i*10, i*10+5))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 300; i++ {
				id := ID(i % 60)
				s.FindBest(id, "R", "a", rangeset.Range{Lo: int64(id) * 10, Hi: int64(id)*10 + 5}, MatchJaccard)
				if w == 0 {
					s.Put(ID(50+i%10), part(1000+i, 1005+i))
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 50 {
		t.Errorf("Len = %d exceeds capacity", s.Len())
	}
}
