package store

import (
	"p2prange/internal/metrics"
	"p2prange/internal/rangeset"
	"p2prange/internal/trace"
)

var (
	metMissDisk     = metrics.Default.Counter("store.miss_disk")
	metMissDiskHits = metrics.Default.Counter("store.miss_disk_hits")
	metAdmits       = metrics.Default.Counter("store.admits")
	metDiskErrs     = metrics.Default.Counter("store.disk_errors")
)

// SegmentSource is the disk tier behind a read-through store: one sealed
// segment holding the folded image of every descriptor as of its seal
// (wal.SegmentReader implements it). All methods are safe for concurrent
// use and must not call back into the store.
type SegmentSource interface {
	// Len returns the number of descriptors in the segment.
	Len() int
	// MayContain reports whether bucket id may have records here; false
	// is definitive and costs no I/O.
	MayContain(id ID) bool
	// MayContainKey is MayContain for one descriptor identity.
	MayContainKey(id ID, key string) bool
	// Get returns the descriptor with identity key in bucket id.
	Get(id ID, key string) (Partition, bool, error)
	// Bucket calls fn for every descriptor in bucket id, in key order.
	Bucket(id ID, fn func(Partition) error) error
	// Scan calls fn for every descriptor, in (id, key) order.
	Scan(fn func(ID, Partition) error) error
	// ScanArc is Scan restricted to the ring arc (from, to]
	// (from == to means the whole circle).
	ScanArc(from, to ID, fn func(ID, Partition) error) error
}

// The overlay: where memory diverges from the segment, between two
// seals. The segment is immutable, so every divergence is one of three
// kinds, each stamped with the WAL epoch (wal.Log.Epoch) whose fold will
// absorb it — SwapSegments clears entries at or below the folded epoch.
//
//   - pin: a descriptor journaled since the seal (new put or version
//     upgrade). Pinned entries live in memory OUTSIDE the LRU: evicting
//     one before it reaches a segment would lose it, since tiered
//     capacity evictions are silent (see evictLocked).
//   - tombstone: an identity deleted since the seal, masking the
//     segment's copy until the fold applies the evict record.
//   - arc tombstone: an ExtractArc since the seal, masking every
//     segment record on the arc.

// pin marks one in-memory descriptor as not yet segment-backed.
type pin struct {
	id    ID
	epoch uint64
}

// arcTomb masks segment records on the arc (from, to] dropped at epoch.
type arcTomb struct {
	from, to ID
	epoch    uint64
}

// SetSegments switches the store into two-tier mode with src as the disk
// tier (nil is valid: two-tier bookkeeping starts, reads stay
// memory-only until the first SwapSegments). Call it at boot, before any
// descriptors are stored — attached via wal.Options.OnSegment, which
// runs before WAL replay.
func (s *Store) SetSegments(src SegmentSource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tiered = true
	s.segs = src
	s.total = s.count
	if src != nil {
		s.total += src.Len()
	}
	if s.pinned == nil {
		s.pinned = make(map[string]pin)
		s.tombs = make(map[string]uint64)
	}
}

// SwapSegments replaces the disk tier with the segment produced by a
// compaction that folded WAL files up to sequence upto (wired to
// wal.Options.OnSwap). Pins and tombstones stamped at or below upto are
// covered by the new segment and dissolve: pinned descriptors become
// ordinary cache entries (LRU-tracked, evictable), tombstones and arc
// masks drop. Memory above capacity after unpinning is trimmed.
func (s *Store) SwapSegments(src SegmentSource, upto uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segs = src
	for k, pn := range s.pinned {
		if pn.epoch > upto {
			continue
		}
		delete(s.pinned, k)
		if s.cap > 0 {
			if _, ok := s.index[k]; !ok {
				s.index[k] = s.lru.PushFront(lruEntry{id: pn.id, key: k})
			}
		}
	}
	for k, ep := range s.tombs {
		if ep <= upto {
			delete(s.tombs, k)
		}
	}
	kept := s.arcTombs[:0]
	for _, at := range s.arcTombs {
		if at.epoch > upto {
			kept = append(kept, at)
		}
	}
	s.arcTombs = kept
	if s.cap > 0 {
		for s.count > s.cap && s.lru.Len() > 0 {
			s.evictLocked()
		}
	}
}

// MemLen returns the number of descriptors resident in memory — the
// cache occupancy, at most Len().
func (s *Store) MemLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// epochLocked stamps a new pin or tombstone. Reading the epoch AFTER
// journaling the mutation is deliberately conservative: the record went
// into epoch E or earlier, the stamp is >= E, so the entry can dissolve
// late (harmless: one extra fold of pinning) but never early (which
// would let an eviction lose an unfolded record).
func (s *Store) epochLocked() uint64 {
	if s.epochFn == nil {
		return 0
	}
	return s.epochFn()
}

// journalPutLocked journals a put and, in two-tier mode, pins it out of
// the LRU until a segment swap covers it. Caller holds the write lock.
func (s *Store) journalPutLocked(id ID, p Partition) {
	if s.journal != nil {
		s.journal.Put(id, p)
	}
	if s.tiered {
		k := entryKey(id, p)
		if el, ok := s.index[k]; ok {
			s.lru.Remove(el)
			delete(s.index, k)
		}
		s.pinned[k] = pin{id: id, epoch: s.epochLocked()}
	}
}

// arcDeadLocked reports whether bucket id lies on an arc dropped since
// the seal, masking the segment's records for it.
func (s *Store) arcDeadLocked(id ID) bool {
	for _, at := range s.arcTombs {
		if betweenRightIncl(at.from, at.to, id) {
			return true
		}
	}
	return false
}

// maskedLocked reports whether a segment record with this identity is
// dead in the overlay (tombstoned or on a dropped arc).
func (s *Store) maskedLocked(id ID, key string) bool {
	if _, dead := s.tombs[entryKeyStr(id, key)]; dead {
		return true
	}
	return s.arcDeadLocked(id)
}

// memHasIdentity reports whether bucket holds p's identity. Memory
// always wins over the segment: a mem copy is same-or-newer by the put
// admission rule.
func memHasIdentity(bucket []Partition, p Partition) bool {
	for _, q := range bucket {
		if q.Relation == p.Relation && q.Attribute == p.Attribute && q.Range == p.Range {
			return true
		}
	}
	return false
}

// diskGetLocked fetches one identity from the segment tier, nil-safe and
// mask-aware. Caller holds at least the read lock.
func (s *Store) diskGetLocked(id ID, key string) (Partition, bool) {
	if !s.tiered || s.segs == nil || s.maskedLocked(id, key) {
		return Partition{}, false
	}
	metMissDisk.Inc()
	p, ok, err := s.segs.Get(id, key)
	if err != nil {
		metDiskErrs.Inc()
		return Partition{}, false
	}
	if ok {
		metMissDiskHits.Inc()
	}
	return p, ok
}

// FindBestTraced is FindBest with a trace span: when the lookup consults
// the segment tier, a child span "seg.read" records what the disk walk
// contributed.
func (s *Store) FindBestTraced(id ID, relation, attribute string, q rangeset.Range, measure Measure, sp *trace.Span) (Match, bool) {
	s.mu.RLock()
	bucket := s.buckets[id]
	best, found := rawBestOf(bucket, relation, attribute, q, measure)
	fromDisk := false
	if s.tiered && s.segs != nil && !s.arcDeadLocked(id) && s.segs.MayContain(id) {
		child := sp.Child("seg.read")
		metMissDisk.Inc()
		n := 0
		err := s.segs.Bucket(id, func(p Partition) error {
			if p.Relation != relation || p.Attribute != attribute {
				return nil
			}
			if _, dead := s.tombs[entryKeyStr(id, p.Key())]; dead {
				return nil
			}
			if memHasIdentity(bucket, p) {
				return nil // memory is same-or-newer; dedupe
			}
			n++
			m := Match{Partition: p, Score: measure.Score(q, p.Range)}
			if !found || better(m, best) {
				best, found, fromDisk = m, true, true
			}
			return nil
		})
		if err != nil {
			metDiskErrs.Inc()
			child.Eventf("error", "segment bucket %08x: %v", id, err)
		} else if n > 0 {
			metMissDiskHits.Inc()
		}
		child.Eventf("scan", "bucket %08x: %d disk candidate(s)", id, n)
		child.End()
	}
	bounded := s.cap > 0
	s.mu.RUnlock()

	ok := found && best.Score > 0
	if !ok {
		return best, false
	}
	if fromDisk {
		s.admit(id, best.Partition)
		return best, true
	}
	if bounded {
		// Positive match on a bounded store: upgrade to the write lock
		// only now, so concurrent misses (and concurrent hits' scans)
		// share the read lock. The entry may have been evicted between
		// the two locks — touch it only if the index still knows it.
		s.mu.Lock()
		if el, present := s.index[entryKey(id, best.Partition)]; present {
			s.lru.MoveToFront(el)
		}
		s.mu.Unlock()
	}
	return best, true
}

// admit caches a descriptor served from the segment tier in memory as an
// ordinary (unpinned, evictable) entry. Not journaled and not counted in
// Len: the segment still holds it, so evicting it again is free and
// crash recovery is unchanged.
func (s *Store) admit(id ID, p Partition) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check under the write lock: a racing put may have admitted it, a
	// racing delete may have tombstoned it — never resurrect.
	if memHasIdentity(s.buckets[id], p) || s.maskedLocked(id, p.Key()) {
		return
	}
	if s.cap > 0 && s.count >= s.cap {
		s.evictLocked()
	}
	s.buckets[id] = append(s.buckets[id], p)
	s.touchLocked(id, p)
	s.count++
	metAdmits.Inc()
}

// FindBestAnywhereTraced is FindBestAnywhere with a trace span over the
// segment-tier pass (the Section 5.3 peer-wide index, disk included).
func (s *Store) FindBestAnywhereTraced(relation, attribute string, q rangeset.Range, measure Measure, sp *trace.Span) (Match, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best Match
	found := false
	for _, bucket := range s.buckets {
		if m, ok := bestOf(bucket, relation, attribute, q, measure); ok && (!found || better(m, best)) {
			best, found = m, true
		}
	}
	if s.tiered && s.segs != nil {
		child := sp.Child("seg.read")
		metMissDisk.Inc()
		n := 0
		err := s.segs.Scan(func(id ID, p Partition) error {
			if p.Relation != relation || p.Attribute != attribute {
				return nil
			}
			if s.maskedLocked(id, p.Key()) || memHasIdentity(s.buckets[id], p) {
				return nil
			}
			m := Match{Partition: p, Score: measure.Score(q, p.Range)}
			if m.Score <= 0 {
				return nil
			}
			n++
			if !found || better(m, best) {
				best, found = m, true
			}
			return nil
		})
		if err != nil {
			metDiskErrs.Inc()
			child.Eventf("error", "segment scan: %v", err)
		} else if n > 0 {
			metMissDiskHits.Inc()
		}
		child.Eventf("scan", "full segment: %d disk candidate(s)", n)
		child.End()
	}
	return best, found
}
