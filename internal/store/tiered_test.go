package store

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"p2prange/internal/rangeset"
)

// Two-tier store suite, driven by an in-memory fake of the segment tier
// so the overlay semantics (read-through, pins, tombstones, swaps) are
// tested in isolation from the WAL's on-disk format. The wal package has
// the end-to-end equivalence test against real segments.

// fakeSeg is an in-memory SegmentSource.
type fakeSeg struct {
	m     map[ID][]Partition
	count int
}

func newFakeSeg(m map[ID][]Partition) *fakeSeg {
	f := &fakeSeg{m: make(map[ID][]Partition, len(m))}
	for id, bucket := range m {
		b := append([]Partition(nil), bucket...)
		sort.Slice(b, func(i, j int) bool { return b[i].Key() < b[j].Key() })
		f.m[id] = b
		f.count += len(b)
	}
	return f
}

func (f *fakeSeg) Len() int              { return f.count }
func (f *fakeSeg) MayContain(id ID) bool { _, ok := f.m[id]; return ok }

func (f *fakeSeg) MayContainKey(id ID, key string) bool {
	for _, p := range f.m[id] {
		if p.Key() == key {
			return true
		}
	}
	return false
}

func (f *fakeSeg) Get(id ID, key string) (Partition, bool, error) {
	for _, p := range f.m[id] {
		if p.Key() == key {
			return p, true, nil
		}
	}
	return Partition{}, false, nil
}

func (f *fakeSeg) Bucket(id ID, fn func(Partition) error) error {
	for _, p := range f.m[id] {
		if err := fn(p); err != nil {
			return err
		}
	}
	return nil
}

func (f *fakeSeg) Scan(fn func(ID, Partition) error) error {
	ids := make([]ID, 0, len(f.m))
	for id := range f.m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for _, p := range f.m[id] {
			if err := fn(id, p); err != nil {
				return err
			}
		}
	}
	return nil
}

func (f *fakeSeg) ScanArc(from, to ID, fn func(ID, Partition) error) error {
	return f.Scan(func(id ID, p Partition) error {
		if from != to && !betweenRightIncl(from, to, id) {
			return nil
		}
		return fn(id, p)
	})
}

// epochJournal counts journal traffic and serves a controllable epoch.
type epochJournal struct {
	puts, evicts, arcs int
	epoch              uint64
}

func (j *epochJournal) Put(ID, Partition) { j.puts++ }
func (j *epochJournal) Evict(ID, string)  { j.evicts++ }
func (j *epochJournal) DropArc(ID, ID)    { j.arcs++ }
func (j *epochJournal) Epoch() uint64     { return j.epoch }

// segPart builds distinguishable descriptors for the fake segment.
func segPart(i int) Partition {
	return Partition{Relation: "R", Attribute: "a",
		Range: rangeset.Range{Lo: int64(i * 100), Hi: int64(i*100 + 50)}, Holder: fmt.Sprintf("d%d", i)}
}

// fiveOnDisk returns a bounded tiered store whose segment holds
// descriptors 0..4 in buckets 10,20,..,50, with nothing resident.
func fiveOnDisk(cap int) (*Store, *fakeSeg, *epochJournal) {
	seg := newFakeSeg(map[ID][]Partition{
		10: {segPart(0)}, 20: {segPart(1)}, 30: {segPart(2)}, 40: {segPart(3)}, 50: {segPart(4)},
	})
	s := NewBounded(cap)
	j := &epochJournal{epoch: 1}
	s.SetJournal(j)
	s.SetSegments(seg)
	return s, seg, j
}

func TestTieredReadThroughAdmits(t *testing.T) {
	s, _, _ := fiveOnDisk(2)
	if s.Len() != 5 || s.MemLen() != 0 {
		t.Fatalf("Len=%d MemLen=%d, want 5, 0", s.Len(), s.MemLen())
	}
	q := rangeset.Range{Lo: 100, Hi: 150}
	m, ok := s.FindBest(20, "R", "a", q, MatchJaccard)
	if !ok || m.Partition != segPart(1) {
		t.Fatalf("FindBest from disk = %+v, %v", m, ok)
	}
	if s.MemLen() != 1 {
		t.Errorf("disk hit not admitted: MemLen=%d", s.MemLen())
	}
	if s.Len() != 5 {
		t.Errorf("admission changed Len to %d", s.Len())
	}
	// Admissions beyond capacity evict silently; the logical set is intact.
	for _, probe := range []struct {
		id ID
		i  int
	}{{10, 0}, {30, 2}, {40, 3}, {50, 4}} {
		qq := segPart(probe.i).Range
		if m, ok := s.FindBest(probe.id, "R", "a", qq, MatchJaccard); !ok || m.Partition != segPart(probe.i) {
			t.Fatalf("FindBest(%d) = %+v, %v", probe.id, m, ok)
		}
	}
	if s.MemLen() > 2 {
		t.Errorf("cache exceeded capacity: MemLen=%d", s.MemLen())
	}
	if s.Len() != 5 {
		t.Errorf("Len drifted to %d after cache churn", s.Len())
	}
}

func TestTieredGetHasBucketMerge(t *testing.T) {
	s, _, _ := fiveOnDisk(2)
	if p, ok := s.Get(30, segPart(2).Key()); !ok || p != segPart(2) {
		t.Errorf("Get(30) = %+v, %v", p, ok)
	}
	if !s.Has(40, segPart(3)) {
		t.Error("Has missed a disk descriptor")
	}
	if got := s.Bucket(50); len(got) != 1 || got[0] != segPart(4) {
		t.Errorf("Bucket(50) = %v", got)
	}
	// A resident copy wins over the segment copy of the same identity.
	newer := segPart(4)
	newer.Version = 7
	s.Put(50, newer)
	if got := s.Bucket(50); len(got) != 1 || got[0].Version != 7 {
		t.Errorf("Bucket(50) after upgrade = %v", got)
	}
	if p, _ := s.Get(50, newer.Key()); p.Version != 7 {
		t.Errorf("Get(50) returned the stale tier: %+v", p)
	}
}

func TestTieredPutAgainstDisk(t *testing.T) {
	s, _, j := fiveOnDisk(10)
	// Same identity, same version: a duplicate even though not resident.
	if s.Put(10, segPart(0)) {
		t.Error("Put of a disk-resident identity reported new")
	}
	if s.Len() != 5 {
		t.Errorf("duplicate put changed Len to %d", s.Len())
	}
	// Strictly newer version: an upgrade, stored and journaled, not new.
	up := segPart(0)
	up.Version = 3
	if s.Put(10, up) {
		t.Error("version upgrade reported new")
	}
	if j.puts != 1 {
		t.Errorf("upgrade journaled %d puts, want 1", j.puts)
	}
	if s.Len() != 5 {
		t.Errorf("upgrade changed Len to %d", s.Len())
	}
	// A genuinely new descriptor grows the logical set.
	if !s.Put(60, segPart(9)) {
		t.Error("new descriptor not reported new")
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
}

func TestTieredPinsSurviveEviction(t *testing.T) {
	s, seg, j := fiveOnDisk(2)
	// Three new puts on a cap-2 store: all journaled since the seal, so
	// none may be evicted — memory overshoots rather than losing them.
	for i := 5; i < 8; i++ {
		s.Put(ID(100+i), segPart(i))
	}
	if s.MemLen() != 3 {
		t.Fatalf("MemLen = %d, want 3 (pins are not evictable)", s.MemLen())
	}
	if j.puts != 3 {
		t.Fatalf("journaled %d puts, want 3", j.puts)
	}
	// After the fold covers them (epoch 1 <= upto), they join the LRU and
	// the cache trims back to capacity — without journaling the trims.
	merged := map[ID][]Partition{}
	for id, b := range seg.m {
		merged[id] = b
	}
	for i := 5; i < 8; i++ {
		merged[ID(100+i)] = []Partition{segPart(i)}
	}
	s.SwapSegments(newFakeSeg(merged), 1)
	if s.MemLen() != 2 {
		t.Errorf("MemLen = %d after swap, want cap 2", s.MemLen())
	}
	if j.evicts != 0 {
		t.Errorf("silent trims journaled %d evicts", j.evicts)
	}
	// Everything is still readable through the new segment.
	for i := 5; i < 8; i++ {
		if p, ok := s.Get(ID(100+i), segPart(i).Key()); !ok || p != segPart(i) {
			t.Errorf("Get(%d) after swap = %+v, %v", 100+i, p, ok)
		}
	}
	if s.Len() != 8 {
		t.Errorf("Len = %d, want 8", s.Len())
	}
}

func TestTieredPinAboveSwapEpochStaysPinned(t *testing.T) {
	s, seg, j := fiveOnDisk(1)
	j.epoch = 5
	s.Put(200, segPart(7)) // stamped epoch 5: the fold at 4 does not cover it
	s.SwapSegments(seg, 4)
	if s.MemLen() != 1 {
		t.Fatalf("MemLen = %d, want the pinned entry resident", s.MemLen())
	}
	// Fill the cache with disk admissions; the pin must never be the victim.
	for _, probe := range []struct {
		id ID
		i  int
	}{{10, 0}, {20, 1}, {30, 2}} {
		s.FindBest(probe.id, "R", "a", segPart(probe.i).Range, MatchJaccard)
	}
	if p, ok := s.Get(200, segPart(7).Key()); !ok || p != segPart(7) {
		t.Fatalf("pinned entry lost to cache churn: %+v, %v", p, ok)
	}
}

func TestTieredDeleteTombstones(t *testing.T) {
	s, _, j := fiveOnDisk(2)
	// Deleting a never-resident descriptor must still journal an evict,
	// mask the disk copy, and shrink the logical set.
	if !s.Delete(30, segPart(2).Key()) {
		t.Fatal("Delete of a disk-only descriptor reported absent")
	}
	if j.evicts != 1 {
		t.Errorf("journaled %d evicts, want 1", j.evicts)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	if _, ok := s.Get(30, segPart(2).Key()); ok {
		t.Error("deleted descriptor still served from disk")
	}
	if _, ok := s.FindBest(30, "R", "a", segPart(2).Range, MatchJaccard); ok {
		t.Error("deleted descriptor still matches")
	}
	if s.Has(30, segPart(2)) {
		t.Error("Has sees the tombstoned descriptor")
	}
	if s.Delete(30, segPart(2).Key()) {
		t.Error("second Delete reported present")
	}
	// Digest must not offer it; MissingFrom must still want it.
	if d := s.Digest(nil); d[30] != nil {
		t.Errorf("Digest offers tombstoned bucket: %v", d[30])
	}
	offered := Digest{30: {segPart(2).Key(): 0}}
	if m := s.MissingFrom(offered); len(m[30]) != 1 {
		t.Errorf("MissingFrom = %v, want the tombstoned key wanted again", m)
	}
}

func TestTieredDigestAndMissingFromMerge(t *testing.T) {
	s, _, _ := fiveOnDisk(2)
	d := s.Digest(nil)
	if len(d) != 5 {
		t.Fatalf("Digest covers %d buckets, want 5", len(d))
	}
	if v, ok := d[20][segPart(1).Key()]; !ok || v != 0 {
		t.Errorf("Digest[20] = %v", d[20])
	}
	// A disk copy at the offered version is not missing.
	offered := Digest{20: {segPart(1).Key(): 0}}
	if m := s.MissingFrom(offered); m != nil {
		t.Errorf("MissingFrom = %v, want nil (disk copy is current)", m)
	}
	// A strictly newer offer is missing.
	offered = Digest{20: {segPart(1).Key(): 2}}
	if m := s.MissingFrom(offered); len(m[20]) != 1 {
		t.Errorf("MissingFrom = %v, want the newer key", m)
	}
}

func TestTieredFindBestAnywhereMergesTiers(t *testing.T) {
	s, _, _ := fiveOnDisk(2)
	// The best candidate for this query lives only on disk.
	m, ok := s.FindBestAnywhere("R", "a", segPart(3).Range, MatchJaccard)
	if !ok || m.Partition != segPart(3) {
		t.Fatalf("FindBestAnywhere = %+v, %v", m, ok)
	}
	// A resident upgrade of the same identity wins over the disk copy.
	up := segPart(3)
	up.Version = 9
	s.Put(40, up)
	m, ok = s.FindBestAnywhere("R", "a", segPart(3).Range, MatchJaccard)
	if !ok || m.Partition.Version != 9 {
		t.Fatalf("FindBestAnywhere after upgrade = %+v, %v", m, ok)
	}
}

func TestTieredExtractArcMergesAndMasks(t *testing.T) {
	s, _, j := fiveOnDisk(3)
	// Make one arc descriptor resident (and upgraded) so the extraction
	// must merge tiers and prefer memory.
	up := segPart(1)
	up.Version = 2
	s.Put(20, up)

	out := s.ExtractArc(15, 45) // buckets 20, 30, 40
	want := map[ID][]Partition{20: {up}, 30: {segPart(2)}, 40: {segPart(3)}}
	for id := range out {
		sort.Slice(out[id], func(i, j int) bool { return out[id][i].Key() < out[id][j].Key() })
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("ExtractArc = %v, want %v", out, want)
	}
	if j.arcs != 1 {
		t.Errorf("journaled %d arc drops, want 1", j.arcs)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d after extraction, want 2", s.Len())
	}
	// The whole arc is masked: disk copies on it are gone from every view.
	for _, id := range []ID{20, 30, 40} {
		if _, ok := s.Get(id, segPart(int(id/10-1)).Key()); ok {
			t.Errorf("extracted bucket %d still serves reads", id)
		}
	}
	ids := s.IDs()
	if !reflect.DeepEqual(ids, []ID{10, 50}) {
		t.Errorf("IDs = %v, want [10 50]", ids)
	}
	if n := s.Buckets(); n != 2 {
		t.Errorf("Buckets = %d, want 2", n)
	}
}

func TestTieredSwapClearsTombstones(t *testing.T) {
	s, _, j := fiveOnDisk(2)
	j.epoch = 2
	s.Delete(10, segPart(0).Key())
	// The fold at epoch 2 applied the evict: the new segment lacks the
	// descriptor, so the tombstone dissolves and reads stay consistent.
	s.SwapSegments(newFakeSeg(map[ID][]Partition{
		20: {segPart(1)}, 30: {segPart(2)}, 40: {segPart(3)}, 50: {segPart(4)},
	}), 2)
	if _, ok := s.Get(10, segPart(0).Key()); ok {
		t.Error("deleted descriptor resurfaced after swap")
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	// Re-inserting the identity after the swap works normally.
	if !s.Put(10, segPart(0)) {
		t.Error("re-insert after swap not reported new")
	}
	if _, ok := s.Get(10, segPart(0).Key()); !ok {
		t.Error("re-inserted descriptor unreadable")
	}
}

func TestTieredNilSegmentSource(t *testing.T) {
	// SetSegments(nil) enters two-tier bookkeeping with no disk yet (the
	// boot path before any compaction has run).
	s := NewBounded(2)
	j := &epochJournal{}
	s.SetJournal(j)
	s.SetSegments(nil)
	s.Put(1, segPart(0))
	if s.Len() != 1 || s.MemLen() != 1 {
		t.Fatalf("Len=%d MemLen=%d", s.Len(), s.MemLen())
	}
	if m, ok := s.FindBest(1, "R", "a", segPart(0).Range, MatchJaccard); !ok || m.Partition != segPart(0) {
		t.Fatalf("FindBest = %+v, %v", m, ok)
	}
	if s.Delete(99, "absent") {
		t.Error("Delete on nil segment tier reported present")
	}
}
