// Package trace is the per-query tracing layer: a Span tree that follows
// one range lookup or SQL execution through the query planner, the peer
// protocol, the DHT substrate, and the transports, recording per-hop
// events (node contacted, message kind, retries and detours, signature
// cache outcome) with timings. rangeql -trace renders the tree per query;
// the golden test in the root package pins its shape.
//
// The paper's evaluation is entirely per-lookup — hop counts (Fig. 12),
// probe success (Figs. 6-9), hashing cost (Fig. 5) — and a span tree is
// those figures for a single query: each "probe" child is one of the l
// identifier resolutions, its "hop" events are the Fig. 12 path, and its
// "sig" event is the Fig. 5 cost actually paid.
//
// # The disabled tracer costs nothing
//
// A nil *Span is the disabled tracer: every method no-ops and performs no
// allocation, so instrumented code threads spans unconditionally through
// hot paths. The only discipline call sites need: guard event-string
// construction (fmt.Sprintf, Eventf's variadic boxing) behind On(), so a
// disabled trace never formats anything. BenchmarkDisabledSpan pins the
// 0 allocs/op contract.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Bounds on a single trace's memory. A span stops accepting entries after
// MaxSpanItems (one "truncated" marker is recorded), and a whole trace —
// the root plus every descendant, local or grafted from a remote peer —
// holds at most MaxTraceSpans spans. Pathological fan-out (a routing loop
// probing thousands of owners, a storm of remote fragments) therefore
// degrades to a truncated tree instead of unbounded growth.
const (
	MaxSpanItems  = 4096
	MaxTraceSpans = 65536
)

// ids issues process-unique span and trace identifiers. They exist for
// cross-peer correlation (Context, Wire) and never appear in rendering,
// so a simple counter keeps traces deterministic enough for golden tests.
var ids atomic.Uint64

// Span is one timed node of a trace tree. Create a root with New, extend
// it with Child and Event, and close it with End. All methods are safe
// for concurrent use (parallel probes may append to one parent) and
// tolerate a nil receiver.
type Span struct {
	name  string
	start time.Time
	dur   time.Duration

	traceID uint64
	spanID  uint64
	parent  uint64        // remote roots: the calling side's span id
	budget  *atomic.Int64 // shared per-trace span allowance

	mu        sync.Mutex
	items     []item
	truncated bool
}

// item is one ordered entry of a span: an event (child == nil) or a
// child span.
type item struct {
	kind, detail string
	child        *Span
}

// New starts a root span with a fresh trace identity and span budget.
func New(name string) *Span {
	b := new(atomic.Int64)
	b.Store(MaxTraceSpans - 1) // the root itself spends one
	return &Span{
		name:    name,
		start:   time.Now(),
		traceID: ids.Add(1),
		spanID:  ids.Add(1),
		budget:  b,
	}
}

// On reports whether tracing is enabled. Guard any work that only feeds
// the trace — especially string formatting — behind it.
func (s *Span) On() bool { return s != nil }

// Child starts a sub-span and attaches it in order. A nil receiver
// returns a nil child, so chains stay nil-safe. Once the trace's span
// budget is exhausted Child records a single "truncated" event on the
// parent and returns nil, so runaway fan-out disables itself.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	if s.budget != nil && s.budget.Add(-1) < 0 {
		s.markTruncated()
		return nil
	}
	c := &Span{
		name:    name,
		start:   time.Now(),
		traceID: s.traceID,
		spanID:  ids.Add(1),
		parent:  s.spanID,
		budget:  s.budget,
	}
	if !s.attach(item{child: c}) {
		return nil
	}
	return c
}

// Event records a point annotation ("hop", "detour", "sig", ...) with a
// preformatted detail string.
func (s *Span) Event(kind, detail string) {
	if s == nil {
		return
	}
	s.attach(item{kind: kind, detail: detail})
}

// attach appends an item, enforcing the per-span cap. The first entry
// past the cap is replaced by a "truncated" marker; later ones drop.
func (s *Span) attach(it item) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.items) >= MaxSpanItems {
		if !s.truncated {
			s.truncated = true
			s.items = append(s.items, item{kind: "truncated", detail: "span item cap reached"})
		}
		return false
	}
	s.items = append(s.items, it)
	return true
}

// markTruncated records (once) that the trace's span budget ran out.
func (s *Span) markTruncated() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.truncated {
		return
	}
	s.truncated = true
	if len(s.items) < MaxSpanItems+1 {
		s.items = append(s.items, item{kind: "truncated", detail: "trace span budget reached"})
	}
}

// Eventf is Event with formatting. The variadic arguments box even when
// the span is nil, so hot paths must guard calls with On().
func (s *Span) Eventf(kind, format string, args ...any) {
	if s == nil {
		return
	}
	s.Event(kind, fmt.Sprintf(format, args...))
}

// End stamps the span's duration. Ending twice keeps the first stamp;
// an unended span renders with no duration.
func (s *Span) End() {
	if s == nil || s.dur != 0 {
		return
	}
	s.dur = time.Since(s.start)
}

// Duration returns the stamped duration (zero before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Name returns the span's name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the trace identity this span belongs to (0 for a nil
// span). The flight recorder keys retained trees by it, and the
// Prometheus exposition attaches it to histogram buckets as an
// exemplar, so a latency outlier on a dashboard resolves to a concrete
// retained trace.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

// Tree renders the span as an indented tree, one line per span or event.
// withTimings appends each span's duration; golden tests disable it so
// the output is deterministic.
func (s *Span) Tree(withTimings bool) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.render(&b, "", "", withTimings)
	return b.String()
}

// WriteTree renders the tree to w.
func (s *Span) WriteTree(w io.Writer, withTimings bool) error {
	_, err := io.WriteString(w, s.Tree(withTimings))
	return err
}

// String renders the tree with timings.
func (s *Span) String() string { return s.Tree(true) }

// render emits this span's line under linePrefix and its items under
// childPrefix, using the usual box-drawing tree connectors.
func (s *Span) render(b *strings.Builder, linePrefix, childPrefix string, withTimings bool) {
	b.WriteString(linePrefix)
	b.WriteString(s.name)
	if withTimings && s.dur > 0 {
		fmt.Fprintf(b, "  (%s)", s.dur.Round(time.Microsecond))
	}
	b.WriteByte('\n')
	s.mu.Lock()
	items := append([]item(nil), s.items...)
	s.mu.Unlock()
	for i, it := range items {
		connector, indent := "├─ ", "│  "
		if i == len(items)-1 {
			connector, indent = "└─ ", "   "
		}
		if it.child != nil {
			it.child.render(b, childPrefix+connector, childPrefix+indent, withTimings)
			continue
		}
		b.WriteString(childPrefix)
		b.WriteString(connector)
		b.WriteString(it.kind)
		if it.detail != "" {
			b.WriteString(": ")
			b.WriteString(it.detail)
		}
		b.WriteByte('\n')
	}
}
