package trace

import (
	"strings"
	"testing"
	"time"
)

func TestTreeRendering(t *testing.T) {
	root := New("query")
	root.Event("parse", "SELECT ...")
	probe := root.Child("probe 1/2")
	probe.Event("hop", "node 3")
	probe.Event("hop", "node 7")
	probe.End()
	p2 := root.Child("probe 2/2")
	p2.Event("detour", "node 5 suspect")
	p2.End()
	root.End()

	got := root.Tree(false)
	want := strings.Join([]string{
		"query",
		"├─ parse: SELECT ...",
		"├─ probe 1/2",
		"│  ├─ hop: node 3",
		"│  └─ hop: node 7",
		"└─ probe 2/2",
		"   └─ detour: node 5 suspect",
		"",
	}, "\n")
	if got != want {
		t.Errorf("tree mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTreeWithTimings(t *testing.T) {
	root := New("op")
	root.End()
	if root.Duration() <= 0 {
		t.Fatal("End did not stamp a duration")
	}
	if !strings.Contains(root.Tree(true), "(") {
		t.Errorf("timed tree missing duration: %q", root.Tree(true))
	}
	if strings.Contains(root.Tree(false), "(") {
		t.Errorf("timings-off tree shows duration: %q", root.Tree(false))
	}
}

func TestEndIdempotent(t *testing.T) {
	s := New("op")
	s.End()
	d := s.Duration()
	time.Sleep(time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Error("second End overwrote the duration")
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	if s.On() {
		t.Error("nil span reports On")
	}
	c := s.Child("x")
	if c != nil {
		t.Error("nil span returned non-nil child")
	}
	c.Event("k", "d")
	c.Eventf("k", "%d", 1)
	c.End()
	if got := s.Tree(true); got != "" {
		t.Errorf("nil tree = %q, want empty", got)
	}
	if s.Duration() != 0 || s.Name() != "" {
		t.Error("nil span accessors not zero")
	}
}

func TestConcurrentAppend(t *testing.T) {
	root := New("root")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				c := root.Child("c")
				c.Event("e", "d")
				c.End()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if n := strings.Count(root.Tree(false), "\n"); n != 1+4*100*2 {
		t.Errorf("tree has %d lines, want %d", n, 1+4*100*2)
	}
}

// TestDisabledSpanAllocs pins the tentpole contract: threading a nil span
// through a hot path performs zero allocations.
func TestDisabledSpanAllocs(t *testing.T) {
	var s *Span
	allocs := testing.AllocsPerRun(1000, func() {
		if s.On() {
			s.Event("hop", "never formatted")
		}
		c := s.Child("probe")
		c.Event("hop", "node")
		c.End()
		_ = s.Duration()
	})
	if allocs != 0 {
		t.Errorf("disabled span allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var s *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := s.Child("probe")
		c.Event("hop", "node")
		c.End()
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	b.ReportAllocs()
	root := New("bench")
	for i := 0; i < b.N; i++ {
		c := root.Child("probe")
		c.Event("hop", "node")
		c.End()
		// Keep the tree bounded so the benchmark measures append cost,
		// not an ever-growing slice copy.
		if i%1024 == 1023 {
			root.mu.Lock()
			root.items = root.items[:0]
			root.mu.Unlock()
		}
	}
}
