package trace

import (
	"sync/atomic"
	"time"
)

// Cross-peer propagation. A query's root span lives on the querying
// peer; when an instrumented call leaves the process, the caller sends a
// Context (trace identity + the parent span's id) on the transport
// envelope. The serving peer opens a local subtree with Remote, runs the
// request under it, and returns the finished subtree as a Wire fragment
// piggybacked on the response. The caller grafts the fragment back under
// the originating span, so `rangeql -trace` renders one stitched,
// cluster-wide tree with per-peer attribution.

// Context identifies a position in a distributed trace. The zero value
// means "not sampled": handlers receiving it run untraced.
type Context struct {
	TraceID uint64 // identity of the whole trace
	SpanID  uint64 // the calling side's span, parent of remote work
	Sampled bool   // false disables tracing on the serving side
	Caller  string // address of the calling peer, for attribution
}

// Context captures this span's position for propagation to another
// peer. caller is the sending peer's address; a nil span returns the
// zero (unsampled) Context.
func (s *Span) Context(caller string) Context {
	if s == nil {
		return Context{}
	}
	return Context{TraceID: s.traceID, SpanID: s.spanID, Sampled: true, Caller: caller}
}

// Remote starts the serving-side root of a propagated trace: a span
// whose parent is the caller's span on another peer. It returns nil when
// the context is unsampled, preserving the disabled-tracer fast path.
func Remote(tc Context, name string) *Span {
	if !tc.Sampled {
		return nil
	}
	return &Span{
		name:    name,
		start:   time.Now(),
		traceID: tc.TraceID,
		spanID:  ids.Add(1),
		parent:  tc.SpanID,
		budget:  remoteBudget(),
	}
}

// remoteBudget bounds a serving-side subtree on its own. The caller's
// budget is not visible across the wire, so each remote fragment gets a
// fresh allowance; the grafting side re-applies its local budget when
// stitching, so the caller's total stays bounded either way.
func remoteBudget() *atomic.Int64 {
	b := new(atomic.Int64)
	b.Store(MaxTraceSpans - 1)
	return b
}

// Wire is a span subtree in transferable form, gob/JSON-encodable with
// no interface-typed fields. IDs ride along so the grafting side can
// correlate fragments with the spans that caused them.
type Wire struct {
	TraceID uint64
	Parent  uint64 // span id of the caller-side parent
	SpanID  uint64
	Name    string
	DurUS   int64 // duration in microseconds (0 = not ended)
	Items   []WireItem
}

// WireItem mirrors item: an event (Child == nil) or a nested span.
type WireItem struct {
	Kind, Detail string
	Child        *Wire
}

// Export snapshots the span subtree as a Wire fragment. Nil spans export
// a zero Wire (Name == ""), which Graft ignores.
func (s *Span) Export() Wire {
	if s == nil {
		return Wire{}
	}
	w := Wire{
		TraceID: s.traceID,
		Parent:  s.parent,
		SpanID:  s.spanID,
		Name:    s.name,
		DurUS:   s.dur.Microseconds(),
	}
	s.mu.Lock()
	items := append([]item(nil), s.items...)
	s.mu.Unlock()
	for _, it := range items {
		wi := WireItem{Kind: it.kind, Detail: it.detail}
		if it.child != nil {
			cw := it.child.Export()
			wi.Child = &cw
		}
		w.Items = append(w.Items, wi)
	}
	return w
}

// Graft attaches a remote fragment as a child subtree. The local span
// budget applies, so a flood of oversized fragments truncates rather
// than growing without bound. Empty fragments (zero Wire) are ignored.
func (s *Span) Graft(w Wire) {
	if s == nil || w.Name == "" {
		return
	}
	c := s.Child(w.Name)
	if c == nil {
		return
	}
	if w.DurUS > 0 {
		c.dur = time.Duration(w.DurUS) * time.Microsecond
	}
	for _, it := range w.Items {
		if it.Child != nil {
			c.Graft(*it.Child)
			continue
		}
		c.Event(it.Kind, it.Detail)
	}
}

// GraftAll grafts each fragment in order.
func (s *Span) GraftAll(ws []Wire) {
	if s == nil {
		return
	}
	for _, w := range ws {
		s.Graft(w)
	}
}
