package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestContextNilAndSampled(t *testing.T) {
	var nilSpan *Span
	if tc := nilSpan.Context("a:1"); tc.Sampled || tc.TraceID != 0 || tc.SpanID != 0 {
		t.Errorf("nil span context = %+v, want zero", tc)
	}
	s := New("op")
	tc := s.Context("a:1")
	if !tc.Sampled {
		t.Error("live span context not sampled")
	}
	if tc.TraceID != s.traceID || tc.SpanID != s.spanID {
		t.Errorf("context ids = %d/%d, want %d/%d", tc.TraceID, tc.SpanID, s.traceID, s.spanID)
	}
	if tc.Caller != "a:1" {
		t.Errorf("caller = %q", tc.Caller)
	}
}

func TestRemote(t *testing.T) {
	if r := Remote(Context{}, "serve"); r != nil {
		t.Error("unsampled context produced a span")
	}
	s := New("op")
	tc := s.Context("a:1")
	r := Remote(tc, "serve")
	if r == nil {
		t.Fatal("sampled context produced nil span")
	}
	if r.traceID != s.traceID {
		t.Errorf("remote traceID = %d, want %d", r.traceID, s.traceID)
	}
	if r.parent != s.spanID {
		t.Errorf("remote parent = %d, want caller span %d", r.parent, s.spanID)
	}
	if r.budget == nil || r.budget == s.budget {
		t.Error("remote span must carry its own fresh budget")
	}
}

func TestExportGraftRoundTrip(t *testing.T) {
	r := Remote(New("root").Context("caller"), "serve FindBest @b:2")
	r.Event("from", "caller")
	c := r.Child("scan")
	c.Event("hop", "n3")
	c.End()
	r.End()
	r.dur = 5 * time.Millisecond // sub-microsecond real timings export as 0

	w := r.Export()
	if w.Name != "serve FindBest @b:2" || len(w.Items) != 2 {
		t.Fatalf("export = %+v", w)
	}
	if w.DurUS <= 0 {
		t.Error("export lost the duration")
	}

	local := New("query")
	local.Graft(w)
	local.End()
	want := strings.Join([]string{
		"query",
		"└─ serve FindBest @b:2",
		"   ├─ from: caller",
		"   └─ scan",
		"      └─ hop: n3",
		"",
	}, "\n")
	if got := local.Tree(false); got != want {
		t.Errorf("grafted tree:\n%s\nwant:\n%s", got, want)
	}

	// The grafted copy keeps the remote duration.
	local.mu.Lock()
	grafted := local.items[0].child
	local.mu.Unlock()
	if grafted.Duration() <= 0 {
		t.Error("graft dropped the remote duration")
	}
}

func TestGraftIgnoresEmptyAndNil(t *testing.T) {
	var nilSpan *Span
	nilSpan.Graft(Wire{Name: "x"}) // must not panic
	nilSpan.GraftAll([]Wire{{Name: "x"}})

	s := New("root")
	s.Graft(Wire{}) // zero fragment: the nil-span export
	if got := s.Tree(false); got != "root\n" {
		t.Errorf("zero fragment grafted something: %q", got)
	}
}

func TestSpanItemCap(t *testing.T) {
	s := New("root")
	for i := 0; i < MaxSpanItems+10; i++ {
		s.Event("e", "d")
	}
	s.mu.Lock()
	n := len(s.items)
	last := s.items[n-1]
	s.mu.Unlock()
	if n != MaxSpanItems+1 {
		t.Errorf("items = %d, want cap %d plus one marker", n, MaxSpanItems+1)
	}
	if last.kind != "truncated" {
		t.Errorf("last item = %q, want truncated marker", last.kind)
	}
}

func TestTraceSpanBudget(t *testing.T) {
	root := New("root")
	s, n := root, 0
	for {
		c := s.Child("c")
		if c == nil {
			break
		}
		s = c
		n++
	}
	// The root spends one span; descendants get the rest.
	if n != MaxTraceSpans-1 {
		t.Errorf("budget allowed %d descendants, want %d", n, MaxTraceSpans-1)
	}
	s.mu.Lock()
	last := s.items[len(s.items)-1]
	s.mu.Unlock()
	if last.kind != "truncated" || !strings.Contains(last.detail, "budget") {
		t.Errorf("deepest span marker = %q/%q, want budget truncation", last.kind, last.detail)
	}

	// Grafting onto an exhausted trace degrades to a no-op, not growth.
	s.Graft(Wire{Name: "late fragment", Items: []WireItem{{Kind: "hop", Detail: "n1"}}})
	if strings.Contains(s.Tree(false), "late fragment") {
		t.Error("graft ignored the exhausted span budget")
	}
}

// TestConcurrentGraft exercises fragment merging under -race: parallel
// probes graft their remote fragments into one parent while local events
// append alongside.
func TestConcurrentGraft(t *testing.T) {
	root := New("lookup")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				frag := Wire{
					Name: fmt.Sprintf("serve @peer%d", w),
					Items: []WireItem{
						{Kind: "from", Detail: "origin"},
						{Child: &Wire{Name: "scan", Items: []WireItem{{Kind: "hop", Detail: "n"}}}},
					},
				}
				root.Graft(frag)
				root.Event("hop", "local")
			}
		}(w)
	}
	wg.Wait()
	root.End()
	tree := root.Tree(false)
	for w := 0; w < workers; w++ {
		if got := strings.Count(tree, fmt.Sprintf("serve @peer%d", w)); got != perWorker {
			t.Errorf("worker %d: %d fragments in tree, want %d", w, got, perWorker)
		}
	}
	if got := strings.Count(tree, "hop: local"); got != workers*perWorker {
		t.Errorf("%d local events, want %d", got, workers*perWorker)
	}
}
