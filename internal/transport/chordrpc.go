package transport

import (
	"errors"
	"fmt"
	"strings"

	"p2prange/internal/chord"
)

// Chord protocol messages. The same message types travel over both
// transports; gob registration happens in init.
type (
	// SuccessorReq asks a node for its successor.
	SuccessorReq struct{}
	// PredecessorReq asks a node for its predecessor.
	PredecessorReq struct{}
	// ClosestPrecedingReq asks for the closest finger preceding ID.
	ClosestPrecedingReq struct{ ID chord.ID }
	// FindSuccessorReq asks a node to resolve the owner of ID recursively.
	FindSuccessorReq struct{ ID chord.ID }
	// NotifyReq tells a node that Self may be its predecessor.
	NotifyReq struct{ Self chord.Ref }
	// PingReq checks liveness.
	PingReq struct{}
	// SuccessorListReq asks a node for its successor list, used to route
	// around failed nodes mid-lookup.
	SuccessorListReq struct{}
	// RefResp carries a node reference back.
	RefResp struct{ Ref chord.Ref }
	// RefsResp carries an ordered list of node references back.
	RefsResp struct{ Refs []chord.Ref }
	// OKResp acknowledges a request with no payload.
	OKResp struct{}
)

func init() {
	for _, v := range []any{
		SuccessorReq{}, PredecessorReq{}, ClosestPrecedingReq{},
		FindSuccessorReq{}, NotifyReq{}, PingReq{}, SuccessorListReq{},
		RefResp{}, RefsResp{}, OKResp{},
	} {
		RegisterType(v)
	}
}

// ChordClient adapts a Caller to the chord.Client interface.
type ChordClient struct {
	Caller Caller
}

var _ chord.Client = ChordClient{}

func (c ChordClient) refCall(addr string, req any) (chord.Ref, error) {
	resp, err := c.Caller.Call(addr, req)
	if err != nil {
		return chord.Ref{}, mapChordErr(err)
	}
	rr, ok := resp.(RefResp)
	if !ok {
		return chord.Ref{}, BadRequest(resp)
	}
	return rr.Ref, nil
}

// Successor implements chord.Client.
func (c ChordClient) Successor(addr string) (chord.Ref, error) {
	return c.refCall(addr, SuccessorReq{})
}

// Predecessor implements chord.Client.
func (c ChordClient) Predecessor(addr string) (chord.Ref, error) {
	return c.refCall(addr, PredecessorReq{})
}

// ClosestPreceding implements chord.Client.
func (c ChordClient) ClosestPreceding(addr string, id chord.ID) (chord.Ref, error) {
	return c.refCall(addr, ClosestPrecedingReq{ID: id})
}

// FindSuccessor implements chord.Client.
func (c ChordClient) FindSuccessor(addr string, id chord.ID) (chord.Ref, error) {
	return c.refCall(addr, FindSuccessorReq{ID: id})
}

// Notify implements chord.Client.
func (c ChordClient) Notify(addr string, self chord.Ref) error {
	_, err := c.Caller.Call(addr, NotifyReq{Self: self})
	return mapChordErr(err)
}

// Ping implements chord.Client.
func (c ChordClient) Ping(addr string) error {
	_, err := c.Caller.Call(addr, PingReq{})
	return mapChordErr(err)
}

// SuccessorList implements chord.Client.
func (c ChordClient) SuccessorList(addr string) ([]chord.Ref, error) {
	resp, err := c.Caller.Call(addr, SuccessorListReq{})
	if err != nil {
		return nil, mapChordErr(err)
	}
	rr, ok := resp.(RefsResp)
	if !ok {
		return nil, BadRequest(resp)
	}
	return rr.Refs, nil
}

// mapChordErr restores sentinel chord errors that crossed the wire as
// strings so callers can errors.Is them, and classifies transport-level
// delivery failures as chord.ErrUnreachable so the routing layer can
// treat the target as suspect rather than the lookup as failed.
func mapChordErr(err error) error {
	if err == nil {
		return nil
	}
	var remote *RemoteError
	if errors.As(err, &remote) && strings.Contains(remote.Msg, chord.ErrNoPredecessor.Error()) {
		return chord.ErrNoPredecessor
	}
	if Retryable(err) {
		return fmt.Errorf("%w: %w", chord.ErrUnreachable, err)
	}
	return err
}

// DispatchChord routes a chord protocol request to h. It reports whether
// the request was a chord message; composite handlers (peers serve both
// chord and partition traffic) try it first and fall through otherwise.
func DispatchChord(h chord.Handler, req any) (resp any, handled bool, err error) {
	switch r := req.(type) {
	case SuccessorReq:
		ref, err := h.HandleSuccessor()
		return RefResp{Ref: ref}, true, err
	case PredecessorReq:
		ref, err := h.HandlePredecessor()
		return RefResp{Ref: ref}, true, err
	case ClosestPrecedingReq:
		ref, err := h.HandleClosestPreceding(r.ID)
		return RefResp{Ref: ref}, true, err
	case FindSuccessorReq:
		ref, err := h.HandleFindSuccessor(r.ID)
		return RefResp{Ref: ref}, true, err
	case NotifyReq:
		return OKResp{}, true, h.HandleNotify(r.Self)
	case PingReq:
		return OKResp{}, true, h.HandlePing()
	case SuccessorListReq:
		refs, err := h.HandleSuccessorList()
		return RefsResp{Refs: refs}, true, err
	default:
		return nil, false, nil
	}
}
