package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"

	"p2prange/internal/chord"
	"p2prange/internal/trace"
)

// Binary wire codec. The TCP transport's hot path frames every request
// and response as a length-prefixed binary message instead of a gob
// stream: a uvarint frame length, then a small header (kind, correlation
// id, flags, optional trace context / error / span fragments), a uvarint
// message tag, and a tag-specific payload. Hot message types (chord
// routing RPCs, bucket probes, descriptor stores) register hand-rolled
// encoders keyed by tag; everything else — handoff, anti-entropy
// digests, auxiliary protocols — rides inside a frame as a gob blob
// (tagGobBlob), so no protocol is cut off by the codec. The frame layout
// is documented in docs/ARCHITECTURE.md ("Wire protocol").

// MaxFrame bounds one request frame on the wire. A length prefix above
// it is a protocol error, not an allocation: readers reject the frame
// before buffering anything, so a corrupt or hostile client cannot make
// a server allocate gigabytes.
const MaxFrame = 16 << 20

// MaxRespFrame bounds one response frame. Responses are read only from
// servers the caller chose to dial, so the trust model is asymmetric:
// the limit exists to catch corruption, not hostile peers, and is large
// enough for bulk payloads (FetchDataResp gob blobs carrying whole
// tuple sets) that the legacy gob path carried without any limit.
// Transfers beyond it must use CodecGob.
const MaxRespFrame = 1 << 30

// preallocLimit caps slice capacity preallocated from a wire-declared
// element count. Counts are validated against the remaining payload
// (one byte per element minimum), but elements decode into structs much
// larger than their encoding — a 16 MiB frame may legally declare ~16.7M
// elements, which at ~72 bytes each would preallocate over a gigabyte
// before the first element fails to parse. Decoders therefore start at
// min(n, preallocLimit) and let append grow the honest ones.
const preallocLimit = 1024

// PreallocHint returns the initial slice capacity to use for a
// wire-declared element count: the count itself when small, clamped to
// a fixed bound so a hostile length cannot force a huge allocation.
func PreallocHint(n uint64) int {
	if n > preallocLimit {
		return preallocLimit
	}
	return int(n)
}

// frame kinds.
const (
	kindRequest  = 0
	kindResponse = 1
)

// header flag bits.
const (
	flagTC    = 1 << 0 // request carries a sampled trace context
	flagErr   = 1 << 1 // response carries a handler error string
	flagSpans = 1 << 2 // response carries remote span fragments
)

// Message tags. Tag 0 is a nil body (error-only responses); tagGobBlob
// wraps any RegisterType'd value in a self-contained gob stream. Tags are
// wire protocol: never renumber an existing one, only append.
const (
	tagNil     uint64 = 0
	tagGobBlob uint64 = 1

	// chord routing RPCs (registered below).
	tagSuccessorReq        uint64 = 8
	tagPredecessorReq      uint64 = 9
	tagClosestPrecedingReq uint64 = 10
	tagFindSuccessorReq    uint64 = 11
	tagNotifyReq           uint64 = 12
	tagPingReq             uint64 = 13
	tagSuccessorListReq    uint64 = 14
	tagRefResp             uint64 = 15
	tagRefsResp            uint64 = 16
	tagOKResp              uint64 = 17

	// TagPeerBase is the first tag reserved for the peer protocol
	// (internal/peer registers its codecs there).
	TagPeerBase uint64 = 32

	// TagReplicaBase is the first tag reserved for the replica protocol.
	TagReplicaBase uint64 = 48

	// TagShipBase is the first tag reserved for the log-shipping protocol
	// (internal/ship registers its codecs there).
	TagShipBase uint64 = 64
)

// EncodeFunc appends v's payload encoding to b and returns the extended
// slice. It must accept exactly the prototype's concrete type.
type EncodeFunc func(b []byte, v any) []byte

// DecodeFunc decodes one payload from c, consuming exactly the bytes the
// matching EncodeFunc produced.
type DecodeFunc func(c *Cursor) (any, error)

// Codec directions. A tag registered DirRequest only decodes inside
// request frames, DirResponse only inside responses — so a hostile
// client cannot drive a server through response decoders (and their
// allocation patterns) it would never legitimately run.
const (
	DirRequest  byte = 1 << kindRequest
	DirResponse byte = 1 << kindResponse
	DirBoth          = DirRequest | DirResponse
)

type codecEntry struct {
	enc EncodeFunc
	dec DecodeFunc
	dir byte
}

var (
	codecByTag  = map[uint64]codecEntry{}
	codecByType = map[reflect.Type]uint64{}
)

// RegisterCodec installs a binary encoder/decoder for one concrete
// message type under a fixed tag, valid in the given frame direction
// (DirRequest, DirResponse, or DirBoth). Both ends of the wire must
// register the same tag for the same type (packages do so in init, like
// RegisterType for gob). Unregistered types still travel as gob blobs.
func RegisterCodec(tag uint64, prototype any, dir byte, enc EncodeFunc, dec DecodeFunc) {
	if tag <= tagGobBlob {
		panic(fmt.Sprintf("transport: codec tag %d is reserved", tag))
	}
	if dir&DirBoth == 0 {
		panic(fmt.Sprintf("transport: codec tag %d has no direction", tag))
	}
	if _, dup := codecByTag[tag]; dup {
		panic(fmt.Sprintf("transport: codec tag %d registered twice", tag))
	}
	t := reflect.TypeOf(prototype)
	if _, dup := codecByType[t]; dup {
		panic(fmt.Sprintf("transport: codec for %v registered twice", t))
	}
	codecByTag[tag] = codecEntry{enc: enc, dec: dec, dir: dir}
	codecByType[t] = tag
	gob.Register(prototype) // the gob fallback path must still carry it
}

// --- append primitives (encoding side) ---

// AppendUvarint appends x in unsigned LEB128.
func AppendUvarint(b []byte, x uint64) []byte {
	return binary.AppendUvarint(b, x)
}

// AppendVarint appends x zigzag-encoded.
func AppendVarint(b []byte, x int64) []byte {
	return binary.AppendVarint(b, x)
}

// AppendString appends a uvarint length followed by the raw bytes.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBool appends one byte, 0 or 1.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendFloat64 appends the IEEE-754 bits, little-endian.
func AppendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// --- Cursor (decoding side) ---

// interner deduplicates the small strings that repeat on every request
// (relation and attribute names, peer addresses), so steady-state
// decoding of a probe request allocates nothing. Bounded: once full, new
// strings are returned uninterned.
type interner struct {
	m map[string]string
}

const maxInterned = 4096

func (in *interner) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok { // no-alloc map probe
		return s
	}
	s := string(b)
	if len(s) <= 256 {
		if in.m == nil {
			in.m = make(map[string]string)
		}
		if len(in.m) < maxInterned {
			in.m[s] = s
		}
	}
	return s
}

// Cursor walks a frame payload. Decode errors latch into Err: after a
// failed read every subsequent read returns a zero value, so message
// decoders can read all fields and check Err once at the end.
type Cursor struct {
	data []byte
	off  int
	in   *interner
	Err  error
}

// NewCursor returns a Cursor over data (for tests and fuzzing; the
// transport builds its own, with a per-connection string interner).
func NewCursor(data []byte) *Cursor {
	return &Cursor{data: data, in: &interner{}}
}

// errTruncated is the latched error for reads past the end of the frame.
var errTruncated = fmt.Errorf("%w: truncated frame", ErrBadFrame)

// ErrBadFrame reports a malformed binary frame.
var ErrBadFrame = fmt.Errorf("transport: bad frame")

func (c *Cursor) fail() {
	if c.Err == nil {
		c.Err = errTruncated
	}
}

// Uvarint reads an unsigned LEB128 value.
func (c *Cursor) Uvarint() uint64 {
	if c.Err != nil {
		return 0
	}
	x, n := binary.Uvarint(c.data[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return x
}

// Varint reads a zigzag-encoded signed value.
func (c *Cursor) Varint() int64 {
	if c.Err != nil {
		return 0
	}
	x, n := binary.Varint(c.data[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return x
}

// Bytes reads a length-prefixed byte slice as a view into the frame
// buffer. The view is only valid until the next frame is read — copy it
// (or use String) for anything that outlives the call.
func (c *Cursor) Bytes() []byte {
	n := c.Uvarint()
	if c.Err != nil {
		return nil
	}
	if n > uint64(len(c.data)-c.off) {
		c.fail()
		return nil
	}
	b := c.data[c.off : c.off+int(n)]
	c.off += int(n)
	return b
}

// String reads a length-prefixed string, interned so repeated values
// (relation names, addresses) are decoded without allocating.
func (c *Cursor) String() string {
	b := c.Bytes()
	if c.Err != nil || len(b) == 0 {
		return ""
	}
	if c.in == nil {
		return string(b)
	}
	return c.in.intern(b)
}

// Bool reads one byte as a boolean.
func (c *Cursor) Bool() bool {
	if c.Err != nil || c.off >= len(c.data) {
		c.fail()
		return false
	}
	b := c.data[c.off]
	c.off++
	return b != 0
}

// Float64 reads IEEE-754 bits, little-endian.
func (c *Cursor) Float64() float64 {
	if c.Err != nil || len(c.data)-c.off < 8 {
		c.fail()
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(c.data[c.off:]))
	c.off += 8
	return f
}

// Len returns the number of unread bytes.
func (c *Cursor) Len() int { return len(c.data) - c.off }

// reset re-arms the cursor over a new frame, keeping the interner.
func (c *Cursor) reset(data []byte) {
	c.data, c.off, c.Err = data, 0, nil
}

// Reset re-arms the cursor over a new payload, keeping the interner, so
// hot-path decoders (and benchmarks) can reuse one cursor allocation.
func (c *Cursor) Reset(data []byte) { c.reset(data) }

// --- frames ---

// frame is one request or response in decoded form: the binary analogue
// of envelope plus multiplexing metadata (kind, correlation id).
type frame struct {
	kind  byte
	id    uint64 // correlation id matching responses to in-flight requests
	tc    *trace.Context
	err   string
	spans []trace.Wire
	body  any
}

// appendFrame appends the frame's encoding (without the outer length
// prefix) to b. Unregistered body types fall back to a gob blob.
func appendFrame(b []byte, f *frame) ([]byte, error) {
	b = append(b, f.kind)
	b = AppendUvarint(b, f.id)
	var flags byte
	if f.tc != nil && f.tc.Sampled {
		flags |= flagTC
	}
	if f.err != "" {
		flags |= flagErr
	}
	if len(f.spans) > 0 {
		flags |= flagSpans
	}
	b = append(b, flags)
	if flags&flagTC != 0 {
		b = AppendUvarint(b, f.tc.TraceID)
		b = AppendUvarint(b, f.tc.SpanID)
		b = AppendString(b, f.tc.Caller)
	}
	if flags&flagErr != 0 {
		b = AppendString(b, f.err)
	}
	if flags&flagSpans != 0 {
		b = AppendUvarint(b, uint64(len(f.spans)))
		for i := range f.spans {
			b = appendWire(b, &f.spans[i])
		}
	}
	if f.body == nil {
		return AppendUvarint(b, tagNil), nil
	}
	if tag, ok := codecByType[reflect.TypeOf(f.body)]; ok {
		b = AppendUvarint(b, tag)
		return codecByTag[tag].enc(b, f.body), nil
	}
	b = AppendUvarint(b, tagGobBlob)
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(&f.body); err != nil {
		return nil, fmt.Errorf("transport: gob fallback for %T: %w", f.body, err)
	}
	b = AppendUvarint(b, uint64(blob.Len()))
	return append(b, blob.Bytes()...), nil
}

// parseFrame decodes one frame from c (the payload after the outer
// length prefix has been consumed).
func parseFrame(c *Cursor) (frame, error) {
	var f frame
	if c.Len() < 1 {
		return f, errTruncated
	}
	f.kind = c.data[c.off]
	c.off++
	if f.kind != kindRequest && f.kind != kindResponse {
		return f, fmt.Errorf("%w: kind %d", ErrBadFrame, f.kind)
	}
	f.id = c.Uvarint()
	var flags byte
	if c.Err == nil && c.off < len(c.data) {
		flags = c.data[c.off]
		c.off++
	} else {
		c.fail()
	}
	if flags&flagTC != 0 {
		f.tc = &trace.Context{
			TraceID: c.Uvarint(),
			SpanID:  c.Uvarint(),
			Sampled: true,
			Caller:  c.String(),
		}
	}
	if flags&flagErr != 0 {
		f.err = c.String()
	}
	if flags&flagSpans != 0 {
		n := c.Uvarint()
		if n > uint64(c.Len()) { // each span needs ≥1 byte
			return f, fmt.Errorf("%w: span count %d", ErrBadFrame, n)
		}
		f.spans = make([]trace.Wire, 0, PreallocHint(n))
		for i := uint64(0); i < n && c.Err == nil; i++ {
			w, err := parseWire(c, 0)
			if err != nil {
				return f, err
			}
			f.spans = append(f.spans, w)
		}
	}
	tag := c.Uvarint()
	if c.Err != nil {
		return f, c.Err
	}
	switch tag {
	case tagNil:
	case tagGobBlob:
		blob := c.Bytes()
		if c.Err != nil {
			return f, c.Err
		}
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&f.body); err != nil {
			return f, fmt.Errorf("%w: gob blob: %v", ErrBadFrame, err)
		}
	default:
		entry, ok := codecByTag[tag]
		if !ok {
			return f, fmt.Errorf("%w: unknown tag %d", ErrBadFrame, tag)
		}
		if entry.dir&(1<<f.kind) == 0 {
			return f, fmt.Errorf("%w: tag %d not valid in kind-%d frames", ErrBadFrame, tag, f.kind)
		}
		body, err := entry.dec(c)
		if err != nil {
			return f, err
		}
		f.body = body
	}
	if c.Err != nil {
		return f, c.Err
	}
	return f, nil
}

// --- trace span fragments ---

// maxWireDepth bounds span-tree recursion so a malicious frame cannot
// blow the stack.
const maxWireDepth = 64

func appendWire(b []byte, w *trace.Wire) []byte {
	b = AppendUvarint(b, w.TraceID)
	b = AppendUvarint(b, w.Parent)
	b = AppendUvarint(b, w.SpanID)
	b = AppendString(b, w.Name)
	b = AppendVarint(b, w.DurUS)
	b = AppendUvarint(b, uint64(len(w.Items)))
	for i := range w.Items {
		it := &w.Items[i]
		b = AppendString(b, it.Kind)
		b = AppendString(b, it.Detail)
		if it.Child != nil {
			b = append(b, 1)
			b = appendWire(b, it.Child)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func parseWire(c *Cursor, depth int) (trace.Wire, error) {
	var w trace.Wire
	if depth > maxWireDepth {
		return w, fmt.Errorf("%w: span tree too deep", ErrBadFrame)
	}
	w.TraceID = c.Uvarint()
	w.Parent = c.Uvarint()
	w.SpanID = c.Uvarint()
	w.Name = c.String()
	w.DurUS = c.Varint()
	n := c.Uvarint()
	if c.Err != nil {
		return w, c.Err
	}
	if n > uint64(c.Len()) { // each item needs ≥3 bytes
		return w, fmt.Errorf("%w: span item count %d", ErrBadFrame, n)
	}
	for i := uint64(0); i < n; i++ {
		var it trace.WireItem
		it.Kind = c.String()
		it.Detail = c.String()
		hasChild := c.Bool()
		if c.Err != nil {
			return w, c.Err
		}
		if hasChild {
			child, err := parseWire(c, depth+1)
			if err != nil {
				return w, err
			}
			it.Child = &child
		}
		w.Items = append(w.Items, it)
	}
	return w, c.Err
}

// --- chord RPC codecs ---

func appendRef(b []byte, r chord.Ref) []byte {
	b = AppendUvarint(b, uint64(r.ID))
	return AppendString(b, r.Addr)
}

func parseRef(c *Cursor) chord.Ref {
	return chord.Ref{ID: chord.ID(c.Uvarint()), Addr: c.String()}
}

// empty is the codec pair for zero-field messages; the prototype's
// identity is carried entirely by the tag.
func emptyCodec(prototype any) (EncodeFunc, DecodeFunc) {
	return func(b []byte, _ any) []byte { return b },
		func(_ *Cursor) (any, error) { return prototype, nil }
}

func init() {
	enc, dec := emptyCodec(SuccessorReq{})
	RegisterCodec(tagSuccessorReq, SuccessorReq{}, DirRequest, enc, dec)
	enc, dec = emptyCodec(PredecessorReq{})
	RegisterCodec(tagPredecessorReq, PredecessorReq{}, DirRequest, enc, dec)
	enc, dec = emptyCodec(PingReq{})
	RegisterCodec(tagPingReq, PingReq{}, DirRequest, enc, dec)
	enc, dec = emptyCodec(SuccessorListReq{})
	RegisterCodec(tagSuccessorListReq, SuccessorListReq{}, DirRequest, enc, dec)
	enc, dec = emptyCodec(OKResp{})
	RegisterCodec(tagOKResp, OKResp{}, DirResponse, enc, dec)

	RegisterCodec(tagClosestPrecedingReq, ClosestPrecedingReq{}, DirRequest,
		func(b []byte, v any) []byte {
			return AppendUvarint(b, uint64(v.(ClosestPrecedingReq).ID))
		},
		func(c *Cursor) (any, error) {
			return ClosestPrecedingReq{ID: chord.ID(c.Uvarint())}, c.Err
		})
	RegisterCodec(tagFindSuccessorReq, FindSuccessorReq{}, DirRequest,
		func(b []byte, v any) []byte {
			return AppendUvarint(b, uint64(v.(FindSuccessorReq).ID))
		},
		func(c *Cursor) (any, error) {
			return FindSuccessorReq{ID: chord.ID(c.Uvarint())}, c.Err
		})
	RegisterCodec(tagNotifyReq, NotifyReq{}, DirRequest,
		func(b []byte, v any) []byte {
			return appendRef(b, v.(NotifyReq).Self)
		},
		func(c *Cursor) (any, error) {
			return NotifyReq{Self: parseRef(c)}, c.Err
		})
	RegisterCodec(tagRefResp, RefResp{}, DirResponse,
		func(b []byte, v any) []byte {
			return appendRef(b, v.(RefResp).Ref)
		},
		func(c *Cursor) (any, error) {
			return RefResp{Ref: parseRef(c)}, c.Err
		})
	RegisterCodec(tagRefsResp, RefsResp{}, DirResponse,
		func(b []byte, v any) []byte {
			refs := v.(RefsResp).Refs
			b = AppendUvarint(b, uint64(len(refs)))
			for _, r := range refs {
				b = appendRef(b, r)
			}
			return b
		},
		func(c *Cursor) (any, error) {
			n := c.Uvarint()
			if c.Err != nil {
				return nil, c.Err
			}
			if n > uint64(c.Len()) { // each ref needs ≥2 bytes
				return nil, fmt.Errorf("%w: ref count %d", ErrBadFrame, n)
			}
			var resp RefsResp
			if n > 0 {
				resp.Refs = make([]chord.Ref, 0, PreallocHint(n))
			}
			for i := uint64(0); i < n && c.Err == nil; i++ {
				resp.Refs = append(resp.Refs, parseRef(c))
			}
			return resp, c.Err
		})
}
