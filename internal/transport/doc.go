// Package transport carries the system's peer-to-peer messages: the chord
// maintenance RPCs, the Sec. 4 partition lookup/store protocol, and
// partition data fetches all flow through the one-method Caller interface,
// so every layer above is transport-agnostic.
//
// Two implementations are provided. The in-memory Memory network gives the
// deterministic zero-latency fabric internal/sim uses for the paper-scale
// simulations (Figs. 6-12); unreachable addresses return ErrUnknownAddr,
// modeling crashed peers. The TCP transport (TCPServer/TCPCaller) runs the
// same protocols over gob-encoded connections for live clusters
// (cmd/peerd); request/response types register once via RegisterType.
//
// Resilience wraps composably around either transport:
//
//   - RetryCaller retries transient network failures with exponential
//     backoff and jitter (cmd/peerd -retries), counting attempts in
//     metrics.RouteStats.
//   - FaultCaller injects deterministic drops, delays, and outages
//     (cmd/peerd -drop) for fault-model experiments — failures look like
//     ErrNetwork to the layers above, exactly as a real partition would.
//
// ErrNetwork classifies delivery failures (dial/timeout/connection reset)
// apart from application errors, which is what failure-aware chord
// routing (internal/chord) keys its reroute decisions on.
package transport
