package transport

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2prange/internal/metrics"
)

// flakyCaller fails the first n calls with a transport-level error, then
// delegates to fn.
type flakyCaller struct {
	mu       sync.Mutex
	failures int
	calls    int
	err      error
	fn       func(addr string, req any) (any, error)
}

func (f *flakyCaller) Call(addr string, req any) (any, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n <= f.failures {
		return nil, f.err
	}
	if f.fn != nil {
		return f.fn(addr, req)
	}
	return echoResp{Msg: "ok"}, nil
}

func TestRetryCallerRecoversTransientFailures(t *testing.T) {
	stats := &metrics.RouteStats{}
	inner := &flakyCaller{failures: 2, err: netErrf("transport: synthetic drop")}
	rc := NewRetryCaller(inner, RetryConfig{Attempts: 3, Stats: stats})
	resp, err := rc.Call("x", echoReq{})
	if err != nil {
		t.Fatalf("Call after transient failures: %v", err)
	}
	if resp.(echoResp).Msg != "ok" {
		t.Errorf("resp = %v", resp)
	}
	if inner.calls != 3 {
		t.Errorf("inner calls = %d, want 3", inner.calls)
	}
	if got := stats.Snapshot().Retries; got != 2 {
		t.Errorf("retries counted = %d, want 2", got)
	}
}

func TestRetryCallerGivesUpAfterAttempts(t *testing.T) {
	inner := &flakyCaller{failures: 100, err: netErrf("transport: synthetic drop")}
	rc := NewRetryCaller(inner, RetryConfig{Attempts: 3})
	_, err := rc.Call("x", echoReq{})
	if err == nil {
		t.Fatal("Call succeeded despite permanent failure")
	}
	if !Retryable(err) {
		t.Errorf("exhausted error lost its transport classification: %v", err)
	}
	if inner.calls != 3 {
		t.Errorf("inner calls = %d, want 3", inner.calls)
	}
}

func TestRetryCallerDoesNotRetryHandlerErrors(t *testing.T) {
	handlerErr := &RemoteError{Msg: "handler exploded"}
	inner := &flakyCaller{failures: 100, err: handlerErr}
	rc := NewRetryCaller(inner, RetryConfig{Attempts: 5})
	_, err := rc.Call("x", echoReq{})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want the RemoteError back", err)
	}
	if inner.calls != 1 {
		t.Errorf("handler error retried: %d calls", inner.calls)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{netErrf("transport: dial x: refused"), true},
		{errors.New("some handler error"), false},
		{&RemoteError{Msg: "boom"}, false},
		{ErrUnknownAddr, true},
		{nil, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestFaultCallerDeterministic(t *testing.T) {
	run := func() (uint64, int) {
		inner := &flakyCaller{}
		fc := NewFaultCaller(inner, FaultConfig{Seed: 7, Drop: 0.3, Fail: 0.1})
		failures := 0
		for i := 0; i < 200; i++ {
			if _, err := fc.Call("x", echoReq{}); err != nil {
				failures++
				if !Retryable(err) {
					t.Fatalf("injected fault not transport-classified: %v", err)
				}
			}
		}
		return fc.Injected(), failures
	}
	inj1, fail1 := run()
	inj2, fail2 := run()
	if inj1 != inj2 || fail1 != fail2 {
		t.Errorf("same seed diverged: %d/%d vs %d/%d faults", inj1, fail1, inj2, fail2)
	}
	if inj1 == 0 {
		t.Error("no faults injected at 30% drop rate")
	}
}

func TestFaultCallerSetDown(t *testing.T) {
	inner := &flakyCaller{}
	fc := NewFaultCaller(inner, FaultConfig{})
	if _, err := fc.Call("x", echoReq{}); err != nil {
		t.Fatalf("healthy call failed: %v", err)
	}
	fc.SetDown("x", true)
	if _, err := fc.Call("x", echoReq{}); !errors.Is(err, ErrNetwork) {
		t.Errorf("outage not injected: %v", err)
	}
	if _, err := fc.Call("y", echoReq{}); err != nil {
		t.Errorf("outage leaked to other address: %v", err)
	}
	fc.SetDown("x", false)
	if _, err := fc.Call("x", echoReq{}); err != nil {
		t.Errorf("healed address still down: %v", err)
	}
}

// TestTCPConcurrentCallsNotSerialized proves the per-address pool lets
// calls to one address overlap: with a 100ms handler, four concurrent
// calls through a size-4 pool must take far less than the 400ms a
// single-connection client needs.
func TestTCPConcurrentCallsNotSerialized(t *testing.T) {
	const delay = 100 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, func(req any) (any, error) {
		time.Sleep(delay)
		return echoResp{Msg: "slow"}, nil
	})
	defer srv.Close()
	caller := NewTCPCaller()
	defer caller.Close()

	start := time.Now()
	var wg sync.WaitGroup
	var failed atomic.Int32
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := caller.Call(srv.Addr(), echoReq{}); err != nil {
				failed.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if failed.Load() > 0 {
		t.Fatalf("%d concurrent calls failed", failed.Load())
	}
	if elapsed >= 3*delay {
		t.Errorf("4 concurrent calls took %v; they serialized behind one connection", elapsed)
	}
}

// TestTCPCallerCloseRace drives Call and Close concurrently (run with
// -race): a call in flight during Close must not resurrect a connection
// the Close cannot see, and calls after Close must fail fast.
func TestTCPCallerCloseRace(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, echoHandler)
	defer srv.Close()

	for round := 0; round < 20; round++ {
		caller := NewTCPCaller()
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					_, err := caller.Call(srv.Addr(), echoReq{Msg: "race"})
					if err != nil && !errors.Is(err, ErrCallerClosed) && !Retryable(err) {
						t.Errorf("unexpected error during close race: %v", err)
						return
					}
				}
			}()
		}
		caller.Close()
		wg.Wait()
		if _, err := caller.Call(srv.Addr(), echoReq{}); !errors.Is(err, ErrCallerClosed) {
			t.Fatalf("call after Close = %v, want ErrCallerClosed", err)
		}
	}
}

// TestTCPServerClosedMidCallError pins the failure mode of a server
// vanishing between calls: the error must be ErrNetwork-classified (so
// retry layers recognize it), not a bare io.EOF.
func TestTCPServerClosedMidCallError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ServeTCP(ln, echoHandler)
	caller := NewTCPCaller()
	defer caller.Close()
	addr := srv.Addr()
	if _, err := caller.Call(addr, echoReq{Msg: "warm"}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	_, err = caller.Call(addr, echoReq{Msg: "late"})
	if err == nil {
		t.Fatal("call to closed server succeeded")
	}
	if err == io.EOF {
		t.Error("bare io.EOF escaped the transport")
	}
	if !errors.Is(err, ErrNetwork) {
		t.Errorf("closed-server error not ErrNetwork-classified: %v", err)
	}
	if !Retryable(err) {
		t.Errorf("closed-server error not retryable: %v", err)
	}
}

// TestTCPRedialAfterReset proves a pooled connection invalidated by a
// failure re-dials transparently once the server is back on the same
// address.
func TestTCPRedialAfterReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := ServeTCP(ln, echoHandler)
	caller := NewTCPCaller()
	defer caller.Close()
	if _, err := caller.Call(addr, echoReq{Msg: "first"}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := caller.Call(addr, echoReq{Msg: "down"}); err == nil {
		t.Fatal("call to closed server succeeded")
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2 := ServeTCP(ln2, echoHandler)
	defer srv2.Close()
	resp, err := caller.Call(addr, echoReq{Msg: "back"})
	if err != nil {
		t.Fatalf("re-dial after reset failed: %v", err)
	}
	if resp.(echoResp).Msg != "back" {
		t.Errorf("resp = %v", resp)
	}
}

// TestRemoteErrorSurvivesGob pins that a handler-side error crosses the
// TCP/gob transport as a RemoteError with its message intact, and is not
// mistaken for a transport failure.
func TestRemoteErrorSurvivesGob(t *testing.T) {
	srv, caller := startTCP(t)
	_, err := caller.Call(srv.Addr(), echoReq{Msg: "boom"})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if remote.Msg != "handler exploded" {
		t.Errorf("message mangled in transit: %q", remote.Msg)
	}
	if Retryable(err) {
		t.Error("handler error classified as retryable transport failure")
	}
}
