package transport

import (
	"math/rand"
	"sync"
	"time"

	"p2prange/internal/trace"
)

// FaultConfig parameterizes deterministic fault injection. All
// probabilities are in [0, 1]; the seeded generator makes a given
// workload's failure pattern reproducible across runs.
type FaultConfig struct {
	// Seed drives the injection decisions; 0 seeds from 1.
	Seed int64
	// Drop is the probability a request is lost before reaching the
	// remote node (surfaces as an ErrNetwork failure, handler never runs).
	Drop float64
	// Fail is the probability the response is lost after the handler ran
	// — the ambiguous failure mode retries must tolerate.
	Fail float64
	// DelayProb is the probability a call is delayed by Delay.
	DelayProb float64
	// Delay is the injected latency for delayed calls.
	Delay time.Duration
}

// FaultCaller wraps any Caller — the in-memory simulator network or the
// TCP client — with seeded, deterministic fault injection: dropped
// requests, lost responses, added latency, and per-address kill switches.
// Injected failures are ErrNetwork-classified, so retry and rerouting
// layers treat them exactly like real network faults.
type FaultCaller struct {
	inner Caller
	cfg   FaultConfig

	mu       sync.Mutex
	rng      *rand.Rand
	down     map[string]bool
	injected uint64
}

// NewFaultCaller wraps inner with the given fault model.
func NewFaultCaller(inner Caller, cfg FaultConfig) *FaultCaller {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultCaller{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		down:  make(map[string]bool),
	}
}

// SetDown marks addr unreachable (every call fails with ErrNetwork)
// until healed with SetDown(addr, false). This is the transport-agnostic
// analogue of Memory.SetDown, usable over TCP.
func (f *FaultCaller) SetDown(addr string, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if down {
		f.down[addr] = true
	} else {
		delete(f.down, addr)
	}
}

// Injected returns how many failures have been injected so far.
func (f *FaultCaller) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// decide draws this call's injected faults from the seeded generator and
// applies any injected delay. A non-nil error means the request is lost
// before the inner caller runs; fail means the response must be lost
// after it.
func (f *FaultCaller) decide(addr string) (fail bool, err error) {
	f.mu.Lock()
	if f.down[addr] {
		f.injected++
		f.mu.Unlock()
		return false, netErrf("transport: injected outage at %s", addr)
	}
	drop := f.cfg.Drop > 0 && f.rng.Float64() < f.cfg.Drop
	fail = f.cfg.Fail > 0 && f.rng.Float64() < f.cfg.Fail
	delay := f.cfg.DelayProb > 0 && f.rng.Float64() < f.cfg.DelayProb
	if drop || fail {
		f.injected++
	}
	f.mu.Unlock()

	if delay && f.cfg.Delay > 0 {
		time.Sleep(f.cfg.Delay)
	}
	if drop {
		return false, netErrf("transport: injected request drop to %s", addr)
	}
	return fail, nil
}

// Call implements Caller with fault injection around the wrapped caller.
func (f *FaultCaller) Call(addr string, req any) (any, error) {
	fail, err := f.decide(addr)
	if err != nil {
		return nil, err
	}
	resp, err := f.inner.Call(addr, req)
	if fail && err == nil {
		return nil, netErrf("transport: injected response loss from %s", addr)
	}
	return resp, err
}

// CallCtx implements ContextCaller with the same fault model. An
// injected response loss also discards the remote span fragments — just
// as a real lost response would.
func (f *FaultCaller) CallCtx(addr string, tc trace.Context, req any) (any, []trace.Wire, error) {
	fail, err := f.decide(addr)
	if err != nil {
		return nil, nil, err
	}
	resp, spans, err := CallCtx(f.inner, addr, tc, req)
	if fail && err == nil {
		return nil, nil, netErrf("transport: injected response loss from %s", addr)
	}
	return resp, spans, err
}

var _ ContextCaller = (*FaultCaller)(nil)
