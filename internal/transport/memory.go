package transport

import (
	"fmt"
	"sync"

	"p2prange/internal/trace"
)

// Memory is an in-process network: a registry of handlers keyed by
// address. Calls are direct function invocations, which makes simulations
// of thousands of peers cheap while exercising the same protocol code as
// the TCP transport. Memory also supports fault injection (partitioning
// an address off) for failure tests.
type Memory struct {
	mu       sync.RWMutex
	handlers map[string]TracedHandler
	down     map[string]bool
	calls    uint64 // total successful dispatches, for tests/metrics
}

// NewMemory returns an empty in-memory network.
func NewMemory() *Memory {
	return &Memory{
		handlers: make(map[string]TracedHandler),
		down:     make(map[string]bool),
	}
}

// Register attaches a handler at addr, replacing any previous one.
// Handlers registered this way serve untraced (no remote spans); use
// RegisterTraced for handlers that participate in trace propagation.
func (m *Memory) Register(addr string, h Handler) {
	m.RegisterTraced(addr, Traced(h))
}

// RegisterTraced attaches a trace-propagating handler at addr.
func (m *Memory) RegisterTraced(addr string, h TracedHandler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[addr] = h
}

// Unregister removes the handler at addr (the node leaves the network).
func (m *Memory) Unregister(addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, addr)
	delete(m.down, addr)
}

// SetDown marks addr unreachable (fault injection) without removing its
// state, and SetDown(addr, false) heals it.
func (m *Memory) SetDown(addr string, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down[addr] = down
}

// Calls returns the number of successful dispatches so far.
func (m *Memory) Calls() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.calls
}

// Call implements Caller.
func (m *Memory) Call(addr string, req any) (any, error) {
	resp, _, err := m.CallCtx(addr, trace.Context{}, req)
	return resp, err
}

// CallCtx implements ContextCaller: the handler runs in the caller's
// goroutine, with the context passed straight through and fragments
// returned directly — the in-memory analogue of envelope piggybacking.
func (m *Memory) CallCtx(addr string, tc trace.Context, req any) (any, []trace.Wire, error) {
	metCalls.Inc()
	m.mu.RLock()
	h, ok := m.handlers[addr]
	down := m.down[addr]
	m.mu.RUnlock()
	if !ok || down {
		metErrors.Inc()
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownAddr, addr)
	}
	m.mu.Lock()
	m.calls++
	m.mu.Unlock()
	return h(tc, req)
}

var _ ContextCaller = (*Memory)(nil)
