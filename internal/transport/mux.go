package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"p2prange/internal/trace"
)

// Connection multiplexing. One TCP connection per remote address carries
// many concurrent requests: every frame has a correlation id, a writer
// appends frames under a mutex, and a reader goroutine matches response
// frames to in-flight calls. Requests pipeline — a slow response does
// not block the requests queued behind it, because the server handles
// each request in its own goroutine and responses return in completion
// order. This replaces round-trip-per-connection-slot pooling on the
// binary codec path; the gob protocol keeps the old pool.

// binaryMagic is the client hello / server ack that negotiates the
// binary protocol. The first byte (0xB1) can never start a legal gob
// stream (gob message lengths start with a byte < 0x80 or >= 0xF8), so
// a server can tell the two protocols apart from the first byte, and a
// legacy gob server drops a binary hello immediately — which the client
// detects and falls back to gob for that address.
var binaryMagic = [5]byte{0xB1, 'p', '2', 'r', 1}

// Codec selector values for TCPCaller.Codec.
const (
	// CodecBinary negotiates the framed binary protocol per address,
	// falling back to gob when the remote does not speak it. The default.
	CodecBinary = "binary"
	// CodecGob forces the legacy gob-per-call protocol.
	CodecGob = "gob"
)

// prefixRoom reserves space at the head of a write buffer for the
// uvarint frame-length prefix.
const prefixRoom = binary.MaxVarintLen64

// readDeadlineGrace pads the reader's watchdog deadline beyond the call
// timeout, so individual call timeouts fire (and surface a clean
// per-call error) before the whole connection is declared dead.
const readDeadlineGrace = 2 * time.Second

// respWriteTimeout bounds one server-side response flush. A client that
// stops reading makes the flush fail instead of wedging worker
// goroutines in conn.Write forever.
const respWriteTimeout = time.Minute

// errEncode marks frame-encoding failures (as opposed to socket write
// failures): the connection is still healthy, only this one message
// could not be put on the wire.
var errEncode = errors.New("transport: frame encoding failed")

// frameLimit is the size bound for one frame of the given kind: requests
// are capped tight (a hostile client must not force big server
// allocations), responses loose (bulk FetchDataResp payloads from a
// server the caller chose to trust).
func frameLimit(kind byte) int {
	if kind == kindResponse {
		return MaxRespFrame
	}
	return MaxFrame
}

// maxQueuedWrite bounds the bytes parked in a groupWriter behind an
// in-flight flush. Writers beyond it block (backpressure) instead of
// growing the queue, so a remote that stops reading pins at most
// maxQueuedWrite plus one maximum frame of memory per connection rather
// than an unbounded backlog.
const maxQueuedWrite = 8 << 20

// groupWriter coalesces concurrent frame writes on one connection into
// few large socket writes (group commit): the first writer becomes the
// flusher and keeps draining whatever later writers append while its
// write syscall is in flight. Under pipelined load this collapses one
// syscall per frame into one syscall per ready batch, which is the
// difference between the codec and the kernel being the bottleneck.
type groupWriter struct {
	conn net.Conn

	mu       sync.Mutex
	cond     *sync.Cond // signals a flush completing or the writer dying
	queued   []byte     // frames waiting for the next flush
	spare    []byte     // recycled flush buffer (double-buffer swap)
	scratch  []byte     // per-append encode buffer
	flushing bool
	err      error // sticky socket write error
}

// writeFrame encodes f, queues it, and either returns immediately (an
// active flusher will carry it out) or becomes the flusher and drains
// the queue. Writers block while the queue is over maxQueuedWrite, so
// a stalled remote exerts backpressure instead of growing the heap.
// Encoding failures are reported as errEncode without touching the
// wire; socket failures are sticky and poison the connection.
// timeout > 0 arms a write deadline per flush, bounding how long a
// stalled remote can wedge the flusher (and everyone queued behind it).
func (g *groupWriter) writeFrame(f *frame, timeout time.Duration) error {
	g.mu.Lock()
	if g.cond == nil {
		g.cond = sync.NewCond(&g.mu)
	}
	for g.err == nil && g.flushing && len(g.queued) >= maxQueuedWrite {
		g.cond.Wait()
	}
	if g.err != nil {
		err := g.err
		g.mu.Unlock()
		return err
	}
	scratch := g.scratch
	if cap(scratch) < prefixRoom {
		scratch = make([]byte, prefixRoom, 1024)
	}
	scratch = scratch[:prefixRoom]
	scratch, err := appendFrame(scratch, f)
	if err != nil {
		g.scratch = scratch[:0]
		g.mu.Unlock()
		return fmt.Errorf("%w: %w", errEncode, err)
	}
	payload := len(scratch) - prefixRoom
	if limit := frameLimit(f.kind); payload > limit {
		g.scratch = scratch[:0]
		g.mu.Unlock()
		return fmt.Errorf("%w: frame of %d bytes exceeds limit %d", errEncode, payload, limit)
	}
	var pfx [prefixRoom]byte
	n := binary.PutUvarint(pfx[:], uint64(payload))
	copy(scratch[prefixRoom-n:prefixRoom], pfx[:n])
	g.queued = append(g.queued, scratch[prefixRoom-n:]...)
	g.scratch = scratch[:0]
	if g.flushing {
		// The flusher's drain loop will pick this frame up; if its write
		// fails the connection dies and every waiter hears about it.
		g.mu.Unlock()
		return nil
	}
	g.flushing = true
	for g.err == nil && len(g.queued) > 0 {
		data := g.queued
		g.queued = g.spare[:0]
		g.mu.Unlock()
		if timeout > 0 {
			g.conn.SetWriteDeadline(time.Now().Add(timeout))
		}
		_, werr := g.conn.Write(data)
		g.mu.Lock()
		g.spare = data[:0]
		if werr != nil {
			g.err = werr
		}
		g.cond.Broadcast()
	}
	g.flushing = false
	g.cond.Broadcast()
	err = g.err
	g.mu.Unlock()
	return err
}

// readUvarint reads a LEB128 value byte-by-byte, reporting how many
// bytes were consumed so callers can tell an idle timeout (0 consumed)
// from one that struck mid-frame.
func readUvarint(br *bufio.Reader) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return 0, i, err
		}
		if b < 0x80 {
			return x | uint64(b)<<s, i + 1, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, binary.MaxVarintLen64, fmt.Errorf("%w: length prefix overflows uvarint", ErrBadFrame)
}

// readFramePayload reads one length-prefixed frame payload into *rbuf
// (grown once, reused across frames), rejecting declared lengths above
// max before allocating. consumed counts bytes read before any error,
// so a timeout at a frame boundary is distinguishable from a torn
// frame.
func readFramePayload(br *bufio.Reader, rbuf *[]byte, max uint64) (payload []byte, consumed int, err error) {
	length, n, err := readUvarint(br)
	if err != nil {
		return nil, n, err
	}
	if length > max {
		return nil, n, fmt.Errorf("%w: declared frame length %d exceeds limit %d", ErrBadFrame, length, max)
	}
	buf := *rbuf
	if uint64(cap(buf)) < length {
		buf = make([]byte, length)
	} else {
		buf = buf[:length]
	}
	m, err := io.ReadFull(br, buf)
	*rbuf = buf
	if err != nil {
		return nil, n + m, err
	}
	return buf, n + m, nil
}

// isTimeout reports whether err is a read/write deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// --- client side ---

// muxResult carries one decoded response (or a transport failure) back
// to the goroutine that issued the call.
type muxResult struct {
	env envelope
	err error
}

// muxConn is one multiplexed connection to a remote address. Any number
// of goroutines issue calls concurrently; a single reader goroutine
// dispatches responses by correlation id.
type muxConn struct {
	owner *TCPCaller
	addr  string
	conn  net.Conn
	gw    groupWriter // coalesces concurrent request writes

	pmu      sync.Mutex
	pending  map[uint64]chan muxResult
	nextID   uint64
	deadline time.Time // latest armed read-deadline watchdog (zero = disarmed)
	dead     bool
	deadErr  error
}

func newMuxConn(owner *TCPCaller, addr string, conn net.Conn) *muxConn {
	m := &muxConn{
		owner:   owner,
		addr:    addr,
		conn:    conn,
		gw:      groupWriter{conn: conn},
		pending: make(map[uint64]chan muxResult),
	}
	go m.readLoop()
	return m
}

func (m *muxConn) isDead() bool {
	m.pmu.Lock()
	defer m.pmu.Unlock()
	return m.dead
}

// fail marks the connection dead, detaches it from the owner, closes the
// socket, and delivers err to every in-flight call. Idempotent.
func (m *muxConn) fail(err error) {
	m.owner.mu.Lock()
	if m.owner.muxes[m.addr] == m {
		delete(m.owner.muxes, m.addr)
	}
	m.owner.mu.Unlock()
	m.pmu.Lock()
	if m.dead {
		m.pmu.Unlock()
		return
	}
	m.dead = true
	m.deadErr = err
	waiters := make([]chan muxResult, 0, len(m.pending))
	for id, ch := range m.pending {
		delete(m.pending, id)
		waiters = append(waiters, ch)
	}
	m.pmu.Unlock()
	m.conn.Close()
	for _, ch := range waiters {
		ch <- muxResult{err: err}
	}
}

// readLoop decodes response frames and hands each to its waiter. A read
// deadline acts as a watchdog: callers arm (and extend) it per request
// under pmu, and an expiry with calls still in flight and the newest
// armed deadline actually elapsed kills the connection. An expiry on an
// idle connection disarms the deadline; a stale expiry racing a newer
// call re-arms to that call's deadline instead of failing it.
func (m *muxConn) readLoop() {
	br := bufio.NewReaderSize(m.conn, 32<<10)
	cur := &Cursor{in: &interner{}}
	var rbuf []byte
	for {
		payload, consumed, err := readFramePayload(br, &rbuf, MaxRespFrame)
		if err != nil {
			if isTimeout(err) && consumed == 0 {
				m.pmu.Lock()
				if len(m.pending) == 0 {
					m.deadline = time.Time{}
					m.conn.SetReadDeadline(time.Time{})
					m.pmu.Unlock()
					continue
				}
				if time.Now().Before(m.deadline) {
					m.conn.SetReadDeadline(m.deadline)
					m.pmu.Unlock()
					continue
				}
				m.pmu.Unlock()
			}
			if errors.Is(err, io.EOF) && consumed == 0 {
				m.fail(netErrf("transport: %s closed connection", m.addr))
			} else {
				m.fail(netErrf("transport: receive from %s: %w", m.addr, err))
			}
			return
		}
		cur.reset(payload)
		f, err := parseFrame(cur)
		if err != nil || f.kind != kindResponse {
			if err == nil {
				err = fmt.Errorf("%w: unexpected request frame from server", ErrBadFrame)
			}
			m.fail(netErrf("transport: receive from %s: %w", m.addr, err))
			return
		}
		m.pmu.Lock()
		ch := m.pending[f.id]
		delete(m.pending, f.id)
		m.pmu.Unlock()
		if ch != nil {
			ch <- muxResult{env: envelope{Body: f.body, Err: f.err, Spans: f.spans}}
		}
	}
}

// roundTrip issues one pipelined request and waits for its response.
func (m *muxConn) roundTrip(env envelope, timeout time.Duration) (envelope, error) {
	ch := make(chan muxResult, 1)
	m.pmu.Lock()
	if m.dead {
		err := m.deadErr
		m.pmu.Unlock()
		return envelope{}, err
	}
	m.nextID++
	id := m.nextID
	if timeout > 0 {
		// Arm the reader watchdog before publishing the pending entry,
		// under the same mutex readLoop consults on expiry — so a stale
		// deadline from an earlier call can never fail this one, and the
		// watchdog is never off with a request in flight. Only extended
		// forward: a short call must not shrink a longer call's cover.
		if d := time.Now().Add(timeout + readDeadlineGrace); d.After(m.deadline) {
			m.deadline = d
			m.conn.SetReadDeadline(d)
		}
	}
	m.pending[id] = ch
	m.pmu.Unlock()

	f := frame{kind: kindRequest, id: id, tc: env.TC, body: env.Body}
	err := m.gw.writeFrame(&f, timeout)
	if err != nil {
		m.pmu.Lock()
		delete(m.pending, id)
		m.pmu.Unlock()
		if errors.Is(err, errEncode) {
			// Nothing touched the wire; the connection stays usable.
			return envelope{}, err
		}
		nerr := netErrf("transport: send to %s: %w", m.addr, err)
		m.fail(nerr)
		return envelope{}, nerr
	}

	if timeout <= 0 {
		r := <-ch
		return r.env, r.err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.env, r.err
	case <-timer.C:
		m.pmu.Lock()
		delete(m.pending, id)
		m.pmu.Unlock()
		return envelope{}, netErrf("transport: call to %s timed out", m.addr)
	}
}

// mux returns a live multiplexed connection to addr, dialing and
// negotiating on first use. fallback is true when the remote does not
// speak the binary protocol and the caller should use gob instead.
func (c *TCPCaller) mux(addr string) (m *muxConn, fallback bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrCallerClosed
	}
	if existing := c.muxes[addr]; existing != nil && !existing.isDead() {
		c.mu.Unlock()
		return existing, false, nil
	}
	c.mu.Unlock()

	conn, derr := net.DialTimeout("tcp", addr, c.DialTimeout)
	if derr != nil {
		return nil, false, netErrf("transport: dial %s: %w", addr, derr)
	}
	if c.DialTimeout > 0 {
		conn.SetDeadline(time.Now().Add(c.DialTimeout))
	}
	if _, werr := conn.Write(binaryMagic[:]); werr != nil {
		conn.Close()
		return nil, false, netErrf("transport: hello to %s: %w", addr, werr)
	}
	var ack [5]byte
	if _, rerr := io.ReadFull(conn, ack[:]); rerr != nil || ack != binaryMagic {
		conn.Close()
		if rerr != nil && isTimeout(rerr) {
			// A deadline expiry is a slow or wedged peer, not evidence of
			// a gob-only one: fail the call and leave negotiation open so
			// a binary-capable peer is not latched onto gob by one hiccup.
			return nil, false, netErrf("transport: hello ack from %s: %w", addr, rerr)
		}
		// The remote read our hello and dropped (or garbled) the
		// connection: that is what a binary hello looks like to a legacy
		// gob decoder. Fall back for this address.
		return nil, true, nil
	}
	conn.SetDeadline(time.Time{})

	m = newMuxConn(c, addr, conn)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		m.fail(ErrCallerClosed)
		return nil, false, ErrCallerClosed
	}
	if existing := c.muxes[addr]; existing != nil && !existing.isDead() {
		c.mu.Unlock()
		m.fail(netErrf("transport: duplicate connection to %s", addr))
		return existing, false, nil
	}
	if c.muxes == nil {
		c.muxes = make(map[string]*muxConn)
	}
	c.muxes[addr] = m
	c.mu.Unlock()
	return m, false, nil
}

// --- server side ---

// safeHandle runs the handler, converting a panic into a handler error
// so one bad request cannot take down the whole serving process.
func safeHandle(h TracedHandler, tc trace.Context, req any) (resp any, spans []trace.Wire, err error) {
	defer func() {
		if r := recover(); r != nil {
			metPanics.Inc()
			resp, spans = nil, nil
			err = fmt.Errorf("transport: handler panicked: %v", r)
		}
	}()
	return h(tc, req)
}

// binaryTask is one decoded request awaiting a handler goroutine.
type binaryTask struct {
	id   uint64
	tc   trace.Context
	body any
}

// serveBinary serves the framed protocol on one connection: requests are
// decoded sequentially but handled concurrently, so responses interleave
// in completion order and pipelined callers are never head-of-line
// blocked by a slow handler. Handler goroutines are reused: an idle one
// takes the next request by direct handoff (unbuffered channel), and a
// new one is spawned only when every existing worker is busy — so the
// pool tracks peak concurrency instead of paying a goroutine spawn (and
// its stack growth) per request.
func (s *TCPServer) serveBinary(conn net.Conn, br *bufio.Reader) {
	if _, err := conn.Write(binaryMagic[:]); err != nil {
		return
	}
	gw := &groupWriter{conn: conn}
	var wg sync.WaitGroup
	tasks := make(chan binaryTask)
	run := func(t binaryTask) {
		resp, spans, herr := safeHandle(s.handler, t.tc, t.body)
		out := frame{kind: kindResponse, id: t.id, spans: spans, body: resp}
		if herr != nil {
			out.err = herr.Error()
		}
		// The write deadline bounds how long a client that stopped
		// reading can wedge the flusher; with the groupWriter's bounded
		// queue it caps both the goroutines and the memory one stalled
		// connection can pin before being torn down.
		if werr := gw.writeFrame(&out, respWriteTimeout); errors.Is(werr, errEncode) {
			// Encoding failed (e.g. an unregistered aux type hit a gob
			// error): still answer, as an error frame, so the caller is
			// not left waiting for a correlation id that never comes.
			ef := frame{kind: kindResponse, id: t.id, err: werr.Error()}
			gw.writeFrame(&ef, respWriteTimeout)
		}
	}
	defer wg.Wait()
	defer close(tasks)
	cur := &Cursor{in: &interner{}}
	var rbuf []byte
	for {
		payload, _, err := readFramePayload(br, &rbuf, MaxFrame)
		if err != nil {
			return
		}
		cur.reset(payload)
		f, err := parseFrame(cur)
		if err != nil || f.kind != kindRequest {
			return
		}
		t := binaryTask{id: f.id, body: f.body}
		if f.tc != nil {
			t.tc = *f.tc
		}
		select {
		case tasks <- t: // an idle worker takes it
		default:
			wg.Add(1)
			go func(t binaryTask) {
				defer wg.Done()
				run(t)
				for t := range tasks { // stick around as a pooled worker
					run(t)
				}
			}(t)
		}
	}
}
